// Regpressure: a miniature Figure 9 / §2.4.2 — sweep the physical
// register file and watch the mechanism flip from harmful (128
// registers: replicas strangle the conventional window) to strongly
// beneficial (512+), and compare register occupancy with and without
// the DAEC reclamation counter. Runs through the public civect/sim
// API.
//
//	go run ./examples/regpressure [bench]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"civect/sim"
)

func run(bench string, mode sim.Mode, regs int, daec bool) sim.Stats {
	w, err := sim.Load(bench)
	if err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(w,
		sim.WithMode(mode),
		sim.WithRegs(regs),
		sim.WithDAEC(daec),
		sim.WithInstrBudget(80_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats
}

func main() {
	bench := "parser"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	fmt.Printf("register sweep on %q (1 wide L1D port):\n", bench)
	fmt.Printf("%-10s %8s %8s %8s %10s\n", "registers", "wb", "ci", "gain", "avg in use")
	for _, regs := range []int{128, 256, 512, 768, 0} {
		wb := run(bench, sim.WideBus, regs, true)
		ciS := run(bench, sim.CI, regs, true)
		label := fmt.Sprint(regs)
		if regs == 0 {
			label = "inf"
		}
		fmt.Printf("%-10s %8.3f %8.3f %+7.1f%% %10.1f\n",
			label, wb.IPC(), ciS.IPC(), 100*(ciS.IPC()/wb.IPC()-1), ciS.RegAvgInUse)
	}

	fmt.Println("\n§2.4.2: registers in use with an unbounded file (paper: 812 without DAEC, 304 with):")
	noDaec := run(bench, sim.CI, 0, false)
	daec := run(bench, sim.CI, 0, true)
	fmt.Printf("  without DAEC: %7.1f avg, %d peak\n", noDaec.RegAvgInUse, noDaec.RegPeak)
	fmt.Printf("  with DAEC:    %7.1f avg, %d peak\n", daec.RegAvgInUse, daec.RegPeak)
}
