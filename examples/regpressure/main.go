// Regpressure: a miniature Figure 9 / §2.4.2 — sweep the physical
// register file and watch the mechanism flip from harmful (128
// registers: replicas strangle the conventional window) to strongly
// beneficial (512+), and compare register occupancy with and without
// the DAEC reclamation counter.
//
//	go run ./examples/regpressure [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"civect/internal/core"
	"civect/internal/workload"
)

func run(bench string, mode core.Mode, regs int, noDAEC bool) *core.Stats {
	b, err := workload.Spec(bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(mode)
	cfg.PhysRegs = regs
	cfg.WindowSize = core.WindowFor(regs)
	cfg.DisableDAEC = noDAEC
	cfg.MaxInstr = 80_000
	p, err := core.New(cfg, b.Program, b.NewMem())
	if err != nil {
		log.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	bench := "parser"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	fmt.Printf("register sweep on %q (1 wide L1D port):\n", bench)
	fmt.Printf("%-10s %8s %8s %8s %10s\n", "registers", "wb", "ci", "gain", "avg in use")
	for _, regs := range []int{128, 256, 512, 768, 0} {
		wb := run(bench, core.ModeWideBus, regs, false)
		ciS := run(bench, core.ModeCI, regs, false)
		label := fmt.Sprint(regs)
		if regs == 0 {
			label = "inf"
		}
		fmt.Printf("%-10s %8.3f %8.3f %+7.1f%% %10.1f\n",
			label, wb.IPC(), ciS.IPC(), 100*(ciS.IPC()/wb.IPC()-1), ciS.RegAvgInUse)
	}

	fmt.Println("\n§2.4.2: registers in use with an unbounded file (paper: 812 without DAEC, 304 with):")
	noDaec := run(bench, core.ModeCI, 0, true)
	daec := run(bench, core.ModeCI, 0, false)
	fmt.Printf("  without DAEC: %7.1f avg, %d peak\n", noDaec.RegAvgInUse, noDaec.RegPeak)
	fmt.Printf("  with DAEC:    %7.1f avg, %d peak\n", daec.RegAvgInUse, daec.RegPeak)
}
