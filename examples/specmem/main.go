// Specmem: a miniature Figure 13 — hold the register file at 256
// entries and give replicas a separate small, slow speculative data
// memory (§2.4.6). The paper's claim: 256 registers + 768 positions
// performs like an unbounded monolithic file. Also reproduces the §3.2
// latency experiment (a 5-cycle speculative memory costs only a few
// percent).
//
//	go run ./examples/specmem [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"civect/internal/core"
	"civect/internal/workload"
)

func run(bench string, regs, specMem, specLat int) *core.Stats {
	b, err := workload.Spec(bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(core.ModeCI)
	cfg.PhysRegs = regs
	cfg.WindowSize = core.WindowFor(regs)
	cfg.SpecMemSize = specMem
	cfg.SpecMemLat = specLat
	cfg.MaxInstr = 80_000
	p, err := core.New(cfg, b.Program, b.NewMem())
	if err != nil {
		log.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	bench := "gcc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	fmt.Printf("speculative data memory on %q (ci, 1 wide port, 2-cycle positions):\n", bench)
	fmt.Printf("%-22s %8s %10s %12s\n", "configuration", "IPC", "reuse", "copy µops")
	base := run(bench, 256, 0, 0)
	fmt.Printf("%-22s %8.3f %9.1f%% %12d\n", "256 regs, monolithic", base.IPC(), 100*base.ReuseFraction(), base.SpecMemCopies)
	for _, positions := range []int{128, 256, 512, 768} {
		st := run(bench, 256, positions, 2)
		fmt.Printf("%-22s %8.3f %9.1f%% %12d\n",
			fmt.Sprintf("256 regs + %d spec", positions), st.IPC(), 100*st.ReuseFraction(), st.SpecMemCopies)
	}
	inf := run(bench, 0, 0, 0)
	fmt.Printf("%-22s %8.3f %9.1f%% %12d\n", "unbounded monolithic", inf.IPC(), 100*inf.ReuseFraction(), inf.SpecMemCopies)

	fmt.Println("\n§3.2 latency sensitivity (256 regs + 768 positions):")
	for _, lat := range []int{2, 5} {
		st := run(bench, 256, 768, lat)
		fmt.Printf("  %d-cycle positions: IPC %.3f\n", lat, st.IPC())
	}
}
