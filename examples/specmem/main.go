// Specmem: a miniature Figure 13 — hold the register file at 256
// entries and give replicas a separate small, slow speculative data
// memory (§2.4.6). The paper's claim: 256 registers + 768 positions
// performs like an unbounded monolithic file. Also reproduces the §3.2
// latency experiment (a 5-cycle speculative memory costs only a few
// percent). Runs through the public civect/sim API.
//
//	go run ./examples/specmem [bench]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"civect/sim"
)

func run(bench string, regs, specMem, specLat int) sim.Stats {
	w, err := sim.Load(bench)
	if err != nil {
		log.Fatal(err)
	}
	opts := []sim.Option{
		sim.WithMode(sim.CI),
		sim.WithRegs(regs),
		sim.WithSpecMem(specMem),
		sim.WithInstrBudget(80_000),
	}
	if specLat > 0 {
		opts = append(opts, sim.WithSpecMemLatency(specLat))
	}
	s, err := sim.New(w, opts...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res.Stats
}

func main() {
	bench := "gcc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	fmt.Printf("speculative data memory on %q (ci, 1 wide port, 2-cycle positions):\n", bench)
	fmt.Printf("%-22s %8s %10s %12s\n", "configuration", "IPC", "reuse", "copy µops")
	base := run(bench, 256, 0, 0)
	fmt.Printf("%-22s %8.3f %9.1f%% %12d\n", "256 regs, monolithic", base.IPC(), 100*base.ReuseFraction(), base.SpecMemCopies)
	for _, positions := range []int{128, 256, 512, 768} {
		st := run(bench, 256, positions, 2)
		fmt.Printf("%-22s %8.3f %9.1f%% %12d\n",
			fmt.Sprintf("256 regs + %d spec", positions), st.IPC(), 100*st.ReuseFraction(), st.SpecMemCopies)
	}
	inf := run(bench, 0, 0, 0)
	fmt.Printf("%-22s %8.3f %9.1f%% %12d\n", "unbounded monolithic", inf.IPC(), 100*inf.ReuseFraction(), inf.SpecMemCopies)

	fmt.Println("\n§3.2 latency sensitivity (256 regs + 768 positions):")
	for _, lat := range []int{2, 5} {
		st := run(bench, 256, 768, lat)
		fmt.Printf("  %d-cycle positions: IPC %.3f\n", lat, st.IPC())
	}
}
