// Quickstart: assemble a small kernel, run it on the functional
// emulator and on the timing simulator with and without the
// control-independence mechanism, and print what the mechanism did —
// entirely through the public civect/sim API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"civect/sim"
)

// The paper's Figure 1: count the zero and non-zero elements of a
// vector while accumulating its sum. The branch at "bnez" depends on
// data and is hard to predict; the instructions from "join" onward are
// control independent and fed by a strided load — exactly what the
// mechanism vectorizes.
const kernel = `
        movi r1, 0x1000    ; &a[0]
        movi r2, 0         ; non-zero count (the paper's R2)
        movi r3, 0         ; zero count     (the paper's R3)
        movi r4, 0         ; running sum    (the paper's R4)
loop:   ld   r0, 0(r1)     ; a[i]  (strided load, the paper's I5)
        bnez r0, else      ; hard-to-predict hammock (I7)
        addi r3, r3, 1
        jmp  join
else:   addi r2, r2, 1
join:   add  r4, r4, r0    ; control independent (I11)
        addi r1, r1, 8
        slti r5, r1, 135168 ; 0x1000 + 16384*8
        bnez r5, loop
        halt
`

func main() {
	w, err := sim.Custom("figure1", kernel)
	if err != nil {
		log.Fatal(err)
	}

	// Data: pseudo-random pattern, ~25% zeros — hard for the predictor
	// but with enough bias that prediction is not pure noise.
	x := uint64(0x2545F4914F6CDD1D)
	for i := 0; i < 16384; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		var v uint64
		if x&3 != 0 {
			v = x % 1000
		}
		w.SetWord(uint64(0x1000+i*8), v)
	}

	// Architectural reference.
	ref, err := w.Emulate(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("architectural result: non-zero=%d zero=%d sum=%d (%d instructions)\n\n",
		ref.Regs[2], ref.Regs[3], ref.Regs[4], ref.Executed)

	for _, mode := range []sim.Mode{sim.Scalar, sim.WideBus, sim.CI} {
		s, err := sim.New(w, sim.WithMode(mode))
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		arf := s.ARF()
		if arf[2] != ref.Regs[2] || arf[3] != ref.Regs[3] || arf[4] != ref.Regs[4] {
			log.Fatalf("%v: architectural mismatch!", mode)
		}
		st := res.Stats
		fmt.Printf("%-5v  IPC %5.3f   cycles %6d   mispredicts %4d", mode, st.IPC(), st.Cycles, st.Mispredicts)
		if mode == sim.CI {
			fmt.Printf("   reused %d instructions (%.1f%%), %d replicas",
				st.CommittedReuse, 100*st.ReuseFraction(), st.ReplicasDispatched)
		}
		fmt.Println()
	}
	fmt.Println("\nall modes committed the exact architectural state ✓")
}
