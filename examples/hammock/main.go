// Hammock: dissect the mechanism on the paper's running example —
// re-convergence detection (Figure 2), CI selection (Figure 5's
// categories) and the per-episode behaviour, using the synthetic
// workload generator at different branch biases.
//
//	go run ./examples/hammock
package main

import (
	"fmt"
	"log"

	"civect/internal/ci"
	"civect/internal/core"
	"civect/internal/workload"
)

func main() {
	// Show the re-convergence heuristics on the generated kernel.
	b := workload.Hammock(1024, 0.5, 42)
	prog := b.Program
	fmt.Println("generated hammock kernel:")
	fmt.Print(prog.Disassemble())
	fmt.Println("estimated re-convergent points (§2.3.1 heuristics):")
	for pc, in := range prog.Code {
		if in.IsCondBranch() {
			kind := "if-then"
			if in.Target <= pc {
				kind = "loop (backward)"
			} else if above := prog.At(in.Target - 1); above.IsJump() && above.Target > in.Target-1 {
				kind = "if-then-else"
			}
			fmt.Printf("  branch @%-3d -> re-converges @%-3d  (%s)\n",
				pc, ci.EstimateReconvergence(prog, pc), kind)
		}
	}

	// Sweep the branch bias: the harder the branch, the more episodes
	// the mechanism gets to exploit.
	fmt.Println("\nbias sweep (ci mode, 256 regs, 1 wide port, 100k instructions):")
	fmt.Printf("%-6s %8s %12s %12s %14s %12s\n",
		"bias", "IPC", "mispredicts", "episodes", "with reuse", "reused instr")
	for _, zeroFrac := range []float64{0.05, 0.25, 0.50} {
		wl := workload.Hammock(1024, zeroFrac, 42)
		cfg := core.DefaultConfig(core.ModeCI)
		cfg.MaxInstr = 100_000
		p, err := core.New(cfg, wl.Program, wl.NewMem())
		if err != nil {
			log.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f %8.3f %12d %12d %14d %12d\n",
			zeroFrac, st.IPC(), st.Mispredicts, st.HardMispredicts,
			st.EpisodesReused, st.CommittedReuse)
	}

	// Hardware cost of the structures, as in §3.1.
	fmt.Println("\nhardware cost of the mechanism (§3.1):")
	fmt.Println(ci.HardwareCost(ci.DefaultCostConfig()))
}
