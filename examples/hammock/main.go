// Hammock: dissect the mechanism on the paper's running example —
// re-convergence detection (Figure 2), CI selection (Figure 5's
// categories) and the per-episode behaviour, using the synthetic
// workload generator at different branch biases, all through the
// public civect/sim API.
//
//	go run ./examples/hammock
package main

import (
	"context"
	"fmt"
	"log"

	"civect/sim"
)

func main() {
	// Show the re-convergence heuristics on the generated kernel.
	w := sim.Hammock(1024, 0.5, 42)
	fmt.Println("generated hammock kernel:")
	fmt.Print(w.Disassemble())
	fmt.Println("estimated re-convergent points (§2.3.1 heuristics):")
	for _, rc := range w.Reconvergences() {
		fmt.Printf("  branch @%-3d -> re-converges @%-3d  (%s)\n",
			rc.BranchPC, rc.JoinPC, rc.Kind)
	}

	// Sweep the branch bias: the harder the branch, the more episodes
	// the mechanism gets to exploit.
	fmt.Println("\nbias sweep (ci mode, 256 regs, 1 wide port, 100k instructions):")
	fmt.Printf("%-6s %8s %12s %12s %14s %12s\n",
		"bias", "IPC", "mispredicts", "episodes", "with reuse", "reused instr")
	for _, zeroFrac := range []float64{0.05, 0.25, 0.50} {
		s, err := sim.New(sim.Hammock(1024, zeroFrac, 42),
			sim.WithMode(sim.CI),
			sim.WithInstrBudget(100_000),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("%-6.2f %8.3f %12d %12d %14d %12d\n",
			zeroFrac, st.IPC(), st.Mispredicts, st.HardMispredicts,
			st.EpisodesReused, st.CommittedReuse)
	}

	// Hardware cost of the structures, as in §3.1.
	fmt.Println("\nhardware cost of the mechanism (§3.1):")
	fmt.Println(sim.HardwareCost())
}
