package stride

import (
	"testing"
	"testing/quick"
)

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(100, 4) },
		func() { New(0, 4) },
		func() { New(256, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLearnsUnitStride(t *testing.T) {
	p := New(256, 4)
	pc := uint64(0x100)
	for i := 0; i < 5; i++ {
		p.Observe(pc, uint64(i*8))
	}
	e := p.Lookup(pc)
	if e == nil {
		t.Fatal("entry missing")
	}
	if e.Stride != 8 {
		t.Errorf("stride = %d, want 8", e.Stride)
	}
	if !e.Confident() {
		t.Errorf("should be confident after repeated stride, conf = %d", e.Conf)
	}
	if e.LastAddr != 32 {
		t.Errorf("last addr = %d, want 32", e.LastAddr)
	}
}

func TestConfidenceRampsAndSaturates(t *testing.T) {
	p := New(256, 4)
	pc := uint64(0x10)
	p.Observe(pc, 0) // allocate
	p.Observe(pc, 8) // stride=8, conf=0
	if e := p.Lookup(pc); e.Confident() {
		t.Error("one stride observation must not be confident")
	}
	p.Observe(pc, 16) // conf=1
	if e := p.Lookup(pc); e.Confident() {
		t.Error("conf=1 is not trusted (paper: trusted when > 1)")
	}
	p.Observe(pc, 24) // conf=2
	if e := p.Lookup(pc); !e.Confident() {
		t.Error("conf=2 should be trusted")
	}
	for i := 4; i < 10; i++ {
		p.Observe(pc, uint64(i*8))
	}
	if e := p.Lookup(pc); e.Conf != 3 {
		t.Errorf("conf should saturate at 3, got %d", e.Conf)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := New(256, 4)
	pc := uint64(0x20)
	for i := 0; i < 6; i++ {
		p.Observe(pc, uint64(i*8))
	}
	p.Observe(pc, 1000) // irregular jump
	e := p.Lookup(pc)
	if e.Confident() {
		t.Error("stride change must reset confidence")
	}
	if e.LastAddr != 1000 {
		t.Errorf("last addr = %d, want 1000", e.LastAddr)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(256, 4)
	pc := uint64(0x30)
	for i := 10; i >= 0; i-- {
		p.Observe(pc, uint64(i*16))
	}
	e := p.Lookup(pc)
	if e.Stride != -16 {
		t.Errorf("stride = %d, want -16", e.Stride)
	}
	if !e.Confident() {
		t.Error("negative strides must gain confidence too")
	}
}

func TestNextAddrs(t *testing.T) {
	e := &Entry{LastAddr: 100, Stride: 8}
	got := e.NextAddrs(nil, 4)
	want := []uint64{108, 116, 124, 132}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("NextAddrs[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Negative stride wraps via two's complement.
	e = &Entry{LastAddr: 100, Stride: -8}
	got = e.NextAddrs(nil, 2)
	if got[0] != 92 || got[1] != 84 {
		t.Errorf("negative NextAddrs = %v", got)
	}
}

func TestSFlagPersistsAcrossObserve(t *testing.T) {
	p := New(256, 4)
	pc := uint64(0x40)
	p.Observe(pc, 0)
	p.Lookup(pc).S = true
	p.Observe(pc, 8)
	if !p.Lookup(pc).S {
		t.Error("S flag must survive training updates")
	}
}

func TestEvictionDropsS(t *testing.T) {
	p := New(1, 2)
	p.Observe(0x1, 0)
	p.Lookup(0x1).S = true
	p.Observe(0x2, 0)
	p.Observe(0x1, 8) // touch 0x1 so 0x2 is LRU
	p.Observe(0x3, 0) // evicts 0x2
	if p.Lookup(0x2) != nil {
		t.Error("0x2 should be evicted")
	}
	if !p.Lookup(0x1).S {
		t.Error("0x1's S flag should persist")
	}
	// Now evict 0x1 and confirm a fresh allocation has S clear.
	p.Observe(0x3, 8)
	p.Observe(0x4, 0) // evicts 0x1
	if p.Lookup(0x1) != nil {
		t.Error("0x1 should be evicted")
	}
	p.Observe(0x1, 0) // reallocate
	if p.Lookup(0x1).S {
		t.Error("reallocated entry must not inherit S")
	}
}

func TestSizeBytes(t *testing.T) {
	// §3.1: "The stride predictor occupies 24576 bytes (4 ways * 256
	// elements per way * 24 bytes per element)".
	p := New(256, 4)
	if got := p.SizeBytes(); got != 24576 {
		t.Errorf("size = %d, want 24576", got)
	}
}

func TestFlush(t *testing.T) {
	p := New(256, 4)
	p.Observe(0x50, 0)
	p.Flush()
	if p.Lookup(0x50) != nil {
		t.Error("flush should drop entries")
	}
}

// Property: confidence stays in 0..3, and after two identical strides the
// predictor always reports that stride.
func TestStrideProperties(t *testing.T) {
	f := func(pc uint16, start uint32, stride int16, reps uint8) bool {
		if stride == 0 {
			return true
		}
		p := New(64, 2)
		addr := uint64(start)
		p.Observe(uint64(pc), addr)
		n := int(reps%8) + 3
		for i := 0; i < n; i++ {
			addr += uint64(stride)
			p.Observe(uint64(pc), addr)
		}
		e := p.Lookup(uint64(pc))
		if e == nil {
			return false
		}
		return e.Stride == int64(stride) && e.Conf <= 3 && e.Confident()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
