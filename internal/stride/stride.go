// Package stride implements the load stride predictor of §2.3.2 /
// Figure 3: a set-associative table indexed by load PC whose entries hold
// the last accessed address, the last observed stride, a 2-bit saturating
// confidence counter (the prediction is trusted when the counter is
// greater than 1) and the S flag marking loads selected for speculative
// vectorization.
package stride

// Entry mirrors Figure 3's fields (PC 64b, last address 64b, stride 64b,
// confidence 2b, S 1b).
type Entry struct {
	PC       uint64
	LastAddr uint64
	Stride   int64
	Conf     uint8 // 0..3; trusted when > 1
	S        bool  // selected for speculative vectorization
	valid    bool
	lru      uint64
}

// Confident reports whether the stride prediction is trusted (§2.3.2:
// "the prediction is trusted when this field has a value greater than 1").
func (e *Entry) Confident() bool { return e.Conf > 1 }

// Predictor is the set-associative stride table; the paper's
// configuration is 256 sets, 4-way (Table 1).
type Predictor struct {
	sets  int
	assoc int
	ways  []Entry
	clock uint64
}

// New builds a predictor with the given geometry.
func New(sets, assoc int) *Predictor {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("stride: sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("stride: associativity must be positive")
	}
	return &Predictor{sets: sets, assoc: assoc, ways: make([]Entry, sets*assoc)}
}

func (p *Predictor) set(pc uint64) []Entry {
	s := int(pc) & (p.sets - 1)
	return p.ways[s*p.assoc : (s+1)*p.assoc]
}

// Lookup returns the entry for the load at pc, or nil. The entry is
// owned by the predictor; callers may set S through it.
func (p *Predictor) Lookup(pc uint64) *Entry {
	ways := p.set(pc)
	for i := range ways {
		if ways[i].valid && ways[i].PC == pc {
			return &ways[i]
		}
	}
	return nil
}

// Observe trains the predictor with a committed load's effective
// address and returns the entry. A repeated stride bumps confidence; a
// stride change replaces the stride and restarts confidence. Evicting an
// entry drops its S flag (the selection dissolves with the entry, as in
// hardware).
func (p *Predictor) Observe(pc, addr uint64) *Entry {
	p.clock++
	e := p.Lookup(pc)
	if e == nil {
		ways := p.set(pc)
		victim := 0
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
		ways[victim] = Entry{PC: pc, LastAddr: addr, valid: true, lru: p.clock}
		return &ways[victim]
	}
	e.lru = p.clock
	stride := int64(addr - e.LastAddr)
	switch {
	case stride == e.Stride:
		if e.Conf < 3 {
			e.Conf++
		}
	default:
		e.Stride = stride
		e.Conf = 0
	}
	e.LastAddr = addr
	return e
}

// NextAddrs fills dst with the next n predicted addresses
// (last + stride·1 … last + stride·n), the addresses the replica
// instances of a vectorized load will access (§2.3.3).
func (e *Entry) NextAddrs(dst []uint64, n int) []uint64 {
	for k := 1; k <= n; k++ {
		dst = append(dst, e.LastAddr+uint64(e.Stride*int64(k)))
	}
	return dst
}

// SizeBytes returns the §3.1 storage accounting (24 bytes per element:
// PC + last address + stride fields dominate; 4 ways × 256 sets × 24 =
// 24576 bytes in the paper's configuration).
func (p *Predictor) SizeBytes() int { return p.sets * p.assoc * 24 }

// Flush invalidates all entries.
func (p *Predictor) Flush() {
	for i := range p.ways {
		p.ways[i] = Entry{}
	}
}
