package stride

import "civect/internal/ckpt"

// Checkpoint serialization: the warm stride table, LRU stamps and clock
// included — replacement decisions after a restore must match the
// uninterrupted run's exactly.

// SaveState encodes the predictor.
func (p *Predictor) SaveState(e *ckpt.Encoder) {
	e.Tag("stride")
	e.Int(len(p.ways))
	for i := range p.ways {
		w := &p.ways[i]
		e.U64(w.PC)
		e.U64(w.LastAddr)
		e.I64(w.Stride)
		e.U8(w.Conf)
		e.Bool(w.S)
		e.Bool(w.valid)
		e.U64(w.lru)
	}
	e.U64(p.clock)
}

// LoadState restores state saved from a predictor with the same
// geometry.
func (p *Predictor) LoadState(d *ckpt.Decoder) {
	d.Tag("stride")
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n != len(p.ways) {
		d.Fail("stride geometry mismatch: checkpoint has %d ways, predictor has %d", n, len(p.ways))
		return
	}
	for i := range p.ways {
		w := &p.ways[i]
		w.PC = d.U64()
		w.LastAddr = d.U64()
		w.Stride = d.I64()
		w.Conf = d.U8()
		w.S = d.Bool()
		w.valid = d.Bool()
		w.lru = d.U64()
	}
	p.clock = d.U64()
}
