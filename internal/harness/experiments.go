package harness

import (
	"fmt"
	"sort"

	"civect/internal/ci"
	"civect/internal/core"
)

// regSweep is the paper's register-file axis; 0 denotes the unbounded
// file ("Inf").
var regSweep = []int{128, 256, 512, 768, 0}

func regLabel(r int) string {
	if r == 0 {
		return "inf"
	}
	return fmt.Sprintf("%d regs", r)
}

// Experiment regenerates one table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) (*Table, error)
}

// Experiments returns the registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"cost", "§3.1 hardware storage cost", expCost},
		{"fig4", "Figure 4: IPC vs. propagated stridedPCs per rename entry", expFig4},
		{"fig5", "Figure 5: mispredicted branches with CI selected / reused", expFig5},
		{"fig8", "Figure 8: L1 data cache accesses", expFig8},
		{"fig9", "Figure 9: IPC vs. L1 ports and registers", expFig9},
		{"fig10", "Figure 10: squash reuse (ci-iw) vs. full mechanism", expFig10},
		{"fig11", "Figure 11: IPC vs. replicas per vectorized instruction", expFig11},
		{"fig12", "Figure 12: committed/reuse/wrong-path/replica instruction counts", expFig12},
		{"fig13", "Figure 13: speculative data memory", expFig13},
		{"fig14", "Figure 14: control independence vs. full dynamic vectorization", expFig14},
		{"regs", "§2.4.2 register pressure with/without DAEC", expRegs},
		{"stores", "§2.4.3 store conflicts with replica ranges", expStores},
		{"ablate", "design-choice ablations: MBS gating, DAEC, replica batch", expAblate},
	}
}

// expAblate removes one design choice at a time from the ci machine and
// reports the harmonic-mean IPC impact, backing DESIGN.md's ablation
// index.
func expAblate(h *Harness) (*Table, error) {
	t := &Table{ID: "ablate", Title: "ablations of the mechanism's design choices (ci, 1 port, 512 regs)",
		Header: []string{"variant", "hm IPC", "vs baseline"}}
	base, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512})
	if err != nil {
		return nil, err
	}
	hmBase := HarmonicMeanIPC(base)
	t.AddRow("ci (baseline)", f3(hmBase), "-")
	variants := []struct {
		name string
		spec RunSpec
	}{
		{"no MBS gating (all mispredicts activate)", RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512, NoMBSGate: true}},
		{"no DAEC reclamation", RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512, NoDAEC: true}},
		{"1 replica per instruction", RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512, Replicas: 1}},
		{"1 stridedPC per rename entry", RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512, StridedPCs: 1}},
	}
	for _, v := range variants {
		res, err := h.RunAll(v.spec)
		if err != nil {
			return nil, err
		}
		hm := HarmonicMeanIPC(res)
		t.AddRow(v.name, f3(hm), fmt.Sprintf("%+.1f%%", 100*(hm/hmBase-1)))
	}
	t.Notes = append(t.Notes,
		"the paper motivates each piece (§2.3.1 MBS, §2.4.2 DAEC, Figure 11 replicas, Figure 4 stridedPCs)")
	return t, nil
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func expCost(h *Harness) (*Table, error) {
	c := ci.HardwareCost(ci.DefaultCostConfig())
	t := &Table{ID: "cost", Title: "extra storage for the CI mechanism (§3.1)",
		Header: []string{"structure", "bytes"}}
	t.AddRow("SRSMT", fmt.Sprint(c.SRSMT))
	t.AddRow("stride predictor", fmt.Sprint(c.Stride))
	t.AddRow("MBS", fmt.Sprint(c.MBS))
	t.AddRow("NRBQ", fmt.Sprint(c.NRBQ))
	t.AddRow("CRP", fmt.Sprint(c.CRP))
	t.AddRow("rename extension", fmt.Sprint(c.RenameExt))
	t.AddRow("total", fmt.Sprintf("%d (%.1f KB)", c.Total(), float64(c.Total())/1024))
	t.Notes = append(t.Notes, "paper: 11520 + 24576 + 2048 + 128 + 16 + 1024 ≈ 39 KB")
	return t, nil
}

func expFig4(h *Harness) (*Table, error) {
	t := &Table{ID: "fig4", Title: "IPC per benchmark for 1/2/4 stridedPCs per rename entry (ci, 2 wide ports)",
		Header: []string{"bench", "1PC", "2PC", "4PC", "avgPCs"}}
	variants := []int{1, 2, 4}
	results := make([]map[string]*core.Stats, len(variants))
	for i, n := range variants {
		r, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 2, Regs: 256, StridedPCs: n})
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	for _, name := range sortedNames(results[0]) {
		row := []string{name}
		for i := range variants {
			row = append(row, f3(results[i][name].IPC()))
		}
		row = append(row, f2(results[2][name].AvgStridedPCs()))
		t.AddRow(row...)
	}
	var hms []string
	for i := range variants {
		hms = append(hms, f3(HarmonicMeanIPC(results[i])))
	}
	t.AddRow("INT(hm)", hms[0], hms[1], hms[2], "")
	t.Notes = append(t.Notes,
		"paper: going from 2 to 4 PCs per entry hardly changes IPC; average need is ~1.7 PCs")
	return t, nil
}

func expFig5(h *Harness) (*Table, error) {
	t := &Table{ID: "fig5", Title: "mispredicted branches: ≥1 reuse / selected-no-reuse / not found (ci, 1 port)",
		Header: []string{"bench", ">=1 reuse", "no reuse", "not found", "mispredicts"}}
	res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 256})
	if err != nil {
		return nil, err
	}
	var sumReuse, sumSel, sumMisp float64
	for _, name := range sortedNames(res) {
		st := res[name]
		m := float64(st.Mispredicts)
		if m == 0 {
			t.AddRow(name, "-", "-", "-", "0")
			continue
		}
		reuse := float64(st.EpisodesReused) / m
		sel := float64(st.EpisodesSelected) / m
		t.AddRow(name, pct(reuse), pct(sel-reuse), pct(1-sel), u64(st.Mispredicts))
		sumReuse += reuse
		sumSel += sel
		sumMisp++
	}
	if sumMisp > 0 {
		t.AddRow("INT(avg)", pct(sumReuse/sumMisp), pct((sumSel-sumReuse)/sumMisp),
			pct(1-sumSel/sumMisp), "")
	}
	t.Notes = append(t.Notes,
		"paper: CI instructions selected for ~70% of mispredicted branches; reused for ~49%")
	return t, nil
}

func expFig8(h *Harness) (*Table, error) {
	t := &Table{ID: "fig8", Title: "number of L1 data cache accesses",
		Header: []string{"bench", "scal1p", "wb1p", "ci1p", "scal2p", "wb2p", "ci2p"}}
	specs := []RunSpec{
		{Mode: core.ModeScalar, Ports: 1, Regs: 256},
		{Mode: core.ModeWideBus, Ports: 1, Regs: 256},
		{Mode: core.ModeCI, Ports: 1, Regs: 256},
		{Mode: core.ModeScalar, Ports: 2, Regs: 256},
		{Mode: core.ModeWideBus, Ports: 2, Regs: 256},
		{Mode: core.ModeCI, Ports: 2, Regs: 256},
	}
	results := make([]map[string]*core.Stats, len(specs))
	for i, s := range specs {
		r, err := h.RunAll(s)
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	for _, name := range sortedNames(results[0]) {
		row := []string{name}
		for i := range specs {
			row = append(row, u64(results[i][name].L1D.Accesses))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: the wide bus sharply reduces accesses; ci reduces them further despite extra speculative loads")
	return t, nil
}

func expFig9(h *Harness) (*Table, error) {
	t := &Table{ID: "fig9", Title: "harmonic-mean IPC vs. L1 ports and registers (4 replicas)",
		Header: []string{"config", "scal1p", "wb1p", "ci1p", "scal2p", "wb2p", "ci2p"}}
	modes := []struct {
		mode  core.Mode
		ports int
	}{
		{core.ModeScalar, 1}, {core.ModeWideBus, 1}, {core.ModeCI, 1},
		{core.ModeScalar, 2}, {core.ModeWideBus, 2}, {core.ModeCI, 2},
	}
	for _, regs := range regSweep {
		row := []string{regLabel(regs)}
		for _, m := range modes {
			res, err := h.RunAll(RunSpec{Mode: m.mode, Ports: m.ports, Regs: regs})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(HarmonicMeanIPC(res)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: ci gains >17% over wb once ≥512 regs; at 128 regs ci degrades (register pressure); wb > scal at 1 port")
	return t, nil
}

func expFig10(h *Harness) (*Table, error) {
	t := &Table{ID: "fig10", Title: "IPC per benchmark: scal / wb / ci-iw / ci (1 L1D port, 512 regs)",
		Header: []string{"bench", "scal", "wb", "ci-iw", "ci"}}
	modes := []core.Mode{core.ModeScalar, core.ModeWideBus, core.ModeCIIW, core.ModeCI}
	results := make([]map[string]*core.Stats, len(modes))
	for i, m := range modes {
		r, err := h.RunAll(RunSpec{Mode: m, Ports: 1, Regs: 512})
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	for _, name := range sortedNames(results[0]) {
		row := []string{name}
		for i := range modes {
			row = append(row, f3(results[i][name].IPC()))
		}
		t.AddRow(row...)
	}
	row := []string{"INT(hm)"}
	for i := range modes {
		row = append(row, f3(HarmonicMeanIPC(results[i])))
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"paper: in-window reuse (ci-iw) gains 9.1%, the full mechanism 17.8% — pre-execution beyond the window matters")
	return t, nil
}

func expFig11(h *Harness) (*Table, error) {
	t := &Table{ID: "fig11", Title: "harmonic-mean IPC vs. replicas per vectorized instruction (ci, 1 port)",
		Header: []string{"config", "sc", "wb", "1rep", "2rep", "4rep", "8rep"}}
	for _, regs := range regSweep {
		row := []string{regLabel(regs)}
		for _, m := range []core.Mode{core.ModeScalar, core.ModeWideBus} {
			res, err := h.RunAll(RunSpec{Mode: m, Ports: 1, Regs: regs})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(HarmonicMeanIPC(res)))
		}
		for _, rep := range []int{1, 2, 4, 8} {
			res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: regs, Replicas: rep})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(HarmonicMeanIPC(res)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: 2 or 4 replicas are the sweet spot; 1 loses opportunities; 8 helps only with very many registers")
	return t, nil
}

func expFig12(h *Harness) (*Table, error) {
	t := &Table{ID: "fig12", Title: "instruction counts for 2 (left) and 4 (right) replicas (ci, 1 port)",
		Header: []string{"bench", "noR-2", "reuse-2", "specBP-2", "specCI-2",
			"noR-4", "reuse-4", "specBP-4", "specCI-4"}}
	res2, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512, Replicas: 2})
	if err != nil {
		return nil, err
	}
	res4, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512, Replicas: 4})
	if err != nil {
		return nil, err
	}
	var reuse2, reuse4, committed2, committed4 float64
	for _, name := range sortedNames(res2) {
		a, b := res2[name], res4[name]
		t.AddRow(name,
			u64(a.Committed-a.CommittedReuse), u64(a.CommittedReuse), u64(a.SquashedBP), u64(a.ReplicasDispatched),
			u64(b.Committed-b.CommittedReuse), u64(b.CommittedReuse), u64(b.SquashedBP), u64(b.ReplicasDispatched))
		reuse2 += float64(a.CommittedReuse)
		reuse4 += float64(b.CommittedReuse)
		committed2 += float64(a.Committed)
		committed4 += float64(b.Committed)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured reuse fraction: %.1f%% (2 rep) vs %.1f%% (4 rep); paper: 12.3%% vs 14%%",
			100*reuse2/committed2, 100*reuse4/committed4),
		"paper: 4 replicas reuse more but generate more speculative instructions (specCI)")
	return t, nil
}

func expFig13(h *Harness) (*Table, error) {
	t := &Table{ID: "fig13", Title: "harmonic-mean IPC with the speculative data memory (ci, 1 port)",
		Header: []string{"config", "scal", "wb", "ci", "ci-h-128", "ci-h-256", "ci-h-512", "ci-h-768"}}
	for _, regs := range regSweep {
		row := []string{regLabel(regs)}
		for _, m := range []core.Mode{core.ModeScalar, core.ModeWideBus} {
			res, err := h.RunAll(RunSpec{Mode: m, Ports: 1, Regs: regs})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(HarmonicMeanIPC(res)))
		}
		res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: regs})
		if err != nil {
			return nil, err
		}
		row = append(row, f3(HarmonicMeanIPC(res)))
		for _, sm := range []int{128, 256, 512, 768} {
			res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: regs, SpecMem: sm})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(HarmonicMeanIPC(res)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: 256 regs + 768 spec positions ≈ unbounded monolithic file; the spec memory relieves register pressure")
	return t, nil
}

func expFig14(h *Harness) (*Table, error) {
	t := &Table{ID: "fig14", Title: "control independence vs. full dynamic vectorization [12] (2 wide ports)",
		Header: []string{"config", "ci", "vect", "ci wrong-spec%", "vect wrong-spec%"}}
	for _, regs := range regSweep {
		ciRes, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 2, Regs: regs})
		if err != nil {
			return nil, err
		}
		vRes, err := h.RunAll(RunSpec{Mode: core.ModeVect, Ports: 2, Regs: regs})
		if err != nil {
			return nil, err
		}
		t.AddRow(regLabel(regs), f3(HarmonicMeanIPC(ciRes)), f3(HarmonicMeanIPC(vRes)),
			pct(wrongSpecFraction(ciRes)), pct(wrongSpecFraction(vRes)))
	}
	t.Notes = append(t.Notes,
		"paper: ci wins below ~700 registers; vect wins by ~4% only with unbounded registers",
		"paper: wrongly speculated work is 29.6% of executed instructions for ci vs 48.5% for vect")
	return t, nil
}

// wrongSpecFraction approximates the paper's "wrongly speculated
// instructions" metric: squashed wrong-path work plus replicas that
// never validated, over all executed instructions.
func wrongSpecFraction(res map[string]*core.Stats) float64 {
	// Sum in sorted-name order: float accumulation in map iteration
	// order is the HarmonicMeanIPC bug shape (PR 5), found again here
	// by the mapdet analyzer.
	var wrong, total float64
	for _, name := range sortedNames(res) {
		st := res[name]
		useful := float64(st.CommittedReuse)
		spec := float64(st.ReplicasDispatched)
		wasted := spec - useful
		if wasted < 0 {
			wasted = 0
		}
		wrong += float64(st.SquashedBP) + wasted
		total += float64(st.Committed) + float64(st.SquashedBP) + spec
	}
	if total == 0 {
		return 0
	}
	return wrong / total
}

func expRegs(h *Harness) (*Table, error) {
	t := &Table{ID: "regs", Title: "average physical registers in use, unbounded file (§2.4.2)",
		Header: []string{"bench", "no DAEC", "with DAEC", "peak no DAEC", "peak DAEC"}}
	noDaec, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 0, NoDAEC: true})
	if err != nil {
		return nil, err
	}
	daec, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 0})
	if err != nil {
		return nil, err
	}
	var avgN, avgD float64
	for _, name := range sortedNames(daec) {
		a, b := noDaec[name], daec[name]
		t.AddRow(name, f2(a.RegAvgInUse), f2(b.RegAvgInUse),
			fmt.Sprint(a.RegPeak), fmt.Sprint(b.RegPeak))
		avgN += a.RegAvgInUse
		avgD += b.RegAvgInUse
	}
	n := float64(len(daec))
	t.AddRow("INT(avg)", f2(avgN/n), f2(avgD/n), "", "")
	t.Notes = append(t.Notes,
		"paper: 812 registers in use on average without the DAEC scheme, 304 with it")
	return t, nil
}

func expStores(h *Harness) (*Table, error) {
	t := &Table{ID: "stores", Title: "stores conflicting with replica address ranges (§2.4.3)",
		Header: []string{"bench", "stores", "conflicts", "rate"}}
	res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 256})
	if err != nil {
		return nil, err
	}
	var rates []float64
	for _, name := range sortedNames(res) {
		st := res[name]
		t.AddRow(name, u64(st.Stores), u64(st.StoreConflicts), pct(st.StoreConflictRate()))
		rates = append(rates, st.StoreConflictRate())
	}
	sort.Float64s(rates)
	t.Notes = append(t.Notes,
		"paper: fewer than 3% of stores write an address previously read by a speculative load")
	return t, nil
}
