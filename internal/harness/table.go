package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series the paper's
// corresponding figure reports.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry the paper's headline observations for the experiment
	// (the shape the reproduction is expected to match).
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func u64(v uint64) string  { return fmt.Sprintf("%d", v) }
