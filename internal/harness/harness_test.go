package harness

import (
	"strings"
	"testing"

	"civect/internal/core"
	"civect/sim"
)

// tinyOptions keeps harness tests fast: a few benchmarks, small budget.
func tinyOptions() Options {
	return Options{
		MaxInstr: 15_000,
		Benches:  []string{"gcc", "gzip", "eon"},
	}
}

func TestRunMemoization(t *testing.T) {
	h := New(tinyOptions())
	spec := RunSpec{Bench: "gcc", Mode: core.ModeScalar, Ports: 1, Regs: 256}
	a, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical specs must hit the cache (same *Stats)")
	}
}

func TestRunDefaults(t *testing.T) {
	h := New(tinyOptions())
	st, err := h.Run(RunSpec{Bench: "gzip", Mode: core.ModeWideBus})
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < 15_000 {
		t.Errorf("committed %d, want >= budget", st.Committed)
	}
}

func TestRunUnknownBench(t *testing.T) {
	h := New(tinyOptions())
	if _, err := h.Run(RunSpec{Bench: "nosuch", Mode: core.ModeScalar}); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestRunAllParallel(t *testing.T) {
	h := New(tinyOptions())
	res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for name, st := range res {
		if st.IPC() <= 0 {
			t.Errorf("%s: IPC %v", name, st.IPC())
		}
	}
}

func TestWorkersOneSerializes(t *testing.T) {
	opt := tinyOptions()
	opt.Workers = 1
	h := New(opt)
	// Fan out over benchmarks and two concurrent experiments: plenty of
	// parallel demand, all of which the semaphore must serialize.
	if _, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 256}); err != nil {
		t.Fatal(err)
	}
	fig5, _ := ExperimentByID("fig5")
	fig8, _ := ExperimentByID("fig8")
	if _, err := RunExperiments(h, []Experiment{fig5, fig8}); err != nil {
		t.Fatal(err)
	}
	if got := h.MaxConcurrent(); got != 1 {
		t.Fatalf("Options.Workers=1 must serialize simulations; observed %d in flight", got)
	}
}

func TestWorkersBoundRespected(t *testing.T) {
	opt := tinyOptions()
	opt.Workers = 2
	h := New(opt)
	if _, err := h.RunAll(RunSpec{Mode: core.ModeScalar, Ports: 1, Regs: 256}); err != nil {
		t.Fatal(err)
	}
	if got := h.MaxConcurrent(); got > 2 {
		t.Fatalf("Options.Workers=2 exceeded: observed %d in flight", got)
	}
}

func TestRunExperimentsMatchesSerial(t *testing.T) {
	par := New(tinyOptions())
	fig5, _ := ExperimentByID("fig5")
	cost, _ := ExperimentByID("cost")
	tables, err := RunExperiments(par, []Experiment{cost, fig5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "cost" || tables[1].ID != "fig5" {
		t.Fatalf("tables out of order: %+v", tables)
	}
	ser := New(tinyOptions())
	for i, e := range []Experiment{cost, fig5} {
		want, err := e.Run(ser)
		if err != nil {
			t.Fatal(err)
		}
		if got := tables[i].String(); got != want.String() {
			t.Errorf("%s: parallel table differs from serial:\n%s\n---\n%s", e.ID, got, want)
		}
	}
}

// TestBatchWidthsMatch pins the -batch flag's contract: the rendered
// experiment tables are byte-identical whether the sweep prefetch runs
// batched (lockstep lanes, duplicate coalescing) or as legacy
// sequential sessions.
func TestBatchWidthsMatch(t *testing.T) {
	fig5, _ := ExperimentByID("fig5")
	fig8, _ := ExperimentByID("fig8")
	exps := []Experiment{fig5, fig8}
	var want []string
	for _, width := range []int{1, 0, 3} {
		opt := tinyOptions()
		opt.BatchWidth = width
		tables, err := RunExperiments(New(opt), exps)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(tables))
		for i, tab := range tables {
			got[i] = tab.String()
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("batch width %d: %s table differs from sequential:\n%s\n---\n%s",
					width, exps[i].ID, got[i], want[i])
			}
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	a := &core.Stats{Cycles: 100, Committed: 100} // IPC 1
	b := &core.Stats{Cycles: 100, Committed: 300} // IPC 3
	hm := HarmonicMeanIPC(map[string]*core.Stats{"a": a, "b": b})
	if hm < 1.49 || hm > 1.51 { // 2/(1/1+1/3) = 1.5
		t.Errorf("harmonic mean = %v, want 1.5", hm)
	}
	if HarmonicMeanIPC(nil) != 0 {
		t.Error("empty set -> 0")
	}
	if HarmonicMeanIPC(map[string]*core.Stats{"z": {}}) != 0 {
		t.Error("zero IPC member -> 0")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	wantIDs := []string{"cost", "fig4", "fig5", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "regs", "stores", "ablate"}
	if len(exps) != len(wantIDs) {
		t.Fatalf("got %d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, id := range wantIDs {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if _, ok := ExperimentByID(id); !ok {
			t.Errorf("ExperimentByID(%s) not found", id)
		}
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown id must not resolve")
	}
}

func TestCostExperiment(t *testing.T) {
	h := New(tinyOptions())
	e, _ := ExperimentByID("cost")
	tab, err := e.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "11520") || !strings.Contains(s, "24576") {
		t.Errorf("cost table missing paper numbers:\n%s", s)
	}
}

// The shape assertions the reproduction stands on (small budget, so the
// thresholds are lenient; EXPERIMENTS.md records full-budget numbers).
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := New(tinyOptions())
	scal, err := h.RunAll(RunSpec{Mode: core.ModeScalar, Ports: 1, Regs: 512})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := h.RunAll(RunSpec{Mode: core.ModeWideBus, Ports: 1, Regs: 512})
	if err != nil {
		t.Fatal(err)
	}
	ciRes, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 512})
	if err != nil {
		t.Fatal(err)
	}
	hmScal, hmWB, hmCI := HarmonicMeanIPC(scal), HarmonicMeanIPC(wb), HarmonicMeanIPC(ciRes)
	if hmWB < hmScal*0.98 {
		t.Errorf("wide bus should not lose to scalar: wb=%.3f scal=%.3f", hmWB, hmScal)
	}
	if hmCI <= hmWB {
		t.Errorf("ci must beat wb at 512 regs: ci=%.3f wb=%.3f", hmCI, hmWB)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	h := New(tinyOptions())
	res, err := h.RunAll(RunSpec{Mode: core.ModeCI, Ports: 1, Regs: 256})
	if err != nil {
		t.Fatal(err)
	}
	// On mispredict-rich benchmarks the mechanism must select and reuse
	// for a large fraction of episodes.
	st := res["gcc"]
	if st.Mispredicts == 0 || st.EpisodesReused == 0 {
		t.Errorf("gcc: mispredicts=%d episodes reused=%d", st.Mispredicts, st.EpisodesReused)
	}
	if st.EpisodesSelected < st.EpisodesReused {
		t.Error("selected episodes must include reused episodes")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Notes = append(tab.Notes, "hello")
	s := tab.String()
	for _, want := range []string{"== x: t ==", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestWindowRule(t *testing.T) {
	// specOptions must apply the paper's window sizing rule; resolve
	// the options through a real session so the test pins what actually
	// runs.
	w, err := sim.Load("gcc")
	if err != nil {
		t.Fatal(err)
	}
	configFor := func(s RunSpec) core.Config {
		sess, err := sim.New(w, specOptions(s)...)
		if err != nil {
			t.Fatal(err)
		}
		return sess.Config()
	}
	cfg := configFor(RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 768})
	if cfg.WindowSize != 768 {
		t.Errorf("window = %d, want 768", cfg.WindowSize)
	}
	cfg = configFor(RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 2, Regs: 128})
	if cfg.WindowSize != 256 || cfg.DL1Ports != 2 {
		t.Errorf("window=%d ports=%d", cfg.WindowSize, cfg.DL1Ports)
	}
}

// TestPlanMatchesExecution closes the data-dependent-spec hazard at
// its root: dry-running the full experiment registry against a
// recording planner must enumerate exactly the specs the real harness
// is asked to simulate. If an experiment ever made its spec choices
// depend on simulation results, the two sets would diverge.
func TestPlanMatchesExecution(t *testing.T) {
	opt := Options{MaxInstr: 4000, Benches: []string{"gcc", "gzip"}}

	planner := NewPlanner(opt)
	if _, err := RunExperiments(planner, Experiments()); err != nil {
		t.Fatal(err)
	}
	planned := planner.PlannedSpecs()

	real := New(opt)
	if _, err := RunExperiments(real, Experiments()); err != nil {
		t.Fatal(err)
	}
	executed := real.ExecutedSpecs()

	if len(planned) != len(executed) {
		t.Fatalf("plan has %d specs, execution requested %d", len(planned), len(executed))
	}
	for i := range planned {
		if planned[i] != executed[i] {
			t.Errorf("spec %d: planned %s, executed %s", i, planned[i].Key(), executed[i].Key())
		}
	}
	if extra := real.UnusedPrimed(); len(extra) > 0 {
		t.Errorf("real harness reports %d unused cached specs", len(extra))
	}
}
