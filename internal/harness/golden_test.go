package harness

import (
	"fmt"
	"testing"

	"civect/internal/core"
)

// TestGoldenStats pins exact simulation statistics for a spread of
// fixed-seed workloads and machine configurations. The simulator is
// deterministic, so any change to these digests means the modeled
// machine behaved differently — the hot-path optimisations (buffer
// pooling, dense tables, the active-entry worklist) are required to be
// semantics-preserving, and this test is the tripwire.
//
// The values were recorded after the worklist aliasing fix (an SRSMT
// way's next incarnation used to inherit its predecessor's worklist
// listing and got two replica-arbitration turns per cycle); the scalar
// and wide-bus rows are bit-identical with the original seed, the
// vectorizing rows differ from the seed only through that fix.
func TestGoldenStats(t *testing.T) {
	cases := []struct {
		spec RunSpec
		want string
	}{
		{RunSpec{Bench: "gcc", Mode: core.ModeScalar, Ports: 1, Regs: 256, MaxInstr: 40000},
			"30626 40000 0 89726 49665 0 766 0 0 0 0 5301"},
		{RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 256, MaxInstr: 40000},
			"28968 40004 11470 50950 10900 17467 798 1294 577 0 0 4796"},
		{RunSpec{Bench: "gzip", Mode: core.ModeCI, Ports: 2, Regs: 512, Replicas: 8, MaxInstr: 40000},
			"11159 40000 7909 61733 21709 20678 499 1094 984 0 0 3494"},
		{RunSpec{Bench: "mcf", Mode: core.ModeCIIW, Ports: 1, Regs: 256, MaxInstr: 40000},
			"178901 40003 5762 52233 12010 0 903 0 0 6881 0 6353"},
		{RunSpec{Bench: "parser", Mode: core.ModeVect, Ports: 2, Regs: 256, MaxInstr: 40000},
			"23734 40005 10878 54662 14638 22530 952 2544 1029 0 0 4965"},
		{RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 256, SpecMem: 768, MaxInstr: 40000},
			"20997 40005 11165 66218 26048 19038 837 1467 1002 0 14867 4336"},
		{RunSpec{Bench: "twolf", Mode: core.ModeWideBus, Ports: 1, Regs: 128, MaxInstr: 40000},
			"84410 40005 0 63100 23021 0 840 0 0 0 0 4378"},
		{RunSpec{Bench: "vpr", Mode: core.ModeCI, Ports: 1, Regs: 0, NoDAEC: true, MaxInstr: 40000},
			"11516 40005 5579 62263 22201 19519 620 2020 2012 0 0 4410"},
	}
	h := New(Options{Workers: 1})
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("%s-%v-p%d-r%d", c.spec.Bench, c.spec.Mode, c.spec.Ports, c.spec.Regs)
		t.Run(name, func(t *testing.T) {
			st, err := h.Run(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%d %d %d %d %d %d %d %d %d %d %d %d",
				st.Cycles, st.Committed, st.CommittedReuse, st.Fetched, st.SquashedBP,
				st.ReplicasDispatched, st.Mispredicts, st.VectorizedEntries,
				st.ValidationFails, st.IWCaptured, st.SpecMemCopies, st.L1D.Accesses)
			if got != c.want {
				t.Errorf("stats digest changed:\n got %s\nwant %s", got, c.want)
			}
		})
	}
}
