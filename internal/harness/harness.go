// Package harness regenerates every table and figure of the paper's
// evaluation (§3) over the synthetic SpecInt2000 workloads. Each
// experiment produces a Table whose rows mirror the series the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Runs are memoized (several figures share the same configurations).
// RunExperiments plans the whole sweep up front (a dry run against a
// recording planner), prefetches it through batched per-benchmark
// sim.Set sweeps — up to Options.BatchWidth configurations stepping in
// lockstep over one shared program — and then replays the experiments
// against the primed cache. Simulations are built and run exclusively
// through the public civect/sim façade; the harness adds memoization,
// planning and the experiment registry on top.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"civect/internal/core"
	"civect/sim"
)

// RunSpec identifies one simulation: a benchmark and the configuration
// axes the paper sweeps.
type RunSpec struct {
	Bench      string    `json:"bench"`
	Mode       core.Mode `json:"mode"`
	Ports      int       `json:"ports"`                 // L1D ports (1 or 2)
	Regs       int       `json:"regs"`                  // physical registers; 0 = unbounded
	Replicas   int       `json:"replicas,omitempty"`    //
	StridedPCs int       `json:"strided_pcs,omitempty"` //
	SpecMem    int       `json:"spec_mem,omitempty"`    // speculative data memory positions; 0 = none
	SpecMemLat int       `json:"spec_mem_lat,omitempty"`
	NoDAEC     bool      `json:"no_daec,omitempty"`
	NoMBSGate  bool      `json:"no_mbs_gate,omitempty"`
	MaxInstr   uint64    `json:"max_instr"`
}

// Key renders the spec as a canonical, unique string: the identity of a
// sweep cell. Shard partitioning sorts and deduplicates on it, so its
// format is load-bearing for shard-assignment stability (sweep's golden
// test pins it indirectly).
func (s RunSpec) Key() string {
	return fmt.Sprintf("%s|%s|p%d|r%d|rep%d|spc%d|sm%d|sml%d|daec%t|mbs%t|mi%d",
		s.Bench, s.Mode, s.Ports, s.Regs, s.Replicas, s.StridedPCs,
		s.SpecMem, s.SpecMemLat, s.NoDAEC, s.NoMBSGate, s.MaxInstr)
}

// Options configures a harness.
type Options struct {
	// MaxInstr is the committed-instruction budget per run (the paper
	// simulates 100M; the default here is 200k, enough for stable
	// shapes — scale it up with the -instr flag of cmd/ciexp).
	MaxInstr uint64
	// Benches restricts the benchmark set (default: all twelve).
	Benches []string
	// Workers bounds parallel simulations (default GOMAXPROCS).
	Workers int
	// BatchWidth is the lockstep width of prefetch sweeps (sim.Set
	// Width): 0 selects the automatic width, 1 forces the legacy
	// sequential path (one session per cell, no duplicate coalescing).
	// Results are bit-identical at every width.
	BatchWidth int
}

func (o Options) withDefaults() Options {
	if o.MaxInstr == 0 {
		o.MaxInstr = 200_000
	}
	if len(o.Benches) == 0 {
		o.Benches = sim.BaseWorkloads()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// harnessMode selects what Run does with a spec.
type harnessMode int

const (
	// modeSimulate runs the timing simulator (the default).
	modeSimulate harnessMode = iota
	// modePlan records the normalized spec and returns placeholder
	// stats without simulating: a dry run that enumerates the sweep.
	modePlan
	// modeOffline serves primed results only and errors on a cache
	// miss: table regeneration from merged shard results must never
	// silently re-simulate a missing cell.
	modeOffline
)

// plannerStats is the placeholder every planned run returns. The fields
// are nonzero so experiment code that derives ratios from them (IPC,
// episode fractions) stays on its ordinary paths; the resulting tables
// are discarded.
var plannerStats = &core.Stats{
	Cycles: 1000, Committed: 1500, Fetched: 2000,
	Mispredicts: 16, CondBranches: 64, EpisodesSelected: 8, EpisodesReused: 4,
	Loads: 100, Stores: 10,
}

// Harness memoizes simulation runs across experiments. A shared
// semaphore bounds simulation workers in flight regardless of how many
// experiments, prefetch sweeps or RunAll fan-outs share the harness, so
// Options.Workers is an end-to-end concurrency bound.
type Harness struct {
	opt  Options
	mode harnessMode

	mu    sync.Mutex
	cache map[RunSpec]*core.Stats
	// requested records every (normalized) spec Run was asked for,
	// memoized or not. Comparing it against a dry-run plan closes the
	// data-dependent-spec hazard: if an experiment's spec choices ever
	// depended on simulation results, planning and execution would
	// enumerate different sets, and the sweep machinery asserts on it
	// (sweep.RunShard, sweep.Tables).
	requested map[RunSpec]bool

	// sem bounds simulation workers; cur/maxCur (under mu) gauge them.
	sem    chan struct{}
	cur    int
	maxCur int
}

// New builds a harness.
func New(opt Options) *Harness {
	opt = opt.withDefaults()
	return &Harness{
		opt:       opt,
		cache:     make(map[RunSpec]*core.Stats),
		requested: make(map[RunSpec]bool),
		sem:       make(chan struct{}, opt.Workers),
	}
}

// acquire claims one simulation worker slot, updating the concurrency
// gauge; every slot claimed must be released.
func (h *Harness) acquire() {
	h.sem <- struct{}{}
	h.mu.Lock()
	h.cur++
	if h.cur > h.maxCur {
		h.maxCur = h.cur
	}
	h.mu.Unlock()
}

func (h *Harness) release() {
	h.mu.Lock()
	h.cur--
	h.mu.Unlock()
	<-h.sem
}

// NewPlanner builds a harness whose Run records specs instead of
// simulating: running the experiments against it enumerates the exact
// set of simulations a real harness with the same options would
// execute. Experiment control flow is data-independent (each Run
// returns fixed placeholder stats), so the recorded set is the sweep's
// deterministic cross-product.
func NewPlanner(opt Options) *Harness {
	h := New(opt)
	h.mode = modePlan
	return h
}

// NewOffline builds a harness that only serves results primed with
// Prime and fails on any other spec. It regenerates tables from
// externally produced (e.g. sharded) simulation results with a
// guarantee that nothing is silently re-simulated.
func NewOffline(opt Options) *Harness {
	h := New(opt)
	h.mode = modeOffline
	return h
}

// Prime installs a precomputed result for spec (normalized the same way
// Run normalizes before its cache lookup).
func (h *Harness) Prime(s RunSpec, st *core.Stats) {
	s = h.normalize(s)
	h.mu.Lock()
	h.cache[s] = st
	h.mu.Unlock()
}

// PlannedSpecs returns every spec recorded by a planner harness (or
// every cached spec of a regular one), sorted by Key.
func (h *Harness) PlannedSpecs() []RunSpec {
	h.mu.Lock()
	specs := make([]RunSpec, 0, len(h.cache))
	for s := range h.cache {
		specs = append(specs, s)
	}
	h.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
	return specs
}

// Options returns the harness options (with defaults applied).
func (h *Harness) Options() Options { return h.opt }

// ExecutedSpecs returns every spec Run was asked to produce (memoized
// hits included), sorted by Key. Planner harnesses record nothing
// here; use PlannedSpecs for those.
func (h *Harness) ExecutedSpecs() []RunSpec {
	h.mu.Lock()
	specs := make([]RunSpec, 0, len(h.requested))
	for s := range h.requested {
		specs = append(specs, s)
	}
	h.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
	return specs
}

// UnusedPrimed returns the primed specs no Run call ever requested,
// sorted by Key. On an offline harness fed from a validated sweep
// plan, a non-empty result means the experiments' actual spec choices
// diverged from the dry-run plan.
func (h *Harness) UnusedPrimed() []RunSpec {
	h.mu.Lock()
	var specs []RunSpec
	for s := range h.cache {
		if !h.requested[s] {
			specs = append(specs, s)
		}
	}
	h.mu.Unlock()
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
	return specs
}

// normalize applies the per-run defaults Run fills in before touching
// the cache, so cache keys, planned specs and primed specs agree.
func (h *Harness) normalize(s RunSpec) RunSpec {
	if s.MaxInstr == 0 {
		s.MaxInstr = h.opt.MaxInstr
	}
	if s.Ports == 0 {
		s.Ports = 1
	}
	return s
}

// specOptions translates a RunSpec into session options; WithRegs
// applies the paper's reorder-buffer sizing rule. The zero-valued
// sweep axes fall back to the Table 1 defaults exactly as the
// pre-façade config assembly did, so every golden table is pinned to
// this mapping.
func specOptions(s RunSpec) []sim.Option {
	opts := []sim.Option{
		sim.WithMode(sim.Mode(s.Mode)),
		sim.WithPorts(s.Ports),
		sim.WithRegs(s.Regs),
		sim.WithSpecMem(s.SpecMem),
		sim.WithInstrBudget(s.MaxInstr),
	}
	if s.Replicas > 0 {
		opts = append(opts, sim.WithReplicas(s.Replicas))
	}
	if s.StridedPCs > 0 {
		opts = append(opts, sim.WithStridedPCs(s.StridedPCs))
	}
	if s.SpecMemLat > 0 {
		opts = append(opts, sim.WithSpecMemLatency(s.SpecMemLat))
	}
	if s.NoDAEC {
		opts = append(opts, sim.WithDAEC(false))
	}
	if s.NoMBSGate {
		opts = append(opts, sim.WithConfigPatch(func(c *sim.Config) { c.DisableMBSGate = true }))
	}
	return opts
}

// Run simulates one spec (memoized). On a planner harness it records
// the spec and returns placeholder stats; on an offline harness it
// serves primed results and errors on anything else.
func (h *Harness) Run(s RunSpec) (*core.Stats, error) {
	s = h.normalize(s)
	switch h.mode {
	case modePlan:
		h.mu.Lock()
		h.cache[s] = plannerStats
		h.mu.Unlock()
		return plannerStats, nil
	case modeOffline:
		h.mu.Lock()
		h.requested[s] = true
		st, ok := h.cache[s]
		h.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("offline harness: no primed result for %s (incomplete shard coverage?)", s.Key())
		}
		return st, nil
	}
	h.mu.Lock()
	h.requested[s] = true
	if st, ok := h.cache[s]; ok {
		h.mu.Unlock()
		return st, nil
	}
	h.mu.Unlock()

	// Cache miss: simulate the spec as a one-point set. The prefetch
	// path keeps RunExperiments and sweep shards from ever landing
	// here; direct Run/RunAll callers pay one session per miss.
	w, err := sim.Load(s.Bench)
	if err != nil {
		return nil, err
	}
	set, err := sim.NewSet(w, sim.PointOpts(specOptions(s)))
	if err != nil {
		return nil, fmt.Errorf("%s/%v: %v", s.Bench, s.Mode, err)
	}
	h.acquire()
	results, err := set.Run(context.Background())
	h.release()
	if err != nil {
		return nil, fmt.Errorf("%s/%v: %v", s.Bench, s.Mode, err)
	}
	st := &results[0].Stats

	h.mu.Lock()
	// A concurrent identical miss may have raced us here; keep the
	// first result so memoized pointers stay stable (the stats are
	// bit-identical either way — the simulator is deterministic).
	if prev, ok := h.cache[s]; ok {
		st = prev
	} else {
		h.cache[s] = st
	}
	h.mu.Unlock()
	return st, nil
}

// Prefetch simulates the given specs through batched per-benchmark
// sim.Set sweeps and primes the cache, so subsequent Run calls for them
// are hits. Specs already cached are skipped; up to Options.Workers
// benchmark sweeps run concurrently, each stepping up to
// Options.BatchWidth configurations in lockstep. Prefetching does not
// mark specs as requested — plan-vs-execution accounting (ExecutedSpecs,
// UnusedPrimed) still reflects what the experiments actually ask for.
func (h *Harness) Prefetch(specs []RunSpec) error {
	seen := make(map[RunSpec]bool, len(specs))
	byBench := make(map[string][]RunSpec)
	h.mu.Lock()
	for _, s := range specs {
		s = h.normalize(s)
		if seen[s] {
			continue
		}
		seen[s] = true
		if _, ok := h.cache[s]; ok {
			continue
		}
		byBench[s.Bench] = append(byBench[s.Bench], s)
	}
	h.mu.Unlock()
	if len(byBench) == 0 {
		return nil
	}

	benches := make([]string, 0, len(byBench))
	for b := range byBench {
		benches = append(benches, b)
	}
	sort.Strings(benches)

	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, bench := range benches {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			errs[i] = h.prefetchBench(bench, byBench[bench])
		}(i, bench)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prefetchBench sweeps one benchmark's specs as a single batched set
// and primes each result.
func (h *Harness) prefetchBench(bench string, specs []RunSpec) error {
	w, err := sim.Load(bench)
	if err != nil {
		return err
	}
	points := make([]sim.PointOpts, len(specs))
	for i, s := range specs {
		points[i] = sim.PointOpts(specOptions(s))
	}
	set, err := sim.NewSet(w, points...)
	if err != nil {
		return fmt.Errorf("%s: %v", bench, err)
	}
	set.Width = h.opt.BatchWidth
	set.Workers = 1 // the harness semaphore is the concurrency bound
	h.acquire()
	results, err := set.Run(context.Background())
	h.release()
	if err != nil {
		return fmt.Errorf("%s: %v", bench, err)
	}
	for i, res := range results {
		h.Prime(specs[i], &res.Stats)
	}
	return nil
}

// MaxConcurrent returns the highest number of simulation workers that
// have executed simultaneously on this harness (never above
// Options.Workers; a lockstep prefetch sweep counts as one worker).
func (h *Harness) MaxConcurrent() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxCur
}

// RunExperiments plans the experiments' sweep with a dry run, batch-
// prefetches it, then runs the experiments concurrently — each in its
// own goroutine, every simulation already a cache hit — and returns
// their tables in input order. The first error wins. Planner and
// offline harnesses skip the prefetch (nothing to simulate).
func RunExperiments(h *Harness, exps []Experiment) ([]*Table, error) {
	if h.mode == modeSimulate {
		planner := NewPlanner(h.opt)
		if _, err := RunExperiments(planner, exps); err != nil {
			return nil, err
		}
		if err := h.Prefetch(planner.PlannedSpecs()); err != nil {
			return nil, err
		}
	}
	tables := make([]*Table, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	for i := range exps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], errs[i] = exps[i].Run(h)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
	}
	return tables, nil
}

// RunAll simulates one spec per benchmark in parallel and returns the
// stats keyed by benchmark name.
func (h *Harness) RunAll(base RunSpec) (map[string]*core.Stats, error) {
	type result struct {
		name string
		st   *core.Stats
		err  error
	}
	ch := make(chan result, len(h.opt.Benches))
	var wg sync.WaitGroup
	for _, name := range h.opt.Benches {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			s := base
			s.Bench = name
			st, err := h.Run(s)
			ch <- result{name, st, err}
		}(name)
	}
	wg.Wait()
	close(ch)
	out := make(map[string]*core.Stats, len(h.opt.Benches))
	for r := range ch {
		if r.err != nil {
			return nil, r.err
		}
		out[r.name] = r.st
	}
	return out, nil
}

// HarmonicMeanIPC aggregates per-benchmark IPCs the way the paper does
// ("harmonic means are used to average IPC across the whole benchmark
// suite"). The sum runs in sorted-name order: float addition is not
// associative at the last ulp, and map iteration order is random, so a
// fixed order is what makes the rendered tables genuinely
// byte-reproducible across runs, worker counts and processes (the
// sharded-sweep merge and the -workers 1 check both compare bytes).
func HarmonicMeanIPC(stats map[string]*core.Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var invSum float64
	for _, name := range sortedNames(stats) {
		ipc := stats[name].IPC()
		if ipc <= 0 {
			return 0
		}
		invSum += 1 / ipc
	}
	return float64(len(stats)) / invSum
}

// sortedNames returns map keys in stable order.
func sortedNames(m map[string]*core.Stats) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
