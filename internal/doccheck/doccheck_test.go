package doccheck

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLinks verifies every relative link and anchor in README.md and
// docs/*.md resolves: linked files exist, and linked #anchors name a
// heading of the target document.
func TestLinks(t *testing.T) {
	docs, err := LoadDocs()
	if err != nil {
		t.Fatal(err)
	}
	anchorsOf := map[string]map[string]bool{}
	for _, d := range docs {
		anchorsOf[filepath.ToSlash(d.Path)] = d.Anchors()
	}
	root := Root()
	for _, d := range docs {
		for _, l := range d.Links() {
			target := l.Target
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; not checked offline
			}
			path, anchor, _ := strings.Cut(target, "#")
			resolved := filepath.ToSlash(d.Path)
			if path != "" {
				rel := filepath.Join(filepath.Dir(d.Path), path)
				if _, err := os.Stat(filepath.Join(root, rel)); err != nil {
					t.Errorf("%s:%d: broken link %q: %v", l.Doc, l.Line, target, err)
					continue
				}
				resolved = filepath.ToSlash(rel)
			}
			if anchor != "" {
				as, ok := anchorsOf[resolved]
				if !ok {
					// Anchor into a file outside the doc set (e.g. a
					// source file): existence was checked above.
					continue
				}
				if !as[anchor] {
					t.Errorf("%s:%d: link %q: no heading with anchor #%s in %s",
						l.Doc, l.Line, target, anchor, resolved)
				}
			}
		}
	}
}

// TestGoSnippetsCompile compiles every ```go fence in docs/*.md as a
// standalone file against this module, so documented code cannot rot.
func TestGoSnippetsCompile(t *testing.T) {
	docs, err := LoadDocs()
	if err != nil {
		t.Fatal(err)
	}
	snips, err := GoSnippets(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(snips) == 0 {
		t.Fatal("no Go snippets found in docs/ — the check is wired to nothing")
	}
	root, err := filepath.Abs(Root())
	if err != nil {
		t.Fatal(err)
	}
	// The scratch directory must live inside the module tree so the
	// snippets may import civect/internal/... (Go's internal-package
	// rule resolves by file location). The underscore prefix makes the
	// go tool skip it during package walks (`go build ./...`).
	dir, err := os.MkdirTemp(root, "_docsnip")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	for i, s := range snips {
		src := filepath.Join(dir, fmt.Sprintf("snip%d.go", i))
		if err := os.WriteFile(src, []byte(s.Code), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "build", "-o", os.DevNull, src)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("%s:%d: snippet does not compile:\n%s", s.Doc, s.Line, out)
		}
	}
}

// TestSlug pins the anchor slugger against GitHub's behavior for the
// heading shapes the docs use.
func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Architecture":   "architecture",
		"Build and test": "build-and-test",
		"The cycle-trace journal format (`civt`, version 1)": "the-cycle-trace-journal-format-civt-version-1",
		"Timing engines — `internal/core`":                   "timing-engines--internalcore",
		"Step 1: record a good and a suspect journal":        "step-1-record-a-good-and-a-suspect-journal",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}
