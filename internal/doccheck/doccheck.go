// Package doccheck keeps the repo's documentation honest. Its tests
// (run as part of the tier-1 suite and CI's docs job) verify that
// every relative link and intra-document anchor in README.md and
// docs/*.md resolves, and that every fenced Go snippet in docs/*.md
// compiles against the module as written — so the docs cannot drift
// into pointing at files that moved or showing code that no longer
// builds.
package doccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Doc is one markdown file under check.
type Doc struct {
	// Path is the file's path relative to the repository root.
	Path string
	// Lines is the file content split into lines.
	Lines []string
}

// Root returns the repository root relative to this package's
// directory (where `go test` runs).
func Root() string { return filepath.Join("..", "..") }

// LoadDocs reads README.md and every docs/*.md file.
func LoadDocs() ([]Doc, error) {
	root := Root()
	paths := []string{"README.md"}
	entries, err := os.ReadDir(filepath.Join(root, "docs"))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			paths = append(paths, filepath.Join("docs", e.Name()))
		}
	}
	var docs []Doc
	for _, p := range paths {
		b, err := os.ReadFile(filepath.Join(root, p))
		if err != nil {
			return nil, err
		}
		docs = append(docs, Doc{Path: p, Lines: strings.Split(string(b), "\n")})
	}
	return docs, nil
}

// linkRE matches markdown inline links [text](target); images share
// the syntax and are covered too.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// Link is one markdown link occurrence.
type Link struct {
	Doc    string // source document path
	Line   int    // 1-based line number
	Target string // raw link target
}

// Links extracts every inline link target from the document, skipping
// fenced code blocks (their bracket syntax is code, not markdown).
func (d Doc) Links() []Link {
	var links []Link
	inFence := false
	for i, line := range d.Lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			links = append(links, Link{Doc: d.Path, Line: i + 1, Target: m[1]})
		}
	}
	return links
}

// headingRE matches ATX headings.
var headingRE = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*$`)

// slugStrip removes the characters GitHub's anchor slugger drops.
var slugStrip = regexp.MustCompile(`[^\p{L}\p{N} _-]`)

// Slug reduces a heading to its GitHub anchor slug: lowercase,
// punctuation stripped, spaces to hyphens.
func Slug(heading string) string {
	// Inline code and links keep their visible text.
	h := strings.NewReplacer("`", "", "[", "", "]", "").Replace(heading)
	if i := strings.Index(h, "]("); i >= 0 { // defensive; links already stripped
		h = h[:i]
	}
	h = strings.ToLower(h)
	h = slugStrip.ReplaceAllString(h, "")
	h = strings.ReplaceAll(h, " ", "-")
	return h
}

// Anchors returns the set of anchor slugs the document defines.
func (d Doc) Anchors() map[string]bool {
	anchors := map[string]bool{}
	inFence := false
	for _, line := range d.Lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRE.FindStringSubmatch(line); m != nil {
			slug := Slug(m[1])
			// GitHub de-duplicates repeated headings with -1, -2, …;
			// the checker accepts only the first occurrence, which is
			// all the repo's docs use.
			if !anchors[slug] {
				anchors[slug] = true
			}
		}
	}
	return anchors
}

// Snippet is one fenced code block.
type Snippet struct {
	Doc  string // source document path
	Line int    // 1-based line of the opening fence
	Info string // the fence info string ("go", "sh", "text", ...)
	Code string
}

// Snippets returns every fenced code block in the document.
func (d Doc) Snippets() []Snippet {
	var snips []Snippet
	var cur *Snippet
	var body []string
	for i, line := range d.Lines {
		t := strings.TrimSpace(line)
		if cur == nil {
			if rest, ok := strings.CutPrefix(t, "```"); ok {
				cur = &Snippet{Doc: d.Path, Line: i + 1, Info: strings.TrimSpace(rest)}
				body = body[:0]
			}
			continue
		}
		if t == "```" {
			cur.Code = strings.Join(body, "\n") + "\n"
			snips = append(snips, *cur)
			cur = nil
			continue
		}
		body = append(body, line)
	}
	return snips
}

// GoSnippets filters to the fences the compile check owns: info string
// "go" compiles as a standalone file; "go ignore" is explicitly
// exempted (and anything else — sh, text — is not Go).
func GoSnippets(docs []Doc) ([]Snippet, error) {
	var out []Snippet
	for _, d := range docs {
		if !strings.HasPrefix(d.Path, "docs"+string(filepath.Separator)) &&
			!strings.HasPrefix(d.Path, "docs/") {
			continue // README snippets are illustrative fragments, not compiled
		}
		for _, s := range d.Snippets() {
			fields := strings.Fields(s.Info)
			if len(fields) == 0 || fields[0] != "go" {
				continue
			}
			if len(fields) > 1 && fields[1] == "ignore" {
				continue
			}
			if !strings.Contains(s.Code, "package ") {
				return nil, fmt.Errorf("%s:%d: go fence has no package clause; make it a complete file or mark it ```go ignore", s.Doc, s.Line)
			}
			out = append(out, s)
		}
	}
	return out, nil
}
