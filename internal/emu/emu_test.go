package emu

import (
	"testing"

	"civect/internal/asm"
	"civect/internal/isa"
	"civect/internal/mem"
)

func TestArithmetic(t *testing.T) {
	src := `
        movi r1, 10
        movi r2, 3
        add  r3, r1, r2   ; 13
        sub  r4, r1, r2   ; 7
        mul  r5, r1, r2   ; 30
        div  r6, r1, r2   ; 3
        movi r7, 0
        div  r8, r1, r7   ; div by zero -> 0
        and  r9, r1, r2   ; 2
        or   r10, r1, r2  ; 11
        xor  r11, r1, r2  ; 9
        shli r12, r1, 2   ; 40
        shri r13, r1, 1   ; 5
        slt  r14, r2, r1  ; 1
        slti r15, r1, 5   ; 0
        seq  r16, r1, r1  ; 1
        seqi r17, r1, 10  ; 1
        mov  r18, r5      ; 30
        halt
`
	c := New(nil)
	if err := c.Run(asm.MustAssemble("arith", src), 0); err != nil {
		t.Fatal(err)
	}
	want := map[isa.Reg]uint64{
		3: 13, 4: 7, 5: 30, 6: 3, 8: 0, 9: 2, 10: 11, 11: 9,
		12: 40, 13: 5, 14: 1, 15: 0, 16: 1, 17: 1, 18: 30,
	}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("R%d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestSignedComparison(t *testing.T) {
	src := `
        movi r1, -1
        movi r2, 1
        slt  r3, r1, r2   ; -1 < 1 signed -> 1
        slti r4, r1, 0    ; -1 < 0 -> 1
        halt
`
	c := New(nil)
	if err := c.Run(asm.MustAssemble("signed", src), 0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != 1 || c.Regs[4] != 1 {
		t.Errorf("signed compares wrong: r3=%d r4=%d", c.Regs[3], c.Regs[4])
	}
}

func TestLoadStore(t *testing.T) {
	src := `
        movi r1, 0x100
        movi r2, 77
        st   r2, 0(r1)
        ld   r3, 0(r1)
        ld   r4, 8(r1)   ; unmapped -> 0
        halt
`
	c := New(nil)
	if err := c.Run(asm.MustAssemble("ls", src), 0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != 77 {
		t.Errorf("R3 = %d, want 77", c.Regs[3])
	}
	if c.Regs[4] != 0 {
		t.Errorf("R4 = %d, want 0", c.Regs[4])
	}
	if c.Mem.Read64(0x100) != 77 {
		t.Error("store did not reach memory")
	}
}

// TestHammockFigure1 runs the paper's Figure 1 kernel over a 50-element
// array and checks the three architectural results: count of zero
// elements, count of non-zero elements, and the element sum.
func TestHammockFigure1(t *testing.T) {
	m := mem.New()
	zeros, nonzeros, sum := 0, 0, uint64(0)
	for i := 0; i < 50; i++ {
		var v uint64
		if i%3 == 0 {
			v = 0
		} else {
			v = uint64(i)
		}
		m.Write64(uint64(i*8), v)
		if v == 0 {
			zeros++
		} else {
			nonzeros++
		}
		sum += v
	}
	src := `
        movi r1, 0
        movi r2, 0
        movi r3, 0
        movi r4, 0
loop:   ld   r0, 0(r1)
        bnez r0, else
        addi r3, r3, 1     ; zero count (paper's R3)
        jmp  join
else:   addi r2, r2, 1     ; non-zero count (paper's R2)
join:   add  r4, r4, r0
        addi r1, r1, 8
        slti r5, r1, 400
        bnez r5, loop
        halt
`
	c := New(m)
	if err := c.Run(asm.MustAssemble("hammock", src), 0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != uint64(zeros) {
		t.Errorf("zero count = %d, want %d", c.Regs[3], zeros)
	}
	if c.Regs[2] != uint64(nonzeros) {
		t.Errorf("non-zero count = %d, want %d", c.Regs[2], nonzeros)
	}
	if c.Regs[4] != sum {
		t.Errorf("sum = %d, want %d", c.Regs[4], sum)
	}
}

func TestBranches(t *testing.T) {
	src := `
        movi r1, 3
        movi r2, 0
loop:   addi r2, r2, 1
        subi r1, r1, 1
        bnez r1, loop
        beqz r1, end
        movi r2, 999     ; skipped
end:    halt
`
	c := New(nil)
	if err := c.Run(asm.MustAssemble("br", src), 0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[2] != 3 {
		t.Errorf("R2 = %d, want 3", c.Regs[2])
	}
}

func TestJmp(t *testing.T) {
	src := `
        jmp over
        movi r1, 1   ; skipped
over:   movi r2, 2
        halt
`
	c := New(nil)
	if err := c.Run(asm.MustAssemble("jmp", src), 0); err != nil {
		t.Fatal(err)
	}
	if c.Regs[1] != 0 || c.Regs[2] != 2 {
		t.Errorf("r1=%d r2=%d", c.Regs[1], c.Regs[2])
	}
}

func TestRunLimit(t *testing.T) {
	src := `
loop:   jmp loop
        halt
`
	c := New(nil)
	err := c.Run(asm.MustAssemble("inf", src), 100)
	if err != ErrLimit {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	if c.Executed != 100 {
		t.Errorf("executed = %d, want 100", c.Executed)
	}
}

func TestStepAfterHalt(t *testing.T) {
	p := asm.MustAssemble("h", "halt\n")
	c := New(nil)
	c.StepOne(p)
	if !c.Halted {
		t.Fatal("should be halted")
	}
	before := c.Executed
	s := c.StepOne(p)
	if s.Instr.Op != isa.OpHalt {
		t.Error("step after halt should report halt")
	}
	if c.Executed != before {
		t.Error("step after halt must not count instructions")
	}
}

func TestStepMetadata(t *testing.T) {
	src := `
        movi r1, 0x200
        ld   r2, 8(r1)
        st   r1, 16(r1)
        beqz r2, 0
        halt
`
	p := asm.MustAssemble("meta", src)
	c := New(nil)

	s := c.StepOne(p)
	if !s.HasDest || s.Dest != 1 || s.Value != 0x200 {
		t.Errorf("movi step = %+v", s)
	}
	s = c.StepOne(p)
	if s.Addr != 0x208 || !s.HasDest || s.Dest != 2 {
		t.Errorf("ld step = %+v", s)
	}
	s = c.StepOne(p)
	if s.Addr != 0x210 || s.Value != 0x200 || s.HasDest {
		t.Errorf("st step = %+v", s)
	}
	s = c.StepOne(p)
	if !s.Taken || s.NextPC != 0 {
		t.Errorf("beqz step = %+v (r2 is 0, should be taken)", s)
	}
}

func TestRegChecksumSensitivity(t *testing.T) {
	a, b := New(nil), New(nil)
	if a.RegChecksum() != b.RegChecksum() {
		t.Error("equal states must have equal checksums")
	}
	a.Regs[5] = 1
	if a.RegChecksum() == b.RegChecksum() {
		t.Error("checksum must depend on register values")
	}
	b.Regs[6] = 1
	if a.RegChecksum() == b.RegChecksum() {
		t.Error("checksum must depend on register position")
	}
}
