package emu

import "civect/internal/isa"

// State is a CPU's architectural register state: everything the emulator
// carries outside data memory. Memory is deliberately not part of it —
// checkpoints serialize memory separately as sparse deltas over the
// workload's initial image, and the profiling paths that snapshot every
// interval boundary want the O(1) register copy, not an O(pages) clone.
type State struct {
	Regs     [isa.NumLogical]uint64
	PC       int
	Halted   bool
	Executed uint64
}

// Snapshot captures the CPU's architectural register state.
func (c *CPU) Snapshot() State {
	return State{Regs: c.Regs, PC: c.PC, Halted: c.Halted, Executed: c.Executed}
}

// Restore rewinds the CPU's architectural register state to a snapshot.
// Data memory is left as it is: callers restoring a mid-run snapshot
// pair it with a memory image captured at the same point.
func (c *CPU) Restore(s State) {
	c.Regs = s.Regs
	c.PC = s.PC
	c.Halted = s.Halted
	c.Executed = s.Executed
}
