// Package emu implements the architectural (functional) emulator for the
// ISA. It executes programs one instruction at a time with no timing
// model and serves as the golden reference: every timing-simulator mode
// must commit exactly this architectural behaviour.
package emu

import (
	"fmt"

	"civect/internal/isa"
	"civect/internal/mem"
)

// Step describes the architectural effect of a single executed
// instruction; the timing simulator's tests use it to cross-check
// committed instructions, and trace-driven analyses consume it directly.
type Step struct {
	PC    int
	Instr isa.Instr
	// NextPC is the PC after this instruction (branch-resolved).
	NextPC int
	// Taken is set for conditional branches that were taken.
	Taken bool
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Value is the register result (loads/ALU) or the stored value.
	Value uint64
	// WrotePC is the destination register when the instruction writes one.
	Dest    isa.Reg
	HasDest bool
}

// CPU is the architectural machine state.
type CPU struct {
	Regs   [isa.NumLogical]uint64
	PC     int
	Mem    *mem.Memory
	Halted bool

	// Executed counts architecturally executed instructions.
	Executed uint64
}

// New returns a CPU with zeroed registers starting at PC 0 over m.
func New(m *mem.Memory) *CPU {
	if m == nil {
		m = mem.New()
	}
	return &CPU{Mem: m}
}

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = fmt.Errorf("emu: instruction limit reached")

// StepOne executes the instruction at the current PC and advances.
// Calling StepOne on a halted CPU is a no-op returning a Halt step.
func (c *CPU) StepOne(p *isa.Program) Step {
	in := p.At(c.PC)
	s := Step{PC: c.PC, Instr: in, NextPC: c.PC + 1}
	if c.Halted {
		s.Instr = isa.Instr{Op: isa.OpHalt}
		s.NextPC = c.PC
		return s
	}

	ra := c.Regs[in.Ra]
	rb := c.Regs[in.Rb]
	switch in.Op {
	case isa.OpNop:
	case isa.OpMovI:
		s.Value = uint64(in.Imm)
	case isa.OpMov:
		s.Value = ra
	case isa.OpAdd:
		s.Value = ra + rb
	case isa.OpAddI:
		s.Value = ra + uint64(in.Imm)
	case isa.OpSub:
		s.Value = ra - rb
	case isa.OpSubI:
		s.Value = ra - uint64(in.Imm)
	case isa.OpMul:
		s.Value = ra * rb
	case isa.OpDiv:
		if rb == 0 {
			s.Value = 0
		} else {
			s.Value = ra / rb
		}
	case isa.OpAnd:
		s.Value = ra & rb
	case isa.OpOr:
		s.Value = ra | rb
	case isa.OpXor:
		s.Value = ra ^ rb
	case isa.OpShlI:
		s.Value = ra << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		s.Value = ra >> (uint64(in.Imm) & 63)
	case isa.OpSLT:
		if int64(ra) < int64(rb) {
			s.Value = 1
		}
	case isa.OpSLTI:
		if int64(ra) < in.Imm {
			s.Value = 1
		}
	case isa.OpSEQ:
		if ra == rb {
			s.Value = 1
		}
	case isa.OpSEQI:
		if ra == uint64(in.Imm) {
			s.Value = 1
		}
	case isa.OpLd:
		s.Addr = ra + uint64(in.Imm)
		s.Value = c.Mem.Read64(s.Addr)
	case isa.OpSt:
		s.Addr = ra + uint64(in.Imm)
		s.Value = rb
		c.Mem.Write64(s.Addr, rb)
	case isa.OpBEQZ:
		if ra == 0 {
			s.Taken = true
			s.NextPC = in.Target
		}
	case isa.OpBNEZ:
		if ra != 0 {
			s.Taken = true
			s.NextPC = in.Target
		}
	case isa.OpJmp:
		s.Taken = true
		s.NextPC = in.Target
	case isa.OpHalt:
		c.Halted = true
		s.NextPC = c.PC
	}

	if rd, ok := in.WritesReg(); ok {
		c.Regs[rd] = s.Value
		s.Dest, s.HasDest = rd, true
	}
	c.PC = s.NextPC
	c.Executed++
	return s
}

// Run executes the program until it halts or maxInstr instructions have
// executed (maxInstr <= 0 means no limit). It returns ErrLimit if the
// budget ran out first.
func (c *CPU) Run(p *isa.Program, maxInstr uint64) error {
	for !c.Halted {
		if maxInstr > 0 && c.Executed >= maxInstr {
			return ErrLimit
		}
		c.StepOne(p)
	}
	return nil
}

// RegChecksum digests the architectural register file; combined with
// Memory.Checksum it identifies the full architectural state.
func (c *CPU) RegChecksum() uint64 {
	var sum uint64
	for i, v := range c.Regs {
		x := (uint64(i)+1)*0x9e3779b97f4a7c15 + v
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		sum += x
	}
	return sum
}
