package emu

import (
	"testing"

	"civect/internal/asm"
	"civect/internal/mem"
)

// TestSnapshotRestoreRoundTrip anchors Snapshot/Restore on RegChecksum:
// a CPU snapshotted mid-run and restored onto a fresh CPU over a cloned
// memory must finish the program with the identical architectural digest
// (register checksum, memory checksum, executed count, final PC) as the
// uninterrupted run.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := `
        movi r1, 0        ; sum
        movi r2, 0        ; i
        movi r3, 200      ; limit
        movi r4, 4096     ; array base
loop:   shli r5, r2, 3
        add  r5, r5, r4
        ld   r6, 0(r5)
        add  r6, r6, r2
        st   r6, 0(r5)
        add  r1, r1, r6
        addi r2, r2, 1
        slt  r7, r2, r3
        bnez r7, loop
        st   r1, 0(r4)
        halt
`
	prog := asm.MustAssemble("snaproll", src)

	// Reference: run straight through.
	ref := New(mem.New())
	if err := ref.Run(prog, 0); err != nil {
		t.Fatal(err)
	}

	// Snapshot mid-run at several split points, including before the
	// first instruction and exactly at the halt.
	for _, split := range []uint64{0, 1, 137, 500, ref.Executed} {
		c := New(mem.New())
		for !c.Halted && c.Executed < split {
			c.StepOne(prog)
		}
		snap := c.Snapshot()
		memAtSplit := c.Mem.Clone()

		// Perturb the original CPU past the split, then restore in place:
		// Restore must fully rewind the register state.
		for i := 0; i < 10 && !c.Halted; i++ {
			c.StepOne(prog)
		}
		c.Restore(snap)
		c.Mem = memAtSplit
		if got := c.Snapshot(); got != snap {
			t.Fatalf("split %d: snapshot after restore differs: %+v vs %+v", split, got, snap)
		}

		if err := c.Run(prog, 0); err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if got, want := c.RegChecksum(), ref.RegChecksum(); got != want {
			t.Errorf("split %d: register checksum %#x, want %#x", split, got, want)
		}
		if got, want := c.Mem.Checksum(), ref.Mem.Checksum(); got != want {
			t.Errorf("split %d: memory checksum %#x, want %#x", split, got, want)
		}
		if c.Executed != ref.Executed {
			t.Errorf("split %d: executed %d, want %d", split, c.Executed, ref.Executed)
		}
		if c.PC != ref.PC {
			t.Errorf("split %d: final PC %d, want %d", split, c.PC, ref.PC)
		}
	}
}

// TestSnapshotIsolation: a snapshot is a value copy — mutating the CPU
// afterwards must not alter it.
func TestSnapshotIsolation(t *testing.T) {
	c := New(nil)
	c.Regs[5] = 99
	snap := c.Snapshot()
	c.Regs[5] = 1
	c.PC = 42
	if snap.Regs[5] != 99 || snap.PC != 0 {
		t.Fatalf("snapshot aliased live CPU state: %+v", snap)
	}
}
