package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if got := m.Read64(0x1000); got != 0 {
		t.Errorf("zero-value read = %d, want 0", got)
	}
	m.Write64(0x1000, 7)
	if got := m.Read64(0x1000); got != 7 {
		t.Errorf("read after write = %d, want 7", got)
	}
}

func TestReadUnmappedIsZero(t *testing.T) {
	m := New()
	for _, addr := range []uint64{0, 8, 1 << 20, 1 << 40, ^uint64(0) - 7} {
		if got := m.Read64(addr); got != 0 {
			t.Errorf("Read64(%#x) = %d, want 0", addr, got)
		}
	}
	if m.PagesAllocated() != 0 {
		t.Errorf("reads must not allocate pages, got %d", m.PagesAllocated())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := New()
	m.Write64(0x100, 42)
	m.Write64(0x108, 43)
	if got := m.Read64(0x100); got != 42 {
		t.Errorf("Read64(0x100) = %d", got)
	}
	if got := m.Read64(0x108); got != 43 {
		t.Errorf("Read64(0x108) = %d", got)
	}
}

func TestWordAlignmentTruncation(t *testing.T) {
	m := New()
	m.Write64(0x100, 99)
	for off := uint64(0); off < 8; off++ {
		if got := m.Read64(0x100 + off); got != 99 {
			t.Errorf("Read64(0x100+%d) = %d, want 99 (same word)", off, got)
		}
	}
	m.Write64(0x105, 7) // same word as 0x100
	if got := m.Read64(0x100); got != 7 {
		t.Errorf("misaligned write must hit containing word, got %d", got)
	}
}

func TestCrossPageIndependence(t *testing.T) {
	m := New()
	m.Write64(0xFF8, 1)  // last word of page 0
	m.Write64(0x1000, 2) // first word of page 1
	if m.Read64(0xFF8) != 1 || m.Read64(0x1000) != 2 {
		t.Error("adjacent words across a page boundary interfere")
	}
	if m.PagesAllocated() != 2 {
		t.Errorf("expected 2 pages, got %d", m.PagesAllocated())
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write64(0x10, 5)
	m.Write64(0x2000, 6)
	c := m.Clone()
	if c.Read64(0x10) != 5 || c.Read64(0x2000) != 6 {
		t.Error("clone missing data")
	}
	c.Write64(0x10, 99)
	if m.Read64(0x10) != 5 {
		t.Error("clone write leaked into original")
	}
	m.Write64(0x2000, 77)
	if c.Read64(0x2000) != 6 {
		t.Error("original write leaked into clone")
	}
}

func TestChecksumProperties(t *testing.T) {
	a := New()
	b := New()
	if a.Checksum() != b.Checksum() {
		t.Error("empty memories must have equal checksums")
	}
	a.Write64(0x100, 1)
	if a.Checksum() == b.Checksum() {
		t.Error("checksum must change after a write")
	}
	b.Write64(0x100, 1)
	if a.Checksum() != b.Checksum() {
		t.Error("identical contents must have identical checksums")
	}
	// Zero writes must not affect the checksum (mapped zero == unmapped).
	b.Write64(0x9000, 0)
	if a.Checksum() != b.Checksum() {
		t.Error("writing zero must not change checksum")
	}
	// Order independence.
	c := New()
	c.Write64(0x200, 2)
	c.Write64(0x100, 1)
	d := New()
	d.Write64(0x100, 1)
	d.Write64(0x200, 2)
	if c.Checksum() != d.Checksum() {
		t.Error("checksum must be order independent")
	}
}

// Property: Memory agrees with a plain map model under random operations.
func TestMemoryMatchesMapModel(t *testing.T) {
	f := func(ops []struct {
		Addr  uint64
		Val   uint64
		Write bool
	}) bool {
		m := New()
		model := map[uint64]uint64{}
		for _, op := range ops {
			a := op.Addr &^ 7
			if op.Write {
				m.Write64(a, op.Val)
				model[a] = op.Val
			} else if m.Read64(a) != model[a] {
				return false
			}
		}
		for a, v := range model {
			if m.Read64(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is always an exact, independent copy.
func TestClonePropery(t *testing.T) {
	f := func(addrs []uint64, vals []uint64) bool {
		m := New()
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			m.Write64(addrs[i], vals[i])
		}
		c := m.Clone()
		return c.Checksum() == m.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
