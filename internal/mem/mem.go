// Package mem implements the sparse 64-bit data memory shared by the
// functional emulator and the timing simulator.
//
// Memory is word-granular (64-bit words at 8-byte-aligned byte addresses)
// and paged so that large, scattered working sets stay cheap. Reads of
// unmapped or misaligned-beyond-word addresses return zero: the timing
// simulator executes wrong-path loads for real, and a total (never
// faulting) memory keeps wrong paths harmless, exactly like SimpleScalar's
// speculative memory mode.
package mem

const (
	pageBytes = 1 << 12 // 4 KiB pages
	pageWords = pageBytes / 8
	pageShift = 12
	wordShift = 3
)

// Memory is a sparse, paged 64-bit word memory. The zero value is an
// empty memory ready to use.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

// New returns an empty memory.
func New() *Memory { return &Memory{pages: make(map[uint64]*[pageWords]uint64)} }

func (m *Memory) page(addr uint64, create bool) *[pageWords]uint64 {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[pageWords]uint64)
	}
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new([pageWords]uint64)
		m.pages[key] = p
	}
	return p
}

func wordIndex(addr uint64) uint64 { return (addr >> wordShift) & (pageWords - 1) }

// Read64 returns the word containing byte address addr (the address is
// truncated down to 8-byte alignment). Unmapped addresses read as zero.
func (m *Memory) Read64(addr uint64) uint64 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[wordIndex(addr)]
}

// Write64 stores val in the word containing byte address addr.
func (m *Memory) Write64(addr, val uint64) {
	p := m.page(addr, true)
	p[wordIndex(addr)] = val
}

// PagesAllocated returns the number of 4 KiB pages currently backed.
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// Clone returns a deep copy of the memory. Used to give the functional
// reference and the timing simulator identical independent initial images.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		np := new([pageWords]uint64)
		*np = *p
		c.pages[k] = np
	}
	return c
}

// Checksum returns an order-independent FNV-style digest of all mapped,
// non-zero words. Two memories with identical contents (ignoring zero
// words, mapped or not) produce the same checksum; it is used by the
// architectural-equivalence tests.
func (m *Memory) Checksum() uint64 {
	var sum uint64
	for k, p := range m.pages {
		base := k << pageShift
		for i, w := range p {
			if w == 0 {
				continue
			}
			addr := base + uint64(i)<<wordShift
			x := addr*0x9e3779b97f4a7c15 + w
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			x ^= x >> 31
			sum += x
		}
	}
	return sum
}
