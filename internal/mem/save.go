package mem

import (
	"sort"

	"civect/internal/ckpt"
)

// Checkpoint serialization: a memory image is stored as sparse word
// deltas against a base image (the workload's pristine initial memory),
// so a checkpoint taken deep into a run costs space proportional to the
// words the program has actually changed, not the whole working set. A
// nil base encodes against the empty image, i.e. the full sparse
// contents. Pages are emitted in sorted key order and words in ascending
// index order, so the encoding of a given (memory, base) pair is unique —
// the determinism invariant every civect byte format keeps.

// rawPageThreshold is the diff count above which a page is stored raw:
// each diff costs 12 bytes against 8 per raw word, so past half the page
// the raw form is both smaller and cheaper to apply.
const rawPageThreshold = pageWords / 2

// SaveDelta encodes m as sparse deltas over base.
func (m *Memory) SaveDelta(e *ckpt.Encoder, base *Memory) {
	e.Tag("mem")
	var zero [pageWords]uint64

	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	if base != nil {
		// A page present only in base reads as zero in m but not in base,
		// so it still needs a delta.
		for k := range base.pages {
			if _, ok := m.pages[k]; !ok {
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Two passes keep the page count a plain prefix field: count first,
	// then emit. The diff scan is cheap relative to the encode.
	type pageDiff struct {
		key   uint64
		idxs  []int
		page  *[pageWords]uint64
		bpage *[pageWords]uint64
	}
	diffs := make([]pageDiff, 0, len(keys))
	for _, k := range keys {
		page := m.pages[k]
		if page == nil {
			page = &zero
		}
		var bpage *[pageWords]uint64
		if base != nil {
			bpage = base.pages[k]
		}
		if bpage == nil {
			bpage = &zero
		}
		var idxs []int
		for i := range page {
			if page[i] != bpage[i] {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) > 0 {
			diffs = append(diffs, pageDiff{key: k, idxs: idxs, page: page, bpage: bpage})
		}
	}

	e.Int(len(diffs))
	for _, pd := range diffs {
		e.U64(pd.key)
		if len(pd.idxs) > rawPageThreshold {
			e.U8(1) // raw page
			for i := range pd.page {
				e.U64(pd.page[i])
			}
			continue
		}
		e.U8(0) // sparse diffs
		e.Int(len(pd.idxs))
		for _, i := range pd.idxs {
			e.U32(uint32(i))
			e.U64(pd.page[i])
		}
	}
}

// LoadDelta decodes a memory image written by SaveDelta: a clone of base
// (empty for nil base) with the deltas applied. Errors latch in d.
func LoadDelta(d *ckpt.Decoder, base *Memory) *Memory {
	d.Tag("mem")
	var m *Memory
	if base != nil {
		m = base.Clone()
	} else {
		m = New()
	}
	npages := d.Count()
	for p := 0; p < npages; p++ {
		key := d.U64()
		mode := d.U8()
		if d.Err() != nil {
			return m
		}
		page := m.pages[key]
		if page == nil {
			page = new([pageWords]uint64)
			m.pages[key] = page
		}
		switch mode {
		case 1:
			for i := range page {
				page[i] = d.U64()
			}
		case 0:
			ndiff := d.Count()
			for j := 0; j < ndiff; j++ {
				i := d.U32()
				v := d.U64()
				if i >= pageWords {
					d.Fail("memory delta word index %d out of page range", i)
					return m
				}
				page[i] = v
			}
		default:
			d.Fail("unknown memory page mode %d", mode)
			return m
		}
	}
	return m
}
