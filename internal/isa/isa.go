// Package isa defines the instruction set architecture used by the
// reproduction: a small 64-bit RISC machine in the style of MIPS/Alpha,
// with 64 logical integer registers, no condition flags, and direct
// branches only.
//
// Program counters are instruction indices (not byte addresses): the
// instruction at PC p is Program.Code[p]. Data addresses are byte
// addresses over 64-bit words. This keeps the front end of the timing
// simulator simple without losing anything the paper's mechanism needs:
// hammocks, loops, strided loads and register dataflow are all expressed
// exactly as in the paper's Alpha examples.
package isa

import "fmt"

// NumLogical is the number of logical (architectural) integer registers.
// The paper's rename-map extension is sized for 64 entries (§3.1).
const NumLogical = 64

// Reg identifies a logical register, 0 <= r < NumLogical.
type Reg uint8

// String returns the conventional register name ("R7").
func (r Reg) String() string { return fmt.Sprintf("R%d", r) }

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode values. Arithmetic ops are three-register or register-immediate;
// comparisons write 0/1 to the destination (no flags); memory ops use
// base+displacement addressing on 64-bit words.
const (
	OpNop Op = iota

	// Arithmetic / logical.
	OpMovI // Rd = Imm
	OpMov  // Rd = Ra
	OpAdd  // Rd = Ra + Rb
	OpAddI // Rd = Ra + Imm
	OpSub  // Rd = Ra - Rb
	OpSubI // Rd = Ra - Imm
	OpMul  // Rd = Ra * Rb
	OpDiv  // Rd = Ra / Rb (0 if Rb == 0)
	OpAnd  // Rd = Ra & Rb
	OpOr   // Rd = Ra | Rb
	OpXor  // Rd = Ra ^ Rb
	OpShlI // Rd = Ra << Imm
	OpShrI // Rd = Ra >> Imm (logical)

	// Comparisons (write 0/1).
	OpSLT  // Rd = (Ra < Rb) signed
	OpSLTI // Rd = (Ra < Imm) signed
	OpSEQ  // Rd = (Ra == Rb)
	OpSEQI // Rd = (Ra == Imm)

	// Memory (64-bit words, byte addressing).
	OpLd // Rd = Mem[Ra + Imm]
	OpSt // Mem[Ra + Imm] = Rb

	// Control flow (direct targets, instruction indices).
	OpBEQZ // if Ra == 0 goto Target
	OpBNEZ // if Ra != 0 goto Target
	OpJmp  // goto Target (unconditional)

	OpHalt // stop the program

	numOps // sentinel; must be last
)

var opNames = [numOps]string{
	OpNop:  "nop",
	OpMovI: "movi",
	OpMov:  "mov",
	OpAdd:  "add",
	OpAddI: "addi",
	OpSub:  "sub",
	OpSubI: "subi",
	OpMul:  "mul",
	OpDiv:  "div",
	OpAnd:  "and",
	OpOr:   "or",
	OpXor:  "xor",
	OpShlI: "shli",
	OpShrI: "shri",
	OpSLT:  "slt",
	OpSLTI: "slti",
	OpSEQ:  "seq",
	OpSEQI: "seqi",
	OpLd:   "ld",
	OpSt:   "st",
	OpBEQZ: "beqz",
	OpBNEZ: "bnez",
	OpJmp:  "jmp",
	OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Instr is one decoded instruction. Fields that an opcode does not use
// are zero. Target is an absolute instruction index for branches/jumps.
type Instr struct {
	Op     Op
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Imm    int64
	Target int
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Instr) IsCondBranch() bool { return i.Op == OpBEQZ || i.Op == OpBNEZ }

// IsJump reports whether the instruction is an unconditional direct jump.
func (i Instr) IsJump() bool { return i.Op == OpJmp }

// IsControl reports whether the instruction may redirect fetch.
func (i Instr) IsControl() bool { return i.IsCondBranch() || i.IsJump() || i.Op == OpHalt }

// IsLoad reports whether the instruction reads data memory.
func (i Instr) IsLoad() bool { return i.Op == OpLd }

// IsStore reports whether the instruction writes data memory.
func (i Instr) IsStore() bool { return i.Op == OpSt }

// IsMem reports whether the instruction accesses data memory.
func (i Instr) IsMem() bool { return i.IsLoad() || i.IsStore() }

// WritesReg reports whether the instruction writes a destination register,
// and which one.
func (i Instr) WritesReg() (Reg, bool) {
	switch i.Op {
	case OpMovI, OpMov, OpAdd, OpAddI, OpSub, OpSubI, OpMul, OpDiv,
		OpAnd, OpOr, OpXor, OpShlI, OpShrI,
		OpSLT, OpSLTI, OpSEQ, OpSEQI, OpLd:
		return i.Rd, true
	}
	return 0, false
}

// SrcRegs appends the source registers of the instruction to dst and
// returns the result. The slice is at most two entries.
func (i Instr) SrcRegs(dst []Reg) []Reg {
	switch i.Op {
	case OpMov, OpAddI, OpSubI, OpShlI, OpShrI, OpSLTI, OpSEQI:
		dst = append(dst, i.Ra)
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpSLT, OpSEQ:
		dst = append(dst, i.Ra, i.Rb)
	case OpLd:
		dst = append(dst, i.Ra)
	case OpSt:
		dst = append(dst, i.Ra, i.Rb)
	case OpBEQZ, OpBNEZ:
		dst = append(dst, i.Ra)
	}
	return dst
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt:
		return i.Op.String()
	case OpMovI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Ra)
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpSLT, OpSEQ:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Ra, i.Rb)
	case OpAddI, OpSubI, OpShlI, OpShrI, OpSLTI, OpSEQI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Ra, i.Imm)
	case OpLd:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Ra)
	case OpSt:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rb, i.Imm, i.Ra)
	case OpBEQZ, OpBNEZ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Ra, i.Target)
	case OpJmp:
		return fmt.Sprintf("%s %d", i.Op, i.Target)
	}
	return fmt.Sprintf("?%d", i.Op)
}

// Program is a static program image: code plus an optional description of
// the initial data memory (applied by the caller through mem.Memory).
type Program struct {
	Code []Instr
	// Name identifies the program in stats and logs.
	Name string
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at pc, or OpHalt if pc is outside the image
// (fetch down a wrong path can run off the end; treating out-of-range PCs
// as halt keeps the pipeline model total without affecting correct-path
// semantics, because a correct-path PC is always in range for a
// well-formed program).
func (p *Program) At(pc int) Instr {
	if pc < 0 || pc >= len(p.Code) {
		return Instr{Op: OpHalt}
	}
	return p.Code[pc]
}

// Validate checks static well-formedness: opcodes defined, registers in
// range, branch targets inside the image, and a reachable halt.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	haltSeen := false
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: pc %d: invalid opcode %d", pc, in.Op)
		}
		if in.Rd >= NumLogical || in.Ra >= NumLogical || in.Rb >= NumLogical {
			return fmt.Errorf("isa: pc %d: register out of range in %v", pc, in)
		}
		if in.IsCondBranch() || in.IsJump() {
			if in.Target < 0 || in.Target >= len(p.Code) {
				return fmt.Errorf("isa: pc %d: branch target %d out of range", pc, in.Target)
			}
		}
		if in.Op == OpHalt {
			haltSeen = true
		}
	}
	if !haltSeen {
		return fmt.Errorf("isa: program has no halt instruction")
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line,
// prefixed with the PC.
func (p *Program) Disassemble() string {
	out := make([]byte, 0, len(p.Code)*24)
	for pc, in := range p.Code {
		out = append(out, fmt.Sprintf("%4d: %s\n", pc, in)...)
	}
	return string(out)
}
