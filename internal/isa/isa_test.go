package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop:  "nop",
		OpAdd:  "add",
		OpLd:   "ld",
		OpSt:   "st",
		OpBEQZ: "beqz",
		OpHalt: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q, want to contain opcode number", got)
	}
}

func TestOpValid(t *testing.T) {
	for o := OpNop; o < numOps; o++ {
		if !o.Valid() {
			t.Errorf("op %v should be valid", o)
		}
	}
	if Op(numOps).Valid() {
		t.Error("sentinel opcode must not be valid")
	}
	if Op(255).Valid() {
		t.Error("opcode 255 must not be valid")
	}
}

func TestInstrClassification(t *testing.T) {
	tests := []struct {
		in                                 Instr
		branch, jump, load, store, control bool
	}{
		{Instr{Op: OpBEQZ}, true, false, false, false, true},
		{Instr{Op: OpBNEZ}, true, false, false, false, true},
		{Instr{Op: OpJmp}, false, true, false, false, true},
		{Instr{Op: OpLd}, false, false, true, false, false},
		{Instr{Op: OpSt}, false, false, false, true, false},
		{Instr{Op: OpAdd}, false, false, false, false, false},
		{Instr{Op: OpHalt}, false, false, false, false, true},
	}
	for _, tc := range tests {
		if got := tc.in.IsCondBranch(); got != tc.branch {
			t.Errorf("%v.IsCondBranch() = %v", tc.in.Op, got)
		}
		if got := tc.in.IsJump(); got != tc.jump {
			t.Errorf("%v.IsJump() = %v", tc.in.Op, got)
		}
		if got := tc.in.IsLoad(); got != tc.load {
			t.Errorf("%v.IsLoad() = %v", tc.in.Op, got)
		}
		if got := tc.in.IsStore(); got != tc.store {
			t.Errorf("%v.IsStore() = %v", tc.in.Op, got)
		}
		if got := tc.in.IsControl(); got != tc.control {
			t.Errorf("%v.IsControl() = %v", tc.in.Op, got)
		}
		if got := tc.in.IsMem(); got != (tc.load || tc.store) {
			t.Errorf("%v.IsMem() = %v", tc.in.Op, got)
		}
	}
}

func TestWritesReg(t *testing.T) {
	writers := []Op{OpMovI, OpMov, OpAdd, OpAddI, OpSub, OpSubI, OpMul, OpDiv,
		OpAnd, OpOr, OpXor, OpShlI, OpShrI, OpSLT, OpSLTI, OpSEQ, OpSEQI, OpLd}
	for _, op := range writers {
		in := Instr{Op: op, Rd: 7}
		rd, ok := in.WritesReg()
		if !ok || rd != 7 {
			t.Errorf("%v should write R7, got (%v, %v)", op, rd, ok)
		}
	}
	nonWriters := []Op{OpNop, OpSt, OpBEQZ, OpBNEZ, OpJmp, OpHalt}
	for _, op := range nonWriters {
		if _, ok := (Instr{Op: op, Rd: 7}).WritesReg(); ok {
			t.Errorf("%v should not write a register", op)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	tests := []struct {
		in   Instr
		want []Reg
	}{
		{Instr{Op: OpAdd, Ra: 1, Rb: 2}, []Reg{1, 2}},
		{Instr{Op: OpAddI, Ra: 3}, []Reg{3}},
		{Instr{Op: OpLd, Ra: 4}, []Reg{4}},
		{Instr{Op: OpSt, Ra: 5, Rb: 6}, []Reg{5, 6}},
		{Instr{Op: OpBEQZ, Ra: 7}, []Reg{7}},
		{Instr{Op: OpMovI}, nil},
		{Instr{Op: OpJmp}, nil},
		{Instr{Op: OpNop}, nil},
	}
	for _, tc := range tests {
		got := tc.in.SrcRegs(nil)
		if len(got) != len(tc.want) {
			t.Errorf("%v.SrcRegs() = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v.SrcRegs() = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestSrcRegsAppends(t *testing.T) {
	base := []Reg{9}
	got := Instr{Op: OpAdd, Ra: 1, Rb: 2}.SrcRegs(base)
	if len(got) != 3 || got[0] != 9 || got[1] != 1 || got[2] != 2 {
		t.Errorf("SrcRegs should append, got %v", got)
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMovI, Rd: 1, Imm: 42}, "movi R1, 42"},
		{Instr{Op: OpAdd, Rd: 4, Ra: 4, Rb: 0}, "add R4, R4, R0"},
		{Instr{Op: OpAddI, Rd: 1, Ra: 1, Imm: 8}, "addi R1, R1, 8"},
		{Instr{Op: OpLd, Rd: 0, Ra: 1, Imm: 0}, "ld R0, 0(R1)"},
		{Instr{Op: OpSt, Rb: 2, Ra: 1, Imm: 16}, "st R2, 16(R1)"},
		{Instr{Op: OpBEQZ, Ra: 0, Target: 9}, "beqz R0, 9"},
		{Instr{Op: OpJmp, Target: 3}, "jmp 3"},
		{Instr{Op: OpHalt}, "halt"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestProgramAtOutOfRange(t *testing.T) {
	p := &Program{Code: []Instr{{Op: OpNop}, {Op: OpHalt}}}
	if got := p.At(-1); got.Op != OpHalt {
		t.Errorf("At(-1) = %v, want halt", got)
	}
	if got := p.At(2); got.Op != OpHalt {
		t.Errorf("At(2) = %v, want halt", got)
	}
	if got := p.At(0); got.Op != OpNop {
		t.Errorf("At(0) = %v, want nop", got)
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Code: []Instr{
		{Op: OpMovI, Rd: 1, Imm: 5},
		{Op: OpBEQZ, Ra: 1, Target: 0},
		{Op: OpHalt},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good program failed validation: %v", err)
	}

	bad := []*Program{
		{Code: nil},
		{Code: []Instr{{Op: numOps}, {Op: OpHalt}}},
		{Code: []Instr{{Op: OpAdd, Rd: 64}, {Op: OpHalt}}},
		{Code: []Instr{{Op: OpBEQZ, Target: 99}, {Op: OpHalt}}},
		{Code: []Instr{{Op: OpNop}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d passed validation", i)
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := &Program{Code: []Instr{
		{Op: OpMovI, Rd: 1, Imm: 5},
		{Op: OpHalt},
	}}
	dis := p.Disassemble()
	if !strings.Contains(dis, "0: movi R1, 5") || !strings.Contains(dis, "1: halt") {
		t.Errorf("unexpected disassembly:\n%s", dis)
	}
}

// Property: every valid opcode has a non-empty mnemonic, classification
// predicates are mutually consistent, and String never panics.
func TestInstrStringTotal(t *testing.T) {
	f := func(op uint8, rd, ra, rb uint8, imm int64, tgt int16) bool {
		in := Instr{
			Op: Op(op % uint8(numOps)), Rd: Reg(rd % NumLogical),
			Ra: Reg(ra % NumLogical), Rb: Reg(rb % NumLogical),
			Imm: imm, Target: int(tgt),
		}
		s := in.String()
		if s == "" {
			return false
		}
		if in.IsLoad() && in.IsStore() {
			return false
		}
		if in.IsCondBranch() && in.IsJump() {
			return false
		}
		if _, ok := in.WritesReg(); ok && in.IsControl() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
