package trace

import (
	"os"
	"path/filepath"
	"testing"

	"civect/internal/core"
)

// leftovers lists dir entries, failing the test on I/O errors.
func leftovers(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

// TestAtomicFileCommit: after Commit the destination holds exactly the
// written bytes and no temp residue remains.
func TestAtomicFileCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.civt")
	af, err := NewAtomicFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Abort()
	if _, err := af.Write([]byte("sealed journal bytes")); err != nil {
		t.Fatal(err)
	}
	// Until Commit, the destination must not exist: a reader polling the
	// path can never observe a half-written journal.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists before Commit (stat err %v)", err)
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "sealed journal bytes" {
		t.Errorf("published bytes %q", got)
	}
	if names := leftovers(t, dir); len(names) != 1 || names[0] != "run.civt" {
		t.Errorf("directory holds %v, want only the published journal", names)
	}
	// The deferred Abort after a Commit must be a no-op.
	af.Abort()
	if _, err := os.Stat(path); err != nil {
		t.Errorf("Abort after Commit removed the published journal: %v", err)
	}
}

// TestAtomicFileAbort: aborting mid-record — the crash/cancellation
// path — leaves the directory empty: no destination, no temp file.
func TestAtomicFileAbort(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.civt")
	af, err := NewAtomicFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("partial, never sealed")); err != nil {
		t.Fatal(err)
	}
	af.Abort()
	if names := leftovers(t, dir); len(names) != 0 {
		t.Errorf("abort left %v behind, want an empty directory", names)
	}
	if _, err := af.Write([]byte("x")); err == nil {
		t.Error("Write after Abort succeeded")
	}
	if err := af.Commit(); err == nil {
		t.Error("Commit after Abort succeeded")
	}
}

// TestAtomicFileCancelledRecording drives a real Recorder into an
// AtomicFile and abandons it mid-journal, the way a cancelled
// `citrace record` or a shed server job does: the destination path must
// not come into existence, and nothing may be left in the directory.
func TestAtomicFileCancelledRecording(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cancelled.civt")
	af, err := NewAtomicFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(af, LevelPipeline, Meta{Workload: "gcc", Mode: core.ModeCI})
	for c := uint64(1); c <= 50_000; c++ {
		rec.OnTraceFetch(c, int32(c%512)) // enough to flush several blocks
	}
	// No rec.Close(): the journal is unsealed (no trailer), exactly what
	// a mid-run cancellation leaves. Abort discards it.
	af.Abort()
	if names := leftovers(t, dir); len(names) != 0 {
		t.Errorf("cancelled recording left %v behind, want nothing", names)
	}
}
