package trace_test

import (
	"bytes"
	"testing"

	"civect/internal/core"
	"civect/internal/trace"
	"civect/internal/workload"
)

// TestDiffLocalizesAliasBug is the divergence-hunt acceptance test:
// re-introducing the PR 1 SRSMT worklist aliasing bug (behind
// Config.EmulateAliasedWorklist) must produce a journal that Diff
// localizes to the exact same first divergent cycle on repeated runs —
// and, since the bug predates the event-driven scheduler rewrite, on
// both scheduler engines. docs/DEBUGGING.md walks through the same
// hunt with cmd/citrace.
func TestDiffLocalizesAliasBug(t *testing.T) {
	wl, err := workload.Spec("vpr")
	if err != nil {
		t.Fatal(err)
	}
	base := core.DefaultConfig(core.ModeCI)
	base.MaxInstr = 15_000

	recordWith := func(alias, naive bool) []byte {
		cfg := base
		cfg.EmulateAliasedWorklist = alias
		cfg.NaiveScheduler = naive
		j, _ := record(t, wl, cfg, trace.LevelPipeline)
		return j
	}
	diff := func(a, b []byte) *trace.DiffResult {
		ra, err := trace.NewReader(bytes.NewReader(a))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := trace.NewReader(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		res, err := trace.Diff(ra, rb, trace.DiffOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	good := recordWith(false, false)
	bug := recordWith(true, false)
	res := diff(good, bug)
	if res.Identical() {
		t.Fatal("alias-bug emulation produced an identical journal; the knob is dead")
	}
	first := res.Divergence
	if first.Cycle == 0 || first.Index < 0 {
		t.Fatalf("unexpected divergence shape: %+v", first)
	}

	// Repeated runs must localize the identical first divergence.
	for i := 0; i < 2; i++ {
		again := diff(recordWith(false, false), recordWith(true, false))
		if again.Identical() || again.Divergence.Cycle != first.Cycle || again.Divergence.Index != first.Index {
			t.Fatalf("run %d: divergence moved: first %+v, now %+v", i, first, again.Divergence)
		}
	}

	// The bug lives in the shared worklist walk, so the naive engine
	// must exhibit the same first divergent cycle.
	naive := diff(recordWith(false, true), recordWith(true, true))
	if naive.Identical() || naive.Divergence.Cycle != first.Cycle {
		t.Fatalf("naive engine localizes the bug differently: event %+v, naive %+v",
			first, naive.Divergence)
	}
}
