// Package trace implements the deterministic cycle-event journal: a
// compact, versioned binary format recording the per-cycle pipeline
// events a simulation emits through the core.Tracer seam, plus the
// offline tooling built on it — a reader, a replayer that reconstructs
// per-cycle pipeline state, and a differ that localizes the first
// divergent cycle between two journals.
//
// The on-disk format is specified normatively in docs/TRACE_FORMAT.md;
// the constants and encoding helpers here are its implementation. The
// format is deterministic by construction: identical event streams
// encode to identical bytes, so journals of the same configuration are
// byte-comparable across runs, processes and engines (at levels below
// LevelFull, which admits engine-specific jump records).
package trace

import (
	"errors"
	"fmt"

	"civect/internal/core"
)

// Magic opens every journal file.
var Magic = [4]byte{'C', 'I', 'V', 'T'}

// Version is the current journal format version. Readers reject
// versions they do not know; the version only changes on incompatible
// layout changes (see the compatibility rules in docs/TRACE_FORMAT.md).
const Version = 1

// Level selects how much a journal records. Each level is a strict
// superset of the one below it.
type Level uint8

const (
	// LevelCommits records only commit events (and the cycle framing
	// they need): the cheapest journal that still replays committed-
	// instruction statistics exactly.
	LevelCommits Level = 1
	// LevelPipeline adds fetch, rename, issue and squash events — the
	// full conventional-pipeline event stream, and the default. It is
	// engine-independent: all three engines produce byte-identical
	// LevelPipeline journals for the same configuration.
	LevelPipeline Level = 2
	// LevelFull adds engine-level events (fast-forward cycle jumps).
	// Full journals are only byte-comparable between runs of the same
	// engine; Diff ignores engine events unless asked.
	LevelFull Level = 3
)

// String names the level (commits, pipeline, full).
func (l Level) String() string {
	switch l {
	case LevelCommits:
		return "commits"
	case LevelPipeline:
		return "pipeline"
	case LevelFull:
		return "full"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseLevel inverts Level.String.
func ParseLevel(s string) (Level, error) {
	for _, l := range []Level{LevelCommits, LevelPipeline, LevelFull} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown level %q (want commits, pipeline or full)", s)
}

// Kind identifies one journal record / event type. The wire encoding
// uses these values directly as the record tag byte.
type Kind uint8

const (
	// KindCycle is the framing record advancing the current cycle; it
	// is consumed by the reader and never surfaced as an Event.
	KindCycle Kind = 1
	// KindFetch: an instruction entered the fetch buffer.
	KindFetch Kind = 2
	// KindRename: an instruction was renamed and dispatched.
	KindRename Kind = 3
	// KindIssue: an instruction issued to a functional unit.
	KindIssue Kind = 4
	// KindCommit: an instruction retired.
	KindCommit Kind = 5
	// KindSquash: a recovery discarded every instruction younger than
	// Seq (the kept sequence number).
	KindSquash Kind = 6
	// KindJump: the fast-forward engine skipped a stall region
	// (LevelFull journals only).
	KindJump Kind = 7
)

// String names the kind as the dump output renders it.
func (k Kind) String() string {
	switch k {
	case KindCycle:
		return "cycle"
	case KindFetch:
		return "fetch"
	case KindRename:
		return "rename"
	case KindIssue:
		return "issue"
	case KindCommit:
		return "commit"
	case KindSquash:
		return "squash"
	case KindJump:
		return "jump"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// minLevel returns the lowest Level that records k.
func (k Kind) minLevel() Level {
	switch k {
	case KindCommit:
		return LevelCommits
	case KindJump:
		return LevelFull
	default:
		return LevelPipeline
	}
}

// Event is one decoded journal event. Field meaning depends on Kind:
//
//   - KindFetch: Cycle, PC
//   - KindRename, KindIssue: Cycle, Seq, PC
//   - KindCommit: Cycle, Seq, PC, Reused, Halt
//   - KindSquash: Cycle, Seq (the kept seq), N (instructions discarded)
//   - KindJump: Cycle (the jump origin), N (the landing cycle)
type Event struct {
	Cycle  uint64
	Seq    uint64
	N      uint64
	PC     int32
	Kind   Kind
	Reused bool
	Halt   bool
}

// String renders the event as one dump line (without the cycle).
func (e Event) String() string {
	switch e.Kind {
	case KindFetch:
		return fmt.Sprintf("fetch  pc=%d", e.PC)
	case KindRename:
		return fmt.Sprintf("rename seq=%d pc=%d", e.Seq, e.PC)
	case KindIssue:
		return fmt.Sprintf("issue  seq=%d pc=%d", e.Seq, e.PC)
	case KindCommit:
		s := fmt.Sprintf("commit seq=%d pc=%d", e.Seq, e.PC)
		if e.Reused {
			s += " reused"
		}
		if e.Halt {
			s += " halt"
		}
		return s
	case KindSquash:
		return fmt.Sprintf("squash keep=%d n=%d", e.Seq, e.N)
	case KindJump:
		return fmt.Sprintf("jump   to=%d (skipped %d)", e.N, e.N-e.Cycle)
	}
	return fmt.Sprintf("%v seq=%d pc=%d n=%d", e.Kind, e.Seq, e.PC, e.N)
}

// Meta is the journal's identifying header information: what was
// simulated, not how (the engine is deliberately excluded so that
// journals from different engines stay byte-identical).
type Meta struct {
	// Workload is the workload name ("gcc", "mcf.big", ...; empty for
	// anonymous custom workloads).
	Workload string
	// Mode is the simulated machine mode.
	Mode core.Mode
}

// Journal errors. Reader and replay errors wrap one of these
// sentinels, so callers can distinguish a damaged file (ErrCorrupt), a
// file cut short mid-write (ErrTruncated), and an event stream that
// violates pipeline discipline (ErrMalformed — a writer bug, or a
// corrupt journal whose damage slipped past the CRCs).
var (
	ErrCorrupt   = errors.New("trace: corrupt journal")
	ErrTruncated = errors.New("trace: truncated journal")
	ErrMalformed = errors.New("trace: malformed event stream")
)

const (
	// headerFlagWindowed marks a journal recorded under a cycle window
	// (Recorder.SetWindow): event cycles may start late and sequence
	// numbers may enter mid-stream, so replay relaxes its pipeline-
	// discipline checks.
	headerFlagWindowed = 1 << 0

	// blockTarget is the payload size a Recorder flushes a block at.
	// Blocks close only on cycle boundaries, so one cycle's events
	// never span blocks.
	blockTarget = 32 << 10
)
