package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"civect/internal/core"
)

// maxBlock bounds a block payload length a Reader will accept. Real
// writers flush around blockTarget, so anything wildly above it means a
// corrupt length field — better a clean error than a giant allocation.
const maxBlock = 16 << 20

// Reader decodes a journal written by Recorder. It validates the
// header and every block CRC as it streams, and checks the trailer's
// event count and last cycle against what it decoded, so a journal
// that reads to a clean io.EOF is known intact end to end.
type Reader struct {
	br       *bufio.Reader
	level    Level
	meta     Meta
	windowed bool

	payload []byte
	pos     int
	block   int // blocks consumed, for error messages

	// Decoder state mirroring the Recorder.
	curCycle      uint64
	prevRenameSeq uint64
	prevIssueSeq  uint64
	prevCommitSeq uint64

	events    uint64
	lastCycle uint64
	done      bool
	err       error
}

// teeByteReader feeds binary.ReadUvarint while capturing the consumed
// bytes for CRC verification.
type teeByteReader struct {
	br  *bufio.Reader
	buf *[]byte
}

func (t teeByteReader) ReadByte() (byte, error) {
	b, err := t.br.ReadByte()
	if err == nil {
		*t.buf = append(*t.buf, b)
	}
	return b, err
}

// NewReader parses and verifies the journal header from rd and returns
// a Reader positioned at the first event.
func NewReader(rd io.Reader) (*Reader, error) {
	br := bufio.NewReader(rd)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic", ErrTruncated)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	hb := make([]byte, 0, 32)
	tee := teeByteReader{br: br, buf: &hb}
	for range 4 { // version, level, mode, flags
		if _, err := tee.ReadByte(); err != nil {
			return nil, fmt.Errorf("%w: header", ErrTruncated)
		}
	}
	wlen, err := binary.ReadUvarint(tee)
	if err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	if wlen > 1024 {
		return nil, fmt.Errorf("%w: workload name length %d", ErrCorrupt, wlen)
	}
	wl := make([]byte, wlen)
	if _, err := io.ReadFull(br, wl); err != nil {
		return nil, fmt.Errorf("%w: header", ErrTruncated)
	}
	hb = append(hb, wl...)
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: header CRC", ErrTruncated)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(hb) {
		return nil, fmt.Errorf("%w: header CRC mismatch", ErrCorrupt)
	}
	if hb[0] != Version {
		return nil, fmt.Errorf("trace: unsupported journal version %d (reader knows %d)", hb[0], Version)
	}
	level := Level(hb[1])
	if level < LevelCommits || level > LevelFull {
		return nil, fmt.Errorf("%w: invalid level %d", ErrCorrupt, hb[1])
	}
	mode := core.Mode(hb[2])
	if mode < core.ModeScalar || mode > core.ModeVect {
		return nil, fmt.Errorf("%w: invalid mode %d", ErrCorrupt, hb[2])
	}
	return &Reader{
		br:       br,
		level:    level,
		meta:     Meta{Workload: string(wl), Mode: mode},
		windowed: hb[3]&headerFlagWindowed != 0,
	}, nil
}

// Meta returns the journal's header metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Level returns the level the journal was recorded at.
func (r *Reader) Level() Level { return r.level }

// Windowed reports whether the journal was recorded under a cycle
// window (Recorder.SetWindow), which relaxes replay's checks.
func (r *Reader) Windowed() bool { return r.windowed }

// Next returns the next event. It returns io.EOF after the trailer has
// been read and verified; any other error means a damaged or truncated
// journal (wrapping ErrCorrupt or ErrTruncated).
func (r *Reader) Next() (Event, error) {
	for {
		if r.err != nil {
			return Event{}, r.err
		}
		if r.done {
			return Event{}, io.EOF
		}
		if r.pos >= len(r.payload) {
			if err := r.nextBlock(); err != nil {
				if err != io.EOF {
					r.err = err
				}
				return Event{}, err
			}
			continue
		}
		kind := Kind(r.payload[r.pos])
		r.pos++
		ev, isEvent, err := r.record(kind)
		if err != nil {
			r.err = err
			return Event{}, err
		}
		if !isEvent {
			continue // cycle framing record
		}
		r.events++
		if ev.Cycle > r.lastCycle {
			r.lastCycle = ev.Cycle
		}
		return ev, nil
	}
}

// record decodes the body of one record of the given kind from the
// current block. Framing records return isEvent == false.
func (r *Reader) record(kind Kind) (ev Event, isEvent bool, err error) {
	switch kind {
	case KindCycle:
		d, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		if d == 0 {
			return Event{}, false, fmt.Errorf("%w: zero cycle advance in block %d", ErrCorrupt, r.block)
		}
		r.curCycle += d
		return Event{}, false, nil
	case KindFetch:
		pc, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		return Event{Kind: KindFetch, Cycle: r.curCycle, PC: int32(uint32(pc))}, true, nil
	case KindRename:
		d, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		pc, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		r.prevRenameSeq += d
		return Event{Kind: KindRename, Cycle: r.curCycle, Seq: r.prevRenameSeq, PC: int32(uint32(pc))}, true, nil
	case KindIssue:
		z, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		pc, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		d := int64(z>>1) ^ -int64(z&1)
		r.prevIssueSeq += uint64(d)
		return Event{Kind: KindIssue, Cycle: r.curCycle, Seq: r.prevIssueSeq, PC: int32(uint32(pc))}, true, nil
	case KindCommit:
		if r.pos >= len(r.payload) {
			return Event{}, false, fmt.Errorf("%w: commit record cut short in block %d", ErrCorrupt, r.block)
		}
		flags := r.payload[r.pos]
		r.pos++
		d, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		pc, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		r.prevCommitSeq += d
		return Event{
			Kind: KindCommit, Cycle: r.curCycle, Seq: r.prevCommitSeq,
			PC: int32(uint32(pc)), Reused: flags&1 != 0, Halt: flags&2 != 0,
		}, true, nil
	case KindSquash:
		keep, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		n, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		return Event{Kind: KindSquash, Cycle: r.curCycle, Seq: keep, N: n}, true, nil
	case KindJump:
		fd, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		td, err := r.uvarint()
		if err != nil {
			return Event{}, false, err
		}
		from := r.curCycle + fd
		return Event{Kind: KindJump, Cycle: from, N: from + td}, true, nil
	}
	return Event{}, false, fmt.Errorf("%w: unknown record kind %d in block %d", ErrCorrupt, uint8(kind), r.block)
}

// uvarint decodes one varint from the current block payload.
func (r *Reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.payload[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: malformed varint in block %d", ErrCorrupt, r.block)
	}
	r.pos += n
	return v, nil
}

// nextBlock loads and CRC-verifies the next block, or parses the
// trailer and returns io.EOF.
func (r *Reader) nextBlock() error {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("%w: journal ends without trailer", ErrTruncated)
	}
	if n == 0 {
		return r.trailer()
	}
	if n > maxBlock {
		return fmt.Errorf("%w: block %d length %d exceeds limit", ErrCorrupt, r.block, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return fmt.Errorf("%w: block %d cut short", ErrTruncated, r.block)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return fmt.Errorf("%w: block %d CRC missing", ErrTruncated, r.block)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
		return fmt.Errorf("%w: block %d CRC mismatch", ErrCorrupt, r.block)
	}
	r.payload, r.pos = payload, 0
	r.block++
	return nil
}

// trailer verifies the trailer (whose zero length-prefix nextBlock
// already consumed) and arms the io.EOF state.
func (r *Reader) trailer() error {
	tb := []byte{0}
	tee := teeByteReader{br: r.br, buf: &tb}
	events, err := binary.ReadUvarint(tee)
	if err != nil {
		return fmt.Errorf("%w: trailer", ErrTruncated)
	}
	lastCycle, err := binary.ReadUvarint(tee)
	if err != nil {
		return fmt.Errorf("%w: trailer", ErrTruncated)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return fmt.Errorf("%w: trailer CRC missing", ErrTruncated)
	}
	if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(tb) {
		return fmt.Errorf("%w: trailer CRC mismatch", ErrCorrupt)
	}
	if events != r.events {
		return fmt.Errorf("%w: trailer counts %d events, journal held %d", ErrCorrupt, events, r.events)
	}
	if lastCycle != r.lastCycle {
		return fmt.Errorf("%w: trailer last cycle %d, journal reached %d", ErrCorrupt, lastCycle, r.lastCycle)
	}
	r.done = true
	return io.EOF
}
