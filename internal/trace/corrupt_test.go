package trace_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"civect/internal/core"
	"civect/internal/trace"
	"civect/internal/workload"
)

// drain reads a journal to its end, returning the first error (nil for
// a clean, trailer-verified EOF).
func drain(journal []byte) error {
	r, err := trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		return err
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func smallJournal(t *testing.T) []byte {
	t.Helper()
	j, _ := record(t, workload.Random(3), core.DefaultConfig(core.ModeCI), trace.LevelPipeline)
	return j
}

// TestTruncatedJournal checks that every strict prefix of a journal
// fails to read cleanly: a clean EOF requires the verified trailer, so
// a file cut short anywhere — mid-header, mid-block, mid-trailer —
// must surface an error instead of silently looking complete.
func TestTruncatedJournal(t *testing.T) {
	j := smallJournal(t)
	if err := drain(j); err != nil {
		t.Fatalf("intact journal failed: %v", err)
	}
	// Every prefix in the header/trailer neighborhoods, sampled strides
	// through the block interior.
	var cuts []int
	for n := 0; n < min(64, len(j)); n++ {
		cuts = append(cuts, n)
	}
	for n := 64; n < len(j)-64; n += 41 {
		cuts = append(cuts, n)
	}
	for n := max(64, len(j)-64); n < len(j); n++ {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		if err := drain(j[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes read cleanly", n, len(j))
		}
	}
}

// TestCorruptJournal flips single bytes and checks the damage is
// always detected (magic check, header CRC, block CRCs, trailer CRC).
func TestCorruptJournal(t *testing.T) {
	j := smallJournal(t)
	for pos := 0; pos < len(j); pos += 37 {
		bad := bytes.Clone(j)
		bad[pos] ^= 0x41
		if err := drain(bad); err == nil {
			t.Fatalf("flipping byte %d/%d went undetected", pos, len(j))
		}
	}
	// The last byte (trailer CRC) as an explicit edge case.
	bad := bytes.Clone(j)
	bad[len(bad)-1] ^= 1
	if err := drain(bad); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("trailer CRC flip: got %v, want ErrCorrupt", err)
	}
}

// TestReaderErrorKinds pins the error taxonomy for the common damage
// shapes callers switch on.
func TestReaderErrorKinds(t *testing.T) {
	j := smallJournal(t)

	if _, err := trace.NewReader(bytes.NewReader(nil)); !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("empty file: got %v, want ErrTruncated", err)
	}
	if _, err := trace.NewReader(bytes.NewReader([]byte("GIVT...."))); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
	bad := bytes.Clone(j)
	bad[4] = 99 // version byte — CRC-covered, so re-seal the header CRC is not possible; expect corrupt
	if _, err := trace.NewReader(bytes.NewReader(bad)); !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("version flip: got %v, want ErrCorrupt", err)
	}
	if err := drain(j[:len(j)-6]); !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("missing trailer: got %v, want ErrTruncated", err)
	}
	// Flip a byte well inside the first block payload.
	bad = bytes.Clone(j)
	bad[len(j)/2] ^= 0x10
	if err := drain(bad); !errors.Is(err, trace.ErrCorrupt) && !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("payload flip: got %v, want ErrCorrupt or ErrTruncated", err)
	}
}

// TestMalformedStream feeds the strict replayer hand-built event
// streams that violate pipeline discipline and checks each is
// rejected with ErrMalformed.
func TestMalformedStream(t *testing.T) {
	apply := func(evs ...trace.Event) error {
		var m trace.Machine
		for _, e := range evs {
			if err := m.Apply(e); err != nil {
				return err
			}
		}
		return nil
	}
	ren := func(c, seq uint64) trace.Event {
		return trace.Event{Kind: trace.KindRename, Cycle: c, Seq: seq}
	}
	cases := []struct {
		name string
		evs  []trace.Event
	}{
		{"rename seq regression", []trace.Event{ren(1, 5), ren(1, 4)}},
		{"commit of unknown seq", []trace.Event{{Kind: trace.KindCommit, Cycle: 1, Seq: 9}}},
		{"commit out of FIFO order", []trace.Event{ren(1, 1), ren(1, 2),
			{Kind: trace.KindCommit, Cycle: 2, Seq: 2}}},
		{"issue of unknown seq", []trace.Event{{Kind: trace.KindIssue, Cycle: 1, Seq: 3}}},
		{"double issue", []trace.Event{ren(1, 1),
			{Kind: trace.KindIssue, Cycle: 2, Seq: 1}, {Kind: trace.KindIssue, Cycle: 3, Seq: 1}}},
		{"squash count mismatch", []trace.Event{ren(1, 1), ren(1, 2),
			{Kind: trace.KindSquash, Cycle: 2, Seq: 1, N: 5}}},
	}
	for _, tc := range cases {
		if err := apply(tc.evs...); !errors.Is(err, trace.ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", tc.name, err)
		}
	}
	// The same streams pass in lenient (windowed) mode, except the
	// genuinely impossible rename regression.
	for _, tc := range cases[1:] {
		var m trace.Machine
		m.Lenient = true
		var err error
		for _, e := range tc.evs {
			if err = m.Apply(e); err != nil {
				break
			}
		}
		if err != nil {
			t.Errorf("%s: lenient machine rejected it: %v", tc.name, err)
		}
	}
}

// TestRecorderMisuse pins the writer-side error paths.
func TestRecorderMisuse(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, trace.Level(9), trace.Meta{})
	if rec.Err() == nil {
		t.Fatal("invalid level accepted")
	}
	rec = trace.NewRecorder(&buf, trace.LevelPipeline, trace.Meta{})
	rec.SetWindow(10, 5)
	if rec.Err() == nil {
		t.Fatal("inverted window accepted")
	}
	rec = trace.NewRecorder(&buf, trace.LevelPipeline, trace.Meta{})
	rec.OnTraceCommit(1, 1, 0, false, false)
	rec.SetWindow(1, 2)
	if rec.Err() == nil {
		t.Fatal("SetWindow after recording accepted")
	}
}

// TestRecorderEmptyJournal checks that a journal with no events at all
// still round-trips: header plus trailer, zero events.
func TestRecorderEmptyJournal(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, trace.LevelPipeline, trace.Meta{Workload: "empty", Mode: core.ModeScalar})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Meta(); got.Workload != "empty" || got.Mode != core.ModeScalar {
		t.Fatalf("meta round-trip: %+v", got)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty journal: got %v, want io.EOF", err)
	}
}
