package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"civect/internal/core"
)

// Recorder encodes the core.Tracer event stream into a journal. It is
// registered on a processor with core.Proc.SetTracer (or, through the
// façade, sim.WithTrace) and writes the format of docs/TRACE_FORMAT.md:
// a header, delta-varint record blocks with per-block CRCs, and a
// trailer sealing the event count.
//
// A Recorder buffers about one block (32 KiB) of encoded records; the
// journal is not complete until Close writes the trailer. Encoding is
// deterministic: the same event stream always produces the same bytes,
// with no timestamps, hostnames or other environmental residue.
//
// Write errors are sticky: the first one stops all further output and
// is reported by Err and Close.
type Recorder struct {
	w     io.Writer
	level Level
	meta  Meta

	first, last uint64 // cycle window; active when windowed
	windowed    bool

	buf        []byte
	headerDone bool
	closed     bool
	err        error

	// Encoder state mirrored by Reader: the cycle of the last framing
	// record and the previous sequence number per delta chain.
	curCycle      uint64
	prevRenameSeq uint64
	prevIssueSeq  uint64
	prevCommitSeq uint64

	// Trailer accounting.
	events    uint64
	lastCycle uint64
}

var _ core.Tracer = (*Recorder)(nil)

// NewRecorder returns a Recorder journaling at the given level into w.
// The header is written lazily (on the first event, or at Close for an
// empty journal) so that SetWindow can still be called.
func NewRecorder(w io.Writer, level Level, meta Meta) *Recorder {
	r := &Recorder{w: w, level: level, meta: meta, buf: make([]byte, 0, blockTarget+4096)}
	if level < LevelCommits || level > LevelFull {
		r.err = fmt.Errorf("trace: invalid level %d", uint8(level))
	}
	return r
}

// SetWindow restricts recording to events whose cycle lies in
// [first, last]; last == 0 leaves the window open-ended. The journal is
// marked windowed, which relaxes replay's pipeline-discipline checks
// (sequence numbers enter mid-stream). SetWindow must be called before
// the first event is recorded.
func (r *Recorder) SetWindow(first, last uint64) {
	if r.err == nil && (r.headerDone || r.closed) {
		r.err = fmt.Errorf("trace: SetWindow after recording started")
		return
	}
	if r.err == nil && last != 0 && last < first {
		r.err = fmt.Errorf("trace: invalid window [%d, %d]", first, last)
		return
	}
	r.first, r.last, r.windowed = first, last, true
}

// Err returns the first error the Recorder hit (nil so far if none).
func (r *Recorder) Err() error { return r.err }

// Flush writes any buffered records to the underlying writer. Blocks
// normally close on cycle boundaries; an explicit Flush may close one
// mid-cycle, which readers handle (the record stream is continuous
// across blocks). Close flushes, so Flush is only needed for mid-run
// durability.
func (r *Recorder) Flush() error {
	r.flush()
	return r.err
}

// Close flushes buffered records and writes the trailer, sealing the
// journal. Close is idempotent; it returns the Recorder's first error,
// if any. It does not close the underlying writer.
func (r *Recorder) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if r.err != nil {
		return r.err
	}
	if !r.headerDone {
		r.writeHeader()
	}
	r.flush()
	if r.err != nil {
		return r.err
	}
	tb := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	tb = binary.AppendUvarint(tb, 0)
	tb = binary.AppendUvarint(tb, r.events)
	tb = binary.AppendUvarint(tb, r.lastCycle)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(tb))
	if _, err := r.w.Write(append(tb, crc[:]...)); err != nil {
		r.err = err
	}
	return r.err
}

func (r *Recorder) writeHeader() {
	r.headerDone = true
	hb := make([]byte, 0, 8+len(r.meta.Workload))
	hb = append(hb, Version, byte(r.level), byte(r.meta.Mode), r.headerFlags())
	hb = binary.AppendUvarint(hb, uint64(len(r.meta.Workload)))
	hb = append(hb, r.meta.Workload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(hb))
	out := make([]byte, 0, 4+len(hb)+4)
	out = append(out, Magic[:]...)
	out = append(out, hb...)
	out = append(out, crc[:]...)
	if _, err := r.w.Write(out); err != nil {
		r.err = err
	}
}

func (r *Recorder) headerFlags() byte {
	var f byte
	if r.windowed {
		f |= headerFlagWindowed
	}
	return f
}

func (r *Recorder) flush() {
	if r.err != nil || len(r.buf) == 0 {
		return
	}
	if !r.headerDone {
		r.writeHeader()
		if r.err != nil {
			return
		}
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(r.buf)))
	if _, err := r.w.Write(hdr[:n]); err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(r.buf); err != nil {
		r.err = err
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(r.buf))
	if _, err := r.w.Write(crc[:]); err != nil {
		r.err = err
		return
	}
	r.buf = r.buf[:0]
}

// inWindow reports whether an event at cycle c is recorded.
func (r *Recorder) inWindow(c uint64) bool {
	return !r.windowed || c >= r.first && (r.last == 0 || c <= r.last)
}

// begin prepares the buffer for an event at the given cycle: it writes
// the header if needed, closes the block at cycle boundaries once it is
// full, and emits the cycle framing record. It reports whether the
// caller may append its record.
func (r *Recorder) begin(cycle uint64) bool {
	if r.err != nil || r.closed {
		return false
	}
	if !r.headerDone {
		r.writeHeader()
		if r.err != nil {
			return false
		}
	}
	if cycle != r.curCycle {
		if len(r.buf) >= blockTarget {
			r.flush()
			if r.err != nil {
				return false
			}
		}
		r.buf = append(r.buf, byte(KindCycle))
		r.buf = binary.AppendUvarint(r.buf, cycle-r.curCycle)
		r.curCycle = cycle
	}
	return true
}

// note updates the trailer accounting after a record was appended.
func (r *Recorder) note(cycle uint64) {
	r.events++
	if cycle > r.lastCycle {
		r.lastCycle = cycle
	}
}

// OnTraceFetch implements core.Tracer (LevelPipeline and up).
func (r *Recorder) OnTraceFetch(cycle uint64, pc int32) {
	if r.level < LevelPipeline || !r.inWindow(cycle) || !r.begin(cycle) {
		return
	}
	r.buf = append(r.buf, byte(KindFetch))
	r.buf = binary.AppendUvarint(r.buf, uint64(uint32(pc)))
	r.note(cycle)
}

// OnTraceRename implements core.Tracer (LevelPipeline and up). Rename
// sequence numbers are strictly increasing, so the record stores the
// (small) delta from the previous rename.
func (r *Recorder) OnTraceRename(cycle, seq uint64, pc int32) {
	if r.level < LevelPipeline || !r.inWindow(cycle) || !r.begin(cycle) {
		return
	}
	r.buf = append(r.buf, byte(KindRename))
	r.buf = binary.AppendUvarint(r.buf, seq-r.prevRenameSeq)
	r.buf = binary.AppendUvarint(r.buf, uint64(uint32(pc)))
	r.prevRenameSeq = seq
	r.note(cycle)
}

// OnTraceIssue implements core.Tracer (LevelPipeline and up). Issue is
// out of order, so the sequence delta is signed (zigzag-encoded).
func (r *Recorder) OnTraceIssue(cycle, seq uint64, pc int32) {
	if r.level < LevelPipeline || !r.inWindow(cycle) || !r.begin(cycle) {
		return
	}
	d := int64(seq - r.prevIssueSeq)
	r.buf = append(r.buf, byte(KindIssue))
	r.buf = binary.AppendUvarint(r.buf, uint64(d<<1)^uint64(d>>63))
	r.buf = binary.AppendUvarint(r.buf, uint64(uint32(pc)))
	r.prevIssueSeq = seq
	r.note(cycle)
}

// OnTraceCommit implements core.Tracer (every level). Commit is in
// order, so the record stores the delta from the previous commit.
func (r *Recorder) OnTraceCommit(cycle, seq uint64, pc int32, reused, halt bool) {
	if !r.inWindow(cycle) || !r.begin(cycle) {
		return
	}
	var flags byte
	if reused {
		flags |= 1
	}
	if halt {
		flags |= 2
	}
	r.buf = append(r.buf, byte(KindCommit), flags)
	r.buf = binary.AppendUvarint(r.buf, seq-r.prevCommitSeq)
	r.buf = binary.AppendUvarint(r.buf, uint64(uint32(pc)))
	r.prevCommitSeq = seq
	r.note(cycle)
}

// OnTraceSquash implements core.Tracer (LevelPipeline and up).
func (r *Recorder) OnTraceSquash(cycle, keepSeq uint64, n int) {
	if r.level < LevelPipeline || !r.inWindow(cycle) || !r.begin(cycle) {
		return
	}
	r.buf = append(r.buf, byte(KindSquash))
	r.buf = binary.AppendUvarint(r.buf, keepSeq)
	r.buf = binary.AppendUvarint(r.buf, uint64(n))
	r.note(cycle)
}

// OnTraceJump implements core.Tracer (LevelFull only — jump records
// are engine-specific and break cross-engine byte identity). A jump
// carries no cycle framing: the origin is encoded relative to the last
// framed cycle and does not advance it.
func (r *Recorder) OnTraceJump(from, to uint64) {
	if r.level < LevelFull || !r.inWindow(from) {
		return
	}
	if r.err != nil || r.closed {
		return
	}
	if !r.headerDone {
		r.writeHeader()
		if r.err != nil {
			return
		}
	}
	r.buf = append(r.buf, byte(KindJump))
	r.buf = binary.AppendUvarint(r.buf, from-r.curCycle)
	r.buf = binary.AppendUvarint(r.buf, to-from)
	r.note(from)
}
