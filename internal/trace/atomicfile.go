package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicFile is a journal sink that makes publication atomic: bytes go
// to a hidden temp file in the destination's directory, and only an
// explicit Commit renames it into place. A crash, a write error or a
// cancelled recording therefore never leaves a truncated or unsealed
// file where readers expect a valid journal — the destination path
// either holds a complete, trailer-sealed artifact or does not exist.
//
// Typical use records through the façade and publishes on success only:
//
//	af, err := trace.NewAtomicFile(path)
//	if err != nil { ... }
//	defer af.Abort() // no-op after a successful Commit
//	s, err := sim.New(w, sim.WithTrace(af), ...)
//	...
//	if res, err := s.Run(ctx); err == nil {
//		err = af.Commit()
//	}
type AtomicFile struct {
	f    *os.File
	path string // destination; f.Name() is the temp path
	done bool
}

// NewAtomicFile creates the temp file next to path (same directory, so
// the final rename cannot cross filesystems).
func NewAtomicFile(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("trace: atomic file: %w", err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer, appending to the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if a.done {
		return 0, fmt.Errorf("trace: write to committed or aborted atomic file %s", a.path)
	}
	return a.f.Write(p)
}

// Commit publishes the temp file at the destination path: it syncs,
// closes and renames in that order, so a journal visible at the path is
// exactly the bytes the recorder sealed. Commit must only be called
// once the journal is complete (Recorder.Close returned nil).
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("trace: double Commit/Abort of atomic file %s", a.path)
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return fmt.Errorf("trace: atomic file: %w", err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("trace: atomic file: %w", err)
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("trace: atomic file: %w", err)
	}
	return nil
}

// Abort discards the temp file without touching the destination. It is
// a no-op after Commit (or a prior Abort), so "defer af.Abort()" is the
// cleanup idiom for every early-exit path.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}
