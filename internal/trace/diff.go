package trace

import (
	"fmt"
	"io"
)

// DiffOptions tunes Diff.
type DiffOptions struct {
	// EngineEvents includes engine-specific records (fast-forward
	// jumps, LevelFull journals only) in the comparison. Off by
	// default: two engines of the same configuration agree on every
	// pipeline event but not on jumps, so comparing jumps only makes
	// sense between runs of the same engine.
	EngineEvents bool
}

// Divergence localizes the first difference between two journals.
type Divergence struct {
	// Cycle is the first divergent cycle.
	Cycle uint64
	// Index is the position of the first differing event within that
	// cycle's event group, or -1 when one journal has no events at all
	// for the cycle (including one journal ending early).
	Index int
	// Reason is a one-line human-readable explanation.
	Reason string
	// A and B hold the divergent cycle's full event groups on each
	// side (nil for the side with no events at that cycle).
	A, B []Event
}

// DiffResult reports a comparison: the first divergence (nil when the
// journals describe identical event streams) and how much of each
// journal was consumed reaching it.
type DiffResult struct {
	// Divergence is nil when the two journals are event-identical.
	Divergence *Divergence
	// EventsA and EventsB count the events compared on each side, up
	// to and including the divergent cycle.
	EventsA, EventsB uint64
	// Cycles counts the event-bearing cycles that compared equal.
	Cycles uint64
}

// Identical reports whether no divergence was found.
func (r *DiffResult) Identical() bool { return r.Divergence == nil }

// Diff streams two journals in lockstep, comparing them cycle group by
// cycle group, and localizes the first divergent cycle and the first
// divergent event within it. Comparison is at the event level, so it
// also works across journals whose byte encodings differ (e.g. one
// windowed, one not — or, with EngineEvents left off, a LevelFull
// journal against itself from another engine).
//
// Diff refuses journals recorded at different levels or of different
// workloads/modes: those differ by construction, and reporting their
// first "divergence" would be noise.
func Diff(a, b *Reader, opts DiffOptions) (*DiffResult, error) {
	if a.Level() != b.Level() {
		return nil, fmt.Errorf("trace: cannot diff levels %s and %s", a.Level(), b.Level())
	}
	if a.Meta() != b.Meta() {
		return nil, fmt.Errorf("trace: cannot diff different runs: %+v vs %+v", a.Meta(), b.Meta())
	}
	res := &DiffResult{}
	sa := &groupStream{r: a, engineEvents: opts.EngineEvents, events: &res.EventsA}
	sb := &groupStream{r: b, engineEvents: opts.EngineEvents, events: &res.EventsB}
	for {
		ga, err := sa.next()
		if err != nil {
			return res, fmt.Errorf("journal A: %w", err)
		}
		gb, err := sb.next()
		if err != nil {
			return res, fmt.Errorf("journal B: %w", err)
		}
		switch {
		case ga == nil && gb == nil:
			return res, nil
		case ga == nil:
			res.Divergence = &Divergence{
				Cycle: gb.cycle, Index: -1, B: gb.events,
				Reason: fmt.Sprintf("journal A ends before cycle %d, where B has %d more events", gb.cycle, len(gb.events)),
			}
			return res, nil
		case gb == nil:
			res.Divergence = &Divergence{
				Cycle: ga.cycle, Index: -1, A: ga.events,
				Reason: fmt.Sprintf("journal B ends before cycle %d, where A has %d more events", ga.cycle, len(ga.events)),
			}
			return res, nil
		case ga.cycle < gb.cycle:
			res.Divergence = &Divergence{
				Cycle: ga.cycle, Index: -1, A: ga.events,
				Reason: fmt.Sprintf("only A has events at cycle %d (%d of them); B's next event cycle is %d", ga.cycle, len(ga.events), gb.cycle),
			}
			return res, nil
		case gb.cycle < ga.cycle:
			res.Divergence = &Divergence{
				Cycle: gb.cycle, Index: -1, B: gb.events,
				Reason: fmt.Sprintf("only B has events at cycle %d (%d of them); A's next event cycle is %d", gb.cycle, len(gb.events), ga.cycle),
			}
			return res, nil
		}
		if d := diffGroups(ga, gb); d != nil {
			res.Divergence = d
			return res, nil
		}
		res.Cycles++
	}
}

// diffGroups compares one cycle's event groups, returning the
// divergence or nil when equal.
func diffGroups(ga, gb *cycleGroup) *Divergence {
	n := min(len(ga.events), len(gb.events))
	for i := range n {
		if ga.events[i] != gb.events[i] {
			return &Divergence{
				Cycle: ga.cycle, Index: i, A: ga.events, B: gb.events,
				Reason: fmt.Sprintf("cycle %d event %d differs: A has [%s], B has [%s]",
					ga.cycle, i, ga.events[i], gb.events[i]),
			}
		}
	}
	if len(ga.events) != len(gb.events) {
		return &Divergence{
			Cycle: ga.cycle, Index: n, A: ga.events, B: gb.events,
			Reason: fmt.Sprintf("cycle %d: A has %d events, B has %d; they agree up to event %d",
				ga.cycle, len(ga.events), len(gb.events), n),
		}
	}
	return nil
}

type cycleGroup struct {
	cycle  uint64
	events []Event
}

// groupStream batches a Reader's events into per-cycle groups. Events
// arrive in non-decreasing cycle order, so one pending event of
// lookahead suffices.
type groupStream struct {
	r            *Reader
	engineEvents bool
	events       *uint64
	pending      *Event
	done         bool
}

// next returns the next cycle group, or nil at a clean end of journal.
func (s *groupStream) next() (*cycleGroup, error) {
	for {
		g, err := s.nextRaw()
		if g == nil || err != nil {
			return g, err
		}
		if !s.engineEvents {
			kept := g.events[:0]
			for _, e := range g.events {
				if e.Kind != KindJump {
					kept = append(kept, e)
				}
			}
			g.events = kept
			if len(g.events) == 0 {
				continue // the group was only jumps; skip it entirely
			}
		}
		return g, nil
	}
}

func (s *groupStream) nextRaw() (*cycleGroup, error) {
	if s.done {
		return nil, nil
	}
	g := &cycleGroup{}
	if s.pending != nil {
		g.cycle = s.pending.Cycle
		g.events = append(g.events, *s.pending)
		s.pending = nil
	}
	for {
		e, err := s.r.Next()
		if err == io.EOF {
			s.done = true
			if len(g.events) == 0 {
				return nil, nil
			}
			return g, nil
		}
		if err != nil {
			return nil, err
		}
		*s.events = *s.events + 1
		if len(g.events) == 0 {
			g.cycle = e.Cycle
		} else if e.Cycle != g.cycle {
			s.pending = &e
			return g, nil
		}
		g.events = append(g.events, e)
	}
}
