package trace

import (
	"fmt"
	"io"
	"sort"
)

// Machine reconstructs per-cycle pipeline state offline from a journal
// event stream. It models exactly what the journal makes observable —
// the set of in-flight (renamed, not yet retired) instructions, their
// issue status, and the commit counters — and in strict mode verifies
// the stream obeys pipeline discipline: rename sequence numbers
// strictly increase, commits retire the oldest in-flight instruction
// (ROB FIFO order), squashes discard exactly the instructions younger
// than the kept sequence number. A journal that replays strictly with
// no error is therefore both intact and internally consistent.
type Machine struct {
	// Lenient relaxes the discipline checks for windowed journals,
	// where instructions enter mid-stream: commits and issues of
	// unknown sequence numbers are counted instead of rejected.
	Lenient bool

	// Cycle is the cycle of the last applied event.
	Cycle uint64
	// Halted is set once the halt commit retires.
	Halted bool

	// Event counters, one per kind.
	Fetched   uint64
	Renamed   uint64
	Issued    uint64
	Committed uint64
	Reused    uint64 // commits flagged as reused (validated or squash-reuse)
	Squashed  uint64 // instructions discarded by squash events
	Jumps     uint64 // fast-forward jumps (LevelFull journals)
	Skipped   uint64 // stall cycles those jumps absorbed

	inflight []replaySlot // sorted by ascending seq
}

type replaySlot struct {
	seq    uint64
	pc     int32
	issued bool
}

// InFlight returns the number of in-flight instructions (the modeled
// instruction-window occupancy among journaled instructions).
func (m *Machine) InFlight() int { return len(m.inflight) }

// IssuedInFlight returns how many in-flight instructions have issued
// but not yet retired.
func (m *Machine) IssuedInFlight() int {
	n := 0
	for _, s := range m.inflight {
		if s.issued {
			n++
		}
	}
	return n
}

// Apply advances the machine by one event. Errors wrap ErrMalformed
// and carry the offending event.
func (m *Machine) Apply(e Event) error {
	m.Cycle = e.Cycle
	switch e.Kind {
	case KindFetch:
		m.Fetched++
	case KindRename:
		if n := len(m.inflight); n > 0 && e.Seq <= m.inflight[n-1].seq && !m.Lenient {
			return fmt.Errorf("%w: cycle %d: rename seq %d not above in-flight tail %d",
				ErrMalformed, e.Cycle, e.Seq, m.inflight[n-1].seq)
		}
		m.inflight = append(m.inflight, replaySlot{seq: e.Seq, pc: e.PC})
		m.Renamed++
	case KindIssue:
		i := m.find(e.Seq)
		if i < 0 {
			if !m.Lenient {
				return fmt.Errorf("%w: cycle %d: issue of unknown seq %d", ErrMalformed, e.Cycle, e.Seq)
			}
		} else {
			if m.inflight[i].issued && !m.Lenient {
				return fmt.Errorf("%w: cycle %d: double issue of seq %d", ErrMalformed, e.Cycle, e.Seq)
			}
			m.inflight[i].issued = true
		}
		m.Issued++
	case KindCommit:
		switch {
		case len(m.inflight) > 0 && m.inflight[0].seq == e.Seq:
			if m.inflight[0].pc != e.PC && !m.Lenient {
				return fmt.Errorf("%w: cycle %d: commit of seq %d at pc %d, renamed at pc %d",
					ErrMalformed, e.Cycle, e.Seq, e.PC, m.inflight[0].pc)
			}
			m.inflight = m.inflight[:copy(m.inflight, m.inflight[1:])]
		case m.Lenient:
			// Windowed journal: the instruction renamed before the
			// window opened.
		default:
			return fmt.Errorf("%w: cycle %d: commit of seq %d violates ROB FIFO order (oldest in flight: %s)",
				ErrMalformed, e.Cycle, e.Seq, m.oldest())
		}
		m.Committed++
		if e.Reused {
			m.Reused++
		}
		if e.Halt {
			m.Halted = true
		}
	case KindSquash:
		keep := sort.Search(len(m.inflight), func(i int) bool { return m.inflight[i].seq > e.Seq })
		removed := len(m.inflight) - keep
		m.inflight = m.inflight[:keep]
		m.Squashed += e.N
		if uint64(removed) != e.N && !m.Lenient {
			return fmt.Errorf("%w: cycle %d: squash above seq %d discarded %d in flight, journal says %d",
				ErrMalformed, e.Cycle, e.Seq, removed, e.N)
		}
	case KindJump:
		m.Jumps++
		m.Skipped += e.N - e.Cycle
	default:
		return fmt.Errorf("%w: cycle %d: unexpected event kind %v", ErrMalformed, e.Cycle, e.Kind)
	}
	return nil
}

func (m *Machine) find(seq uint64) int {
	i := sort.Search(len(m.inflight), func(i int) bool { return m.inflight[i].seq >= seq })
	if i < len(m.inflight) && m.inflight[i].seq == seq {
		return i
	}
	return -1
}

func (m *Machine) oldest() string {
	if len(m.inflight) == 0 {
		return "none"
	}
	return fmt.Sprintf("seq %d", m.inflight[0].seq)
}

// Summary is the result of replaying a whole journal.
type Summary struct {
	Meta    Meta
	Level   Level
	Machine Machine
	// Events is the total number of events replayed.
	Events uint64
	// FirstCycle and LastCycle bound the cycles that carried events.
	FirstCycle, LastCycle uint64
}

// Replay streams the whole journal through a Machine (strict for full
// journals, lenient for windowed ones) and returns the summary. The
// returned error distinguishes journal damage (ErrCorrupt,
// ErrTruncated) from pipeline-discipline violations (ErrMalformed).
func Replay(r *Reader) (*Summary, error) {
	s := &Summary{Meta: r.Meta(), Level: r.Level()}
	s.Machine.Lenient = r.Windowed()
	for {
		e, err := r.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		if s.Events == 0 {
			s.FirstCycle = e.Cycle
		}
		s.Events++
		if e.Cycle > s.LastCycle {
			s.LastCycle = e.Cycle
		}
		if err := s.Machine.Apply(e); err != nil {
			return s, err
		}
	}
}

// Dump renders the journal as text: one header line, then the events
// grouped by cycle, restricted to cycles in [from, to] (to == 0 means
// unbounded). The whole journal is still streamed and verified, so a
// clean Dump implies an intact journal.
func Dump(w io.Writer, r *Reader, from, to uint64) error {
	if _, err := fmt.Fprintf(w, "civt v%d level=%s mode=%s workload=%q windowed=%v\n",
		Version, r.Level(), r.Meta().Mode, r.Meta().Workload, r.Windowed()); err != nil {
		return err
	}
	cur := ^uint64(0)
	for {
		e, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if e.Cycle < from || to != 0 && e.Cycle > to {
			continue
		}
		if e.Cycle != cur {
			if _, err := fmt.Fprintf(w, "cycle %d\n", e.Cycle); err != nil {
				return err
			}
			cur = e.Cycle
		}
		if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
			return err
		}
	}
}
