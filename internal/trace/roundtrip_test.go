package trace_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"civect/internal/core"
	"civect/internal/trace"
	"civect/internal/workload"
)

// engines enumerates the three engine configurations by name.
var engines = []struct {
	name string
	set  func(*core.Config)
}{
	{"fast-forward", func(c *core.Config) {}},
	{"event", func(c *core.Config) { c.NoFastForward = true }},
	{"naive", func(c *core.Config) { c.NaiveScheduler = true }},
}

// record runs b under cfg with a journal recorder attached and returns
// the journal bytes and the final statistics.
func record(t *testing.T, b *workload.Benchmark, cfg core.Config, level trace.Level) ([]byte, *core.Stats) {
	t.Helper()
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, level, trace.Meta{Workload: "test", Mode: cfg.Mode})
	p, err := core.New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	p.SetTracer(rec)
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st
}

// replay parses and strictly replays a journal.
func replay(t *testing.T, journal []byte) *trace.Summary {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTripRandomPrograms is the format's property test: random
// programs, recorded at the default pipeline level on all three
// engines, must produce byte-identical journals that replay strictly
// (rename monotonicity, ROB-FIFO commits, exact squash accounting) and
// reproduce the run's committed-instruction statistics exactly.
func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		wl := workload.Random(seed)
		for _, mode := range []core.Mode{core.ModeCI, core.ModeVect} {
			var ref []byte
			var refStats *core.Stats
			for _, eng := range engines {
				cfg := core.DefaultConfig(mode)
				eng.set(&cfg)
				journal, st := record(t, wl, cfg, trace.LevelPipeline)
				if ref == nil {
					ref, refStats = journal, st
				} else {
					if *st != *refStats {
						t.Fatalf("seed %d %v %s: stats diverge from %s", seed, mode, eng.name, engines[0].name)
					}
					if !bytes.Equal(journal, ref) {
						t.Fatalf("seed %d %v: %s journal differs from %s (%d vs %d bytes)",
							seed, mode, eng.name, engines[0].name, len(journal), len(ref))
					}
				}
			}
			s := replay(t, ref)
			if s.Machine.Committed != refStats.Committed {
				t.Fatalf("seed %d %v: replay committed %d, run %d", seed, mode, s.Machine.Committed, refStats.Committed)
			}
			if s.Machine.Reused != refStats.CommittedReuse {
				t.Fatalf("seed %d %v: replay reused %d, run %d", seed, mode, s.Machine.Reused, refStats.CommittedReuse)
			}
			if s.Machine.Renamed != refStats.Fetched {
				t.Fatalf("seed %d %v: replay renamed %d, run renamed %d", seed, mode, s.Machine.Renamed, refStats.Fetched)
			}
			if !s.Machine.Halted {
				t.Fatalf("seed %d %v: replay did not see the halt commit", seed, mode)
			}
			if s.LastCycle > refStats.Cycles {
				t.Fatalf("seed %d %v: replay last cycle %d beyond run's %d", seed, mode, s.LastCycle, refStats.Cycles)
			}
		}
	}
}

// TestJournalDeterminism re-records the same configuration and demands
// byte equality: no timestamps, map-order or other nondeterminism may
// leak into a journal.
func TestJournalDeterminism(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.ModeCI)
	cfg.MaxInstr = 10_000
	for _, level := range []trace.Level{trace.LevelCommits, trace.LevelPipeline, trace.LevelFull} {
		a, _ := record(t, wl, cfg, level)
		b, _ := record(t, wl, cfg, level)
		if !bytes.Equal(a, b) {
			t.Fatalf("level %v: identical runs produced different journals", level)
		}
	}
}

// TestLevelNesting checks the level contract: a commits-level journal
// holds exactly the commit events of the pipeline-level one, and a
// full-level journal adds only jump records on top of pipeline.
func TestLevelNesting(t *testing.T) {
	wl, err := workload.Spec("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.ModeCI)
	cfg.MaxInstr = 10_000
	journals := map[trace.Level][]byte{}
	for _, level := range []trace.Level{trace.LevelCommits, trace.LevelPipeline, trace.LevelFull} {
		journals[level], _ = record(t, wl, cfg, level)
	}
	events := func(j []byte) []trace.Event {
		r, err := trace.NewReader(bytes.NewReader(j))
		if err != nil {
			t.Fatal(err)
		}
		var evs []trace.Event
		for {
			e, err := r.Next()
			if err == io.EOF {
				return evs
			}
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, e)
		}
	}
	pipeline := events(journals[trace.LevelPipeline])
	var commitsOnly, noJumps []trace.Event
	for _, e := range pipeline {
		if e.Kind == trace.KindCommit {
			commitsOnly = append(commitsOnly, e)
		}
	}
	full := events(journals[trace.LevelFull])
	jumps := 0
	for _, e := range full {
		if e.Kind == trace.KindJump {
			jumps++
			continue
		}
		noJumps = append(noJumps, e)
	}
	commits := events(journals[trace.LevelCommits])
	if fmt.Sprint(commits) != fmt.Sprint(commitsOnly) {
		t.Fatalf("commits-level journal is not the commit subset of pipeline (%d vs %d events)",
			len(commits), len(commitsOnly))
	}
	if fmt.Sprint(noJumps) != fmt.Sprint(pipeline) {
		t.Fatalf("full-level journal minus jumps differs from pipeline (%d vs %d events)",
			len(noJumps), len(pipeline))
	}
	if jumps == 0 {
		t.Fatal("mcf on the fast-forward engine recorded no jump events at LevelFull")
	}
}

// TestDiffEngineEvents checks Diff's engine-event handling on
// LevelFull journals: the fast-forward and event engines agree on
// every pipeline event (default comparison) but differ once jump
// records are included.
func TestDiffEngineEvents(t *testing.T) {
	wl, err := workload.Spec("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.ModeCI)
	cfg.MaxInstr = 10_000
	ff, _ := record(t, wl, cfg, trace.LevelFull)
	cfg.NoFastForward = true
	ev, _ := record(t, wl, cfg, trace.LevelFull)

	open := func(j []byte) *trace.Reader {
		r, err := trace.NewReader(bytes.NewReader(j))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	res, err := trace.Diff(open(ff), open(ev), trace.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical() {
		t.Fatalf("pipeline events differ across engines: %s", res.Divergence.Reason)
	}
	res, err = trace.Diff(open(ff), open(ev), trace.DiffOptions{EngineEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Identical() {
		t.Fatal("engine-event diff of fast-forward vs event found no jump divergence")
	}
}

// TestDiffSelfIdentical diffs a journal against an independent
// recording of the same configuration.
func TestDiffSelfIdentical(t *testing.T) {
	wl := workload.Random(42)
	cfg := core.DefaultConfig(core.ModeCI)
	a, _ := record(t, wl, cfg, trace.LevelPipeline)
	b, _ := record(t, wl, cfg, trace.LevelPipeline)
	ra, err := trace.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := trace.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Diff(ra, rb, trace.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical() {
		t.Fatalf("self-diff diverged: %s", res.Divergence.Reason)
	}
	if res.EventsA == 0 || res.EventsA != res.EventsB {
		t.Fatalf("self-diff event counts: A=%d B=%d", res.EventsA, res.EventsB)
	}
}

// TestDiffRefusesMismatchedJournals checks the guard rails: different
// levels or different runs are errors, not divergences.
func TestDiffRefusesMismatchedJournals(t *testing.T) {
	wl := workload.Random(1)
	cfg := core.DefaultConfig(core.ModeCI)
	pipe, _ := record(t, wl, cfg, trace.LevelPipeline)
	commits, _ := record(t, wl, cfg, trace.LevelCommits)
	ra, err := trace.NewReader(bytes.NewReader(pipe))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := trace.NewReader(bytes.NewReader(commits))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Diff(ra, rb, trace.DiffOptions{}); err == nil {
		t.Fatal("diff of different levels did not error")
	}
}

// TestDump smoke-tests the text rendering and its cycle filtering.
func TestDump(t *testing.T) {
	wl := workload.Random(7)
	cfg := core.DefaultConfig(core.ModeCI)
	journal, _ := record(t, wl, cfg, trace.LevelPipeline)
	r, err := trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := trace.Dump(&out, r, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"civt v1 level=pipeline", "cycle ", "rename seq=1 ", "commit seq="} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("dump output missing %q:\n%s", want, out.String()[:min(600, out.Len())])
		}
	}
	r, err = trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := trace.Dump(&out, r, 10, 20); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out.Bytes(), []byte("cycle 9\n")) || bytes.Contains(out.Bytes(), []byte("cycle 21\n")) {
		t.Fatalf("dump window [10,20] leaked cycles outside it:\n%s", out.String())
	}
}
