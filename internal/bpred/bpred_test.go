package bpred

import (
	"testing"
	"testing/quick"
)

func TestGshareBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two size")
		}
	}()
	NewGshare(1000)
}

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(1 << 16)
	pc := uint64(100)
	for i := 0; i < 32; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("should predict taken after long taken streak")
	}
	for i := 0; i < 64; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Error("should predict not-taken after long not-taken streak")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// With global history, a strict alternation is perfectly predictable
	// once warmed: each phase trains its own PHT entry.
	g := NewGshare(1 << 16)
	pc := uint64(0x40)
	taken := false
	for i := 0; i < 2000; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 190 {
		t.Errorf("gshare should learn alternation, got %d/200", correct)
	}
}

func TestGshareHistoryRepair(t *testing.T) {
	g := NewGshare(1 << 10)
	snap := g.HistorySnapshot()
	g.SpeculativeShift(true)
	g.SpeculativeShift(false)
	if g.HistorySnapshot() == snap {
		t.Error("speculative shifts must change history")
	}
	g.RestoreHistory(snap)
	if g.HistorySnapshot() != snap {
		t.Error("restore must reinstate the snapshot")
	}
}

// Property: PHT counters stay within 0..3 under arbitrary training.
func TestGshareCounterBounds(t *testing.T) {
	f := func(pcs []uint16, dirs []bool) bool {
		g := NewGshare(1 << 8)
		n := len(pcs)
		if len(dirs) < n {
			n = len(dirs)
		}
		for i := 0; i < n; i++ {
			g.Update(uint64(pcs[i]), dirs[i])
		}
		for _, c := range g.table {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMBSBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	NewMBS(63, 4)
}

func TestMBSUnknownBranchNotHard(t *testing.T) {
	m := NewMBS(64, 4)
	if m.Hard(0x123) {
		t.Error("unknown branch must not be hard")
	}
}

func TestMBSBiasedBranchEasy(t *testing.T) {
	m := NewMBS(64, 4)
	pc := uint64(0x10)
	// Always taken: counter climbs to max -> easy.
	for i := 0; i < 20; i++ {
		m.Update(pc, true)
	}
	if m.Hard(pc) {
		t.Error("always-taken branch should be easy (counter saturated high)")
	}
	pc2 := uint64(0x20)
	for i := 0; i < 20; i++ {
		m.Update(pc2, false)
	}
	if m.Hard(pc2) {
		t.Error("never-taken branch should be easy (counter saturated low)")
	}
}

func TestMBSAlternatingBranchHard(t *testing.T) {
	m := NewMBS(64, 4)
	pc := uint64(0x30)
	for i := 0; i < 40; i++ {
		m.Update(pc, i%2 == 0)
	}
	if !m.Hard(pc) {
		t.Error("alternating branch should be hard (counter pinned mid-range)")
	}
}

func TestMBSRandomishBranchHard(t *testing.T) {
	m := NewMBS(64, 4)
	pc := uint64(0x31)
	pattern := []bool{true, true, false, true, false, false, true, false}
	for i := 0; i < 10; i++ {
		for _, d := range pattern {
			m.Update(pc, d)
		}
	}
	if !m.Hard(pc) {
		t.Error("irregular branch should be hard")
	}
}

func TestMBSDirectionChangeResetsToMid(t *testing.T) {
	m := NewMBS(64, 4)
	pc := uint64(0x40)
	for i := 0; i < 20; i++ {
		m.Update(pc, true) // saturate high
	}
	m.Update(pc, false) // direction change -> mid
	if !m.Hard(pc) {
		t.Error("after a direction change the counter is mid-range -> hard")
	}
}

func TestMBSEviction(t *testing.T) {
	m := NewMBS(1, 2) // one set, two ways
	m.Update(0x1, true)
	m.Update(0x2, true)
	m.Update(0x1, true) // touch 0x1
	m.Update(0x3, true) // evicts 0x2
	if m.find(0x2) != nil {
		t.Error("0x2 should have been evicted")
	}
	if m.find(0x1) == nil || m.find(0x3) == nil {
		t.Error("0x1 and 0x3 should be resident")
	}
}

func TestMBSSizeBytes(t *testing.T) {
	// §3.1: "The MBS occupies 2048 bytes (4 ways * 64 elements per way *
	// 8 bytes per element)".
	m := NewMBS(64, 4)
	if got := m.SizeBytes(); got != 2048 {
		t.Errorf("MBS size = %d bytes, want 2048", got)
	}
}

// Property: MBS counters stay within 0..15 regardless of history.
func TestMBSCounterBounds(t *testing.T) {
	f := func(dirs []bool) bool {
		m := NewMBS(4, 2)
		for _, d := range dirs {
			m.Update(0x7, d)
		}
		e := m.find(0x7)
		return e == nil || e.counter <= mbsMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
