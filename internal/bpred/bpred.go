// Package bpred implements the branch direction predictor (gshare, Table
// 1: 64K entries of 2-bit counters) and the paper's MBS table
// (Mispredicted Branch Status, §2.3.1), which classifies static branches
// as highly biased (easy) or hard to predict. The control-independence
// scheme is only activated for hard branches.
package bpred

// Gshare is a global-history XOR-indexed pattern history table of 2-bit
// saturating counters.
type Gshare struct {
	table   []uint8
	history uint64
	mask    uint64
	histLen uint
}

// NewGshare builds a predictor with the given number of PHT entries
// (must be a power of two; Table 1 uses 64K).
func NewGshare(entries int) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a positive power of two")
	}
	histLen := uint(0)
	for n := entries; n > 1; n >>= 1 {
		histLen++
	}
	g := &Gshare{
		table:   make([]uint8, entries),
		mask:    uint64(entries - 1),
		histLen: histLen,
	}
	// Weakly taken start avoids a cold-start bias toward not-taken.
	for i := range g.table {
		g.table[i] = 2
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return (pc ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and shifts the
// global history. Update must be called with the same history state used
// by Predict; the pipeline calls it at branch resolution and repairs the
// history on mispredictions via HistorySnapshot/RestoreHistory.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else if c > 0 {
		g.table[i] = c - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & ((1 << g.histLen) - 1)
}

// SpeculativeShift advances the history with a predicted direction at
// fetch; mispredict recovery restores the snapshot taken before the
// shift.
func (g *Gshare) SpeculativeShift(taken bool) {
	g.history = ((g.history << 1) | b2u(taken)) & ((1 << g.histLen) - 1)
}

// TrainAt updates the PHT counter for a branch resolved out of order,
// using the global history captured when the branch was predicted. The
// current (speculative) history register is not touched; fetch-time
// SpeculativeShift and recovery-time RestoreHistory manage it.
func (g *Gshare) TrainAt(pc uint64, taken bool, history uint64) {
	i := (pc ^ history) & g.mask
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else if c > 0 {
		g.table[i] = c - 1
	}
}

// HistorySnapshot returns the current global history register.
func (g *Gshare) HistorySnapshot() uint64 { return g.history }

// RestoreHistory rolls the global history back to a snapshot.
func (g *Gshare) RestoreHistory(h uint64) { g.history = h }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MBS is the Mispredicted Branch Status table: a set-associative table
// indexed by branch PC with a 4-bit saturating up/down counter per entry
// (§2.3.1). The counter is increased by taken and decreased by not-taken
// outcomes when the direction repeats the previous outcome; a direction
// change resets the counter to mid-range. A branch whose counter sits at
// either extreme is highly biased (easy); anything else is considered
// hard to predict, which activates the control-independence scheme.
type MBS struct {
	sets  int
	assoc int
	ways  []mbsEntry
	clock uint64
}

type mbsEntry struct {
	pc      uint64
	valid   bool
	counter uint8 // 0..15
	prev    bool  // previous outcome
	seen    bool  // prev is meaningful
	lru     uint64
}

const (
	mbsMax = 15
	mbsMid = 8
)

// NewMBS builds the table; the paper's configuration is 64 sets, 4-way
// (§3.1: "4 ways * 64 elements per way").
func NewMBS(sets, assoc int) *MBS {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("bpred: MBS sets must be a positive power of two")
	}
	return &MBS{sets: sets, assoc: assoc, ways: make([]mbsEntry, sets*assoc)}
}

func (m *MBS) set(pc uint64) []mbsEntry {
	s := int(pc) & (m.sets - 1)
	return m.ways[s*m.assoc : (s+1)*m.assoc]
}

func (m *MBS) find(pc uint64) *mbsEntry {
	ways := m.set(pc)
	for i := range ways {
		if ways[i].valid && ways[i].pc == pc {
			return &ways[i]
		}
	}
	return nil
}

// Update records a resolved branch outcome.
func (m *MBS) Update(pc uint64, taken bool) {
	m.clock++
	e := m.find(pc)
	if e == nil {
		ways := m.set(pc)
		victim := 0
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
		ways[victim] = mbsEntry{pc: pc, valid: true, counter: mbsMid, lru: m.clock}
		e = &ways[victim]
	}
	e.lru = m.clock
	switch {
	case !e.seen || taken == e.prev:
		if taken {
			if e.counter < mbsMax {
				e.counter++
			}
		} else if e.counter > 0 {
			e.counter--
		}
	default:
		e.counter = mbsMid
	}
	e.prev, e.seen = taken, true
}

// Hard reports whether the branch at pc is considered hard to predict.
// Unknown branches are not hard (the scheme stays off until the branch
// shows history). Branches with a saturated counter are highly biased
// and therefore easy.
func (m *MBS) Hard(pc uint64) bool {
	e := m.find(pc)
	if e == nil {
		return false
	}
	return e.counter != 0 && e.counter != mbsMax
}

// SizeBytes returns the storage cost used in the paper's §3.1 accounting
// (8 bytes per element: PC tag plus counter state, rounded as the paper
// does).
func (m *MBS) SizeBytes() int { return m.sets * m.assoc * 8 }
