package bpred

import "civect/internal/ckpt"

// Checkpoint serialization: warm predictor state. Every counter, the
// global history register and the MBS LRU clock round-trip exactly — a
// restored run's prediction stream, and so its misprediction recoveries
// and CI episodes, must match the uninterrupted run bit-for-bit.

// SaveState encodes the gshare predictor.
func (g *Gshare) SaveState(e *ckpt.Encoder) {
	e.Tag("gshare")
	e.Int(len(g.table))
	for _, c := range g.table {
		e.U8(c)
	}
	e.U64(g.history)
}

// LoadState restores state saved from a predictor with the same entry
// count.
func (g *Gshare) LoadState(d *ckpt.Decoder) {
	d.Tag("gshare")
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n != len(g.table) {
		d.Fail("gshare size mismatch: checkpoint has %d entries, predictor has %d", n, len(g.table))
		return
	}
	for i := range g.table {
		g.table[i] = d.U8()
	}
	g.history = d.U64()
}

// SaveState encodes the MBS table.
func (m *MBS) SaveState(e *ckpt.Encoder) {
	e.Tag("mbs")
	e.Int(len(m.ways))
	for i := range m.ways {
		w := &m.ways[i]
		e.U64(w.pc)
		e.Bool(w.valid)
		e.U8(w.counter)
		e.Bool(w.prev)
		e.Bool(w.seen)
		e.U64(w.lru)
	}
	e.U64(m.clock)
}

// LoadState restores state saved from a table with the same geometry.
func (m *MBS) LoadState(d *ckpt.Decoder) {
	d.Tag("mbs")
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n != len(m.ways) {
		d.Fail("MBS geometry mismatch: checkpoint has %d ways, table has %d", n, len(m.ways))
		return
	}
	for i := range m.ways {
		w := &m.ways[i]
		w.pc = d.U64()
		w.valid = d.Bool()
		w.counter = d.U8()
		w.prev = d.Bool()
		w.seen = d.Bool()
		w.lru = d.U64()
	}
	m.clock = d.U64()
}
