// Package sweep partitions the full experiment sweep — the
// deterministic cross-product of experiments × benchmarks × config
// points the harness would simulate — into k-of-n shards that separate
// processes (or machines) can run independently, and merges the
// per-shard results back into the complete paper tables.
//
// The plan is obtained by dry-running the experiment registry against a
// recording harness: experiment control flow is data-independent, so
// the recorded, deduplicated, Key-sorted spec set is exactly the set of
// simulations an unsharded run executes. Shard assignment weights each
// cell by its estimated cost (big-tier cells cost several times a
// base-tier cell) and distributes them with a deterministic
// longest-processing-time greedy pass over the sorted plan — stable
// across runs and machines (a golden-hash test pins it; with uniform
// weights it degenerates to exactly the former round-robin), balanced
// by cost rather than cell count, and trivially exhaustive. Merging
// validates exact coverage (every planned cell present exactly once,
// nothing extra) and regenerates the tables through an offline harness
// primed with the shard results, so the output is byte-identical to an
// unsharded run.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"civect/internal/core"
	"civect/internal/harness"
)

// FormatVersion identifies the shard-file schema.
const FormatVersion = 1

// Shard names one part of an n-way partition, 1-based: "2/8" is the
// second of eight shards.
type Shard struct {
	K int // 1..N
	N int
}

// ParseShard parses "k/n". The whole string must match: a mistyped
// shard argument on one machine of a farm must fail fast there, not
// surface later as a cimerge coverage error.
func ParseShard(s string) (Shard, error) {
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form k/n", s)
	}
	k, errK := strconv.Atoi(ks)
	n, errN := strconv.Atoi(ns)
	if errK != nil || errN != nil || strconv.Itoa(k) != ks || strconv.Itoa(n) != ns {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form k/n", s)
	}
	if n < 1 || k < 1 || k > n {
		return Shard{}, fmt.Errorf("sweep: shard %d/%d out of range (need 1 <= k <= n)", k, n)
	}
	return Shard{K: k, N: n}, nil
}

// String renders the shard as "k/n".
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.K, s.N) }

// resolveExps maps experiment ids to registry entries, preserving the
// registry's presentation order (so merged output ordering never
// depends on the caller's argument order). Empty ids means all.
func resolveExps(ids []string) ([]harness.Experiment, error) {
	if len(ids) == 0 {
		return harness.Experiments(), nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := harness.ExperimentByID(id); !ok {
			return nil, fmt.Errorf("sweep: unknown experiment %q", id)
		}
		want[id] = true
	}
	var exps []harness.Experiment
	for _, e := range harness.Experiments() {
		if want[e.ID] {
			exps = append(exps, e)
		}
	}
	return exps, nil
}

// Plan enumerates the sweep: the deduplicated, Key-sorted RunSpecs the
// given experiments would simulate under opt. Empty expIDs means the
// whole registry.
func Plan(expIDs []string, opt harness.Options) ([]harness.RunSpec, error) {
	exps, err := resolveExps(expIDs)
	if err != nil {
		return nil, err
	}
	h := harness.NewPlanner(opt)
	if _, err := harness.RunExperiments(h, exps); err != nil {
		return nil, fmt.Errorf("sweep: planning failed: %w", err)
	}
	return h.PlannedSpecs(), nil
}

// bigTierCostWeight is the estimated cost of a big-tier cell relative
// to a base-tier cell: the megabyte working sets and 100k+-instruction
// programs make both generation and simulation several times slower
// per committed instruction. The exact value only shapes load balance,
// never coverage, so a coarse estimate is fine — but changing it
// changes shard assignment on mixed-tier sweeps (shards from different
// binaries must not be mixed; Merge's coverage check catches it).
const bigTierCostWeight = 4

// CellCost estimates the relative wall-clock cost of one sweep cell.
func CellCost(s harness.RunSpec) int {
	if strings.HasSuffix(s.Bench, ".big") {
		return bigTierCostWeight
	}
	return 1
}

// Partition splits Key-sorted specs into n cost-balanced shards with a
// deterministic longest-processing-time greedy pass: cells are taken
// in descending CellCost (stable on the plan order), each assigned to
// the currently lightest shard, ties to the lowest shard index. With
// uniform costs this reduces exactly to the former round-robin
// assignment (specs[i] -> shard i mod n), which the golden-hash test
// pins. The union of the result is exactly specs, in plan order
// within each shard.
func Partition(specs []harness.RunSpec, n int) [][]harness.RunSpec {
	// Stable descending-cost order: costs take few distinct values, so
	// one bucket per distinct cost preserves plan order within a class.
	heavy := make([]int, 0, len(specs))
	light := make([]int, 0, len(specs))
	for i, s := range specs {
		if CellCost(s) > 1 {
			heavy = append(heavy, i)
		} else {
			light = append(light, i)
		}
	}

	out := make([][]harness.RunSpec, n)
	load := make([]int, n)
	assign := make([][]int, n)
	place := func(i int) {
		best := 0
		for k := 1; k < n; k++ {
			if load[k] < load[best] {
				best = k
			}
		}
		assign[best] = append(assign[best], i)
		load[best] += CellCost(specs[i])
	}
	for _, i := range heavy {
		place(i)
	}
	for _, i := range light {
		place(i)
	}
	for k := range out {
		sort.Ints(assign[k]) // plan order within the shard
		for _, i := range assign[k] {
			out[k] = append(out[k], specs[i])
		}
	}
	return out
}

// Select returns the specs assigned to this shard; it agrees with
// Partition by construction.
func (sh Shard) Select(specs []harness.RunSpec) []harness.RunSpec {
	return Partition(specs, sh.N)[sh.K-1]
}

// Cell is one completed sweep cell: a spec and its simulation result.
type Cell struct {
	Spec  harness.RunSpec `json:"spec"`
	Stats *core.Stats     `json:"stats"`
}

// File is one shard's result file. The header repeats everything
// needed to recompute the plan, so Merge can validate coverage without
// trusting the producer.
type File struct {
	Version   int      `json:"version"`
	Shard     int      `json:"shard"`
	NumShards int      `json:"num_shards"`
	Exps      []string `json:"experiments"`
	MaxInstr  uint64   `json:"max_instr"`
	Benches   []string `json:"benches"`
	Cells     []Cell   `json:"cells"`
}

// header compares the plan-defining fields of two files.
func (f *File) sameSweep(g *File) bool {
	if f.NumShards != g.NumShards || f.MaxInstr != g.MaxInstr {
		return false
	}
	if len(f.Exps) != len(g.Exps) || len(f.Benches) != len(g.Benches) {
		return false
	}
	for i := range f.Exps {
		if f.Exps[i] != g.Exps[i] {
			return false
		}
	}
	for i := range f.Benches {
		if f.Benches[i] != g.Benches[i] {
			return false
		}
	}
	return true
}

// RunShard plans the sweep, selects this shard's cells and simulates
// them on a fresh harness: the cells are batch-prefetched through
// per-benchmark lockstep sweeps (width opt.BatchWidth, worker bound
// opt.Workers) and then collected in shard order from the primed cache.
func RunShard(expIDs []string, opt harness.Options, sh Shard) (*File, error) {
	specs, err := Plan(expIDs, opt)
	if err != nil {
		return nil, err
	}
	exps, _ := resolveExps(expIDs)
	mine := sh.Select(specs)

	h := harness.New(opt)
	if err := h.Prefetch(mine); err != nil {
		return nil, fmt.Errorf("sweep: shard %s: %w", sh, err)
	}
	cells := make([]Cell, len(mine))
	for i, s := range mine {
		st, err := h.Run(s)
		if err != nil {
			return nil, fmt.Errorf("sweep: shard %s cell %s: %w", sh, s.Key(), err)
		}
		cells[i] = Cell{Spec: s, Stats: st}
	}

	// A shard runs its plan slice directly, so the plan-vs-run hazard
	// (an experiment whose spec choices depend on simulation results)
	// cannot show up here — it is caught where experiments actually
	// execute: TestPlanMatchesExecution compares a dry-run plan with a
	// real harness's recorded ExecutedSpecs over the whole registry,
	// and Tables below fails on any merged cell the experiments never
	// request (plus the offline harness's hard error on the converse).

	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	hopt := h.Options()
	return &File{
		Version:   FormatVersion,
		Shard:     sh.K,
		NumShards: sh.N,
		Exps:      ids,
		MaxInstr:  hopt.MaxInstr,
		Benches:   hopt.Benches,
		Cells:     cells,
	}, nil
}

// Load reads one shard file.
func Load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("sweep: %s: format version %d, want %d", path, f.Version, FormatVersion)
	}
	return &f, nil
}

// Merge joins shard files into one complete result set, validating
// exact coverage: the headers must describe the same sweep, and the
// union of cells must equal the recomputed plan — every cell present
// exactly once, no overlap, nothing outside the plan.
func Merge(files []*File) (*File, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("sweep: no shard files to merge")
	}
	head := files[0]
	for _, f := range files[1:] {
		if !head.sameSweep(f) {
			return nil, fmt.Errorf("sweep: shard %d/%d describes a different sweep than shard %d/%d",
				f.Shard, f.NumShards, head.Shard, head.NumShards)
		}
	}

	opt := harness.Options{MaxInstr: head.MaxInstr, Benches: head.Benches, Workers: 1}
	plan, err := Plan(head.Exps, opt)
	if err != nil {
		return nil, err
	}
	planned := make(map[string]bool, len(plan))
	for _, s := range plan {
		planned[s.Key()] = true
	}

	seen := make(map[string]int, len(plan))
	merged := &File{
		Version:   FormatVersion,
		NumShards: head.NumShards,
		Exps:      head.Exps,
		MaxInstr:  head.MaxInstr,
		Benches:   head.Benches,
	}
	shardsSeen := make(map[int]bool)
	for _, f := range files {
		if shardsSeen[f.Shard] {
			return nil, fmt.Errorf("sweep: shard %d/%d provided twice", f.Shard, f.NumShards)
		}
		shardsSeen[f.Shard] = true
		for _, c := range f.Cells {
			key := c.Spec.Key()
			if !planned[key] {
				return nil, fmt.Errorf("sweep: shard %d/%d contains cell outside the plan: %s", f.Shard, f.NumShards, key)
			}
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("sweep: cell %s present in both shard %d and shard %d", key, prev, f.Shard)
			}
			seen[key] = f.Shard
			merged.Cells = append(merged.Cells, c)
		}
	}
	if len(seen) != len(plan) {
		var missing []string
		for _, s := range plan {
			if _, ok := seen[s.Key()]; !ok {
				missing = append(missing, s.Key())
				if len(missing) == 5 {
					missing = append(missing, "...")
					break
				}
			}
		}
		return nil, fmt.Errorf("sweep: incomplete coverage: %d of %d cells missing (e.g. %s)",
			len(plan)-len(seen), len(plan), strings.Join(missing, ", "))
	}
	sort.Slice(merged.Cells, func(i, j int) bool {
		return merged.Cells[i].Spec.Key() < merged.Cells[j].Spec.Key()
	})
	return merged, nil
}

// Tables regenerates the experiment tables from a merged result set
// through an offline harness: the output is byte-identical to an
// unsharded run with the same options, and any cell the experiments
// need that the merge did not provide is a hard error rather than a
// silent re-simulation.
func Tables(f *File) ([]*harness.Table, error) {
	exps, err := resolveExps(f.Exps)
	if err != nil {
		return nil, err
	}
	h := harness.NewOffline(harness.Options{MaxInstr: f.MaxInstr, Benches: f.Benches})
	for _, c := range f.Cells {
		h.Prime(c.Spec, c.Stats)
	}
	tables, err := harness.RunExperiments(h, exps)
	if err != nil {
		return nil, err
	}
	// The offline harness already errors when an experiment requests a
	// cell the merge did not provide; the converse — a merged cell no
	// experiment asked for — is the silent half of the
	// data-dependent-spec hazard (the plan enumerated more than the
	// experiments actually use), and fails loudly here.
	if extra := h.UnusedPrimed(); len(extra) > 0 {
		return nil, fmt.Errorf("sweep: %d merged cell(s) never requested by the experiments (plan/run divergence, e.g. %s)",
			len(extra), extra[0].Key())
	}
	return tables, nil
}
