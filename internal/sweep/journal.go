package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"civect/internal/core"
	"civect/internal/harness"
)

// Shard journaling: RunShardJournaled is RunShard with crash recovery.
// As each cell finishes it is appended to a journal file — one Cell
// JSON object per line, synced — so a killed shard run can be restarted
// with the same journal path and simulate only the cells it had not yet
// completed. The final File is byte-identical to a straight RunShard's:
// journal-recovered cells carry the exact Stats recorded before the
// kill, and the deterministic engines make re-simulated cells
// bit-identical anyway. On success the journal is removed — like a
// session checkpoint, a leftover journal always means resumable work.

// readJournal parses a shard journal into a key -> Stats map. allowed
// is the shard's planned cell-key set: a journal entry outside it means
// the journal belongs to a different sweep (or shard) and is a hard
// error, never silently dropped. A torn final line — the signature of a
// kill mid-append — is discarded; corruption anywhere else is an error.
func readJournal(path string, allowed map[string]bool) (map[string]*core.Stats, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	done := make(map[string]*core.Stats)
	lines := bytes.Split(blob, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var c Cell
		if err := json.Unmarshal(line, &c); err != nil {
			if i == len(lines)-1 {
				// Torn tail: the previous run died mid-append. Everything
				// before it is intact; the interrupted cell re-simulates.
				break
			}
			return nil, fmt.Errorf("sweep: journal %s line %d: %w", path, i+1, err)
		}
		key := c.Spec.Key()
		if !allowed[key] {
			return nil, fmt.Errorf("sweep: journal %s line %d: cell %s is not in this shard's plan (stale journal?)", path, i+1, key)
		}
		if _, dup := done[key]; dup {
			return nil, fmt.Errorf("sweep: journal %s line %d: cell %s recorded twice", path, i+1, key)
		}
		if c.Stats == nil {
			return nil, fmt.Errorf("sweep: journal %s line %d: cell %s has no stats", path, i+1, key)
		}
		done[key] = c.Stats
	}
	return done, nil
}

// RunShardJournaled is RunShard with a crash-recovery journal at path:
// completed cells are appended (and synced) as they finish, cells
// already in the journal are recovered instead of re-simulated, and the
// journal is removed once the full shard File is assembled. Restarting
// after a kill with the same arguments and journal path therefore
// completes the shard, producing a File byte-identical to an
// uninterrupted RunShard's.
func RunShardJournaled(expIDs []string, opt harness.Options, sh Shard, path string) (*File, error) {
	specs, err := Plan(expIDs, opt)
	if err != nil {
		return nil, err
	}
	exps, _ := resolveExps(expIDs)
	mine := sh.Select(specs)

	allowed := make(map[string]bool, len(mine))
	for _, s := range mine {
		allowed[s.Key()] = true
	}
	done, err := readJournal(path, allowed)
	if err != nil {
		return nil, err
	}
	if done == nil {
		done = make(map[string]*core.Stats, len(mine))
	}

	var pending []harness.RunSpec
	for _, s := range mine {
		if _, ok := done[s.Key()]; !ok {
			pending = append(pending, s)
		}
	}

	h := harness.New(opt)
	cells := make([]Cell, len(mine))
	if len(pending) > 0 {
		jf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("sweep: journal: %w", err)
		}
		defer jf.Close()
		jw := bufio.NewWriter(jf)
		if err := h.Prefetch(pending); err != nil {
			return nil, fmt.Errorf("sweep: shard %s: %w", sh, err)
		}
		for _, s := range pending {
			st, err := h.Run(s)
			if err != nil {
				return nil, fmt.Errorf("sweep: shard %s cell %s: %w", sh, s.Key(), err)
			}
			line, err := json.Marshal(Cell{Spec: s, Stats: st})
			if err != nil {
				return nil, fmt.Errorf("sweep: journal: %w", err)
			}
			jw.Write(line)
			jw.WriteByte('\n')
			// Flush and sync per cell: each cell is a whole simulation, so
			// the sync is cheap relative to the work it makes durable.
			if err := jw.Flush(); err != nil {
				return nil, fmt.Errorf("sweep: journal: %w", err)
			}
			if err := jf.Sync(); err != nil {
				return nil, fmt.Errorf("sweep: journal: %w", err)
			}
			done[s.Key()] = st
		}
	}
	for i, s := range mine {
		cells[i] = Cell{Spec: s, Stats: done[s.Key()]}
	}

	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: removing completed journal: %w", err)
	}

	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	hopt := h.Options()
	return &File{
		Version:   FormatVersion,
		Shard:     sh.K,
		NumShards: sh.N,
		Exps:      ids,
		MaxInstr:  hopt.MaxInstr,
		Benches:   hopt.Benches,
		Cells:     cells,
	}, nil
}
