package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"civect/internal/harness"
)

// journalOptions is a small sweep that still spans several cells per
// shard, so truncation tests have a meaningful prefix to recover.
func journalOptions() ([]string, harness.Options, Shard) {
	return []string{"cost", "fig10"},
		harness.Options{MaxInstr: 5000, Benches: []string{"gcc", "gzip"}},
		Shard{K: 1, N: 2}
}

// TestJournaledMatchesRunShard: an uninterrupted journaled run produces
// a File byte-identical to a straight RunShard and leaves no journal
// behind.
func TestJournaledMatchesRunShard(t *testing.T) {
	expIDs, opt, sh := journalOptions()
	want, err := RunShard(expIDs, opt, sh)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.jnl")
	got, err := RunShardJournaled(expIDs, opt, sh, path)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.MarshalIndent(got, "", "  ")
	wb, _ := json.MarshalIndent(want, "", "  ")
	if string(gb) != string(wb) {
		t.Errorf("journaled shard file differs from RunShard's:\n--- journaled ---\n%s\n--- direct ---\n%s", gb, wb)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("journal %s still exists after a completed run (stat err %v)", path, err)
	}
}

// TestJournalResume is the kill-and-restart contract: given a journal
// holding a prefix of the shard's cells — with a torn final line, as a
// kill mid-append leaves — the restarted run recovers the prefix,
// simulates only the rest, and produces a File byte-identical to an
// uninterrupted RunShard's.
func TestJournalResume(t *testing.T) {
	expIDs, opt, sh := journalOptions()
	want, err := RunShard(expIDs, opt, sh)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Cells) < 3 {
		t.Fatalf("test sweep too small: %d cells in shard %s", len(want.Cells), sh)
	}

	// Rebuild the journal a kill would leave: the first two cells
	// complete, the third torn mid-write.
	var jnl strings.Builder
	for _, c := range want.Cells[:2] {
		line, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		jnl.Write(line)
		jnl.WriteByte('\n')
	}
	full, _ := json.Marshal(want.Cells[2])
	jnl.Write(full[:len(full)/2]) // torn tail, no newline
	path := filepath.Join(t.TempDir(), "shard.jnl")
	if err := os.WriteFile(path, []byte(jnl.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := RunShardJournaled(expIDs, opt, sh, path)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.MarshalIndent(got, "", "  ")
	wb, _ := json.MarshalIndent(want, "", "  ")
	if string(gb) != string(wb) {
		t.Errorf("resumed shard file differs from an uninterrupted run's:\n--- resumed ---\n%s\n--- direct ---\n%s", gb, wb)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("journal %s still exists after a completed run (stat err %v)", path, err)
	}
}

// TestJournalRecoversWithoutResimulating proves completed cells are
// taken from the journal, not re-run: a journal entry with deliberately
// falsified statistics must flow through to the final File untouched.
func TestJournalRecoversWithoutResimulating(t *testing.T) {
	expIDs, opt, sh := journalOptions()
	want, err := RunShard(expIDs, opt, sh)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := *want.Cells[0].Stats
	poisoned.Cycles += 12345
	line, err := json.Marshal(Cell{Spec: want.Cells[0].Spec, Stats: &poisoned})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.jnl")
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := RunShardJournaled(expIDs, opt, sh, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells[0].Stats.Cycles != poisoned.Cycles {
		t.Errorf("cell %s was re-simulated (cycles %d) instead of recovered from the journal (cycles %d)",
			got.Cells[0].Spec.Key(), got.Cells[0].Stats.Cycles, poisoned.Cycles)
	}
}

// TestJournalRejectsStale: a journal whose cells are not in this
// shard's plan (different sweep options, different shard) is a hard
// error, never silently merged or dropped.
func TestJournalRejectsStale(t *testing.T) {
	expIDs, opt, sh := journalOptions()
	want, err := RunShard(expIDs, opt, sh)
	if err != nil {
		t.Fatal(err)
	}
	stale := want.Cells[0]
	stale.Spec.MaxInstr = 999 // not a planned cell under opt
	line, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.jnl")
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunShardJournaled(expIDs, opt, sh, path); err == nil {
		t.Fatal("RunShardJournaled accepted a journal from a different sweep")
	} else if !strings.Contains(err.Error(), "not in this shard's plan") {
		t.Fatalf("wrong error for stale journal: %v", err)
	}
}

// TestJournalRejectsMidstreamCorruption: a malformed line that is not
// the final one cannot be a torn append and must fail loudly.
func TestJournalRejectsMidstreamCorruption(t *testing.T) {
	expIDs, opt, sh := journalOptions()
	want, err := RunShard(expIDs, opt, sh)
	if err != nil {
		t.Fatal(err)
	}
	line, _ := json.Marshal(want.Cells[0])
	blob := "{corrupt\n" + string(line) + "\n"
	path := filepath.Join(t.TempDir(), "shard.jnl")
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RunShardJournaled(expIDs, opt, sh, path); err == nil {
		t.Fatal("RunShardJournaled accepted a journal with midstream corruption")
	}
}
