package sweep

import (
	"encoding/json"
	"hash/fnv"
	"strings"
	"testing"

	"civect/internal/harness"
)

// planOptions is the fixed sweep configuration the partitioning tests
// pin: the same shape CI's sharded smoke job runs.
func planOptions() harness.Options {
	return harness.Options{MaxInstr: 8000, Benches: []string{"gcc", "gzip", "eon"}}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"1/1": {1, 1},
		"2/8": {2, 8},
		"3/3": {3, 3},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != in {
			t.Errorf("Shard.String() = %q, want %q", got.String(), in)
		}
	}
	for _, in := range []string{"", "3", "0/3", "4/3", "-1/2", "1/0", "a/b", "1/2/3",
		"2/8abc", "2/8 ", " 2/8", "2/8\r", "+2/8"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) should fail", in)
		}
	}
}

func TestPlanDeterministicAndSorted(t *testing.T) {
	a, err := Plan(nil, planOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(nil, planOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty plan")
	}
	if len(a) != len(b) {
		t.Fatalf("plan size varies across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan[%d] differs across runs: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i-1].Key() >= a[i].Key() {
			t.Fatalf("plan not strictly Key-sorted at %d: %q >= %q", i, a[i-1].Key(), a[i].Key())
		}
	}
	// Every benchmark of the option set must appear.
	benches := map[string]bool{}
	for _, s := range a {
		benches[s.Bench] = true
		if s.MaxInstr != 8000 {
			t.Fatalf("plan spec not normalized: %+v", s)
		}
	}
	for _, b := range planOptions().Benches {
		if !benches[b] {
			t.Errorf("benchmark %s missing from plan", b)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Plan([]string{"nope"}, planOptions()); err == nil {
		t.Error("unknown experiment id must fail the plan")
	}
}

// TestPartitionProperty: for any n, the shards are disjoint, their
// union is the full plan, sizes are balanced to within one, and
// Shard.Select agrees with Partition.
func TestPartitionProperty(t *testing.T) {
	plan, err := Plan(nil, planOptions())
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 9; n++ {
		parts := Partition(plan, n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d shards", n, len(parts))
		}
		seen := make(map[string]int)
		total := 0
		for k, part := range parts {
			sel := Shard{K: k + 1, N: n}.Select(plan)
			if len(sel) != len(part) {
				t.Fatalf("n=%d shard %d: Select (%d) and Partition (%d) disagree", n, k+1, len(sel), len(part))
			}
			for i := range part {
				if sel[i] != part[i] {
					t.Fatalf("n=%d shard %d cell %d: Select and Partition disagree", n, k+1, i)
				}
				if prev, dup := seen[part[i].Key()]; dup {
					t.Fatalf("n=%d: cell %s in shards %d and %d", n, part[i].Key(), prev, k+1)
				}
				seen[part[i].Key()] = k + 1
			}
			total += len(part)
			if min, max := len(plan)/n, len(plan)/n+1; len(part) < min || len(part) > max {
				t.Errorf("n=%d shard %d: %d cells, want %d..%d", n, k+1, len(part), min, max)
			}
		}
		if total != len(plan) {
			t.Fatalf("n=%d: union has %d cells, plan has %d", n, total, len(plan))
		}
	}
}

// TestShardAssignmentGolden pins the shard assignment for a fixed
// sweep: reordering the plan, changing Key, or changing the assignment
// rule shows up as a hash change, which would silently mix results
// from shards produced by different binaries. Update the constant only
// for deliberate, documented format changes (and bump FormatVersion).
func TestShardAssignmentGolden(t *testing.T) {
	plan, err := Plan(nil, planOptions())
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for k, part := range Partition(plan, 3) {
		for _, s := range part {
			h.Write([]byte{byte(k)})
			h.Write([]byte(s.Key()))
			h.Write([]byte{'\n'})
		}
	}
	const want = "3683933d30d5ed99"
	if got := fmtHash(h.Sum64()); got != want {
		t.Errorf("shard assignment hash = %s, want %s (plan: %d cells)", got, want, len(plan))
	}
}

// shardCost sums CellCost over a shard.
func shardCost(part []harness.RunSpec) int {
	c := 0
	for _, s := range part {
		c += CellCost(s)
	}
	return c
}

// costSpread is max-min shard cost.
func costSpread(parts [][]harness.RunSpec) int {
	lo, hi := int(1<<62), 0
	for _, p := range parts {
		c := shardCost(p)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return hi - lo
}

// TestCostWeightedPartition: on a mixed-tier plan, the LPT assignment
// must (a) stay a deterministic exhaustive partition of the plan that
// Select agrees with, and (b) shrink the shard cost spread compared to
// the old cell-count round-robin, which stacks the expensive big-tier
// cells unevenly.
func TestCostWeightedPartition(t *testing.T) {
	opt := harness.Options{MaxInstr: 8000, Benches: []string{"gcc", "gzip", "eon", "gcc.big", "mcf.big"}}
	plan, err := Plan(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	hasBig, hasBase := false, false
	for _, s := range plan {
		if CellCost(s) > 1 {
			hasBig = true
		} else {
			hasBase = true
		}
	}
	if !hasBig || !hasBase {
		t.Fatalf("plan is not mixed-tier (big=%v base=%v)", hasBig, hasBase)
	}

	for n := 2; n <= 7; n++ {
		parts := Partition(plan, n)
		// Exhaustive, disjoint, Select-consistent.
		seen := make(map[string]bool, len(plan))
		for k, part := range parts {
			sel := Shard{K: k + 1, N: n}.Select(plan)
			if len(sel) != len(part) {
				t.Fatalf("n=%d shard %d: Select and Partition disagree", n, k+1)
			}
			for i := range part {
				if sel[i] != part[i] {
					t.Fatalf("n=%d shard %d cell %d: Select and Partition disagree", n, k+1, i)
				}
				if seen[part[i].Key()] {
					t.Fatalf("n=%d: cell %s assigned twice", n, part[i].Key())
				}
				seen[part[i].Key()] = true
			}
		}
		if len(seen) != len(plan) {
			t.Fatalf("n=%d: %d of %d cells assigned", n, len(seen), len(plan))
		}
		// Determinism.
		again := Partition(plan, n)
		for k := range parts {
			for i := range parts[k] {
				if again[k][i] != parts[k][i] {
					t.Fatalf("n=%d: partition not deterministic", n)
				}
			}
		}
		// Cost balance vs round-robin by cell count.
		rr := make([][]harness.RunSpec, n)
		for i, s := range plan {
			rr[i%n] = append(rr[i%n], s)
		}
		if lpt, naive := costSpread(parts), costSpread(rr); lpt > naive {
			t.Errorf("n=%d: LPT cost spread %d worse than round-robin %d", n, lpt, naive)
		} else if n == 3 && lpt >= naive {
			// The headline case must strictly improve: the Key-sorted
			// plan clusters each benchmark's cells, so count-based
			// round-robin stacks big-tier cells onto the same shards.
			t.Errorf("n=3: LPT cost spread %d does not improve on round-robin %d", lpt, naive)
		}
	}
}

// TestUniformCostIsRoundRobin pins the degenerate case the golden hash
// depends on: with uniform cell costs the LPT pass assigns cell i to
// shard i mod n, exactly the PR 2 round-robin.
func TestUniformCostIsRoundRobin(t *testing.T) {
	plan, err := Plan(nil, planOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan {
		if CellCost(s) != 1 {
			t.Fatalf("base-tier plan has non-uniform cost cell %s", s.Key())
		}
	}
	for n := 1; n <= 5; n++ {
		parts := Partition(plan, n)
		for k, part := range parts {
			want := 0
			for i := k; i < len(plan); i += n {
				if part[want] != plan[i] {
					t.Fatalf("n=%d shard %d: cell %d is not round-robin", n, k+1, want)
				}
				want++
			}
			if want != len(part) {
				t.Fatalf("n=%d shard %d: %d cells, round-robin wants %d", n, k+1, len(part), want)
			}
		}
	}
}

func fmtHash(v uint64) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		b[i] = hex[v&0xf]
		v >>= 4
	}
	return string(b)
}

// tinyMerge runs a small sweep sharded 3 ways, JSON round-trips each
// shard file, and returns the pieces the merge tests share.
func tinyMerge(t *testing.T, expIDs []string, opt harness.Options, n int) []*File {
	t.Helper()
	var files []*File
	for k := 1; k <= n; k++ {
		f, err := RunShard(expIDs, opt, Shard{K: k, N: n})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		var rt File
		if err := json.Unmarshal(blob, &rt); err != nil {
			t.Fatal(err)
		}
		files = append(files, &rt)
	}
	return files
}

// TestMergeReproducesUnshardedTables is the acceptance criterion:
// shard the sweep, merge the shard files, and the regenerated tables
// must be byte-identical (text and JSON) to a direct unsharded run.
func TestMergeReproducesUnshardedTables(t *testing.T) {
	expIDs := []string{"cost", "fig5", "fig10"}
	opt := harness.Options{MaxInstr: 6000, Benches: []string{"gcc", "gzip"}}

	files := tinyMerge(t, expIDs, opt, 3)
	merged, err := Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Tables(merged)
	if err != nil {
		t.Fatal(err)
	}

	exps, err := resolveExps(expIDs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RunExperiments(harness.New(opt), exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tables, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Errorf("table %s: merged text differs from direct run:\n%s\n--- direct:\n%s",
				want[i].ID, got[i].String(), want[i].String())
		}
	}
	gb, _ := json.MarshalIndent(got, "", "  ")
	wb, _ := json.MarshalIndent(want, "", "  ")
	if string(gb) != string(wb) {
		t.Error("merged JSON tables differ from direct run")
	}
}

func TestMergeDetectsOmission(t *testing.T) {
	expIDs := []string{"fig10"}
	opt := harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}}
	files := tinyMerge(t, expIDs, opt, 2)
	// Drop one cell from shard 2.
	files[1].Cells = files[1].Cells[:len(files[1].Cells)-1]
	if _, err := Merge(files); err == nil || !strings.Contains(err.Error(), "incomplete coverage") {
		t.Errorf("merge must reject missing cells, got %v", err)
	}
	// Dropping a whole shard must also fail.
	if _, err := Merge(files[:1]); err == nil {
		t.Error("merge must reject a missing shard")
	}
}

func TestMergeDetectsOverlap(t *testing.T) {
	expIDs := []string{"fig10"}
	opt := harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}}
	files := tinyMerge(t, expIDs, opt, 2)
	// Copy a cell from shard 1 into shard 2.
	files[1].Cells = append(files[1].Cells, files[0].Cells[0])
	if _, err := Merge(files); err == nil || !strings.Contains(err.Error(), "present in both") {
		t.Errorf("merge must reject duplicated cells, got %v", err)
	}
}

func TestMergeDetectsForeignCell(t *testing.T) {
	expIDs := []string{"fig10"}
	opt := harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}}
	files := tinyMerge(t, expIDs, opt, 2)
	alien := files[0].Cells[0]
	alien.Spec.Regs = 12345
	files[1].Cells = append(files[1].Cells, alien)
	if _, err := Merge(files); err == nil || !strings.Contains(err.Error(), "outside the plan") {
		t.Errorf("merge must reject cells outside the plan, got %v", err)
	}
}

func TestMergeDetectsMismatchedSweeps(t *testing.T) {
	a := tinyMerge(t, []string{"fig10"}, harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}}, 2)
	b := tinyMerge(t, []string{"fig10"}, harness.Options{MaxInstr: 4000, Benches: []string{"gcc"}}, 2)
	if _, err := Merge([]*File{a[0], b[1]}); err == nil {
		t.Error("merge must reject shards from different sweeps")
	}
	if _, err := Merge([]*File{a[0], a[0]}); err == nil {
		t.Error("merge must reject the same shard twice")
	}
}

// TestTablesDetectsUnusedPrimedCell: a merged cell the experiments
// never request at table-generation time is the silent half of the
// data-dependent-spec hazard; Tables must fail loudly on it.
func TestTablesDetectsUnusedPrimedCell(t *testing.T) {
	expIDs := []string{"fig10"}
	opt := harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}}
	files := tinyMerge(t, expIDs, opt, 2)
	merged, err := Merge(files)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tables(merged); err != nil {
		t.Fatalf("clean merge must regenerate tables: %v", err)
	}
	// Inject a cell outside what fig10 requests (bypassing Merge's
	// plan check, the way a planner/executor divergence would).
	alien := merged.Cells[0]
	alien.Spec.Regs = 12345
	merged.Cells = append(merged.Cells, alien)
	if _, err := Tables(merged); err == nil || !strings.Contains(err.Error(), "never requested") {
		t.Errorf("Tables must reject never-requested cells, got %v", err)
	}
}

// TestShardPlanMatchesExecution: RunShard's executing harness records
// the specs it simulated; the run must be exactly the shard's slice of
// the plan (the assertion inside RunShard), and the recording must
// agree with an independent recomputation here.
func TestShardPlanMatchesExecution(t *testing.T) {
	expIDs := []string{"fig10"}
	opt := harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}}
	f, err := RunShard(expIDs, opt, Shard{K: 1, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(expIDs, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := (Shard{K: 1, N: 2}).Select(plan)
	if len(f.Cells) != len(want) {
		t.Fatalf("shard ran %d cells, plan slice has %d", len(f.Cells), len(want))
	}
	for i := range want {
		if f.Cells[i].Spec != want[i] {
			t.Errorf("cell %d: ran %s, plan slice has %s", i, f.Cells[i].Spec.Key(), want[i].Key())
		}
	}
}

func TestOfflineHarnessRefusesToSimulate(t *testing.T) {
	h := harness.NewOffline(harness.Options{MaxInstr: 5000, Benches: []string{"gcc"}})
	if _, err := h.Run(harness.RunSpec{Bench: "gcc", Mode: 0, Ports: 1, Regs: 256}); err == nil {
		t.Error("offline harness must error on unprimed specs")
	}
}
