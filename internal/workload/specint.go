package workload

import (
	"fmt"
	"sort"
	"strings"

	"civect/internal/emu"
)

// specParams tunes the twelve SpecInt2000 stand-ins. The knobs are set
// from each program's published character: mcf is memory-bound with
// pointer chasing and a huge working set; eon is highly predictable and
// ILP-rich; parser/twolf/vpr mispredict heavily; vortex and gap are
// store- and dataset-heavy; crafty and bzip2 sit in between.
var specParams = map[string]Params{
	"bzip2": {
		Name: "bzip2", ArrayWords: 1 << 10, Iters: 1 << 22, TakenBias: 0.74,
		Hammocks: 1, CIOps: 3, ArmOps: 4, FillerOps: 4, Streams: 2, Gathers: 2, StoreEvery: 1, Seed: 101,
	},
	"crafty": {
		Name: "crafty", ArrayWords: 1 << 10, Iters: 1 << 22, TakenBias: 0.80,
		Hammocks: 2, CIOps: 3, ArmOps: 5, FillerOps: 6, Streams: 2, ArmLoads: 1, Gathers: 1, StoreEvery: 0, Seed: 102,
	},
	"eon": {
		Name: "eon", ArrayWords: 1 << 10, Iters: 1 << 22, TakenBias: 0.96,
		Hammocks: 1, CIOps: 3, ArmOps: 3, FillerOps: 8, Streams: 3, Gathers: 1, StoreEvery: 1, Seed: 103,
	},
	"gap": {
		Name: "gap", ArrayWords: 1 << 12, Iters: 1 << 22, TakenBias: 0.80,
		Hammocks: 1, CIOps: 3, ArmOps: 4, FillerOps: 4, Streams: 2, ArmLoads: 1, Gathers: 2, StoreEvery: 1, Seed: 104,
	},
	"gcc": {
		Name: "gcc", ArrayWords: 1 << 11, Iters: 1 << 22, TakenBias: 0.68,
		Hammocks: 2, CIOps: 3, ArmOps: 5, FillerOps: 3, Streams: 2, ArmLoads: 1, Gathers: 2, StoreEvery: 1, Seed: 105,
	},
	"gzip": {
		Name: "gzip", ArrayWords: 1 << 10, Iters: 1 << 22, TakenBias: 0.74,
		Hammocks: 1, CIOps: 3, ArmOps: 3, FillerOps: 3, Streams: 2, Gathers: 1, StoreEvery: 1, Seed: 106,
	},
	"mcf": {
		Name: "mcf", ArrayWords: 1 << 16, Iters: 1 << 22, TakenBias: 0.72,
		Hammocks: 1, CIOps: 2, ArmOps: 2, FillerOps: 1, Streams: 2, PointerChase: true,
		Gathers: 1, StoreEvery: 8, Seed: 107,
	},
	"parser": {
		Name: "parser", ArrayWords: 1 << 10, Iters: 1 << 22, TakenBias: 0.62,
		Hammocks: 2, CIOps: 3, ArmOps: 4, FillerOps: 2, Streams: 2, ArmLoads: 1, Gathers: 2, StoreEvery: 1, Seed: 108,
	},
	"perlbmk": {
		Name: "perlbmk", ArrayWords: 1 << 11, Iters: 1 << 22, TakenBias: 0.72,
		Hammocks: 2, CIOps: 3, ArmOps: 4, FillerOps: 4, Streams: 2, ArmLoads: 1, Gathers: 2, StoreEvery: 1, Seed: 109,
	},
	"twolf": {
		Name: "twolf", ArrayWords: 1 << 13, Iters: 1 << 22, TakenBias: 0.68,
		Hammocks: 2, CIOps: 3, ArmOps: 3, FillerOps: 2, Streams: 2, PointerChase: true,
		ArmLoads: 1, Gathers: 1, StoreIntoStream: true, StoreEvery: 4, Seed: 110,
	},
	"vortex": {
		Name: "vortex", ArrayWords: 1 << 12, Iters: 1 << 22, TakenBias: 0.82,
		Hammocks: 1, CIOps: 3, ArmOps: 4, FillerOps: 5, Streams: 2, ArmLoads: 1, Gathers: 2, StoreIntoStream: true, StoreEvery: 1, Seed: 111,
	},
	"vpr": {
		Name: "vpr", ArrayWords: 1 << 11, Iters: 1 << 22, TakenBias: 0.70,
		Hammocks: 1, CIOps: 3, ArmOps: 3, FillerOps: 3, Streams: 2, Gathers: 1, StoreEvery: 1, Seed: 112,
	},
}

// BigSuffix distinguishes the megabyte-scale variant of a benchmark:
// "gcc.big" is gcc's tuning re-generated at big-tier scale.
const BigSuffix = ".big"

// UltraSuffix distinguishes the sampling-scale variant: "gcc.ultra" is
// gcc's big-tier tuning with the outer epoch loop sized so the program
// runs at least ultraTargetInstr dynamic instructions before its
// structural halt — long enough that only the sampled path affords an
// end-to-end detailed run.
const UltraSuffix = ".ultra"

// ultraTargetInstr is the ultra tier's dynamic-length floor.
const ultraTargetInstr = 10_000_000

// bigParams derives the megabyte-scale variant of a base tuning: a
// uniform 64KB-per-stream array in each of 48 phase blocks (working
// sets of several MB, past the 2MB L3), an inner trip count small
// enough that execution rotates through phases every few thousand
// instructions (so the >100k-instruction static footprint actually
// thrashes the 64KB L1I and the 256-entry SRSMT within any budget),
// and a distinct seed so the two tiers never share data.
func bigParams(p Params) Params {
	p.Name += BigSuffix
	p.ArrayWords = 1 << 13
	p.Phases = 48
	p.Iters = 8
	p.Seed += 1000
	return p
}

// ultraParams derives the sampling-scale variant of a base tuning: the
// big tier's phase structure (sampling's clustering needs the phase
// rotation) with a third distinct seed and Epochs left 0 — Spec sizes
// the epoch count against ultraTargetInstr at generation time.
func ultraParams(p Params) Params {
	base := p.Name
	p = bigParams(p)
	p.Name = base + UltraSuffix
	p.Seed += 1000
	return p
}

// ultraEpochs sizes the ultra tier's outer trip count: generate the
// tuning with a single epoch, measure its dynamic instruction count on
// the emulator, and provision epochs to clear ultraTargetInstr with a
// 25% margin (epochs are not perfectly identical in dynamic length —
// StoreIntoStream tunings overwrite value-stream words that steer
// later hammocks, shifting arm lengths between epochs).
func ultraEpochs(p Params) (int, error) {
	probe := p
	probe.Epochs = 1
	b, err := Generate(probe)
	if err != nil {
		return 0, err
	}
	cpu := emu.New(b.NewMem())
	if err := cpu.Run(b.Program, 0); err != nil {
		return 0, err
	}
	if cpu.Executed == 0 {
		return 0, fmt.Errorf("workload %s: empty probe epoch", p.Name)
	}
	want := uint64(ultraTargetInstr + ultraTargetInstr/4)
	return int((want + cpu.Executed - 1) / cpu.Executed), nil
}

// Names returns the benchmark names in SpecInt2000's customary order.
func Names() []string {
	names := make([]string, 0, len(specParams))
	for n := range specParams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BigNames returns the megabyte-scale tier's benchmark names.
func BigNames() []string {
	names := Names()
	for i := range names {
		names[i] += BigSuffix
	}
	return names
}

// UltraNames returns the sampling-scale tier's benchmark names.
func UltraNames() []string {
	names := Names()
	for i := range names {
		names[i] += UltraSuffix
	}
	return names
}

// ParamsFor returns the tuning for a named benchmark of any tier. An
// ultra tuning comes back with Epochs 0 — Spec sizes it by measurement.
func ParamsFor(name string) (Params, bool) {
	if p, ok := specParams[name]; ok {
		return p, true
	}
	if base, isBig := strings.CutSuffix(name, BigSuffix); isBig {
		if p, ok := specParams[base]; ok {
			return bigParams(p), true
		}
	}
	if base, isUltra := strings.CutSuffix(name, UltraSuffix); isUltra {
		if p, ok := specParams[base]; ok {
			return ultraParams(p), true
		}
	}
	return Params{}, false
}

// Spec generates a named SpecInt2000 stand-in ("gcc"), its
// megabyte-scale variant ("gcc.big"), or its sampling-scale variant
// ("gcc.ultra").
func Spec(name string) (*Benchmark, error) {
	p, ok := ParamsFor(name)
	if !ok {
		return nil, errUnknown(name)
	}
	if strings.HasSuffix(name, UltraSuffix) && p.Epochs == 0 {
		n, err := ultraEpochs(p)
		if err != nil {
			return nil, err
		}
		p.Epochs = n
	}
	return Generate(p)
}

type errUnknown string

func (e errUnknown) Error() string { return "workload: unknown benchmark " + string(e) }

// Hammock returns the paper's Figure 1 kernel over n elements with the
// given fraction of zero elements (which steers the hard branch),
// suitable for examples and focused tests.
func Hammock(n int, zeroFrac float64, seed int64) *Benchmark {
	words := 1
	for words < n {
		words <<= 1
	}
	return MustGenerate(Params{
		Name: "hammock", ArrayWords: words, Iters: 1 << 22,
		TakenBias: 1 - zeroFrac, Hammocks: 1, CIOps: 3, FillerOps: 0,
		Streams: 2, StoreEvery: 0, Seed: seed,
	})
}
