package workload

import (
	"testing"

	"civect/internal/emu"
)

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, name := range Names() {
		b, err := Spec(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := b.Program.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", name, err)
		}
		if b.Program.Len() < 10 {
			t.Errorf("%s: suspiciously small program (%d instrs)", name, b.Program.Len())
		}
	}
}

func TestNamesComplete(t *testing.T) {
	want := []string{"bzip2", "crafty", "eon", "gap", "gcc", "gzip",
		"mcf", "parser", "perlbmk", "twolf", "vortex", "vpr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %d names, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Spec("nosuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := SpecWithIters("gcc", 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpecWithIters("gcc", 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Program.Len() != b.Program.Len() {
		t.Fatal("program lengths differ across identical generations")
	}
	for i := range a.Program.Code {
		if a.Program.Code[i] != b.Program.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	ma, mb := a.NewMem(), b.NewMem()
	if ma.Checksum() != mb.Checksum() {
		t.Error("memory images differ across identical generations")
	}
}

func TestNewMemIsolation(t *testing.T) {
	b, err := SpecWithIters("gzip", 10)
	if err != nil {
		t.Fatal(err)
	}
	m1 := b.NewMem()
	m2 := b.NewMem()
	m1.Write64(0x10_0000, 999999)
	if m2.Read64(0x10_0000) == 999999 {
		t.Error("NewMem must return independent copies")
	}
}

func TestBenchmarksRunToCompletion(t *testing.T) {
	for _, name := range Names() {
		b, err := SpecWithIters(name, 30)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := emu.New(b.NewMem())
		if err := c.Run(b.Program, 2_000_000); err != nil {
			t.Errorf("%s: did not halt: %v", name, err)
		}
		if c.Executed < 30*5 {
			t.Errorf("%s: executed only %d instructions", name, c.Executed)
		}
	}
}

func TestBiasSteersBranches(t *testing.T) {
	// Count taken outcomes of the first hammock branch under emulation
	// for extreme biases.
	for _, tc := range []struct {
		bias float64
		lo   float64
		hi   float64
	}{
		{0.95, 0.85, 1.0},
		{0.50, 0.30, 0.70},
		{0.05, 0.0, 0.15},
	} {
		b := MustGenerate(Params{
			Name: "biasprobe", ArrayWords: 1 << 10, Iters: 400,
			TakenBias: tc.bias, Hammocks: 1, CIOps: 1, FillerOps: 0,
			Streams: 2, StoreEvery: 0, Seed: 7,
		})
		// Locate the first conditional branch in the loop body.
		c := emu.New(b.NewMem())
		taken, total := 0, 0
		for !c.Halted && c.Executed < 100000 {
			s := c.StepOne(b.Program)
			if s.Instr.IsCondBranch() && s.Instr.Target > s.PC {
				// Forward branch: the hammock.
				total++
				if s.Taken {
					taken++
				}
			}
		}
		if total == 0 {
			t.Fatalf("bias %.2f: no hammock branches executed", tc.bias)
		}
		frac := float64(taken) / float64(total)
		if frac < tc.lo || frac > tc.hi {
			t.Errorf("bias %.2f: taken fraction %.2f outside [%v,%v]", tc.bias, frac, tc.lo, tc.hi)
		}
	}
}

func TestRandomProgramsHaltAndAreDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		b1 := Random(seed)
		b2 := Random(seed)
		if b1.Program.Len() != b2.Program.Len() {
			t.Fatalf("seed %d: nondeterministic generation", seed)
		}
		c := emu.New(b1.NewMem())
		if err := c.Run(b1.Program, 500_000); err != nil {
			t.Errorf("seed %d: random program did not halt: %v", seed, err)
		}
	}
}

func TestBadParams(t *testing.T) {
	bad := []Params{
		{Name: "x", ArrayWords: 100, Streams: 1, Hammocks: 1}, // non-pow2
		{Name: "x", ArrayWords: 1 << 8, Streams: 0, Hammocks: 1},
		{Name: "x", ArrayWords: 1 << 8, Streams: 1, Hammocks: 0},
		{Name: "x", ArrayWords: 1 << 8, Streams: 9, Hammocks: 1},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("params %d should fail", i)
		}
	}
}

func TestPointerChaseCycle(t *testing.T) {
	// mcf's chase array must form a cycle: following links ArrayWords
	// times returns to the start without leaving the array.
	b, err := SpecWithIters("mcf", 5)
	if err != nil {
		t.Fatal(err)
	}
	m := b.NewMem()
	n := b.Params.ArrayWords
	start := uint64(chaseBase)
	cur := m.Read64(start)
	seen := 1
	for cur != start {
		if cur < chaseBase || cur >= uint64(chaseBase+n*8) {
			t.Fatalf("chase link leaves the array: %#x", cur)
		}
		cur = m.Read64(cur)
		seen++
		if seen > n+1 {
			t.Fatal("chase does not cycle")
		}
	}
	if seen != n {
		t.Errorf("cycle length %d, want %d", seen, n)
	}
}
