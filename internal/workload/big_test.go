package workload

import (
	"testing"

	"civect/internal/core"
	"civect/internal/emu"
)

// Capacity thresholds the big tier promises to exceed (matching the
// Table 1 machine: 64KB L1I, 64-set 4-way SRSMT, 2MB L3).
const (
	bigMinStaticInstrs = 100_000
	l1iBytes           = 64 << 10
	srsmtEntries       = 64 * 4
	l3Bytes            = 2 << 20
	instBytes          = 4 // must match core's PC-to-byte scaling
)

func TestBigNames(t *testing.T) {
	names := BigNames()
	if len(names) != len(Names()) {
		t.Fatalf("got %d big names, want %d", len(names), len(Names()))
	}
	for i, n := range names {
		if n != Names()[i]+BigSuffix {
			t.Errorf("big name %d = %q", i, n)
		}
		if _, ok := ParamsFor(n); !ok {
			t.Errorf("ParamsFor(%q) not found", n)
		}
	}
	if _, err := Spec("nosuch" + BigSuffix); err == nil {
		t.Error("unknown big benchmark must fail")
	}
	if _, ok := ParamsFor(BigSuffix); ok {
		t.Errorf("bare %q must not resolve", BigSuffix)
	}
}

// TestBigTierThresholds pins the scale contract: every big variant's
// static program overflows the L1 I-cache by a wide margin, its
// strided-load population overflows the SRSMT, and its data working
// set overflows the whole cache hierarchy.
func TestBigTierThresholds(t *testing.T) {
	for _, name := range BigNames() {
		b, err := Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Program.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", name, err)
		}
		static := b.Program.Len()
		if static < bigMinStaticInstrs {
			t.Errorf("%s: %d static instructions, want >= %d", name, static, bigMinStaticInstrs)
		}
		if code := static * instBytes; code < 4*l1iBytes {
			t.Errorf("%s: code footprint %d B does not dwarf the %d B L1I", name, code, l1iBytes)
		}
		loadPCs := 0
		for _, in := range b.Program.Code {
			if in.IsLoad() {
				loadPCs++
			}
		}
		if loadPCs < 4*srsmtEntries {
			t.Errorf("%s: %d static load PCs do not dwarf the %d-entry SRSMT", name, loadPCs, srsmtEntries)
		}
		p := b.Params
		arrays := p.Streams
		if p.ArmLoads > 0 {
			arrays++
		}
		if data := p.Phases * arrays * p.ArrayWords * 8; data < 2*l3Bytes {
			t.Errorf("%s: data working set %d B does not overflow the %d B L3", name, data, l3Bytes)
		}
	}
}

// TestBigHaltsAndDeterministic runs small-epoch big variants to
// completion under the functional emulator and checks generation is
// reproducible per seed.
func TestBigHaltsAndDeterministic(t *testing.T) {
	for _, name := range []string{"gcc" + BigSuffix, "mcf" + BigSuffix, "twolf" + BigSuffix} {
		p, ok := ParamsFor(name)
		if !ok {
			t.Fatal(name)
		}
		p.Epochs, p.Iters = 2, 1
		a, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if a.Program.Len() != b.Program.Len() {
			t.Fatalf("%s: program lengths differ across identical generations", name)
		}
		for i := range a.Program.Code {
			if a.Program.Code[i] != b.Program.Code[i] {
				t.Fatalf("%s: instruction %d differs", name, i)
			}
		}
		if a.NewMem().Checksum() != b.NewMem().Checksum() {
			t.Errorf("%s: memory images differ across identical generations", name)
		}
		c := emu.New(a.NewMem())
		if err := c.Run(a.Program, 5_000_000); err != nil {
			t.Errorf("%s: did not halt: %v", name, err)
		}
		if c.Executed < uint64(a.Program.Len()) {
			t.Errorf("%s: executed only %d instructions over a %d-instr program",
				name, c.Executed, a.Program.Len())
		}
	}
}

// TestBigSimulates drives two big variants through the timing
// simulator in the vectorizing mode: the mechanism must at least
// allocate SRSMT entries under capacity pressure.
func TestBigSimulates(t *testing.T) {
	for _, name := range []string{"gcc" + BigSuffix, "vpr" + BigSuffix} {
		b, err := Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(core.ModeCI)
		cfg.MaxInstr = 60_000
		p, err := core.New(cfg, b.Program, b.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.IPC() <= 0 {
			t.Errorf("%s: IPC %v", name, st.IPC())
		}
		if st.VectorizedEntries == 0 {
			t.Errorf("%s: mechanism allocated no SRSMT entries", name)
		}
		if st.L1I.Misses == 0 {
			t.Errorf("%s: no I-cache misses despite a %d-instr program", name, b.Program.Len())
		}
	}
}
