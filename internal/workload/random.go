package workload

import (
	"fmt"
	"math/rand"

	"civect/internal/asm"
	"civect/internal/mem"
)

// SpecWithIters generates a named benchmark with a custom loop trip
// count (tests run small instances to completion; the harness keeps the
// long default and bounds committed instructions instead).
func SpecWithIters(name string, iters int) (*Benchmark, error) {
	p, ok := ParamsFor(name)
	if !ok {
		return nil, errUnknown(name)
	}
	p.Iters = iters
	return Generate(p)
}

// Random generates a random, guaranteed-halting program plus data image
// for property-based testing: a counted loop whose body mixes random
// arithmetic over a register pool, loads and stores within a bounded
// region, and hammocks steered by loaded data. The loop counter
// register is never touched by the random body, so termination is
// structural.
func Random(seed int64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	const (
		poolLo, poolHi = 16, 31 // registers the random body may write
		dataWords      = 1 << 8
		dataBase       = 0x4000
	)
	iters := 8 + rng.Intn(48)
	bodyOps := 4 + rng.Intn(24)

	image := mem.New()
	for i := 0; i < dataWords; i++ {
		image.Write64(uint64(dataBase+i*8), uint64(rng.Int63n(1<<16)))
	}

	reg := func() int { return poolLo + rng.Intn(poolHi-poolLo+1) }

	var b []string
	emit := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)) }

	emit("        movi r1, %d", iters)         // loop counter (reserved)
	emit("        movi r2, %d", dataBase)      // data base (reserved)
	emit("        movi r3, %d", dataWords*8-1) // offset mask (reserved)
	for r := poolLo; r <= poolHi; r++ {
		if rng.Intn(2) == 0 {
			emit("        movi r%d, %d", r, rng.Int63n(1000)-500)
		}
	}
	emit("loop:")
	hammocks := 0
	for i := 0; i < bodyOps; i++ {
		switch rng.Intn(10) {
		case 0, 1: // load: address = base + (reg & mask)
			a, d := reg(), reg()
			emit("        and  r4, r%d, r3", a)
			emit("        add  r4, r4, r2")
			emit("        ld   r%d, 0(r4)", d)
		case 2: // store
			a, s := reg(), reg()
			emit("        and  r4, r%d, r3", a)
			emit("        add  r4, r4, r2")
			emit("        st   r%d, 0(r4)", s)
		case 3: // hammock
			c := reg()
			h := hammocks
			hammocks++
			thenR, elseR := reg(), reg()
			emit("        bnez r%d, rh%de", c, h)
			emit("        addi r%d, r%d, %d", thenR, thenR, rng.Intn(9)+1)
			emit("        jmp  rh%dj", h)
			emit("rh%de:", h)
			emit("        subi r%d, r%d, %d", elseR, elseR, rng.Intn(9)+1)
			emit("rh%dj:", h)
		case 4:
			d, a := reg(), reg()
			emit("        mul  r%d, r%d, r%d", d, a, reg())
		case 5:
			d, a := reg(), reg()
			emit("        div  r%d, r%d, r%d", d, a, reg())
		case 6:
			d, a := reg(), reg()
			emit("        slt  r%d, r%d, r%d", d, a, reg())
		case 7:
			d, a := reg(), reg()
			emit("        shri r%d, r%d, %d", d, a, rng.Intn(8))
		default:
			d, a := reg(), reg()
			ops := []string{"add", "sub", "xor", "or", "and"}
			emit("        %s  r%d, r%d, r%d", ops[rng.Intn(len(ops))], d, a, reg())
		}
	}
	emit("        subi r1, r1, 1")
	emit("        bnez r1, loop")
	emit("        halt")

	src := ""
	for _, line := range b {
		src += line + "\n"
	}
	prog, err := asm.Assemble(fmt.Sprintf("random-%d", seed), src)
	if err != nil {
		panic(fmt.Sprintf("workload: random program invalid: %v\n%s", err, src))
	}
	return &Benchmark{
		Params:  Params{Name: prog.Name, Iters: iters, Seed: seed},
		Program: prog,
		image:   image,
	}
}
