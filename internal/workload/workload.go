// Package workload generates the synthetic benchmark programs that
// stand in for SpecInt2000 (see DESIGN.md's substitution table). Each of
// the twelve named generators emits a deterministic program + data image
// whose distributional properties (branch predictability, hammock
// density, strided-load mix, working-set size, pointer chasing, ILP)
// are tuned to give the qualitative per-program diversity the paper's
// figures report.
//
// The common shape is the paper's Figure 1 kernel, generalised: a loop
// over data arrays with one or more hard-to-predict hammocks whose
// re-convergent regions accumulate values loaded by strided loads —
// exactly the structure the control-independence mechanism targets —
// plus benchmark-specific filler (independent ILP chains, pointer
// chasing, stores).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"civect/internal/asm"
	"civect/internal/isa"
	"civect/internal/mem"
)

// Params tunes one synthetic benchmark.
type Params struct {
	// Name labels the program (one of the SpecInt2000 names).
	Name string
	// ArrayWords is the per-stream working-set size in 64-bit words
	// (power of two; larger arrays stress the caches).
	ArrayWords int
	// Iters is the loop trip count; programs halt after Iters
	// iterations so the architectural-equivalence tests can run them to
	// completion. The harness additionally bounds committed
	// instructions.
	Iters int
	// TakenBias is the probability a hammock branch is taken; 0.5 is
	// maximally hard to predict, values near 0 or 1 are easy.
	TakenBias float64
	// Hammocks is the number of if-then-else hammocks per iteration.
	Hammocks int
	// CIOps is the number of control-independent accumulation
	// operations after each re-convergent point, each dependent on a
	// strided load (the vectorizable CI work).
	CIOps int
	// ArmOps is the number of control-dependent operations in each
	// hammock arm (work the mechanism can never reuse; 0 defaults
	// to 2).
	ArmOps int
	// ArmLoads places a self-advancing strided load inside the first
	// hammock's taken arm. Its consumers are control dependent, so the
	// CI mechanism never selects it — but the full dynamic
	// vectorization baseline (ModeVect) vectorizes it anyway, which is
	// the behavioural difference Figure 14 measures.
	ArmLoads int
	// FillerOps adds independent ALU chain operations per iteration
	// (control independent but not strided-load-dependent: they select
	// but do not reuse, Figure 5's gray fraction).
	FillerOps int
	// Gathers adds data-dependent (gather) loads per iteration whose
	// addresses derive from loaded values: table-lookup traffic the
	// stride predictor cannot capture. They consume cache ports and
	// are control independent without being vectorizable.
	Gathers int
	// Streams is the number of unit-stride load streams (wide-bus
	// fodder).
	Streams int
	// PointerChase adds an mcf-style dependent load chain over a
	// randomly linked array (cache-missy, not strided).
	PointerChase bool
	// StoreEvery emits a store each iteration when 1, every k-th
	// iteration pattern via data when k>1, none when 0.
	StoreEvery int
	// StoreIntoStream aims the store a few words ahead of stream 0's
	// read pointer instead of at the disjoint store region, so committed
	// stores occasionally land inside replica address ranges and
	// exercise the §2.4.3 coherence check.
	StoreIntoStream bool
	// Phases selects the megabyte-scale tier: when > 1 the generator
	// emits Phases distinct copies of the kernel ("phases"), each with
	// its own code labels and its own data block, chained sequentially
	// inside an outer epoch loop. Distinct phase code means distinct
	// PCs, so the static program grows past the L1 I-cache and the
	// strided-load population overflows the SRSMT/stride-predictor
	// capacity — the pressure real binaries exert that the ~3k-instr
	// base tier cannot. 0 or 1 keeps the classic single-phase shape.
	Phases int
	// Unroll replicates the loop body inside each phase's inner loop
	// (big tier only). 0 sizes it automatically so the whole program
	// exceeds bigStaticTarget static instructions.
	Unroll int
	// Epochs is the outer trip count over the phase sequence (big tier
	// only; 0 defaults to 1<<16). The program halts after Epochs
	// passes, so small values let tests run big programs to completion.
	Epochs int
	// Seed fixes the data image.
	Seed int64
}

// Benchmark couples a generated program with its initial memory image.
type Benchmark struct {
	Params  Params
	Program *isa.Program
	// NewMem returns a fresh copy of the initial data image; each
	// simulation run needs its own.
	image *mem.Memory
}

// NewMem returns an independent copy of the benchmark's initial memory.
func (b *Benchmark) NewMem() *mem.Memory { return b.image.Clone() }

// Layout constants: stream arrays live at 1MB-spaced bases so distinct
// streams never alias; the pointer-chase array and store region follow.
const (
	streamBase  = 0x0010_0000
	streamSpace = 0x0010_0000
	chaseBase   = 0x0100_0000
	storeBase   = 0x0200_0000
)

// Big-tier layout: each phase owns a 2MB block of 16 slots of 128KB —
// slots 0..7 are stream arrays, slot 8 the arm-load array (mirroring
// the base tier's slot-8 convention), slot 15 the store region. Slot
// bases stay multiples of the ArrayWords*8 wrap mask, so the pointer
// arithmetic is identical to the base tier's.
const (
	bigBase        = 0x0800_0000
	bigStreamSpace = 0x0002_0000
	bigSlots       = 16
	bigArmSlot     = 8
	bigStoreSlot   = 15

	// bigStaticTarget is the static-instruction floor automatic Unroll
	// sizing aims for (comfortably above the 100k the big tier
	// promises; the L1 I-cache holds 16k instructions).
	bigStaticTarget = 112_000
	// bigDefaultEpochs keeps big programs effectively unbounded for the
	// harness (which cuts off on committed instructions) while still
	// structurally halting.
	bigDefaultEpochs = 1 << 16
)

// bigPhaseBase returns the data-block base address of a phase.
func bigPhaseBase(ph int) int { return bigBase + ph*bigSlots*bigStreamSpace }

// Register allocation within the generated programs.
const (
	rZero    = 0  // holds 0 throughout
	rPtr0    = 1  // stream pointers: r1, r2, r3...
	rCount   = 10 // loop counter
	rMask    = 11 // stream wrap mask
	rChase   = 12 // pointer-chase cursor
	rGBase   = 13 // gather table base
	rArmPtr  = 14 // arm-resident load pointer
	rEpoch   = 15 // outer epoch counter (big tier)
	rAccBase = 16 // CI accumulators r16..
	rArmVal  = 30 // arm-load value and its control-dependent accumulator
	rValBase = 32 // loaded values r32..
	rArm     = 44 // per-arm counters r44..
	rFill    = 48 // filler chain registers r48..
	rGather  = 56 // gathered values r56, r57
	rArmTmp  = 58 // arm-load pointer wrap scratch r58, r59
	rTmp     = 60
)

// Generate builds the benchmark for p.
func Generate(p Params) (*Benchmark, error) {
	if p.ArrayWords <= 0 || p.ArrayWords&(p.ArrayWords-1) != 0 {
		return nil, fmt.Errorf("workload %s: ArrayWords must be a positive power of two", p.Name)
	}
	if p.Streams < 1 || p.Streams > 8 {
		return nil, fmt.Errorf("workload %s: Streams out of range", p.Name)
	}
	if p.Hammocks < 1 || p.Hammocks > 4 {
		return nil, fmt.Errorf("workload %s: Hammocks out of range", p.Name)
	}
	if p.Phases > 1 {
		if p.Phases > 256 {
			return nil, fmt.Errorf("workload %s: Phases out of range", p.Name)
		}
		if p.ArrayWords*8 > bigStreamSpace/2 {
			return nil, fmt.Errorf("workload %s: ArrayWords too large for a big-tier slot", p.Name)
		}
		if p.Unroll == 0 {
			p.Unroll = p.sizedUnroll()
		}
		if p.Epochs == 0 {
			p.Epochs = bigDefaultEpochs
		}
	}

	rng := rand.New(rand.NewSource(p.Seed))
	image := mem.New()

	// Stream 0 holds the branch-steering data (0/1 with TakenBias);
	// remaining streams hold values to accumulate. The big tier
	// repeats the layout once per phase, each phase in its own block.
	for ph := 0; ph < max(1, p.Phases); ph++ {
		streamAt, armAt := streamBase, streamBase+8*streamSpace
		space := streamSpace
		if p.Phases > 1 {
			streamAt, armAt = bigPhaseBase(ph), bigPhaseBase(ph)+bigArmSlot*bigStreamSpace
			space = bigStreamSpace
		}
		for s := 0; s < p.Streams; s++ {
			base := uint64(streamAt + s*space)
			for i := 0; i < p.ArrayWords; i++ {
				var v uint64
				if s == 0 {
					if rng.Float64() < p.TakenBias {
						v = 1
					}
				} else {
					v = uint64(rng.Int63n(1 << 20))
				}
				image.Write64(base+uint64(i*8), v)
			}
		}
		if p.ArmLoads > 0 {
			for i := 0; i < p.ArrayWords; i++ {
				image.Write64(uint64(armAt)+uint64(i*8), uint64(rng.Int63n(1<<16)))
			}
		}
	}
	if p.PointerChase {
		// A random permutation cycle over the chase array: each word
		// holds the byte offset of the next element.
		n := p.ArrayWords
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			from := perm[i]
			to := perm[(i+1)%n]
			image.Write64(uint64(chaseBase+from*8), uint64(chaseBase+to*8))
		}
	}

	src := p.emitSource()
	prog, err := asm.Assemble(p.Name, src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %v\nsource:\n%s", p.Name, err, src)
	}
	return &Benchmark{Params: p, Program: prog, image: image}, nil
}

// MustGenerate is Generate that panics on error (parameter tables are
// compile-time constants).
func MustGenerate(p Params) *Benchmark {
	b, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return b
}

// bodyLayout parameterizes one emitted copy of the loop body: the
// label prefix that keeps its hammock/store labels unique, and the
// data-block addresses it embeds as immediates. The base tier uses one
// copy over the classic layout; the big tier emits Phases×Unroll
// copies, each phase over its own block.
type bodyLayout struct {
	lbl        string
	streamBase func(s int) int
	armBase    int
	storeDisp  int
}

func baseLayout() bodyLayout {
	return bodyLayout{
		lbl:        "",
		streamBase: func(s int) int { return streamBase + s*streamSpace },
		armBase:    streamBase + 8*streamSpace,
		storeDisp:  storeBase - streamBase,
	}
}

func bigLayout(ph int, u int) bodyLayout {
	base := bigPhaseBase(ph)
	return bodyLayout{
		lbl:        fmt.Sprintf("p%du%d", ph, u),
		streamBase: func(s int) int { return base + s*bigStreamSpace },
		armBase:    base + bigArmSlot*bigStreamSpace,
		storeDisp:  bigStoreSlot * bigStreamSpace,
	}
}

// emitSource renders the benchmark's assembly.
func (p Params) emitSource() string {
	if p.Phases > 1 {
		return p.emitBigSource()
	}
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	w("; synthetic %s: streams=%d hammocks=%d bias=%.2f ci=%d fill=%d chase=%v",
		p.Name, p.Streams, p.Hammocks, p.TakenBias, p.CIOps, p.FillerOps, p.PointerChase)
	w("        movi r%d, %d", rCount, p.Iters)
	w("        movi r%d, %d", rMask, (p.ArrayWords*8)-1)
	for s := 0; s < p.Streams; s++ {
		w("        movi r%d, %d", rPtr0+s, streamBase+s*streamSpace)
	}
	if p.PointerChase {
		w("        movi r%d, %d", rChase, chaseBase)
	}
	if p.Gathers > 0 {
		w("        movi r%d, %d", rGBase, streamBase)
	}
	if p.ArmLoads > 0 {
		w("        movi r%d, %d", rArmPtr, streamBase+8*streamSpace)
	}
	w("loop:")
	p.emitBody(w, baseLayout())
	w("        subi r%d, r%d, 1", rCount, rCount)
	w("        bnez r%d, loop", rCount)
	w("        halt")
	return b.String()
}

// emitBigSource renders the megabyte-scale tier: an outer epoch loop
// over Phases distinct copies of the kernel, each phase an inner loop
// of Unroll body copies over its own 2MB data block. The multi-level
// structure (epoch loop → per-phase loops → unrolled hammock bodies)
// stands in for the call trees of real binaries — the ISA has direct
// branches only, so "calls" are fully inlined phase bodies.
func (p Params) emitBigSource() string {
	var b strings.Builder
	b.Grow(64 * bigStaticTarget)
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	w("; synthetic %s (big tier): phases=%d unroll=%d iters=%d epochs=%d streams=%d hammocks=%d bias=%.2f",
		p.Name, p.Phases, p.Unroll, p.Iters, p.Epochs, p.Streams, p.Hammocks, p.TakenBias)
	w("        movi r%d, %d", rEpoch, p.Epochs)
	w("        movi r%d, %d", rMask, (p.ArrayWords*8)-1)
	if p.PointerChase {
		w("        movi r%d, %d", rChase, chaseBase)
	}
	// Pad even-length body copies to an odd instruction count: the MBS,
	// stride and SRSMT tables are set-indexed by PC, and identical-length
	// copies whose length shares a factor with the power-of-two set
	// counts would alias the same few sets, starving the predictors in a
	// way no real instruction mix does.
	pad := p.bodyInstrs()%2 == 0
	w("epoch:")
	for ph := 0; ph < p.Phases; ph++ {
		lay := bigLayout(ph, 0)
		w("        movi r%d, %d", rCount, p.Iters)
		for s := 0; s < p.Streams; s++ {
			w("        movi r%d, %d", rPtr0+s, lay.streamBase(s))
		}
		if p.Gathers > 0 {
			w("        movi r%d, %d", rGBase, lay.streamBase(0))
		}
		if p.ArmLoads > 0 {
			w("        movi r%d, %d", rArmPtr, lay.armBase)
		}
		w("p%dloop:", ph)
		for u := 0; u < p.Unroll; u++ {
			p.emitBody(w, bigLayout(ph, u))
			if pad {
				w("        nop")
			}
		}
		w("        subi r%d, r%d, 1", rCount, rCount)
		w("        bnez r%d, p%dloop", rCount, ph)
	}
	w("        subi r%d, r%d, 1", rEpoch, rEpoch)
	w("        bnez r%d, epoch", rEpoch)
	w("        halt")
	return b.String()
}

// bodyInstrs returns the instruction count of one body copy, by
// emitting it once and counting instruction lines (instructions are
// indented; labels are not, and bodies contain no comments).
func (p Params) bodyInstrs() int {
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	p.emitBody(w, bigLayout(0, 0))
	body := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "        ") {
			body++
		}
	}
	return body
}

// sizedUnroll picks the body replication factor that pushes the big
// tier past bigStaticTarget static instructions.
func (p Params) sizedUnroll() int {
	body := p.bodyInstrs()
	if body%2 == 0 {
		body++ // the nop pad emitBigSource adds
	}
	per := p.Phases * body
	return (bigStaticTarget + per - 1) / per
}

// emitBody renders one copy of the per-iteration loop body over lay:
// strided loads, hammocks with their control-independent regions,
// gathers, filler ILP, stores, and the stream-pointer advances.
func (p Params) emitBody(w func(string, ...any), lay bodyLayout) {
	// Strided loads, one per stream.
	for s := 0; s < p.Streams; s++ {
		w("        ld   r%d, 0(r%d)", rValBase+s, rPtr0+s)
	}
	if p.PointerChase {
		w("        ld   r%d, 0(r%d)", rChase, rChase) // dependent chain
	}

	// Hammocks: branch on the steering word (stream 0), perturbed per
	// hammock so multiple hammocks do not alias perfectly.
	for h := 0; h < p.Hammocks; h++ {
		cond := rValBase // steering value
		if h > 0 {
			// Derive a different condition from the same data.
			w("        shri r%d, r%d, %d", rTmp, rValBase+(h%p.Streams), h)
			w("        and  r%d, r%d, r%d", rTmp, rTmp, rValBase)
			cond = rTmp
		}
		armOps := p.ArmOps
		if armOps <= 0 {
			armOps = 2
		}
		w("        bnez r%d, %sh%delse", cond, lay.lbl, h)
		// then arm: control-dependent writes (never reusable).
		if h == 0 && p.ArmLoads > 0 {
			// A strided load living inside the arm: perfectly strided
			// on its own dynamic instances, consumed only here.
			w("        ld   r%d, 0(r%d)", rArmVal, rArmPtr)
			w("        addi r%d, r%d, 8", rArmPtr, rArmPtr)
			w("        and  r%d, r%d, r%d", rArmTmp, rArmPtr, rMask)
			w("        movi r%d, %d", rArmTmp+1, lay.armBase)
			w("        add  r%d, r%d, r%d", rArmPtr, rArmTmp+1, rArmTmp)
			w("        add  r%d, r%d, r%d", rArmVal+1, rArmVal+1, rArmVal)
		}
		for a := 0; a < armOps; a++ {
			r := rArm + a%3
			switch a % 3 {
			case 0:
				w("        addi r%d, r%d, 1", r, r)
			case 1:
				w("        xor  r%d, r%d, r%d", r, r, rValBase)
			case 2:
				w("        add  r%d, r%d, r%d", r, r, rArm)
			}
		}
		w("        jmp  %sh%djoin", lay.lbl, h)
		w("%sh%delse:", lay.lbl, h)
		// else arm, slightly lighter.
		for a := 0; a < (armOps+1)/2; a++ {
			r := rArm + 3 + a%2
			w("        subi r%d, r%d, %d", r, r, a+1)
		}
		w("%sh%djoin:", lay.lbl, h)
		// Control-independent region: accumulate strided-load values.
		for c := 0; c < p.CIOps; c++ {
			val := rValBase + 1 + (c % max(1, p.Streams-1))
			if p.Streams == 1 {
				val = rValBase
			}
			acc := rAccBase + (h*p.CIOps+c)%12
			switch c % 3 {
			case 0:
				w("        add  r%d, r%d, r%d", acc, acc, val)
			case 1:
				w("        xor  r%d, r%d, r%d", acc, acc, val)
			case 2:
				w("        add  r%d, r%d, r%d", acc, acc, val)
			}
		}
	}

	// Gather loads: address = streamBase + (value & mask); the index
	// register is data-dependent, so the access pattern is irregular.
	for g := 0; g < p.Gathers; g++ {
		val := rValBase + g%p.Streams
		w("        and  r%d, r%d, r%d", rTmp+3, val, rMask)
		w("        add  r%d, r%d, r%d", rTmp+3, rTmp+3, rGBase)
		w("        ld   r%d, 0(r%d)", rGather+g%2, rTmp+3)
		w("        add  r%d, r%d, r%d", rAccBase+12+g%2, rAccBase+12+g%2, rGather+g%2)
	}

	// Filler ILP: independent chains not fed by loads.
	for f := 0; f < p.FillerOps; f++ {
		ra := rFill + f%8
		rb := rFill + (f+3)%8
		switch f % 4 {
		case 0:
			w("        addi r%d, r%d, %d", ra, ra, f+1)
		case 1:
			w("        xor  r%d, r%d, r%d", ra, ra, rb)
		case 2:
			w("        add  r%d, r%d, r%d", ra, ra, rb)
		case 3:
			w("        shli r%d, r%d, 1", ra, ra)
		}
	}

	// Stores. The regular store goes to the disjoint store region;
	// StoreEvery > 1 (a power of two) gates it to every k-th iteration.
	if p.StoreEvery == 1 {
		w("        st   r%d, %d(r%d)", rAccBase, lay.storeDisp, rPtr0)
	} else if p.StoreEvery > 1 {
		w("        movi r%d, %d", rTmp+1, p.StoreEvery-1)
		w("        and  r%d, r%d, r%d", rTmp, rCount, rTmp+1)
		w("        bnez r%d, %snostore", rTmp, lay.lbl)
		w("        st   r%d, %d(r%d)", rAccBase, lay.storeDisp, rPtr0)
		w("%snostore:", lay.lbl)
	}
	if p.StoreIntoStream && p.Streams > 1 {
		// Every 64th iteration, additionally store three words ahead of
		// a value stream's read pointer — inside the window its replica
		// batch is prefetching, which trips the §2.4.3 coherence check
		// for a small fraction of stores.
		w("        movi r%d, 63", rTmp+1)
		w("        and  r%d, r%d, r%d", rTmp, rCount, rTmp+1)
		w("        bnez r%d, %snostream", rTmp, lay.lbl)
		w("        st   r%d, 24(r%d)", rAccBase, rPtr0+1)
		w("%snostream:", lay.lbl)
	}

	// Advance the stream pointers (unit stride, wrapped to the array).
	for s := 0; s < p.Streams; s++ {
		w("        addi r%d, r%d, 8", rPtr0+s, rPtr0+s)
		w("        and  r%d, r%d, r%d", rTmp+1, rPtr0+s, rMask)
		w("        movi r%d, %d", rTmp+2, lay.streamBase(s))
		w("        add  r%d, r%d, r%d", rPtr0+s, rTmp+2, rTmp+1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
