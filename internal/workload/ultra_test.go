package workload

import (
	"testing"

	"civect/internal/emu"
)

func TestUltraNames(t *testing.T) {
	names := UltraNames()
	if len(names) != len(Names()) {
		t.Fatalf("got %d ultra names, want %d", len(names), len(Names()))
	}
	for i, n := range names {
		if n != Names()[i]+UltraSuffix {
			t.Errorf("ultra name %d = %q", i, n)
		}
		p, ok := ParamsFor(n)
		if !ok {
			t.Errorf("ParamsFor(%q) not found", n)
			continue
		}
		if p.Epochs != 0 {
			t.Errorf("%s: ParamsFor pre-sizes Epochs to %d; sizing is Spec's job", n, p.Epochs)
		}
		if p.Phases <= 1 {
			t.Errorf("%s: ultra tuning lost the big tier's phase structure", n)
		}
	}
	if _, err := Spec("nosuch" + UltraSuffix); err == nil {
		t.Error("unknown ultra benchmark must fail")
	}
	if _, ok := ParamsFor(UltraSuffix); ok {
		t.Errorf("bare %q must not resolve", UltraSuffix)
	}
	if _, ok := ParamsFor("gcc" + BigSuffix + UltraSuffix); ok {
		t.Error("stacked tier suffixes must not resolve")
	}
}

// TestUltraTierLength proves the tier's contract on one benchmark: at
// least 10^7 dynamic instructions, a structural halt, and deterministic
// epoch sizing.
func TestUltraTierLength(t *testing.T) {
	if testing.Short() {
		t.Skip("emulates >10^7 instructions")
	}
	a, err := Spec("gcc" + UltraSuffix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec("gcc" + UltraSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if a.Params.Epochs != b.Params.Epochs || a.Params.Epochs == 0 {
		t.Fatalf("epoch sizing not deterministic: %d vs %d", a.Params.Epochs, b.Params.Epochs)
	}
	cpu := emu.New(a.NewMem())
	if err := cpu.Run(a.Program, 50*ultraTargetInstr); err != nil {
		t.Fatalf("ultra program did not halt structurally: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("emulator stopped without halting")
	}
	if cpu.Executed < ultraTargetInstr {
		t.Errorf("gcc.ultra ran %d dynamic instructions, want >= %d", cpu.Executed, ultraTargetInstr)
	}
	t.Logf("gcc.ultra: %d epochs, %d dynamic instructions", a.Params.Epochs, cpu.Executed)
}
