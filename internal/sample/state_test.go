package sample

import (
	"context"
	"reflect"
	"testing"

	"civect/internal/core"
	"civect/internal/workload"
)

// TestStateBitIdentical is the capture contract: measuring from a
// captured state file returns exactly the Estimate a live sampled run
// produces — same samples, same stitched statistics, bit for bit — on
// both workload tiers.
func TestStateBitIdentical(t *testing.T) {
	for _, bench := range []string{"gcc", "gcc.big"} {
		wl, err := workload.Spec(bench)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := Collect(wl.Program, wl.NewMem(), Config{IntervalLen: 5_000, MaxInstr: 120_000})
		if err != nil {
			t.Fatal(err)
		}
		plan := prof.BuildPlan(4)
		cfg := core.DefaultConfig(core.ModeCI)
		const warmup = 2_000

		live, err := Run(context.Background(), plan, wl.Program, wl.NewMem(), cfg, warmup)
		if err != nil {
			t.Fatal(err)
		}
		data, err := CaptureState(context.Background(), plan, wl.Program, wl.NewMem(), cfg, warmup)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := RunFromState(context.Background(), data, wl.Program, wl.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replayed) {
			t.Errorf("%s: RunFromState differs from live Run:\nlive:     %+v\nreplayed: %+v", bench, live, replayed)
		}

		// Capturing twice yields the same bytes (the determinism
		// invariant every civect byte format keeps).
		again, err := CaptureState(context.Background(), plan, wl.Program, wl.NewMem(), cfg, warmup)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(data, again) {
			t.Errorf("%s: capture is not byte-deterministic", bench)
		}
	}
}

// TestStateRejects pins the failure modes: wrong program, wrong payload
// kind, flipped bytes, truncation.
func TestStateRejects(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Collect(wl.Program, wl.NewMem(), Config{IntervalLen: 5_000, MaxInstr: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	plan := prof.BuildPlan(3)
	cfg := core.DefaultConfig(core.ModeCI)
	data, err := CaptureState(context.Background(), plan, wl.Program, wl.NewMem(), cfg, 1_000)
	if err != nil {
		t.Fatal(err)
	}

	info, err := PeekState(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Program != wl.Program.Name || info.Plan.TotalInstr != plan.TotalInstr ||
		len(info.Plan.Samples) != len(plan.Samples) || info.Warmup != 1_000 {
		t.Errorf("PeekState = %+v, want the captured plan over %s", info, wl.Program.Name)
	}

	other, err := workload.Spec("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFromState(context.Background(), data, other.Program, other.NewMem()); err == nil {
		t.Error("RunFromState accepted the wrong program")
	}

	// A full-machine checkpoint is a different payload kind under the
	// shared CIVK version space; the state reader must refuse it on the
	// version, before decoding anything.
	sp, err := core.ShareProgram(wl.Program)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.NewShared(cfg, sp, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFromState(context.Background(), proc.SaveCheckpoint(wl.NewMem()), wl.Program, wl.NewMem()); err == nil {
		t.Error("RunFromState accepted a full-machine checkpoint")
	}

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-9] }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		b := append([]byte(nil), data...)
		if _, err := RunFromState(context.Background(), tc.mut(b), wl.Program, wl.NewMem()); err == nil {
			t.Errorf("%s state file was accepted", tc.name)
		}
	}
}
