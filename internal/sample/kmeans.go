package sample

// Deterministic k-means over the projected interval vectors. SimPoint
// uses randomly-initialized k-means with a BIC sweep over k; this
// implementation keeps the clustering itself but removes every
// randomness source: centers initialize to evenly spaced intervals
// (the stream's own phase ordering is the best prior we have),
// assignment ties break to the lowest cluster index, and the
// representative of a cluster is its member closest to the centroid
// with the lowest interval index breaking ties. Same profile in, same
// plan out — always.

// Plan is a sampling plan: which intervals to simulate in detail and
// with what weight.
type Plan struct {
	// IntervalLen and TotalInstr mirror the profile.
	IntervalLen uint64
	TotalInstr  uint64
	// K is the cluster count actually used (≤ requested: capped by the
	// interval population).
	K int
	// Samples lists the representative intervals, sorted by Start.
	Samples []PlanSample
}

// PlanSample is one representative interval.
type PlanSample struct {
	// Interval is the interval's index in the profile.
	Interval int
	// Start is the dynamic instruction index the interval begins at.
	Start uint64
	// Len is the interval's dynamic instruction count.
	Len uint64
	// Weight is the fraction of all profiled instructions its cluster
	// accounts for; weights sum to 1.
	Weight float64
}

func dist2(a, b *[Dims]float64) float64 {
	var s float64
	for d := 0; d < Dims; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// kmeans clusters vs into k groups, returning each vector's assignment.
func kmeans(vs [][Dims]float64, k int) []int {
	n := len(vs)
	centers := make([][Dims]float64, k)
	for j := 0; j < k; j++ {
		centers[j] = vs[j*n/k]
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < 200; iter++ {
		changed := false
		for i := range vs {
			best, bestD := 0, dist2(&vs[i], &centers[0])
			for j := 1; j < k; j++ {
				if d := dist2(&vs[i], &centers[j]); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		var sums [][Dims]float64 = make([][Dims]float64, k)
		counts := make([]int, k)
		for i := range vs {
			j := assign[i]
			counts[j]++
			for d := 0; d < Dims; d++ {
				sums[j][d] += vs[i][d]
			}
		}
		for j := 0; j < k; j++ {
			if counts[j] == 0 {
				continue // empty cluster keeps its old center
			}
			inv := 1 / float64(counts[j])
			for d := 0; d < Dims; d++ {
				centers[j][d] = sums[j][d] * inv
			}
		}
	}
	return assign
}

// BuildPlan clusters the profile into at most k groups and picks one
// representative interval per non-empty cluster.
func (p *Profile) BuildPlan(k int) *Plan {
	n := len(p.Vectors)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	assign := kmeans(p.Vectors, k)

	// Recompute final centroids from the assignment, then pick each
	// cluster's closest member (lowest index on ties).
	centroids := make([][Dims]float64, k)
	var clInstr = make([]uint64, k) // instructions per cluster
	counts := make([]int, k)
	for i := range p.Vectors {
		j := assign[i]
		counts[j]++
		clInstr[j] += p.Lengths[i]
		for d := 0; d < Dims; d++ {
			centroids[j][d] += p.Vectors[i][d]
		}
	}
	for j := 0; j < k; j++ {
		if counts[j] > 0 {
			inv := 1 / float64(counts[j])
			for d := 0; d < Dims; d++ {
				centroids[j][d] *= inv
			}
		}
	}
	rep := make([]int, k)
	repD := make([]float64, k)
	for j := range rep {
		rep[j] = -1
	}
	for i := range p.Vectors {
		j := assign[i]
		d := dist2(&p.Vectors[i], &centroids[j])
		if rep[j] < 0 || d < repD[j] {
			rep[j], repD[j] = i, d
		}
	}

	plan := &Plan{IntervalLen: p.IntervalLen, TotalInstr: p.TotalInstr, K: k}
	for j := 0; j < k; j++ {
		if rep[j] < 0 {
			continue // empty cluster
		}
		plan.Samples = append(plan.Samples, PlanSample{
			Interval: rep[j],
			Start:    uint64(rep[j]) * p.IntervalLen,
			Len:      p.Lengths[rep[j]],
			Weight:   float64(clInstr[j]) / float64(p.TotalInstr),
		})
	}
	// Sort by start so the driver's single functional pass visits them
	// in stream order. Representatives are distinct intervals, so the
	// key is unique; insertion sort keeps this allocation-free and
	// obviously stable.
	s := plan.Samples
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Start < s[j-1].Start; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return plan
}
