package sample

import (
	"context"
	"fmt"
	"math"

	"civect/internal/core"
	"civect/internal/emu"
	"civect/internal/isa"
	"civect/internal/mem"
)

// The sampled-run driver: one functional pass fast-forwards the
// architectural state along the instruction stream; at each planned
// sample it clones the memory image, seeds a fresh detailed machine
// with the emulator's registers and PC (core.SetArchState), runs a
// configurable detailed warmup to re-heat the microarchitectural
// structures, then measures the sample interval and discards the
// machine. The measurements stitch into whole-run estimates weighted by
// cluster size.

// MetricNames lists the per-sample metrics, in reporting order. All are
// rates, so they extrapolate: ipc/cpi per committed instruction,
// reuse_frac the committed-reuse fraction, the _mpki entries
// events-per-kilo-instruction.
var MetricNames = []string{"ipc", "cpi", "reuse_frac", "bp_mpki", "l1d_mpki", "l2_mpki"}

// SampleResult is one measured representative interval. The JSON field
// names match sim.SampledRun's so `cickpt measure -json` and a sampled
// session's `.sampled` block read the same way.
type SampleResult struct {
	// Interval, Start and Weight mirror the plan entry.
	Interval int     `json:"interval"`
	Start    uint64  `json:"start"`
	Weight   float64 `json:"weight"`
	// WarmupInstr is the detailed warmup actually run (clamped at
	// stream start), MeasuredInstr the instructions measured.
	WarmupInstr   uint64 `json:"warmup_instr"`
	MeasuredInstr uint64 `json:"measured_instr"`
	// Cycles is the measured interval's detailed cycle count.
	Cycles uint64 `json:"cycles"`
	// Metrics holds the sample's metric values, parallel to
	// MetricNames.
	Metrics []float64 `json:"metrics"`
}

// StatEstimate is one stitched whole-run metric estimate.
type StatEstimate struct {
	Name string `json:"name"`
	// Mean is the cluster-weighted estimate.
	Mean float64 `json:"mean"`
	// CI95 is the half-width of the 95% confidence interval, from the
	// weighted between-sample variance over the effective sample count
	// (1/Σw²). It quantifies phase diversity the plan collapsed, not
	// measurement noise — the simulator is deterministic.
	CI95 float64 `json:"ci95"`
}

// Estimate is a stitched sampled-run result.
type Estimate struct {
	// TotalInstr is the full run's dynamic instruction count; the
	// estimates extrapolate to it.
	TotalInstr uint64 `json:"total_instr"`
	// DetailedInstr counts instructions simulated in detail (warmup +
	// measurement) — the cost side of sampling's bargain.
	DetailedInstr uint64 `json:"detailed_instr"`
	// Stats holds the stitched estimates, ordered as MetricNames.
	Stats []StatEstimate `json:"stats"`
	// EstCycles extrapolates the full run's cycle count
	// (TotalInstr × weighted CPI); EstCyclesCI is its 95% half-width.
	EstCycles   float64 `json:"est_cycles"`
	EstCyclesCI float64 `json:"est_cycles_ci"`
	// Samples holds the per-sample measurements, sorted by Start.
	Samples []SampleResult `json:"samples"`
}

// IPC returns the stitched IPC estimate and its 95% half-width.
func (e *Estimate) IPC() (mean, ci95 float64) {
	return e.Stats[0].Mean, e.Stats[0].CI95
}

// metricsOf derives the metric vector from a measured stats delta.
func metricsOf(a, b *core.Stats) (uint64, uint64, []float64) {
	instr := b.Committed - a.Committed
	cycles := b.Cycles - a.Cycles
	fi := float64(instr)
	fc := float64(cycles)
	if instr == 0 || cycles == 0 {
		return instr, cycles, make([]float64, len(MetricNames))
	}
	return instr, cycles, []float64{
		fi / fc,
		fc / fi,
		float64(b.CommittedReuse-a.CommittedReuse) / fi,
		1000 * float64(b.Mispredicts-a.Mispredicts) / fi,
		1000 * float64(b.L1D.Misses-a.L1D.Misses) / fi,
		1000 * float64(b.L2.Misses-a.L2.Misses) / fi,
	}
}

// Run executes the sampling plan: one functional pass over the
// workload, one transient detailed machine per sample. cfg is the
// detailed machine configuration (its MaxInstr/MaxCycles are ignored —
// the plan bounds each sample). warmup is the detailed warmup in
// instructions before each measured interval. ctx cancels between
// samples.
func Run(ctx context.Context, plan *Plan, prog *isa.Program, image *mem.Memory, cfg core.Config, warmup uint64) (*Estimate, error) {
	if len(plan.Samples) == 0 {
		return nil, fmt.Errorf("sample: empty plan")
	}
	sp, err := core.ShareProgram(prog)
	if err != nil {
		return nil, err
	}
	var m *mem.Memory
	if image != nil {
		m = image.Clone()
	}
	cpu := emu.New(m)
	w := newWarmer(&cfg)

	est := &Estimate{TotalInstr: plan.TotalInstr}
	for _, s := range plan.Samples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		warmStart := uint64(0)
		if s.Start > warmup {
			warmStart = s.Start - warmup
		}
		for !cpu.Halted && cpu.Executed < warmStart {
			s := cpu.StepOne(prog)
			w.observe(&s)
		}
		if cpu.Executed != warmStart {
			return nil, fmt.Errorf("sample: stream ended at %d before sample start %d (stale plan?)", cpu.Executed, s.Start)
		}

		warmupInstr := s.Start - warmStart
		res, detailed, err := measureSample(sp, cfg, s, warmupInstr, cpu.Mem.Clone(), cpu.Regs, cpu.PC, w)
		if err != nil {
			return nil, err
		}
		est.DetailedInstr += detailed
		est.Samples = append(est.Samples, res)
	}
	est.stitch()
	return est, nil
}

// measureSample transplants architectural and warm state into a fresh
// detailed machine, runs the unmeasured detailed warmup, measures the
// sample interval and returns the measurement plus the detailed
// instruction count spent. It is the one measurement path: Run feeds it
// live fast-forward state, RunFromState feeds it state restored from a
// capture file, and the two must produce identical results.
func measureSample(sp *core.SharedProgram, cfg core.Config, s PlanSample, warmupInstr uint64, m *mem.Memory, regs [isa.NumLogical]uint64, pc int, w *warmer) (SampleResult, uint64, error) {
	scfg := cfg
	scfg.MaxInstr = warmupInstr + s.Len
	scfg.MaxCycles = 0
	proc, err := core.NewShared(scfg, sp, m)
	if err != nil {
		return SampleResult{}, 0, err
	}
	if err := proc.SetArchState(regs, pc); err != nil {
		return SampleResult{}, 0, err
	}
	if err := w.adoptInto(proc); err != nil {
		return SampleResult{}, 0, err
	}
	for !proc.Halted() && proc.Stats.Committed < warmupInstr {
		proc.Step()
	}
	warm := proc.Snapshot()
	for !proc.Halted() && proc.Stats.Committed < scfg.MaxInstr {
		proc.Step()
	}
	end := proc.Snapshot()

	instr, cycles, metrics := metricsOf(&warm, &end)
	return SampleResult{
		Interval:      s.Interval,
		Start:         s.Start,
		Weight:        s.Weight,
		WarmupInstr:   warmupInstr,
		MeasuredInstr: instr,
		Cycles:        cycles,
		Metrics:       metrics,
	}, end.Committed, nil
}

// stitch combines the per-sample metrics into weighted whole-run
// estimates with confidence intervals.
func (e *Estimate) stitch() {
	var wsum, w2sum float64
	for _, s := range e.Samples {
		wsum += s.Weight
		w2sum += s.Weight * s.Weight
	}
	if wsum == 0 {
		wsum = 1
	}
	// Effective sample count for the weighted standard error: equal
	// weights give n, a dominating cluster collapses toward 1.
	neff := wsum * wsum / w2sum
	for mi, name := range MetricNames {
		var mean float64
		for _, s := range e.Samples {
			mean += s.Weight / wsum * s.Metrics[mi]
		}
		var variance float64
		for _, s := range e.Samples {
			d := s.Metrics[mi] - mean
			variance += s.Weight / wsum * d * d
		}
		ci := 0.0
		if neff > 1 {
			ci = 1.96 * math.Sqrt(variance/neff)
		}
		e.Stats = append(e.Stats, StatEstimate{Name: name, Mean: mean, CI95: ci})
	}
	// cpi is Stats[1] by MetricNames order.
	e.EstCycles = e.Stats[1].Mean * float64(e.TotalInstr)
	e.EstCyclesCI = e.Stats[1].CI95 * float64(e.TotalInstr)
}
