package sample

import (
	"context"
	"math"
	"reflect"
	"testing"

	"civect/internal/core"
	"civect/internal/workload"
)

func TestBlockLeaders(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	blockOf, n := blockLeaders(wl.Program)
	if n < 2 {
		t.Fatalf("gcc has %d basic blocks", n)
	}
	if blockOf[0] != 0 {
		t.Fatalf("first instruction not in block 0")
	}
	// Block IDs must be non-decreasing and dense.
	last := 0
	for pc, b := range blockOf {
		if b < last || b > last+1 {
			t.Fatalf("block IDs not dense at pc %d: %d after %d", pc, b, last)
		}
		last = b
	}
	if last != n-1 {
		t.Fatalf("max block %d, want %d", last, n-1)
	}
}

func TestProfileDeterministic(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{IntervalLen: 3_000, MaxInstr: 60_000}
	a, err := Collect(wl.Program, wl.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(wl.Program, wl.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two profiles of the same workload differ")
	}
	if a.TotalInstr != 60_000 {
		t.Fatalf("profiled %d instructions, want 60000", a.TotalInstr)
	}
	if got := len(a.Vectors); got != 20 {
		t.Fatalf("%d intervals, want 20", got)
	}
	var sum uint64
	for _, l := range a.Lengths {
		sum += l
	}
	if sum != a.TotalInstr {
		t.Fatalf("interval lengths sum to %d, want %d", sum, a.TotalInstr)
	}
}

func TestPlanProperties(t *testing.T) {
	wl, err := workload.Spec("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Collect(wl.Program, wl.NewMem(), Config{IntervalLen: 2_000, MaxInstr: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7, 100} {
		plan := prof.BuildPlan(k)
		if len(plan.Samples) == 0 || len(plan.Samples) > k {
			t.Fatalf("k=%d: %d samples", k, len(plan.Samples))
		}
		var wsum float64
		lastStart := int64(-1)
		for _, s := range plan.Samples {
			wsum += s.Weight
			if int64(s.Start) <= lastStart {
				t.Fatalf("k=%d: samples not sorted by start", k)
			}
			lastStart = int64(s.Start)
			if s.Start != uint64(s.Interval)*prof.IntervalLen {
				t.Fatalf("k=%d: sample start %d inconsistent with interval %d", k, s.Start, s.Interval)
			}
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Fatalf("k=%d: weights sum to %g", k, wsum)
		}
		// Determinism: rebuilding yields the identical plan.
		again := prof.BuildPlan(k)
		if !reflect.DeepEqual(plan, again) {
			t.Fatalf("k=%d: plan not deterministic", k)
		}
	}
}

// TestSampledAccuracy runs the full sampling pipeline and checks the
// stitched estimates against full detailed-run truth: inside the
// reported confidence interval (with a 5%-relative floor — the CI
// quantifies phase diversity and collapses when phases are
// near-identical, while a short run's residual warmup transient puts a
// floor under the achievable bias). Also enforces the cost side:
// detailed simulation must cover at most a quarter of the stream here
// (the ultra-tier CI smoke demands a tenth — longer streams amortize
// the fixed warmup).
//
// The base tier's single-loop benchmarks have near-identical BBVs in
// every interval and never reach steady state over a short run — a
// secular transient sampling cannot capture, so only IPC (which the
// phase-diversity CI does cover) is checked there. The .big benchmark's
// phase rotation is the regime clustering is actually for, and there
// every reported metric must land inside its tolerance.
func TestSampledAccuracy(t *testing.T) {
	cases := []struct {
		bench      string
		total, ivl uint64
		k          int
		warmup     uint64
		allStats   bool // check rate metrics too, not just IPC
	}{
		{"gcc", 120_000, 5_000, 4, 2_000, false},
		{"gcc.big", 400_000, 10_000, 6, 3_000, true},
	}
	for _, tc := range cases {
		wl, err := workload.Spec(tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := Collect(wl.Program, wl.NewMem(), Config{IntervalLen: tc.ivl, MaxInstr: tc.total})
		if err != nil {
			t.Fatal(err)
		}
		plan := prof.BuildPlan(tc.k)
		ccfg := core.DefaultConfig(core.ModeCI)
		est, err := Run(context.Background(), plan, wl.Program, wl.NewMem(), ccfg, tc.warmup)
		if err != nil {
			t.Fatal(err)
		}

		ccfg.MaxInstr = tc.total
		p, err := core.New(ccfg, wl.Program, wl.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		truth, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		check := func(name string, estv, ci, truev float64) {
			tol := math.Max(ci, 0.05*math.Abs(truev))
			if math.Abs(estv-truev) > tol {
				t.Errorf("%s: sampled %s %.4f±%.4f vs true %.4f (outside tolerance %.4f)",
					tc.bench, name, estv, ci, truev, tol)
			}
		}
		estIPC, ci := est.IPC()
		check("ipc", estIPC, ci, truth.IPC())
		if tc.allStats {
			check("reuse_frac", est.Stats[2].Mean, est.Stats[2].CI95, truth.ReuseFraction())
			check("bp_mpki", est.Stats[3].Mean, est.Stats[3].CI95,
				1000*float64(truth.Mispredicts)/float64(truth.Committed))
		}
		if est.DetailedInstr*4 > tc.total {
			t.Errorf("%s: detailed simulation covered %d of %d instructions (> 1/4)",
				tc.bench, est.DetailedInstr, tc.total)
		}
		t.Logf("%s: sampled IPC %.4f±%.4f, true %.4f, detailed %d/%d instrs",
			tc.bench, estIPC, ci, truth.IPC(), est.DetailedInstr, tc.total)
	}
}

// TestRunDeterministic proves the full pipeline byte-stable: profile,
// plan and estimate twice and require deep equality (the nodeterm
// analyzer guards the code paths; this guards the numbers).
func TestRunDeterministic(t *testing.T) {
	wl, err := workload.Spec("twolf")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Estimate {
		prof, err := Collect(wl.Program, wl.NewMem(), Config{IntervalLen: 4_000, MaxInstr: 40_000})
		if err != nil {
			t.Fatal(err)
		}
		est, err := Run(context.Background(), prof.BuildPlan(3), wl.Program, wl.NewMem(), core.DefaultConfig(core.ModeCI), 1_000)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two sampled runs of the same workload differ")
	}
}

// TestRunCanceled proves context cancellation surfaces between samples.
func TestRunCanceled(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Collect(wl.Program, wl.NewMem(), Config{IntervalLen: 2_000, MaxInstr: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, prof.BuildPlan(3), wl.Program, wl.NewMem(), core.DefaultConfig(core.ModeCI), 500); err == nil {
		t.Fatal("canceled run returned no error")
	}
}
