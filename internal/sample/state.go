package sample

import (
	"context"
	"fmt"

	"civect/internal/ckpt"
	"civect/internal/core"
	"civect/internal/emu"
	"civect/internal/isa"
	"civect/internal/mem"
)

// Sample-state capture: the amortizable half of checkpointed sampling.
// A sampled run's cost splits into a one-time part — the functional
// profiling pass and the warming fast-forward, both linear in the full
// stream — and a per-run part: the detailed samples themselves, a few
// percent of the stream. CaptureState pays the one-time part once and
// persists, for every planned sample, the state the measurement needs
// at its warmup start: the emulator's registers and PC, the memory
// image as sparse deltas against the pristine base, and the
// functionally-warmed structures (gshare, MBS, stride tables, all four
// cache levels). RunFromState then measures all samples straight from
// the file, skipping both full-stream passes — which is what makes a
// sampled run an order of magnitude cheaper than detailed simulation
// in wall-clock, not just in detailed instructions.
//
// The contract is bit-identity: RunFromState over a capture must
// return exactly the Estimate Run would produce live (both funnel into
// measureSample, and the warm structures round-trip through the same
// SaveState/LoadState encoding AdoptWarmState uses internally).

// StateVersion is the CIVK payload version for sample-state files. The
// CIVK version space is shared across payload kinds — 1 is the
// full-machine checkpoint (core.CheckpointVersion), 2 the sample state
// captured here — so a file of one kind fed to the other reader fails
// loudly on the version, before any payload decoding.
const StateVersion = 2

// StateInfo is the cheap-to-decode prefix of a sample-state file.
type StateInfo struct {
	Config  core.Config
	Program string
	// ProgramHash guards restoration against a different program under
	// the same name.
	ProgramHash uint64
	// Plan mirrors the captured plan's geometry; Warmup the detailed
	// warmup the capture assumed.
	Plan   Plan
	Warmup uint64
}

// CaptureState runs the full-stream warming pass once and serializes
// per-sample restart state for every sample in the plan, returning the
// sealed CIVK container. image must be the workload's pristine initial
// memory (the delta base RunFromState will rebuild against); warmup is
// the detailed warmup RunFromState will run before each measurement.
func CaptureState(ctx context.Context, plan *Plan, prog *isa.Program, image *mem.Memory, cfg core.Config, warmup uint64) ([]byte, error) {
	if len(plan.Samples) == 0 {
		return nil, fmt.Errorf("sample: empty plan")
	}
	var m *mem.Memory
	if image != nil {
		m = image.Clone()
	}
	cpu := emu.New(m)
	w := newWarmer(&cfg)

	var e ckpt.Encoder
	e.Tag("sample-state")
	core.SaveConfigState(&e, &cfg)
	e.Tag("prog")
	e.Str(prog.Name)
	e.Int(prog.Len())
	e.U64(core.HashProgram(prog))
	e.Tag("plan")
	e.U64(plan.IntervalLen)
	e.U64(plan.TotalInstr)
	e.Int(plan.K)
	e.U64(warmup)
	e.Int(len(plan.Samples))
	for _, s := range plan.Samples {
		e.Int(s.Interval)
		e.U64(s.Start)
		e.U64(s.Len)
		e.F64(s.Weight)
	}

	for _, s := range plan.Samples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		warmStart := uint64(0)
		if s.Start > warmup {
			warmStart = s.Start - warmup
		}
		for !cpu.Halted && cpu.Executed < warmStart {
			st := cpu.StepOne(prog)
			w.observe(&st)
		}
		if cpu.Executed != warmStart {
			return nil, fmt.Errorf("sample: stream ended at %d before sample start %d (stale plan?)", cpu.Executed, s.Start)
		}
		e.Tag("sample")
		e.Int(cpu.PC)
		for _, r := range cpu.Regs {
			e.U64(r)
		}
		mm := cpu.Mem
		if mm == nil {
			mm = mem.New()
		}
		mm.SaveDelta(&e, image)
		w.g.SaveState(&e)
		w.mbs.SaveState(&e)
		w.sp.SaveState(&e)
		w.l1i.SaveState(&e)
		w.l1d.SaveState(&e)
		w.l2.SaveState(&e)
		w.l3.SaveState(&e)
	}
	return ckpt.Seal(StateVersion, e.Bytes()), nil
}

// WriteStateFile atomically persists a captured state container
// (temp file + rename — a crash mid-write never leaves a torn file
// where a later measure would find it).
func WriteStateFile(path string, data []byte) error { return ckpt.WriteFile(path, data) }

// decodeHeader validates the container and decodes everything up to the
// first per-sample record.
func decodeHeader(data []byte) (*ckpt.Decoder, StateInfo, error) {
	payload, err := ckpt.Open(data, StateVersion)
	if err != nil {
		return nil, StateInfo{}, err
	}
	d := ckpt.NewDecoder(payload)
	d.Tag("sample-state")
	var info StateInfo
	info.Config = core.LoadConfigState(d)
	d.Tag("prog")
	info.Program = d.Str()
	d.Int() // program length (re-checked against the supplied program)
	info.ProgramHash = d.U64()
	d.Tag("plan")
	info.Plan.IntervalLen = d.U64()
	info.Plan.TotalInstr = d.U64()
	info.Plan.K = d.Int()
	info.Warmup = d.U64()
	n := d.Count()
	for i := 0; i < n; i++ {
		info.Plan.Samples = append(info.Plan.Samples, PlanSample{
			Interval: d.Int(),
			Start:    d.U64(),
			Len:      d.U64(),
			Weight:   d.F64(),
		})
	}
	if err := d.Err(); err != nil {
		return nil, StateInfo{}, err
	}
	return d, info, nil
}

// PeekState decodes a sample-state file's header without touching the
// per-sample machine state.
func PeekState(data []byte) (StateInfo, error) {
	_, info, err := decodeHeader(data)
	return info, err
}

// RunFromState measures every sample of a captured state file and
// stitches the estimates, exactly as Run would live — same plan, same
// warm state, same measurement path, bit-identical Estimate — without
// either full-stream functional pass. prog and image must be the
// workload the state was captured over (verified by name, length and
// program hash; the memory deltas rebuild against image).
func RunFromState(ctx context.Context, data []byte, prog *isa.Program, image *mem.Memory) (*Estimate, error) {
	d, info, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	if prog.Name != info.Program || core.HashProgram(prog) != info.ProgramHash {
		return nil, fmt.Errorf("sample: state was captured over program %q (hash %016x), not the supplied %q (hash %016x)",
			info.Program, info.ProgramHash, prog.Name, core.HashProgram(prog))
	}
	sp, err := core.ShareProgram(prog)
	if err != nil {
		return nil, err
	}

	est := &Estimate{TotalInstr: info.Plan.TotalInstr}
	for _, s := range info.Plan.Samples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d.Tag("sample")
		pc := d.Int()
		var regs [isa.NumLogical]uint64
		for i := range regs {
			regs[i] = d.U64()
		}
		m := mem.LoadDelta(d, image)
		w := newWarmer(&info.Config)
		w.g.LoadState(d)
		w.mbs.LoadState(d)
		w.sp.LoadState(d)
		w.l1i.LoadState(d)
		w.l1d.LoadState(d)
		w.l2.LoadState(d)
		w.l3.LoadState(d)
		if err := d.Err(); err != nil {
			return nil, err
		}

		warmStart := uint64(0)
		if s.Start > info.Warmup {
			warmStart = s.Start - info.Warmup
		}
		res, detailed, err := measureSample(sp, info.Config, s, s.Start-warmStart, m, regs, pc, w)
		if err != nil {
			return nil, err
		}
		est.DetailedInstr += detailed
		est.Samples = append(est.Samples, res)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("sample: state file has %d trailing bytes", d.Remaining())
	}
	est.stitch()
	return est, nil
}
