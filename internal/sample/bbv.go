// Package sample implements checkpointed, SimPoint-style sampled
// simulation: a functional profiling pass splits a workload's dynamic
// instruction stream into fixed-size intervals and summarizes each as a
// basic-block vector (BBV); deterministic k-means clusters the
// intervals; one representative per cluster is then simulated in detail
// (functional fast-forward, detailed warmup, measured sample) and the
// per-cluster measurements are stitched into whole-run estimates with
// confidence intervals.
//
// Everything here is deterministic: profiling follows the emulator's
// instruction stream, clustering uses a fixed hash-seeded projection
// and index-ordered tie-breaking, and no map iteration reaches any
// output. Two runs of the same workload produce byte-identical plans
// and estimates.
package sample

import (
	"fmt"

	"civect/internal/emu"
	"civect/internal/isa"
	"civect/internal/mem"
)

// Dims is the dimensionality BBVs are random-projected down to before
// clustering, as SimPoint does: the block population can reach tens of
// thousands, but interval similarity survives a ~16x-smaller sketch.
const Dims = 32

// Config tunes the profiling pass.
type Config struct {
	// IntervalLen is the interval size in dynamic instructions.
	IntervalLen uint64
	// MaxInstr bounds the profiled stream (0: run to halt).
	MaxInstr uint64
}

// Profile is the outcome of the profiling pass: one projected BBV per
// interval plus the stream geometry the plan needs.
type Profile struct {
	// IntervalLen is the interval size the profile was taken at.
	IntervalLen uint64
	// TotalInstr is the profiled dynamic instruction count.
	TotalInstr uint64
	// NumBlocks is the static basic-block population.
	NumBlocks int
	// Vectors holds one Dims-dimensional projected, length-normalized
	// BBV per interval. The last interval may cover fewer than
	// IntervalLen instructions (the stream remainder).
	Vectors [][Dims]float64
	// Lengths is each interval's dynamic instruction count.
	Lengths []uint64
}

// blockLeaders computes the static basic-block leader set: instruction
// 0, every branch/jump target, and every instruction following a
// branch, jump or halt. blockOf maps each PC to its block index.
func blockLeaders(prog *isa.Program) (blockOf []int, numBlocks int) {
	n := prog.Len()
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for pc := 0; pc < n; pc++ {
		in := prog.At(pc)
		if in.IsCondBranch() || in.IsJump() {
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
		if in.Op == isa.OpHalt && pc+1 < n {
			leader[pc+1] = true
		}
	}
	blockOf = make([]int, n)
	id := -1
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			id++
		}
		blockOf[pc] = id
	}
	return blockOf, id + 1
}

// splitmix64 is the deterministic hash behind the projection matrix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// projectSign returns the ±1 projection weight of block b on dim d.
func projectSign(b, d int) float64 {
	if splitmix64(uint64(b)<<32|uint64(d))&1 == 0 {
		return 1
	}
	return -1
}

// Profiler accumulates the current interval's raw block counts and
// flushes them as projected vectors at each boundary.
type profiler struct {
	cfg     Config
	blockOf []int
	counts  []uint64 // raw instr-weighted block counts, current interval
	inIntvl uint64   // instructions in the current interval
	out     Profile
}

func (pr *profiler) flush() {
	if pr.inIntvl == 0 {
		return
	}
	var v [Dims]float64
	norm := 1 / float64(pr.inIntvl)
	for b, c := range pr.counts {
		if c == 0 {
			continue
		}
		w := float64(c) * norm
		for d := 0; d < Dims; d++ {
			v[d] += w * projectSign(b, d)
		}
		pr.counts[b] = 0
	}
	pr.out.Vectors = append(pr.out.Vectors, v)
	pr.out.Lengths = append(pr.out.Lengths, pr.inIntvl)
	pr.inIntvl = 0
}

// Collect runs the functional emulator over the workload and returns
// per-interval projected BBVs. image is cloned, never mutated.
func Collect(prog *isa.Program, image *mem.Memory, cfg Config) (*Profile, error) {
	if cfg.IntervalLen == 0 {
		return nil, fmt.Errorf("sample: interval length must be positive")
	}
	blockOf, numBlocks := blockLeaders(prog)
	pr := &profiler{
		cfg:     cfg,
		blockOf: blockOf,
		counts:  make([]uint64, numBlocks),
		out:     Profile{IntervalLen: cfg.IntervalLen, NumBlocks: numBlocks},
	}
	var m *mem.Memory
	if image != nil {
		m = image.Clone()
	}
	cpu := emu.New(m)
	for !cpu.Halted {
		if cfg.MaxInstr > 0 && cpu.Executed >= cfg.MaxInstr {
			break
		}
		pc := cpu.PC
		cpu.StepOne(prog)
		pr.counts[blockOf[pc]]++
		pr.inIntvl++
		if pr.inIntvl == cfg.IntervalLen {
			pr.flush()
		}
	}
	pr.flush()
	pr.out.TotalInstr = cpu.Executed
	if len(pr.out.Vectors) == 0 {
		return nil, fmt.Errorf("sample: workload executed no instructions")
	}
	return &pr.out, nil
}
