package sample

import (
	"civect/internal/bpred"
	"civect/internal/cache"
	"civect/internal/core"
	"civect/internal/emu"
	"civect/internal/stride"
)

// Functional warming (the SMARTS discipline): the microarchitectural
// structures with long thermal time constants — the 64K-entry gshare,
// the cache tag arrays, the MBS and stride tables — depend only on the
// committed instruction stream, which the functional pass produces
// exactly. The warmer replays that stream into private copies of the
// structures during fast-forward; at each sample start the warm state
// transplants into the fresh detailed machine (core.AdoptWarmState),
// so the detailed warmup only has to re-fill the short-time-constant
// state (pipeline, SRSMT, wide-bus latches) the warmer cannot model.

// warmer tracks functionally-warmed structures during the emulation
// pass.
type warmer struct {
	g                *bpred.Gshare
	mbs              *bpred.MBS
	sp               *stride.Predictor
	l1i, l1d, l2, l3 *cache.Cache
}

func newWarmer(cfg *core.Config) *warmer {
	return &warmer{
		g:   bpred.NewGshare(cfg.GshareEntries),
		mbs: bpred.NewMBS(cfg.MBSSets, cfg.MBSAssoc),
		sp:  stride.New(cfg.StrideSets, cfg.StrideAssoc),
		l1i: cache.New(cfg.Hier.L1I),
		l1d: cache.New(cfg.Hier.L1D),
		l2:  cache.New(cfg.Hier.L2),
		l3:  cache.New(cfg.Hier.L3),
	}
}

// observe feeds one architecturally executed instruction, mirroring the
// detailed machine's training points: gshare/MBS train on conditional
// branch outcomes, the stride predictor on committed load addresses,
// the caches on the fetch and data streams with the hierarchy's miss
// path (L1 miss walks outward).
func (w *warmer) observe(s *emu.Step) {
	if hit, _ := w.l1i.Access(uint64(s.PC)*core.InstBytes, false); !hit {
		w.l2.Access(uint64(s.PC)*core.InstBytes, false)
	}
	if s.Instr.IsCondBranch() {
		w.g.Update(uint64(s.PC), s.Taken)
		w.mbs.Update(uint64(s.PC), s.Taken)
		return
	}
	if s.Instr.IsLoad() {
		w.sp.Observe(uint64(s.PC), s.Addr)
	}
	if s.Instr.IsLoad() || s.Instr.IsStore() {
		write := s.Instr.IsStore()
		if hit, _ := w.l1d.Access(s.Addr, write); !hit {
			if h2, _ := w.l2.Access(s.Addr, write); !h2 {
				w.l3.Access(s.Addr, write)
			}
		}
	}
}

// adoptInto transplants the warm state into a fresh detailed machine.
func (w *warmer) adoptInto(p *core.Proc) error {
	return p.AdoptWarmState(w.g, w.mbs, w.sp, w.l1i, w.l1d, w.l2, w.l3)
}
