// Package hotalloc implements the civet hotalloc analyzer: a
// compile-time complement to the runtime testing.AllocsPerRun gate on
// the simulator's zero-allocation steady state. Functions whose doc
// comment carries //civet:hotpath (core.Proc.Step and the engine tick
// functions) are roots; the analyzer walks every function they
// statically call within the same package — stopping at
// //civet:coldpath — and flags constructs that allocate or are likely
// to escape to the heap:
//
//   - make of a map, chan or slice, and builtin new
//   - map/slice composite literals, and &T{...} literals
//   - append whose destination is a function-local slice (an
//     unhoisted buffer that may grow every call)
//   - func literals that capture enclosing variables (closure +
//     captured vars move to the heap)
//   - boxing a concrete value into an interface (assignment,
//     argument, or return position)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - go statements (goroutine + closure allocation)
//
// These are escape heuristics, not the compiler's escape analysis:
// a flagged construct the compiler provably keeps on the stack can be
// suppressed with //civet:allow hotalloc <reason>, which doubles as
// in-source documentation of why the allocation is acceptable.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"civect/internal/lint/directive"
)

// Analyzer is the hotalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flags heap-allocating constructs in functions reachable from a //civet:hotpath root, turning the AllocsPerRun runtime gate into a compile-time one",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Loader},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[directive.Loader].(*directive.Index)

	// Collect every function declaration and its defining object so
	// calls can be resolved back to declarations.
	decls := make(map[types.Object]*ast.FuncDecl)
	var order []*ast.FuncDecl
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(fn.Name); obj != nil {
			decls[obj] = fn
		}
		order = append(order, fn)
	})

	// Breadth-first closure from the hotpath roots over same-package
	// static calls, pruned at coldpath functions.
	hot := make(map[*ast.FuncDecl]bool)
	var queue []*ast.FuncDecl
	for _, fn := range order {
		if ix.Hot(fn) && !ix.Cold(fn) {
			hot[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range callees(pass, fn, decls) {
			if hot[callee] || ix.Cold(callee) {
				continue
			}
			hot[callee] = true
			queue = append(queue, callee)
		}
	}

	for _, fn := range order {
		if hot[fn] {
			checkHotFunc(pass, ix, fn)
		}
	}
	return nil, nil
}

// callees resolves the static same-package calls made by fn, both
// plain functions and methods.
func callees(pass *analysis.Pass, fn *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch f := call.Fun.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.ObjectOf(f)
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.ObjectOf(f.Sel)
		}
		if obj == nil {
			return true
		}
		if callee, ok := decls[obj]; ok {
			out = append(out, callee)
		}
		return true
	})
	return out
}

func checkHotFunc(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	hoisted := hoistedLocals(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Arguments to panic are exempt: an assertion firing ends
			// the run, so its formatting cannot perturb steady state.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
			checkCall(pass, ix, fn, n, hoisted)
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				ix.Report(pass, n.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				ix.Report(pass, n.Pos(), "slice literal allocates in hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					ix.Report(pass, n.Pos(), "&composite literal escapes to the heap in hot path")
				}
			}
		case *ast.FuncLit:
			if captures(pass, fn, n) {
				ix.Report(pass, n.Pos(), "func literal captures enclosing variables; closure and captures move to the heap in hot path")
			}
			return false // a closure body is a new (non-hot) activation
		case *ast.GoStmt:
			ix.Report(pass, n.Pos(), "go statement in hot path allocates a goroutine per call")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						ix.Report(pass, n.Pos(), "string concatenation allocates in hot path")
					}
				}
			}
		case *ast.AssignStmt:
			checkBoxingAssign(pass, ix, n)
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, ix, fn, n)
		}
		return true
	})
}

// hoistedLocals finds function-local slice variables whose backing
// array is hoisted state: `x := p.buf[:0]`, `q := p.readyQ`,
// `l, ok := p.pool[w]` — a reslice or read of a field, element or
// package-level variable. Appending to such a local is the
// simulator's pooled double-buffering idiom: growth beyond capacity
// is persisted back to the owner, so it amortizes to zero
// allocations in steady state.
func hoistedLocals(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	hoisted := make(map[types.Object]bool)
	var backed func(e ast.Expr) bool
	backed = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.SliceExpr:
			switch x := e.X.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				return true
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(x)
				return obj != nil &&
					(obj.Pos() < fn.Pos() || obj.Pos() >= fn.End() || hoisted[obj])
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			return true
		case *ast.CallExpr:
			// Seeding from hoisted backing: u := append(p.buf[:0], xs...)
			if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) > 0 {
				if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
					return backed(e.Args[0])
				}
			}
		}
		return false
	}
	// Source order handles chained reslices (`q := p.waitQ` then
	// `out := q[:0]`); iterate to a fixpoint for the rare backward
	// reference.
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr) {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && !hoisted[obj] {
					hoisted[obj] = true
					changed = true
				}
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE {
				return true
			}
			switch {
			case len(as.Lhs) == len(as.Rhs):
				for i, rhs := range as.Rhs {
					if backed(rhs) {
						mark(as.Lhs[i])
					}
				}
			case len(as.Rhs) == 1 && backed(as.Rhs[0]):
				// comma-ok from a map of pooled lists: l, ok := p.pool[w]
				mark(as.Lhs[0])
			}
			return true
		})
	}
	return hoisted
}

func checkCall(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl, call *ast.CallExpr, hoisted map[types.Object]bool) {
	info := pass.TypesInfo
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				t := info.TypeOf(call)
				if t == nil {
					return
				}
				switch t.Underlying().(type) {
				case *types.Map:
					ix.Report(pass, call.Pos(), "make(map) allocates in hot path")
				case *types.Chan:
					ix.Report(pass, call.Pos(), "make(chan) allocates in hot path")
				case *types.Slice:
					ix.Report(pass, call.Pos(), "make([]T) allocates in hot path; hoist the buffer to a struct field")
				}
			case "new":
				ix.Report(pass, call.Pos(), "new(T) allocates in hot path")
			case "append":
				checkAppend(pass, ix, fn, call, hoisted)
			}
			return
		}
	}
	// A conversion expression looks like a call; string<->[]byte and
	// []rune conversions copy through the heap.
	if conversionAllocs(info, call) {
		ix.Report(pass, call.Pos(), "string conversion allocates in hot path")
		return
	}
	checkBoxingArgs(pass, ix, call)
}

// checkAppend flags append whose destination slice is declared inside
// fn itself: an unhoisted buffer that may grow (and thus allocate) on
// every invocation. Appends to fields or package state amortize to
// zero in steady state and stay legal.
func checkAppend(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl, call *ast.CallExpr, hoisted map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // append to field / indexed destination: hoisted state
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos || hoisted[obj] {
		return
	}
	if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() {
		ix.Report(pass, call.Pos(), "append to function-local slice %s may grow per call in hot path; hoist the backing buffer", id.Name)
	}
}

// captures reports whether lit references a variable declared in the
// enclosing function fn (making it a heap-allocated closure).
func captures(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Declared inside fn but outside the literal itself.
		if obj.Pos() >= fn.Pos() && obj.Pos() < lit.Pos() {
			found = true
			return false
		}
		return true
	})
	return found
}

func conversionAllocs(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	to, from := tv.Type.Underlying(), info.TypeOf(call.Args[0])
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from.Underlying())) ||
		(isByteOrRuneSlice(to) && isString(from.Underlying()))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// checkBoxingArgs flags concrete values passed to interface-typed
// parameters (including fmt's ...any), the classic hidden allocation.
func checkBoxingArgs(pass *analysis.Pass, ix *directive.Index, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice through
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if boxes(pass.TypesInfo, pt, arg) {
			ix.Report(pass, arg.Pos(), "argument boxes %s into %s in hot path", pass.TypesInfo.TypeOf(arg).String(), pt.String())
		}
	}
}

func checkBoxingAssign(pass *analysis.Pass, ix *directive.Index, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lt := pass.TypesInfo.TypeOf(as.Lhs[i])
		if lt == nil {
			continue
		}
		if boxes(pass.TypesInfo, lt, rhs) {
			ix.Report(pass, rhs.Pos(), "assignment boxes %s into %s in hot path", pass.TypesInfo.TypeOf(rhs).String(), lt.String())
		}
	}
}

func checkBoxingReturn(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	obj, ok := pass.TypesInfo.ObjectOf(fn.Name).(*types.Func)
	if !ok {
		return
	}
	results := obj.Signature().Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if boxes(pass.TypesInfo, results.At(i).Type(), r) {
			ix.Report(pass, r.Pos(), "return boxes %s into %s in hot path", pass.TypesInfo.TypeOf(r).String(), results.At(i).Type().String())
		}
	}
}

// boxes reports whether assigning expr to target converts a concrete
// value into an interface. Nil literals and values that are already
// interfaces do not box.
func boxes(info *types.Info, target types.Type, expr ast.Expr) bool {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return false
	}
	et := info.TypeOf(expr)
	if et == nil || types.IsInterface(et.Underlying()) {
		return false
	}
	if b, ok := et.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
