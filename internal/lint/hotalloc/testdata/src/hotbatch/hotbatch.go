// Package hotbatch exercises the hotalloc analyzer on the batched
// lockstep shape: stepChunk is the per-lane hot root and must report
// failures as integer status codes, with all error rendering in the
// unmarked frontier loop (runBatch) outside the hot closure. A chunk
// loop that renders its own errors (badChunk) is flagged.
package hotbatch

// status codes a hot chunk loop may return; rendering them into
// errors happens outside the hot closure.
const (
	laneOK = iota
	laneStalled
)

// Lane is one pipeline's pre-allocated state.
type Lane struct {
	cycle    uint64
	frontier uint64
	commits  uint64
	done     bool
}

// stepChunk steps the lane to the frontier, returning a status code:
// the hot loop of the batched engine.
//
//civet:hotpath
func (l *Lane) stepChunk() int {
	for l.cycle < l.frontier {
		l.cycle++
		l.tick()
		if l.commits == 0 && l.cycle > 1<<19 {
			return laneStalled
		}
	}
	return laneOK
}

// tick is hot through stepChunk's closure: indexed state updates only.
func (l *Lane) tick() {
	l.commits++
	if l.commits == l.frontier {
		l.done = true
	}
}

// runBatch is the frontier loop: unmarked, so it may render status
// codes into errors (boxing, formatting) without being flagged.
func runBatch(lanes []*Lane) []any {
	var errs []any
	for _, l := range lanes {
		if st := l.stepChunk(); st != laneOK {
			errs = append(errs, st)
		}
	}
	return errs
}

// badChunk is the anti-pattern: a hot chunk loop that hands back its
// failure detail as a boxed value instead of a bare status code.
//
//civet:hotpath
func (l *Lane) badChunk() (int, any) {
	for l.cycle < l.frontier {
		l.cycle++
		if l.commits == 0 {
			return laneStalled, l.cycle // want "return boxes uint64 into any in hot path"
		}
	}
	return laneOK, nil
}
