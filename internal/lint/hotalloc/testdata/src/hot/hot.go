// Package hot exercises the hotalloc analyzer: tick is a hotpath
// root, helper is in its transitive closure, slowPath is pruned by
// coldpath, and cool is unreachable from any root, so only the first
// two are checked.
package hot

// Core is a stand-in for the simulator processor state.
type Core struct {
	buf     []int
	scratch [8]int
	sink    any
	n       int
}

// tick is the per-cycle entry point.
//
//civet:hotpath
func (c *Core) tick() {
	m := make(map[int]int) // want "make.map. allocates in hot path"
	_ = m
	s := make([]int, 8) // want "allocates in hot path; hoist the buffer"
	_ = s
	p := new(Core) // want "new.T. allocates in hot path"
	_ = p
	c.helper(c.n)
	c.slowPath()
	var local []int
	local = append(local, c.n) // want "append to function-local slice local"
	_ = local
	c.buf = append(c.buf, c.n) // hoisted destination: amortized, legal
}

// helper is hot because tick calls it.
func (c *Core) helper(v int) {
	c.sink = v                       // want "assignment boxes int into any in hot path"
	f := func() int { return v * 2 } // want "func literal captures enclosing variables"
	_ = f()
	ch := make(chan int, 1) // want "make.chan. allocates in hot path"
	_ = ch
}

// slowPath allocates freely: it is the error/growth path, excluded
// from the hot closure.
//
//civet:coldpath
func (c *Core) slowPath() {
	c.buf = make([]int, 2*len(c.buf)+1)
}

// cool is not reachable from a hotpath root, so nothing here is
// flagged.
func (c *Core) cool() {
	m := map[string][]byte{"k": []byte("v")}
	_ = m
	c.sink = len(m)
}
