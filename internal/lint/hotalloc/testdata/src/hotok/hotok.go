// Package hotok holds hotalloc fixtures that must pass: a hot path
// written the way the simulator's real one is (hoisted state, indexed
// writes, integer arithmetic) plus an explicitly justified allow.
package hotok

// Ring is pooled, pre-sized state.
type Ring struct {
	slots []int
	head  int
	stats struct{ ticks uint64 }
}

// step is allocation-free: indexed writes into hoisted storage.
//
//civet:hotpath
func (r *Ring) step(v int) {
	r.slots[r.head&(len(r.slots)-1)] = v
	r.head++
	r.stats.ticks++
	r.note(v)
	r.filter(v)
	if r.head < 0 {
		panic(anyify("ring corrupt", r.head)) // panic args never box steady state
	}
}

// filter uses the pooled double-buffer idiom: the locals reslice
// hoisted backing arrays, so appends amortize to zero allocations.
func (r *Ring) filter(v int) {
	keep := r.slots[:0]
	for _, s := range r.slots {
		if s != v {
			keep = append(keep, s)
		}
	}
	q := r.slots
	q = append(q, v)
	out := q[:0] // reslice of a hoisted local is still hoisted
	out = append(out, v)
	u := append(r.slots[:0], out...) // seeding an append from hoisted backing
	u = append(u, v)
	r.slots = q[:len(keep)]
}

// anyify is cold formatting machinery for the panic above.
//
//civet:coldpath
func anyify(msg string, v int) string { return msg }

// note carries a documented suppression: the boxed value feeds a
// debug hook that is nil in production runs.
func (r *Ring) note(v int) {
	var hook func(any)
	if hook != nil {
		//civet:allow hotalloc debug hook is nil in production; boxing only happens under the race-test harness
		hook(v)
	}
}
