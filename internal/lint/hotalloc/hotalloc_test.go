package hotalloc_test

import (
	"testing"

	"civect/internal/lint/hotalloc"
	"civect/internal/lint/linttest"
)

// TestHotalloc pins the analyzer: hot exercises every flagged
// construct plus the hotpath/coldpath closure rules; hotok is an
// allocation-free hot path (and a documented allow) that must pass;
// hotbatch pins the batched lockstep shape — status codes out of the
// hot chunk loop, error rendering in the unmarked frontier loop.
func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata", hotalloc.Analyzer, "hot", "hotok", "hotbatch")
}
