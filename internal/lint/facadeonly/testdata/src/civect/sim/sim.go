// Package sim is a fixture stub standing in for the civect/sim
// façade.
package sim

// New is a placeholder so importing fixtures have something to call.
func New() int { return 0 }

// NewSet stands in for the batched set API entry point: multi-config
// sweeps are reached through the façade, never by importing
// internal/core's BatchProc.
func NewSet() int { return 0 }
