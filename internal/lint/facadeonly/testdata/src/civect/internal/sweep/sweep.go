// Package sweep is a fixture stub standing in for
// civect/internal/sweep.
package sweep

// Plan is a placeholder so importing fixtures have something to call.
func Plan() int { return 0 }
