// Package sample is a fixture stub standing in for
// civect/internal/sample.
package sample

// Collect is a placeholder so importing fixtures have something to
// call.
func Collect() int { return 0 }
