// Package core is a fixture stub standing in for civect/internal/core.
package core

// Run is a placeholder so importing fixtures have something to call.
func Run() int { return 0 }
