// Package harness is a fixture stub standing in for
// civect/internal/harness.
package harness

// Tables is a placeholder so importing fixtures have something to call.
func Tables() string { return "" }
