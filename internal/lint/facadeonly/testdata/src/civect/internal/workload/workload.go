// Package workload is a fixture stub standing in for
// civect/internal/workload.
package workload

// Spec is a placeholder so importing fixtures have something to call.
func Spec() int { return 0 }
