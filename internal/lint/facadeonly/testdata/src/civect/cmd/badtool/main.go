// Package main is a facadeonly fixture: a command that reaches past
// the façade, which must be flagged.
package main

import (
	"civect/internal/core" // want "civect/cmd/badtool imports civect/internal/core"
	"civect/sim"
)

func main() {
	_ = core.Run()
	_ = sim.New()
}
