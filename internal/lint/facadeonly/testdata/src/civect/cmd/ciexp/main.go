// Package main is a facadeonly fixture: ciexp's allowlisted
// harness/sweep imports must pass, and its sim imports — the session
// and batched-set entry points alike — are the façade itself.
package main

import (
	"civect/internal/harness"
	"civect/internal/sweep"
	"civect/sim"
)

func main() {
	_ = harness.Tables()
	_ = sweep.Plan()
	_ = sim.New()
	_ = sim.NewSet()
}
