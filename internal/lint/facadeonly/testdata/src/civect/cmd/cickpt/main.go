// Package main is a facadeonly fixture: cickpt's allowlisted
// sample/workload imports (the profile subcommand's offline analysis)
// must pass, while everything that simulates goes through sim.
package main

import (
	"civect/internal/core" // want "civect/cmd/cickpt imports civect/internal/core"
	"civect/internal/sample"
	"civect/internal/workload"
	"civect/sim"
)

func main() {
	_ = sample.Collect()
	_ = workload.Spec()
	_ = sim.New()
	_ = core.Run()
}
