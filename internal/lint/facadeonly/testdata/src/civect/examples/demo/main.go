// Package main is a facadeonly fixture: examples get no allowlist
// entries, so any internal import — even an allowlisted-for-ciexp one
// — must be flagged; a suppressed second import shows //civet:allow
// working.
package main

import (
	"civect/internal/harness" // want "civect/examples/demo imports civect/internal/harness"

	//civet:allow facadeonly transitional import while the example migrates to sim.Workloads
	"civect/internal/sweep"
	"civect/sim"
)

func main() {
	_ = harness.Tables()
	_ = sweep.Plan()
	_ = sim.New()
}
