package facadeonly_test

import (
	"testing"

	"civect/internal/lint/facadeonly"
	"civect/internal/lint/linttest"
)

// TestFacadeonly pins the analyzer on fixture packages shaped like
// the real tree: badtool reaches past the façade (flagged), ciexp
// uses exactly its allowlisted imports (clean), and demo shows that
// examples get no allowlist plus a working //civet:allow.
func TestFacadeonly(t *testing.T) {
	linttest.Run(t, "testdata", facadeonly.Analyzer,
		"civect/cmd/badtool", "civect/cmd/ciexp", "civect/cmd/cickpt", "civect/examples/demo")
}

// TestViolation pins the predicate sim/apiguard_test.go wraps.
func TestViolation(t *testing.T) {
	cases := []struct {
		pkg, imp string
		want     bool
	}{
		{"civect/cmd/cisim", "civect/internal/core", true},
		{"civect/cmd/cisim", "civect/sim", false},
		{"civect/cmd/ciexp", "civect/internal/harness", false},
		{"civect/cmd/ciexp", "civect/internal/sweep", false},
		{"civect/cmd/ciexp", "civect/internal/core", true},
		{"civect/cmd/cimerge", "civect/internal/sweep", false},
		{"civect/cmd/cimerge", "civect/internal/harness", true},
		{"civect/cmd/cickpt", "civect/internal/sample", false},
		{"civect/cmd/cickpt", "civect/internal/workload", false},
		{"civect/cmd/cickpt", "civect/internal/ckpt", true},
		{"civect/examples/quickstart", "civect/internal/workload", true},
		{"civect/internal/harness", "civect/internal/core", false}, // not guarded
		{"civect/sim", "civect/internal/core", false},              // the façade itself
	}
	for _, c := range cases {
		if got := facadeonly.Violation(c.pkg, c.imp); got != c.want {
			t.Errorf("Violation(%q, %q) = %v, want %v", c.pkg, c.imp, got, c.want)
		}
	}
}
