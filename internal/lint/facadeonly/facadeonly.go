// Package facadeonly implements the civet facadeonly analyzer: the
// enforcement half of the "one supported API" contract. Nothing below
// the CLI layer constructs simulations outside civect/sim, so
// commands (cmd/...) and examples (examples/...) may not import
// civect/internal/... packages at all — except the explicit,
// documented allowlist entries for the experiment/sweep subsystem.
//
// The allowlist here is the single source of truth: the analyzer
// surfaces violations in-editor and on `go vet -vettool=civet`, and
// sim/apiguard_test.go wraps the same Violation predicate so the rule
// is also a plain test (the CI entry point).
package facadeonly

import (
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"civect/internal/lint/directive"
)

// Facade is the one import through which commands and examples reach
// the simulator.
const Facade = "civect/sim"

// InternalPrefix guards every internal package.
const InternalPrefix = "civect/internal/"

// GuardedPrefixes are the package-path prefixes the façade rule
// applies to.
var GuardedPrefixes = []string{"civect/cmd/", "civect/examples/"}

// Allowlist maps a guarded package path to the internal packages it
// may still import. The two exceptions speak to the experiment/sweep
// subsystem (tables, shard files), which itself runs its simulations
// through sim.
var Allowlist = map[string][]string{
	// cickpt's checkpoint/sampled-run/verify subcommands go through sim
	// like every other command; the exception covers the profile
	// subcommand, which inspects the BBV profiler and clustering plan
	// directly (offline analysis with no simulation to construct) and
	// needs the raw program + image the façade deliberately hides.
	"civect/cmd/cickpt":  {"civect/internal/sample", "civect/internal/workload"},
	"civect/cmd/ciexp":   {"civect/internal/harness", "civect/internal/sweep"},
	"civect/cmd/cimerge": {"civect/internal/sweep"},
	// ciserve is the simulation-as-a-service daemon: its HTTP, queueing
	// and drain machinery lives in internal/serve, which itself runs
	// every simulation through sim. The fault-injection plan parser
	// rides along for the -faults flag.
	"civect/cmd/ciserve": {"civect/internal/serve", "civect/internal/serve/faultinject"},
	// citrace records through sim like every other command; the
	// exception covers the journal reader/replay/diff side, which is
	// offline tooling with no simulation to construct.
	"civect/cmd/citrace": {"civect/internal/trace"},
	// civet is the lint suite's own driver, not a simulation command:
	// its imports are the analyzers, and it never constructs a
	// simulation at all.
	"civect/cmd/civet": {
		"civect/internal/lint/directive",
		"civect/internal/lint/facadeonly",
		"civect/internal/lint/hotalloc",
		"civect/internal/lint/mapdet",
		"civect/internal/lint/nodeterm",
	},
}

// Analyzer is the facadeonly analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "facadeonly",
	Doc:      "commands and examples must import civect/sim, not civect/internal/... (allowlisted sweep/harness imports excepted)",
	Requires: []*analysis.Analyzer{directive.Loader},
	Run:      run,
}

// Guarded reports whether the façade rule applies to pkgPath.
func Guarded(pkgPath string) bool {
	for _, p := range GuardedPrefixes {
		if strings.HasPrefix(pkgPath, p) {
			return true
		}
	}
	return false
}

// Violation reports whether a package at pkgPath importing importPath
// breaks the façade rule.
func Violation(pkgPath, importPath string) bool {
	if !Guarded(pkgPath) || !strings.HasPrefix(importPath, InternalPrefix) {
		return false
	}
	for _, allowed := range Allowlist[pkgPath] {
		if importPath == allowed {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) (any, error) {
	if !Guarded(pass.Pkg.Path()) {
		return nil, nil
	}
	ix := pass.ResultOf[directive.Loader].(*directive.Index)
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if Violation(pass.Pkg.Path(), path) {
				ix.Report(pass, imp.Pos(), "%s imports %s; commands and examples must use %s", pass.Pkg.Path(), path, Facade)
			}
		}
	}
	return nil, nil
}
