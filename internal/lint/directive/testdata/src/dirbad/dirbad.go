// Package dirbad holds malformed //civet: directives that the
// civetdir analyzer must flag.
package dirbad

// hotpath on a non-declaration comment is misplaced.
func misplaced() {
	//civet:hotpath // want "must appear in a function declaration's doc comment"
	_ = 1
}

//civet:hotpath extra words // want "//civet:hotpath takes no arguments"
func arguments() {}

func allows() {
	//civet:allow // want "needs an analyzer name and a reason"
	_ = 1
	//civet:allow wholerepo too broad // want "names unknown analyzer wholerepo"
	_ = 2
	//civet:allow mapdet // want "is missing its mandatory reason"
	_ = 3
}

//civet:frobnicate // want "unknown civet directive"
func unknownVerb() {}
