// Package dirok holds well-formed //civet: directives that must not
// be flagged.
package dirok

// tick is a hot root.
//
//civet:hotpath
func tick() {
	grow()
}

// grow is the pruned slow path.
//
//civet:coldpath
func grow() {
	//civet:allow hotalloc pool growth happens off the steady state
	_ = make([]int, 16)
}

//civet:allow nodeterm startup banner only; not table output
var banner = "civet"
