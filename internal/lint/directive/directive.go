// Package directive parses and validates the //civet: comment
// directives that the civet lint suite (internal/lint, cmd/civet)
// understands. It is the single source of truth for the directive
// grammar, shared by every analyzer:
//
//	//civet:hotpath
//	//civet:coldpath
//	//civet:allow <analyzer> <reason...>
//
// hotpath marks a function declaration (in its doc comment) as the
// root of a per-cycle hot path: the hotalloc analyzer treats the
// function and everything it statically calls within the package as
// allocation-free territory. coldpath, also a function-doc directive,
// prunes that traversal: a function marked cold (an error path, a
// pool-growth slow path) is excluded from the hot closure even when a
// hot function calls it.
//
// allow suppresses one analyzer's diagnostics on the directive's own
// line and on the line directly below it, so it can be written either
// trailing the offending statement or on its own line above it. The
// analyzer name must be one of the civet analyzers and the reason is
// mandatory — a suppression without a recorded justification is
// itself a lint error (reported by Analyzer in this package).
package directive

import (
	"go/ast"
	"go/token"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix introduces every civet directive comment.
const Prefix = "//civet:"

// AnalyzerNames lists the analyzers an allow directive may name.
// cmd/civet composes exactly this set (plus the directive validator
// itself, which cannot be suppressed).
var AnalyzerNames = []string{"facadeonly", "hotalloc", "mapdet", "nodeterm"}

// Allow is one parsed //civet:allow directive.
type Allow struct {
	Pos      token.Pos // position of the comment
	Analyzer string    // analyzer being suppressed
	Reason   string    // mandatory justification
	Line     int       // line the comment sits on
}

// Malformed is a directive that does not follow the grammar, with a
// human-readable explanation.
type Malformed struct {
	Pos token.Pos
	Msg string
}

// Index holds every civet directive found in one package, ready for
// the point queries analyzers make while walking the syntax.
type Index struct {
	fset *token.FileSet

	// allows maps filename -> line -> suppressions effective on that
	// line. An allow covers its own line and the next one.
	allows map[string]map[int][]Allow

	hot  map[*ast.FuncDecl]bool
	cold map[*ast.FuncDecl]bool

	malformed []Malformed
}

// Loader is a non-reporting analyzer whose result is the package's
// *Index. Every civet analyzer Requires it so the directives are
// parsed once per package, not once per analyzer.
var Loader = &analysis.Analyzer{
	Name:       "civetdirectiveloader",
	Doc:        "parses //civet: directives for the other civet analyzers (reports nothing itself)",
	Run:        func(pass *analysis.Pass) (any, error) { return buildIndex(pass), nil },
	ResultType: reflect.TypeOf((*Index)(nil)),
}

// Analyzer validates directive grammar: unknown verbs, allow lines
// naming unknown analyzers or missing their mandatory reason, and
// hotpath/coldpath markers that are not attached to a function
// declaration's doc comment.
var Analyzer = &analysis.Analyzer{
	Name:     "civetdir",
	Doc:      "checks that //civet: directives are well-formed (known verb, known analyzer, mandatory allow reason, hotpath on a function)",
	Requires: []*analysis.Analyzer{Loader},
	Run: func(pass *analysis.Pass) (any, error) {
		ix := pass.ResultOf[Loader].(*Index)
		for _, m := range ix.malformed {
			pass.Reportf(m.Pos, "%s", m.Msg)
		}
		return nil, nil
	},
}

// Hot reports whether fn carries a //civet:hotpath doc directive.
func (ix *Index) Hot(fn *ast.FuncDecl) bool { return ix.hot[fn] }

// Cold reports whether fn carries a //civet:coldpath doc directive.
func (ix *Index) Cold(fn *ast.FuncDecl) bool { return ix.cold[fn] }

// HotFuncs returns the hotpath-marked declarations in source order.
func (ix *Index) HotFuncs() []*ast.FuncDecl {
	fns := make([]*ast.FuncDecl, 0, len(ix.hot))
	for fn := range ix.hot {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// Allowed reports whether a diagnostic from the named analyzer at pos
// is suppressed by an in-scope //civet:allow directive.
func (ix *Index) Allowed(pos token.Pos, analyzer string) bool {
	p := ix.fset.Position(pos)
	for _, a := range ix.allows[p.Filename][p.Line] {
		if a.Analyzer == analyzer {
			return true
		}
	}
	return false
}

// Report emits a diagnostic through pass unless an allow directive
// for pass's analyzer covers pos. Analyzers call this instead of
// pass.Reportf so suppression semantics stay uniform.
func (ix *Index) Report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if ix.Allowed(pos, pass.Analyzer.Name) {
		return
	}
	pass.Reportf(pos, format, args...)
}

func buildIndex(pass *analysis.Pass) *Index {
	ix := &Index{
		fset:   pass.Fset,
		allows: make(map[string]map[int][]Allow),
		hot:    make(map[*ast.FuncDecl]bool),
		cold:   make(map[*ast.FuncDecl]bool),
	}
	known := make(map[string]bool, len(AnalyzerNames))
	for _, n := range AnalyzerNames {
		known[n] = true
	}

	for _, f := range pass.Files {
		// Doc-comment directives attach to function declarations;
		// remember which comments those are so stray hotpath markers
		// elsewhere can be reported as misplaced.
		funcDoc := make(map[*ast.Comment]*ast.FuncDecl)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Doc != nil {
				for _, c := range fn.Doc.List {
					funcDoc[c] = fn
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Prefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, Prefix)
				// A " //" starts trailing commentary (fixture want
				// comments, editorial asides): not part of the
				// directive.
				body, _, _ = strings.Cut(body, " //")
				verb, rest, _ := strings.Cut(body, " ")
				switch verb {
				case "hotpath", "coldpath":
					fn, attached := funcDoc[c]
					switch {
					case !attached:
						ix.addMalformed(c.Pos(), "//civet:"+verb+" must appear in a function declaration's doc comment")
					case strings.TrimSpace(rest) != "":
						ix.addMalformed(c.Pos(), "//civet:"+verb+" takes no arguments")
					case verb == "hotpath":
						ix.hot[fn] = true
					default:
						ix.cold[fn] = true
					}
				case "allow":
					name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
					switch {
					case name == "":
						ix.addMalformed(c.Pos(), "//civet:allow needs an analyzer name and a reason: //civet:allow <analyzer> <reason>")
					case !known[name]:
						ix.addMalformed(c.Pos(), "//civet:allow names unknown analyzer "+name+" (known: "+strings.Join(AnalyzerNames, ", ")+")")
					case strings.TrimSpace(reason) == "":
						ix.addMalformed(c.Pos(), "//civet:allow "+name+" is missing its mandatory reason")
					default:
						pos := ix.fset.Position(c.Pos())
						byLine := ix.allows[pos.Filename]
						if byLine == nil {
							byLine = make(map[int][]Allow)
							ix.allows[pos.Filename] = byLine
						}
						a := Allow{Pos: c.Pos(), Analyzer: name, Reason: strings.TrimSpace(reason), Line: pos.Line}
						byLine[pos.Line] = append(byLine[pos.Line], a)
						byLine[pos.Line+1] = append(byLine[pos.Line+1], a)
					}
				default:
					ix.addMalformed(c.Pos(), "unknown civet directive //civet:"+verb+" (known: hotpath, coldpath, allow)")
				}
			}
		}
	}
	return ix
}

func (ix *Index) addMalformed(pos token.Pos, msg string) {
	ix.malformed = append(ix.malformed, Malformed{Pos: pos, Msg: msg})
}
