package directive_test

import (
	"testing"

	"civect/internal/lint/directive"
	"civect/internal/lint/linttest"
)

// TestDirectiveGrammar pins the validator: dirbad holds every
// malformed shape (misplaced hotpath, arguments on hotpath, allow
// without analyzer/reason/known name, unknown verb) and dirok the
// legal ones.
func TestDirectiveGrammar(t *testing.T) {
	linttest.Run(t, "testdata", directive.Analyzer, "dirbad", "dirok")
}
