// Package nodeterm implements the civet nodeterm analyzer: it bans
// sources of run-to-run nondeterminism inside the packages whose
// outputs must be byte-identical across runs, shards and machines
// (internal/core, internal/ci, internal/sweep, internal/benchfmt,
// internal/sample, internal/ckpt by default; configurable with
// -nodeterm.pkgs).
//
// Flagged constructs:
//
//   - time.Now / time.Since / time.Until — wall-clock reads
//   - the package-global math/rand and math/rand/v2 sources
//     (rand.Intn and friends); explicitly seeded *rand.Rand values
//     created with rand.New are fine
//   - select statements with more than one communication case, which
//     resolve by goroutine scheduling order
//   - gob-encoding a map-bearing value (gob serializes map entries in
//     iteration order, unlike encoding/json which sorts keys)
//   - fmt verbs that render addresses (%p), which differ per process
//
// Test files are exempt: differential suites intentionally use seeded
// randomness and timers. Range-over-map ordering hazards are the
// mapdet analyzer's job.
//
// # Scope
//
// The -nodeterm.pkgs flag draws the determinism boundary. The default
// set is the simulator's reproducible core — internal/core,
// internal/ci, internal/sweep, internal/benchfmt, plus the sampled-
// simulation pipeline internal/sample (whose BBV projection and
// k-means clustering must pick identical simulation points on every
// machine) and the checkpoint container internal/ckpt (whose bytes are
// CRC-sealed and diffed across runs) — whose outputs must be
// byte-identical across runs, shards and machines. The service
// layer (civect/internal/serve and the ciserve daemon over it) is
// deliberately NOT in the set: timeouts, retry backoff, drain
// deadlines and selects racing client connections against timers are
// what a daemon is made of. Determinism of simulation *results* is
// unaffected — serve only orchestrates sessions through civect/sim,
// and its chaos test asserts byte-identical statistics under
// concurrency and fault injection. The fixtures under
// testdata/src/civect/internal/{serve,core} pin this boundary: the
// same constructs pass unflagged in serve and are diagnosed in core.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"civect/internal/lint/directive"
)

// DefaultPackages is the comma-separated package-path-prefix list the
// -nodeterm.pkgs flag defaults to: the simulator's deterministic core.
const DefaultPackages = "civect/internal/core,civect/internal/ci,civect/internal/sweep,civect/internal/benchfmt,civect/internal/sample,civect/internal/ckpt"

// Analyzer is the nodeterm analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "nodeterm",
	Doc:      "bans wall-clock reads, global rand, multi-way selects, gob map encoding and %p formatting in the deterministic simulator packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Loader},
	Run:      run,
}

func init() {
	Analyzer.Flags.String("pkgs", DefaultPackages,
		"comma-separated package path prefixes treated as deterministic")
}

func run(pass *analysis.Pass) (any, error) {
	if !deterministic(pass.Pkg.Path(), pass.Analyzer.Flags.Lookup("pkgs").Value.String()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[directive.Loader].(*directive.Index)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.SelectStmt)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if inTestFile(pass, n) {
			return
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			checkSelect(pass, ix, n)
		case *ast.CallExpr:
			checkCall(pass, ix, n)
		}
	})
	return nil, nil
}

func deterministic(pkgPath, prefixes string) bool {
	for _, p := range strings.Split(prefixes, ",") {
		p = strings.TrimSpace(p)
		if p != "" && (pkgPath == p || strings.HasPrefix(pkgPath, p+"/")) {
			return true
		}
	}
	return false
}

func inTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

func checkSelect(pass *analysis.Pass, ix *directive.Index, sel *ast.SelectStmt) {
	comms := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comms++
		}
	}
	if comms > 1 {
		ix.Report(pass, sel.Pos(), "select with %d communication cases resolves by goroutine scheduling order; deterministic packages must not race channels", comms)
	}
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// backed by the shared, OS-seeded source. Constructors are excluded:
// rand.New(rand.NewSource(seed)) is the deterministic idiom.
var globalRandFuncs = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true, "Int": true,
	"Int31": true, "Int31n": true, "Int63": true, "Int63n": true, "Intn": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"IntN": true, "N": true, "NormFloat64": true, "Perm": true,
	"Read": true, "Seed": true, "Shuffle": true, "Uint32": true,
	"Uint32N": true, "Uint64": true, "Uint64N": true, "UintN": true,
}

func checkCall(pass *analysis.Pass, ix *directive.Index, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if pkg, ok := packageOf(pass, sel); ok {
		switch pkg {
		case "time":
			switch name {
			case "Now", "Since", "Until":
				ix.Report(pass, call.Pos(), "time.%s reads the wall clock; deterministic packages must take time as an input", name)
			}
		case "math/rand", "math/rand/v2":
			if globalRandFuncs[name] {
				ix.Report(pass, call.Pos(), "rand.%s uses the package-global source; use an explicitly seeded rand.New(...) instead", name)
			}
		}
		checkPointerVerb(pass, ix, pkg, name, call)
		return
	}
	checkGobEncode(pass, ix, sel, call)
}

// checkPointerVerb flags fmt format strings containing %p: rendered
// addresses differ between processes even for identical runs.
func checkPointerVerb(pass *analysis.Pass, ix *directive.Index, pkg, name string, call *ast.CallExpr) {
	if pkg != "fmt" || !strings.Contains(name, "rintf") { // Printf, Fprintf, Sprintf, Appendf
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.BasicLit)
		if !ok {
			continue
		}
		if strings.Contains(lit.Value, "%p") {
			ix.Report(pass, lit.Pos(), "%%p formats a memory address, which differs per process; print a stable identifier instead")
		}
		break // only the format string matters; it is the first literal
	}
}

// checkGobEncode flags (*gob.Encoder).Encode of a value whose static
// type is or directly contains a map.
func checkGobEncode(pass *analysis.Pass, ix *directive.Index, sel *ast.SelectorExpr, call *ast.CallExpr) {
	if sel.Sel.Name != "Encode" || len(call.Args) != 1 {
		return
	}
	rt := pass.TypesInfo.TypeOf(sel.X)
	if rt == nil || !isGobEncoder(rt) {
		return
	}
	if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && containsMap(at) {
		ix.Report(pass, call.Pos(), "gob encodes map entries in iteration order, so this Encode is not byte-reproducible; sort into a slice first")
	}
}

func isGobEncoder(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Encoder" && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/gob"
}

// containsMap reports whether t is a map, a pointer to one, or a
// struct with a direct map-typed field (one level deep — the common
// marshaling shapes).
func containsMap(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Map:
		return true
	case *types.Pointer:
		return containsMap(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if _, ok := u.Field(i).Type().Underlying().(*types.Map); ok {
				return true
			}
		}
	}
	return false
}

func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
