package nodeterm_test

import (
	"testing"

	"civect/internal/lint/linttest"
	"civect/internal/lint/nodeterm"
)

// TestNodeterm pins the analyzer. The -nodeterm.pkgs flag is pointed
// at the first two fixtures: ndfix must be diagnosed, ndok holds the
// deterministic idioms (seeded rand, json, single-case select) and an
// allow, and ndskip proves packages outside the configured set are
// ignored entirely.
func TestNodeterm(t *testing.T) {
	f := nodeterm.Analyzer.Flags.Lookup("pkgs")
	old := f.Value.String()
	if err := f.Value.Set("ndfix,ndok"); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(old)
	linttest.Run(t, "testdata", nodeterm.Analyzer, "ndfix", "ndok", "ndskip")
}

// TestDefaultPackages pins the shipped deterministic set: the
// simulator core and everything whose bytes must reproduce — including
// the sampled-simulation pipeline (internal/sample) and the checkpoint
// container (internal/ckpt). The service layer (civect/internal/serve)
// is deliberately absent — daemons live on the wall clock.
func TestDefaultPackages(t *testing.T) {
	want := "civect/internal/core,civect/internal/ci,civect/internal/sweep,civect/internal/benchfmt,civect/internal/sample,civect/internal/ckpt"
	if nodeterm.DefaultPackages != want {
		t.Fatalf("DefaultPackages = %q, want %q", nodeterm.DefaultPackages, want)
	}
}

// TestDefaultScopeExcludesServe proves the shipped scope boundary with
// fixtures at the real package paths: under the DEFAULT -nodeterm.pkgs
// value, civect/internal/serve uses time.Since and multi-way selects
// without a single diagnostic (its fixture carries no want comments),
// while the identical constructs in civect/internal/core are flagged.
func TestDefaultScopeExcludesServe(t *testing.T) {
	f := nodeterm.Analyzer.Flags.Lookup("pkgs")
	old := f.Value.String()
	if err := f.Value.Set(nodeterm.DefaultPackages); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(old)
	linttest.Run(t, "testdata", nodeterm.Analyzer,
		"civect/internal/serve", "civect/internal/core", "civect/internal/sample")
}
