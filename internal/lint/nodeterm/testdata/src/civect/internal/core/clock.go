// Package core mirrors civect/internal/core's position in the
// repository: inside the nodeterm default package set, where the same
// constructs the serve fixture uses freely are diagnosed.
package core

import "time"

// CycleStamp reads the wall clock inside the deterministic core.
func CycleStamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Race resolves two ready channels by scheduler whim.
func Race(a, b chan int) int {
	select { // want "select with 2 communication cases resolves by goroutine scheduling order"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
