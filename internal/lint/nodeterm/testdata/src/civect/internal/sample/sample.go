// Package sample mirrors civect/internal/sample's position in the
// repository: the sampled-simulation pipeline is inside the nodeterm
// default package set, because its BBV projection and k-means
// clustering must pick identical simulation points on every machine.
package sample

import (
	"math/rand"
	"time"
)

// Project seeds the random projection from the wall clock and the
// global source — both diagnosed inside the deterministic set.
func Project() float64 {
	_ = time.Now()        // want "time.Now reads the wall clock"
	return rand.Float64() // want "rand.Float64 uses the package-global source"
}
