// Package serve mirrors civect/internal/serve's position in the
// repository: the simulation-as-a-service daemon sits deliberately
// OUTSIDE the nodeterm default package set, because a server is
// wall-clock territory by nature — timeouts, retry backoff, drain
// deadlines and racing selects over client connections are its job.
// Nothing here carries a want comment: under the default -nodeterm.pkgs
// every one of these constructs must pass unflagged.
package serve

import "time"

// QueueWait measures how long a job sat in the queue — a wall-clock
// read nodeterm would ban in the simulator core.
func QueueWait(enqueued time.Time) time.Duration {
	return time.Since(enqueued)
}

// AwaitDrain races workers against a deadline — a multi-way select
// nodeterm would ban in the simulator core.
func AwaitDrain(done chan struct{}, deadline chan time.Time) bool {
	select {
	case <-done:
		return true
	case <-deadline:
		return false
	}
}
