// Package ndskip is outside the configured deterministic package
// set, so nothing here is flagged even though it reads the wall
// clock: nondeterminism is legal in CLI/logging layers.
package ndskip

import "time"

// Uptime reads the wall clock freely.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
