// Package ndfix holds nodeterm fixtures that must produce
// diagnostics; the test points -nodeterm.pkgs at this package so it
// counts as deterministic territory.
package ndfix

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"time"
)

// Sample shows every banned wall-clock and global-rand call.
func Sample() (int, time.Duration) {
	start := time.Now()                // want "time.Now reads the wall clock"
	n := rand.Intn(10)                 // want "rand.Intn uses the package-global source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle uses the package-global source"
	d := time.Since(start)             // want "time.Since reads the wall clock"
	return n, d
}

// Race resolves two ready channels by scheduler whim.
func Race(a, b chan int) int {
	select { // want "select with 2 communication cases resolves by goroutine scheduling order"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// DumpTables gob-encodes a map, which serializes entries in iteration
// order.
func DumpTables(tables map[string]uint64) ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(tables); err != nil { // want "gob encodes map entries in iteration order"
		return nil, err
	}
	return buf.Bytes(), nil
}

// Describe renders a pointer address into supposedly stable output.
func Describe(v *int) string {
	return fmt.Sprintf("entry@%p", v) // want "formats a memory address"
}
