// Package ndok holds nodeterm fixtures that must pass: the
// deterministic idioms for randomness, channels and serialization,
// plus a documented allow for an intentional wall-clock read.
package ndok

import (
	"encoding/json"
	"math/rand"
	"time"
)

// SeededProgram uses the deterministic rand idiom: an explicit
// source, reproducible for a given seed.
func SeededProgram(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(1024)
	}
	return out
}

// SingleRecv has one communication case: no scheduling race.
func SingleRecv(c chan int) int {
	select {
	case v := <-c:
		return v
	default:
		return 0
	}
}

// MarshalTables uses encoding/json, which sorts map keys, so the
// bytes are reproducible.
func MarshalTables(tables map[string]uint64) ([]byte, error) {
	return json.Marshal(tables)
}

// Stamp is the one sanctioned wall-clock read: a log header outside
// any table path, recorded as such.
func Stamp() time.Time {
	//civet:allow nodeterm log header timestamp; never feeds table or stats output
	return time.Now()
}
