// Package fixed holds mapdet fixtures that must pass: the sorted-keys
// rewrite of the PR 5 HarmonicMeanIPC bug and the other legal shapes.
package fixed

import "sort"

// Stats is the minimal shape of core.Stats the fixture needs.
type Stats struct {
	Instrs int
	Cycles int
}

// IPC mirrors core.Stats.IPC.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// harmonicMeanIPC is the accepted PR 5 fix: accumulate over sorted
// keys so the float sum is order-stable.
func harmonicMeanIPC(stats map[string]*Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var invSum float64
	for _, name := range sortedNames(stats) {
		ipc := stats[name].IPC()
		if ipc <= 0 {
			return 0
		}
		invSum += 1 / ipc
	}
	return float64(len(stats)) / invSum
}

// sortedNames is the fix's helper: the append inside the map range is
// fine because the slice is sorted before anyone iterates it.
func sortedNames(m map[string]*Stats) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// countEntries accumulates integers, which is exact and commutative,
// so map order cannot change the result.
func countEntries(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localAppend accumulates into a loop-local, invisible after the
// iteration ends.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		grown := append([]int(nil), vs...)
		n += len(grown)
	}
	return n
}
