// Package flagged holds mapdet fixtures that must produce
// diagnostics. harmonicMeanIPC is a verbatim reproduction of the
// HarmonicMeanIPC map-iteration-order bug fixed in PR 5.
package flagged

import "fmt"

// Stats is the minimal shape of core.Stats the bug needs.
type Stats struct {
	Instrs int
	Cycles int
}

// IPC mirrors core.Stats.IPC.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// harmonicMeanIPC is the PR 5 bug shape: summing 1/IPC in map
// iteration order makes the low bits of the result — and the rendered
// sign of a zero gain — differ run to run.
func harmonicMeanIPC(stats map[string]*Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var invSum float64
	for _, s := range stats {
		ipc := s.IPC()
		if ipc <= 0 {
			return 0
		}
		invSum += 1 / ipc // want "floating-point accumulation inside range over map"
	}
	return float64(len(stats)) / invSum
}

// longhand accumulation is the same bug spelled without +=.
func meanLatency(lat map[string]float64) float64 {
	var sum float64
	for _, v := range lat {
		sum = sum + v // want "floating-point accumulation inside range over map"
	}
	return sum / float64(len(lat))
}

// renderRows builds output bytes in map iteration order two ways.
func renderRows(rows map[string]int) string {
	var out string
	for name, v := range rows {
		out += name          // want "string concatenation inside range over map"
		fmt.Println(name, v) // want "fmt.Println inside range over map writes output"
	}
	return out
}

// collectUnsorted appends into an outer slice and never sorts it, so
// callers observe map order.
func collectUnsorted(m map[string]int) []string {
	var names []string
	for n := range m {
		names = append(names, n) // want "append to names inside range over map"
	}
	return names
}
