// Package mapdet implements the civet mapdet analyzer: it flags
// `range` loops over maps whose bodies feed an order-sensitive sink —
// floating-point accumulation, string building, formatted output, or
// a slice append that is never sorted afterwards — because Go's map
// iteration order is deliberately randomized, so such loops produce
// different bytes on different runs.
//
// This is exactly the shape of the HarmonicMeanIPC bug fixed in PR 5:
// summing 1/IPC in map iteration order made a zero gain render as
// +0.0% or -0.0% depending on the process. The accepted fix — append
// the keys, sort them, then range over the sorted slice — is
// recognized and not flagged: an append inside a map range is fine
// when the accumulated slice is passed to a sort call after the loop.
package mapdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"civect/internal/lint/directive"
)

// Analyzer is the mapdet analysis.
var Analyzer = &analysis.Analyzer{
	Name:     "mapdet",
	Doc:      "flags order-sensitive accumulation (float sums, string/output building, unsorted appends) inside range-over-map loops, which break byte-reproducible output",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Loader},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ix := pass.ResultOf[directive.Loader].(*directive.Index)

	// Walk per function declaration so append candidates inside a map
	// range can be checked against sort calls later in the same
	// function.
	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil {
			return
		}
		checkFunc(pass, ix, fn)
	})
	return nil, nil
}

// appendCandidate records `dst = append(dst, ...)` seen inside a map
// range; it is a violation unless dst is sorted after the loop ends.
type appendCandidate struct {
	obj     types.Object
	pos     token.Pos
	loopEnd token.Pos
}

func checkFunc(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl) {
	var candidates []appendCandidate

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		candidates = append(candidates, checkMapRangeBody(pass, ix, rs)...)
		return true
	})

	if len(candidates) == 0 {
		return
	}
	sorted := sortedObjects(pass, fn)
	for _, c := range candidates {
		if sortedAfter(sorted, c.obj, c.loopEnd) {
			continue
		}
		ix.Report(pass, c.pos, "append to %s inside range over map accumulates in map iteration order and is never sorted afterwards; sort before use", c.obj.Name())
	}
}

// checkMapRangeBody reports the always-wrong sinks (float/string
// accumulation, output writes) and returns the append candidates for
// the post-loop sort check.
func checkMapRangeBody(pass *analysis.Pass, ix *directive.Index, rs *ast.RangeStmt) []appendCandidate {
	var candidates []appendCandidate
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested range gets its own visit from checkFunc's walk;
			// don't double-report its body here.
			if n != rs {
				return false
			}
		case *ast.AssignStmt:
			candidates = append(candidates, checkAssign(pass, ix, rs, n)...)
		case *ast.CallExpr:
			if name, ok := outputCall(pass, n); ok {
				ix.Report(pass, n.Pos(), "%s inside range over map writes output in map iteration order; iterate sorted keys instead", name)
			}
		}
		return true
	})
	return candidates
}

func checkAssign(pass *analysis.Pass, ix *directive.Index, rs *ast.RangeStmt, as *ast.AssignStmt) []appendCandidate {
	var candidates []appendCandidate
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			reportAccum(pass, ix, lhs, as.Pos())
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if obj := outerObject(pass, rs, as.Lhs[i]); obj != nil {
					candidates = append(candidates, appendCandidate{obj: obj, pos: as.Pos(), loopEnd: rs.End()})
				}
				continue
			}
			// x = x + dy spelled out longhand is the same accumulation
			// as x += dy.
			if bin, ok := rhs.(*ast.BinaryExpr); ok && mentionsLHS(pass, bin, as.Lhs[i]) {
				switch bin.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					reportAccum(pass, ix, as.Lhs[i], as.Pos())
				}
			}
		}
	}
	return candidates
}

// reportAccum flags order-sensitive compound accumulation: float and
// complex arithmetic is non-associative, and string building bakes
// the iteration order into the bytes. Integer accumulation is exact
// and commutative, so it stays legal.
func reportAccum(pass *analysis.Pass, ix *directive.Index, lhs ast.Expr, pos token.Pos) {
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch {
	case b.Info()&types.IsFloat != 0, b.Info()&types.IsComplex != 0:
		ix.Report(pass, pos, "floating-point accumulation inside range over map depends on map iteration order; iterate sorted keys instead")
	case b.Info()&types.IsString != 0:
		ix.Report(pass, pos, "string concatenation inside range over map builds output in map iteration order; iterate sorted keys instead")
	}
}

// outerObject resolves lhs to a variable declared outside the range
// statement (accumulating into a loop-local is invisible after the
// loop, hence harmless).
func outerObject(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil
	}
	return obj
}

func mentionsLHS(pass *analysis.Pass, e ast.Expr, lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if use, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(use) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputCall reports whether call writes formatted output somewhere
// order matters: the fmt print family, io.WriteString, or a Write*
// method (strings.Builder, bytes.Buffer, io.Writer, tabwriter...).
func outputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkg, ok := packageOf(pass, sel); ok {
		switch pkg {
		case "fmt":
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, true
			}
		case "io":
			if name == "WriteString" {
				return "io.WriteString", true
			}
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "(" + types.ExprString(sel.X) + ")." + name, true
	}
	return "", false
}

func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// sortCall is one sort invocation found in a function, with the
// object it sorts (when statically resolvable).
type sortCall struct {
	obj types.Object
	pos token.Pos
}

// sortedObjects finds every `sort.X(dst...)` / `slices.SortX(dst...)`
// call in fn and the slice object it sorts.
func sortedObjects(pass *analysis.Pass, fn *ast.FuncDecl) []sortCall {
	var calls []sortCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := packageOf(pass, sel)
		if !ok {
			return true
		}
		isSort := false
		switch pkg {
		case "sort":
			switch sel.Sel.Name {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				isSort = true
			}
		case "slices":
			switch sel.Sel.Name {
			case "Sort", "SortFunc", "SortStableFunc":
				isSort = true
			}
		}
		if !isSort {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				calls = append(calls, sortCall{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	return calls
}

func sortedAfter(sorted []sortCall, obj types.Object, after token.Pos) bool {
	for _, s := range sorted {
		if s.obj == obj && s.pos >= after {
			return true
		}
	}
	return false
}
