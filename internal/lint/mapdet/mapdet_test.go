package mapdet_test

import (
	"testing"

	"civect/internal/lint/linttest"
	"civect/internal/lint/mapdet"
)

// TestMapdet pins the analyzer on both fixture packages: flagged
// reproduces the PR 5 HarmonicMeanIPC map-order bug (and friends) and
// must be diagnosed; fixed is the sorted-keys rewrite and must pass
// clean.
func TestMapdet(t *testing.T) {
	linttest.Run(t, "testdata", mapdet.Analyzer, "flagged", "fixed")
}
