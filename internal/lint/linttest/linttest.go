// Package linttest is a self-contained analysistest-style harness for
// the civet analyzers. It loads fixture packages from a GOPATH-shaped
// testdata tree (testdata/src/<import/path>/*.go), type-checks them —
// resolving fixture-to-fixture imports within the tree and everything
// else from the standard library's source — runs an analyzer together
// with its Requires dependencies, and compares the diagnostics
// against `// want "regexp"` comments in the fixtures.
//
// It exists because x/tools' analysistest depends on go/packages,
// which is not part of the toolchain-vendored go/analysis subset this
// repo vendors; the subset it reimplements (expectation comments,
// dependency-ordered analyzer execution) is small and precise enough
// to pin the analyzers' behavior.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package below testdata/src and applies the
// analyzer, failing t on any mismatch between reported diagnostics
// and the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags := runAnalyzer(t, l, a, pkg)
		checkWants(t, l.fset, pkg, diags)
	}
}

type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	fset     *token.FileSet
	src      string // testdata/src root
	pkgs     map[string]*fixturePkg
	fallback types.Importer // std library, from source
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		src:      src,
		pkgs:     make(map[string]*fixturePkg),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture tree with a
// standard-library fallback, so fixtures can import both each other
// and real packages like sort or time.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(l.src, filepath.FromSlash(path)); dirExists(dir) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.fallback.Import(path)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{path: path, files: files, types: tpkg, info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// runAnalyzer applies a (and, recursively, its Requires) to pkg and
// returns a's diagnostics. Facts are unsupported: the civet analyzers
// are all package-local.
func runAnalyzer(t *testing.T, l *loader, a *analysis.Analyzer, pkg *fixturePkg) []analysis.Diagnostic {
	t.Helper()
	results := make(map[*analysis.Analyzer]any)
	var diags []analysis.Diagnostic
	var apply func(a *analysis.Analyzer) any
	apply = func(a *analysis.Analyzer) any {
		if res, ok := results[a]; ok {
			return res
		}
		if len(a.FactTypes) > 0 {
			t.Fatalf("linttest cannot drive analyzer %s: facts are unsupported", a.Name)
		}
		deps := make(map[*analysis.Analyzer]any, len(a.Requires))
		for _, dep := range a.Requires {
			deps[dep] = apply(dep)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pkg.files,
			Pkg:        pkg.types,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   deps,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s on %s: %v", a.Name, pkg.path, err)
		}
		results[a] = res
		return res
	}
	root := a
	var rootDiags []analysis.Diagnostic
	// Dependencies may Report through their own pass; only the root
	// analyzer's diagnostics count, so record the boundary.
	for _, dep := range root.Requires {
		apply(dep)
	}
	diags = nil
	apply(root)
	rootDiags = diags
	return rootDiags
}

// wantRx extracts the expectation patterns from a `// want ...`
// comment: a space-separated list of double-quoted Go strings, each a
// regexp one diagnostic on that line must match.
var wantRx = regexp.MustCompile(`//\s*want\s+(.*)$`)

var quotedRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	raw  string
}

func checkWants(t *testing.T, fset *token.FileSet, pkg *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []expectation
	for _, f := range pkg.files {
		name := fset.File(f.FileStart).Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, q := range quotedRx.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", name, line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, pat, err)
					}
					wants = append(wants, expectation{file: name, line: line, rx: rx, raw: pat})
				}
			}
		}
	}

	type got struct {
		file string
		line int
		msg  string
		used bool
	}
	var gots []got
	for _, d := range diags {
		p := fset.Position(d.Pos)
		gots = append(gots, got{file: p.Filename, line: p.Line, msg: d.Message})
	}

	for _, w := range wants {
		matched := false
		for i := range gots {
			g := &gots[i]
			if !g.used && g.file == w.file && g.line == w.line && w.rx.MatchString(g.msg) {
				g.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no diagnostic matching %q", relName(w.file), w.line, w.raw)
		}
	}
	for _, g := range gots {
		if !g.used {
			t.Errorf("%s:%d: unexpected diagnostic: %s", relName(g.file), g.line, g.msg)
		}
	}
}

func relName(name string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}
