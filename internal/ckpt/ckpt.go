// Package ckpt implements the CIVK checkpoint container: the versioned,
// CRC-protected envelope every civect checkpoint (full-machine processor
// state, emulator snapshots) is stored in, plus the flat little-endian
// encoder/decoder the state serializers are written against.
//
// The container mirrors the CIVT trace journal's robustness discipline:
// a magic number so foreign files fail immediately, an explicit format
// version so incompatible readers reject with a clear error instead of
// misparsing, a declared payload length so truncation is detected before
// decoding starts, and a CRC32 over header and payload so any flipped
// byte is caught. Decoding never panics on hostile input: every getter
// is bounds-checked and the first failure latches into the decoder's
// error state.
//
//	offset  size  field
//	0       4     magic "CIVK"
//	4       4     format version (little-endian uint32)
//	8       8     payload length (little-endian uint64)
//	16      n     payload
//	16+n    4     CRC32 (IEEE) over bytes [0, 16+n)
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a CIVK checkpoint container.
const Magic = "CIVK"

const (
	headerSize  = 16
	trailerSize = 4
)

// Encoder appends fixed-width little-endian primitives to a buffer. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U8 appends a single byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// I64 appends an int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 by its IEEE-754 bit pattern, so round-tripping
// is exact.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Tag appends a section marker. Decoders check tags with Decoder.Tag, so
// a serializer/deserializer mismatch fails at the section that drifted
// instead of misparsing everything after it.
func (e *Encoder) Tag(name string) { e.Str(name) }

// Decoder reads the primitives Encoder writes. The first malformed read
// latches an error; subsequent getters return zero values, so decode
// sequences can run to completion and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

// Fail latches a decoding error from a state deserializer that found a
// structurally valid but semantically impossible value (an out-of-range
// index, a geometry mismatch). The first latched error wins.
func (d *Decoder) Fail(format string, args ...any) { d.fail(format, args...) }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("payload truncated: need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U8 reads a single byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a bool. Any byte other than 0 or 1 is malformed.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("malformed bool at offset %d", d.off-1)
		return false
	}
}

// F64 reads a float64 written by Encoder.F64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if uint64(n) > uint64(d.Remaining()) {
		d.fail("string length %d exceeds remaining payload %d", n, d.Remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// Tag reads a section marker and fails unless it matches want.
func (d *Decoder) Tag(want string) {
	got := d.Str()
	if d.err == nil && got != want {
		d.fail("section marker mismatch: have %q, want %q", got, want)
	}
}

// Count reads a non-negative element count written by Encoder.Int and
// rejects counts that could not possibly fit in the remaining payload
// (each element costs at least one byte), so corrupt lengths fail here
// instead of driving a huge allocation.
func (d *Decoder) Count() int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > d.Remaining() {
		d.fail("element count %d invalid with %d bytes remaining", n, d.Remaining())
		return 0
	}
	return n
}

// Seal wraps payload in a CIVK container with the given format version.
func Seal(version uint32, payload []byte) []byte {
	out := make([]byte, 0, headerSize+len(payload)+trailerSize)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// Open validates a CIVK container — magic, declared length, CRC, then
// version — and returns its payload. The payload aliases data.
func Open(data []byte, wantVersion uint32) ([]byte, error) {
	if len(data) < headerSize+trailerSize {
		return nil, fmt.Errorf("ckpt: container truncated: %d bytes, need at least %d", len(data), headerSize+trailerSize)
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q (not a CIVK checkpoint)", data[:4])
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	plen := binary.LittleEndian.Uint64(data[8:16])
	want := uint64(len(data) - headerSize - trailerSize)
	if plen != want {
		return nil, fmt.Errorf("ckpt: container truncated: declares %d payload bytes, file holds %d", plen, want)
	}
	body := data[:headerSize+plen]
	sum := binary.LittleEndian.Uint32(data[len(data)-trailerSize:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("ckpt: CRC mismatch: computed %08x, stored %08x (corrupt checkpoint)", got, sum)
	}
	if version != wantVersion {
		return nil, fmt.Errorf("ckpt: format version %d not supported (want %d)", version, wantVersion)
	}
	return body[headerSize:], nil
}

// Version reports a container's declared format version without
// validating its body (inspection tooling).
func Version(data []byte) (uint32, error) {
	if len(data) < headerSize {
		return 0, fmt.Errorf("ckpt: container truncated: %d bytes, need at least %d", len(data), headerSize)
	}
	if string(data[:4]) != Magic {
		return 0, fmt.Errorf("ckpt: bad magic %q (not a CIVK checkpoint)", data[:4])
	}
	return binary.LittleEndian.Uint32(data[4:8]), nil
}

// WriteFile atomically writes a sealed container to path: the bytes land
// in a temporary file in the same directory which is renamed over the
// destination, so a crash mid-write never leaves a half-written
// checkpoint where a resume would find it.
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// ReadFile reads and validates a CIVK container from path.
func ReadFile(path string, wantVersion uint32) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return Open(data, wantVersion)
}
