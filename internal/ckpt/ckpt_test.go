package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func samplePayload(t *testing.T) []byte {
	t.Helper()
	var e Encoder
	e.Tag("sample")
	e.U64(0xdeadbeefcafef00d)
	e.I64(-42)
	e.Bool(true)
	e.F64(3.5)
	e.Str("hello, checkpoint")
	e.Int(7)
	return e.Bytes()
}

func TestRoundTrip(t *testing.T) {
	payload := samplePayload(t)
	sealed := Seal(3, payload)
	got, err := Open(sealed, 3)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch after round trip")
	}
	d := NewDecoder(got)
	d.Tag("sample")
	if v := d.U64(); v != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Bool(); !v {
		t.Errorf("Bool = false")
	}
	if v := d.F64(); v != 3.5 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.Str(); v != "hello, checkpoint" {
		t.Errorf("Str = %q", v)
	}
	if v := d.Int(); v != 7 {
		t.Errorf("Int = %d", v)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d undecoded bytes", d.Remaining())
	}
}

// TestTruncationEveryPrefix mirrors the trace-journal suite: every
// proper prefix of a sealed container must fail loudly, never decode.
func TestTruncationEveryPrefix(t *testing.T) {
	sealed := Seal(1, samplePayload(t))
	for n := 0; n < len(sealed); n++ {
		if _, err := Open(sealed[:n], 1); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(sealed))
		}
	}
}

// TestFlippedByteSweep flips every bit of every byte in turn; the CRC
// (or an earlier structural check) must reject each corruption.
func TestFlippedByteSweep(t *testing.T) {
	sealed := Seal(1, samplePayload(t))
	for i := range sealed {
		for bit := uint(0); bit < 8; bit++ {
			corrupt := bytes.Clone(sealed)
			corrupt[i] ^= 1 << bit
			if _, err := Open(corrupt, 1); err == nil {
				t.Fatalf("flipping bit %d of byte %d went undetected", bit, i)
			}
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	sealed := Seal(2, samplePayload(t))
	_, err := Open(sealed, 1)
	if err == nil {
		t.Fatalf("version 2 container accepted by version-1 reader")
	}
	if !strings.Contains(err.Error(), "version 2") || !strings.Contains(err.Error(), "want 1") {
		t.Fatalf("version mismatch error not clear: %v", err)
	}
	// The version probe, by contrast, reads it fine.
	if v, err := Version(sealed); err != nil || v != 2 {
		t.Fatalf("Version = %d, %v", v, err)
	}
}

func TestBadMagic(t *testing.T) {
	sealed := Seal(1, samplePayload(t))
	copy(sealed, "NOPE")
	if _, err := Open(sealed, 1); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected clearly: %v", err)
	}
}

// TestDecoderHostileInput drives the decoder over garbage: it must latch
// errors, never panic, and keep returning zero values.
func TestDecoderHostileInput(t *testing.T) {
	d := NewDecoder([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	if s := d.Str(); s != "" || d.Err() == nil {
		t.Fatalf("oversized string length accepted: %q, %v", s, d.Err())
	}
	// After the latch, every getter is a zero-valued no-op.
	if d.U64() != 0 || d.Bool() || d.Int() != 0 {
		t.Fatalf("getters returned non-zero after error latch")
	}

	d = NewDecoder([]byte{7})
	if d.Bool(); d.Err() == nil {
		t.Fatalf("malformed bool byte accepted")
	}

	d = NewDecoder(nil)
	d.Tag("x")
	if d.Err() == nil {
		t.Fatalf("tag read from empty payload succeeded")
	}

	var e Encoder
	e.Int(1 << 40)
	d = NewDecoder(e.Bytes())
	if d.Count(); d.Err() == nil {
		t.Fatalf("absurd element count accepted")
	}
}

func TestTagMismatch(t *testing.T) {
	var e Encoder
	e.Tag("srsmt")
	d := NewDecoder(e.Bytes())
	d.Tag("rename")
	if err := d.Err(); err == nil || !strings.Contains(err.Error(), "srsmt") {
		t.Fatalf("tag mismatch not reported clearly: %v", err)
	}
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.civk")
	payload := samplePayload(t)
	if err := WriteFile(path, Seal(1, payload)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path, 1)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch through file round trip")
	}
	// No stray temporaries left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries, want just the checkpoint", len(ents))
	}
}
