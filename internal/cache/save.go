package cache

import "civect/internal/ckpt"

// Checkpoint serialization. Caches are timing state — tags, LRU stamps,
// hit/miss counters — and all of it must round-trip exactly: a restored
// run's every future hit/miss decision, and therefore every latency,
// depends on it. State loads into an already-constructed cache (the
// configuration travels in the processor section of the checkpoint), so
// geometry is checked, not rebuilt.

// SaveState encodes the cache's lines, clock and statistics.
func (c *Cache) SaveState(e *ckpt.Encoder) {
	e.Tag("cache")
	e.Int(len(c.lines))
	for i := range c.lines {
		e.U64(c.lines[i].tag)
		e.Bool(c.lines[i].valid)
		e.Bool(c.lines[i].dirty)
		e.U64(c.lines[i].lru)
	}
	e.U64(c.clock)
	e.U64(c.Stats.Accesses)
	e.U64(c.Stats.Hits)
	e.U64(c.Stats.Misses)
}

// LoadState restores state saved from a cache with identical geometry.
func (c *Cache) LoadState(d *ckpt.Decoder) {
	d.Tag("cache")
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n != len(c.lines) {
		d.Fail("cache geometry mismatch: checkpoint has %d lines, cache has %d", n, len(c.lines))
		return
	}
	for i := range c.lines {
		c.lines[i].tag = d.U64()
		c.lines[i].valid = d.Bool()
		c.lines[i].dirty = d.Bool()
		c.lines[i].lru = d.U64()
	}
	c.clock = d.U64()
	c.Stats.Accesses = d.U64()
	c.Stats.Hits = d.U64()
	c.Stats.Misses = d.U64()
}

// SaveState encodes the hierarchy: its cycle cursor, in-flight misses,
// wide-bus line latches, and all four cache levels.
func (h *Hierarchy) SaveState(e *ckpt.Encoder) {
	e.Tag("hier")
	e.U64(h.cycle)
	e.Int(h.portsUsed)
	e.Int(len(h.missFreeAt))
	for _, t := range h.missFreeAt {
		e.U64(t)
	}
	e.Int(len(h.wideBuf))
	for i := range h.wideBuf {
		wb := &h.wideBuf[i]
		e.Bool(wb.valid)
		e.U64(wb.addr)
		e.Int(wb.served)
		e.U64(wb.readyAt)
		e.U64(wb.lru)
	}
	h.L1I.SaveState(e)
	h.L1D.SaveState(e)
	h.L2.SaveState(e)
	h.L3.SaveState(e)
}

// LoadState restores state saved from a hierarchy with identical
// configuration.
func (h *Hierarchy) LoadState(d *ckpt.Decoder) {
	d.Tag("hier")
	h.cycle = d.U64()
	h.portsUsed = d.Int()
	nmiss := d.Count()
	h.missFreeAt = h.missFreeAt[:0]
	for i := 0; i < nmiss; i++ {
		h.missFreeAt = append(h.missFreeAt, d.U64())
	}
	nwide := d.Int()
	if d.Err() != nil {
		return
	}
	if nwide != len(h.wideBuf) {
		d.Fail("wide-bus latch count mismatch: checkpoint has %d, hierarchy has %d", nwide, len(h.wideBuf))
		return
	}
	for i := range h.wideBuf {
		wb := &h.wideBuf[i]
		wb.valid = d.Bool()
		wb.addr = d.U64()
		wb.served = d.Int()
		wb.readyAt = d.U64()
		wb.lru = d.U64()
	}
	h.L1I.LoadState(d)
	h.L1D.LoadState(d)
	h.L2.LoadState(d)
	h.L3.LoadState(d)
}
