// Package cache models the memory hierarchy of Table 1: set-associative
// write-back caches with LRU replacement, a three-level data hierarchy
// (L1D / L2 / L3, with the L3 miss time standing in for main memory), a
// separate instruction cache, optional wide buses that return a whole
// cache line per access (§2.4.5), and a bounded number of outstanding L1
// misses (MSHRs).
//
// The caches are timing models: an access returns the latency in cycles
// and updates hit/miss/access counters. Data contents live in mem.Memory;
// the cache only tracks presence.
package cache

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line (block) size.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// HitLat is the access latency on a hit, in cycles.
	HitLat int
	// MissLat is the additional latency charged on a miss at this level
	// (the time to reach and return from the next level, as in Table 1's
	// flat "miss time" figures).
	MissLat int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Stats counts accesses at one cache level.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a single set-associative cache level. The ways of all sets
// live in one flat backing array (set s occupies lines[s*Assoc :
// (s+1)*Assoc]), so building a cache costs one allocation and lookups
// stay on one cache line per set.
type Cache struct {
	cfg      Config
	lines    []line
	clock    uint64
	shift    uint // log2(LineBytes)
	setShift uint // log2(set count)
	setMsk   uint64

	Stats Stats
}

// New builds a cache from cfg. The geometry must be a power-of-two
// line size and set count.
func New(cfg Config) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a positive power of two")
	}
	c := &Cache{
		cfg:    cfg,
		lines:  make([]line, nsets*cfg.Assoc),
		setMsk: uint64(nsets - 1),
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.shift++
	}
	for n := nsets; n > 1; n >>= 1 {
		c.setShift++
	}
	return c
}

// set returns the ways of the set holding addr's index.
func (c *Cache) set(set int) []line {
	return c.lines[set*c.cfg.Assoc : (set+1)*c.cfg.Assoc]
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	block := addr >> c.shift
	return int(block & c.setMsk), block >> c.setShift
}

// Lookup reports whether addr currently hits, without updating any state
// or statistics.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	lines := c.set(set)
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a read (write=false) or write (write=true) access to
// the line containing addr. It returns whether it hit and the latency in
// cycles. Misses allocate (write-allocate) and evict LRU.
func (c *Cache) Access(addr uint64, write bool) (hit bool, lat int) {
	c.clock++
	c.Stats.Accesses++
	set, tag := c.index(addr)
	lines := c.set(set)
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.clock
			if write {
				lines[i].dirty = true
			}
			c.Stats.Hits++
			return true, c.cfg.HitLat
		}
	}
	c.Stats.Misses++
	// Allocate: fill an invalid way if one exists, else evict LRU.
	victim := -1
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(lines); i++ {
			if lines[i].lru < lines[victim].lru {
				victim = i
			}
		}
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false, c.cfg.HitLat + c.cfg.MissLat
}

// LineAddr returns the address of the first byte of the line holding addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Flush invalidates every line (used between runs).
func (c *Cache) Flush() {
	clear(c.lines)
}
