package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{SizeBytes: 256, LineBytes: 32, Assoc: 2, HitLat: 1, MissLat: 6}
}

func TestGeometry(t *testing.T) {
	c := New(small())
	if got := c.Config().Sets(); got != 4 {
		t.Fatalf("sets = %d, want 4", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: 192, LineBytes: 32, Assoc: 2}, // 3 sets: non-power-of-two
		{SizeBytes: 256, LineBytes: 24, Assoc: 2}, // non-power-of-two line
		{SizeBytes: 0, LineBytes: 32, Assoc: 2},   // zero sets
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	hit, lat := c.Access(0x1000, false)
	if hit || lat != 7 {
		t.Errorf("cold access = (%v, %d), want (false, 7)", hit, lat)
	}
	hit, lat = c.Access(0x1000, false)
	if !hit || lat != 1 {
		t.Errorf("second access = (%v, %d), want (true, 1)", hit, lat)
	}
	// Same line, different word.
	hit, _ = c.Access(0x1018, false)
	if !hit {
		t.Error("same-line access should hit")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 4 sets, 2 ways, 32B lines; set stride = 128B
	// Three lines mapping to set 0: 0x000, 0x080, 0x100.
	c.Access(0x000, false)
	c.Access(0x080, false)
	c.Access(0x000, false) // touch 0x000 so 0x080 is LRU
	c.Access(0x100, false) // evicts 0x080
	if !c.Lookup(0x000) {
		t.Error("0x000 should still be resident")
	}
	if c.Lookup(0x080) {
		t.Error("0x080 should have been evicted (LRU)")
	}
	if !c.Lookup(0x100) {
		t.Error("0x100 should be resident")
	}
}

func TestLookupDoesNotTouch(t *testing.T) {
	c := New(small())
	c.Access(0x000, false)
	before := c.Stats
	c.Lookup(0x000)
	c.Lookup(0x999)
	if c.Stats != before {
		t.Error("Lookup must not update stats")
	}
}

func TestFlush(t *testing.T) {
	c := New(small())
	c.Access(0x0, false)
	c.Flush()
	if c.Lookup(0x0) {
		t.Error("flush should invalidate")
	}
}

func TestLineAddr(t *testing.T) {
	c := New(small())
	if got := c.LineAddr(0x1037); got != 0x1020 {
		t.Errorf("LineAddr = %#x, want 0x1020", got)
	}
}

// Property: hits + misses == accesses, and re-accessing the same address
// immediately always hits.
func TestStatsInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(small())
		for _, a := range addrs {
			c.Access(uint64(a), a%2 == 0)
			if hit, _ := c.Access(uint64(a), false); !hit {
				return false
			}
		}
		return c.Stats.Hits+c.Stats.Misses == c.Stats.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s = Stats{Accesses: 10, Hits: 7, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("miss rate = %v, want 0.3", got)
	}
}

func TestHierarchyDefaults(t *testing.T) {
	cfg := DefaultHierConfig()
	if cfg.L1D.Sets() != 1024 { // 64KB / (32B * 2)
		t.Errorf("L1D sets = %d, want 1024", cfg.L1D.Sets())
	}
	if cfg.L1I.Sets() != 512 { // 64KB / (64B * 2)
		t.Errorf("L1I sets = %d, want 512", cfg.L1I.Sets())
	}
	if cfg.L2.Sets() != 2048 { // 256KB / (32B * 4)
		t.Errorf("L2 sets = %d, want 2048", cfg.L2.Sets())
	}
	if cfg.L3.Sets() != 8192 { // 2MB / (64B * 4)
		t.Errorf("L3 sets = %d, want 8192", cfg.L3.Sets())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.BeginCycle(1)
	// Cold: misses L1 (1+6 charged via L2 walk), L2 (6+18), L3 (18+100).
	r := h.DataAccess(0x10000, false)
	if !r.OK || r.Hit {
		t.Fatalf("cold access = %+v", r)
	}
	// L1 hit lat 1 + L2 hit lat 6 + L3 (hit 18 + miss 100) = 125.
	if r.Lat != 125 {
		t.Errorf("cold latency = %d, want 125", r.Lat)
	}
	h.BeginCycle(200)
	r = h.DataAccess(0x10000, false)
	if !r.Hit || r.Lat != 1 {
		t.Errorf("warm access = %+v, want hit lat 1", r)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultHierConfig()
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	h.DataAccess(0x10000, false) // warm L2+L3
	// Evict from tiny... L1D is 64KB; conflict another line into same set.
	// L1D: 1024 sets * 32B = 32KB stride per way group.
	h.BeginCycle(2)
	h.DataAccess(0x10000+32768, false)
	h.BeginCycle(3)
	h.DataAccess(0x10000+65536, false) // 2-way: now 0x10000 evicted
	h.BeginCycle(4)
	r := h.DataAccess(0x10000, false)
	if r.Hit {
		t.Fatal("expected L1 miss after conflict eviction")
	}
	// L1 hit lat 1 + L2 hit 6 = 7 (L2 still holds the line).
	if r.Lat != 7 {
		t.Errorf("L2 hit latency = %d, want 7", r.Lat)
	}
}

func TestPortArbitration(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.DL1Ports = 1
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	if r := h.DataAccess(0x0, false); !r.OK {
		t.Fatal("first access should get the port")
	}
	if r := h.DataAccess(0x4000, false); r.OK {
		t.Fatal("second access should be rejected with 1 port")
	}
	h.BeginCycle(2)
	if r := h.DataAccess(0x4000, false); !r.OK {
		t.Fatal("port should be free next cycle")
	}

	cfg.DL1Ports = 2
	h2 := NewHierarchy(cfg)
	h2.BeginCycle(1)
	if !h2.DataAccess(0x0, false).OK || !h2.DataAccess(0x4000, false).OK {
		t.Fatal("two ports should allow two accesses")
	}
	if h2.DataAccess(0x8000, false).OK {
		t.Fatal("third access should be rejected with 2 ports")
	}
}

func TestWideBusCoalescing(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.WideBus = true
	cfg.DL1Ports = 1
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	r0 := h.DataAccess(0x100, false)
	if !r0.OK || r0.Coalesced {
		t.Fatalf("first wide access = %+v", r0)
	}
	// Same 32B line (0x100..0x11F): three more loads ride the latched
	// line, in the same cycle or later ones.
	for i := 1; i < 4; i++ {
		h.BeginCycle(uint64(1 + i))
		r := h.DataAccess(0x100+uint64(i*8), false)
		if !r.OK || !r.Coalesced {
			t.Fatalf("load %d should coalesce, got %+v", i, r)
		}
	}
	// A fifth load exceeds WideLoadsPerAccess: the line must be fetched
	// again through a port.
	h.BeginCycle(10)
	if r := h.DataAccess(0x118, false); !r.OK || r.Coalesced {
		t.Fatalf("fifth same-line load should refetch, got %+v", r)
	}
	// L1D has seen exactly two accesses (initial fetch + refetch).
	if h.L1D.Stats.Accesses != 2 {
		t.Errorf("L1D accesses = %d, want 2", h.L1D.Stats.Accesses)
	}
}

func TestWideBusRiderLatency(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.WideBus = true
	cfg.DL1Ports = 1
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	r0 := h.DataAccess(0x40000, false) // cold miss, long latency
	if r0.Hit {
		t.Fatal("expected a miss")
	}
	// A rider in the same cycle waits for the line to arrive.
	r1 := h.DataAccess(0x40008, false)
	if !r1.OK || !r1.Coalesced || r1.Lat != r0.Lat {
		t.Errorf("rider = %+v, want coalesced with lat %d", r1, r0.Lat)
	}
	// A rider long after the line arrived gets it in one cycle.
	h.BeginCycle(uint64(10 + r0.Lat))
	r2 := h.DataAccess(0x40010, false)
	if !r2.Coalesced || r2.Lat != 1 {
		t.Errorf("late rider = %+v, want lat 1", r2)
	}
}

func TestWideBusStoreInvalidatesLatch(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.WideBus = true
	cfg.DL1Ports = 2
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	h.DataAccess(0x100, false) // latch the line
	h.DataAccess(0x108, true)  // store to the same line
	h.BeginCycle(2)
	r := h.DataAccess(0x110, false)
	if r.Coalesced {
		t.Error("a store must invalidate the latched line")
	}
}

func TestWideBusDisabledNoCoalescing(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.WideBus = false
	cfg.DL1Ports = 2
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	h.DataAccess(0x100, false)
	r := h.DataAccess(0x108, false)
	if r.Coalesced {
		t.Error("no coalescing without wide bus")
	}
	if h.L1D.Stats.Accesses != 2 {
		t.Errorf("L1D accesses = %d, want 2", h.L1D.Stats.Accesses)
	}
}

func TestMSHRLimit(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.DL1Ports = 8
	cfg.MaxOutstandingMisses = 2
	h := NewHierarchy(cfg)
	h.BeginCycle(1)
	if !h.DataAccess(0x00000, false).OK {
		t.Fatal("miss 1 should proceed")
	}
	if !h.DataAccess(0x10000, false).OK {
		t.Fatal("miss 2 should proceed")
	}
	if h.DataAccess(0x20000, false).OK {
		t.Fatal("miss 3 should be rejected (MSHRs full)")
	}
	if h.OutstandingMisses() != 2 {
		t.Errorf("outstanding = %d, want 2", h.OutstandingMisses())
	}
	// A hit is still allowed while MSHRs are full.
	if r := h.DataAccess(0x00000, false); !r.OK || !r.Hit {
		t.Fatal("hit should proceed despite full MSHRs")
	}
	// After the misses complete, capacity frees up.
	h.BeginCycle(100000)
	if h.OutstandingMisses() != 0 {
		t.Errorf("outstanding after drain = %d, want 0", h.OutstandingMisses())
	}
	if !h.DataAccess(0x20000, false).OK {
		t.Fatal("miss should proceed after MSHRs drain")
	}
}

func TestFetchAccess(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.BeginCycle(1)
	if lat := h.FetchAccess(0x0); lat != 7 {
		t.Errorf("cold fetch lat = %d, want 7", lat)
	}
	if lat := h.FetchAccess(0x0); lat != 1 {
		t.Errorf("warm fetch lat = %d, want 1", lat)
	}
	if h.L1I.Stats.Accesses != 2 {
		t.Errorf("L1I accesses = %d", h.L1I.Stats.Accesses)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	h.BeginCycle(1)
	h.DataAccess(0x100, false)
	h.Flush()
	h.BeginCycle(2)
	if r := h.DataAccess(0x100, false); r.Hit {
		t.Error("flush should invalidate all levels")
	}
}

func TestAdvanceToMatchesPerCycleBeginCycle(t *testing.T) {
	// AdvanceTo over an access-free range must leave the hierarchy in
	// the same state as per-cycle BeginCycle calls: misses retire at
	// the same cycles and MSHR occupancy matches throughout.
	mk := func() *Hierarchy {
		h := NewHierarchy(DefaultHierConfig())
		h.BeginCycle(1)
		for i := 0; i < 5; i++ {
			r := h.DataAccess(uint64(0x10000+i*4096), false)
			if !r.OK {
				t.Fatal("access rejected")
			}
			h.BeginCycle(uint64(2 + i))
		}
		return h
	}
	a, b := mk(), mk()
	for c := uint64(7); c <= 200; c++ {
		a.BeginCycle(c)
	}
	b.AdvanceTo(199)
	b.BeginCycle(200)
	if a.OutstandingMisses() != b.OutstandingMisses() {
		t.Errorf("outstanding misses diverge: stepped %d, advanced %d",
			a.OutstandingMisses(), b.OutstandingMisses())
	}
	am, aok := a.NextMissRetire()
	bm, bok := b.NextMissRetire()
	if am != bm || aok != bok {
		t.Errorf("next miss retire diverges: stepped (%d,%v), advanced (%d,%v)", am, aok, bm, bok)
	}
}

func TestNextMissRetire(t *testing.T) {
	h := NewHierarchy(DefaultHierConfig())
	if _, ok := h.NextMissRetire(); ok {
		t.Error("fresh hierarchy reports an in-flight miss")
	}
	h.BeginCycle(1)
	r := h.DataAccess(0x40000, false)
	if !r.OK || r.Hit {
		t.Fatalf("expected a miss, got %+v", r)
	}
	m, ok := h.NextMissRetire()
	if !ok || m != 1+uint64(r.Lat) {
		t.Errorf("NextMissRetire = (%d,%v), want (%d,true)", m, ok, 1+uint64(r.Lat))
	}
	h.BeginCycle(m)
	if _, ok := h.NextMissRetire(); ok {
		t.Error("miss still reported after its retire cycle")
	}
}
