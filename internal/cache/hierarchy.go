package cache

// HierConfig configures the full memory hierarchy per Table 1.
type HierConfig struct {
	L1I Config
	L1D Config
	L2  Config
	L3  Config
	// DL1Ports is the number of L1 data ports usable per cycle (the
	// paper evaluates 1 and 2).
	DL1Ports int
	// WideBus makes each L1D port return a whole cache line, so up to
	// WideLoadsPerAccess loads to the same line share one access
	// (§2.4.5).
	WideBus bool
	// WideLoadsPerAccess bounds how many loads one wide access may serve
	// ("only up to 4 loads can be served in one of these wide accesses").
	WideLoadsPerAccess int
	// MaxOutstandingMisses bounds in-flight L1D misses (Table 1: up to
	// 16 outstanding misses).
	MaxOutstandingMisses int
}

// DefaultHierConfig returns Table 1's hierarchy: 64KB 2-way L1I (64B
// lines, 1-cycle hit, 6-cycle miss), 64KB 2-way L1D (32B lines, 1-cycle
// hit, 6-cycle miss, ≤16 outstanding misses), 256KB 4-way L2 (32B lines,
// 6-cycle hit, 18-cycle miss), 2MB 4-way L3 (64B lines, 18-cycle hit,
// 100-cycle miss to main memory).
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:                  Config{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLat: 1, MissLat: 6},
		L1D:                  Config{SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLat: 1, MissLat: 6},
		L2:                   Config{SizeBytes: 256 << 10, LineBytes: 32, Assoc: 4, HitLat: 6, MissLat: 18},
		L3:                   Config{SizeBytes: 2 << 20, LineBytes: 64, Assoc: 4, HitLat: 18, MissLat: 100},
		DL1Ports:             1,
		WideBus:              false,
		WideLoadsPerAccess:   4,
		MaxOutstandingMisses: 16,
	}
}

// Hierarchy glues the levels together and models per-cycle L1D port
// arbitration, wide-bus load coalescing, and the outstanding-miss bound.
// The owning pipeline calls BeginCycle once per simulated cycle, then
// issues instruction and data accesses.
type Hierarchy struct {
	cfg HierConfig
	L1I *Cache
	L1D *Cache
	L2  *Cache
	L3  *Cache

	cycle uint64

	// Per-cycle L1D port state, reset by BeginCycle.
	portsUsed int

	// Wide-bus line buffers: each wide access latches the whole cache
	// line, and up to WideLoadsPerAccess outstanding loads are served
	// from it before another access is needed (§2.4.5).
	wideBuf []wideLine

	// missFreeAt holds completion cycles of in-flight L1D misses.
	missFreeAt []uint64
}

type wideLine struct {
	valid   bool
	addr    uint64 // line address
	served  int    // loads served from this latch
	readyAt uint64 // cycle the line data arrives
	lru     uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	if cfg.DL1Ports <= 0 {
		cfg.DL1Ports = 1
	}
	if cfg.WideLoadsPerAccess <= 0 {
		cfg.WideLoadsPerAccess = 4
	}
	if cfg.MaxOutstandingMisses <= 0 {
		cfg.MaxOutstandingMisses = 16
	}
	h := &Hierarchy{
		cfg: cfg,
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  New(cfg.L2),
		L3:  New(cfg.L3),
	}
	if cfg.WideBus {
		// One line latch per port plus one victim keeps interleaved
		// streams from thrashing a single buffer.
		h.wideBuf = make([]wideLine, cfg.DL1Ports+1)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// BeginCycle resets per-cycle port state and retires completed misses.
func (h *Hierarchy) BeginCycle(cycle uint64) {
	h.cycle = cycle
	h.portsUsed = 0
	// Compact in-flight misses that have completed.
	out := h.missFreeAt[:0]
	for _, t := range h.missFreeAt {
		if t > cycle {
			out = append(out, t)
		}
	}
	h.missFreeAt = out
}

// AdvanceTo jumps the hierarchy's cycle forward across an access-free
// range in one call — the batched catch-up a stall fast-forward uses
// for skipped cycles. BeginCycle's per-cycle work is idempotent
// threshold compaction plus port-counter resets, so one batched call
// is identical to calling it for every skipped cycle when no access
// happens in between (which skipped cycles guarantee).
func (h *Hierarchy) AdvanceTo(cycle uint64) {
	if cycle > h.cycle {
		h.BeginCycle(cycle)
	}
}

// FetchAccess performs an instruction fetch of the line containing pc
// and returns the latency. The I-cache has its own port.
func (h *Hierarchy) FetchAccess(addr uint64) (lat int) {
	hit, lat := h.L1I.Access(addr, false)
	if hit {
		return lat
	}
	// Table 1 gives a flat 6-cycle I-miss time; the refill comes from L2.
	h.L2.Access(addr, false)
	return lat
}

// DataResult describes the outcome of a data access attempt.
type DataResult struct {
	// OK is false when no port (or MSHR) was available this cycle; the
	// instruction must retry next cycle.
	OK bool
	// Lat is the total latency in cycles until the data is available.
	Lat int
	// Hit reports an L1 hit.
	Hit bool
	// Coalesced reports that a wide bus served this load from a line
	// already fetched this cycle, consuming no extra port.
	Coalesced bool
}

// DataAccess attempts a data access this cycle. On a wide bus, a load
// whose line is already latched in a line buffer is served from it
// without a port or cache access, up to WideLoadsPerAccess loads per
// latch (§2.4.5). Stores always consume a port (write-back,
// write-allocate) and invalidate matching latches.
func (h *Hierarchy) DataAccess(addr uint64, write bool) DataResult {
	lineAddr := h.L1D.LineAddr(addr)

	if h.wideBuf != nil {
		if write {
			for i := range h.wideBuf {
				if h.wideBuf[i].valid && h.wideBuf[i].addr == lineAddr {
					h.wideBuf[i].valid = false
				}
			}
		} else {
			for i := range h.wideBuf {
				wb := &h.wideBuf[i]
				if wb.valid && wb.addr == lineAddr && wb.served < h.cfg.WideLoadsPerAccess {
					wb.served++
					wb.lru = h.cycle
					lat := 1
					if wb.readyAt > h.cycle {
						lat = int(wb.readyAt - h.cycle)
					}
					return DataResult{OK: true, Lat: lat, Hit: true, Coalesced: true}
				}
			}
		}
	}

	if h.portsUsed >= h.cfg.DL1Ports {
		return DataResult{}
	}

	// A miss needs a free MSHR.
	wouldHit := h.L1D.Lookup(addr)
	if !wouldHit && len(h.missFreeAt) >= h.cfg.MaxOutstandingMisses {
		return DataResult{}
	}

	h.portsUsed++
	hit, lat := h.L1D.Access(addr, write)
	if !hit {
		// Walk the outer levels; latencies accumulate.
		h2, lat2 := h.L2.Access(addr, write)
		lat = h.L1D.Config().HitLat + lat2
		if !h2 {
			_, lat3 := h.L3.Access(addr, write)
			lat = h.L1D.Config().HitLat + h.L2.Config().HitLat + lat3
		}
		h.missFreeAt = append(h.missFreeAt, h.cycle+uint64(lat))
	}
	if h.wideBuf != nil && !write {
		// Latch the whole line into the least-recently-used buffer.
		victim := 0
		for i := 1; i < len(h.wideBuf); i++ {
			if !h.wideBuf[i].valid {
				victim = i
				break
			}
			if h.wideBuf[i].lru < h.wideBuf[victim].lru {
				victim = i
			}
		}
		h.wideBuf[victim] = wideLine{
			valid: true, addr: lineAddr, served: 1,
			readyAt: h.cycle + uint64(lat), lru: h.cycle,
		}
	}
	return DataResult{OK: true, Lat: lat, Hit: hit}
}

// DataAccessReplica performs a data access for a speculative replica
// load. Replica loads may ride any valid wide-bus line latch without
// consuming one of its scalar servings: the per-access serving cap
// models register-file write ports, and replica results go to replica
// storage (whose write ports are modeled separately). A replica load
// whose line is not latched takes the normal port path and latches the
// line, so subsequent replicas of a unit-stride batch ride it.
func (h *Hierarchy) DataAccessReplica(addr uint64) DataResult {
	if h.wideBuf != nil {
		lineAddr := h.L1D.LineAddr(addr)
		for i := range h.wideBuf {
			wb := &h.wideBuf[i]
			if wb.valid && wb.addr == lineAddr {
				wb.lru = h.cycle
				lat := 1
				if wb.readyAt > h.cycle {
					lat = int(wb.readyAt - h.cycle)
				}
				return DataResult{OK: true, Lat: lat, Hit: true, Coalesced: true}
			}
		}
	}
	return h.DataAccess(addr, false)
}

// OutstandingMisses returns the number of in-flight L1D misses.
func (h *Hierarchy) OutstandingMisses() int { return len(h.missFreeAt) }

// PortsUsed returns how many L1D ports this cycle's accesses have
// consumed so far. Callers that reason about whether a failed access
// attempt would also fail on later cycles use it to detect transient
// port pressure (e.g. a commit-stage store write) that resets at the
// next BeginCycle.
func (h *Hierarchy) PortsUsed() int { return h.portsUsed }

// NextMissRetire returns the earliest cycle an in-flight L1D miss
// retires and frees its MSHR (the cycle BeginCycle compacts it away) —
// an event bound for callers that skip over access-free cycles. ok is
// false with no miss in flight.
func (h *Hierarchy) NextMissRetire() (cycle uint64, ok bool) {
	if len(h.missFreeAt) == 0 {
		return 0, false
	}
	m := h.missFreeAt[0]
	for _, t := range h.missFreeAt[1:] {
		if t < m {
			m = t
		}
	}
	return m, true
}

// Flush invalidates all levels and the wide-bus line buffers.
func (h *Hierarchy) Flush() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.L3.Flush()
	h.missFreeAt = h.missFreeAt[:0]
	for i := range h.wideBuf {
		h.wideBuf[i] = wideLine{}
	}
}
