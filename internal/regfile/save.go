package regfile

import "civect/internal/ckpt"

// Checkpoint serialization. The free lists are stored verbatim, in
// order: allocation pops from the tail, so free-list order determines
// which physical register every future rename receives — restoring it
// exactly is what makes a restored run allocate bit-identically to the
// uninterrupted one. The occupancy accumulators round-trip exactly too,
// so end-of-run RegAvgInUse matches to the last bit.

// SaveState encodes the register file.
func (f *File) SaveState(e *ckpt.Encoder) {
	e.Tag("regfile")
	e.Bool(f.bounded)
	e.Int(len(f.regs))
	for i := range f.regs {
		e.U64(f.regs[i].val)
		e.Bool(f.regs[i].ready)
		e.Bool(f.regs[i].alloced)
	}
	e.Int(len(f.free))
	for _, r := range f.free {
		e.Int(r)
	}
	e.Int(f.inUse)
	e.Int(f.peak)
	e.U64(f.occSum)
	e.U64(f.occSamples)
}

// LoadFile decodes a register file written by SaveState.
func LoadFile(d *ckpt.Decoder) *File {
	d.Tag("regfile")
	f := &File{bounded: d.Bool()}
	nregs := d.Count()
	f.regs = make([]reg, nregs)
	for i := range f.regs {
		f.regs[i].val = d.U64()
		f.regs[i].ready = d.Bool()
		f.regs[i].alloced = d.Bool()
	}
	nfree := d.Count()
	f.free = make([]int, nfree)
	for i := range f.free {
		f.free[i] = d.Int()
		if f.free[i] < 0 || f.free[i] >= nregs {
			d.Fail("free-list register %d out of range (file size %d)", f.free[i], nregs)
			return f
		}
	}
	f.inUse = d.Int()
	f.peak = d.Int()
	f.occSum = d.U64()
	f.occSamples = d.U64()
	return f
}

// SaveState encodes the speculative data memory.
func (s *SpecMem) SaveState(e *ckpt.Encoder) {
	e.Tag("specmem")
	e.Int(s.size)
	e.Int(s.latency)
	for i := 0; i < s.size; i++ {
		e.U64(s.vals[i])
		e.Bool(s.ready[i])
		e.Bool(s.alloced[i])
	}
	e.Int(len(s.free))
	for _, p := range s.free {
		e.Int(p)
	}
	e.Int(s.inUse)
}

// LoadSpecMem decodes a speculative data memory written by SaveState.
// The per-cycle port budgets are not part of the state: BeginCycle
// resets them before any access on the first restored cycle.
func LoadSpecMem(d *ckpt.Decoder) *SpecMem {
	d.Tag("specmem")
	size := d.Int()
	latency := d.Int()
	if d.Err() != nil {
		return nil
	}
	if size <= 0 || size > 1<<24 {
		d.Fail("spec memory size %d out of range", size)
		return nil
	}
	s := NewSpecMem(size, latency)
	for i := 0; i < size; i++ {
		s.vals[i] = d.U64()
		s.ready[i] = d.Bool()
		s.alloced[i] = d.Bool()
	}
	nfree := d.Count()
	s.free = s.free[:0]
	for i := 0; i < nfree; i++ {
		p := d.Int()
		if p < 0 || p >= size {
			d.Fail("spec memory free-list position %d out of range (size %d)", p, size)
			return s
		}
		s.free = append(s.free, p)
	}
	s.inUse = d.Int()
	return s
}
