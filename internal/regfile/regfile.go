// Package regfile models the physical register file and the paper's
// speculative data memory (§2.4.6).
//
// File is a monolithic physical register file with a free list; the
// paper evaluates 128/256/512/768 registers and an unbounded file. It
// also records occupancy statistics, which back the §2.4.2 numbers
// (average registers in use with and without DAEC).
//
// SpecMem is the "small and cheap slow memory, similar to a hierarchical
// register file" that holds replica results: a fixed number of positions
// with two write ports from the functional units and two read ports
// toward the register file, twice slower than the register file.
package regfile

import "fmt"

// reg is one physical register. Value, readiness and allocation state
// live together so the hot Ready+Value pair costs one cache line, not
// two array walks.
type reg struct {
	val     uint64
	ready   bool
	alloced bool
}

// File is a physical register file with a free list. Size <= 0 means
// unbounded (the file grows on demand), matching the paper's "Inf"
// configurations.
type File struct {
	bounded bool
	regs    []reg
	free    []int

	inUse      int
	peak       int
	occSum     uint64
	occSamples uint64
}

// NewFile builds a file with n physical registers; n <= 0 is unbounded.
func NewFile(n int) *File {
	f := &File{bounded: n > 0}
	if n > 0 {
		f.regs = make([]reg, n)
		f.free = make([]int, n)
		for i := range f.free {
			f.free[i] = n - 1 - i // pop from the end -> ascending order
		}
	}
	return f
}

// Size returns the capacity, or -1 for an unbounded file.
func (f *File) Size() int {
	if !f.bounded {
		return -1
	}
	return len(f.regs)
}

// FreeCount returns how many registers are currently allocatable; it is
// unbounded files' current slack plus growth, so it returns a large
// number for them.
func (f *File) FreeCount() int {
	if !f.bounded {
		return 1 << 30
	}
	return len(f.free)
}

// Alloc takes a free register, marking it not-ready. ok is false when a
// bounded file is exhausted.
func (f *File) Alloc() (r int, ok bool) {
	if len(f.free) == 0 {
		if f.bounded {
			return 0, false
		}
		f.regs = append(f.regs, reg{})
		f.free = append(f.free, len(f.regs)-1)
	}
	r = f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	f.regs[r] = reg{alloced: true}
	f.inUse++
	if f.inUse > f.peak {
		f.peak = f.inUse
	}
	return r, true
}

// Release returns a register to the free list. Releasing a register that
// is not allocated is a simulator bug and panics.
func (f *File) Release(r int) {
	if !f.regs[r].alloced {
		panic(fmt.Sprintf("regfile: double free of p%d", r))
	}
	f.regs[r].alloced = false
	f.free = append(f.free, r)
	f.inUse--
}

// Write sets the value and marks the register ready.
func (f *File) Write(r int, val uint64) {
	f.regs[r].val = val
	f.regs[r].ready = true
}

// Value reads a register's value.
func (f *File) Value(r int) uint64 { return f.regs[r].val }

// Ready reports whether the register's value has been produced.
func (f *File) Ready(r int) bool { return f.regs[r].ready }

// Allocated reports whether the register is currently allocated.
func (f *File) Allocated(r int) bool { return r < len(f.regs) && f.regs[r].alloced }

// InUse returns the number of currently allocated registers.
func (f *File) InUse() int { return f.inUse }

// Peak returns the maximum simultaneous occupancy seen.
func (f *File) Peak() int { return f.peak }

// Sample records one occupancy sample (called once per simulated cycle).
func (f *File) Sample() {
	f.occSum += uint64(f.inUse)
	f.occSamples++
}

// SampleN records n occupancy samples at the current occupancy in one
// call — the batched catch-up a stall fast-forward uses for skipped
// cycles. With no allocation activity in between (which skipped cycles
// guarantee), it is bit-identical to n consecutive Sample calls.
func (f *File) SampleN(n uint64) {
	f.occSum += n * uint64(f.inUse)
	f.occSamples += n
}

// AvgInUse returns the mean occupancy across samples (§2.4.2's metric).
func (f *File) AvgInUse() float64 {
	if f.occSamples == 0 {
		return 0
	}
	return float64(f.occSum) / float64(f.occSamples)
}

// SpecMem models the speculative data memory: Size positions, two write
// ports from the functional units, two read ports to the register file,
// and an access latency (2 cycles in the paper; §3.2 also evaluates 5).
// Port budgets are per cycle, reset by BeginCycle.
type SpecMem struct {
	size    int
	latency int

	vals    []uint64
	ready   []bool
	alloced []bool
	free    []int
	inUse   int

	readPorts  int
	writePorts int
	readsUsed  int
	writesUsed int
}

// NewSpecMem builds a speculative data memory with n positions and the
// given access latency in cycles.
func NewSpecMem(n, latency int) *SpecMem {
	if n <= 0 {
		panic("regfile: spec memory needs a positive size")
	}
	if latency <= 0 {
		latency = 2
	}
	s := &SpecMem{
		size: n, latency: latency,
		vals:      make([]uint64, n),
		ready:     make([]bool, n),
		alloced:   make([]bool, n),
		free:      make([]int, n),
		readPorts: 2, writePorts: 2,
	}
	for i := range s.free {
		s.free[i] = n - 1 - i
	}
	return s
}

// Size returns the number of positions.
func (s *SpecMem) Size() int { return s.size }

// Latency returns the access latency in cycles.
func (s *SpecMem) Latency() int { return s.latency }

// FreeCount returns the number of unallocated positions.
func (s *SpecMem) FreeCount() int { return len(s.free) }

// InUse returns the number of allocated positions.
func (s *SpecMem) InUse() int { return s.inUse }

// BeginCycle resets the per-cycle port budgets.
func (s *SpecMem) BeginCycle() { s.readsUsed, s.writesUsed = 0, 0 }

// Alloc takes a free position (not a port operation).
func (s *SpecMem) Alloc() (pos int, ok bool) {
	if len(s.free) == 0 {
		return 0, false
	}
	pos = s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.alloced[pos] = true
	s.ready[pos] = false
	s.vals[pos] = 0
	s.inUse++
	return pos, true
}

// Release frees a position.
func (s *SpecMem) Release(pos int) {
	if !s.alloced[pos] {
		panic(fmt.Sprintf("regfile: double free of spec position %d", pos))
	}
	s.alloced[pos] = false
	s.free = append(s.free, pos)
	s.inUse--
}

// TryWrite attempts to use a write port this cycle to store val at pos;
// it returns false when both write ports are busy.
func (s *SpecMem) TryWrite(pos int, val uint64) bool {
	if s.writesUsed >= s.writePorts {
		return false
	}
	s.writesUsed++
	s.vals[pos] = val
	s.ready[pos] = true
	return true
}

// TryRead attempts to use a read port this cycle; on success it returns
// the value and the latency after which the consumer sees it.
func (s *SpecMem) TryRead(pos int) (val uint64, lat int, ok bool) {
	if s.readsUsed >= s.readPorts {
		return 0, 0, false
	}
	s.readsUsed++
	return s.vals[pos], s.latency, true
}

// Ready reports whether the position holds a produced value.
func (s *SpecMem) Ready(pos int) bool { return s.ready[pos] }

// Value reads a position without modeling a port (for validation
// bookkeeping, not data movement).
func (s *SpecMem) Value(pos int) uint64 { return s.vals[pos] }
