package regfile

import (
	"testing"
	"testing/quick"
)

func TestBoundedAllocRelease(t *testing.T) {
	f := NewFile(4)
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
	regs := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		r, ok := f.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		regs = append(regs, r)
	}
	if _, ok := f.Alloc(); ok {
		t.Fatal("alloc should fail when exhausted")
	}
	if f.InUse() != 4 || f.FreeCount() != 0 {
		t.Fatalf("inUse=%d free=%d", f.InUse(), f.FreeCount())
	}
	f.Release(regs[0])
	if f.InUse() != 3 || f.FreeCount() != 1 {
		t.Fatalf("after release inUse=%d free=%d", f.InUse(), f.FreeCount())
	}
	if _, ok := f.Alloc(); !ok {
		t.Fatal("alloc should succeed after release")
	}
}

func TestUnboundedGrows(t *testing.T) {
	f := NewFile(0)
	if f.Size() != -1 {
		t.Fatalf("unbounded size = %d, want -1", f.Size())
	}
	for i := 0; i < 1000; i++ {
		if _, ok := f.Alloc(); !ok {
			t.Fatalf("unbounded alloc %d failed", i)
		}
	}
	if f.InUse() != 1000 {
		t.Fatalf("inUse = %d", f.InUse())
	}
	if f.Peak() != 1000 {
		t.Fatalf("peak = %d", f.Peak())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	f := NewFile(2)
	r, _ := f.Alloc()
	f.Release(r)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	f.Release(r)
}

func TestAllocClearsState(t *testing.T) {
	f := NewFile(1)
	r, _ := f.Alloc()
	f.Write(r, 99)
	if !f.Ready(r) || f.Value(r) != 99 {
		t.Fatal("write should set value and ready")
	}
	f.Release(r)
	r2, _ := f.Alloc()
	if r2 != r {
		t.Fatalf("expected reuse of the single register")
	}
	if f.Ready(r2) || f.Value(r2) != 0 {
		t.Error("alloc must clear ready and value")
	}
}

func TestOccupancyStats(t *testing.T) {
	f := NewFile(8)
	a, _ := f.Alloc()
	f.Sample() // 1
	b, _ := f.Alloc()
	f.Sample() // 2
	f.Release(a)
	f.Sample() // 1
	_ = b
	if got := f.AvgInUse(); got != 4.0/3.0 {
		t.Errorf("avg = %v, want 4/3", got)
	}
	if f.Peak() != 2 {
		t.Errorf("peak = %d, want 2", f.Peak())
	}
	var empty File
	if empty.AvgInUse() != 0 {
		t.Error("no samples -> avg 0")
	}
}

func TestAllocated(t *testing.T) {
	f := NewFile(2)
	r, _ := f.Alloc()
	if !f.Allocated(r) {
		t.Error("allocated reg should report true")
	}
	f.Release(r)
	if f.Allocated(r) {
		t.Error("released reg should report false")
	}
	if f.Allocated(99) {
		t.Error("out-of-range reg should report false")
	}
}

// Property: alloc/release sequences keep the free list consistent: no
// register is handed out twice while allocated, and InUse matches the
// model.
func TestFileFreeListConsistency(t *testing.T) {
	f := func(ops []bool) bool {
		file := NewFile(16)
		var live []int
		for _, alloc := range ops {
			if alloc {
				r, ok := file.Alloc()
				if !ok {
					if len(live) != 16 {
						return false
					}
					continue
				}
				for _, l := range live {
					if l == r {
						return false // double allocation
					}
				}
				live = append(live, r)
			} else if len(live) > 0 {
				file.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		return file.InUse() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpecMemBasics(t *testing.T) {
	s := NewSpecMem(4, 2)
	if s.Size() != 4 || s.Latency() != 2 {
		t.Fatalf("size/lat = %d/%d", s.Size(), s.Latency())
	}
	p, ok := s.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	if s.Ready(p) {
		t.Error("fresh position must not be ready")
	}
	s.BeginCycle()
	if !s.TryWrite(p, 42) {
		t.Fatal("write port should be free")
	}
	if !s.Ready(p) || s.Value(p) != 42 {
		t.Error("write should set value")
	}
	v, lat, ok := s.TryRead(p)
	if !ok || v != 42 || lat != 2 {
		t.Errorf("read = (%d,%d,%v)", v, lat, ok)
	}
}

func TestSpecMemPorts(t *testing.T) {
	s := NewSpecMem(8, 2)
	p0, _ := s.Alloc()
	p1, _ := s.Alloc()
	p2, _ := s.Alloc()
	s.BeginCycle()
	if !s.TryWrite(p0, 1) || !s.TryWrite(p1, 2) {
		t.Fatal("two writes should fit")
	}
	if s.TryWrite(p2, 3) {
		t.Fatal("third write should be rejected (2 write ports)")
	}
	if _, _, ok := s.TryRead(p0); !ok {
		t.Fatal("read 1 should fit")
	}
	if _, _, ok := s.TryRead(p1); !ok {
		t.Fatal("read 2 should fit")
	}
	if _, _, ok := s.TryRead(p0); ok {
		t.Fatal("third read should be rejected (2 read ports)")
	}
	s.BeginCycle()
	if !s.TryWrite(p2, 3) {
		t.Fatal("ports reset next cycle")
	}
}

func TestSpecMemExhaustion(t *testing.T) {
	s := NewSpecMem(2, 2)
	s.Alloc()
	p, _ := s.Alloc()
	if _, ok := s.Alloc(); ok {
		t.Fatal("alloc should fail when full")
	}
	s.Release(p)
	if s.FreeCount() != 1 || s.InUse() != 1 {
		t.Fatalf("free=%d inUse=%d", s.FreeCount(), s.InUse())
	}
	if _, ok := s.Alloc(); !ok {
		t.Fatal("alloc should succeed after release")
	}
}

func TestSpecMemDoubleFreePanics(t *testing.T) {
	s := NewSpecMem(2, 2)
	p, _ := s.Alloc()
	s.Release(p)
	defer func() {
		if recover() == nil {
			t.Error("double free must panic")
		}
	}()
	s.Release(p)
}

func TestSpecMemDefaultLatency(t *testing.T) {
	s := NewSpecMem(4, 0)
	if s.Latency() != 2 {
		t.Errorf("default latency = %d, want 2", s.Latency())
	}
}

func TestSpecMemBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSpecMem(0, 2)
}

func TestSampleNMatchesRepeatedSample(t *testing.T) {
	// SampleN(n) with unchanged occupancy must be bit-identical to n
	// Sample calls — the equivalence the fast-forward engine's batched
	// catch-up relies on.
	a, b := NewFile(32), NewFile(32)
	for i := 0; i < 7; i++ {
		ra, _ := a.Alloc()
		rb, _ := b.Alloc()
		a.Write(ra, 1)
		b.Write(rb, 1)
	}
	a.Sample()
	b.Sample()
	for i := 0; i < 41; i++ {
		a.Sample()
	}
	b.SampleN(41)
	a.Sample()
	b.Sample()
	if a.AvgInUse() != b.AvgInUse() {
		t.Errorf("SampleN average %v != repeated-Sample average %v", b.AvgInUse(), a.AvgInUse())
	}
}
