package core

import "civect/internal/ci"

// captureIW implements the squash-reuse restriction of the mechanism
// (Figure 10's ci-iw): at a hard-branch misprediction, the completed
// control-independent instructions already inside the instruction
// window — on the wrong path, past the re-convergent point, with
// sources untouched by the control-dependent region — have their
// results harvested before the squash. When the correct path refetches
// the same PCs with the same dynamic operand producers, the result is
// reused instead of re-executed.
func (p *Proc) captureIW(branchIdx, reconv int, mask ci.RegMask) {
	// Reset the previous episode's table without touching untouched PCs:
	// only the PCs the last capture wrote are cleared, and the record
	// slices keep their backing arrays.
	for _, pc := range p.iwPCs {
		p.iwTable[pc] = p.iwTable[pc][:0]
		p.iwHead[pc] = 0
	}
	p.iwPCs = p.iwPCs[:0]
	p.iwLive = 0
	p.iwRemapFrom = p.iwRemapFrom[:0]
	p.iwRemapTo = p.iwRemapTo[:0]
	// The chain scratch maps a wrong-path physical destination to the
	// value its instruction has produced or will produce: instructions
	// kept in the window complete regardless of the squash, so a waiting
	// ALU instruction whose operands are (transitively) available is as
	// good as a finished one. Epoch stamping starts each capture empty.
	p.iwChainEpoch++
	reached := false
	i := p.robIndexAfter(branchIdx)
	for i != p.robTail {
		e := &p.rob[i]
		i = p.robIndexAfter(i)
		if !e.valid {
			continue
		}
		if int(e.pc) == reconv {
			reached = true
		}
		if !e.hasDest {
			continue
		}

		// Resolve the instruction's value: already produced, or
		// computable from resolved operands (ALU only — loads need the
		// memory system).
		value := e.value
		resolved := e.state == stDone || e.state == stExecuting
		if resolved {
			p.chainSet(int(e.physDest), value)
		} else if e.state == stWaiting && !p.metaAt(int(e.pc)).isMem() && !p.metaAt(int(e.pc)).isControl() {
			var vals [2]uint64
			ok := true
			for s := 0; s < int(e.nsrc); s++ {
				ph := int(e.srcPhys[s])
				switch {
				case p.rf.Ready(ph):
					vals[s] = p.rf.Value(ph)
				default:
					v, hit := p.chainGet(ph)
					if !hit {
						ok = false
						break
					}
					vals[s] = v
				}
			}
			if !ok {
				continue
			}
			value = execALU(e.in, vals[0], vals[1])
			p.chainSet(int(e.physDest), value)
			resolved = true
		}
		if !resolved || !reached {
			continue
		}

		srcs := p.metaAt(int(e.pc)).srcRegs()
		indep := true
		for _, r := range srcs {
			if mask.Has(r) {
				indep = false
				break
			}
		}
		if !indep {
			continue
		}
		rec := iwReuse{pc: int(e.pc), seq: e.seq, nsrc: int(e.nsrc), value: value}
		rec.writerSeq = e.srcWriterSeq
		if len(p.iwTable[e.pc]) == 0 {
			p.iwPCs = append(p.iwPCs, int(e.pc))
		}
		p.iwTable[e.pc] = append(p.iwTable[e.pc], rec)
		p.iwLive++
		p.Stats.IWCaptured++
	}
}

// chainSet records a resolved wrong-path value for physical register
// reg in the capture-scoped chain scratch. The zero-valued mark array
// reads as "set at epoch 0", so the scratch is only meaningful after
// captureIW's epoch increment — call chainGet/chainSet from nowhere
// else. (Same epoch-set pattern as freedMark in proc.go, which guards
// the epoch-0 pitfall by starting at 1 instead.)
func (p *Proc) chainSet(reg int, val uint64) {
	if reg >= len(p.iwChainVal) {
		n := max(2*len(p.iwChainVal), reg+64)
		//civet:allow hotalloc amortized chain-scratch doubling; grows O(log n) times, then never again
		grownV := make([]uint64, n)
		copy(grownV, p.iwChainVal)
		//civet:allow hotalloc amortized chain-scratch doubling; grows O(log n) times, then never again
		grownM := make([]uint64, n)
		copy(grownM, p.iwChainMark)
		p.iwChainVal, p.iwChainMark = grownV, grownM
	}
	p.iwChainVal[reg] = val
	p.iwChainMark[reg] = p.iwChainEpoch
}

// chainGet reads a value recorded by chainSet during this capture.
func (p *Proc) chainGet(reg int) (uint64, bool) {
	if reg >= len(p.iwChainMark) || p.iwChainMark[reg] != p.iwChainEpoch {
		return 0, false
	}
	return p.iwChainVal[reg], true
}
