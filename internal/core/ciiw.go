package core

import "civect/internal/ci"

// captureIW implements the squash-reuse restriction of the mechanism
// (Figure 10's ci-iw): at a hard-branch misprediction, the completed
// control-independent instructions already inside the instruction
// window — on the wrong path, past the re-convergent point, with
// sources untouched by the control-dependent region — have their
// results harvested before the squash. When the correct path refetches
// the same PCs with the same dynamic operand producers, the result is
// reused instead of re-executed.
func (p *Proc) captureIW(branchIdx, reconv int, mask ci.RegMask) {
	clear(p.iwTable)
	clear(p.iwRemap)
	// chain maps a wrong-path physical destination to the value its
	// instruction has produced or will produce: instructions kept in
	// the window complete regardless of the squash, so a waiting ALU
	// instruction whose operands are (transitively) available is as
	// good as a finished one.
	chain := make(map[int]uint64)
	reached := false
	i := p.robIndexAfter(branchIdx)
	for i != p.robTail {
		e := &p.rob[i]
		i = p.robIndexAfter(i)
		if !e.valid {
			continue
		}
		if e.pc == reconv {
			reached = true
		}
		if !e.hasDest {
			continue
		}

		// Resolve the instruction's value: already produced, or
		// computable from resolved operands (ALU only — loads need the
		// memory system).
		value := e.value
		resolved := e.state == stDone || e.state == stExecuting
		if resolved {
			chain[e.physDest] = value
		} else if e.state == stWaiting && !e.in.IsMem() && !e.in.IsControl() {
			var vals [2]uint64
			ok := true
			for s := 0; s < e.nsrc; s++ {
				ph := e.srcPhys[s]
				switch {
				case p.rf.Ready(ph):
					vals[s] = p.rf.Value(ph)
				default:
					v, hit := chain[ph]
					if !hit {
						ok = false
						break
					}
					vals[s] = v
				}
			}
			if !ok {
				continue
			}
			value = execALU(e.in, vals[0], vals[1])
			chain[e.physDest] = value
			resolved = true
		}
		if !resolved || !reached {
			continue
		}

		srcs := e.in.SrcRegs(p.srcScratch[:0])
		p.srcScratch = srcs[:0]
		indep := true
		for _, r := range srcs {
			if mask.Has(r) {
				indep = false
				break
			}
		}
		if !indep {
			continue
		}
		rec := iwReuse{pc: e.pc, seq: e.seq, nsrc: e.nsrc, value: value}
		rec.writerSeq = e.srcWriterSeq
		p.iwTable[e.pc] = append(p.iwTable[e.pc], rec)
		p.Stats.IWCaptured++
	}
}
