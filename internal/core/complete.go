package core

import (
	"fmt"
	"os"

	"civect/internal/ci"
)

// completeStage retires finished executions: results are written to the
// register file, stores mark their address/value architectural-ready,
// and branches resolve. A mispredicted branch triggers recovery: the
// wrong path is squashed, fetch redirects, and — for hard-to-predict
// branches — the control-independence machinery activates (§2.3.1,
// §2.4.4). Replicas are not squashed.
func (p *Proc) completeStage() {
	if len(p.execQ) == 0 || p.cycle < p.execMinDone {
		// Nothing in flight can retire yet: execMinDone lower-bounds
		// every doneAt in the queue (an under-estimate after squashes
		// only costs a scan), so skipping the walk is exact.
		return
	}
	recoverIdx := -1
	var recoverSeq uint64
	next := ^uint64(0)
	out := p.execQ[:0]
	for _, w := range p.execQ {
		e := &p.rob[w.idx]
		if !e.valid || e.seq != w.seq || e.state != stExecuting {
			continue
		}
		if e.doneAt > p.cycle {
			if e.doneAt < next {
				next = e.doneAt
			}
			out = append(out, w)
			continue
		}
		e.state = stDone
		e.executed = true
		if e.hasDest {
			p.writeReg(int(e.physDest), e.value)
		}
		im := p.metaAt(int(e.pc))
		if im.isLoad() && p.srsmt != nil && !e.fwdStore {
			// A completed strided load anchors a fresh replica batch if
			// the mechanism has selected it and no entry exists yet.
			p.maybeVectorizeLoad(int(e.pc), e.in, e.addr, e.seq)
		}
		if im.isCondBr() {
			// Train the direction predictor at resolution with the
			// history the prediction was made under.
			p.bp.TrainAt(uint64(e.pc), e.actTaken, e.histSnapshot)
			if e.mispredicted && (recoverIdx < 0 || e.seq < recoverSeq) {
				recoverIdx = w.idx
				recoverSeq = e.seq
			}
		}
	}
	p.execQ = out
	p.execMinDone = next
	if recoverIdx >= 0 {
		// The entry may have been squashed by an older branch resolving
		// in the same batch; recover only if it is still live.
		e := &p.rob[recoverIdx]
		if e.valid && e.seq == recoverSeq {
			p.recoverBranch(recoverIdx)
		}
	}
}

// nextCompletion returns the earliest cycle an in-flight execution can
// retire — the completion-queue contribution to the fast-forward
// engine's next-event aggregation. execMinDone can under-estimate
// after a squash (stale entries are dropped at the next scan); a jump
// landing on such a cycle just scans, finds nothing due, tightens the
// bound and re-skips, so the under-estimate costs a scan, never
// correctness.
func (p *Proc) nextCompletion() (uint64, bool) {
	if len(p.execQ) == 0 {
		return 0, false
	}
	return p.execMinDone, true
}

// recoverBranch performs misprediction recovery for the branch in ROB
// slot idx.
func (p *Proc) recoverBranch(idx int) {
	e := &p.rob[idx]
	p.Stats.Mispredicts++

	// CI: initialise the CRP mask with the registers the wrong path
	// wrote between the branch and the re-convergent point (§2.3.2:
	// "written since the branch was fetched and before the
	// re-convergent point is reached, in either the wrong or the
	// correct path"). The NRBQ's per-region masks are the paper's
	// hardware approximation of this; because our wrong paths run many
	// loop iterations deep, the region OR would cover the whole loop
	// body and disqualify everything (including the paper's own I11),
	// so we read the same information exactly from the in-flight
	// window before it is squashed. Accumulation continues on the
	// correct path via CRP.NoteFetch until the point is re-reached.
	hard := p.mbs.Hard(uint64(e.pc)) || p.cfg.DisableMBSGate
	reconv := ci.EstimateReconvergence(p.prog, int(e.pc))
	var mask ci.RegMask
	maskOK := p.nrbq != nil
	if maskOK {
		i := p.robIndexAfter(idx)
		for i != p.robTail {
			we := &p.rob[i]
			i = p.robIndexAfter(i)
			if !we.valid {
				continue
			}
			if int(we.pc) == reconv {
				break // wrong-path writes beyond the point do not count
			}
			if we.hasDest {
				mask.Set(we.logDest)
			}
		}
	}

	// Squash reuse (ci-iw): harvest completed control-independent
	// wrong-path results before they disappear.
	if p.iwTable != nil && hard && maskOK {
		p.captureIW(idx, reconv, mask)
	}

	p.squashAfter(idx)

	// Repair the global history: roll back to the branch's fetch-time
	// snapshot and shift in the actual outcome. (squashAfter restored
	// the history of the oldest squashed instruction; the branch's own
	// snapshot supersedes it.)
	p.bp.RestoreHistory(e.histSnapshot)
	p.bp.SpeculativeShift(e.actTaken)

	p.fetchPC = int(e.actTarget)
	p.fetchHalted = false
	p.fetchStallUntil = 0

	if debugTrace {
		//civet:allow hotalloc trace formatting only runs when CIVECT_TRACE is set; production runs never reach it
		fmt.Fprintf(os.Stderr, "[%d] mispredict pc=%d hard=%v maskOK=%v reconv=%d\n", p.cycle, e.pc, hard, maskOK, reconv)
	}
	// Episodes are scoped misprediction-to-misprediction: close the
	// previous one, then open a new one for hard branches (the only
	// ones the scheme activates for, §2.3.1).
	p.closeEpisode()
	if hard {
		p.Stats.HardMispredicts++
		if p.nrbq != nil && maskOK {
			p.openEpisode()
			p.crp.Activate(reconv, mask)
		}
	} else if p.nrbq != nil {
		p.crp.Deactivate()
	}

	// §2.4.4: copy commit into decode for every SRSMT entry; no replica
	// is squashed, no replica resource deallocated — except entries
	// whose DAEC reaches 2 (§2.4.2).
	if p.srsmt != nil {
		//civet:allow hotalloc non-escaping recovery callback; OnRecovery does not retain it (TestSteadyStateZeroAllocs pins zero allocs)
		p.srsmt.OnRecovery(!p.cfg.DisableDAEC, func(dead *ci.Entry) {
			p.wakeConsumers(dead)
			p.releaseEntryStorage(dead)
		})
		p.resyncValidatedCursors()
	}
	p.failBrokenSeeds()
}

// squashAfter removes every ROB entry younger than idx, restoring the
// rename map (tail-first), releasing rename registers, and cleaning the
// LSQ, NRBQ and fetch buffer. Freed registers are collected so pending
// replica seeds can be invalidated.
func (p *Proc) squashAfter(idx int) {
	keepSeq := p.rob[idx].seq
	p.clearFreed()

	// The discarded instructions' speculative branch-history shifts
	// must be undone: restore the snapshot of the oldest discarded
	// instruction. The fetch buffer is younger than everything in the
	// ROB, so any squashed ROB entry's snapshot supersedes it.
	if p.fetchLen() > 0 {
		p.bp.RestoreHistory(p.fetchFront().histSnapshot)
	}

	i := p.robIndexBefore(p.robTail)
	squashed := 0
	for p.robCount > 0 {
		e := &p.rob[i]
		if e.seq <= keepSeq {
			break
		}
		squashed++
		if p.metaAt(int(e.pc)).isStore() {
			p.storeIndexRemove(i, e)
		}
		if e.hasDest {
			// The squashed writer's own map entry (restored over here, or
			// already moved into a younger sibling's checkpoint and
			// restored from it) dies with the squash: release its
			// stridedPC list before the overwrite.
			p.releaseStrided(&p.ren[e.logDest])
			p.ren[e.logDest] = e.oldRen
			p.rf.Release(int(e.physDest))
			p.noteFreed(int(e.physDest))
		}
		p.bp.RestoreHistory(e.histSnapshot)
		e.valid = false
		p.robTail = i
		p.robCount--
		p.Stats.SquashedBP++
		i = p.robIndexBefore(i)
	}

	// Drop squashed memory operations from the LSQ (double-buffered
	// with lsqFiltered to avoid per-squash allocation).
	keep := p.lsqFiltered[:0]
	for _, li := range p.lsq {
		if p.rob[li].valid && p.rob[li].seq <= keepSeq {
			keep = append(keep, li)
		}
	}
	p.lsqFiltered, p.lsq = p.lsq[:0], keep

	if p.nrbq != nil {
		p.nrbq.SquashYoungerThan(keepSeq)
	}
	p.fetchClear()
	if p.tracer != nil {
		p.tracer.OnTraceSquash(p.cycle, keepSeq, squashed)
	}
	// Entries created by squashed (wrong-path) instructions survive —
	// "no speculative vectorized instruction is squashed" (§2.4.4).
	// Stale state they may carry is caught piecemeal: broken recurrence
	// seeds by failBrokenSeeds, producer-cursor skew by the lockstep
	// invariant in tryValidate, and misanchored load batches by the
	// address check in advanceValidated.
}

// failBrokenSeeds marks replica recurrence seeds whose physical register
// was just released; their replica 0 can no longer produce a value. The
// watch list is compacted as seeds resolve.
func (p *Proc) failBrokenSeeds() {
	if len(p.seedWatch) == 0 || p.freedCount == 0 {
		return
	}
	live := p.seedWatch[:0]
	for _, ref := range p.seedWatch {
		if !ref.live() {
			continue
		}
		ent := ref.ent
		if ent.SeedCaptured || ent.SeedBroken || ent.SeedPhys < 0 {
			continue
		}
		if p.wasFreed(ent.SeedPhys) {
			ent.SeedBroken = true
			if p.eventSched {
				// Replica 0 may be parked on the seed; wake it so it
				// discovers the break and fails.
				p.unblockEntry(ent)
			}
			continue
		}
		live = append(live, ref)
	}
	p.seedWatch = live
}
