package core

// Stall-cycle fast-forward engine.
//
// Memory-bound runs (mcf, the .big tier) spend long stretches with the
// window full behind an outstanding miss: fetch is blocked, the ready
// list is empty, every SRSMT entry is parked, and the only future work
// is a handful of in-flight completions. The stepped loop still pays
// the full per-cycle fixed costs on each of those cycles —
// hier.BeginCycle, rf.Sample, budget resets, the stage-header checks —
// doing provably nothing. This engine skips them: when the coming
// cycle is inert (ffIdle) it computes the earliest cycle at which any
// stage could act (ffNextEvent: the completion-queue lower bound, the
// replica completion wheel, the fetch unstall time and the front-end
// decode-ready time) and jumps p.cycle straight to the cycle before
// it, batching the skipped cycles' per-cycle bookkeeping into catch-up
// calls (regfile.File.SampleN, cache.Hierarchy.AdvanceTo) so every
// statistic — including Cycles and RegAvgInUse — stays bit-identical
// to the stepped reference.
//
// The inertness proof leans on the event-driven structures: an empty
// ready list stays empty because instructions only enter it from
// rename (inert) or a register write (only completions write), an
// empty active-entry worklist stays empty because entries are only
// re-listed by cursor movement or wakeups (only events move cursors),
// and a pending recurrence seed keeps its entry listed, so seed
// capture never needs polling across a skip. The naive scheduler has
// none of those guarantees, so it never fast-forwards; the stepped
// event engine is retained behind Config.NoFastForward as the
// differential-test reference (ff_diff_test.go proves skip-vs-step
// equivalence cycle for cycle).

// ffIdle reports whether the coming cycle (p.cycle+1) is provably
// inert: no stage can commit, complete, validate, issue, arbitrate a
// replica, rename or fetch. Conservative by design — any doubt keeps
// the stepped path, which is always correct.
func (p *Proc) ffIdle() bool {
	// Issue, validation and replica arbitration: the event-driven
	// queues say directly whether any work is armed.
	if !p.schedQuiescent() || len(p.activeEntries) != 0 {
		return false
	}
	// Commit: only a done head retires (and only completions, which are
	// future events, can make it done).
	if p.robCount > 0 && p.rob[p.robHead].state == stDone {
		return false
	}
	next := p.cycle + 1
	// Fetch runs unless it is halted, I-miss-stalled past next, or the
	// fetch buffer is full (and a full buffer stays full: only rename
	// drains it, and rename must be inert too — checked below).
	if !p.fetchHalted && next >= p.fetchStallUntil && p.fetchLen() < p.fetchCap() {
		return false
	}
	// Rename runs when a buffered instruction has cleared the decode
	// stages and no structural hazard blocks it.
	if p.fetchLen() > 0 && p.fetchFront().readyAt <= next && !p.renameBlocked() {
		return false
	}
	return true
}

// renameBlocked reports whether the front buffered instruction is held
// by a structural hazard that only an event can clear: a full window
// or LSQ (drained at commit, downstream of a completion), or an
// exhausted rename pool (registers free at commit/squash, also
// downstream of events). Rename is in-order, so the front instruction
// blocking blocks the whole stage; tryRename is side-effect-free on
// these refusals (the shared renameHazardFor is the one definition of
// them), except that with an empty window it reclaims idle SRSMT
// entries instead of waiting — that case reports unblocked.
func (p *Proc) renameBlocked() bool {
	switch p.renameHazardFor(p.metaAt(p.fetchFront().pc)) {
	case hazardWindow, hazardLSQ:
		return true
	case hazardRegs:
		return p.robCount > 0
	}
	return false
}

// ffNextEvent returns the earliest cycle strictly after p.cycle at
// which a stage could act, assuming ffIdle held: the minimum over the
// in-flight completion bound, the replica completion wheel, the fetch
// unstall cycle and the front-end decode-ready cycle. ok is false when
// no future event exists at all (a truly wedged pipeline; the caller
// falls back to stepping and Run's watchdog reports it).
func (p *Proc) ffNextEvent() (uint64, bool) {
	t := ^uint64(0)
	if c, ok := p.nextCompletion(); ok && c < t {
		t = c
	}
	if w, ok := p.nextWheelWake(p.cycle); ok && w < t {
		t = w
	}
	// A ready list of blocked instructions may hold loads waiting on a
	// free MSHR; the next miss retirement can unblock them. (With an
	// empty ready list nothing can attempt a data access, so the bound
	// is irrelevant.)
	if len(p.readyQ) > 0 {
		if m, ok := p.hier.NextMissRetire(); ok && m < t {
			t = m
		}
	}
	// Fetch wakes when an I-miss stall expires — but only if the buffer
	// has room for the fetched instructions (a full buffer waits on
	// rename instead, which the other events bound).
	if !p.fetchHalted && p.fetchStallUntil > p.cycle+1 && p.fetchLen() < p.fetchCap() {
		if p.fetchStallUntil < t {
			t = p.fetchStallUntil
		}
	}
	// Rename wakes when the buffered head emerges from the decode
	// stages — unless a structural hazard holds it, in which case the
	// completion events above already bound the wake.
	if p.fetchLen() > 0 && !p.renameBlocked() {
		if r := p.fetchFront().readyAt; r < t {
			t = r
		}
	}
	if t == ^uint64(0) {
		return 0, false
	}
	return t, true
}

// maybeFastForward performs the skip when the coming cycle is inert
// and the next event is more than one cycle out. Called at the top of
// step, before the cycle counter advances; afterwards the normal step
// lands exactly on the event cycle.
//
//civet:hotpath
func (p *Proc) maybeFastForward() {
	if !p.ffIdle() {
		return
	}
	t, ok := p.ffNextEvent()
	if !ok || t <= p.cycle+1 {
		return
	}
	n := t - p.cycle - 1
	// Batched per-cycle bookkeeping for the skipped range: one
	// occupancy sample per skipped cycle at the (unchanging) current
	// occupancy, and the hierarchy's miss retirement up to the last
	// skipped cycle. Everything else per-cycle (port budgets, issue
	// budget, spec-mem ports) is reset state nothing read.
	p.rf.SampleN(n)
	p.hier.AdvanceTo(t - 1)
	from := p.cycle
	p.cycle = t - 1
	p.ffJumps++
	p.ffSkipped += n
	if p.obs != nil {
		p.obs.OnCycleJump(from, p.cycle)
	}
	if p.tracer != nil {
		p.tracer.OnTraceJump(from, p.cycle)
	}
}

// FastForward reports the engine's activity: how many skips happened
// and how many stall cycles they absorbed. Deliberately not part of
// Stats so fast-forwarded and stepped runs stay comparable with plain
// struct equality.
func (p *Proc) FastForward() (jumps, skippedCycles uint64) {
	return p.ffJumps, p.ffSkipped
}
