package core

import (
	"testing"
	"testing/quick"

	"civect/internal/ci"
	"civect/internal/workload"
)

// entAlias keeps the resource-walk callbacks below readable.
type entAlias = ci.Entry

func TestRegisterAccountingAfterRun(t *testing.T) {
	// With the speculative data memory, replica storage never touches
	// the register file, so occupancy after a run must be exactly the
	// 64 architectural registers plus the in-flight remnant (the halted
	// head and any uncommitted tail the budget cut off).
	b := workload.MustGenerate(workload.Params{
		Name: "acct", ArrayWords: 1 << 8, Iters: 400, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 2, Streams: 2, StoreEvery: 1, Seed: 21,
	})
	cfg := DefaultConfig(ModeCI)
	cfg.SpecMemSize = 256
	p, err := New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	inflight := 0
	i := p.robHead
	for c := 0; c < p.robCount; c++ {
		if p.rob[i].valid && p.rob[i].physDest >= 0 {
			inflight++
		}
		i = p.robIndexAfter(i)
	}
	want := 64 + inflight
	if got := p.rf.InUse(); got != want {
		t.Errorf("registers in use after halt = %d, want %d (64 arch + %d in-flight)",
			got, want, inflight)
	}
}

func TestSpecMemAccountingAfterRun(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "smacct", ArrayWords: 1 << 8, Iters: 400, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 2, Streams: 2, StoreEvery: 0, Seed: 22,
	})
	cfg := DefaultConfig(ModeCI)
	cfg.SpecMemSize = 256
	p, err := New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Every live speculative-memory position must belong to a live
	// replica slot of a valid entry.
	owned := 0
	p.srsmt.ForEachValid(func(ent *entAlias) bool {
		for i := range ent.Replicas {
			if ent.Replicas[i].Abs >= 0 && ent.Replicas[i].Dest >= 0 {
				owned++
			}
		}
		return true
	})
	if got := p.sm.InUse(); got != owned {
		t.Errorf("spec positions in use = %d, but entries own %d", got, owned)
	}
}

// Property: across random programs the CI machine never leaks
// registers: occupancy at halt is bounded by architectural state plus
// window plus replica storage.
func TestNoRegisterLeakProperty(t *testing.T) {
	f := func(seed int64) bool {
		b := workload.Random(seed % 1000)
		cfg := DefaultConfig(ModeCI)
		p, err := New(cfg, b.Program, b.NewMem())
		if err != nil {
			return false
		}
		if _, err := p.Run(); err != nil {
			return false
		}
		replicaOwned := 0
		p.srsmt.ForEachValid(func(ent *entAlias) bool {
			for i := range ent.Replicas {
				if ent.Replicas[i].Abs >= 0 && ent.Replicas[i].Dest >= 0 {
					replicaOwned++
				}
			}
			return true
		})
		inflight := 0
		i := p.robHead
		for c := 0; c < p.robCount; c++ {
			if p.rob[i].valid && p.rob[i].physDest >= 0 {
				inflight++
			}
			i = p.robIndexAfter(i)
		}
		return p.rf.InUse() == 64+inflight+replicaOwned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEpisodeCountsConsistent(t *testing.T) {
	b, err := workload.SpecWithIters("parser", 1500)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(ModeCI), b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.EpisodesReused > st.EpisodesSelected {
		t.Errorf("reused episodes (%d) cannot exceed selected (%d)",
			st.EpisodesReused, st.EpisodesSelected)
	}
	if st.EpisodesSelected > st.HardMispredicts {
		t.Errorf("selected episodes (%d) cannot exceed hard mispredicts (%d)",
			st.EpisodesSelected, st.HardMispredicts)
	}
	if st.HardMispredicts > st.Mispredicts {
		t.Errorf("hard mispredicts (%d) cannot exceed mispredicts (%d)",
			st.HardMispredicts, st.Mispredicts)
	}
}

func TestFetchedCoversCommittedAndSquashed(t *testing.T) {
	b, err := workload.SpecWithIters("gzip", 800)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allModes {
		p, err := New(DefaultConfig(m), b.Program, b.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Renamed instructions either commit, get squashed, or are
		// still in flight at halt (at most a window's worth).
		slack := uint64(DefaultConfig(m).WindowSize)
		if st.Fetched > st.Committed+st.SquashedBP+slack {
			t.Errorf("%v: fetched %d > committed %d + squashed %d + window",
				m, st.Fetched, st.Committed, st.SquashedBP)
		}
		if st.Fetched < st.Committed {
			t.Errorf("%v: fetched %d < committed %d", m, st.Fetched, st.Committed)
		}
	}
}
