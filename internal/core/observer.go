package core

// Observer receives batched taps from a running simulation. All hooks
// are strictly read-only notifications: the processor hands out values,
// never references to mutable state, so an observer cannot perturb the
// simulation — runs with and without one are bit-identical (the sim
// package's differential test pins this).
//
// The hooks are batched so observation stays off the per-instruction
// path: OnCommitBatch fires at most once per simulated cycle (commit is
// the only stage that retires instructions, up to CommitWidth per
// cycle), OnCycleJump only when the fast-forward engine skips a stall
// region, and OnProgress at the registered committed-instruction
// cadence. With no observer registered the hot loop pays one
// predictable nil check per cycle and allocates nothing.
type Observer interface {
	// OnCommitBatch reports that the cycle just simulated retired
	// committed instructions, reused of which reused a precomputed
	// (validated or squash-reuse) value. committed is always >= 1.
	OnCommitBatch(cycle uint64, committed, reused int)
	// OnCycleJump reports a stall-cycle fast-forward: the engine moved
	// the cycle counter from from to to (the cycle just before the next
	// actionable one) without simulating the to-from cycles in between.
	OnCycleJump(from, to uint64)
	// OnProgress fires each time at least the registered progress
	// interval of committed instructions has accumulated since the last
	// report (checked at commit batches, so the callback cadence is
	// approximate).
	OnProgress(cycle, committed uint64)
}

// Tracer receives the per-event cycle taps the trace journal is built
// from: one callback per pipeline event (fetch, rename, issue, commit,
// squash) plus the engine-level fast-forward jump. It extends the
// Observer seam downward — where Observer batches per cycle, Tracer
// sees individual events — under the same contract: hooks are strictly
// read-only notifications carrying values, never references, so a
// tracer cannot perturb the simulation, and with no tracer registered
// each emission point pays exactly one nil check and allocates nothing
// (TestSteadyStateZeroAllocs covers the unregistered path).
//
// Event order within a cycle is the pipeline's processing order
// (reverse stage order: commits and squashes, then issues, renames,
// fetches), which is deterministic and — jump events aside —
// identical across all three engines; internal/trace relies on both
// properties to make journals byte-reproducible.
type Tracer interface {
	// OnTraceFetch reports an instruction entering the fetch buffer.
	OnTraceFetch(cycle uint64, pc int32)
	// OnTraceRename reports an instruction renamed and dispatched into
	// the window. seq is its dynamic sequence number; rename order is
	// program order on the (possibly wrong) fetched path, so seqs are
	// strictly increasing across rename events.
	OnTraceRename(cycle, seq uint64, pc int32)
	// OnTraceIssue reports an instruction issuing to a functional unit.
	// Issue is out of order: seqs arrive in arbitration order.
	OnTraceIssue(cycle, seq uint64, pc int32)
	// OnTraceCommit reports an instruction retiring. reused marks a
	// validated or squash-reuse commit (the CommittedReuse statistic);
	// halt marks the final halt-instruction commit.
	OnTraceCommit(cycle, seq uint64, pc int32, reused, halt bool)
	// OnTraceSquash reports a recovery: every in-flight instruction
	// with seq > keepSeq was discarded (n of them), and the fetch
	// buffer was cleared. Fires for branch-misprediction recoveries,
	// reuse replays and store coherence squashes alike.
	OnTraceSquash(cycle, keepSeq uint64, n int)
	// OnTraceJump reports a stall-cycle fast-forward, exactly like
	// Observer.OnCycleJump. It is engine-specific — the stepped
	// engines never jump — so the trace journal records it only at
	// LevelFull, keeping lower-level journals engine-independent.
	OnTraceJump(from, to uint64)
}

// SetTracer registers t (nil detaches) to receive per-event taps from
// subsequent cycles. At most one tracer is registered at a time.
func (p *Proc) SetTracer(t Tracer) { p.tracer = t }

// SetObserver registers o (nil detaches) to receive taps from
// subsequent cycles. progressEvery is the committed-instruction
// interval between OnProgress callbacks; 0 disables them.
func (p *Proc) SetObserver(o Observer, progressEvery uint64) {
	p.obs = o
	p.obsProgressEvery = progressEvery
	p.obsCommitted = p.Stats.Committed
	p.obsReused = p.Stats.CommittedReuse
	p.obsLastProgress = p.Stats.Committed
}

// observeCommits emits the cycle's commit batch (and any due progress
// report) to the registered observer. Called from step only when an
// observer is registered.
func (p *Proc) observeCommits() {
	d := p.Stats.Committed - p.obsCommitted
	if d == 0 {
		return
	}
	r := p.Stats.CommittedReuse - p.obsReused
	p.obsCommitted = p.Stats.Committed
	p.obsReused = p.Stats.CommittedReuse
	p.obs.OnCommitBatch(p.cycle, int(d), int(r))
	if p.obsProgressEvery > 0 && p.Stats.Committed-p.obsLastProgress >= p.obsProgressEvery {
		p.obsLastProgress = p.Stats.Committed
		p.obs.OnProgress(p.cycle, p.Stats.Committed)
	}
}
