package core

// Observer receives batched taps from a running simulation. All hooks
// are strictly read-only notifications: the processor hands out values,
// never references to mutable state, so an observer cannot perturb the
// simulation — runs with and without one are bit-identical (the sim
// package's differential test pins this).
//
// The hooks are batched so observation stays off the per-instruction
// path: OnCommitBatch fires at most once per simulated cycle (commit is
// the only stage that retires instructions, up to CommitWidth per
// cycle), OnCycleJump only when the fast-forward engine skips a stall
// region, and OnProgress at the registered committed-instruction
// cadence. With no observer registered the hot loop pays one
// predictable nil check per cycle and allocates nothing.
type Observer interface {
	// OnCommitBatch reports that the cycle just simulated retired
	// committed instructions, reused of which reused a precomputed
	// (validated or squash-reuse) value. committed is always >= 1.
	OnCommitBatch(cycle uint64, committed, reused int)
	// OnCycleJump reports a stall-cycle fast-forward: the engine moved
	// the cycle counter from from to to (the cycle just before the next
	// actionable one) without simulating the to-from cycles in between.
	OnCycleJump(from, to uint64)
	// OnProgress fires each time at least the registered progress
	// interval of committed instructions has accumulated since the last
	// report (checked at commit batches, so the callback cadence is
	// approximate).
	OnProgress(cycle, committed uint64)
}

// SetObserver registers o (nil detaches) to receive taps from
// subsequent cycles. progressEvery is the committed-instruction
// interval between OnProgress callbacks; 0 disables them.
func (p *Proc) SetObserver(o Observer, progressEvery uint64) {
	p.obs = o
	p.obsProgressEvery = progressEvery
	p.obsCommitted = p.Stats.Committed
	p.obsReused = p.Stats.CommittedReuse
	p.obsLastProgress = p.Stats.Committed
}

// observeCommits emits the cycle's commit batch (and any due progress
// report) to the registered observer. Called from step only when an
// observer is registered.
func (p *Proc) observeCommits() {
	d := p.Stats.Committed - p.obsCommitted
	if d == 0 {
		return
	}
	r := p.Stats.CommittedReuse - p.obsReused
	p.obsCommitted = p.Stats.Committed
	p.obsReused = p.Stats.CommittedReuse
	p.obs.OnCommitBatch(p.cycle, int(d), int(r))
	if p.obsProgressEvery > 0 && p.Stats.Committed-p.obsLastProgress >= p.obsProgressEvery {
		p.obsLastProgress = p.Stats.Committed
		p.obs.OnProgress(p.cycle, p.Stats.Committed)
	}
}
