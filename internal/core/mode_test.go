package core

import (
	"strings"
	"testing"
)

// TestModeRoundTrip pins the one shared mode↔string mapping: every
// mode's name parses back to itself, and nothing else parses.
func TestModeRoundTrip(t *testing.T) {
	modes := Modes()
	if len(modes) != 5 {
		t.Fatalf("Modes() lists %d modes, want 5", len(modes))
	}
	wantNames := []string{"scal", "wb", "ci", "ci-iw", "vect"}
	for i, m := range modes {
		if m.String() != wantNames[i] {
			t.Errorf("mode %d: String() = %q, want %q", i, m, wantNames[i])
		}
		got, err := ParseMode(m.String())
		if err != nil {
			t.Errorf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for _, bad := range []string{"", "CI", "scalar", "mode(2)", "fast-forward"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) must fail", bad)
		} else if !strings.Contains(err.Error(), "unknown mode") {
			t.Errorf("ParseMode(%q) error %q lacks context", bad, err)
		}
	}
}

// TestValidateRejectsInvalidMode ensures an out-of-range mode is a
// construction-time error, not a silently weird machine.
func TestValidateRejectsInvalidMode(t *testing.T) {
	cfg := DefaultConfig(ModeCI)
	cfg.Mode = Mode(99)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate must reject mode 99")
	}
	cfg.Mode = Mode(-1)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate must reject mode -1")
	}
}
