package core

import (
	"context"
	"errors"
	"fmt"

	"civect/internal/mem"
)

// Batched lockstep multi-configuration engine.
//
// A sweep runs many configuration points of the same workload; most of
// their construction work (program validation, per-PC predecode) and
// much of their per-cycle working set (the static program, the shared
// instruction metadata) is identical. BatchProc holds K independent
// pipeline states — one Proc per configuration lane — over one
// SharedProgram, and steps the lanes in frontier-synchronized lockstep:
// each round advances every live lane to a common cycle frontier, so
// the shared read-only state stays hot across lanes while the per-lane
// mutable state (rename/ROB/SRSMT/cache arrays, themselves SoA-packed
// inside each Proc — see ci.TurnHeader) is touched in long dense
// chunks rather than cycle-by-cycle interleave.
//
// Lanes retire independently: a lane that halts or exhausts its
// committed-instruction budget leaves the rotation and reports its
// final statistics immediately, while the rest keep stepping. When
// divergence empties the rotation down to a single live lane, the
// engine falls back to running that lane straight through the existing
// per-lane fast-forward engine (no frontier bookkeeping) — lockstep
// pays only while there is cross-lane locality to exploit.
//
// Every lane steps through exactly the same Proc.step cycle loop a
// single-configuration run uses, so per-lane statistics are
// bit-identical to sequential runs by construction; the differential
// suite (batch_test.go) proves it per cell across all three engines.

// batchChunk is the lockstep round length in cycles. The trade is
// between rotation overhead and shared-state residency: each lane
// switch refills the cache with the incoming lane's private pipeline
// state (rename/ROB/SRSMT/cache arrays — much larger than the shared
// program metadata), so short rounds thrash. 4096-cycle rounds
// measured ~3-4% slower than running lanes back-to-back on
// `ciexp -exp all`; 64k-cycle rounds close that gap while still
// rotating every few milliseconds of wall clock.
const batchChunk = 65536

// watchdogCycles is the forward-progress bound shared by RunContext
// and the batch engine: a pipeline that commits nothing for this many
// cycles is a simulator bug and fails loudly instead of spinning.
const watchdogCycles = 500_000

// laneStatus reports why a lane's lockstep turn ended.
type laneStatus uint8

const (
	// laneAtFrontier: the round's cycle frontier was reached with work
	// remaining.
	laneAtFrontier laneStatus = iota
	// laneFinished: the program halted or the committed-instruction
	// budget is exhausted.
	laneFinished
	// laneCycleBound: the cycle safety bound was exceeded.
	laneCycleBound
	// laneStalled: the no-commit-progress watchdog tripped.
	laneStalled
	// laneCanceled: the run context fired at a cycle boundary.
	laneCanceled
)

// laneState is one configuration lane's stepping bookkeeping.
type laneState struct {
	p *Proc
	// maxCycles is the lane's cycle safety bound (Config.MaxCycles,
	// defaulted exactly as RunContext defaults it).
	maxCycles uint64
	// Watchdog state: the last observed committed count and the cycle
	// it moved.
	lastCommit      uint64
	lastCommitCycle uint64
	// ctxCheck counts steps down to the next context poll.
	ctxCheck int
	// done marks a lane out of the rotation (result already reported).
	done bool
}

// stepChunk advances the lane until the cycle frontier, a terminal
// condition, or a context poll stops it. It is the batched engine's
// per-lane hot loop: one tight rotation turn over Proc.step, with all
// error rendering kept out in the caller.
//
//civet:hotpath
func (ls *laneState) stepChunk(frontier uint64, done <-chan struct{}) laneStatus {
	p := ls.p
	for {
		if p.halted || (p.cfg.MaxInstr > 0 && p.Stats.Committed >= p.cfg.MaxInstr) {
			return laneFinished
		}
		if p.cycle >= frontier {
			return laneAtFrontier
		}
		if p.cycle >= ls.maxCycles {
			return laneCycleBound
		}
		if done != nil {
			if ls.ctxCheck--; ls.ctxCheck <= 0 {
				ls.ctxCheck = ctxCheckInterval
				select {
				case <-done:
					return laneCanceled
				default:
				}
			}
		}
		p.step()
		if p.Stats.Committed != ls.lastCommit {
			ls.lastCommit = p.Stats.Committed
			ls.lastCommitCycle = p.cycle
		} else if p.cycle-ls.lastCommitCycle > watchdogCycles {
			return laneStalled
		}
	}
}

// BatchProc steps K configuration lanes of one shared program in
// frontier-synchronized lockstep. Build with NewBatchProc, run with
// RunContext; single-use, not safe for concurrent use.
type BatchProc struct {
	shared *SharedProgram
	lanes  []laneState
	// chunk is the lockstep round length, batchChunk except in tests
	// that need several rounds out of short programs.
	chunk uint64
	ran   bool
}

// NewBatchProc builds one pipeline lane per configuration, all over
// the shared program sp. mems[i] is lane i's private initial data
// image (the lane owns and mutates it; nil means an empty image);
// len(mems) must equal len(cfgs). Every configuration is validated
// eagerly, so a BatchProc that constructs is guaranteed runnable.
func NewBatchProc(sp *SharedProgram, cfgs []Config, mems []*mem.Memory) (*BatchProc, error) {
	if sp == nil {
		return nil, errors.New("core: nil shared program")
	}
	if len(cfgs) == 0 {
		return nil, errors.New("core: batch needs at least one lane")
	}
	if len(mems) != len(cfgs) {
		return nil, fmt.Errorf("core: batch has %d configs but %d memory images", len(cfgs), len(mems))
	}
	b := &BatchProc{shared: sp, lanes: make([]laneState, len(cfgs)), chunk: batchChunk}
	for i, cfg := range cfgs {
		p, err := NewShared(cfg, sp, mems[i])
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", i, err)
		}
		maxCycles := cfg.MaxCycles
		if maxCycles == 0 {
			maxCycles = 200_000_000
		}
		b.lanes[i] = laneState{p: p, maxCycles: maxCycles, ctxCheck: ctxCheckInterval}
	}
	return b, nil
}

// Lanes returns the number of configuration lanes.
func (b *BatchProc) Lanes() int { return len(b.lanes) }

// Proc returns lane i's processor (observer/tracer wiring before the
// run, state inspection after it).
func (b *BatchProc) Proc(i int) *Proc { return b.lanes[i].p }

// laneError renders a lane's terminal status as RunContext would.
func laneError(ls *laneState, st laneStatus) error {
	p := ls.p
	switch st {
	case laneCycleBound:
		return fmt.Errorf("core: cycle bound %d exceeded (committed %d)", ls.maxCycles, p.Stats.Committed)
	case laneStalled:
		return fmt.Errorf("core: no commit progress for 500k cycles at cycle %d (mode %v, head state %v)",
			p.cycle, p.cfg.Mode, p.headState())
	}
	return nil
}

// finishLane finalizes a terminal lane and reports it. Statistics are
// nil for hard errors (cycle bound, watchdog), partial-but-well-formed
// for cancellation, final otherwise — the same contract as
// Proc.RunContext, per lane.
func (b *BatchProc) finishLane(i int, st laneStatus, ctx context.Context, onLane func(int, *Stats, error)) {
	ls := &b.lanes[i]
	ls.done = true
	switch st {
	case laneFinished:
		onLane(i, ls.p.Finalize(), nil)
	case laneCanceled:
		onLane(i, ls.p.Finalize(), ctx.Err())
	default:
		onLane(i, nil, laneError(ls, st))
	}
}

// RunContext runs every lane to its own halt or budget, reporting each
// lane's outcome through onLane(lane, stats, err) the moment the lane
// retires — lanes finish in simulation order, not lane order. The
// per-lane contract matches Proc.RunContext exactly: cancellation
// stops every remaining lane at its next cycle boundary and reports
// partial, well-formed statistics with ctx.Err(); cycle-bound and
// watchdog failures report a nil Stats with the lane's error.
// RunContext itself returns ctx.Err() on cancellation, else the first
// hard lane error, else nil. Single-use.
func (b *BatchProc) RunContext(ctx context.Context, onLane func(lane int, st *Stats, err error)) error {
	if b.ran {
		return errors.New("core: batch already ran")
	}
	b.ran = true
	if onLane == nil {
		onLane = func(int, *Stats, error) {}
	}
	done := ctx.Done()
	live := len(b.lanes)
	var firstErr error
	canceled := false

	// Frontier rounds: advance every live lane to a common cycle
	// frontier, retiring lanes as they finish. The frontier tracks the
	// laggard lane (max of lane cycles at round start + chunk), so a
	// lane whose fast-forward engine overshoots a round boundary simply
	// sits out rounds until the frontier catches up — divergent lanes
	// cost nothing.
	frontier := uint64(0)
	for live > 1 {
		frontier += b.chunk
		for i := range b.lanes {
			ls := &b.lanes[i]
			if ls.done {
				continue
			}
			st := ls.stepChunk(frontier, done)
			if st == laneAtFrontier {
				continue
			}
			if st == laneCanceled {
				canceled = true
				break
			}
			b.finishLane(i, st, ctx, onLane)
			live--
			if firstErr == nil {
				firstErr = laneError(ls, st)
			}
		}
		if canceled {
			break
		}
	}

	// Fallback: a single live lane (or a canceled run) has no
	// cross-lane locality left — run it straight through the per-lane
	// engine with no frontier bookkeeping.
	if !canceled && live == 1 {
		for i := range b.lanes {
			ls := &b.lanes[i]
			if ls.done {
				continue
			}
			st := ls.stepChunk(^uint64(0), done)
			if st == laneCanceled {
				canceled = true
				break
			}
			b.finishLane(i, st, ctx, onLane)
			if firstErr == nil {
				firstErr = laneError(ls, st)
			}
		}
	}

	if canceled {
		// Every remaining lane stops at its current cycle boundary with
		// partial statistics, exactly as a per-lane RunContext would.
		for i := range b.lanes {
			if !b.lanes[i].done {
				b.finishLane(i, laneCanceled, ctx, onLane)
			}
		}
		return ctx.Err()
	}
	return firstErr
}
