package core

// Event-driven issue scheduler.
//
// The naive scheduler (PR 1, retained behind Config.NaiveScheduler as
// the differential-test reference) walks the entire waiting list every
// cycle and re-tests every instruction's operands even though most of
// them cannot possibly have become ready — profiling showed that scan
// at ~12% of ci-mode CPU. The event-driven scheduler replaces the scan
// with the classic operand-wakeup CAM of an out-of-order issue queue:
//
//   - an instruction with an unready source operand parks on the
//     physical register of its first unready operand (regWaiters);
//   - when that register is written (writeReg), the parked instructions
//     wake: each re-parks on its next unready operand or, with all
//     operands ready, moves to the ready list;
//   - issueStage arbitrates over the ready list only.
//
// Arbitration order is preserved bit-for-bit: every dispatch (and every
// fallback re-dispatch) draws a monotonically increasing stamp, and the
// ready list is kept stamp-sorted. The naive waiting list only ever
// appends at the tail, so its scan order *is* stamp order; the ready
// list presents the ready subsequence in exactly that order, and
// tryIssue has no side effects on instructions with unready operands,
// so the per-cycle sequence of issue attempts — and therefore cache
// port, ALU and budget consumption — is identical to the naive scan.
//
// Wakeup hygiene mirrors the replica worklist: squashed instructions
// are dropped lazily at wake (the (idx, seq) pair detects ROB-slot
// reuse), and a register freed by a squash only ever strands listings
// of instructions that were squashed with it — an instruction can only
// park on a register produced by an older instruction, so the producer
// cannot be squashed without the parked consumer dying too. Stranded
// listings are drained the next time the register is written.

// schedQuiescent reports whether the issue scheduler provably cannot
// act until an external event fires — the earliest-wake bound the
// fast-forward engine aggregates. With the event scheduler that holds
// in two cases: the ready list is empty (parked instructions wake only
// through writeReg, and every write is downstream of a completion
// event the aggregator already bounds), or the just-finished cycle
// scanned the whole ready list and issued nothing with no insertion
// since — the survivors are blocked on conditions that only events
// change (an older store's unknown address, a full MSHR file; tryIssue
// is side-effect-free on failure and per-cycle resources reset full,
// so a failed attempt fails identically every cycle until one fires).
// Validation in flight always disqualifies: advanceValidated polls
// per-cycle conditions (ports, patience deadlines) with no clean
// bound. The naive waiting list mixes ready and unready instructions,
// so it admits no such bound and never fast-forwards.
func (p *Proc) schedQuiescent() bool {
	if !p.eventSched || len(p.validPend) != 0 {
		return false
	}
	return len(p.readyQ) == 0 || (p.lastNoIssue && !p.readyDirty)
}

// enqueueWaiting places a dispatched (or validation-fallback)
// instruction on the scheduler with a fresh arbitration stamp.
func (p *Proc) enqueueWaiting(idx int, e *robEntry) {
	p.schedStamp++
	ref := waitRef{idx: idx, seq: e.seq, stamp: p.schedStamp}
	if !p.eventSched {
		p.waitQ = append(p.waitQ, ref)
		return
	}
	p.parkOrReady(ref, e)
}

// parkOrReady parks ref on its first unready source operand, or inserts
// it into the ready list when every operand is ready.
func (p *Proc) parkOrReady(ref waitRef, e *robEntry) {
	for i := 0; i < int(e.nsrc); i++ {
		if r := int(e.srcPhys[i]); !p.rf.Ready(r) {
			p.parkOn(r, ref)
			return
		}
	}
	p.readyInsert(ref)
}

// parkOn appends ref to register r's wakeup list.
func (p *Proc) parkOn(r int, ref waitRef) {
	if r >= len(p.regWaiters) {
		//civet:allow hotalloc amortized waiter-table doubling; grows O(log n) times, then never again
		grown := make([][]waitRef, max(2*len(p.regWaiters), r+64))
		copy(grown, p.regWaiters)
		p.regWaiters = grown
	}
	p.regWaiters[r] = append(p.regWaiters[r], ref)
}

// readyInsert inserts ref into the ready list at its stamp position.
// Dispatch stamps are monotonic, so the common case is an append; wakes
// of older instructions splice into the middle.
func (p *Proc) readyInsert(ref waitRef) {
	p.readyDirty = true
	q := p.readyQ
	if n := len(q); n == 0 || q[n-1].stamp < ref.stamp {
		p.readyQ = append(q, ref)
		return
	}
	i, j := 0, len(q)
	for i < j {
		m := (i + j) / 2
		if q[m].stamp < ref.stamp {
			i = m + 1
		} else {
			j = m
		}
	}
	q = append(q, waitRef{})
	copy(q[i+1:], q[i:])
	q[i] = ref
	p.readyQ = q
}

// writeReg writes a rename-visible physical register and wakes the
// instructions parked on it. Replica storage registers are written with
// plain rf.Write: no instruction ever parks on them (they never enter
// the rename map).
func (p *Proc) writeReg(r int, val uint64) {
	p.rf.Write(r, val)
	if p.eventSched {
		p.wakeReg(r)
	}
}

// wakeReg drains register r's wakeup list. Re-parks never target r
// again (r just became ready), so reusing the list's backing array
// under the iteration is safe.
func (p *Proc) wakeReg(r int) {
	if r >= len(p.regWaiters) || len(p.regWaiters[r]) == 0 {
		return
	}
	l := p.regWaiters[r]
	p.regWaiters[r] = l[:0]
	for _, ref := range l {
		e := &p.rob[ref.idx]
		if !e.valid || e.seq != ref.seq || e.state != stWaiting {
			continue // squashed or re-routed while parked
		}
		p.parkOrReady(ref, e)
	}
}
