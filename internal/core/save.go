package core

import (
	"fmt"

	"civect/internal/bpred"
	"civect/internal/cache"
	"civect/internal/ci"
	"civect/internal/ckpt"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/regfile"
	"civect/internal/stride"
)

// Full-machine checkpointing.
//
// A checkpoint captures the processor at a cycle boundary — between two
// Step calls — completely enough that RestoreCheckpoint rebuilds a Proc
// whose remaining run is bit-identical to the original's: same cycle
// count, same statistics struct, same architectural state. That is a
// stronger contract than architectural checkpointing (registers +
// memory), and it has to be: in-flight pipeline state (the ROB, the
// scheduler lists, cache tags, predictor counters, SRSMT replica rings)
// all shape future timing, so any of it left out would make a restored
// run diverge from the run it checkpointed. The differential suite in
// save_test.go proves the property across engines, modes and workloads.
//
// What is deliberately NOT serialized:
//
//   - intra-cycle scratch (inTick/tickIdx/scan*, turnNextDone, per-cycle
//     budgets, pcScratch/lsqFiltered, the iwChain capture scratch,
//     wordListFree): dead between cycles by construction;
//   - observer/tracer wiring and their batching cursors: attachments are
//     per-session, never part of machine state, and cannot affect stats;
//   - derived mode flags (eventSched, fastFwd, aliasEmu): recomputed
//     from the serialized Config exactly as build does.
//
// Pointer-shaped state is index-encoded: SRSMT worklist/watch listings
// and ROB value-entry pointers become (way index, generation) pairs
// re-linked against the restored table's fixed way storage.

// CheckpointVersion is the CIVK payload format version for full-machine
// processor checkpoints. Bump on any layout change.
const CheckpointVersion = 1

// CheckpointInfo is the cheap-to-decode prefix of a checkpoint:
// everything a tool needs to identify what the checkpoint is without
// deserializing machine state.
type CheckpointInfo struct {
	Config      Config
	Program     string
	ProgramHash uint64
	Cycle       uint64
	Committed   uint64
}

// HashProgram exposes the checkpoint program digest to sibling
// serializers (internal/sample's state files carry the same triple —
// name, length, hash — and must refuse the same mismatches).
func HashProgram(prog *isa.Program) uint64 { return programHash(prog) }

// SaveConfigState / LoadConfigState expose the checkpoint Config
// encoding for the same reason: a sample-state file is self-describing,
// carrying the detailed-machine configuration its measurements assume.
func SaveConfigState(e *ckpt.Encoder, c *Config) { saveConfig(e, c) }

// LoadConfigState decodes a Config written by SaveConfigState.
func LoadConfigState(d *ckpt.Decoder) Config { return loadConfig(d) }

// programHash digests a static program (name and every instruction
// field) so a checkpoint can refuse restoration over the wrong program.
func programHash(prog *isa.Program) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x00000100000001b3
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for _, c := range []byte(prog.Name) {
		h ^= uint64(c)
		h *= prime
	}
	for _, in := range prog.Code {
		mix(uint64(in.Op) | uint64(in.Rd)<<8 | uint64(in.Ra)<<16 | uint64(in.Rb)<<24)
		mix(uint64(in.Imm))
		mix(uint64(in.Target))
	}
	return h
}

func saveConfig(e *ckpt.Encoder, c *Config) {
	e.Tag("config")
	e.Int(int(c.Mode))
	e.Int(c.FetchWidth)
	e.Int(c.DecodeWidth)
	e.Int(c.IssueWidth)
	e.Int(c.CommitWidth)
	e.Int(c.FrontEndDepth)
	e.Int(c.WindowSize)
	e.Int(c.LSQSize)
	e.Int(c.IntALUs)
	e.Int(c.IntMulDivs)
	e.Int(c.LatIntALU)
	e.Int(c.LatIntMul)
	e.Int(c.LatIntDiv)
	e.Int(c.PhysRegs)
	e.Int(c.GshareEntries)
	for _, cc := range []struct{ SizeBytes, LineBytes, Assoc, HitLat, MissLat int }{
		{c.Hier.L1I.SizeBytes, c.Hier.L1I.LineBytes, c.Hier.L1I.Assoc, c.Hier.L1I.HitLat, c.Hier.L1I.MissLat},
		{c.Hier.L1D.SizeBytes, c.Hier.L1D.LineBytes, c.Hier.L1D.Assoc, c.Hier.L1D.HitLat, c.Hier.L1D.MissLat},
		{c.Hier.L2.SizeBytes, c.Hier.L2.LineBytes, c.Hier.L2.Assoc, c.Hier.L2.HitLat, c.Hier.L2.MissLat},
		{c.Hier.L3.SizeBytes, c.Hier.L3.LineBytes, c.Hier.L3.Assoc, c.Hier.L3.HitLat, c.Hier.L3.MissLat},
	} {
		e.Int(cc.SizeBytes)
		e.Int(cc.LineBytes)
		e.Int(cc.Assoc)
		e.Int(cc.HitLat)
		e.Int(cc.MissLat)
	}
	e.Int(c.Hier.DL1Ports)
	e.Bool(c.Hier.WideBus)
	e.Int(c.Hier.WideLoadsPerAccess)
	e.Int(c.Hier.MaxOutstandingMisses)
	e.Int(c.DL1Ports)
	e.Int(c.Replicas)
	e.Int(c.StridedPCsPerEntry)
	e.Int(c.StrideSets)
	e.Int(c.StrideAssoc)
	e.Int(c.SRSMTSets)
	e.Int(c.SRSMTAssoc)
	e.Int(c.MBSSets)
	e.Int(c.MBSAssoc)
	e.Int(c.NRBQEntries)
	e.Int(c.SpecMemSize)
	e.Int(c.SpecMemLat)
	e.Int(c.ReplicaRegReserve)
	e.Int(c.RenameRegHeadroom)
	e.Bool(c.DisableDAEC)
	e.Bool(c.DisableMBSGate)
	e.Bool(c.NaiveScheduler)
	e.Bool(c.NoFastForward)
	e.Bool(c.CommitRecomputeAll)
	e.Bool(c.EmulateAliasedWorklist)
	e.U64(c.MaxInstr)
	e.U64(c.MaxCycles)
}

func loadConfig(d *ckpt.Decoder) Config {
	d.Tag("config")
	var c Config
	c.Mode = Mode(d.Int())
	c.FetchWidth = d.Int()
	c.DecodeWidth = d.Int()
	c.IssueWidth = d.Int()
	c.CommitWidth = d.Int()
	c.FrontEndDepth = d.Int()
	c.WindowSize = d.Int()
	c.LSQSize = d.Int()
	c.IntALUs = d.Int()
	c.IntMulDivs = d.Int()
	c.LatIntALU = d.Int()
	c.LatIntMul = d.Int()
	c.LatIntDiv = d.Int()
	c.PhysRegs = d.Int()
	c.GshareEntries = d.Int()
	for _, lvl := range []*struct{ SizeBytes, LineBytes, Assoc, HitLat, MissLat *int }{
		{&c.Hier.L1I.SizeBytes, &c.Hier.L1I.LineBytes, &c.Hier.L1I.Assoc, &c.Hier.L1I.HitLat, &c.Hier.L1I.MissLat},
		{&c.Hier.L1D.SizeBytes, &c.Hier.L1D.LineBytes, &c.Hier.L1D.Assoc, &c.Hier.L1D.HitLat, &c.Hier.L1D.MissLat},
		{&c.Hier.L2.SizeBytes, &c.Hier.L2.LineBytes, &c.Hier.L2.Assoc, &c.Hier.L2.HitLat, &c.Hier.L2.MissLat},
		{&c.Hier.L3.SizeBytes, &c.Hier.L3.LineBytes, &c.Hier.L3.Assoc, &c.Hier.L3.HitLat, &c.Hier.L3.MissLat},
	} {
		*lvl.SizeBytes = d.Int()
		*lvl.LineBytes = d.Int()
		*lvl.Assoc = d.Int()
		*lvl.HitLat = d.Int()
		*lvl.MissLat = d.Int()
	}
	c.Hier.DL1Ports = d.Int()
	c.Hier.WideBus = d.Bool()
	c.Hier.WideLoadsPerAccess = d.Int()
	c.Hier.MaxOutstandingMisses = d.Int()
	c.DL1Ports = d.Int()
	c.Replicas = d.Int()
	c.StridedPCsPerEntry = d.Int()
	c.StrideSets = d.Int()
	c.StrideAssoc = d.Int()
	c.SRSMTSets = d.Int()
	c.SRSMTAssoc = d.Int()
	c.MBSSets = d.Int()
	c.MBSAssoc = d.Int()
	c.NRBQEntries = d.Int()
	c.SpecMemSize = d.Int()
	c.SpecMemLat = d.Int()
	c.ReplicaRegReserve = d.Int()
	c.RenameRegHeadroom = d.Int()
	c.DisableDAEC = d.Bool()
	c.DisableMBSGate = d.Bool()
	c.NaiveScheduler = d.Bool()
	c.NoFastForward = d.Bool()
	c.CommitRecomputeAll = d.Bool()
	c.EmulateAliasedWorklist = d.Bool()
	c.MaxInstr = d.U64()
	c.MaxCycles = d.U64()
	return c
}

func saveRenEntry(e *ckpt.Encoder, r *renEntry) {
	e.U64(r.writerSeq)
	e.U64(r.vecGen)
	e.U64(r.vecPC)
	e.Int(int(r.phys))
	e.Int(int(r.writerPC))
	e.Int(int(r.strideRef))
	e.Bool(r.vec)
	e.Bool(r.dirty)
	e.U8(r.nStrided)
}

func loadRenEntry(d *ckpt.Decoder, r *renEntry) {
	r.writerSeq = d.U64()
	r.vecGen = d.U64()
	r.vecPC = d.U64()
	r.phys = int32(d.Int())
	r.writerPC = int32(d.Int())
	r.strideRef = int32(d.Int())
	r.vec = d.Bool()
	r.dirty = d.Bool()
	r.nStrided = d.U8()
}

// saveEntryRef encodes an SRSMT worklist listing as (way, gen, stamp).
func (p *Proc) saveEntryRef(e *ckpt.Encoder, r *entryRef) {
	if r.ent == nil {
		e.Int(-1)
		return
	}
	e.Int(p.srsmt.WayOf(r.ent))
	e.U64(r.gen)
	e.U64(r.stamp)
}

func (p *Proc) loadEntryRef(d *ckpt.Decoder) (entryRef, bool) {
	w := d.Int()
	if w < 0 || d.Err() != nil {
		return entryRef{}, false
	}
	if p.srsmt == nil || w >= p.srsmt.NumWays() {
		d.Fail("worklist way %d out of range", w)
		return entryRef{}, false
	}
	ent := p.srsmt.Way(w)
	return entryRef{ent: ent, hdr: ent.TurnHeader, gen: d.U64(), stamp: d.U64()}, true
}

func saveWaitRef(e *ckpt.Encoder, r waitRef) {
	e.Int(r.idx)
	e.U64(r.seq)
	e.U64(r.stamp)
}

func loadWaitRef(d *ckpt.Decoder) waitRef {
	return waitRef{idx: d.Int(), seq: d.U64(), stamp: d.U64()}
}

func saveWaitList(e *ckpt.Encoder, l []waitRef) {
	e.Int(len(l))
	for _, r := range l {
		saveWaitRef(e, r)
	}
}

func loadWaitList(d *ckpt.Decoder) []waitRef {
	n := d.Count()
	if n == 0 {
		return nil
	}
	l := make([]waitRef, n)
	for i := range l {
		l[i] = loadWaitRef(d)
	}
	return l
}

func (p *Proc) saveROBEntry(e *ckpt.Encoder, r *robEntry) {
	e.Bool(r.valid)
	e.U8(uint8(r.state))
	e.Bool(r.hasDest)
	e.Bool(r.predTaken)
	e.Bool(r.actTaken)
	e.Bool(r.mispredicted)
	e.Bool(r.executed)
	e.Bool(r.fwdStore)
	e.Bool(r.ciSelected)
	e.Bool(r.afterCRP)
	e.Bool(r.validated)
	e.Bool(r.reuseIW)
	e.Bool(r.tainted)
	e.Bool(r.copySched)
	e.U8(uint8(r.logDest))
	e.U8(r.nsrc)
	e.Int(int(r.pc))
	e.Int(int(r.physDest))
	e.Int(int(r.actTarget))
	e.Int(int(r.valIdx))
	e.Int(int(r.srcPhys[0]))
	e.Int(int(r.srcPhys[1]))
	e.U64(r.seq)
	e.U8(uint8(r.in.Op))
	e.U8(uint8(r.in.Rd))
	e.U8(uint8(r.in.Ra))
	e.U8(uint8(r.in.Rb))
	e.I64(r.in.Imm)
	e.Int(r.in.Target)
	saveRenEntry(e, &r.oldRen)
	e.U64(r.histSnapshot)
	e.U64(r.addr)
	e.U64(r.value)
	e.U64(r.doneAt)
	e.U64(r.ciEpisode)
	if r.valEntry != nil {
		e.Int(p.srsmt.WayOf(r.valEntry))
	} else {
		e.Int(-1)
	}
	e.U64(r.valGen)
	e.U64(r.valSince)
	e.U64(r.srcWriterSeq[0])
	e.U64(r.srcWriterSeq[1])
	e.U64(r.copyReadyAt)
}

func (p *Proc) loadROBEntry(d *ckpt.Decoder, r *robEntry) {
	r.valid = d.Bool()
	r.state = instState(d.U8())
	r.hasDest = d.Bool()
	r.predTaken = d.Bool()
	r.actTaken = d.Bool()
	r.mispredicted = d.Bool()
	r.executed = d.Bool()
	r.fwdStore = d.Bool()
	r.ciSelected = d.Bool()
	r.afterCRP = d.Bool()
	r.validated = d.Bool()
	r.reuseIW = d.Bool()
	r.tainted = d.Bool()
	r.copySched = d.Bool()
	r.logDest = isa.Reg(d.U8())
	r.nsrc = d.U8()
	r.pc = int32(d.Int())
	r.physDest = int32(d.Int())
	r.actTarget = int32(d.Int())
	r.valIdx = int32(d.Int())
	r.srcPhys[0] = int32(d.Int())
	r.srcPhys[1] = int32(d.Int())
	r.seq = d.U64()
	r.in.Op = isa.Op(d.U8())
	r.in.Rd = isa.Reg(d.U8())
	r.in.Ra = isa.Reg(d.U8())
	r.in.Rb = isa.Reg(d.U8())
	r.in.Imm = d.I64()
	r.in.Target = d.Int()
	loadRenEntry(d, &r.oldRen)
	r.histSnapshot = d.U64()
	r.addr = d.U64()
	r.value = d.U64()
	r.doneAt = d.U64()
	r.ciEpisode = d.U64()
	w := d.Int()
	if w >= 0 {
		if p.srsmt == nil || w >= p.srsmt.NumWays() {
			d.Fail("ROB value-entry way %d out of range", w)
			return
		}
		r.valEntry = p.srsmt.Way(w)
	} else {
		r.valEntry = nil
	}
	r.valGen = d.U64()
	r.valSince = d.U64()
	r.srcWriterSeq[0] = d.U64()
	r.srcWriterSeq[1] = d.U64()
	r.copyReadyAt = d.U64()
}

func (p *Proc) saveStats(e *ckpt.Encoder) {
	e.Tag("stats")
	s := &p.Stats
	e.U64(s.Cycles)
	e.U64(s.Committed)
	e.U64(s.CommittedReuse)
	e.U64(s.Fetched)
	e.U64(s.SquashedBP)
	e.U64(s.ReplicasDispatched)
	e.U64(s.Branches)
	e.U64(s.CondBranches)
	e.U64(s.Mispredicts)
	e.U64(s.HardMispredicts)
	e.U64(s.EpisodesSelected)
	e.U64(s.EpisodesReused)
	e.U64(s.Loads)
	e.U64(s.Stores)
	e.U64(s.StoreConflicts)
	e.U64(s.CoherenceSquashes)
	e.U64(s.VectorizedEntries)
	e.U64(s.ValidationFails)
	e.U64(s.ValFailStride)
	e.U64(s.ValFailVec)
	e.U64(s.ValFailSelf)
	e.U64(s.ValFailScalar)
	e.U64(s.ValFailSlot)
	e.U64(s.ValFailAddr)
	e.U64(s.ReplayLoad)
	e.U64(s.ReplayArith)
	e.U64(s.IWCaptured)
	e.U64(s.ValNoReplica)
	e.U64(s.Replays)
	e.U64(s.CISelected)
	e.U64(s.StridedPCsSum)
	e.U64(s.StridedPCsCount)
	e.F64(s.RegAvgInUse)
	e.Int(s.RegPeak)
	e.U64(s.SpecMemCopies)
	// Cache-level snapshots are not saved here: Finalize/Snapshot
	// re-derive them from the hierarchy, which serializes its own stats.
}

func (p *Proc) loadStats(d *ckpt.Decoder) {
	d.Tag("stats")
	s := &p.Stats
	s.Cycles = d.U64()
	s.Committed = d.U64()
	s.CommittedReuse = d.U64()
	s.Fetched = d.U64()
	s.SquashedBP = d.U64()
	s.ReplicasDispatched = d.U64()
	s.Branches = d.U64()
	s.CondBranches = d.U64()
	s.Mispredicts = d.U64()
	s.HardMispredicts = d.U64()
	s.EpisodesSelected = d.U64()
	s.EpisodesReused = d.U64()
	s.Loads = d.U64()
	s.Stores = d.U64()
	s.StoreConflicts = d.U64()
	s.CoherenceSquashes = d.U64()
	s.VectorizedEntries = d.U64()
	s.ValidationFails = d.U64()
	s.ValFailStride = d.U64()
	s.ValFailVec = d.U64()
	s.ValFailSelf = d.U64()
	s.ValFailScalar = d.U64()
	s.ValFailSlot = d.U64()
	s.ValFailAddr = d.U64()
	s.ReplayLoad = d.U64()
	s.ReplayArith = d.U64()
	s.IWCaptured = d.U64()
	s.ValNoReplica = d.U64()
	s.Replays = d.U64()
	s.CISelected = d.U64()
	s.StridedPCsSum = d.U64()
	s.StridedPCsCount = d.U64()
	s.RegAvgInUse = d.F64()
	s.RegPeak = d.Int()
	s.SpecMemCopies = d.U64()
}

// SaveCheckpoint serializes the processor into a sealed CIVK container.
// It must be called at a cycle boundary (between Step calls — never
// from inside an observer hook). base is the workload's pristine
// initial memory image: data memory is stored as sparse deltas against
// it, and RestoreCheckpoint must be given the same image; nil encodes
// the full memory against the empty image.
func (p *Proc) SaveCheckpoint(base *mem.Memory) []byte {
	var e ckpt.Encoder
	e.Tag("proc")
	saveConfig(&e, &p.cfg)

	e.Tag("prog")
	e.Str(p.prog.Name)
	e.Int(p.prog.Len())
	e.U64(programHash(p.prog))

	e.Tag("arch")
	e.U64(p.cycle)
	e.U64(p.Stats.Committed) // duplicated here so PeekCheckpoint stays cheap
	e.U64(p.seq)
	e.Bool(p.halted)
	for _, v := range p.arf {
		e.U64(v)
	}

	p.mem.SaveDelta(&e, base)

	e.Tag("rename")
	for i := range p.ren {
		saveRenEntry(&e, &p.ren[i])
	}
	e.Int(len(p.stridePC.lists))
	for i := range p.stridePC.lists {
		for _, v := range p.stridePC.lists[i] {
			e.U64(v)
		}
	}
	e.Int(len(p.stridePC.free))
	for _, v := range p.stridePC.free {
		e.Int(int(v))
	}

	p.rf.SaveState(&e)
	e.Bool(p.sm != nil)
	if p.sm != nil {
		p.sm.SaveState(&e)
	}

	e.Tag("rob")
	e.Int(len(p.rob))
	e.Int(p.robHead)
	e.Int(p.robTail)
	e.Int(p.robCount)
	for i := range p.rob {
		p.saveROBEntry(&e, &p.rob[i])
	}

	e.Tag("lsq")
	e.Int(len(p.lsq))
	for _, v := range p.lsq {
		e.Int(v)
	}
	e.Int(len(p.storeUnknown))
	for _, v := range p.storeUnknown {
		e.U64(v)
	}
	// wordStores is a map: emit in sorted key order so the encoding of a
	// given machine state is unique (the determinism invariant).
	keys := make([]uint64, 0, len(p.wordStores))
	for k, l := range p.wordStores {
		if len(l) > 0 {
			keys = append(keys, k) //civet:allow mapdet sortU64 sorts keys right below, before any use
		}
	}
	sortU64(keys)
	e.Int(len(keys))
	for _, k := range keys {
		e.U64(k)
		l := p.wordStores[k]
		e.Int(len(l))
		for _, idx := range l {
			e.Int(int(idx))
		}
	}

	e.Tag("fetch")
	e.Int(p.fetchPC)
	e.Bool(p.fetchHalted)
	e.U64(p.fetchStallUntil)
	n := p.fetchLen()
	e.Int(n)
	for i := 0; i < n; i++ {
		f := &p.fetchQ[p.fetchQHead+i]
		e.Int(f.pc)
		e.Bool(f.predTaken)
		e.U64(f.histSnapshot)
		e.U64(f.readyAt)
	}

	p.hier.SaveState(&e)
	p.bp.SaveState(&e)
	p.mbs.SaveState(&e)
	p.sp.SaveState(&e)

	e.Tag("ci")
	e.Bool(p.nrbq != nil)
	if p.nrbq != nil {
		p.nrbq.SaveState(&e)
	}
	e.Bool(p.crp.Valid)
	e.Int(p.crp.PC)
	e.Bool(p.crp.Reached)
	e.U64(uint64(p.crp.Mask))
	e.U64(p.crp.Episode)
	e.Bool(p.episodeOpen)
	e.Bool(p.episodeSelected)
	e.Bool(p.episodeReused)
	e.Bool(p.srsmt != nil)
	if p.srsmt != nil {
		p.srsmt.SaveState(&e)
	}
	e.U64(p.entryStamp)
	e.Int(len(p.activeEntries))
	for i := range p.activeEntries {
		p.saveEntryRef(&e, &p.activeEntries[i])
	}
	e.Int(len(p.seedWatch))
	for i := range p.seedWatch {
		p.saveEntryRef(&e, &p.seedWatch[i])
	}

	e.Tag("ciiw")
	e.Int(p.iwLive)
	for _, pc := range p.iwPCs[:p.iwLive] {
		e.Int(pc)
		e.Int(p.iwHead[pc])
		l := p.iwTable[pc]
		e.Int(len(l))
		for i := range l {
			e.Int(l[i].pc)
			e.U64(l[i].seq)
			e.U64(l[i].writerSeq[0])
			e.U64(l[i].writerSeq[1])
			e.Int(l[i].nsrc)
			e.U64(l[i].value)
		}
	}
	e.Int(len(p.iwRemapFrom))
	for i := range p.iwRemapFrom {
		e.U64(p.iwRemapFrom[i])
		e.U64(p.iwRemapTo[i])
	}
	e.U64(p.iwChainEpoch)

	e.Tag("sched")
	saveWaitList(&e, p.waitQ)
	saveWaitList(&e, p.execQ)
	saveWaitList(&e, p.validPend)
	e.U64(p.execMinDone)
	saveWaitList(&e, p.readyQ)
	e.Int(len(p.regWaiters))
	nonEmpty := 0
	for _, l := range p.regWaiters {
		if len(l) > 0 {
			nonEmpty++
		}
	}
	e.Int(nonEmpty)
	for r, l := range p.regWaiters {
		if len(l) == 0 {
			continue
		}
		e.Int(r)
		saveWaitList(&e, l)
	}
	e.U64(p.schedStamp)
	e.Bool(p.lastNoIssue)
	e.Bool(p.readyDirty)

	e.Tag("wheel")
	for i := range p.doneWheel {
		b := p.doneWheel[i]
		e.Int(len(b))
		for j := range b {
			p.saveEntryRef(&e, &b[j])
		}
	}
	for _, w := range p.wheelOcc {
		e.U64(w)
	}
	e.U64(p.ffJumps)
	e.U64(p.ffSkipped)

	e.Tag("freed")
	e.U64(p.freedEpoch)
	e.Int(p.freedCount)
	nFreed := 0
	for r := range p.freedMark {
		if p.freedMark[r] == p.freedEpoch {
			nFreed++
		}
	}
	e.Int(nFreed)
	for r := range p.freedMark {
		if p.freedMark[r] == p.freedEpoch {
			e.Int(r)
		}
	}

	p.saveStats(&e)
	e.Tag("end")
	return ckpt.Seal(CheckpointVersion, e.Bytes())
}

// sortU64 sorts in place (insertion for short, else a simple
// bottom-up merge via the stdlib would pull in sort; the word-store
// index is small, so insertion sort is fine and allocation-free).
func sortU64(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// PeekCheckpoint decodes a checkpoint's identity prefix: configuration,
// program name/hash, and progress counters.
func PeekCheckpoint(data []byte) (CheckpointInfo, error) {
	payload, err := ckpt.Open(data, CheckpointVersion)
	if err != nil {
		return CheckpointInfo{}, err
	}
	d := ckpt.NewDecoder(payload)
	d.Tag("proc")
	info := CheckpointInfo{Config: loadConfig(d)}
	d.Tag("prog")
	info.Program = d.Str()
	d.Int() // program length
	info.ProgramHash = d.U64()
	d.Tag("arch")
	info.Cycle = d.U64()
	info.Committed = d.U64()
	if err := d.Err(); err != nil {
		return CheckpointInfo{}, err
	}
	return info, nil
}

// RestoreCheckpoint rebuilds a processor from a sealed checkpoint
// container. sp must share the program the checkpoint was taken over
// (verified by name, length and hash); base must be the same pristine
// initial memory image passed to SaveCheckpoint (nil if it was nil).
// The restored processor carries no observer or tracer.
func RestoreCheckpoint(data []byte, sp *SharedProgram, base *mem.Memory) (*Proc, error) {
	payload, err := ckpt.Open(data, CheckpointVersion)
	if err != nil {
		return nil, err
	}
	d := ckpt.NewDecoder(payload)
	d.Tag("proc")
	cfg := loadConfig(d)

	d.Tag("prog")
	name := d.Str()
	plen := d.Int()
	phash := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if sp == nil {
		return nil, fmt.Errorf("core: restore needs a shared program")
	}
	if sp.prog.Name != name || sp.prog.Len() != plen || programHash(sp.prog) != phash {
		return nil, fmt.Errorf("core: checkpoint was taken over program %q (len %d, hash %016x), not the supplied %q (len %d, hash %016x)",
			name, plen, phash, sp.prog.Name, sp.prog.Len(), programHash(sp.prog))
	}

	p, err := build(cfg, sp, mem.New())
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}

	d.Tag("arch")
	p.cycle = d.U64()
	d.U64() // committed (peek duplicate; authoritative copy is in stats)
	p.seq = d.U64()
	p.halted = d.Bool()
	for i := range p.arf {
		p.arf[i] = d.U64()
	}

	p.mem = mem.LoadDelta(d, base)

	d.Tag("rename")
	for i := range p.ren {
		loadRenEntry(d, &p.ren[i])
	}
	nlists := d.Count()
	p.stridePC.lists = make([][maxStridedPCs]uint64, nlists)
	for i := range p.stridePC.lists {
		for j := range p.stridePC.lists[i] {
			p.stridePC.lists[i][j] = d.U64()
		}
	}
	nfree := d.Count()
	p.stridePC.free = make([]int32, nfree)
	for i := range p.stridePC.free {
		p.stridePC.free[i] = int32(d.Int())
	}

	p.rf = regfile.LoadFile(d)
	if d.Bool() {
		p.sm = regfile.LoadSpecMem(d)
	} else {
		p.sm = nil
	}

	d.Tag("rob")
	nrob := d.Int()
	if d.Err() == nil && nrob != len(p.rob) {
		d.Fail("ROB size mismatch: checkpoint %d, config %d", nrob, len(p.rob))
	}
	p.robHead = d.Int()
	p.robTail = d.Int()
	p.robCount = d.Int()
	if d.Err() == nil {
		for i := range p.rob {
			p.loadROBEntry(d, &p.rob[i])
		}
	}

	d.Tag("lsq")
	nlsq := d.Count()
	p.lsq = make([]int, nlsq)
	for i := range p.lsq {
		p.lsq[i] = d.Int()
	}
	nsu := d.Count()
	p.storeUnknown = make([]uint64, nsu)
	for i := range p.storeUnknown {
		p.storeUnknown[i] = d.U64()
	}
	nwords := d.Count()
	for i := 0; i < nwords; i++ {
		k := d.U64()
		nl := d.Count()
		l := make([]int32, nl)
		for j := range l {
			l[j] = int32(d.Int())
		}
		p.wordStores[k] = l
	}

	d.Tag("fetch")
	p.fetchPC = d.Int()
	p.fetchHalted = d.Bool()
	p.fetchStallUntil = d.U64()
	nfq := d.Count()
	p.fetchQ = make([]fetchedInstr, nfq)
	p.fetchQHead = 0
	for i := range p.fetchQ {
		p.fetchQ[i].pc = d.Int()
		p.fetchQ[i].predTaken = d.Bool()
		p.fetchQ[i].histSnapshot = d.U64()
		p.fetchQ[i].readyAt = d.U64()
	}

	p.hier.LoadState(d)
	p.bp.LoadState(d)
	p.mbs.LoadState(d)
	p.sp.LoadState(d)

	d.Tag("ci")
	hasNRBQ := d.Bool()
	if hasNRBQ != (p.nrbq != nil) {
		d.Fail("NRBQ presence mismatch between checkpoint and configuration")
	} else if p.nrbq != nil {
		p.nrbq.LoadState(d)
	}
	p.crp.Valid = d.Bool()
	p.crp.PC = d.Int()
	p.crp.Reached = d.Bool()
	p.crp.Mask = ci.RegMask(d.U64())
	p.crp.Episode = d.U64()
	p.episodeOpen = d.Bool()
	p.episodeSelected = d.Bool()
	p.episodeReused = d.Bool()
	hasSRSMT := d.Bool()
	if hasSRSMT != (p.srsmt != nil) {
		d.Fail("SRSMT presence mismatch between checkpoint and configuration")
	} else if p.srsmt != nil {
		p.srsmt.LoadState(d)
	}
	p.entryStamp = d.U64()
	nact := d.Count()
	p.activeEntries = p.activeEntries[:0]
	for i := 0; i < nact; i++ {
		if ref, ok := p.loadEntryRef(d); ok {
			p.activeEntries = append(p.activeEntries, ref)
		}
	}
	nwatch := d.Count()
	p.seedWatch = p.seedWatch[:0]
	for i := 0; i < nwatch; i++ {
		if ref, ok := p.loadEntryRef(d); ok {
			p.seedWatch = append(p.seedWatch, ref)
		}
	}

	d.Tag("ciiw")
	niw := d.Count()
	p.iwLive = 0
	for i := 0; i < niw; i++ {
		pc := d.Int()
		head := d.Int()
		nl := d.Count()
		if d.Err() != nil {
			break
		}
		if pc < 0 || pc >= len(p.iwTable) {
			d.Fail("squash-reuse PC %d outside program (%d static instructions)", pc, len(p.iwTable))
			break
		}
		l := make([]iwReuse, nl)
		for j := range l {
			l[j].pc = d.Int()
			l[j].seq = d.U64()
			l[j].writerSeq[0] = d.U64()
			l[j].writerSeq[1] = d.U64()
			l[j].nsrc = d.Int()
			l[j].value = d.U64()
		}
		p.iwTable[pc] = l
		p.iwHead[pc] = head
		p.iwPCs = append(p.iwPCs, pc)
		p.iwLive++
	}
	nremap := d.Count()
	p.iwRemapFrom = make([]uint64, nremap)
	p.iwRemapTo = make([]uint64, nremap)
	for i := 0; i < nremap; i++ {
		p.iwRemapFrom[i] = d.U64()
		p.iwRemapTo[i] = d.U64()
	}
	p.iwChainEpoch = d.U64()

	d.Tag("sched")
	p.waitQ = loadWaitList(d)
	p.execQ = loadWaitList(d)
	p.validPend = loadWaitList(d)
	p.execMinDone = d.U64()
	p.readyQ = loadWaitList(d)
	nwait := d.Int()
	if d.Err() == nil && nwait >= 0 {
		if nwait > len(p.regWaiters) {
			// Unbounded register files grow the waiter table on demand;
			// match the checkpointed size.
			grown := make([][]waitRef, nwait)
			copy(grown, p.regWaiters)
			p.regWaiters = grown
		}
		nne := d.Count()
		for i := 0; i < nne; i++ {
			r := d.Int()
			if d.Err() != nil {
				break
			}
			if r < 0 || r >= len(p.regWaiters) {
				d.Fail("park-list register %d out of range (%d)", r, len(p.regWaiters))
				break
			}
			p.regWaiters[r] = loadWaitList(d)
		}
	}
	p.schedStamp = d.U64()
	p.lastNoIssue = d.Bool()
	p.readyDirty = d.Bool()

	d.Tag("wheel")
	for i := range p.doneWheel {
		nb := d.Count()
		if nb == 0 {
			p.doneWheel[i] = p.doneWheel[i][:0]
			continue
		}
		b := p.doneWheel[i][:0]
		for j := 0; j < nb; j++ {
			if ref, ok := p.loadEntryRef(d); ok {
				b = append(b, ref)
			}
		}
		p.doneWheel[i] = b
	}
	for i := range p.wheelOcc {
		p.wheelOcc[i] = d.U64()
	}
	p.ffJumps = d.U64()
	p.ffSkipped = d.U64()

	d.Tag("freed")
	p.freedEpoch = d.U64()
	p.freedCount = d.Int()
	nfreed := d.Count()
	for i := 0; i < nfreed; i++ {
		r := d.Int()
		if d.Err() != nil {
			break
		}
		if r < 0 || r > 1<<24 {
			d.Fail("freed register %d out of range", r)
			break
		}
		if r >= len(p.freedMark) {
			grown := make([]uint64, r+64)
			copy(grown, p.freedMark)
			p.freedMark = grown
		}
		p.freedMark[r] = p.freedEpoch
	}

	p.loadStats(d)
	d.Tag("end")
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("core: checkpoint payload has %d trailing bytes", d.Remaining())
	}
	return p, nil
}

// copyState transfers one component's serialized state into another
// instance of identical geometry via the checkpoint codec — the
// transplant mechanism functional warming uses.
func copyState(save func(*ckpt.Encoder), load func(*ckpt.Decoder)) error {
	var e ckpt.Encoder
	save(&e)
	d := ckpt.NewDecoder(e.Bytes())
	load(d)
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("core: warm-state transplant left %d bytes", d.Remaining())
	}
	return nil
}

// AdoptWarmState installs functionally-warmed microarchitectural state
// — branch predictor, MBS filter, stride predictor and the four cache
// levels' tag/LRU arrays — into a freshly built processor, SMARTS-style:
// the sampled-simulation driver warms these structures during its
// functional fast-forward pass (they depend only on the committed
// instruction stream, which the emulator produces exactly) so a sample
// machine starts with the thermal state a detailed run would have
// reached, instead of paying the full structures' warmup transient
// inside the measured interval. Geometries must match the
// configuration; like SetArchState it is only legal before the first
// cycle. Each argument may be nil to leave that structure cold.
func (p *Proc) AdoptWarmState(g *bpred.Gshare, mbs *bpred.MBS, sp *stride.Predictor, l1i, l1d, l2, l3 *cache.Cache) error {
	if p.cycle != 0 || p.seq != 0 || p.Stats.Committed != 0 {
		return fmt.Errorf("core: AdoptWarmState on a processor that has already run (cycle %d)", p.cycle)
	}
	type pair struct {
		save func(*ckpt.Encoder)
		load func(*ckpt.Decoder)
	}
	var pairs []pair
	if g != nil {
		pairs = append(pairs, pair{g.SaveState, p.bp.LoadState})
	}
	if mbs != nil {
		pairs = append(pairs, pair{mbs.SaveState, p.mbs.LoadState})
	}
	if sp != nil {
		pairs = append(pairs, pair{sp.SaveState, p.sp.LoadState})
	}
	for _, c := range []struct{ src, dst *cache.Cache }{
		{l1i, p.hier.L1I}, {l1d, p.hier.L1D}, {l2, p.hier.L2}, {l3, p.hier.L3},
	} {
		if c.src != nil {
			pairs = append(pairs, pair{c.src.SaveState, c.dst.LoadState})
		}
	}
	for _, pr := range pairs {
		if err := copyState(pr.save, pr.load); err != nil {
			return fmt.Errorf("core: warm-state transplant: %w", err)
		}
	}
	return nil
}

// InstBytes scales instruction indices to byte addresses the way the
// fetch stage does; the functional warmer must mirror it so warmed
// I-cache tags match the addresses detailed fetch will present.
const InstBytes = instBytes

// SetArchState warm-starts a freshly built processor's architectural
// state: register values and the fetch PC. It is the sampled-simulation
// entry point — the functional emulator fast-forwards to a sample start,
// and the detailed processor picks up from its registers and memory
// image. It must be called before the first cycle; anything later is a
// programming error.
func (p *Proc) SetArchState(regs [isa.NumLogical]uint64, pc int) error {
	if p.cycle != 0 || p.seq != 0 || p.Stats.Committed != 0 {
		return fmt.Errorf("core: SetArchState on a processor that has already run (cycle %d)", p.cycle)
	}
	if pc < 0 {
		return fmt.Errorf("core: SetArchState with negative PC %d", pc)
	}
	p.arf = regs
	for r := 0; r < isa.NumLogical; r++ {
		p.rf.Write(int(p.ren[r].phys), regs[r])
	}
	p.fetchPC = pc
	return nil
}
