package core

import (
	"fmt"

	"civect/internal/ci"
	"civect/internal/isa"
)

// commitStage retires up to CommitWidth instructions in order. Commit
// maintains the architectural register file and memory exactly; every
// reused (validated or squash-reuse) value is checked against an
// architectural recomputation and converted into a replay when wrong,
// so speculation can never corrupt architectural state. Committed
// stores write the data cache, and in vectorizing modes check the
// replica address ranges (§2.4.3: one extra commit slot per store, at
// most two stores per cycle).
func (p *Proc) commitStage() {
	width := p.cfg.CommitWidth
	storeBudget := 1 << 30
	vectorizing := p.cfg.Mode.Vectorizes()
	if vectorizing {
		storeBudget = 2
	}

	for width > 0 && p.robCount > 0 {
		idx := p.robHead
		h := &p.rob[idx]
		if h.state != stDone {
			return
		}
		in := h.in

		if in.Op == isa.OpHalt {
			if p.tracer != nil {
				p.tracer.OnTraceCommit(p.cycle, h.seq, h.pc, false, true)
			}
			p.Stats.Committed++
			p.halted = true
			return
		}

		// Architectural recomputation: exact at the head — and needed
		// only for instructions rooted in an unverified reused value
		// (h.tainted covers validated/reuseIW and their transitive
		// consumers). A clean instruction's issue-time result is exact
		// by construction: its operands came from clean producers that
		// all committed unchanged (a wrong reused value never reaches a
		// clean consumer's commit — the replay squashes the consumer
		// first), so recomputation is pure assertion. The reference
		// mode keeps asserting; differential tests compare the two.
		var archVal, archAddr uint64
		if h.tainted || p.cfg.CommitRecomputeAll {
			archVal, archAddr = p.archResult(in)
		} else {
			archVal, archAddr = h.value, h.addr
		}

		if h.validated || h.reuseIW {
			if h.value != archVal {
				// The reuse was wrong: repair and replay (§2.3.4's
				// final validation at commit, strengthened to a value
				// check).
				p.Stats.Replays++
				if in.IsLoad() {
					p.Stats.ReplayLoad++
				} else {
					p.Stats.ReplayArith++
				}
				h.value = archVal
				h.addr = archAddr
				p.writeReg(int(h.physDest), archVal)
				h.validated = false
				h.reuseIW = false
				p.replaySquash(idx)
				// Fall through and commit the corrected instruction.
			}
		} else if h.hasDest && h.value != archVal && h.executed {
			// A non-reused instruction with a wrong value is a
			// simulator bug, never a modeled event.
			panic(fmt.Sprintf("core: architectural mismatch at pc %d (%v): got %d want %d",
				h.pc, in, h.value, archVal))
		}

		im := p.metaAt(int(h.pc))
		switch {
		case im.isStore():
			if storeBudget <= 0 {
				return
			}
			r := p.hier.DataAccess(archAddr, true)
			if !r.OK {
				return // no write port this cycle; retry
			}
			p.mem.Write64(archAddr, archVal)
			p.Stats.Stores++
			storeBudget--
			if vectorizing {
				// §2.4.3: committing a store costs an extra cycle; we
				// charge one extra commit slot.
				width--
				if p.storeRangeConflict(idx, archAddr) {
					// The conflicting entry was deallocated and younger
					// instructions squashed; commit of this store
					// already happened.
					p.finishCommit(idx, h)
					return
				}
			}
		case im.isLoad():
			p.Stats.Loads++
			p.sp.Observe(uint64(h.pc), archAddr)
		case im.isCondBr():
			p.Stats.Branches++
			p.Stats.CondBranches++
			p.mbs.Update(uint64(h.pc), h.actTaken)
			if p.nrbq != nil {
				p.nrbq.RetireUpTo(h.seq)
			}
		case im.isJump():
			p.Stats.Branches++
		}

		p.finishCommit(idx, h)
		width--
	}
}

// finishCommit applies the architectural register update, releases the
// previous mapping's register, advances replica commit cursors, and
// pops the ROB head.
func (p *Proc) finishCommit(idx int, h *robEntry) {
	if im := p.metaAt(int(h.pc)); im.isMem() {
		p.lsqRemove(idx)
		if im.isStore() {
			p.storeIndexRemove(idx, h)
		}
	}
	if h.hasDest {
		p.arf[h.logDest] = h.value
		// The previous-mapping checkpoint dies here: release its rename
		// register and its stridedPC list slot.
		p.releaseStrided(&h.oldRen)
		if h.oldRen.phys >= 0 {
			p.rf.Release(int(h.oldRen.phys))
			// A pending recurrence seed may have lived in that register.
			if len(p.seedWatch) > 0 {
				p.clearFreed()
				p.noteFreed(int(h.oldRen.phys))
				p.failBrokenSeeds()
			}
		}
	}

	if h.validated || h.reuseIW {
		p.Stats.CommittedReuse++
	}
	if p.tracer != nil {
		p.tracer.OnTraceCommit(p.cycle, h.seq, h.pc, h.validated || h.reuseIW, false)
	}
	// Every committed instance of a vectorized instruction advances the
	// entry's commit cursor, releasing the storage of the replica it
	// consumed (validated instances) or skipped past (normal ones),
	// and tops the batch back up.
	if p.srsmt != nil {
		if ent := p.srsmt.Lookup(uint64(h.pc)); ent != nil && h.seq > ent.CreatorSeq {
			eh := ent.TurnHeader
			if slot := ent.Slot(eh.Commit); slot != nil && slot.Dest >= 0 &&
				slot.State != ci.ReplicaIssued {
				if p.sm != nil {
					p.sm.Release(slot.Dest)
				} else {
					p.rf.Release(slot.Dest)
				}
				slot.Dest = -1
				if slot.State == ci.ReplicaWaiting {
					// Never issued and now past the commit point:
					// nothing will consume it.
					p.settleReplica(ent, slot, ci.ReplicaFailed)
				}
			}
			eh.Commit++
			p.spawnReplicas(ent)
			p.activateEntry(ent)
		}
	}

	p.Stats.Committed++
	h.valid = false
	p.robHead = p.robIndexAfter(p.robHead)
	p.robCount--
}

// storeRangeConflict implements the §2.4.3 memory-coherence check: a
// committed store whose address falls inside a vectorized load's replica
// range deallocates that entry and squashes the conventional
// instructions following the store. It reports whether a squash
// happened.
func (p *Proc) storeRangeConflict(storeIdx int, addr uint64) bool {
	conflict := false
	//civet:allow hotalloc non-escaping iterator callback; ForEachValid does not retain it (TestSteadyStateZeroAllocs pins zero allocs)
	p.srsmt.ForEachValid(func(ent *ci.Entry) bool {
		if ent.CoversAddr(addr) {
			conflict = true
			p.invalidateEntry(ent)
		}
		return true
	})
	if !conflict {
		return false
	}
	p.Stats.StoreConflicts++
	p.Stats.CoherenceSquashes++
	p.squashAfter(storeIdx)
	p.fetchPC = int(p.rob[storeIdx].pc) + 1
	p.fetchHalted = false
	p.fetchStallUntil = 0
	// Consumption cursors rewind to the committed point; DAEC is not a
	// branch-misprediction counter, so it does not tick here. Entries
	// it nonetheless reaps (DAEC already at 2, replicas now drained)
	// must wake their consumer chains and release their replica
	// storage, like every other teardown path.
	//civet:allow hotalloc non-escaping recovery callback; OnRecovery does not retain it (TestSteadyStateZeroAllocs pins zero allocs)
	p.srsmt.OnRecovery(false, func(dead *ci.Entry) {
		p.wakeConsumers(dead)
		p.releaseEntryStorage(dead)
	})
	p.resyncValidatedCursors()
	p.failBrokenSeeds()
	return true
}

// replaySquash discards everything younger than the repaired
// instruction and restarts fetch after it.
func (p *Proc) replaySquash(idx int) {
	p.squashAfter(idx)
	p.fetchPC = int(p.rob[idx].pc) + 1
	p.fetchHalted = false
	p.fetchStallUntil = 0
	if p.srsmt != nil {
		//civet:allow hotalloc non-escaping recovery callback; OnRecovery does not retain it (TestSteadyStateZeroAllocs pins zero allocs)
		p.srsmt.OnRecovery(false, func(dead *ci.Entry) {
			p.wakeConsumers(dead)
			p.releaseEntryStorage(dead)
		})
		p.resyncValidatedCursors()
	}
	p.failBrokenSeeds()
}
