package core

import "civect/internal/isa"

// issueStage issues up to IssueWidth ready instructions oldest-first
// from the waiting list, modeling functional-unit capacity, L1D port
// arbitration and load/store-queue disambiguation ("loads may execute
// when prior store addresses are known", with store-load forwarding).
// Values are computed functionally at issue; they become visible at
// writeback (doneAt).
func (p *Proc) issueStage() {
	issued := 0
	out := p.waitQ[:0]
	for _, w := range p.waitQ {
		e := &p.rob[w.idx]
		if !e.valid || e.seq != w.seq || e.state != stWaiting {
			continue // squashed, completed or re-routed
		}
		if issued < p.cfg.IssueWidth && p.tryIssue(w.idx, e) {
			issued++
			p.execQ = append(p.execQ, w)
			continue
		}
		out = append(out, w)
	}
	p.waitQ = out
	p.issueBudget = p.cfg.IssueWidth - issued
}

func (p *Proc) tryIssue(idx int, e *robEntry) bool {
	// Operand readiness.
	for i := 0; i < e.nsrc; i++ {
		if !p.rf.Ready(e.srcPhys[i]) {
			return false
		}
	}
	in := e.in
	a, b := uint64(0), uint64(0)
	if e.nsrc > 0 {
		a = p.rf.Value(e.srcPhys[0])
	}
	if e.nsrc > 1 {
		b = p.rf.Value(e.srcPhys[1])
	}

	switch {
	case in.IsLoad():
		return p.tryIssueLoad(idx, e, a)
	case in.IsStore():
		// Stores compute address and value at issue (AGU, 1 cycle); the
		// cache write happens at commit.
		if p.aluFree <= 0 {
			return false
		}
		p.aluFree--
		e.addr = a + uint64(in.Imm)
		e.value = b
		e.doneAt = p.cycle + uint64(p.cfg.LatIntALU)
		e.state = stExecuting
		return true
	case in.IsCondBranch():
		if p.aluFree <= 0 {
			return false
		}
		p.aluFree--
		e.actTaken = (in.Op == isa.OpBEQZ && a == 0) || (in.Op == isa.OpBNEZ && a != 0)
		if e.actTaken {
			e.actTarget = in.Target
		} else {
			e.actTarget = e.pc + 1
		}
		e.mispredicted = e.actTaken != e.predTaken
		e.doneAt = p.cycle + uint64(p.cfg.LatIntALU)
		e.state = stExecuting
		return true
	default:
		useMul, lat := p.opLatency(in.Op)
		if useMul {
			if p.mulFree <= 0 {
				return false
			}
			p.mulFree--
		} else {
			if p.aluFree <= 0 {
				return false
			}
			p.aluFree--
		}
		e.value = execALU(in, a, b)
		e.doneAt = p.cycle + uint64(lat)
		e.state = stExecuting
		return true
	}
}

// tryIssueLoad resolves memory disambiguation and either forwards from
// an older store or accesses the data cache.
func (p *Proc) tryIssueLoad(idx int, e *robEntry, base uint64) bool {
	addr := base + uint64(e.in.Imm)
	word := addr &^ 7

	// Walk older LSQ entries: an older store with an unknown address
	// blocks the load; otherwise the youngest older store to the same
	// word forwards its value (computed together with the address at
	// store issue).
	fwd := false
	var fwdVal uint64
	for _, li := range p.lsq {
		se := &p.rob[li]
		if se.seq >= e.seq {
			break
		}
		if !se.in.IsStore() {
			continue
		}
		if se.state == stWaiting {
			return false // address not known yet
		}
		if se.addr&^7 == word {
			fwd = true
			fwdVal = se.value
		}
	}

	if fwd {
		e.addr = addr
		e.value = fwdVal
		e.fwdStore = true
		e.doneAt = p.cycle + 1
		e.state = stExecuting
		return true
	}

	r := p.hier.DataAccess(addr, false)
	if !r.OK {
		return false // no port or MSHR this cycle
	}
	e.addr = addr
	e.value = p.mem.Read64(addr)
	e.doneAt = p.cycle + uint64(r.Lat)
	e.state = stExecuting
	return true
}
