package core

import "civect/internal/isa"

// issueStage issues up to IssueWidth ready instructions oldest-first,
// modeling functional-unit capacity, L1D port arbitration and
// load/store-queue disambiguation ("loads may execute when prior store
// addresses are known", with store-load forwarding). Values are
// computed functionally at issue; they become visible at writeback
// (doneAt).
//
// The arbitration list is the naive full waiting list or the
// event-driven ready list (sched.go); both are stamp-ordered, and
// tryIssue has no side effects on operand-unready instructions, so the
// two produce identical issue sequences. Entries that stay behind did
// so for per-cycle resources (units, ports, budget) — or, on the naive
// list, for operands — and are retried next cycle.
func (p *Proc) issueStage() {
	q := p.waitQ
	if p.eventSched {
		q = p.readyQ
	}
	issued := 0
	out := q[:0]
	for _, w := range q {
		e := &p.rob[w.idx]
		if !e.valid || e.seq != w.seq || e.state != stWaiting {
			continue // squashed, completed or re-routed
		}
		if issued < p.cfg.IssueWidth && p.tryIssue(w.idx, e) {
			issued++
			if p.tracer != nil {
				p.tracer.OnTraceIssue(p.cycle, e.seq, e.pc)
			}
			p.execQ = append(p.execQ, w)
			if e.doneAt < p.execMinDone {
				p.execMinDone = e.doneAt
			}
			continue
		}
		out = append(out, w)
	}
	if p.eventSched {
		p.readyQ = out
	} else {
		p.waitQ = out
	}
	p.issueBudget = p.cfg.IssueWidth - issued
	// Fast-forward bookkeeping: a scan that issued nothing left only
	// failures that persist until an external event (tryIssue is
	// side-effect-free on failure, and per-cycle resources reset full),
	// so the engine may skip over the survivors — unless something is
	// inserted after this scan (readyDirty, set by readyInsert), or a
	// stage running before the scan consumed a data port this cycle
	// (the commit stage's store write): that pressure resets at the
	// next BeginCycle, so a load that failed on it would issue next
	// cycle and the no-issue observation predicts nothing.
	p.lastNoIssue = issued == 0 && p.hier.PortsUsed() == 0
	p.readyDirty = false
}

func (p *Proc) tryIssue(idx int, e *robEntry) bool {
	// Operand readiness.
	for i := 0; i < int(e.nsrc); i++ {
		if !p.rf.Ready(int(e.srcPhys[i])) {
			return false
		}
	}
	in := e.in
	im := p.metaAt(int(e.pc))
	a, b := uint64(0), uint64(0)
	if e.nsrc > 0 {
		a = p.rf.Value(int(e.srcPhys[0]))
	}
	if e.nsrc > 1 {
		b = p.rf.Value(int(e.srcPhys[1]))
	}

	switch {
	case im.isLoad():
		return p.tryIssueLoad(idx, e, a)
	case im.isStore():
		// Stores compute address and value at issue (AGU, 1 cycle); the
		// cache write happens at commit.
		if p.aluFree <= 0 {
			return false
		}
		p.aluFree--
		e.addr = a + uint64(in.Imm)
		e.value = b
		e.doneAt = p.cycle + uint64(p.cfg.LatIntALU)
		e.state = stExecuting
		p.storeAddrKnown(idx, e)
		return true
	case im.isCondBr():
		if p.aluFree <= 0 {
			return false
		}
		p.aluFree--
		e.actTaken = (in.Op == isa.OpBEQZ && a == 0) || (in.Op == isa.OpBNEZ && a != 0)
		if e.actTaken {
			e.actTarget = int32(in.Target)
		} else {
			e.actTarget = e.pc + 1
		}
		e.mispredicted = e.actTaken != e.predTaken
		e.doneAt = p.cycle + uint64(p.cfg.LatIntALU)
		e.state = stExecuting
		return true
	default:
		useMul, lat := p.opLatency(in.Op)
		if useMul {
			if p.mulFree <= 0 {
				return false
			}
			p.mulFree--
		} else {
			if p.aluFree <= 0 {
				return false
			}
			p.aluFree--
		}
		e.value = execALU(in, a, b)
		e.doneAt = p.cycle + uint64(lat)
		e.state = stExecuting
		return true
	}
}

// tryIssueLoad resolves memory disambiguation and either forwards from
// an older store or accesses the data cache. Disambiguation is O(1)
// via the per-word last-store index (lsqindex.go) instead of the
// per-attempt LSQ walk the seed shipped: an older store with an
// unknown address blocks the load; otherwise the youngest older store
// to the same word forwards its value (computed together with the
// address at store issue).
func (p *Proc) tryIssueLoad(idx int, e *robEntry, base uint64) bool {
	addr := base + uint64(e.in.Imm)
	word := addr &^ 7

	if len(p.storeUnknown) > 0 && p.storeUnknown[0] < e.seq {
		return false // an older store's address is not known yet
	}
	if l := p.wordStores[word]; len(l) > 0 {
		for i := len(l) - 1; i >= 0; i-- {
			se := &p.rob[l[i]]
			if se.seq < e.seq {
				e.addr = addr
				e.value = se.value
				e.fwdStore = true
				e.doneAt = p.cycle + 1
				e.state = stExecuting
				return true
			}
		}
	}

	r := p.hier.DataAccess(addr, false)
	if !r.OK {
		return false // no port or MSHR this cycle
	}
	e.addr = addr
	e.value = p.mem.Read64(addr)
	e.doneAt = p.cycle + uint64(r.Lat)
	e.state = stExecuting
	return true
}
