package core

import "civect/internal/cache"

// Stats aggregates everything the paper's figures report.
type Stats struct {
	Cycles    uint64
	Committed uint64
	// CommittedReuse counts committed instructions that reused a
	// precomputed replica (validated) or a squash-reuse value (ci-iw):
	// Figure 12's "Reuse" category.
	CommittedReuse uint64
	// Fetched counts instructions entering the pipeline (renamed).
	Fetched uint64
	// SquashedBP counts fetched-and-renamed instructions discarded by a
	// branch recovery: Figure 12's "specBP".
	SquashedBP uint64
	// ReplicasDispatched counts speculative replica instances created by
	// the mechanism: Figure 12's "specCI".
	ReplicasDispatched uint64

	// Branch behaviour.
	Branches     uint64
	CondBranches uint64
	Mispredicts  uint64
	// HardMispredicts counts mispredictions of MBS-hard branches (the
	// CI episodes).
	HardMispredicts uint64
	// EpisodesSelected counts episodes with ≥1 control-independent
	// instruction selected (Figure 5 gray+black).
	EpisodesSelected uint64
	// EpisodesReused counts episodes in which ≥1 control-independent
	// instruction was validated against a precomputed replica
	// (Figure 5 black).
	EpisodesReused uint64

	Loads  uint64
	Stores uint64
	// StoreConflicts counts committed stores whose address fell inside
	// a replica range (§2.4.3).
	StoreConflicts uint64
	// CoherenceSquashes counts the pipeline squashes those conflicts
	// caused.
	CoherenceSquashes uint64

	// VectorizedEntries counts SRSMT allocations.
	VectorizedEntries uint64
	// ValidationFails counts SRSMT validation mismatches at decode.
	ValidationFails uint64
	// Validation-failure breakdown (diagnosis of mechanism churn).
	ValFailStride uint64 // load: stride predictor disagreed
	ValFailVec    uint64 // vec operand: producer no longer validated
	ValFailSelf   uint64 // recurrence: register written by another PC
	ValFailScalar uint64 // scalar operand value changed / not ready
	ValFailSlot   uint64 // consumed replica had failed
	ValFailAddr   uint64 // load address check mismatch
	ReplayLoad    uint64 // commit-check replays on loads
	ReplayArith   uint64 // commit-check replays on ALU results
	// IWCaptured counts wrong-path results harvested by squash reuse
	// (ModeCIIW); CommittedReuse counts how many were actually reused.
	IWCaptured uint64
	// ValNoReplica counts validation attempts that found no issued
	// replica (instruction executed normally, entry kept).
	ValNoReplica uint64
	// Replays counts validated values rejected by the commit-time
	// architectural check (converted into replays).
	Replays uint64
	// CISelected counts control-independent instructions selected after
	// re-convergent points.
	CISelected uint64

	// StridedPCsSum/Count measure how many distinct strided-load PCs
	// instructions carry in their backward slices (the §2.3.2 "1.7 PCs
	// per entry on average" statistic).
	StridedPCsSum   uint64
	StridedPCsCount uint64

	// Register pressure (§2.4.2).
	RegAvgInUse float64
	RegPeak     int

	// Cache statistics snapshots.
	L1I, L1D, L2, L3 cache.Stats

	// SpecMemCopies counts copy micro-ops through the speculative data
	// memory's read ports (§2.4.6).
	SpecMemCopies uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per conditional branch.
func (s *Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// ReuseFraction returns the fraction of committed instructions that
// reused precomputed values (Figure 12's headline percentages).
func (s *Stats) ReuseFraction() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CommittedReuse) / float64(s.Committed)
}

// AvgStridedPCs returns the mean number of distinct strided-load PCs
// per written rename entry.
func (s *Stats) AvgStridedPCs() float64 {
	if s.StridedPCsCount == 0 {
		return 0
	}
	return float64(s.StridedPCsSum) / float64(s.StridedPCsCount)
}

// StoreConflictRate returns the fraction of committed stores that hit a
// replica address range (§2.4.3: "less than 3%").
func (s *Stats) StoreConflictRate() float64 {
	if s.Stores == 0 {
		return 0
	}
	return float64(s.StoreConflicts) / float64(s.Stores)
}
