package core

import (
	"testing"

	"civect/internal/asm"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/workload"
)

// runToHalt is a helper for focused pipeline tests.
func runToHalt(t *testing.T, cfg Config, src string, init func(*mem.Memory)) (*Proc, *Stats) {
	t.Helper()
	prog := asm.MustAssemble(t.Name(), src)
	m := mem.New()
	if init != nil {
		init(m)
	}
	p, err := New(cfg, prog, m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return p, st
}

func TestStoreLoadForwarding(t *testing.T) {
	// A store immediately followed by a load of the same address: the
	// load must see the store's value through the LSQ, not memory.
	src := `
        movi r1, 0x100
        movi r2, 77
        st   r2, 0(r1)
        ld   r3, 0(r1)
        add  r4, r3, r3
        halt
`
	p, _ := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if got := p.ARF()[3]; got != 77 {
		t.Errorf("forwarded load = %d, want 77", got)
	}
	if got := p.ARF()[4]; got != 154 {
		t.Errorf("dependent = %d, want 154", got)
	}
}

func TestLoadBlocksOnUnknownStoreAddress(t *testing.T) {
	// The load aliases the store whose address comes from a long-latency
	// chain; the conservative LSQ must still produce the right value.
	src := `
        movi r1, 64
        movi r2, 4
        div  r3, r1, r2    ; 16, 12-cycle latency
        div  r3, r3, r2    ; 4
        mul  r3, r3, r1    ; 256 = 0x100
        movi r4, 99
        st   r4, 0(r3)     ; address known late
        movi r5, 0x100
        ld   r6, 0(r5)     ; must wait, then forward 99
        halt
`
	p, _ := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if got := p.ARF()[6]; got != 99 {
		t.Errorf("load after late store = %d, want 99", got)
	}
}

func TestWrongPathStoreDoesNotCorruptMemory(t *testing.T) {
	// A store on the mispredicted path must never reach memory. The
	// branch is always taken but the predictor starts unbiased, so the
	// first iterations speculate into the store.
	src := `
        movi r1, 50
        movi r2, 0x500
        movi r3, 123
loop:   bnez r1, skip      ; always taken (r1 > 0 until the end)
        st   r3, 0(r2)     ; wrong path only
skip:   subi r1, r1, 1
        bnez r1, loop
        halt
`
	p, _ := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if got := p.Mem().Read64(0x500); got != 0 {
		t.Errorf("wrong-path store leaked: mem[0x500] = %d", got)
	}
}

func TestMispredictionRecoveryRestoresRename(t *testing.T) {
	// Wrong-path writes to r5 must not survive recovery: the committed
	// value of r5 is set only on the correct path.
	src := `
        movi r1, 40
        movi r5, 7
loop:   beqz r1, done       ; not taken until the end
        movi r5, 7          ; correct path keeps r5 = 7
        subi r1, r1, 1
        jmp  loop
done:   halt
`
	p, _ := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if got := p.ARF()[5]; got != 7 {
		t.Errorf("r5 = %d, want 7", got)
	}
}

func TestHaltOnWrongPathRecovers(t *testing.T) {
	// The halt sits on the fall-through of a taken branch: fetch stops
	// at the speculative halt, and recovery must restart it.
	src := `
        movi r1, 30
loop:   subi r1, r1, 1
        bnez r1, loop       ; predicted not-taken at first -> halt fetched
        movi r2, 5
        halt
`
	p, st := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if got := p.ARF()[2]; got != 5 {
		t.Errorf("r2 = %d, want 5", got)
	}
	if st.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestTinyWindowStillCorrect(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "tinywin", ArrayWords: 1 << 8, Iters: 200, TakenBias: 0.5,
		Hammocks: 1, CIOps: 2, FillerOps: 2, Streams: 2, StoreEvery: 1, Seed: 3,
	})
	for _, m := range allModes {
		cfg := DefaultConfig(m)
		cfg.WindowSize = 8
		cfg.LSQSize = 4
		runBoth(t, cfg, b.Program, b.NewMem())
	}
}

func TestNarrowMachineStillCorrect(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "narrow", ArrayWords: 1 << 8, Iters: 200, TakenBias: 0.5,
		Hammocks: 1, CIOps: 2, FillerOps: 1, Streams: 2, StoreEvery: 1, Seed: 4,
	})
	for _, m := range allModes {
		cfg := DefaultConfig(m)
		cfg.FetchWidth, cfg.DecodeWidth, cfg.IssueWidth, cfg.CommitWidth = 1, 1, 1, 1
		cfg.IntALUs, cfg.IntMulDivs = 1, 1
		runBoth(t, cfg, b.Program, b.NewMem())
	}
}

func TestSingleReplicaModeCorrect(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "onerep", ArrayWords: 1 << 8, Iters: 300, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 1, Streams: 2, StoreEvery: 0, Seed: 5,
	})
	for _, reps := range []int{1, 2, 8} {
		cfg := DefaultConfig(ModeCI)
		cfg.Replicas = reps
		runBoth(t, cfg, b.Program, b.NewMem())
	}
}

func TestDisableMBSGateCorrectAndMoreEpisodes(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "mbsoff", ArrayWords: 1 << 9, Iters: 1500, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 1, Streams: 2, StoreEvery: 0, Seed: 6,
	})
	gated := DefaultConfig(ModeCI)
	gated.MaxInstr = 40_000
	open := gated
	open.DisableMBSGate = true

	pg, err := New(gated, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	sg, err := pg.Run()
	if err != nil {
		t.Fatal(err)
	}
	po, err := New(open, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	so, err := po.Run()
	if err != nil {
		t.Fatal(err)
	}
	if so.HardMispredicts < sg.HardMispredicts {
		t.Errorf("ungated must activate at least as often: %d vs %d",
			so.HardMispredicts, sg.HardMispredicts)
	}
	if so.HardMispredicts != so.Mispredicts {
		t.Errorf("ungated: every mispredict activates (%d vs %d)",
			so.HardMispredicts, so.Mispredicts)
	}
}

func TestSpecMemLatencyCostsPerformance(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "smlat", ArrayWords: 1 << 9, Iters: 4000, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 1, Streams: 2, StoreEvery: 0, Seed: 7,
	})
	run := func(lat int) float64 {
		cfg := DefaultConfig(ModeCI)
		cfg.SpecMemSize = 768
		cfg.SpecMemLat = lat
		cfg.MaxInstr = 60_000
		p, err := New(cfg, b.Program, b.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	fast, slow := run(2), run(12)
	// §3.2: longer speculative-memory latencies degrade only mildly (a
	// 5-cycle memory costs ~3%). Second-order timing effects (changed
	// branch-resolution order perturbing the predictor) can flip the
	// sign by a few percent on short runs, so only gross inversions
	// fail.
	if slow > fast*1.10 {
		t.Errorf("slower spec memory much faster than fast one: lat2=%.3f lat12=%.3f", fast, slow)
	}
	if fast <= 0 || slow <= 0 {
		t.Fatal("runs produced no IPC")
	}
}

func TestReplaysAreRare(t *testing.T) {
	// The commit-time value check exists as a safety net; if it fires
	// frequently the mechanism's validation rules are broken.
	for _, name := range []string{"gcc", "gzip", "parser"} {
		b, err := workload.Spec(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(ModeCI)
		cfg.MaxInstr = 50_000
		p, err := New(cfg, b.Program, b.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.CommittedReuse > 0 && float64(st.Replays) > 0.02*float64(st.CommittedReuse) {
			t.Errorf("%s: %d replays for %d reuses (>2%%)", name, st.Replays, st.CommittedReuse)
		}
	}
}

func TestCIIWNeverVectorizes(t *testing.T) {
	b, err := workload.SpecWithIters("gcc", 400)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(ModeCIIW), b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplicasDispatched != 0 || st.VectorizedEntries != 0 {
		t.Error("ci-iw must not create replicas or SRSMT entries")
	}
}

func TestScalarModesHaveNoMechanismActivity(t *testing.T) {
	b, err := workload.SpecWithIters("gzip", 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mode{ModeScalar, ModeWideBus} {
		p, err := New(DefaultConfig(m), b.Program, b.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.ReplicasDispatched != 0 || st.CommittedReuse != 0 || st.CISelected != 0 {
			t.Errorf("%v: mechanism activity in a baseline mode", m)
		}
	}
}

func TestDivByZeroThroughPipeline(t *testing.T) {
	src := `
        movi r1, 10
        movi r2, 0
        div  r3, r1, r2
        addi r3, r3, 5
        halt
`
	p, _ := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if got := p.ARF()[3]; got != 5 {
		t.Errorf("div-by-zero chain = %d, want 5", got)
	}
}

func TestICacheMissesStallFetch(t *testing.T) {
	// A program long enough to span several I-cache lines must record
	// I-cache misses (64B lines = 16 instructions each).
	var src string
	for i := 0; i < 200; i++ {
		src += "        addi r1, r1, 1\n"
	}
	src += "        halt\n"
	_, st := runToHalt(t, DefaultConfig(ModeScalar), src, nil)
	if st.L1I.Misses == 0 {
		t.Error("long straight-line code must miss the I-cache")
	}
	if got := st.Committed; got != 201 {
		t.Errorf("committed = %d, want 201", got)
	}
}

func TestStridedPCCapRespected(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "pccap", ArrayWords: 1 << 8, Iters: 600, TakenBias: 0.5,
		Hammocks: 1, CIOps: 4, FillerOps: 0, Streams: 4, StoreEvery: 0, Seed: 8,
	})
	for _, cap := range []int{1, 2, 4} {
		cfg := DefaultConfig(ModeCI)
		cfg.StridedPCsPerEntry = cap
		runBoth(t, cfg, b.Program, b.NewMem())
	}
}

func TestRenameWriterTracking(t *testing.T) {
	// White-box: after renaming, the map must record writer PC and seq.
	prog := asm.MustAssemble("wt", `
        movi r7, 3
        addi r7, r7, 1
        halt
`)
	cfg := DefaultConfig(ModeScalar)
	p, err := New(cfg, prog, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if p.ren[7].writerPC != 1 {
		t.Errorf("writerPC = %d, want 1 (the addi)", p.ren[7].writerPC)
	}
	if p.ren[isa.Reg(9)].writerPC != -1 {
		t.Errorf("untouched register writerPC = %d, want -1", p.ren[9].writerPC)
	}
}

func TestRunReportsCycleBound(t *testing.T) {
	src := "loop: jmp loop\nhalt\n"
	prog := asm.MustAssemble("spin", src)
	cfg := DefaultConfig(ModeScalar)
	cfg.MaxCycles = 2000
	p, err := New(cfg, prog, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Error("infinite loop must trip the cycle bound")
	}
}

func TestStatsFinalized(t *testing.T) {
	b, err := workload.SpecWithIters("eon", 200)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultConfig(ModeCI), b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles == 0 || st.L1D.Accesses == 0 || st.L1I.Accesses == 0 {
		t.Error("cache/cycle stats must be snapshotted into Stats")
	}
	if st.RegPeak == 0 {
		t.Error("register occupancy must be recorded")
	}
}
