package core

import (
	"fmt"
	"math/bits"
	"os"

	"civect/internal/ci"
	"civect/internal/isa"
)

// debugTrace enables stderr event tracing of SRSMT lifecycle events.
var debugTrace = os.Getenv("CIVECT_TRACE") != ""

// valResult classifies a validation attempt (§2.3.4).
type valResult int

const (
	// valOK: the instruction reuses the next replica.
	valOK valResult = iota
	// valFail: operand identities or the stride changed; the entry is
	// torn down and the instruction re-vectorized with new operands.
	valFail
	// valNoReplica: the operands still match but no replica is
	// available yet; the instruction executes normally and the entry
	// survives.
	valNoReplica
)

// tryValidate checks a fetched instruction against its SRSMT entry and,
// on success, consumes the next replica (advancing the Decode cursor).
func (p *Proc) tryValidate(e *robEntry, ent *ci.Entry, snap []renEntry) valResult {
	h := ent.TurnHeader
	in := e.in
	if ent.Instr != in {
		// Different instruction aliased into the same PC slot (cannot
		// happen with PC-indexed programs, but stay defensive).
		return valFail
	}
	if ent.IsLoad {
		// "For a load, the stride must keep on being the same."
		se := p.sp.Lookup(uint64(e.pc))
		if se == nil || !se.Confident() || se.Stride != ent.Stride {
			p.Stats.ValFailStride++
			return valFail
		}
	} else {
		// Arithmetic: the producers currently found in the rename table
		// must match the seq1/seq2 identities recorded at vectorization.
		refs := [2]ci.OperandRef{ent.Src1, ent.Src2}
		for i := 0; i < int(e.nsrc); i++ {
			switch refs[i].Kind {
			case ci.OperandVec:
				// The operand must still be produced by the same static
				// instruction, its entry must still be the generation we
				// chained to, and the two instance streams must still be
				// in lockstep: the producer decodes exactly once per
				// consumer instance, so its cursor must sit at
				// Base + Decode + 1 when this instance validates.
				prod := p.srsmt.Lookup(refs[i].PC)
				if int64(snap[i].writerPC) != int64(refs[i].PC) ||
					prod == nil || prod.Gen != refs[i].Gen ||
					prod.Decode != refs[i].Base+h.Decode+1 {
					p.Stats.ValFailVec++
					return valFail
				}
			case ci.OperandSelf:
				// The accumulator must still be fed by this
				// instruction's own previous instance (validated or
				// not — the replica chain value is the same).
				if snap[i].writerPC != e.pc {
					p.Stats.ValFailSelf++
					return valFail
				}
			case ci.OperandScalar:
				// The scalar operand's value must be unchanged; an
				// unready or different value fails conservatively.
				if snap[i].vec || !p.rf.Ready(int(snap[i].phys)) ||
					p.rf.Value(int(snap[i].phys)) != refs[i].Value {
					p.Stats.ValFailScalar++
					return valFail
				}
			default:
				return valFail
			}
		}
	}
	slot := ent.Slot(h.Decode)
	if slot == nil && h.Alloc-h.Decode >= len(ent.Replicas) {
		// The cursor is stranded: recovery rollbacks have pushed it so
		// far behind the allocation frontier that its ring slot has
		// been recycled, and with the frontier this far ahead it can
		// never catch up. Tear the entry down; it will be recreated
		// anchored near the current frontier.
		p.Stats.ValFailSlot++
		return valFail
	}
	if slot == nil || slot.State == ci.ReplicaWaiting {
		// No replica was allocated for this instance, or it never got
		// an issue slot: there is no precomputed work to reuse, so
		// execute normally but keep the cursor aligned with the
		// instance stream. (An unissued replica's storage is reclaimed
		// when the commit cursor passes it.)
		h.Decode++
		p.srsmt.Touch(ent)
		p.activateEntry(ent)
		p.Stats.ValNoReplica++
		if debugTrace {
			//civet:allow hotalloc trace formatting only runs when CIVECT_TRACE is set; production runs never reach it
			fmt.Fprintf(os.Stderr, "[%d] noreplica pc=%d decode=%d alloc=%d commit=%d\n", p.cycle, e.pc, h.Decode-1, h.Alloc, h.Commit)
		}
		return valNoReplica
	}
	if slot.State == ci.ReplicaFailed {
		p.Stats.ValFailSlot++
		return valFail
	}
	e.validated = true
	e.valEntry = ent
	e.valGen = h.Gen
	e.valIdx = int32(h.Decode)
	h.Decode++
	p.srsmt.Touch(ent)
	p.spawnReplicas(ent)
	p.activateEntry(ent)
	return valOK
}

// maybeVectorizeLoad creates an SRSMT entry and replica batch for a
// strided load (§2.3.3). In ModeCI the load must have been selected
// (S flag); ModeVect vectorizes every confident strided load.
//
// Creation happens when an instance of the load completes execution:
// its effective address anchors the replica address sequence exactly.
// (If the instance turns out to be on a wrong path, the entry is torn
// down by the squash logic.) Instances already decoded when the entry
// appears can never validate, so the decode cursor starts at their
// count: the first replica lines up with the first instance that can
// actually validate against it.
func (p *Proc) maybeVectorizeLoad(pc int, in isa.Instr, addr uint64, creatorSeq uint64) {
	se := p.sp.Lookup(uint64(pc))
	if se == nil || !se.Confident() || se.Stride == 0 {
		return
	}
	if p.cfg.Mode == ModeCI && !se.S {
		return
	}
	if p.srsmt.Lookup(uint64(pc)) != nil {
		return
	}
	w := p.srsmt.AllocCandidate(uint64(pc))
	if w == nil {
		return
	}
	if w.Valid {
		p.invalidateEntry(w)
	}
	ent := p.srsmt.Init(w, uint64(pc), in)
	ent.IsLoad = true
	ent.Stride = se.Stride
	ent.CreatorSeq = creatorSeq
	// Replica abs reads BatchBase + Stride·(abs+1), with abs 0 being
	// the first instance after the creator. Instances already decoded
	// (they can never validate) advance the decode cursor; none of them
	// has committed yet, so the commit cursor starts at zero and
	// catches up as they retire.
	ent.BatchBase = addr
	skip := p.inflightInstances(pc, creatorSeq)
	ent.Decode, ent.Commit, ent.Alloc = skip, 0, skip
	p.initReplicaRing(ent)
	p.Stats.VectorizedEntries++
	if debugTrace {
		//civet:allow hotalloc trace formatting only runs when CIVECT_TRACE is set; production runs never reach it
		fmt.Fprintf(os.Stderr, "[%d] create-load pc=%d skip=%d\n", p.cycle, pc, skip)
	}
	p.enlistNew(ent)
	p.spawnReplicas(ent)
}

// enlistNew stamps a freshly created entry incarnation and appends it
// to the active worklist (stamps are monotonic, so appending keeps the
// list sorted).
func (p *Proc) enlistNew(ent *ci.Entry) {
	p.entryStamp++
	h := ent.TurnHeader
	h.Stamp = p.entryStamp
	h.Listed = true
	p.activeEntries = append(p.activeEntries, refTo(ent))
}

// activateEntry re-inserts a parked entry into the worklist at its
// stamp position, so it competes for replica issue bandwidth exactly
// where a never-parked scan would have placed it. Call it after any
// cursor movement that can create replica work, and from the wakeup
// engine. Wakes landing mid-replicaTick reconcile the insertion index
// with the tick cursor: an entry whose stamp position the tick has
// already passed keeps its listing but waits for the next cycle, just
// as the naive scan would have found nothing actionable at its turn.
func (p *Proc) activateEntry(ent *ci.Entry) {
	if ent.Listed || !ent.Valid {
		return // inlinable fast path: most activations find the entry listed
	}
	p.listEntry(ent)
}

// listEntry is activateEntry's insertion slow path.
func (p *Proc) listEntry(ent *ci.Entry) {
	h := ent.TurnHeader
	h.Listed = true
	h.Idle = 0
	i, j := 0, len(p.activeEntries)
	for i < j {
		m := (i + j) / 2
		if p.activeEntries[m].stamp < h.Stamp {
			i = m + 1
		} else {
			j = m
		}
	}
	p.activeEntries = append(p.activeEntries, entryRef{})
	copy(p.activeEntries[i+1:], p.activeEntries[i:])
	p.activeEntries[i] = refTo(ent)
	if p.inTick && i <= p.tickIdx {
		p.tickIdx++
	}
}

// inflightInstances counts decoded dynamic instances of the static
// instruction at pc younger than the creator. (Instructions in the
// fetch buffer have not decoded yet; they will find the entry and
// validate, so they are not skipped.)
func (p *Proc) inflightInstances(pc int, creatorSeq uint64) int {
	n := 0
	i := p.robHead
	for c := 0; c < p.robCount; c++ {
		if p.rob[i].valid && int(p.rob[i].pc) == pc && p.rob[i].seq > creatorSeq {
			n++
		}
		i = p.robIndexAfter(i)
	}
	return n
}

// maybeVectorizeArith vectorizes an instruction at least one of whose
// source operands is produced by a vectorized instruction ("every time
// an instruction is fetched, it is checked whether any of its source
// operands is the outcome of a previously vectorized instruction, and if
// this is the case, it is also speculatively vectorized").
//
// destPhys is the current (triggering) instance's own destination
// register: replica 0 corresponds to the NEXT dynamic instance, so a
// self-recurrence must seed from the triggering instance's result, not
// from the previous one's.
func (p *Proc) maybeVectorizeArith(pc int, in isa.Instr, snap []renEntry, destPhys int, creatorSeq uint64) {
	anyVec := false
	for i := range snap {
		if snap[i].vec {
			anyVec = true
			break
		}
	}
	if !anyVec || p.srsmt.Lookup(uint64(pc)) != nil {
		return
	}

	var refs [2]ci.OperandRef
	seedPhys := -1
	srcs := p.metaAt(pc).srcRegs()
	for i := range snap {
		sn := snap[i]
		switch {
		case (srcs[i] == in.Rd && int(sn.writerPC) == pc) || (sn.vec && sn.vecPC == uint64(pc)):
			// A genuine loop-carried recurrence: the operand register
			// is this instruction's own destination AND its current
			// value comes from this instruction's previous instance.
			// Replica k chains on replica k-1, seeded by the
			// triggering instance's own result.
			refs[i] = ci.OperandRef{Kind: ci.OperandSelf}
			seedPhys = destPhys
		case sn.vec:
			prod := p.srsmt.Lookup(sn.vecPC)
			if prod == nil || prod.Gen != sn.vecGen {
				return // producer entry is gone; nothing to chain to
			}
			refs[i] = ci.OperandRef{Kind: ci.OperandVec, PC: sn.vecPC, Gen: sn.vecGen, Prod: prod, Base: prod.Decode}
		default:
			if !p.rf.Ready(int(sn.phys)) {
				// The paper stalls decode until the scalar value is
				// ready; we skip vectorizing this time instead.
				return
			}
			refs[i] = ci.OperandRef{Kind: ci.OperandScalar, Value: p.rf.Value(int(sn.phys))}
		}
	}

	w := p.srsmt.AllocCandidate(uint64(pc))
	if w == nil {
		return
	}
	if w.Valid {
		p.invalidateEntry(w)
	}
	ent := p.srsmt.Init(w, uint64(pc), in)
	ent.Src1, ent.Src2 = refs[0], refs[1]
	ent.NSrc = uint8(len(srcs))
	// Chain onto the producers' wakeup lists so replicas blocked on
	// their values are re-armed when those values settle. (AllocCandidate
	// may have recycled a producer's way for this very entry; the stale
	// generation in the ref makes such a chain resolve to inputFail, and
	// the registration is dropped on the first wake.)
	if p.eventSched {
		if ent.Src1.Kind == ci.OperandVec {
			ent.Src1.Prod.AddConsumer(ent)
		}
		if ent.Src2.Kind == ci.OperandVec && ent.Src2.Prod != ent.Src1.Prod {
			ent.Src2.Prod.AddConsumer(ent)
		}
	}
	ent.CreatorSeq = creatorSeq
	ent.SeedPhys = -1
	if seedPhys >= 0 {
		if p.rf.Ready(seedPhys) {
			v := p.rf.Value(seedPhys)
			if ent.Src1.Kind == ci.OperandSelf {
				ent.Src1.Value = v
			}
			if ent.Src2.Kind == ci.OperandSelf {
				ent.Src2.Value = v
			}
			ent.SeedCaptured = true
		} else {
			ent.SeedPhys = seedPhys
			p.seedWatch = append(p.seedWatch, refTo(ent))
		}
	} else {
		ent.SeedCaptured = true
	}
	p.initReplicaRing(ent)
	p.Stats.VectorizedEntries++
	p.enlistNew(ent)
	p.spawnReplicas(ent)
}

func (p *Proc) initReplicaRing(ent *ci.Entry) {
	ent.NRegs = p.cfg.Replicas
	ent.InitRing(2 * p.cfg.Replicas)
}

// needSpawn reports whether the batch is below its batch-ahead bound
// (the cheap guard call sites use before paying for spawnReplicas; the
// Alloc<Decode case is the cursor fixup spawnReplicas performs).
func needSpawn(ent *ci.Entry) bool {
	h := ent.TurnHeader
	return h.Alloc-h.Decode < h.NRegs
}

// spawnReplicas allocates replica instances up to the batch-ahead bound
// (NRegs past the Decode cursor), storage permitting. "In the case that
// not enough free registers are available for the desired number of
// replicas, a lower number of replicas or none at all are created."
// Instance indices that the Decode cursor has already passed are never
// allocated; they stay holes. The batch chases the decode frontier:
// ring slots whose replicas can no longer be consumed are reclaimed on
// overwrite, and a validation that finds its slot recycled simply falls
// back to normal execution.
func (p *Proc) spawnReplicas(ent *ci.Entry) {
	h := ent.TurnHeader
	allocBefore := h.Alloc
	if h.Alloc < h.Decode {
		h.Alloc = h.Decode
	}
	p.fillBatch(ent)
	// An allocation-frontier move changes what blocked replicas would
	// resolve: consumers may be parked on it (or on slots just recycled
	// or turned into holes by the cursor fixup), and the entry's own
	// recurrence chain may be parked on a predecessor slot that was
	// just overwritten. Re-arm both — including when fillBatch bailed
	// out on exhausted storage after a partial spawn.
	if h.Alloc != allocBefore && p.eventSched {
		p.unblockEntry(ent)
		p.wakeConsumers(ent)
	}
}

// fillBatch allocates replicas up to the batch-ahead bound, stopping
// early when replica storage runs out.
func (p *Proc) fillBatch(ent *ci.Entry) {
	h := ent.TurnHeader
	for h.Alloc-h.Decode < h.NRegs {
		var dest int
		if p.sm != nil {
			d, ok := p.sm.Alloc()
			if !ok {
				return
			}
			dest = d
		} else {
			if p.rf.FreeCount() <= p.cfg.ReplicaRegReserve {
				return
			}
			d, ok := p.rf.Alloc()
			if !ok {
				return
			}
			dest = d
		}
		slot := &ent.Replicas[h.Alloc&(len(ent.Replicas)-1)]
		// The ring slot may still hold a stale pre-Commit replica
		// (e.g. one skipped by the Decode cursor): release its
		// resources before reuse.
		if slot.Dest >= 0 {
			if p.sm != nil {
				p.sm.Release(slot.Dest)
			} else {
				p.rf.Release(slot.Dest)
			}
		}
		if slot.State == ci.ReplicaIssued {
			h.Issue--
			// NextDone may now under-estimate; that only costs a scan.
			h.IssuedMask &^= 1 << (uint(h.Alloc) & uint(len(ent.Replicas)-1) & 63)
		}
		// The new occupant is Waiting; count it unless the old occupant
		// was already Waiting/Issued (unused slots have Abs < 0).
		if slot.Abs < 0 || slot.State == ci.ReplicaDone || slot.State == ci.ReplicaFailed {
			h.Pending++
		}
		// The new occupant is actionable: arm its bit and clear any
		// blocked listing the overwritten slot left behind.
		bit := uint64(1) << (uint(h.Alloc) & uint(len(ent.Replicas)-1) & 63)
		h.ActiveMask |= bit
		h.BlockedMask &^= bit
		*slot = ci.Replica{State: ci.ReplicaWaiting, Abs: h.Alloc, Dest: dest}
		if ent.IsLoad {
			slot.Addr = ent.BatchBase + uint64(ent.Stride*int64(h.Alloc+1))
			if !ent.HasRange {
				ent.HasRange = true
				ent.RangeLo, ent.RangeHi = slot.Addr, slot.Addr
			} else {
				if slot.Addr < ent.RangeLo {
					ent.RangeLo = slot.Addr
				}
				if slot.Addr > ent.RangeHi {
					ent.RangeHi = slot.Addr
				}
			}
		}
		h.Alloc++
		p.Stats.ReplicasDispatched++
	}
}

// reclaimIdleEntries releases every deallocatable SRSMT entry (no
// validation in progress, no replica executing) so that scalar renaming
// can make progress when replica storage has consumed the register
// file. This is the replacement action AllocCandidate performs on
// conflict, applied under register pressure instead.
func (p *Proc) reclaimIdleEntries() {
	if p.srsmt == nil {
		return
	}
	//civet:allow hotalloc non-escaping iterator callback; ForEachValid does not retain it (TestSteadyStateZeroAllocs pins zero allocs)
	p.srsmt.ForEachValid(func(ent *ci.Entry) bool {
		if ent.Deallocatable() {
			p.invalidateEntry(ent)
		}
		return true
	})
}

// releaseEntryStorage frees the register-file registers or speculative
// memory positions still owned by an entry's replicas.
func (p *Proc) releaseEntryStorage(ent *ci.Entry) {
	h := ent.TurnHeader
	for abs := h.Commit; abs < h.Alloc; abs++ {
		slot := ent.Slot(abs)
		if slot == nil || slot.Dest < 0 {
			continue
		}
		if p.sm != nil {
			p.sm.Release(slot.Dest)
		} else {
			p.rf.Release(slot.Dest)
		}
		slot.Dest = -1
	}
}

// inputStatus classifies replica operand resolution.
type inputStatus int

const (
	inputReady inputStatus = iota
	inputWait
	inputFail
)

// resolveReplicaInput produces the value of one replica operand. The
// ref is taken by pointer: it is called for every waiting replica every
// cycle, and the OperandRef copy showed up in profiles.
func (p *Proc) resolveReplicaInput(ent *ci.Entry, ref *ci.OperandRef, abs int) (uint64, inputStatus) {
	switch ref.Kind {
	case ci.OperandScalar:
		return ref.Value, inputReady
	case ci.OperandSelf:
		if abs == 0 {
			h := ent.TurnHeader
			if h.SeedBroken {
				return 0, inputFail
			}
			if !h.SeedCaptured {
				return 0, inputWait
			}
			return ref.Value, inputReady
		}
		prev := ent.Slot(abs - 1)
		if prev == nil {
			return 0, inputFail
		}
		switch prev.State {
		case ci.ReplicaDone:
			return prev.Value, inputReady
		case ci.ReplicaFailed:
			return 0, inputFail
		default:
			return 0, inputWait
		}
	case ci.OperandVec:
		prod := ref.Prod
		if prod == nil {
			return 0, inputFail
		}
		ph := prod.TurnHeader
		if !ph.Valid || ph.Gen != ref.Gen {
			return 0, inputFail
		}
		pabs := ref.Base + abs
		if pabs >= ph.Alloc {
			return 0, inputWait
		}
		pslot := prod.Slot(pabs)
		if pslot == nil {
			return 0, inputFail
		}
		switch pslot.State {
		case ci.ReplicaDone:
			return pslot.Value, inputReady
		case ci.ReplicaFailed:
			return 0, inputFail
		default:
			return 0, inputWait
		}
	}
	return 0, inputReady
}

// replicaTick completes finished replicas (writing their storage,
// through the speculative memory's write ports when configured), then
// issues waiting replicas with the cycle's leftover issue bandwidth and
// functional units — replicas have lower priority than scalar
// instructions (§2.4.1) — and finally tops up the batches. The body
// below is the naive reference scan; the default event-driven engine
// lives in replica_sched.go.
//
//civet:hotpath
func (p *Proc) replicaTick() {
	if p.srsmt == nil {
		return
	}
	if p.eventSched {
		p.replicaTickEvent()
		return
	}
	live := p.activeEntries[:0]
	for _, ref := range p.activeEntries {
		h := ref.hdr
		if !ref.live() {
			// Config.EmulateAliasedWorklist: the PR 1 bug kept stale
			// listings alive as long as the way held any valid
			// incarnation, granting it double arbitration turns.
			if !p.aliasEmu || !h.Valid {
				continue // the incarnation died; drop the listing
			}
		}
		ent := ref.ent
		// Steady-state fast paths. An entry with no issued replica to
		// complete, the seed resolved and a full batch either has
		// nothing at all left (park it — validation and commit cursor
		// movement call activateEntry to bring it back), or only
		// waiting replicas an exhausted issue budget cannot serve this
		// cycle (skip the scan, keep it listed).
		if h.Issue == 0 &&
			(h.SeedCaptured || h.SeedBroken || h.SeedPhys < 0) &&
			h.Alloc-h.Decode >= h.NRegs {
			if h.Pending == 0 {
				h.Listed = false
				continue
			}
			if p.issueBudget <= 0 {
				live = append(live, ref)
				continue
			}
		}
		p.captureSeed(ent)

		if len(ent.Replicas) <= 64 {
			// Visit only actionable (Waiting/Issued) slots, in the same
			// ascending ring-index order as a full scan.
			for m := h.ActiveMask; m != 0; m &= m - 1 {
				p.replicaSlotTick(ent, &ent.Replicas[bits.TrailingZeros64(m)])
			}
		} else {
			for i := range ent.Replicas {
				if ent.Replicas[i].Abs < 0 {
					continue
				}
				p.replicaSlotTick(ent, &ent.Replicas[i])
			}
		}
		if needSpawn(ent) {
			p.spawnReplicas(ent)
		}
		live = append(live, ref)
	}
	p.activeEntries = live
}

// replicaSlotTick advances one actionable ring slot: completing it if
// issued and due, or attempting issue if waiting and consumable.
func (p *Proc) replicaSlotTick(ent *ci.Entry, slot *ci.Replica) {
	switch slot.State {
	case ci.ReplicaIssued:
		if slot.DoneAt <= p.cycle {
			if p.sm != nil {
				if slot.Dest < 0 || !p.sm.TryWrite(slot.Dest, slot.Value) {
					// Retry next cycle (write ports busy).
					if p.cycle+1 < p.turnNextDone {
						p.turnNextDone = p.cycle + 1
					}
					return
				}
			} else if slot.Dest >= 0 {
				p.rf.Write(slot.Dest, slot.Value)
			}
			p.settleReplica(ent, slot, ci.ReplicaDone)
			ent.Issue--
		} else if slot.DoneAt < p.turnNextDone {
			p.turnNextDone = slot.DoneAt
		}
	case ci.ReplicaWaiting:
		// Issue replicas the pipeline can still consume: those at or
		// past the commit cursor (earlier ones are dead).
		if slot.Abs >= ent.Commit && slot.Dest >= 0 && p.issueBudget > 0 {
			p.tryIssueReplica(ent, slot.Abs, slot)
		}
	}
}

// captureSeed latches a pending OperandSelf seed value once its
// physical register produces, or marks it broken if the register was
// reclaimed first. It reports whether the seed resolved either way,
// so the event-driven scheduler can wake replicas blocked on it.
// (Entries with a pending seed never park, so polling here keeps the
// exact naive capture timing.)
func (p *Proc) captureSeed(ent *ci.Entry) bool {
	h := ent.TurnHeader
	if h.SeedCaptured || h.SeedBroken || h.SeedPhys < 0 {
		return false
	}
	if !p.rf.Allocated(h.SeedPhys) {
		h.SeedBroken = true
		return true
	}
	if !p.rf.Ready(h.SeedPhys) {
		return false
	}
	v := p.rf.Value(h.SeedPhys)
	if ent.Src1.Kind == ci.OperandSelf {
		ent.Src1.Value = v
	}
	if ent.Src2.Kind == ci.OperandSelf {
		ent.Src2.Value = v
	}
	h.SeedCaptured = true
	return true
}

// tryIssueReplica attempts to issue one waiting replica.
func (p *Proc) tryIssueReplica(ent *ci.Entry, abs int, slot *ci.Replica) {
	if ent.IsLoad {
		r := p.hier.DataAccessReplica(slot.Addr)
		if !r.OK {
			return // no port this cycle
		}
		// The access may have latched a wide-bus line a blocked scalar
		// load could coalesce from next cycle; replica arbitration runs
		// after the issue scan, so tell the fast-forward engine its
		// no-issue observation is stale.
		p.readyDirty = true
		slot.Value = p.mem.Read64(slot.Addr)
		slot.State = ci.ReplicaIssued
		slot.DoneAt = p.cycle + uint64(r.Lat)
		ent.MarkIssued(slot)
		if slot.DoneAt < p.turnNextDone {
			p.turnNextDone = slot.DoneAt
		}
		ent.Issue++
		p.issueBudget--
		return
	}

	in := ent.Instr
	nsrc := int(ent.NSrc)
	refs := [2]*ci.OperandRef{&ent.Src1, &ent.Src2}
	var vals [2]uint64
	for i := 0; i < nsrc; i++ {
		v, st := p.resolveReplicaInput(ent, refs[i], abs)
		switch st {
		case inputFail:
			p.settleReplica(ent, slot, ci.ReplicaFailed)
			return
		case inputWait:
			p.blockSlot(ent, slot)
			return
		}
		vals[i] = v
	}
	useMul, lat := p.opLatency(in.Op)
	if useMul {
		if p.mulFree <= 0 {
			return
		}
		p.mulFree--
	} else {
		if p.aluFree <= 0 {
			return
		}
		p.aluFree--
	}
	slot.Value = execALU(in, vals[0], vals[1])
	slot.State = ci.ReplicaIssued
	slot.DoneAt = p.cycle + uint64(lat)
	ent.MarkIssued(slot)
	if slot.DoneAt < p.turnNextDone {
		p.turnNextDone = slot.DoneAt
	}
	ent.Issue++
	p.issueBudget--
}

// advanceValidated progresses validation-pending instructions: once the
// consumed replica completes, its value is copied into the validating
// instruction's destination register — instantaneous inside the
// monolithic register file, or through the speculative data memory's
// read ports with its access latency (§2.4.6). Validated loads first
// verify that the replica's address matches their own effective address
// (address generation still happens; only the memory access is
// skipped); a mismatch tears the entry down and re-executes. Broken
// validations (dead entry, failed replica, or a stuck producer) fall
// back to normal execution.
func (p *Proc) advanceValidated() {
	if len(p.validPend) == 0 {
		return
	}
	const validationPatience = 500
	out := p.validPend[:0]
	for _, w := range p.validPend {
		e := &p.rob[w.idx]
		if !e.valid || e.seq != w.seq || e.state != stValidPend {
			continue
		}
		ent := e.valEntry
		if ent == nil {
			p.fallbackToExec(w.idx)
			continue
		}
		if h := ent.TurnHeader; !h.Valid || h.Gen != e.valGen {
			p.fallbackToExec(w.idx)
			continue
		}
		slot := ent.Slot(int(e.valIdx))
		if slot == nil || slot.State == ci.ReplicaFailed {
			p.fallbackToExec(w.idx)
			continue
		}
		if ent.IsLoad && !e.executed {
			// Address check: wait for the base register, then compare.
			if !p.rf.Ready(int(e.srcPhys[0])) {
				if p.cycle-e.valSince > validationPatience {
					p.fallbackToExec(w.idx)
					continue
				}
				out = append(out, w)
				continue
			}
			addr := p.rf.Value(int(e.srcPhys[0])) + uint64(e.in.Imm)
			if addr != slot.Addr {
				// The replica sequence does not line up with this
				// dynamic instance: deallocate and re-vectorize later.
				p.Stats.ValidationFails++
				p.Stats.ValFailAddr++
				p.invalidateEntry(ent)
				p.fallbackToExec(w.idx)
				continue
			}
			e.addr = addr
			e.executed = true // address verified; only the access is skipped
		}
		if slot.State == ci.ReplicaDone {
			if p.sm == nil {
				e.value = slot.Value
				p.writeReg(int(e.physDest), e.value)
				e.state = stDone
				e.executed = true
				continue
			}
			// Copy micro-op through the speculative memory read ports.
			if !e.copySched {
				if slot.Dest < 0 {
					p.fallbackToExec(w.idx)
					continue
				}
				if v, lat, ok := p.sm.TryRead(slot.Dest); ok {
					e.copySched = true
					e.copyReadyAt = p.cycle + uint64(lat)
					e.value = v
					p.Stats.SpecMemCopies++
				}
				out = append(out, w)
				continue
			}
			if p.cycle >= e.copyReadyAt {
				p.writeReg(int(e.physDest), e.value)
				e.state = stDone
				e.executed = true
				continue
			}
			out = append(out, w)
			continue
		}
		if p.cycle-e.valSince > validationPatience {
			p.fallbackToExec(w.idx)
			continue
		}
		out = append(out, w)
	}
	p.validPend = out
}

// resyncValidatedCursors repairs SRSMT decode cursors after a squash.
// OnRecovery reset decode to commit (§2.4.4), but instructions that
// SURVIVED the squash have already been counted by the decode cursor
// (and validated ones hold consumed replicas); without re-applying
// them, new decodes would consume the same replica indices twice and
// validate against the wrong instances.
func (p *Proc) resyncValidatedCursors() {
	if p.srsmt == nil {
		return
	}
	i := p.robHead
	for c := 0; c < p.robCount; c++ {
		e := &p.rob[i]
		i = p.robIndexAfter(i)
		if !e.valid {
			continue
		}
		ent := p.srsmt.Lookup(uint64(e.pc))
		if ent == nil || e.seq <= ent.CreatorSeq {
			continue
		}
		ent.Decode++
		p.activateEntry(ent)
	}
}

// fallbackToExec converts a validation-pending instruction back into a
// normally executing one (the speculation could not be completed).
func (p *Proc) fallbackToExec(idx int) {
	e := &p.rob[idx]
	e.validated = false
	e.valEntry = nil
	e.copySched = false
	e.state = stWaiting
	if p.metaAt(int(e.pc)).isMem() {
		p.lsqInsertOrdered(idx)
	}
	// Validated instances advertised themselves in the rename map
	// (V/S); the value will now come from normal execution, so clear
	// the vec bit if this instruction still owns the mapping.
	if e.hasDest && p.ren[e.logDest].writerSeq == e.seq {
		p.ren[e.logDest].vec = false
	}
	p.enqueueWaiting(idx, e)
}

// lsqInsertOrdered inserts a ROB index into the LSQ in sequence order
// (fallback instructions re-enter mid-queue).
func (p *Proc) lsqInsertOrdered(idx int) {
	seq := p.rob[idx].seq
	pos := len(p.lsq)
	for i, v := range p.lsq {
		if p.rob[v].seq > seq {
			pos = i
			break
		}
	}
	p.lsq = append(p.lsq, 0)
	copy(p.lsq[pos+1:], p.lsq[pos:])
	p.lsq[pos] = idx
}
