package core

import (
	"errors"

	"civect/internal/isa"
	"civect/internal/mem"
)

// SharedProgram is a validated, pre-decoded program that any number of
// processors can simulate concurrently: the static code and the
// per-PC class/operand metadata (instrMeta) are derived once and
// shared read-only. A multi-configuration sweep over one workload
// builds one SharedProgram and hands it to every lane (BatchProc, or
// NewShared directly) instead of re-validating and re-decoding the
// program per session.
type SharedProgram struct {
	prog  *isa.Program
	imeta []instrMeta
}

// ShareProgram validates and pre-decodes prog for sharing across
// processors.
func ShareProgram(prog *isa.Program) (*SharedProgram, error) {
	if prog == nil {
		return nil, errors.New("core: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return &SharedProgram{prog: prog, imeta: predecode(prog)}, nil
}

// Program returns the shared static program.
func (sp *SharedProgram) Program() *isa.Program { return sp.prog }

// Len returns the program's static instruction count.
func (sp *SharedProgram) Len() int { return sp.prog.Len() }

// NewShared builds a processor over an already validated and
// pre-decoded program — New without the per-session decode work. The
// processor owns and mutates m at commit (nil m means an empty image);
// the shared program is only read.
func NewShared(cfg Config, sp *SharedProgram, m *mem.Memory) (*Proc, error) {
	if sp == nil {
		return nil, errors.New("core: nil shared program")
	}
	return build(cfg, sp, m)
}
