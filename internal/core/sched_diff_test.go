package core

import (
	"testing"

	"civect/internal/workload"
)

// The event-driven wakeup engine (sched.go, replica_sched.go) is
// required to be observation-equivalent to the retained naive-scan
// reference scheduler (Config.NaiveScheduler): identical statistics,
// bit for bit, on every workload. These differential tests are the
// scan-equivalence proof the golden digests alone cannot give — they
// compare the two engines directly, so a compensating double bug
// cannot slip through a digest update.

// diffConfig builds one scheduler-differential test configuration.
func diffConfig(mode Mode, naive bool, mutate func(*Config)) Config {
	cfg := DefaultConfig(mode)
	cfg.MaxInstr = 15_000
	cfg.NaiveScheduler = naive
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// runStats simulates one benchmark under cfg and returns the final
// statistics.
func runStats(t *testing.T, b *workload.Benchmark, cfg Config) *Stats {
	t.Helper()
	p, err := New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSchedulerDifferentialSpecint compares final statistics of the
// two schedulers across the synthetic SpecInt workloads, every
// vectorizing mode, and the configuration corners that stress the
// wakeup chains: big replica batches (ring recycling), the speculative
// data memory (write-port completion retries), and the unbounded
// register file without DAEC (long-lived entries, the aliasing corner
// PR 1 fixed).
func TestSchedulerDifferentialSpecint(t *testing.T) {
	// The event leg keeps fast-forward at its default (on), so this
	// suite compares the naive scan against the full fast-forwarded
	// engine — the naive/fastforward matrix pair.
	skipUnlessPair(t, "fastforward", "naive")
	cases := []struct {
		name   string
		bench  string
		mode   Mode
		mutate func(*Config)
	}{
		{"gcc-ci", "gcc", ModeCI, nil},
		{"gzip-ci", "gzip", ModeCI, nil},
		{"mcf-ciiw", "mcf", ModeCIIW, nil},
		{"parser-vect", "parser", ModeVect, nil},
		{"gcc-ci-8rep", "gcc", ModeCI, func(c *Config) { c.Replicas = 8 }},
		{"gcc-ci-specmem", "gcc", ModeCI, func(c *Config) { c.SpecMemSize = 768 }},
		{"vpr-ci-inf-nodaec", "vpr", ModeCI, func(c *Config) {
			c.PhysRegs = 0
			c.WindowSize = WindowFor(0)
			c.DisableDAEC = true
		}},
		{"twolf-scal", "twolf", ModeScalar, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.Spec(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			naive := runStats(t, wl, diffConfig(tc.mode, true, tc.mutate))
			event := runStats(t, wl, diffConfig(tc.mode, false, tc.mutate))
			if *naive != *event {
				t.Errorf("schedulers diverge:\nnaive: %+v\nevent: %+v", *naive, *event)
			}
		})
	}
}

// TestSchedulerDifferentialRandom compares the engines over random,
// guaranteed-halting programs (run to completion, no budget).
func TestSchedulerDifferentialRandom(t *testing.T) {
	skipUnlessPair(t, "fastforward", "naive")
	for seed := int64(0); seed < 20; seed++ {
		wl := workload.Random(seed)
		for _, mode := range []Mode{ModeCI, ModeVect} {
			cfg := DefaultConfig(mode)
			cfg.NaiveScheduler = true
			naive := runStats(t, wl, cfg)
			cfg.NaiveScheduler = false
			event := runStats(t, wl, cfg)
			if *naive != *event {
				t.Fatalf("seed %d mode %v: schedulers diverge:\nnaive: %+v\nevent: %+v",
					seed, mode, *naive, *event)
			}
		}
	}
}

// TestSchedulerLockstep steps a naive and an event-driven pipeline in
// lockstep and compares the statistics after every cycle, so a
// transient divergence that happens to cancel out by the end of the
// run is still caught. The configuration is the one that exposed the
// missed ring-recycle wakeup during development: unbounded registers
// without DAEC keeps entries alive long enough for their recurrence
// chains to outlive ring slots.
func TestSchedulerLockstep(t *testing.T) {
	skipUnlessPair(t, "naive", "event")
	wl, err := workload.Spec("vpr")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(naive bool) *Proc {
		cfg := diffConfig(ModeCI, naive, func(c *Config) {
			c.PhysRegs = 0
			c.WindowSize = WindowFor(0)
			c.DisableDAEC = true
			c.MaxInstr = 40_000
			// Per-cycle comparison needs the stepped reference: the
			// fast-forward engine jumps stall cycles, so a fast-forwarded
			// run is only comparable at matching cycle counts (that
			// alignment is TestFastForwardCycleAlignment's job).
			c.NoFastForward = true
		})
		p, err := New(cfg, wl.Program, wl.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(true), mk(false)
	for cyc := 0; cyc < 2_000_000 && !a.halted && !b.halted &&
		a.Stats.Committed < 40_000 && b.Stats.Committed < 40_000; cyc++ {
		a.step()
		b.step()
		if a.Stats != b.Stats {
			t.Fatalf("cycle %d: stats diverge\nnaive: %+v\nevent: %+v", cyc, a.Stats, b.Stats)
		}
	}
	if a.halted != b.halted || a.Stats.Committed != b.Stats.Committed {
		t.Fatalf("runs ended differently: naive halted=%v committed=%d, event halted=%v committed=%d",
			a.halted, a.Stats.Committed, b.halted, b.Stats.Committed)
	}
}

// TestSteadyStateZeroAllocs enforces the zero-allocation steady state
// by measurement, not just benchmark observation: after warmup, whole
// simulated cycles must not allocate. (A tiny bound absorbs one-off
// buffer growth if a phase change lands inside the measured slice.)
//
// The unregistered-observer path is covered explicitly: the default
// subtest never registers an observer, and the detached subtest
// registers one and takes it back off before measuring, so the
// observer seam's nil path is pinned allocation-free from both
// directions.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cases := []struct {
		name    string
		prepare func(p *Proc)
	}{
		{"observer-never-registered", nil},
		{"observer-detached", func(p *Proc) {
			p.SetObserver(nopObserver{}, 1)
			p.SetObserver(nil, 0)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.SpecWithIters("gcc", 120_000)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(ModeCI)
			p, err := New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			if tc.prepare != nil {
				tc.prepare(p)
			}
			// The warmup must cover the mechanism's churn, not just the
			// caches: SRSMT ways keep being torn down and recreated, and
			// each way's first large replica ring, each register's first
			// deep park list and each data page are one-off allocations.
			for p.cycle < 100_000 && !p.halted {
				p.step()
			}
			if p.halted {
				t.Fatal("workload too short for a steady-state slice")
			}
			avg := testing.AllocsPerRun(5, func() {
				for i := 0; i < 2_000 && !p.halted; i++ {
					p.step()
				}
			})
			if p.halted {
				t.Fatal("workload ended inside the measured slice")
			}
			// The bound is amortized-growth slack, not absolute zero: a park
			// list or wheel bucket seeing its deepest-ever occupancy inside the
			// slice grows once and keeps the capacity. Per-cycle allocation
			// (the regression this test guards against) would show up as
			// thousands per slice.
			if avg > 2 {
				t.Errorf("steady-state cycles allocate: %.2f allocs per 2000-cycle slice", avg)
			}
		})
	}
}

// nopObserver is the registration fodder for the detached-observer
// zero-alloc subtest.
type nopObserver struct{}

func (nopObserver) OnCommitBatch(cycle uint64, committed, reused int) {}
func (nopObserver) OnCycleJump(from, to uint64)                       {}
func (nopObserver) OnProgress(cycle, committed uint64)                {}

// TestStridePoolAccounting re-derives stride-pool occupancy from the
// rename map and the in-flight oldRen checkpoints: every live slot has
// exactly one owner (the ownership discipline renEntry.strideRef
// documents), so a leak or double-free shows up as a count mismatch.
func TestStridePoolAccounting(t *testing.T) {
	for _, mode := range []Mode{ModeCI, ModeVect, ModeScalar} {
		wl, err := workload.Spec("gcc")
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(mode)
		cfg.MaxInstr = 20_000
		p, err := New(cfg, wl.Program, wl.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		want := 0
		for r := range p.ren {
			if p.ren[r].nStrided > 0 {
				want++
			}
		}
		i := p.robHead
		for c := 0; c < p.robCount; c++ {
			e := &p.rob[i]
			if e.valid && e.hasDest && e.oldRen.nStrided > 0 {
				want++
			}
			i = p.robIndexAfter(i)
		}
		if got := p.stridePC.inUse(); got != want {
			t.Errorf("%v: stride pool has %d live slots, owners account for %d", mode, got, want)
		}
	}
}
