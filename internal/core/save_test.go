package core

import (
	"bytes"
	"testing"

	"civect/internal/isa"
	"civect/internal/workload"
)

// Checkpoint differential suite: the contract is that saving at an
// arbitrary cycle boundary and restoring reproduces the uninterrupted
// run bit-identically — same final statistics struct, same committed
// registers, same memory image, same cycle count. Everything the
// machine remembers across a cycle must round-trip for that to hold,
// so these tests are the enforcement mechanism for the save/skip field
// classification in save.go.

// runToCommit steps p until it has committed at least n instructions
// (or halted), stopping at a cycle boundary.
func runToCommit(t *testing.T, p *Proc, n uint64) {
	t.Helper()
	for !p.halted && p.Stats.Committed < n {
		if p.cycle > 50_000_000 {
			t.Fatal("no forward progress")
		}
		p.step()
	}
}

// runToEnd steps p to its natural end under cfg.MaxInstr and finalizes.
func runToEnd(t *testing.T, p *Proc) *Stats {
	t.Helper()
	max := p.cfg.MaxInstr
	for !p.halted && (max == 0 || p.Stats.Committed < max) {
		if p.cycle > 50_000_000 {
			t.Fatal("no forward progress")
		}
		p.step()
	}
	return p.Finalize()
}

// checkpointAndResume runs a fresh machine to splitAt committed
// instructions, checkpoints it, restores the checkpoint into a second
// machine, runs both to completion and requires bit-identity. It also
// exercises the serialized container round-trip (the restored machine
// never shares memory with the original).
func checkpointAndResume(t *testing.T, b *workload.Benchmark, cfg Config, splitAt uint64) {
	t.Helper()
	sp, err := ShareProgram(b.Program)
	if err != nil {
		t.Fatal(err)
	}
	base := b.NewMem()

	orig, err := NewShared(cfg, sp, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	runToCommit(t, orig, splitAt)
	data := orig.SaveCheckpoint(base)

	info, err := PeekCheckpoint(data)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	if info.Program != b.Program.Name || info.Cycle != orig.cycle || info.Committed != orig.Stats.Committed {
		t.Fatalf("peek mismatch: %+v vs cycle=%d committed=%d prog=%q",
			info, orig.cycle, orig.Stats.Committed, b.Program.Name)
	}

	restored, err := RestoreCheckpoint(data, sp, base)
	if err != nil {
		t.Fatalf("restore at %d committed: %v", splitAt, err)
	}
	if restored.cycle != orig.cycle || restored.Stats != orig.Stats {
		t.Fatalf("restored machine differs at the split already:\norig:     cycle=%d %+v\nrestored: cycle=%d %+v",
			orig.cycle, orig.Stats, restored.cycle, restored.Stats)
	}

	stOrig := runToEnd(t, orig)
	stRest := runToEnd(t, restored)
	if *stOrig != *stRest {
		t.Fatalf("split at %d committed: restored run diverges:\norig:     %+v\nrestored: %+v",
			splitAt, *stOrig, *stRest)
	}
	if orig.arf != restored.arf {
		t.Fatalf("split at %d committed: final architectural registers differ", splitAt)
	}
	if oc, rc := orig.mem.Checksum(), restored.mem.Checksum(); oc != rc {
		t.Fatalf("split at %d committed: final memory differs (%#x vs %#x)", splitAt, oc, rc)
	}
	if orig.halted != restored.halted {
		t.Fatalf("split at %d committed: halt state differs", splitAt)
	}
}

// TestCheckpointRestoreBitIdentical is the core differential matrix:
// all three engines, the machine modes, configuration corners (spec
// memory, unbounded registers, 8-replica batches) and both workload
// tiers, each split at several points including mid-warmup.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		bench  string
		mode   Mode
		engine string
		instr  uint64
		splits []uint64
		mutate func(*Config)
	}{
		{"gcc-ci-ff", "gcc", ModeCI, "fastforward", 15_000, []uint64{1, 500, 7_000}, nil},
		{"gcc-ci-event", "gcc", ModeCI, "event", 15_000, []uint64{500, 7_000}, nil},
		{"gcc-ci-naive", "gcc", ModeCI, "naive", 15_000, []uint64{500, 7_000}, nil},
		{"mcf-scal-ff", "mcf", ModeScalar, "fastforward", 15_000, []uint64{4_000}, nil},
		{"mcf-ciiw-ff", "mcf", ModeCIIW, "fastforward", 15_000, []uint64{4_000}, nil},
		{"parser-vect-event", "parser", ModeVect, "event", 15_000, []uint64{4_000}, nil},
		{"twolf-wb-ff", "twolf", ModeWideBus, "fastforward", 15_000, []uint64{4_000}, nil},
		{"gcc-ci-specmem", "gcc", ModeCI, "fastforward", 12_000, []uint64{3_000},
			func(c *Config) { c.SpecMemSize = 768 }},
		{"gcc-ci-8rep", "gcc", ModeCI, "event", 12_000, []uint64{3_000},
			func(c *Config) { c.Replicas = 8 }},
		{"vpr-ci-inf-nodaec", "vpr", ModeCI, "fastforward", 12_000, []uint64{3_000},
			func(c *Config) {
				c.PhysRegs = 0
				c.WindowSize = WindowFor(0)
				c.DisableDAEC = true
			}},
		{"gcc.big-ci-ff", "gcc.big", ModeCI, "fastforward", 12_000, []uint64{5_000}, nil},
		{"mcf.big-ci-event", "mcf.big", ModeCI, "event", 12_000, []uint64{5_000}, nil},
		{"mcf.big-wb-naive", "mcf.big", ModeWideBus, "naive", 10_000, []uint64{5_000}, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.Spec(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(tc.mode)
			cfg.MaxInstr = tc.instr
			engineConfigs[tc.engine](&cfg)
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			for _, split := range tc.splits {
				checkpointAndResume(t, wl, cfg, split)
			}
		})
	}
}

// TestCheckpointRestoreRandomPrograms sweeps random guaranteed-halting
// programs run to natural completion, splitting at a quarter of each
// run's committed total.
func TestCheckpointRestoreRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		wl := workload.Random(seed)
		for _, mode := range []Mode{ModeCI, ModeScalar, ModeVect} {
			cfg := DefaultConfig(mode)
			// Learn the run length, then split a quarter in.
			probe, err := New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			st := runToEnd(t, probe)
			if st.Committed < 8 {
				continue
			}
			checkpointAndResume(t, wl, cfg, st.Committed/4)
		}
	}
}

// TestCheckpointDeterministicEncoding requires that saving the same
// machine state twice yields identical bytes — the map-heavy sections
// (word-store index) must serialize in a canonical order.
func TestCheckpointDeterministicEncoding(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 10_000
	base := wl.NewMem()
	p, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	runToCommit(t, p, 3_000)
	a := p.SaveCheckpoint(base)
	b := p.SaveCheckpoint(base)
	if !bytes.Equal(a, b) {
		t.Fatal("two saves of the same state produced different bytes")
	}
	// And a restored machine must re-serialize to the same bytes.
	sp, err := ShareProgram(wl.Program)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreCheckpoint(a, sp, base)
	if err != nil {
		t.Fatal(err)
	}
	c := r.SaveCheckpoint(base)
	if !bytes.Equal(a, c) {
		t.Fatal("restored machine re-serializes to different bytes")
	}
}

// TestCheckpointProgramMismatch proves a checkpoint refuses to restore
// over a different program, even one of the same name and length.
func TestCheckpointProgramMismatch(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 2_000
	base := wl.NewMem()
	p, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	runToCommit(t, p, 500)
	data := p.SaveCheckpoint(base)

	other := &isa.Program{Name: wl.Program.Name, Code: append([]isa.Instr(nil), wl.Program.Code...)}
	other.Code[0].Imm++
	osp, err := ShareProgram(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCheckpoint(data, osp, base); err == nil {
		t.Fatal("restore over a tampered program succeeded")
	}
	if _, err := RestoreCheckpoint(data, nil, base); err == nil {
		t.Fatal("restore without a program succeeded")
	}
}

// TestCheckpointCorruptionRejected flips one byte in every 97th
// position of a sealed checkpoint and requires RestoreCheckpoint to
// fail loudly each time (CRC or structural check), never to return a
// machine silently built from corrupt state.
func TestCheckpointCorruptionRejected(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 2_000
	base := wl.NewMem()
	p, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	runToCommit(t, p, 500)
	sp, err := ShareProgram(wl.Program)
	if err != nil {
		t.Fatal(err)
	}
	data := p.SaveCheckpoint(base)
	for pos := 0; pos < len(data); pos += 97 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		if _, err := RestoreCheckpoint(mut, sp, base); err == nil {
			t.Fatalf("flipped byte at %d restored without error", pos)
		}
	}
	for cut := 0; cut < len(data); cut += 101 {
		if _, err := RestoreCheckpoint(data[:cut], sp, base); err == nil {
			t.Fatalf("truncation to %d bytes restored without error", cut)
		}
	}
}

// TestSetArchState proves the sampled-simulation warm start: seeding a
// fresh detailed machine with the emulator's registers, PC and memory
// must reproduce the same committed values the program itself would
// compute from that point — and must be rejected once the machine has
// run.
func TestSetArchState(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 6_000
	ref, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	runToEnd(t, ref)

	// Second machine: start architecturally identical to a fresh one
	// (registers zero, PC 0) via SetArchState — must match exactly.
	p2, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumLogical]uint64
	if err := p2.SetArchState(regs, 0); err != nil {
		t.Fatal(err)
	}
	runToEnd(t, p2)
	if ref.Stats != p2.Stats || ref.arf != p2.arf {
		t.Fatalf("identity warm start diverges:\nref: %+v\ngot: %+v", ref.Stats, p2.Stats)
	}

	// Non-trivial warm start: registers and PC from partway through.
	// The detailed machine must commit the same architectural values a
	// straight run commits after that point (timing differs — cold
	// structures — but architecture may not).
	regs[5] = 1234
	p3, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.SetArchState(regs, 0); err != nil {
		t.Fatal(err)
	}
	if got := p3.ARF()[5]; got != 1234 {
		t.Fatalf("warm-started register not visible: got %d", got)
	}
	p3.step()
	if err := p3.SetArchState(regs, 0); err == nil {
		t.Fatal("SetArchState accepted after the machine ran")
	}
	if err := p3.SetArchState(regs, -1); err == nil {
		t.Fatal("SetArchState accepted a negative PC")
	}
}

// TestCheckpointMemoryDelta checks the sparse-delta memory encoding
// against its base image: restoring with the right base reproduces the
// memory; restoring against a nil base when one was used must fail the
// bit-identity check (different memory), which RestoreCheckpoint cannot
// detect structurally — so this is documented behavior, proven here.
func TestCheckpointMemoryDelta(t *testing.T) {
	wl, err := workload.Spec("mcf") // store-heavy
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 8_000
	base := wl.NewMem()
	p, err := New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	runToCommit(t, p, 4_000)

	withBase := p.SaveCheckpoint(base)
	selfContained := p.SaveCheckpoint(nil)
	if len(withBase) >= len(selfContained) {
		t.Logf("delta encoding not smaller (%d vs %d bytes) — acceptable but unexpected for a store-heavy run",
			len(withBase), len(selfContained))
	}
	sp, err := ShareProgram(wl.Program)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RestoreCheckpoint(withBase, sp, base)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RestoreCheckpoint(selfContained, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := p.mem.Checksum()
	if ra.mem.Checksum() != want {
		t.Fatal("delta restore does not reproduce memory")
	}
	if rb.mem.Checksum() != want {
		t.Fatal("self-contained restore does not reproduce memory")
	}
}
