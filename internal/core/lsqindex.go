package core

// Per-word last-store index.
//
// Load issue must disambiguate against every older in-flight store:
// any older store with an unresolved address blocks the load, and
// otherwise the youngest older store to the same 8-byte word forwards
// its value. The seed implementation re-walked the whole LSQ on every
// issue attempt — and blocked loads attempt every cycle, so the walk
// was quadratic in stall depth. These structures answer both questions
// in O(1):
//
//   - storeUnknown lists the dynamic sequence numbers of in-flight
//     stores whose addresses are not yet computed. Stores dispatch in
//     program order and squashes cut a suffix, so the slice is always
//     ascending; "is any older store unresolved" is one compare
//     against its head.
//   - wordStores maps an 8-byte-aligned word address to the ROB
//     indices of the in-flight address-known stores to it, kept in
//     sequence order; "youngest older same-word store" is a short
//     backward scan of a list that almost always has one element.
//
// Maintenance mirrors a store's lifecycle exactly: dispatch adds it to
// storeUnknown (renameStage), address computation moves it into
// wordStores (tryIssue), and commit or squash removes it from
// whichever structure holds it. Emptied word lists return their
// backing arrays to a free pool so the steady state stays
// allocation-free.

// storeDispatch registers a renamed store's not-yet-computed address.
// Dispatch order is program order, so appending keeps storeUnknown
// ascending.
func (p *Proc) storeDispatch(seq uint64) {
	p.storeUnknown = append(p.storeUnknown, seq)
}

// storeUnknownRemove drops one sequence number from the unknown set.
// The scan runs from the tail: squashes remove the youngest stores and
// issue resolution favours them too.
func (p *Proc) storeUnknownRemove(seq uint64) {
	for i := len(p.storeUnknown) - 1; i >= 0; i-- {
		if p.storeUnknown[i] == seq {
			p.storeUnknown = append(p.storeUnknown[:i], p.storeUnknown[i+1:]...)
			return
		}
	}
}

// storeAddrKnown moves a store whose address was just computed (at
// issue) from the unknown set into the per-word index, inserting at
// its sequence position — stores issue out of order.
func (p *Proc) storeAddrKnown(idx int, e *robEntry) {
	p.storeUnknownRemove(e.seq)
	w := e.addr &^ 7
	l, ok := p.wordStores[w]
	if !ok {
		if n := len(p.wordListFree); n > 0 {
			l = p.wordListFree[n-1]
			p.wordListFree = p.wordListFree[:n-1]
		} else {
			//civet:allow hotalloc word-list pool miss refills the free list; amortizes to zero in steady state
			l = make([]int32, 0, 4)
		}
	}
	pos := len(l)
	for i, ri := range l {
		if p.rob[ri].seq > e.seq {
			pos = i
			break
		}
	}
	l = append(l, 0)
	copy(l[pos+1:], l[pos:])
	l[pos] = int32(idx)
	p.wordStores[w] = l
}

// storeIndexRemove deletes a dying store (commit or squash) from
// whichever structure holds it: the unknown set while its address was
// never computed, the per-word index afterwards.
func (p *Proc) storeIndexRemove(idx int, e *robEntry) {
	if e.state == stWaiting {
		p.storeUnknownRemove(e.seq)
		return
	}
	w := e.addr &^ 7
	l := p.wordStores[w]
	for i, ri := range l {
		if int(ri) == idx {
			l = append(l[:i], l[i+1:]...)
			break
		}
	}
	if len(l) == 0 {
		delete(p.wordStores, w)
		p.wordListFree = append(p.wordListFree, l[:0])
	} else {
		p.wordStores[w] = l
	}
}
