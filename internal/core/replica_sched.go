package core

import (
	"math/bits"

	"civect/internal/ci"
)

// Event-driven replica arbitration.
//
// The naive reference (PR 1, retained behind Config.NaiveScheduler)
// re-attempts every waiting replica every cycle: a replica blocked on
// its producer replica resolves its operands, discovers they are still
// in flight, and returns — ~10% of ci-mode CPU doing nothing. The
// event-driven engine parks such replicas (Entry.BlockedMask) and
// re-arms them only when something that could change the answer
// happens:
//
//   - a replica of the same entry settles (recurrence chains, and the
//     within-turn forward cascade of the naive ascending ring scan);
//   - a replica of a producer entry settles, the producer's allocation
//     frontier advances, or the producer dies (OperandVec chains,
//     via Entry.Consumers);
//   - the recurrence seed resolves or breaks.
//
// Arbitration order is preserved bit-for-bit. Entries wake through
// activateEntry, which re-inserts them at their creation-stamp
// position; when a wake lands mid-replicaTick the insertion index is
// reconciled with the tick cursor so an entry whose stamp position has
// already passed this cycle waits for the next one, exactly like the
// naive scan. Within an entry's turn, slots unblocked at or below the
// current scan position are deferred to the next cycle (the naive scan
// visits each ring index once, ascending), while slots above it are
// picked up this turn — the naive forward cascade.
//
// Squash/recycle hygiene: Settle clears both masks, ring reinit clears
// BlockedMask, and entry invalidation wakes the consumer chain before
// the way is cleared, so no blocked replica can survive into — or leak
// a wakeup into — a way's next incarnation.

// wheelSpan is the replica completion wheel's horizon in cycles: a
// power of two comfortably above the deepest cache-miss latency, so
// practically every in-flight completion gets an exact wake slot.
const wheelSpan = 512

// replicaTickEvent is the event-driven replicaTick. Entries whose
// every pending replica is blocked (and with no completion, seed or
// top-up work) park off the worklist entirely; entries only waiting
// out execution latency delist onto the completion wheel; everything
// else mirrors the naive turn.
//
//civet:hotpath
func (p *Proc) replicaTickEvent() {
	// Wake the entries whose completion cycle has arrived, before the
	// arbitration walk, so they take their stamp-ordered turn this
	// cycle exactly as a never-delisted scan would.
	slot := p.cycle & (wheelSpan - 1)
	bucket := p.doneWheel[slot]
	if len(bucket) > 0 {
		for _, ref := range bucket {
			if ref.live() {
				p.activateEntry(ref.ent)
			}
		}
		p.doneWheel[slot] = bucket[:0]
		p.wheelOcc[slot>>6] &^= 1 << (slot & 63)
	}
	p.inTick = true
	retired := 0
	for p.tickIdx = 0; p.tickIdx < len(p.activeEntries); p.tickIdx++ {
		ref := p.activeEntries[p.tickIdx]
		if ref.ent == nil {
			continue // listing retired earlier this tick
		}
		// The turn's skip/park decisions read the header through the
		// listing's own pointer into the packed side-array: one load
		// per field, adjacent listed ways sharing cache lines.
		h := ref.hdr
		if !ref.live() {
			// Config.EmulateAliasedWorklist: keep the stale listing as
			// long as the way holds any valid incarnation — the PR 1
			// aliasing bug this knob re-introduces for trace demos.
			if !p.aliasEmu || !h.Valid {
				p.activeEntries[p.tickIdx].ent = nil
				retired++
				continue
			}
		}
		ent := ref.ent
		small := len(ent.Replicas) <= 64
		if h.Issue == 0 &&
			(h.SeedCaptured || h.SeedBroken || h.SeedPhys < 0) &&
			h.Alloc-h.Decode >= h.NRegs {
			idle := h.Pending == 0
			if small {
				// Blocked slots are wake-covered; only actionable ones
				// need a listing.
				idle = h.ActiveMask == 0
			}
			if idle {
				// Hysteresis: entries re-woken every cycle or two (the
				// steady commit-refill rhythm) keep their listing rather
				// than paying a sorted re-insertion per wake; only
				// persistently idle ones park.
				if h.Idle < 8 {
					h.Idle++
					continue
				}
				h.Listed = false
				p.activeEntries[p.tickIdx].ent = nil
				retired++
				continue
			}
			if p.issueBudget <= 0 {
				continue // nothing can issue; keep the listing
			}
		} else if small && p.cycle < h.NextDone &&
			h.ActiveMask&^h.IssuedMask == 0 &&
			(h.SeedCaptured || h.SeedBroken || h.SeedPhys < 0) &&
			h.Alloc-h.Decode >= h.NRegs {
			// Only in-flight executions remain and none retires yet:
			// every turn until NextDone would poll DoneAt and do
			// nothing else (NextDone never over-estimates). Sleep on
			// the completion wheel when its horizon covers the wait;
			// an intervening operand wake re-lists the entry early and
			// the then-redundant wheel wake is a no-op.
			if h.NextDone-p.cycle < wheelSpan {
				h.Listed = false
				p.activeEntries[p.tickIdx].ent = nil
				retired++
				b := h.NextDone & (wheelSpan - 1)
				p.doneWheel[b] = append(p.doneWheel[b], ref)
				p.wheelOcc[b>>6] |= 1 << (b & 63)
			}
			continue
		}
		h.Idle = 0
		if p.captureSeed(ent) {
			p.unblockEntry(ent)
		}
		if small {
			p.scanEnt, p.scanVisited = ent, 0
			p.turnNextDone = ^uint64(0)
			for {
				m := h.ActiveMask &^ p.scanVisited
				if m == 0 {
					break
				}
				j := bits.TrailingZeros64(m)
				p.scanPos = j
				p.scanVisited |= 1 << uint(j)
				p.replicaSlotTick(ent, &ent.Replicas[j])
			}
			p.scanEnt = nil
			h.NextDone = p.turnNextDone
		} else {
			for i := range ent.Replicas {
				if ent.Replicas[i].Abs < 0 {
					continue
				}
				p.replicaSlotTick(ent, &ent.Replicas[i])
			}
		}
		if h.Alloc-h.Decode < h.NRegs {
			p.spawnReplicas(ent)
		}
	}
	p.inTick = false
	if retired > 0 {
		live := p.activeEntries[:0]
		for _, ref := range p.activeEntries {
			if ref.ent != nil {
				live = append(live, ref)
			}
		}
		p.activeEntries = live
	}
}

// settleReplica retires a pending slot and fires the wakeups its state
// change enables: the entry's own chained replicas (recurrences) and
// the consumer entries reading this entry's replicas.
func (p *Proc) settleReplica(ent *ci.Entry, slot *ci.Replica, st ci.ReplicaState) {
	ent.Settle(slot, st)
	if p.eventSched {
		// Inline fast paths: most settles find nothing parked on them.
		h := ent.TurnHeader
		if h.BlockedMask != 0 || !h.Listed {
			p.unblockEntry(ent)
		}
		if len(ent.Consumers) != 0 {
			p.wakeConsumers(ent)
		}
	}
}

// blockSlot parks a waiting replica whose operand resolution returned
// inputWait. Rings beyond the mask width never block (they keep the
// naive per-cycle re-attempt), and the naive scheduler never blocks.
func (p *Proc) blockSlot(ent *ci.Entry, slot *ci.Replica) {
	if p.eventSched && len(ent.Replicas) <= 64 {
		ent.Block(slot)
	}
}

// unblockEntry re-arms an entry's blocked replicas and (re-)lists it
// for arbitration. When the entry is the one currently being scanned,
// slots at or below the scan position already had their naive-order
// look this cycle and are deferred to the next one.
func (p *Proc) unblockEntry(ent *ci.Entry) {
	if m := ent.Unblock(); m != 0 && ent == p.scanEnt {
		p.scanVisited |= m & (1<<uint(p.scanPos+1) - 1)
	}
	if !ent.Listed {
		p.activateEntry(ent)
	}
}

// wakeConsumers wakes every live entry chained to producer ent,
// compacting dead incarnations from the chain as it goes.
func (p *Proc) wakeConsumers(ent *ci.Entry) {
	if len(ent.Consumers) == 0 {
		return
	}
	live := ent.Consumers[:0]
	for _, c := range ent.Consumers {
		if !c.Live() {
			continue
		}
		p.unblockEntry(c.Ent)
		live = append(live, c)
	}
	ent.Consumers = live
}

// nextWheelWake returns the earliest cycle strictly after cur with a
// scheduled completion-wheel wake — the replica scheduler's
// earliest-wake bound for the fast-forward engine. The wheel's bucket
// for a cycle is drained on that cycle (and fast-forward never jumps
// past a set bucket), so every occupied bucket maps to the unique
// matching cycle within the next wheelSpan cycles; the occupancy
// bitmap makes the lookup a few word scans. Stale listings (dead
// incarnations) keep their bucket occupied until its cycle arrives —
// a jump may land on a wake that does nothing, never miss one.
func (p *Proc) nextWheelWake(cur uint64) (uint64, bool) {
	const words = wheelSpan / 64
	start := (cur + 1) & (wheelSpan - 1)
	for i := 0; i <= words; i++ {
		wi := (int(start)>>6 + i) & (words - 1)
		word := p.wheelOcc[wi]
		switch i {
		case 0:
			word &= ^uint64(0) << (start & 63)
		case words: // wrapped back to the first word: only the low bits remain
			word &= 1<<(start&63) - 1
		}
		if word != 0 {
			slot := uint64(wi<<6) + uint64(bits.TrailingZeros64(word))
			return cur + 1 + ((slot - start) & (wheelSpan - 1)), true
		}
	}
	return 0, false
}

// invalidateEntry tears an entry down: its consumer chain is woken (so
// their blocked replicas re-resolve and fail, exactly when the naive
// re-attempt would discover the death), its replica storage released,
// and the way invalidated.
func (p *Proc) invalidateEntry(ent *ci.Entry) {
	p.wakeConsumers(ent)
	p.releaseEntryStorage(ent)
	p.srsmt.Invalidate(ent)
}
