package core

import (
	"os"
	"strings"
	"testing"

	"civect/internal/workload"
)

// The stall fast-forward engine (fastforward.go) is required to be
// observation-equivalent to the stepped pipeline: skipping a range of
// cycles must leave every statistic — including Cycles and the
// per-cycle occupancy average — bit-identical. These tests prove it
// differentially against both retained references ({naive scheduler,
// stepped event scheduler}; Config.NaiveScheduler / NoFastForward),
// across the synthetic SpecInt workloads, both workload tiers and
// random programs, plus cycle-for-cycle alignment at every jump.

// engineConfigs names the three pipeline engines a Config can select.
var engineConfigs = map[string]func(*Config){
	"naive":       func(c *Config) { c.NaiveScheduler = true; c.NoFastForward = true },
	"event":       func(c *Config) { c.NaiveScheduler = false; c.NoFastForward = true },
	"fastforward": func(c *Config) { c.NaiveScheduler = false; c.NoFastForward = false },
}

// enginePairs returns the engine pairs to compare. By default all
// three pairs run (a plain `go test` proves every pair); the CI
// engine-matrix job sets CIVECT_ENGINE_PAIR (e.g. "naive,event") so
// each matrix leg proves one pair under -race in parallel.
func enginePairs(t *testing.T) [][2]string {
	all := [][2]string{{"naive", "event"}, {"event", "fastforward"}, {"fastforward", "naive"}}
	v := os.Getenv("CIVECT_ENGINE_PAIR")
	if v == "" {
		return all
	}
	if v == batchedLeg {
		// The batched-vs-sequential matrix leg belongs to the batch
		// differential suite (batch_test.go); no classic engine pair
		// runs on it.
		return nil
	}
	parts := strings.Split(v, ",")
	if len(parts) != 2 || engineConfigs[parts[0]] == nil || engineConfigs[parts[1]] == nil {
		t.Fatalf("CIVECT_ENGINE_PAIR=%q: want two of naive|event|fastforward, or %q", v, batchedLeg)
	}
	return [][2]string{{parts[0], parts[1]}}
}

// pairSelected reports whether a suite that compares exactly engines a
// and b belongs to the current matrix leg: always when no leg is
// selected (plain `go test` runs everything), otherwise only when the
// leg's pair matches, unordered. Suites call it so the three CI legs
// partition the differential work instead of each repeating all of it.
func pairSelected(t *testing.T, a, b string) bool {
	pairs := enginePairs(t)
	if pairs == nil {
		return false // the leg belongs to the batch differential suite
	}
	if len(pairs) != 1 {
		return true
	}
	p := pairs[0]
	return (p[0] == a && p[1] == b) || (p[0] == b && p[1] == a)
}

// skipUnlessPair skips the test on matrix legs its engine pair does
// not belong to.
func skipUnlessPair(t *testing.T, a, b string) {
	if !pairSelected(t, a, b) {
		t.Skipf("suite compares %s vs %s; leg %s covers a different pair", a, b, os.Getenv("CIVECT_ENGINE_PAIR"))
	}
}

// engineStats simulates b under cfg with the named engine applied.
func engineStats(t *testing.T, b *workload.Benchmark, cfg Config, engine string) *Stats {
	t.Helper()
	engineConfigs[engine](&cfg)
	return runStats(t, b, cfg)
}

// TestEngineMatrixDifferential proves every engine pair
// observation-equivalent over the workloads that stress the
// fast-forward conditions: the base tier across all machine modes, the
// memory-bound benchmarks whose stall shadows the engine actually
// skips, the big tier's capacity-pressure regime, and the
// configuration corners (spec memory, big replica batches, unbounded
// registers) inherited from the scheduler differential suite.
func TestEngineMatrixDifferential(t *testing.T) {
	cases := []struct {
		name   string
		bench  string
		mode   Mode
		instr  uint64
		mutate func(*Config)
	}{
		{"gcc-ci", "gcc", ModeCI, 15_000, nil},
		{"mcf-ci", "mcf", ModeCI, 15_000, nil},
		{"mcf-scal", "mcf", ModeScalar, 15_000, nil},
		{"mcf-ciiw", "mcf", ModeCIIW, 15_000, nil},
		{"parser-vect", "parser", ModeVect, 15_000, nil},
		{"gcc-ci-specmem", "gcc", ModeCI, 15_000, func(c *Config) { c.SpecMemSize = 768 }},
		{"gcc-ci-8rep", "gcc", ModeCI, 15_000, func(c *Config) { c.Replicas = 8 }},
		{"vpr-ci-inf-nodaec", "vpr", ModeCI, 15_000, func(c *Config) {
			c.PhysRegs = 0
			c.WindowSize = WindowFor(0)
			c.DisableDAEC = true
		}},
		{"gcc.big-ci", "gcc.big", ModeCI, 12_000, nil},
		{"mcf.big-ci", "mcf.big", ModeCI, 12_000, nil},
		{"mcf.big-wb", "mcf.big", ModeWideBus, 12_000, nil},
	}
	pairs := enginePairs(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.Spec(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(tc.mode)
			cfg.MaxInstr = tc.instr
			if tc.mutate != nil {
				tc.mutate(&cfg)
			}
			stats := map[string]*Stats{}
			for _, pair := range pairs {
				for _, eng := range pair {
					if stats[eng] == nil {
						stats[eng] = engineStats(t, wl, cfg, eng)
					}
				}
				a, b := stats[pair[0]], stats[pair[1]]
				if *a != *b {
					t.Errorf("engines %s vs %s diverge:\n%s: %+v\n%s: %+v",
						pair[0], pair[1], pair[0], *a, pair[1], *b)
				}
			}
		})
	}
}

// TestFastForwardDifferentialRandom compares the fast-forwarded engine
// against the stepped reference over random, guaranteed-halting
// programs run to completion.
func TestFastForwardDifferentialRandom(t *testing.T) {
	skipUnlessPair(t, "event", "fastforward")
	for seed := int64(0); seed < 20; seed++ {
		wl := workload.Random(seed)
		for _, mode := range []Mode{ModeCI, ModeVect, ModeScalar} {
			cfg := DefaultConfig(mode)
			stepped := engineStats(t, wl, cfg, "event")
			ff := engineStats(t, wl, cfg, "fastforward")
			if *stepped != *ff {
				t.Fatalf("seed %d mode %v: fast-forward diverges:\nstepped: %+v\nff:      %+v",
					seed, mode, *stepped, *ff)
			}
		}
	}
}

// TestFastForwardCommitPortPressure pins the transient-contention
// regression: a commit-stage store write consumes the shared L1D port
// before the same cycle's issue scan, so a ready load can fail purely
// on port pressure that resets next cycle — a no-issue observation
// from such a cycle predicts nothing and must not license a skip
// (issueStage only trusts scans with untouched ports). Long div
// latency keeps the next completion far away, so a wrongly licensed
// skip jumps far enough to diverge. Seed 88 reproduced the original
// bug; the sweep keeps neighbouring store/load interleavings covered.
func TestFastForwardCommitPortPressure(t *testing.T) {
	skipUnlessPair(t, "event", "fastforward")
	for seed := int64(80); seed < 100; seed++ {
		wl := workload.Random(seed)
		for _, mode := range []Mode{ModeScalar, ModeCI} {
			cfg := DefaultConfig(mode)
			cfg.LatIntDiv = 40
			stepped := engineStats(t, wl, cfg, "event")
			ff := engineStats(t, wl, cfg, "fastforward")
			if *stepped != *ff {
				t.Fatalf("seed %d mode %v: fast-forward diverges under commit port pressure:\nstepped: %+v\nff:      %+v",
					seed, mode, *stepped, *ff)
			}
		}
	}
}

// TestFastForwardCycleAlignment steps a fast-forwarded pipeline
// against a stepped reference in jump-synchronized lockstep: after
// every fast-forward step the reference is stepped to the same cycle
// and the statistics must match exactly — so a skip that jumps over a
// cycle in which the stepped pipeline would have acted is caught at
// the first divergence point, not at run end. mcf's stall shadows make
// it jump constantly; the test also demands that jumps actually
// happened and that at least one crossed a wheelSpan boundary in one
// skip (the wraparound case nextWheelWake must get right).
func TestFastForwardCycleAlignment(t *testing.T) {
	skipUnlessPair(t, "event", "fastforward")
	wl, err := workload.Spec("mcf")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(engine string) *Proc {
		cfg := DefaultConfig(ModeCI)
		cfg.MaxInstr = 25_000
		engineConfigs[engine](&cfg)
		p, err := New(cfg, wl.Program, wl.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ff, ref := mk("fastforward"), mk("event")
	boundaryJumps := 0
	for steps := 0; !ff.halted && ff.Stats.Committed < 25_000; steps++ {
		if steps > 2_000_000 {
			t.Fatal("no forward progress")
		}
		before := ff.cycle
		ff.step()
		if ff.cycle > before+1 && ff.cycle>>9 != (before+1)>>9 {
			boundaryJumps++
		}
		for ref.cycle < ff.cycle && !ref.halted {
			ref.step()
		}
		if ref.cycle != ff.cycle {
			t.Fatalf("reference cannot reach fast-forwarded cycle %d (at %d)", ff.cycle, ref.cycle)
		}
		if ref.Stats != ff.Stats {
			t.Fatalf("cycle %d: stats diverge\nstepped: %+v\nff:      %+v", ff.cycle, ref.Stats, ff.Stats)
		}
	}
	for ref.cycle < ff.cycle && !ref.halted {
		ref.step()
	}
	if ref.Stats != ff.Stats || ref.halted != ff.halted {
		t.Fatalf("runs ended differently:\nstepped: halted=%v %+v\nff:      halted=%v %+v",
			ref.halted, ref.Stats, ff.halted, ff.Stats)
	}
	jumps, skipped := ff.FastForward()
	if jumps == 0 || skipped == 0 {
		t.Fatalf("fast-forward never engaged on a memory-bound run (jumps=%d skipped=%d)", jumps, skipped)
	}
	if boundaryJumps == 0 {
		t.Errorf("no jump crossed a wheel-span boundary in one skip (jumps=%d)", jumps)
	}
	t.Logf("jumps=%d skipped=%d cycles (%.1f%% of %d), %d boundary-crossing",
		jumps, skipped, 100*float64(skipped)/float64(ff.cycle), ff.cycle, boundaryJumps)
}

// TestFastForwardLongLatency pushes every functional-unit latency past
// the completion wheel's 512-cycle horizon, so replica completions can
// never take a wheel slot (entries keep polling) while scalar
// completions drive fast-forward jumps far beyond wheelSpan — the
// long-latency wraparound regime. Every engine pair of the current
// matrix leg must agree.
func TestFastForwardLongLatency(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	pairs := enginePairs(t)
	for _, lat := range []int{520, 700} {
		cfg := DefaultConfig(ModeCI)
		cfg.MaxInstr = 2_000
		cfg.LatIntALU = lat
		cfg.LatIntMul = lat + 13
		cfg.LatIntDiv = 2 * lat
		stats := map[string]*Stats{}
		for _, pair := range pairs {
			for _, eng := range pair {
				if stats[eng] == nil {
					stats[eng] = engineStats(t, wl, cfg, eng)
				}
			}
			a, b := stats[pair[0]], stats[pair[1]]
			if *a != *b {
				t.Fatalf("lat %d: engines %s vs %s diverge:\n%s: %+v\n%s: %+v",
					lat, pair[0], pair[1], pair[0], *a, pair[1], *b)
			}
		}
	}
}

// TestNextWheelWake pins the wheel-occupancy scan, including the
// wraparound cases a boundary-crossing skip depends on: a wake behind
// the current slot index must resolve to the matching future cycle.
func TestNextWheelWake(t *testing.T) {
	wl := workload.Random(1)
	p, err := New(DefaultConfig(ModeCI), wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	set := func(cycles ...uint64) {
		p.wheelOcc = [wheelSpan / 64]uint64{}
		for _, c := range cycles {
			b := c & (wheelSpan - 1)
			p.wheelOcc[b>>6] |= 1 << (b & 63)
		}
	}
	cases := []struct {
		name  string
		cur   uint64
		wakes []uint64
		want  uint64
		ok    bool
	}{
		{"empty", 1000, nil, 0, false},
		{"next-cycle", 1000, []uint64{1001}, 1001, true},
		{"mid-span", 1000, []uint64{1100, 1200}, 1100, true},
		{"word-boundary", 63, []uint64{64}, 64, true},
		{"wrap-behind-start", 1000, []uint64{1030}, 1030, true}, // 1030&511=6 < 1001&511=489
		{"wrap-exact-boundary", 511, []uint64{512}, 512, true},
		{"wrap-last-slot", 511, []uint64{1023}, 1023, true},
		{"full-horizon", 1000, []uint64{1000 + wheelSpan}, 1000 + wheelSpan, true},
		{"start-of-word-wrap", 64, []uint64{64 + wheelSpan}, 64 + wheelSpan, true},
	}
	for _, tc := range cases {
		set(tc.wakes...)
		got, ok := p.nextWheelWake(tc.cur)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("%s: nextWheelWake(%d) = (%d, %v), want (%d, %v)",
				tc.name, tc.cur, got, ok, tc.want, tc.ok)
		}
	}
	p.wheelOcc = [wheelSpan / 64]uint64{}
}

// TestCommitDirtyFlagDifferential compares the dirty-flag commit path
// (recompute only reuse-rooted instructions) against the
// always-recompute reference, which additionally asserts every clean
// instruction's issue-time result architecturally — so a taint leak
// shows up as a reference-mode panic or a stats divergence.
func TestCommitDirtyFlagDifferential(t *testing.T) {
	// Engine-independent (it compares commit paths, not engines); one
	// matrix leg carries it so the three legs do not triplicate it.
	skipUnlessPair(t, "event", "fastforward")
	cases := []struct {
		bench string
		mode  Mode
	}{
		{"gcc", ModeCI},
		{"mcf", ModeCIIW},
		{"parser", ModeVect},
		{"gcc.big", ModeCI},
	}
	for _, tc := range cases {
		wl, err := workload.Spec(tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(tc.mode)
		cfg.MaxInstr = 12_000
		fast := runStats(t, wl, cfg)
		cfg.CommitRecomputeAll = true
		ref := runStats(t, wl, cfg)
		if *fast != *ref {
			t.Errorf("%s/%v: dirty-flag commit diverges from always-recompute:\nfast: %+v\nref:  %+v",
				tc.bench, tc.mode, *fast, *ref)
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		wl := workload.Random(seed)
		cfg := DefaultConfig(ModeCI)
		fast := runStats(t, wl, cfg)
		cfg.CommitRecomputeAll = true
		ref := runStats(t, wl, cfg)
		if *fast != *ref {
			t.Errorf("random seed %d: dirty-flag commit diverges:\nfast: %+v\nref:  %+v", seed, *fast, *ref)
		}
	}
}

// checkStoreIndex re-derives the per-word last-store index and the
// unknown-address set from the LSQ and ROB, and fails on any
// disagreement — a leaked or missed store would silently corrupt
// disambiguation.
func checkStoreIndex(t *testing.T, p *Proc) {
	t.Helper()
	var wantUnknown []uint64
	wantWords := map[uint64][]int32{}
	for _, li := range p.lsq {
		e := &p.rob[li]
		if !e.valid || !p.metaAt(int(e.pc)).isStore() {
			continue
		}
		if e.state == stWaiting {
			wantUnknown = append(wantUnknown, e.seq)
		} else {
			w := e.addr &^ 7
			wantWords[w] = append(wantWords[w], int32(li))
		}
	}
	if len(p.storeUnknown) != len(wantUnknown) {
		t.Fatalf("cycle %d: storeUnknown has %d entries, LSQ accounts for %d",
			p.cycle, len(p.storeUnknown), len(wantUnknown))
	}
	for i, s := range wantUnknown {
		if p.storeUnknown[i] != s {
			t.Fatalf("cycle %d: storeUnknown[%d] = %d, want %d", p.cycle, i, p.storeUnknown[i], s)
		}
	}
	live := 0
	for w, l := range p.wordStores {
		if len(l) == 0 {
			t.Fatalf("cycle %d: empty word list left in index for word %#x", p.cycle, w)
		}
		live += len(l)
		want := wantWords[w]
		if len(l) != len(want) {
			t.Fatalf("cycle %d: word %#x has %d indexed stores, LSQ accounts for %d",
				p.cycle, w, len(l), len(want))
		}
		for i := range l {
			if l[i] != want[i] {
				t.Fatalf("cycle %d: word %#x index[%d] = rob %d, want %d",
					p.cycle, w, i, l[i], want[i])
			}
		}
	}
	total := 0
	for _, l := range wantWords {
		total += len(l)
	}
	if live != total {
		t.Fatalf("cycle %d: index holds %d stores, LSQ accounts for %d", p.cycle, live, total)
	}
}

// TestStoreIndexInvariants steps pipelines over store-heavy workloads
// and re-derives the disambiguation index at intervals, across modes
// and both schedulers (the index is engine-independent state).
func TestStoreIndexInvariants(t *testing.T) {
	for _, tc := range []struct {
		bench  string
		mode   Mode
		engine string
	}{
		{"gcc", ModeCI, "fastforward"},
		{"mcf", ModeScalar, "fastforward"},
		{"gcc", ModeCI, "naive"},
		{"twolf", ModeCIIW, "event"},
	} {
		wl, err := workload.Spec(tc.bench)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(tc.mode)
		cfg.MaxInstr = 10_000
		engineConfigs[tc.engine](&cfg)
		p, err := New(cfg, wl.Program, wl.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		for !p.halted && p.Stats.Committed < cfg.MaxInstr && p.cycle < 2_000_000 {
			p.step()
			if p.cycle%97 == 0 {
				checkStoreIndex(t, p)
			}
		}
		checkStoreIndex(t, p)
	}
}
