package core

import "civect/internal/isa"

// Pre-decode: the static program never changes, but the pipeline used
// to re-derive every instruction's properties (destination, sources,
// class flags) with per-opcode switches at fetch, rename, issue,
// complete and commit — every cycle. New builds this table once; the
// hot stages index it by PC.

type instrFlags uint8

const (
	fLoad instrFlags = 1 << iota
	fStore
	fCondBr
	fJump
	fControl
	fMem
	fHasDest
)

// instrMeta is one pre-decoded static instruction.
type instrMeta struct {
	srcs  [2]isa.Reg
	nsrc  uint8
	dest  isa.Reg
	flags instrFlags
}

func (m *instrMeta) isLoad() bool    { return m.flags&fLoad != 0 }
func (m *instrMeta) isStore() bool   { return m.flags&fStore != 0 }
func (m *instrMeta) isCondBr() bool  { return m.flags&fCondBr != 0 }
func (m *instrMeta) isJump() bool    { return m.flags&fJump != 0 }
func (m *instrMeta) isControl() bool { return m.flags&fControl != 0 }
func (m *instrMeta) isMem() bool     { return m.flags&fMem != 0 }
func (m *instrMeta) hasDest() bool   { return m.flags&fHasDest != 0 }

// srcRegs returns the instruction's source registers; the result
// aliases the table and must not be mutated.
func (m *instrMeta) srcRegs() []isa.Reg { return m.srcs[:m.nsrc] }

// haltMeta mirrors Program.At's out-of-image behaviour: wrong-path
// fetch past the end reads as halt.
var haltMeta = instrMeta{flags: fControl}

// metaAt returns the pre-decoded metadata for pc.
func (p *Proc) metaAt(pc int) *instrMeta {
	if pc < 0 || pc >= len(p.imeta) {
		return &haltMeta
	}
	return &p.imeta[pc]
}

// predecode builds the per-PC metadata table.
func predecode(prog *isa.Program) []instrMeta {
	meta := make([]instrMeta, prog.Len())
	var scratch [2]isa.Reg
	for pc := range meta {
		in := prog.At(pc)
		m := &meta[pc]
		if in.IsLoad() {
			m.flags |= fLoad
		}
		if in.IsStore() {
			m.flags |= fStore
		}
		if in.IsCondBranch() {
			m.flags |= fCondBr
		}
		if in.IsJump() {
			m.flags |= fJump
		}
		if in.IsControl() {
			m.flags |= fControl
		}
		if in.IsMem() {
			m.flags |= fMem
		}
		if dest, ok := in.WritesReg(); ok {
			m.flags |= fHasDest
			m.dest = dest
		}
		srcs := in.SrcRegs(scratch[:0])
		m.nsrc = uint8(copy(m.srcs[:], srcs))
	}
	return meta
}
