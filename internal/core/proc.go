package core

import (
	"fmt"

	"civect/internal/bpred"
	"civect/internal/cache"
	"civect/internal/ci"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/regfile"
	"civect/internal/stride"
)

// instState tracks a ROB entry through the pipeline.
type instState uint8

const (
	stWaiting   instState = iota // dispatched, waiting for operands/resources
	stExecuting                  // issued, in a functional unit
	stDone                       // result produced
	stValidPend                  // SRSMT-validated, waiting for its replica value
)

// maxStridedPCs bounds Config.StridedPCsPerEntry so the stridedPC list
// fits inline in every rename entry (Figure 4 sweeps 1/2/4); renaming
// then never allocates for slice propagation.
const maxStridedPCs = 4

// renEntry is one rename-map entry, including the paper's extensions:
// the stridedPC list (§2.3.2) and the V/S bit plus producer sequence of
// Figure 7.
type renEntry struct {
	phys int
	// writerSeq is the dynamic sequence number of the last writer
	// (0 when the value is architectural).
	writerSeq uint64
	// writerPC is the static instruction that last wrote the register
	// (-1 initially); recurrence validation checks that an accumulator
	// is still fed by its own previous instance.
	writerPC int
	// vec marks the last writer as a vectorized (validated) instruction
	// (the V/S bit); vecPC is its PC (the Seq field); vecGen the SRSMT
	// generation backing it.
	vec    bool
	vecPC  uint64
	vecGen uint64
	// stridedPCs[:nStrided] lists the confident strided-load PCs in the
	// value's backward slice (capped at Config.StridedPCsPerEntry). The
	// list is stored inline so rename-map snapshots are plain copies.
	stridedPCs [maxStridedPCs]uint64
	nStrided   uint8
}

// strided returns the live portion of the stridedPC list.
func (r *renEntry) strided() []uint64 { return r.stridedPCs[:r.nStrided] }

// robEntry is one in-flight instruction.
type robEntry struct {
	valid bool
	seq   uint64
	pc    int
	in    isa.Instr
	state instState

	hasDest  bool
	logDest  isa.Reg
	physDest int
	oldRen   renEntry

	srcPhys [2]int
	nsrc    int

	// Branch bookkeeping.
	predTaken    bool
	histSnapshot uint64
	actTaken     bool
	actTarget    int
	mispredicted bool

	// Memory bookkeeping (set at execute).
	addr     uint64
	value    uint64
	executed bool // value/addr computed (for stores: ready for commit)
	fwdStore bool // load forwarded from an older store (no cache access)

	doneAt uint64

	// CI bookkeeping.
	ciSelected bool   // control independent per the CRP mask
	ciEpisode  uint64 // episode during which it was selected
	afterCRP   bool   // fetched after the re-convergent point was reached
	validated  bool   // reused a precomputed value
	valEntry   *ci.Entry
	valGen     uint64
	valIdx     int
	valSince   uint64 // cycle validation started (watchdog)
	reuseIW    bool   // ci-iw squash reuse

	// srcWriterSeq records the dynamic producers of the source operands
	// at rename time (squash-reuse matching).
	srcWriterSeq [2]uint64

	// Speculative-memory copy micro-op state (§2.4.6).
	copySched   bool
	copyReadyAt uint64
}

// fetchedInstr sits in the fetch buffer between fetch and rename.
type fetchedInstr struct {
	pc           int
	in           isa.Instr
	predTaken    bool
	histSnapshot uint64
	// readyAt is the cycle the instruction emerges from the front-end
	// decode stages and may rename.
	readyAt uint64
}

// iwReuse is a squash-reuse record (ModeCIIW): the result of a
// control-independent wrong-path instruction kept across the recovery.
type iwReuse struct {
	pc        int
	seq       uint64 // dynamic seq of the captured wrong-path instance
	writerSeq [2]uint64
	nsrc      int
	value     uint64
}

// waitRef identifies a ROB entry on one of the scheduler lists; seq
// detects slot reuse after squashes.
type waitRef struct {
	idx int
	seq uint64
}

// entryRef identifies one incarnation of an SRSMT way on a worklist.
// Ways are recycled in place (Invalidate + Init), so a bare pointer is
// ambiguous: a stale listing would alias the way's next incarnation and
// give it two turns per cycle at replica arbitration. The generation
// pins the listing to the incarnation that was enqueued.
type entryRef struct {
	ent *ci.Entry
	gen uint64
	// stamp snapshots ent.Stamp at insertion; the worklist is kept
	// sorted by it (see activateEntry).
	stamp uint64
}

// live reports whether the listing still refers to the incarnation it
// was created for.
func (r entryRef) live() bool { return r.ent.Valid && r.ent.Gen == r.gen }

// Proc is the processor. Create one with New, run with Run.
type Proc struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory

	// Architectural committed state.
	arf    [isa.NumLogical]uint64
	halted bool

	cycle uint64
	seq   uint64

	ren [isa.NumLogical]renEntry
	rf  *regfile.File
	sm  *regfile.SpecMem

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	// lsq holds ROB indices of in-flight memory instructions in program
	// order.
	lsq []int

	fetchPC         int
	fetchHalted     bool
	fetchStallUntil uint64
	// fetchQ is consumed from fetchQHead instead of re-slicing from the
	// front, so renaming does not memmove the buffer per instruction;
	// fetchLen/fetchFront/fetchPop are the accessors.
	fetchQ     []fetchedInstr
	fetchQHead int

	hier *cache.Hierarchy
	bp   *bpred.Gshare
	mbs  *bpred.MBS
	sp   *stride.Predictor

	nrbq  *ci.NRBQ
	crp   ci.CRP
	srsmt *ci.SRSMT
	// activeEntries lists SRSMT entry incarnations with replica work
	// pending, sorted by creation stamp (arbitration order).
	activeEntries []entryRef
	// entryStamp numbers entry incarnations in creation order.
	entryStamp uint64
	// seedWatch lists entries whose recurrence seed register has not
	// produced yet; commit- and squash-time register frees consult it.
	seedWatch []entryRef

	// Episode statistics (Figure 5).
	episodeOpen     bool
	episodeSelected bool
	episodeReused   bool

	// ci-iw squash-reuse table (per PC, in wrong-path capture order, so
	// several loop iterations can be reused), plus the remap from
	// captured wrong-path producer seqs to their reused correct-path
	// reincarnations (so dependence chains of reused instructions
	// cascade). The table is dense — indexed by PC, with iwHead the
	// per-PC consumption cursor and iwPCs/iwLive tracking occupancy so
	// each capture clears only what it wrote. The remap is two parallel
	// append-only slices reset at each capture; both replace the maps a
	// profile showed on the rename hot path.
	iwTable     [][]iwReuse
	iwHead      []int
	iwPCs       []int
	iwLive      int
	iwRemapFrom []uint64
	iwRemapTo   []uint64
	// iwChain is captureIW's physDest→value scratch, epoch-stamped so a
	// capture starts empty without clearing.
	iwChainVal   []uint64
	iwChainMark  []uint64
	iwChainEpoch uint64

	// Scheduler lists: dispatched-not-issued, executing, and
	// validation-pending ROB entries.
	waitQ     []waitRef
	execQ     []waitRef
	validPend []waitRef

	// Per-cycle budgets.
	aluFree, mulFree int
	issueBudget      int

	// Scratch buffers reused across cycles.
	srcScratch  []isa.Reg
	pcScratch   []uint64
	lsqFiltered []int

	// freedMark is the freed-register set consulted by failBrokenSeeds,
	// epoch-stamped per physical register: register r is in the set iff
	// freedMark[r] == freedEpoch, so clearing is one increment.
	freedMark  []uint64
	freedEpoch uint64
	freedCount int

	Stats Stats
}

// New builds a processor over prog and data memory m (which it owns and
// mutates at commit). The configuration is validated.
func New(cfg Config, prog *isa.Program, m *mem.Memory) (*Proc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		m = mem.New()
	}
	hcfg := cfg.Hier
	hcfg.DL1Ports = cfg.DL1Ports
	hcfg.WideBus = cfg.Mode.UsesWideBus()

	p := &Proc{
		cfg:  cfg,
		prog: prog,
		mem:  m,
		rf:   regfile.NewFile(cfg.PhysRegs),
		rob:  make([]robEntry, cfg.WindowSize),
		hier: cache.NewHierarchy(hcfg),
		bp:   bpred.NewGshare(cfg.GshareEntries),
		mbs:  bpred.NewMBS(cfg.MBSSets, cfg.MBSAssoc),
		sp:   stride.New(cfg.StrideSets, cfg.StrideAssoc),
	}
	if cfg.Mode == ModeCI || cfg.Mode == ModeCIIW {
		p.nrbq = ci.NewNRBQ(cfg.NRBQEntries)
	}
	if cfg.Mode.Vectorizes() {
		p.srsmt = ci.NewSRSMT(cfg.SRSMTSets, cfg.SRSMTAssoc)
	}
	if cfg.Mode == ModeCIIW {
		p.iwTable = make([][]iwReuse, prog.Len())
		p.iwHead = make([]int, prog.Len())
	}
	// Epoch 0 would make the zero-valued freedMark read as all-freed.
	p.freedEpoch = 1
	if cfg.SpecMemSize > 0 && cfg.Mode.Vectorizes() {
		p.sm = regfile.NewSpecMem(cfg.SpecMemSize, cfg.SpecMemLat)
	}
	// Bind each logical register to a committed physical register.
	for r := 0; r < isa.NumLogical; r++ {
		phys, ok := p.rf.Alloc()
		if !ok {
			return nil, fmt.Errorf("core: register file too small for architectural state")
		}
		p.rf.Write(phys, 0)
		p.ren[r] = renEntry{phys: phys, writerPC: -1}
	}
	return p, nil
}

// Run simulates until the program halts, the committed-instruction
// budget is exhausted, or the cycle safety bound trips. It returns the
// final statistics.
func (p *Proc) Run() (*Stats, error) {
	maxCycles := p.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	lastCommit := uint64(0)
	lastCommitCycle := uint64(0)
	for !p.halted {
		if p.cfg.MaxInstr > 0 && p.Stats.Committed >= p.cfg.MaxInstr {
			break
		}
		if p.cycle >= maxCycles {
			return nil, fmt.Errorf("core: cycle bound %d exceeded (committed %d)", maxCycles, p.Stats.Committed)
		}
		p.step()
		// Forward-progress watchdog: a stuck pipeline is a simulator
		// bug; fail loudly instead of spinning.
		if p.Stats.Committed != lastCommit {
			lastCommit = p.Stats.Committed
			lastCommitCycle = p.cycle
		} else if p.cycle-lastCommitCycle > 500_000 {
			return nil, fmt.Errorf("core: no commit progress for 500k cycles at cycle %d (mode %v, head state %v)",
				p.cycle, p.cfg.Mode, p.headState())
		}
	}
	p.closeEpisode()
	p.finalizeStats()
	return &p.Stats, nil
}

func (p *Proc) headState() string {
	if p.robCount == 0 {
		return "empty ROB"
	}
	h := &p.rob[p.robHead]
	return fmt.Sprintf("pc=%d op=%v state=%d validated=%v", h.pc, h.in.Op, h.state, h.validated)
}

// step advances one cycle, processing stages in reverse pipeline order
// so that each stage sees the previous cycle's outputs.
func (p *Proc) step() {
	p.cycle++
	p.hier.BeginCycle(p.cycle)
	if p.sm != nil {
		p.sm.BeginCycle()
	}
	p.aluFree = p.cfg.IntALUs
	p.mulFree = p.cfg.IntMulDivs
	p.rf.Sample()

	p.commitStage()
	if p.halted {
		return
	}
	p.completeStage()
	p.advanceValidated()
	p.issueStage()
	p.replicaTick()
	p.renameStage()
	p.fetchStage()
}

func (p *Proc) finalizeStats() {
	p.Stats.Cycles = p.cycle
	p.Stats.RegAvgInUse = p.rf.AvgInUse()
	p.Stats.RegPeak = p.rf.Peak()
	p.Stats.L1I = p.hier.L1I.Stats
	p.Stats.L1D = p.hier.L1D.Stats
	p.Stats.L2 = p.hier.L2.Stats
	p.Stats.L3 = p.hier.L3.Stats
}

// ARF returns the committed architectural register values.
func (p *Proc) ARF() [isa.NumLogical]uint64 { return p.arf }

// Mem returns the architectural data memory.
func (p *Proc) Mem() *mem.Memory { return p.mem }

// robIndexAfter returns the ring index following i.
func (p *Proc) robIndexAfter(i int) int {
	i++
	if i == len(p.rob) {
		return 0
	}
	return i
}

// robIndexBefore returns the ring index preceding i.
func (p *Proc) robIndexBefore(i int) int {
	if i == 0 {
		return len(p.rob) - 1
	}
	return i - 1
}

// robAlloc appends a ROB entry at the tail, returning its index.
func (p *Proc) robAlloc() int {
	i := p.robTail
	p.robTail = p.robIndexAfter(p.robTail)
	p.robCount++
	p.rob[i] = robEntry{valid: true}
	return i
}

// lsqRemove deletes a ROB index from the LSQ.
func (p *Proc) lsqRemove(robIdx int) {
	for i, v := range p.lsq {
		if v == robIdx {
			p.lsq = append(p.lsq[:i], p.lsq[i+1:]...)
			return
		}
	}
}

// fetchLen returns the number of buffered fetched instructions.
func (p *Proc) fetchLen() int { return len(p.fetchQ) - p.fetchQHead }

// fetchFront returns the oldest buffered instruction.
func (p *Proc) fetchFront() *fetchedInstr { return &p.fetchQ[p.fetchQHead] }

// fetchPop consumes the oldest buffered instruction, compacting the
// buffer when the dead prefix gets large so growth stays bounded.
func (p *Proc) fetchPop() {
	p.fetchQHead++
	if p.fetchQHead == len(p.fetchQ) {
		p.fetchQ = p.fetchQ[:0]
		p.fetchQHead = 0
	} else if p.fetchQHead >= 128 {
		p.fetchQ = p.fetchQ[:copy(p.fetchQ, p.fetchQ[p.fetchQHead:])]
		p.fetchQHead = 0
	}
}

// fetchClear empties the fetch buffer (squash).
func (p *Proc) fetchClear() {
	p.fetchQ = p.fetchQ[:0]
	p.fetchQHead = 0
}

// clearFreed empties the freed-register set (one epoch bump).
func (p *Proc) clearFreed() {
	p.freedEpoch++
	p.freedCount = 0
}

// noteFreed adds a physical register to the freed set.
func (p *Proc) noteFreed(reg int) {
	if reg >= len(p.freedMark) {
		grown := make([]uint64, max(2*len(p.freedMark), reg+64))
		copy(grown, p.freedMark)
		p.freedMark = grown
	}
	p.freedMark[reg] = p.freedEpoch
	p.freedCount++
}

// wasFreed reports membership in the freed set.
func (p *Proc) wasFreed(reg int) bool {
	return reg < len(p.freedMark) && p.freedMark[reg] == p.freedEpoch
}

func (p *Proc) closeEpisode() {
	if !p.episodeOpen {
		return
	}
	if p.episodeSelected {
		p.Stats.EpisodesSelected++
	}
	if p.episodeReused {
		p.Stats.EpisodesReused++
	}
	p.episodeOpen = false
	p.episodeSelected = false
	p.episodeReused = false
}

func (p *Proc) openEpisode() {
	p.closeEpisode()
	p.episodeOpen = true
}
