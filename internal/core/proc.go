package core

import (
	"context"
	"fmt"

	"civect/internal/bpred"
	"civect/internal/cache"
	"civect/internal/ci"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/regfile"
	"civect/internal/stride"
)

// instState tracks a ROB entry through the pipeline.
type instState uint8

const (
	stWaiting   instState = iota // dispatched, waiting for operands/resources
	stExecuting                  // issued, in a functional unit
	stDone                       // result produced
	stValidPend                  // SRSMT-validated, waiting for its replica value
)

// maxStridedPCs bounds Config.StridedPCsPerEntry so the stridedPC list
// fits inline in every rename entry (Figure 4 sweeps 1/2/4); renaming
// then never allocates for slice propagation.
const maxStridedPCs = 4

// renEntry is one rename-map entry, including the paper's extensions:
// the stridedPC list (§2.3.2) and the V/S bit plus producer sequence of
// Figure 7. The struct is copied constantly — source snapshots at every
// rename, oldRen checkpoints in every ROB entry, tail-first restores at
// every squash — so the hot fields are packed into 32-bit slots and the
// cold stridedPC payload lives out of line in the processor's stride
// pool; at 40 bytes the copies compile to plain moves instead of the
// duffcopy calls the 80+-byte inline layout cost (~4% of ci-mode CPU).
type renEntry struct {
	// writerSeq is the dynamic sequence number of the last writer
	// (0 when the value is architectural).
	writerSeq uint64
	// vecGen is the SRSMT generation backing vec; vecPC the writer's PC
	// (the Seq field of Figure 7).
	vecGen uint64
	vecPC  uint64
	// phys is the physical register (int32: register files are far
	// below 2^31).
	phys int32
	// writerPC is the static instruction that last wrote the register
	// (-1 initially); recurrence validation checks that an accumulator
	// is still fed by its own previous instance.
	writerPC int32
	// strideRef indexes the stride pool's list slot; meaningful only
	// when nStrided > 0. Ownership is linear: the slot moves with the
	// entry (rename map -> oldRen checkpoint -> back on squash) and is
	// released exactly once, at commit or squash-restore, by whoever
	// overwrites or discards the owning copy. Source snapshots borrow.
	strideRef int32
	// vec marks the last writer as a vectorized (validated) instruction
	// (the V/S bit).
	vec bool
	// dirty marks the register's value as (transitively) derived from a
	// reused result that has not been commit-verified yet: the writer
	// was validated/squash-reused itself, or read a dirty source.
	// Commit recomputes dirty-rooted instructions architecturally and
	// skips the recomputation for clean ones, whose issue-time result
	// is exact by construction. Conservative — the flag never clears on
	// verification, only on overwrite by a clean writer.
	dirty bool
	// nStrided is the live length of the strideRef list.
	nStrided uint8
}

// stridePool stores the rename entries' stridedPC lists out of line, so
// rename-map snapshot copies move 40 bytes instead of 100+. Slots are
// recycled through a free list; see renEntry.strideRef for ownership.
type stridePool struct {
	lists [][maxStridedPCs]uint64
	free  []int32
}

// alloc takes a (dirty) list slot.
func (sp *stridePool) alloc() int32 {
	if n := len(sp.free); n > 0 {
		i := sp.free[n-1]
		sp.free = sp.free[:n-1]
		return i
	}
	sp.lists = append(sp.lists, [maxStridedPCs]uint64{})
	return int32(len(sp.lists) - 1)
}

// release returns a list slot to the free list.
func (sp *stridePool) release(i int32) { sp.free = append(sp.free, i) }

// inUse returns the number of live slots (accounting tests).
func (sp *stridePool) inUse() int { return len(sp.lists) - len(sp.free) }

// strided returns the live portion of a rename entry's stridedPC list.
func (p *Proc) strided(r *renEntry) []uint64 {
	if r.nStrided == 0 {
		return nil
	}
	return p.stridePC.lists[r.strideRef][:r.nStrided]
}

// releaseStrided returns r's list slot to the pool. Call exactly once,
// on the owning copy, when it dies (commit frees the oldRen checkpoint,
// squash-restore frees the overwritten map entry).
func (p *Proc) releaseStrided(r *renEntry) {
	if r.nStrided != 0 {
		p.stridePC.release(r.strideRef)
	}
}

// robEntry is one in-flight instruction. It is zeroed at every rename
// (robAlloc) and its scheduler-visible head is read constantly, so the
// narrow fields are packed (int32 indices: windows, register files and
// programs are all far below 2^31) and the flags share padding slots.
type robEntry struct {
	valid bool
	state instState

	hasDest      bool
	predTaken    bool
	actTaken     bool
	mispredicted bool
	executed     bool // value/addr computed (for stores: ready for commit)
	fwdStore     bool // load forwarded from an older store (no cache access)

	ciSelected bool // control independent per the CRP mask
	afterCRP   bool // fetched after the re-convergent point was reached
	validated  bool // reused a precomputed value
	reuseIW    bool // ci-iw squash reuse
	tainted    bool // reused, or renamed with a dirty source (see renEntry.dirty)

	// Speculative-memory copy micro-op state (§2.4.6).
	copySched bool

	logDest isa.Reg
	nsrc    uint8

	pc        int32
	physDest  int32
	actTarget int32
	valIdx    int32
	srcPhys   [2]int32

	seq uint64
	in  isa.Instr

	oldRen renEntry

	histSnapshot uint64

	// Memory bookkeeping (set at execute).
	addr  uint64
	value uint64

	doneAt uint64

	// CI bookkeeping.
	ciEpisode uint64 // episode during which it was selected
	valEntry  *ci.Entry
	valGen    uint64
	valSince  uint64 // cycle validation started (watchdog)

	// srcWriterSeq records the dynamic producers of the source operands
	// at rename time (squash-reuse matching).
	srcWriterSeq [2]uint64

	copyReadyAt uint64
}

// fetchedInstr sits in the fetch buffer between fetch and rename. The
// instruction itself is not carried along: rename re-reads it from the
// (cache-hot) static program, which keeps the per-fetch buffer copies
// at half the size.
type fetchedInstr struct {
	pc           int
	predTaken    bool
	histSnapshot uint64
	// readyAt is the cycle the instruction emerges from the front-end
	// decode stages and may rename.
	readyAt uint64
}

// iwReuse is a squash-reuse record (ModeCIIW): the result of a
// control-independent wrong-path instruction kept across the recovery.
type iwReuse struct {
	pc        int
	seq       uint64 // dynamic seq of the captured wrong-path instance
	writerSeq [2]uint64
	nsrc      int
	value     uint64
}

// waitRef identifies a ROB entry on one of the scheduler lists; seq
// detects slot reuse after squashes. stamp is the dispatch order the
// event-driven scheduler sorts the ready list by — the naive waiting
// list only appends at the tail, so stamp order is its scan order.
type waitRef struct {
	idx   int
	seq   uint64
	stamp uint64
}

// entryRef identifies one incarnation of an SRSMT way on a worklist.
// Ways are recycled in place (Invalidate + Init), so a bare pointer is
// ambiguous: a stale listing would alias the way's next incarnation and
// give it two turns per cycle at replica arbitration. The generation
// pins the listing to the incarnation that was enqueued.
type entryRef struct {
	ent *ci.Entry
	// hdr is ent's turn header, captured at insertion (fixed for the
	// way's lifetime): the arbitration walk reads its idle/skip fields
	// straight out of the packed header side-array, one load per field
	// instead of re-deriving the header pointer through the entry.
	hdr *ci.TurnHeader
	gen uint64
	// stamp snapshots ent.Stamp at insertion; the worklist is kept
	// sorted by it (see activateEntry).
	stamp uint64
}

// refTo builds the worklist listing for ent's current incarnation.
func refTo(ent *ci.Entry) entryRef {
	h := ent.TurnHeader
	return entryRef{ent: ent, hdr: h, gen: h.Gen, stamp: h.Stamp}
}

// live reports whether the listing still refers to the incarnation it
// was created for.
func (r entryRef) live() bool { return r.hdr.Valid && r.hdr.Gen == r.gen }

// Proc is the processor. Create one with New, run with Run.
type Proc struct {
	cfg  Config
	prog *isa.Program
	// imeta pre-decodes the static program (predecode.go); hot stages
	// read instruction classes and operands from it instead of
	// re-deriving them with opcode switches every cycle.
	imeta []instrMeta
	mem   *mem.Memory

	// Architectural committed state.
	arf    [isa.NumLogical]uint64
	halted bool

	cycle uint64
	seq   uint64

	ren [isa.NumLogical]renEntry
	// stridePC backs the rename entries' out-of-line stridedPC lists.
	stridePC stridePool
	rf       *regfile.File
	sm       *regfile.SpecMem

	rob      []robEntry
	robHead  int
	robTail  int
	robCount int

	// lsq holds ROB indices of in-flight memory instructions in program
	// order.
	lsq []int
	// Per-word last-store disambiguation index (lsqindex.go):
	// storeUnknown is the ascending seq list of in-flight stores with
	// uncomputed addresses, wordStores maps an aligned word to the
	// in-flight address-known stores writing it (ROB indices in seq
	// order), and wordListFree pools emptied word lists.
	storeUnknown []uint64
	wordStores   map[uint64][]int32
	wordListFree [][]int32

	fetchPC         int
	fetchHalted     bool
	fetchStallUntil uint64
	// fetchQ is consumed from fetchQHead instead of re-slicing from the
	// front, so renaming does not memmove the buffer per instruction;
	// fetchLen/fetchFront/fetchPop are the accessors.
	fetchQ     []fetchedInstr
	fetchQHead int

	hier *cache.Hierarchy
	bp   *bpred.Gshare
	mbs  *bpred.MBS
	sp   *stride.Predictor

	nrbq  *ci.NRBQ
	crp   ci.CRP
	srsmt *ci.SRSMT
	// activeEntries lists SRSMT entry incarnations with replica work
	// pending, sorted by creation stamp (arbitration order).
	activeEntries []entryRef
	// entryStamp numbers entry incarnations in creation order.
	entryStamp uint64
	// seedWatch lists entries whose recurrence seed register has not
	// produced yet; commit- and squash-time register frees consult it.
	seedWatch []entryRef

	// Episode statistics (Figure 5).
	episodeOpen     bool
	episodeSelected bool
	episodeReused   bool

	// ci-iw squash-reuse table (per PC, in wrong-path capture order, so
	// several loop iterations can be reused), plus the remap from
	// captured wrong-path producer seqs to their reused correct-path
	// reincarnations (so dependence chains of reused instructions
	// cascade). The table is dense — indexed by PC, with iwHead the
	// per-PC consumption cursor and iwPCs/iwLive tracking occupancy so
	// each capture clears only what it wrote. The remap is two parallel
	// append-only slices reset at each capture; both replace the maps a
	// profile showed on the rename hot path.
	iwTable     [][]iwReuse
	iwHead      []int
	iwPCs       []int
	iwLive      int
	iwRemapFrom []uint64
	iwRemapTo   []uint64
	// iwChain is captureIW's physDest→value scratch, epoch-stamped so a
	// capture starts empty without clearing.
	iwChainVal   []uint64
	iwChainMark  []uint64
	iwChainEpoch uint64

	// Scheduler lists: dispatched-not-issued, executing, and
	// validation-pending ROB entries. waitQ is the naive scheduler's
	// scanned list; the event-driven scheduler (sched.go) replaces it
	// with readyQ (operand-ready, stamp-sorted) plus the per-register
	// park lists in regWaiters.
	waitQ     []waitRef
	execQ     []waitRef
	validPend []waitRef
	// execMinDone lower-bounds every doneAt in execQ so completeStage
	// can skip whole scans while nothing is due.
	execMinDone uint64

	// Event-driven scheduler state (eventSched = !Config.NaiveScheduler).
	eventSched bool
	readyQ     []waitRef
	regWaiters [][]waitRef
	schedStamp uint64

	// Replica-wakeup scan state (replica_sched.go): the worklist tick
	// cursor (so mid-tick wakes insert consistently) and the slot-scan
	// position of the entry currently being arbitrated (so within-turn
	// unblocks respect the naive ascending ring order).
	inTick      bool
	tickIdx     int
	scanEnt     *ci.Entry
	scanVisited uint64
	scanPos     int
	// turnNextDone accumulates the earliest in-flight replica
	// completion seen during the current entry turn; the turn stores it
	// into Entry.NextDone.
	turnNextDone uint64
	// doneWheel is the replica-completion timing wheel: an entry whose
	// only remaining work is in-flight executions delists and schedules
	// a wake in the bucket of its NextDone cycle, so waiting out
	// functional-unit and cache latency costs nothing per cycle. The
	// wheel spans wheelSpan cycles; rarer longer waits keep polling.
	// wheelOcc is its one-bit-per-bucket occupancy map, maintained at
	// every park and drain, so the fast-forward engine finds the next
	// scheduled wake with a few word scans (nextWheelWake).
	doneWheel [wheelSpan][]entryRef
	wheelOcc  [wheelSpan / 64]uint64

	// Stall fast-forward engine state (fastforward.go): enabled when
	// the event scheduler is on and Config.NoFastForward is off, plus
	// the jump/skipped-cycle activity counters (kept out of Stats so
	// fast-forwarded and stepped runs compare with struct equality).
	// lastNoIssue records that the just-finished cycle's issue scan
	// issued nothing, and readyDirty that the ready list changed after
	// that scan — together they prove a non-empty ready list holds only
	// instructions blocked until the next event.
	fastFwd     bool
	lastNoIssue bool
	readyDirty  bool
	ffJumps     uint64
	ffSkipped   uint64

	// Registered observer (observer.go) and its batching cursors: the
	// stats values already reported, and the committed count at the
	// last progress callback.
	obs              Observer
	obsProgressEvery uint64
	obsCommitted     uint64
	obsReused        uint64
	obsLastProgress  uint64

	// Registered per-event tracer (observer.go). Nil in production
	// runs: every emission point is gated on one nil check.
	tracer Tracer

	// aliasEmu re-introduces the PR 1 SRSMT worklist aliasing bug
	// (Config.EmulateAliasedWorklist) for trace-divergence demos.
	aliasEmu bool

	// Per-cycle budgets.
	aluFree, mulFree int
	issueBudget      int

	// Scratch buffers reused across cycles.
	pcScratch   []uint64
	lsqFiltered []int

	// freedMark is the freed-register set consulted by failBrokenSeeds,
	// epoch-stamped per physical register: register r is in the set iff
	// freedMark[r] == freedEpoch, so clearing is one increment.
	freedMark  []uint64
	freedEpoch uint64
	freedCount int

	Stats Stats
}

// New builds a processor over prog and data memory m (which it owns and
// mutates at commit). The configuration is validated. Sweeps running
// many configurations over one program share the decode work instead:
// ShareProgram once, then NewShared (or BatchProc) per lane.
func New(cfg Config, prog *isa.Program, m *mem.Memory) (*Proc, error) {
	sp, err := ShareProgram(prog)
	if err != nil {
		return nil, err
	}
	return build(cfg, sp, m)
}

// build assembles a processor from a validated shared program; New and
// NewShared both land here.
func build(cfg Config, sp *SharedProgram, m *mem.Memory) (*Proc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prog := sp.prog
	if m == nil {
		m = mem.New()
	}
	hcfg := cfg.Hier
	hcfg.DL1Ports = cfg.DL1Ports
	hcfg.WideBus = cfg.Mode.UsesWideBus()

	p := &Proc{
		cfg:   cfg,
		prog:  prog,
		imeta: sp.imeta,
		mem:   m,
		rf:    regfile.NewFile(cfg.PhysRegs),
		rob:   make([]robEntry, cfg.WindowSize),
		hier:  cache.NewHierarchy(hcfg),
		bp:    bpred.NewGshare(cfg.GshareEntries),
		mbs:   bpred.NewMBS(cfg.MBSSets, cfg.MBSAssoc),
		sp:    stride.New(cfg.StrideSets, cfg.StrideAssoc),
		// In-flight stores are bounded by the LSQ, so the word index
		// stops growing once it has seen the peak occupancy.
		wordStores: make(map[uint64][]int32, cfg.LSQSize),
	}
	if cfg.Mode == ModeCI || cfg.Mode == ModeCIIW {
		p.nrbq = ci.NewNRBQ(cfg.NRBQEntries)
	}
	if cfg.Mode.Vectorizes() {
		p.srsmt = ci.NewSRSMT(cfg.SRSMTSets, cfg.SRSMTAssoc)
	}
	if cfg.Mode == ModeCIIW {
		p.iwTable = make([][]iwReuse, prog.Len())
		p.iwHead = make([]int, prog.Len())
	}
	// Epoch 0 would make the zero-valued freedMark read as all-freed.
	p.freedEpoch = 1
	p.aliasEmu = cfg.EmulateAliasedWorklist
	p.eventSched = !cfg.NaiveScheduler
	// Fast-forward needs the event scheduler's quiescence guarantees;
	// the naive reference always steps.
	p.fastFwd = p.eventSched && !cfg.NoFastForward
	if p.eventSched {
		// Pre-size the wakeup structures so the steady state stays
		// allocation-free: park lists for every physical register
		// (bounded files; unbounded ones grow on demand) and completion
		// wheel buckets. Deeper lists and buckets grow once and keep
		// their capacity.
		if cfg.PhysRegs > 0 {
			// Park lists routinely reach a dozen waiters on a hot value
			// register; 16 slots up front keeps per-run growth to the
			// few registers that go deeper.
			const parkCap = 16
			p.regWaiters = make([][]waitRef, cfg.PhysRegs)
			slab := make([]waitRef, len(p.regWaiters)*parkCap)
			for r := range p.regWaiters {
				p.regWaiters[r] = slab[r*parkCap : r*parkCap : (r+1)*parkCap]
			}
		}
		const bucketCap = 4
		wslab := make([]entryRef, wheelSpan*bucketCap)
		for i := range p.doneWheel {
			p.doneWheel[i] = wslab[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
		}
	}
	if cfg.SpecMemSize > 0 && cfg.Mode.Vectorizes() {
		p.sm = regfile.NewSpecMem(cfg.SpecMemSize, cfg.SpecMemLat)
	}
	// Bind each logical register to a committed physical register.
	for r := 0; r < isa.NumLogical; r++ {
		phys, ok := p.rf.Alloc()
		if !ok {
			return nil, fmt.Errorf("core: register file too small for architectural state")
		}
		p.rf.Write(phys, 0)
		p.ren[r] = renEntry{phys: int32(phys), writerPC: -1}
	}
	return p, nil
}

// Run simulates until the program halts, the committed-instruction
// budget is exhausted, or the cycle safety bound trips. It returns the
// final statistics.
func (p *Proc) Run() (*Stats, error) {
	return p.RunContext(context.Background())
}

// ctxCheckInterval is how many simulated cycles RunContext advances
// between context polls. Checks land only on whole-cycle boundaries —
// never inside a fast-forward jump — so a cancelled run's statistics
// are a well-formed prefix of the uncancelled run's. 1024 steps is
// microseconds of wall time, and with a Background context (nil Done
// channel) the polling is skipped entirely.
const ctxCheckInterval = 1024

// RunContext is Run under a context: cancellation or an expired
// deadline stops the simulation at the next cycle boundary. On
// cancellation it returns the partial statistics accumulated so far
// together with ctx.Err(), so callers can report work done before the
// cut; every other error returns nil stats as Run does.
func (p *Proc) RunContext(ctx context.Context) (*Stats, error) {
	maxCycles := p.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000_000
	}
	// One-lane degenerate batch: the single-configuration run is the
	// batched engine's fallback path, so the two cannot drift.
	ls := laneState{
		p: p, maxCycles: maxCycles, ctxCheck: ctxCheckInterval,
		lastCommit: p.Stats.Committed, lastCommitCycle: p.cycle,
	}
	switch st := ls.stepChunk(^uint64(0), ctx.Done()); st {
	case laneFinished:
		return p.Finalize(), nil
	case laneCanceled:
		return p.Finalize(), ctx.Err()
	default:
		return nil, laneError(&ls, st)
	}
}

// Step advances the pipeline by one cycle (a no-op once the program
// has halted). It exposes the cycle loop to microbenchmarks and tools
// that measure steady-state slices instead of whole runs; Run remains
// the way to simulate a program to completion.
//
//civet:hotpath
func (p *Proc) Step() {
	if !p.halted {
		p.step()
	}
}

// Halted reports whether the program has committed its halt.
func (p *Proc) Halted() bool { return p.halted }

func (p *Proc) headState() string {
	if p.robCount == 0 {
		return "empty ROB"
	}
	h := &p.rob[p.robHead]
	return fmt.Sprintf("pc=%d op=%v state=%d validated=%v", h.pc, h.in.Op, h.state, h.validated)
}

// step advances one cycle, processing stages in reverse pipeline order
// so that each stage sees the previous cycle's outputs. When the
// coming cycle is provably inert, the fast-forward engine first jumps
// the cycle counter to just before the next actionable cycle
// (fastforward.go), so the step below lands exactly on it.
func (p *Proc) step() {
	if p.fastFwd {
		p.maybeFastForward()
	}
	p.cycle++
	p.hier.BeginCycle(p.cycle)
	if p.sm != nil {
		p.sm.BeginCycle()
	}
	p.aluFree = p.cfg.IntALUs
	p.mulFree = p.cfg.IntMulDivs
	p.rf.Sample()

	p.commitStage()
	if p.obs != nil {
		p.observeCommits()
	}
	if p.halted {
		return
	}
	p.completeStage()
	p.advanceValidated()
	p.issueStage()
	p.replicaTick()
	p.renameStage()
	p.fetchStage()
}

func (p *Proc) finalizeStats() {
	p.Stats.Cycles = p.cycle
	p.Stats.RegAvgInUse = p.rf.AvgInUse()
	p.Stats.RegPeak = p.rf.Peak()
	p.Stats.L1I = p.hier.L1I.Stats
	p.Stats.L1D = p.hier.L1D.Stats
	p.Stats.L2 = p.hier.L2.Stats
	p.Stats.L3 = p.hier.L3.Stats
}

// Finalize performs the end-of-run bookkeeping Run does on its own
// terminal paths — closing the open CI episode and filling the derived
// statistics — and returns the final stats. Step-driven callers ending
// a run themselves (budget reached, halt observed) call it so their
// statistics match a Run to the same point exactly. Idempotent.
func (p *Proc) Finalize() *Stats {
	p.closeEpisode()
	p.finalizeStats()
	return &p.Stats
}

// Snapshot returns a copy of the statistics as of now with the
// end-of-run derived fields (cycle count, register occupancy, cache
// snapshots) filled in. Unlike the end-of-run finalization it does not
// close the open CI episode, so snapshotting mid-run never perturbs
// the remainder of the simulation.
func (p *Proc) Snapshot() Stats {
	st := p.Stats
	st.Cycles = p.cycle
	st.RegAvgInUse = p.rf.AvgInUse()
	st.RegPeak = p.rf.Peak()
	st.L1I = p.hier.L1I.Stats
	st.L1D = p.hier.L1D.Stats
	st.L2 = p.hier.L2.Stats
	st.L3 = p.hier.L3.Stats
	return st
}

// ARF returns the committed architectural register values.
func (p *Proc) ARF() [isa.NumLogical]uint64 { return p.arf }

// Mem returns the architectural data memory.
func (p *Proc) Mem() *mem.Memory { return p.mem }

// robIndexAfter returns the ring index following i.
func (p *Proc) robIndexAfter(i int) int {
	i++
	if i == len(p.rob) {
		return 0
	}
	return i
}

// robIndexBefore returns the ring index preceding i.
func (p *Proc) robIndexBefore(i int) int {
	if i == 0 {
		return len(p.rob) - 1
	}
	return i - 1
}

// robAlloc appends a ROB entry at the tail, returning its index.
func (p *Proc) robAlloc() int {
	i := p.robTail
	p.robTail = p.robIndexAfter(p.robTail)
	p.robCount++
	p.rob[i] = robEntry{valid: true}
	return i
}

// lsqRemove deletes a ROB index from the LSQ.
func (p *Proc) lsqRemove(robIdx int) {
	for i, v := range p.lsq {
		if v == robIdx {
			p.lsq = append(p.lsq[:i], p.lsq[i+1:]...)
			return
		}
	}
}

// fetchLen returns the number of buffered fetched instructions.
func (p *Proc) fetchLen() int { return len(p.fetchQ) - p.fetchQHead }

// fetchFront returns the oldest buffered instruction.
func (p *Proc) fetchFront() *fetchedInstr { return &p.fetchQ[p.fetchQHead] }

// fetchPop consumes the oldest buffered instruction, compacting the
// buffer when the dead prefix gets large so growth stays bounded.
func (p *Proc) fetchPop() {
	p.fetchQHead++
	if p.fetchQHead == len(p.fetchQ) {
		p.fetchQ = p.fetchQ[:0]
		p.fetchQHead = 0
	} else if p.fetchQHead >= 128 {
		p.fetchQ = p.fetchQ[:copy(p.fetchQ, p.fetchQ[p.fetchQHead:])]
		p.fetchQHead = 0
	}
}

// fetchClear empties the fetch buffer (squash).
func (p *Proc) fetchClear() {
	p.fetchQ = p.fetchQ[:0]
	p.fetchQHead = 0
}

// clearFreed empties the freed-register set (one epoch bump).
func (p *Proc) clearFreed() {
	p.freedEpoch++
	p.freedCount = 0
}

// noteFreed adds a physical register to the freed set.
func (p *Proc) noteFreed(reg int) {
	if reg >= len(p.freedMark) {
		//civet:allow hotalloc amortized freed-set doubling; grows O(log n) times, then never again
		grown := make([]uint64, max(2*len(p.freedMark), reg+64))
		copy(grown, p.freedMark)
		p.freedMark = grown
	}
	p.freedMark[reg] = p.freedEpoch
	p.freedCount++
}

// wasFreed reports membership in the freed set.
func (p *Proc) wasFreed(reg int) bool {
	return reg < len(p.freedMark) && p.freedMark[reg] == p.freedEpoch
}

func (p *Proc) closeEpisode() {
	if !p.episodeOpen {
		return
	}
	if p.episodeSelected {
		p.Stats.EpisodesSelected++
	}
	if p.episodeReused {
		p.Stats.EpisodesReused++
	}
	p.episodeOpen = false
	p.episodeSelected = false
	p.episodeReused = false
}

func (p *Proc) openEpisode() {
	p.closeEpisode()
	p.episodeOpen = true
}
