// Package core implements the execution-driven out-of-order superscalar
// timing simulator and the paper's control-flow independence mechanism.
//
// The pipeline models fetch (8-wide, one taken branch per cycle, I-cache
// timing), decode/rename (merged register file with free list), a
// 256-entry instruction window (ROB), 8-way out-of-order issue over the
// Table 1 functional units, a 64-entry load/store queue with store-load
// forwarding, multi-level data caches with optional wide buses, and
// 8-wide in-order commit. Wrong paths execute for real: fetch follows
// the predicted PC through the static program and instructions compute
// real values; stores are buffered until commit so architectural memory
// stays exact.
//
// Five machine modes reproduce the paper's configurations: the scalar
// baseline, the wide-bus baseline, the proposed control-independence
// mechanism (ci), the squash-reuse restriction of it (ci-iw, Figure 10),
// and the full speculative dynamic vectorization baseline of reference
// [12] (vect, Figure 14).
package core

import (
	"fmt"

	"civect/internal/cache"
)

// Mode selects the machine organisation.
type Mode int

const (
	// ModeScalar is the plain superscalar baseline (scalxp).
	ModeScalar Mode = iota
	// ModeWideBus adds wide L1D buses (wbxp, §2.4.5).
	ModeWideBus
	// ModeCI is the proposed control-independence mechanism on top of
	// wide buses (cixp).
	ModeCI
	// ModeCIIW exploits control independence only for instructions
	// already inside the instruction window when the misprediction is
	// detected — squash reuse (ci-iw, Figure 10).
	ModeCIIW
	// ModeVect is the full-blown speculative dynamic vectorization of
	// [12]: every confident strided load is vectorized, with no
	// control-independence filtering (Figure 14).
	ModeVect
)

// String names the mode as the paper's figures do.
func (m Mode) String() string {
	switch m {
	case ModeScalar:
		return "scal"
	case ModeWideBus:
		return "wb"
	case ModeCI:
		return "ci"
	case ModeCIIW:
		return "ci-iw"
	case ModeVect:
		return "vect"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Modes lists every machine mode in the paper's presentation order
// (scal, wb, ci, ci-iw, vect).
func Modes() []Mode {
	return []Mode{ModeScalar, ModeWideBus, ModeCI, ModeCIIW, ModeVect}
}

// ParseMode inverts Mode.String: it is the one mode-name table shared
// by every CLI flag, bench row and the sim façade.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (want scal, wb, ci, ci-iw or vect)", s)
}

// UsesWideBus reports whether the mode includes wide L1D buses. In the
// paper every configuration beyond the plain scalar baseline is built on
// wide buses.
func (m Mode) UsesWideBus() bool { return m != ModeScalar }

// Vectorizes reports whether the mode creates speculative replicas.
func (m Mode) Vectorizes() bool { return m == ModeCI || m == ModeVect }

// Config holds every processor parameter. DefaultConfig returns
// Table 1; the experiment harness varies the fields each figure sweeps.
type Config struct {
	Mode Mode

	// FetchWidth instructions per cycle, up to one taken branch
	// (Table 1: 8).
	FetchWidth int
	// DecodeWidth is the rename/dispatch width (8).
	DecodeWidth int
	// IssueWidth is the out-of-order issue width (8).
	IssueWidth int
	// CommitWidth is the in-order commit width (8).
	CommitWidth int

	// FrontEndDepth is the number of pipeline stages between fetch and
	// rename (decode stages); it sets the minimum branch misprediction
	// penalty together with resolution latency.
	FrontEndDepth int

	// WindowSize is the instruction window / reorder buffer capacity
	// (Table 1: 256). For register files larger than 256 the paper
	// grows the window to the register count; the harness applies that
	// rule.
	WindowSize int
	// LSQSize is the load/store queue capacity (64).
	LSQSize int

	// Functional units (Table 1) with latencies in brackets: 6 simple
	// int (1); 3 int mult/div (2 mult, 12 div); 4 simple FP (2); 2 FP
	// mult/div (4, 14); load/store units track the L1D port count.
	IntALUs    int
	IntMulDivs int
	LatIntALU  int
	LatIntMul  int
	LatIntDiv  int

	// PhysRegs is the physical register file size; 0 means unbounded
	// ("Inf"). 64 registers are permanently committed state, so the
	// usable rename pool is PhysRegs-64.
	PhysRegs int

	// GshareEntries sizes the branch predictor (Table 1: 64K).
	GshareEntries int

	// Hier configures the caches; DL1Ports and WideBus within it are
	// overridden from DL1Ports and Mode at construction.
	Hier cache.HierConfig
	// DL1Ports is the number of L1 data cache ports (1 or 2).
	DL1Ports int

	// Replicas per vectorized instruction (the paper sweeps 1/2/4/8;
	// default 4).
	Replicas int
	// StridedPCsPerEntry bounds the stridedPC list each rename entry
	// propagates (Figure 4 sweeps 1/2/4; default 2).
	StridedPCsPerEntry int

	// Stride predictor geometry (Table 1: 256 sets, 4-way).
	StrideSets, StrideAssoc int
	// SRSMT geometry (Table 1: 64 sets, 4-way).
	SRSMTSets, SRSMTAssoc int
	// MBS geometry (Table 1: 64 sets, 4-way).
	MBSSets, MBSAssoc int
	// NRBQEntries is the Not Retired Branch Queue capacity (16).
	NRBQEntries int

	// SpecMemSize enables the speculative data memory of §2.4.6 with
	// that many positions (0 disables it: replicas use the register
	// file). SpecMemLat is its access latency (2; §3.2 also tries 5).
	SpecMemSize int
	SpecMemLat  int

	// ReplicaRegReserve keeps this many physical registers free before
	// replicas may allocate; it prevents the speculative work from
	// starving the conventional pipeline completely.
	ReplicaRegReserve int
	// RenameRegHeadroom stalls scalar renaming while fewer than this
	// many registers remain free (vectorizing modes only): replicas
	// compete with the conventional window for registers, which is the
	// §3.2 register-pressure effect ("a large number of scalar
	// registers are used to store the values created by the speculative
	// instructions, slowing down the execution of the code that has not
	// been vectorized").
	RenameRegHeadroom int

	// DisableDAEC turns off the Dead Association Elimination Counter
	// (§2.4.2) for the register-pressure ablation: without it, dead
	// replica registers survive until their entry is evicted.
	DisableDAEC bool

	// DisableMBSGate activates the control-independence scheme on every
	// misprediction instead of only MBS-hard branches (§2.3.1 argues
	// the filter focuses the mechanism on branches responsible for many
	// mispredictions; this ablation measures what it buys).
	DisableMBSGate bool

	// NaiveScheduler selects the polled reference scheduler: issue
	// re-scans the whole waiting list every cycle and blocked replicas
	// re-attempt arbitration every cycle, as in PR 1. The default
	// (false) is the event-driven wakeup engine, which is required to
	// be observation-equivalent — the differential tests in
	// internal/core compare the two bit-for-bit.
	NaiveScheduler bool

	// NoFastForward disables the stall-cycle fast-forward engine
	// (fastforward.go) and steps every simulated cycle individually —
	// the reference mode the fast-forward differential tests compare
	// against, same pattern as NaiveScheduler. Fast-forward needs the
	// event scheduler's ready/park lists to prove a cycle inert, so the
	// naive scheduler never fast-forwards regardless of this flag.
	NoFastForward bool

	// CommitRecomputeAll restores the reference commit path that
	// recomputes every instruction architecturally (archResult) before
	// retiring it. The default (false) skips the recomputation for
	// instructions whose rename-time operand sources carried no reused
	// (validated or squash-reuse) value — for those the issue-time
	// result is exact by construction, which the reference mode's
	// commit assertion checks. Differential tests compare the two.
	CommitRecomputeAll bool

	// EmulateAliasedWorklist re-introduces the PR 1 SRSMT worklist
	// aliasing bug for demonstration: a stale worklist listing is
	// treated as live as long as its way holds any valid incarnation,
	// so a recycled way inherits its predecessor's listing and takes
	// double replica-arbitration turns per cycle — unphysical
	// hardware. The knob exists so the trace tooling (cmd/citrace,
	// internal/trace) can exhibit divergence localization on a real,
	// historical engine bug; it is deterministic but must never be
	// used for reported results.
	EmulateAliasedWorklist bool

	// MaxInstr bounds committed instructions (0: run to halt).
	MaxInstr uint64
	// MaxCycles is a hard safety bound (0: 200M).
	MaxCycles uint64
}

// DefaultConfig returns the Table 1 processor with the mechanism's
// default knobs (4 replicas, 2 strided PCs per rename entry, 256
// registers, 1 wide L1D port) in the given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:          mode,
		FetchWidth:    8,
		DecodeWidth:   8,
		IssueWidth:    8,
		CommitWidth:   8,
		FrontEndDepth: 3,
		WindowSize:    256,
		LSQSize:       64,

		IntALUs:    6,
		IntMulDivs: 3,
		LatIntALU:  1,
		LatIntMul:  2,
		LatIntDiv:  12,

		PhysRegs:      256,
		GshareEntries: 1 << 16,

		Hier:     cache.DefaultHierConfig(),
		DL1Ports: 1,

		Replicas:           4,
		StridedPCsPerEntry: 2,

		StrideSets: 256, StrideAssoc: 4,
		SRSMTSets: 64, SRSMTAssoc: 4,
		MBSSets: 64, MBSAssoc: 4,
		NRBQEntries: 16,

		SpecMemSize: 0,
		SpecMemLat:  2,

		ReplicaRegReserve: 4,
		RenameRegHeadroom: 24,

		MaxInstr:  0,
		MaxCycles: 0,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Mode < ModeScalar || c.Mode > ModeVect:
		return fmt.Errorf("core: invalid mode %d", int(c.Mode))
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("core: pipeline widths must be positive")
	case c.WindowSize < 4:
		return fmt.Errorf("core: window size %d too small", c.WindowSize)
	case c.LSQSize < 2:
		return fmt.Errorf("core: LSQ size %d too small", c.LSQSize)
	case c.PhysRegs != 0 && c.PhysRegs < 96:
		return fmt.Errorf("core: %d physical registers cannot cover 64 architectural + rename", c.PhysRegs)
	case c.DL1Ports < 1:
		return fmt.Errorf("core: need at least one L1D port")
	case c.Replicas < 1 || c.Replicas > 64:
		return fmt.Errorf("core: replicas %d out of range", c.Replicas)
	case c.StridedPCsPerEntry < 1:
		return fmt.Errorf("core: need at least one strided PC per rename entry")
	case c.StridedPCsPerEntry > maxStridedPCs:
		return fmt.Errorf("core: at most %d strided PCs per rename entry", maxStridedPCs)
	}
	return nil
}

// WindowFor applies the paper's reorder-buffer sizing rule: 256
// entries, grown to the register count when the register file exceeds
// 256 ("for configurations with more than 256 registers the reorder
// buffer has been increased to the size of the number of registers"),
// and 1024 for the unbounded file.
func WindowFor(physRegs int) int {
	switch {
	case physRegs == 0:
		return 1024
	case physRegs > 256:
		return physRegs
	default:
		return 256
	}
}
