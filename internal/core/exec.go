package core

import "civect/internal/isa"

// execALU computes the result of a register-writing, non-memory
// instruction from its operand values. It is the single functional
// definition shared by scalar issue, replica execution and the
// commit-time architectural check, so the three can never diverge.
func execALU(in isa.Instr, a, b uint64) uint64 {
	switch in.Op {
	case isa.OpMovI:
		return uint64(in.Imm)
	case isa.OpMov:
		return a
	case isa.OpAdd:
		return a + b
	case isa.OpAddI:
		return a + uint64(in.Imm)
	case isa.OpSub:
		return a - b
	case isa.OpSubI:
		return a - uint64(in.Imm)
	case isa.OpMul:
		return a * b
	case isa.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShlI:
		return a << (uint64(in.Imm) & 63)
	case isa.OpShrI:
		return a >> (uint64(in.Imm) & 63)
	case isa.OpSLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case isa.OpSLTI:
		if int64(a) < in.Imm {
			return 1
		}
		return 0
	case isa.OpSEQ:
		if a == b {
			return 1
		}
		return 0
	case isa.OpSEQI:
		if a == uint64(in.Imm) {
			return 1
		}
		return 0
	}
	return 0
}

// opLatency returns the functional-unit class and latency for a
// non-memory instruction (Table 1: simple int 1 cycle; int mult 2; int
// div 12).
func (p *Proc) opLatency(op isa.Op) (useMulDiv bool, lat int) {
	switch op {
	case isa.OpMul:
		return true, p.cfg.LatIntMul
	case isa.OpDiv:
		return true, p.cfg.LatIntDiv
	default:
		return false, p.cfg.LatIntALU
	}
}

// archResult recomputes an instruction's architectural effect from the
// committed register file and memory. Called when the instruction is at
// the ROB head, where all older instructions have committed, so the
// result is exact. For stores it returns the address and stored value.
func (p *Proc) archResult(in isa.Instr) (value uint64, addr uint64) {
	a := p.arf[in.Ra]
	b := p.arf[in.Rb]
	switch {
	case in.IsLoad():
		addr = a + uint64(in.Imm)
		return p.mem.Read64(addr), addr
	case in.IsStore():
		addr = a + uint64(in.Imm)
		return b, addr
	case in.IsCondBranch():
		taken := (in.Op == isa.OpBEQZ && a == 0) || (in.Op == isa.OpBNEZ && a != 0)
		if taken {
			return 1, 0
		}
		return 0, 0
	default:
		return execALU(in, a, b), 0
	}
}
