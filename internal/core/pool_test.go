package core

import (
	"math/bits"
	"testing"

	"civect/internal/ci"
	"civect/internal/workload"
)

// checkReplicaInvariants verifies the bookkeeping the hot path relies
// on instead of rescanning: the worklist holds exactly one live ref per
// Listed incarnation, and every entry's Pending/Issue/ActiveMask agree
// with a full scan of its replica ring.
func checkReplicaInvariants(t *testing.T, p *Proc) {
	t.Helper()
	if p.srsmt == nil {
		return
	}

	liveRefs := make(map[*ci.Entry]int)
	for _, ref := range p.activeEntries {
		if !ref.live() {
			continue
		}
		liveRefs[ref.ent]++
		if n := liveRefs[ref.ent]; n > 1 {
			t.Fatalf("cycle %d: entry pc=%d listed %d times (duplicate arbitration turns)",
				p.cycle, ref.ent.PC, n)
		}
		if !ref.ent.Listed {
			t.Fatalf("cycle %d: live worklist ref for pc=%d but entry not marked Listed", p.cycle, ref.ent.PC)
		}
		if ref.stamp != ref.ent.Stamp {
			t.Fatalf("cycle %d: worklist stamp %d != entry stamp %d", p.cycle, ref.stamp, ref.ent.Stamp)
		}
	}

	p.srsmt.ForEachValid(func(ent *ci.Entry) bool {
		pending, issued := 0, 0
		var mask uint64
		for i := range ent.Replicas {
			s := &ent.Replicas[i]
			if s.Abs < 0 {
				continue
			}
			switch s.State {
			case ci.ReplicaWaiting:
				pending++
				mask |= 1 << uint(i&63)
			case ci.ReplicaIssued:
				pending++
				issued++
				mask |= 1 << uint(i&63)
			}
		}
		if pending != ent.Pending {
			t.Fatalf("cycle %d: pc=%d Pending=%d, ring scan says %d", p.cycle, ent.PC, ent.Pending, pending)
		}
		if issued != ent.Issue {
			t.Fatalf("cycle %d: pc=%d Issue=%d, ring scan says %d", p.cycle, ent.PC, ent.Issue, issued)
		}
		if len(ent.Replicas) <= 64 && mask != ent.ActiveMask {
			t.Fatalf("cycle %d: pc=%d ActiveMask=%b, ring scan says %b", p.cycle, ent.PC, ent.ActiveMask, mask)
		}
		if wantListed := ent.Listed; (liveRefs[ent] == 1) != wantListed {
			t.Fatalf("cycle %d: pc=%d Listed=%v but %d live refs", p.cycle, ent.PC, wantListed, liveRefs[ent])
		}
		// A parked entry must have genuinely nothing to do: pending work,
		// an unresolved seed or an unfilled batch all require a listing,
		// or the worklist would never process them again.
		if !ent.Listed {
			seedResolved := ent.SeedCaptured || ent.SeedBroken || ent.SeedPhys < 0
			if ent.Pending > 0 || !seedResolved || ent.Alloc-ent.Decode < ent.NRegs {
				t.Fatalf("cycle %d: pc=%d parked with work: pending=%d seedResolved=%v alloc=%d decode=%d nregs=%d",
					p.cycle, ent.PC, ent.Pending, seedResolved, ent.Alloc, ent.Decode, ent.NRegs)
			}
		}
		if n := len(ent.Replicas); n&(n-1) != 0 {
			t.Fatalf("pc=%d ring size %d not a power of two", ent.PC, n)
		}
		_ = bits.OnesCount64(mask)
		return true
	})
}

// TestWorklistInvariants steps vectorizing pipelines cycle by cycle and
// re-derives the worklist bookkeeping from scratch at intervals.
func TestWorklistInvariants(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"ci", DefaultConfig(ModeCI)},
		{"vect", DefaultConfig(ModeVect)},
		{"ci-specmem", func() Config {
			c := DefaultConfig(ModeCI)
			c.SpecMemSize = 768
			return c
		}()},
		{"ci-8rep", func() Config {
			c := DefaultConfig(ModeCI)
			c.Replicas = 8
			return c
		}()},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.Spec("gcc")
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.MaxInstr = 12_000
			p, err := New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			for !p.halted && p.Stats.Committed < cfg.MaxInstr && p.cycle < 2_000_000 {
				p.step()
				if p.cycle%64 == 0 {
					checkReplicaInvariants(t, p)
				}
			}
			checkReplicaInvariants(t, p)
			if p.Stats.Committed < cfg.MaxInstr {
				t.Fatalf("pipeline stalled: committed %d of %d", p.Stats.Committed, cfg.MaxInstr)
			}
		})
	}
}

// TestStridedPCsCap ensures the inline rename-entry list bound is
// enforced at configuration time.
func TestStridedPCsCap(t *testing.T) {
	cfg := DefaultConfig(ModeCI)
	cfg.StridedPCsPerEntry = maxStridedPCs
	if err := cfg.Validate(); err != nil {
		t.Fatalf("StridedPCsPerEntry=%d must validate: %v", maxStridedPCs, err)
	}
	cfg.StridedPCsPerEntry = maxStridedPCs + 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("StridedPCsPerEntry beyond the inline bound must be rejected")
	}
}
