package core

import (
	"math/bits"
	"testing"

	"civect/internal/ci"
	"civect/internal/workload"
)

// checkReplicaInvariants verifies the bookkeeping the hot path relies
// on instead of rescanning: the worklist holds exactly one live ref per
// Listed incarnation, and every entry's Pending/Issue/ActiveMask agree
// with a full scan of its replica ring.
func checkReplicaInvariants(t *testing.T, p *Proc) {
	t.Helper()
	if p.srsmt == nil {
		return
	}

	liveRefs := make(map[*ci.Entry]int)
	for _, ref := range p.activeEntries {
		if !ref.live() {
			continue
		}
		liveRefs[ref.ent]++
		if n := liveRefs[ref.ent]; n > 1 {
			t.Fatalf("cycle %d: entry pc=%d listed %d times (duplicate arbitration turns)",
				p.cycle, ref.ent.PC, n)
		}
		if !ref.ent.Listed {
			t.Fatalf("cycle %d: live worklist ref for pc=%d but entry not marked Listed", p.cycle, ref.ent.PC)
		}
		if ref.stamp != ref.ent.Stamp {
			t.Fatalf("cycle %d: worklist stamp %d != entry stamp %d", p.cycle, ref.stamp, ref.ent.Stamp)
		}
	}

	p.srsmt.ForEachValid(func(ent *ci.Entry) bool {
		pending, issued := 0, 0
		var mask, issuedMask uint64
		for i := range ent.Replicas {
			s := &ent.Replicas[i]
			if s.Abs < 0 {
				continue
			}
			switch s.State {
			case ci.ReplicaWaiting:
				pending++
				mask |= 1 << uint(i&63)
			case ci.ReplicaIssued:
				pending++
				issued++
				mask |= 1 << uint(i&63)
				issuedMask |= 1 << uint(i&63)
			}
		}
		if pending != ent.Pending {
			t.Fatalf("cycle %d: pc=%d Pending=%d, ring scan says %d", p.cycle, ent.PC, ent.Pending, pending)
		}
		if issued != ent.Issue {
			t.Fatalf("cycle %d: pc=%d Issue=%d, ring scan says %d", p.cycle, ent.PC, ent.Issue, issued)
		}
		if len(ent.Replicas) <= 64 {
			// Pending slots are split across the actionable and blocked
			// masks; the two are disjoint, cover the ring scan exactly,
			// and only Waiting slots may be blocked (the naive scheduler
			// never blocks at all).
			if ent.ActiveMask&ent.BlockedMask != 0 {
				t.Fatalf("cycle %d: pc=%d slot in both masks: active=%b blocked=%b",
					p.cycle, ent.PC, ent.ActiveMask, ent.BlockedMask)
			}
			if got := ent.ActiveMask | ent.BlockedMask; got != mask {
				t.Fatalf("cycle %d: pc=%d ActiveMask|BlockedMask=%b, ring scan says %b",
					p.cycle, ent.PC, got, mask)
			}
			if ent.BlockedMask&issuedMask != 0 {
				t.Fatalf("cycle %d: pc=%d issued slot blocked: blocked=%b issued=%b",
					p.cycle, ent.PC, ent.BlockedMask, issuedMask)
			}
			if p.cfg.NaiveScheduler && ent.BlockedMask != 0 {
				t.Fatalf("cycle %d: pc=%d naive scheduler blocked slots: %b",
					p.cycle, ent.PC, ent.BlockedMask)
			}
		}
		if wantListed := ent.Listed; (liveRefs[ent] == 1) != wantListed {
			t.Fatalf("cycle %d: pc=%d Listed=%v but %d live refs", p.cycle, ent.PC, wantListed, liveRefs[ent])
		}
		// A parked entry must have genuinely nothing to do: actionable
		// work, an unresolved seed or an unfilled batch all require a
		// listing, or the worklist would never process them again.
		// Under the event-driven scheduler, blocked slots may park
		// (every blocking condition has a wakeup hook) and in-flight
		// executions may sleep — but then a live completion-wheel wake
		// must be scheduled at or before NextDone.
		if !ent.Listed {
			seedResolved := ent.SeedCaptured || ent.SeedBroken || ent.SeedPhys < 0
			if !seedResolved || ent.Alloc-ent.Decode < ent.NRegs {
				t.Fatalf("cycle %d: pc=%d parked with work: seedResolved=%v alloc=%d decode=%d nregs=%d",
					p.cycle, ent.PC, seedResolved, ent.Alloc, ent.Decode, ent.NRegs)
			}
			if p.cfg.NaiveScheduler || len(ent.Replicas) > 64 {
				if ent.Pending > 0 {
					t.Fatalf("cycle %d: pc=%d parked with %d pending slots", p.cycle, ent.PC, ent.Pending)
				}
			} else {
				if open := ent.ActiveMask &^ ent.IssuedMask; open != 0 {
					t.Fatalf("cycle %d: pc=%d parked with actionable waiting slots: %b", p.cycle, ent.PC, open)
				}
				if ent.Issue > 0 {
					if ent.NextDone <= p.cycle || ent.NextDone-p.cycle >= wheelSpan {
						t.Fatalf("cycle %d: pc=%d parked with %d in flight but NextDone=%d outside wheel",
							p.cycle, ent.PC, ent.Issue, ent.NextDone)
					}
					woken := false
					for _, ref := range p.doneWheel[ent.NextDone&(wheelSpan-1)] {
						if ref.ent == ent && ref.gen == ent.Gen {
							woken = true
							break
						}
					}
					if !woken {
						t.Fatalf("cycle %d: pc=%d parked with %d in flight but no wheel wake at %d",
							p.cycle, ent.PC, ent.Issue, ent.NextDone)
					}
				}
			}
		}
		if n := len(ent.Replicas); n&(n-1) != 0 {
			t.Fatalf("pc=%d ring size %d not a power of two", ent.PC, n)
		}
		_ = bits.OnesCount64(mask)
		return true
	})
}

// checkSchedulerInvariants re-derives the issue-side wakeup-engine
// bookkeeping from the ROB: every live waiting instruction is findable
// exactly once across the scheduler lists, ready-list entries really
// have ready operands, and a parked instruction's wake register is
// genuinely unready (its producer still in flight) — the condition
// that guarantees a wake is still coming.
func checkSchedulerInvariants(t *testing.T, p *Proc) {
	t.Helper()
	type key struct {
		idx int
		seq uint64
	}
	count := make(map[key]int)
	scan := func(refs []waitRef, ready bool, parkedOn int) {
		for _, w := range refs {
			e := &p.rob[w.idx]
			if !e.valid || e.seq != w.seq || e.state != stWaiting {
				continue // stale refs are dropped lazily; ignore
			}
			count[key{w.idx, w.seq}]++
			if ready {
				for i := 0; i < int(e.nsrc); i++ {
					if !p.rf.Ready(int(e.srcPhys[i])) {
						t.Fatalf("cycle %d: ready-list instr rob=%d has unready operand p%d",
							p.cycle, w.idx, e.srcPhys[i])
					}
				}
			}
			if parkedOn >= 0 && p.rf.Ready(parkedOn) {
				t.Fatalf("cycle %d: instr rob=%d parked on ready register p%d (missed wake)",
					p.cycle, w.idx, parkedOn)
			}
		}
	}
	if p.eventSched {
		scan(p.readyQ, true, -1)
		for r := range p.regWaiters {
			scan(p.regWaiters[r], false, r)
		}
	} else {
		scan(p.waitQ, false, -1)
	}
	i := p.robHead
	for c := 0; c < p.robCount; c++ {
		e := &p.rob[i]
		if e.valid && e.state == stWaiting {
			if n := count[key{i, e.seq}]; n != 1 {
				t.Fatalf("cycle %d: waiting instr rob=%d seq=%d on %d scheduler lists, want 1",
					p.cycle, i, e.seq, n)
			}
		}
		i = p.robIndexAfter(i)
	}
}

// TestWorklistInvariants steps vectorizing pipelines cycle by cycle and
// re-derives the worklist bookkeeping from scratch at intervals, under
// both the event-driven scheduler and the naive reference.
func TestWorklistInvariants(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"ci", DefaultConfig(ModeCI)},
		{"vect", DefaultConfig(ModeVect)},
		{"ci-specmem", func() Config {
			c := DefaultConfig(ModeCI)
			c.SpecMemSize = 768
			return c
		}()},
		{"ci-8rep", func() Config {
			c := DefaultConfig(ModeCI)
			c.Replicas = 8
			return c
		}()},
		{"ci-naive", func() Config {
			c := DefaultConfig(ModeCI)
			c.NaiveScheduler = true
			return c
		}()},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wl, err := workload.Spec("gcc")
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.MaxInstr = 12_000
			p, err := New(cfg, wl.Program, wl.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			for !p.halted && p.Stats.Committed < cfg.MaxInstr && p.cycle < 2_000_000 {
				p.step()
				if p.cycle%64 == 0 {
					checkReplicaInvariants(t, p)
					checkSchedulerInvariants(t, p)
				}
			}
			checkReplicaInvariants(t, p)
			checkSchedulerInvariants(t, p)
			if p.Stats.Committed < cfg.MaxInstr {
				t.Fatalf("pipeline stalled: committed %d of %d", p.Stats.Committed, cfg.MaxInstr)
			}
		})
	}
}

// TestStridedPCsCap ensures the inline rename-entry list bound is
// enforced at configuration time.
func TestStridedPCsCap(t *testing.T) {
	cfg := DefaultConfig(ModeCI)
	cfg.StridedPCsPerEntry = maxStridedPCs
	if err := cfg.Validate(); err != nil {
		t.Fatalf("StridedPCsPerEntry=%d must validate: %v", maxStridedPCs, err)
	}
	cfg.StridedPCsPerEntry = maxStridedPCs + 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("StridedPCsPerEntry beyond the inline bound must be rejected")
	}
}
