package core

import "civect/internal/isa"

// instBytes scales instruction indices to byte addresses for the
// I-cache (4-byte instructions: a 64-byte line holds 16 instructions).
const instBytes = 4

// fetchCap is the fetch-buffer capacity: enough to cover the decode
// stages plus two fetch groups of slack. The fast-forward engine reads
// it too — a full buffer proves fetch inert while rename is blocked.
func (p *Proc) fetchCap() int { return (p.cfg.FrontEndDepth + 2) * p.cfg.FetchWidth }

// fetchStage fetches up to FetchWidth instructions per cycle along the
// predicted path, stopping at the first taken control transfer (Table
// 1: "up to 1 taken branch"). I-cache misses stall fetch for the miss
// latency. Wrong paths are followed for real; recovery redirects
// fetchPC and clears the buffer.
func (p *Proc) fetchStage() {
	if p.fetchHalted || p.cycle < p.fetchStallUntil {
		return
	}
	if p.fetchLen() >= p.fetchCap() {
		return
	}
	lat := p.hier.FetchAccess(uint64(p.fetchPC) * instBytes)
	if lat > 1 {
		p.fetchStallUntil = p.cycle + uint64(lat)
		return
	}
	readyAt := p.cycle + uint64(p.cfg.FrontEndDepth)
	for n := 0; n < p.cfg.FetchWidth; n++ {
		in := p.prog.At(p.fetchPC)
		f := fetchedInstr{pc: p.fetchPC, histSnapshot: p.bp.HistorySnapshot(), readyAt: readyAt}
		// Every switch arm below buffers f exactly once, so one tap
		// here covers them all.
		if p.tracer != nil {
			p.tracer.OnTraceFetch(p.cycle, int32(f.pc))
		}
		switch {
		case in.IsCondBranch():
			f.predTaken = p.bp.Predict(uint64(f.pc))
			p.bp.SpeculativeShift(f.predTaken)
			p.fetchQ = append(p.fetchQ, f)
			if f.predTaken {
				p.fetchPC = in.Target
				return // one taken branch per cycle
			}
			p.fetchPC++
		case in.IsJump():
			f.predTaken = true
			p.fetchQ = append(p.fetchQ, f)
			p.fetchPC = in.Target
			return
		case in.Op == isa.OpHalt:
			p.fetchQ = append(p.fetchQ, f)
			p.fetchHalted = true
			return
		default:
			p.fetchQ = append(p.fetchQ, f)
			p.fetchPC++
		}
		if p.fetchLen() >= p.fetchCap() {
			return
		}
	}
}
