package core

import (
	"fmt"
	"os"

	"civect/internal/ci"
	"civect/internal/isa"
)

// renameStage decodes, renames and dispatches up to DecodeWidth
// instructions from the fetch buffer. This is where the paper's
// mechanism engages: CRP mask tracking and control-independence
// selection (§2.3.2), stridedPC propagation through the rename map,
// SRSMT validation of previously vectorized instructions (§2.3.4),
// squash-reuse matching (ci-iw), and the vectorization triggers
// (§2.3.3).
func (p *Proc) renameStage() {
	for n := 0; n < p.cfg.DecodeWidth && p.fetchLen() > 0; n++ {
		if p.fetchFront().readyAt > p.cycle {
			return // still in the decode stages
		}
		if !p.tryRename(p.fetchFront()) {
			return
		}
		p.fetchPop()
	}
}

// renameHazard classifies the structural hazard refusing to rename an
// instruction with metadata im: the window, the LSQ, or the rename
// register pool. It is the single definition shared by tryRename and
// the fast-forward engine's renameBlocked — the skip-inertness proof
// depends on the two never drifting apart.
type renameHazard int

const (
	hazardNone renameHazard = iota
	hazardWindow
	hazardLSQ
	hazardRegs
)

func (p *Proc) renameHazardFor(im *instrMeta) renameHazard {
	if p.robCount >= len(p.rob) {
		return hazardWindow
	}
	if im.isMem() && len(p.lsq) >= p.cfg.LSQSize {
		return hazardLSQ
	}
	if im.hasDest() {
		need := 1
		if p.cfg.Mode.Vectorizes() {
			need += p.cfg.RenameRegHeadroom
		}
		if p.rf.FreeCount() < need {
			return hazardRegs
		}
	}
	return hazardNone
}

func (p *Proc) tryRename(f *fetchedInstr) bool {
	in := p.prog.At(f.pc)
	im := p.metaAt(f.pc)

	switch p.renameHazardFor(im) {
	case hazardRegs:
		// With an empty window nothing will ever commit to free a
		// register: replica storage has strangled the pipeline.
		// Reclaim idle entries rather than deadlocking. (With a
		// non-empty window, commits release registers naturally.)
		if p.robCount == 0 {
			p.reclaimIdleEntries()
		}
		return false
	case hazardWindow, hazardLSQ:
		return false
	}
	dest, hasDest := im.dest, im.hasDest()

	p.seq++
	idx := p.robAlloc()
	e := &p.rob[idx]
	e.seq = p.seq
	e.pc = int32(f.pc)
	e.in = in
	e.state = stWaiting
	e.physDest = -1
	e.predTaken = f.predTaken
	e.histSnapshot = f.histSnapshot
	e.hasDest = hasDest
	e.logDest = dest
	p.Stats.Fetched++
	if p.tracer != nil {
		p.tracer.OnTraceRename(p.cycle, e.seq, e.pc)
	}

	srcs := im.srcRegs()
	e.nsrc = uint8(len(srcs))
	var srcSnap [2]renEntry
	for i, r := range srcs {
		srcSnap[i] = p.ren[r]
		e.srcPhys[i] = p.ren[r].phys
		e.srcWriterSeq[i] = p.ren[r].writerSeq
	}

	// CRP tracking and control-independence selection (ModeCI/ModeCIIW).
	if p.nrbq != nil {
		p.crp.NoteFetch(f.pc, dest, hasDest)
		e.afterCRP = p.crp.Valid && p.crp.Reached
		if e.afterCRP && p.crp.Independent(srcs) {
			e.ciSelected = true
			e.ciEpisode = p.crp.Episode
			p.Stats.CISelected++
			p.episodeSelected = true
			if p.cfg.Mode == ModeCI {
				// Select the strided loads in the backward slice for
				// speculative vectorization (set the S flag, §2.3.2).
				for _, r := range srcs {
					for _, lpc := range p.strided(&p.ren[r]) {
						if se := p.sp.Lookup(lpc); se != nil {
							se.S = true
						}
					}
				}
			}
		}
		// The control-independent region runs from the re-convergent
		// point to the next conditional branch (Figure 1 boxes I11-I14);
		// selection stops there.
		if e.afterCRP && im.isCondBr() {
			p.crp.Deactivate()
		}
		// NRBQ maintenance: branches open a new write-mask region;
		// destinations accumulate into the newest region.
		if im.isCondBr() {
			p.nrbq.PushBranch(e.seq, uint64(f.pc), ci.EstimateReconvergence(p.prog, f.pc))
		} else if hasDest {
			p.nrbq.NoteDest(dest)
		}
	}

	// Squash reuse (ModeCIIW): a control-independent wrong-path result
	// kept across the last recovery can be reused if the operands still
	// come from the same dynamic producers.
	if p.iwLive > 0 && hasDest {
		if recs, head := p.iwTable[f.pc], p.iwHead[f.pc]; head < len(recs) && recs[head].nsrc == int(e.nsrc) {
			r := recs[head]
			match := true
			for i := 0; i < int(e.nsrc); i++ {
				if e.srcWriterSeq[i] == r.writerSeq[i] {
					continue
				}
				// The recorded producer may itself have been reused:
				// its correct-path reincarnation produced the same
				// value, so the chain remains valid.
				if rm := p.iwRemapped(r.writerSeq[i]); rm != 0 && rm == e.srcWriterSeq[i] {
					continue
				}
				match = false
				break
			}
			if match {
				p.iwHead[f.pc]++
				p.iwLive--
				p.iwRemapFrom = append(p.iwRemapFrom, r.seq)
				p.iwRemapTo = append(p.iwRemapTo, e.seq)
				e.reuseIW = true
				e.value = r.value
				p.episodeReused = true
			}
		}
	}

	// SRSMT validation (ModeCI/ModeVect, §2.3.4).
	if p.srsmt != nil && !e.reuseIW && hasDest && !im.isControl() {
		if ent := p.srsmt.Lookup(uint64(f.pc)); ent != nil {
			switch p.tryValidate(e, ent, srcSnap[:e.nsrc]) {
			case valOK:
				if e.ciSelected {
					p.episodeReused = true
				}
			case valFail:
				p.Stats.ValidationFails++
				if debugTrace {
					//civet:allow hotalloc trace formatting only runs when CIVECT_TRACE is set; production runs never reach it
					fmt.Fprintf(os.Stderr, "[%d] teardown pc=%d\n", p.cycle, f.pc)
				}
				p.invalidateEntry(ent)
			case valNoReplica:
				// Batch exhausted: execute normally, keep the entry.
			}
		}
	}

	// Taint tracking for the commit dirty-flag: a reused result, or any
	// source register still carrying an unverified reused value, makes
	// this instruction's commit recompute architecturally; everything
	// else retires on its issue-time result (commit.go).
	e.tainted = e.validated || e.reuseIW
	for i := 0; i < int(e.nsrc); i++ {
		if srcSnap[i].dirty {
			e.tainted = true
		}
	}

	// Rename the destination.
	if hasDest {
		phys, ok := p.rf.Alloc()
		if !ok {
			// FreeCount was checked above; this cannot happen.
			panic("core: rename register vanished")
		}
		e.physDest = int32(phys)
		e.oldRen = p.ren[dest]
		nre := renEntry{phys: int32(phys), writerSeq: e.seq, writerPC: int32(f.pc), dirty: e.tainted}
		if e.validated {
			// Figure 7: validated instances set the V/S bit and the Seq
			// field so dependents can vectorize and validate.
			nre.vec = true
			nre.vecPC = uint64(f.pc)
			nre.vecGen = e.valGen
		}
		p.propagateStridedPCs(&nre, f.pc, in, srcSnap[:e.nsrc])
		p.ren[dest] = nre
	}

	// Vectorization trigger for dependents (§2.3.3). Loads are
	// vectorized at commit, where their architectural address anchors
	// the replica sequence exactly (see maybeVectorizeLoad).
	if p.srsmt != nil && !e.validated && !e.reuseIW && !im.isLoad() &&
		hasDest && !im.isControl() {
		p.maybeVectorizeArith(f.pc, in, srcSnap[:e.nsrc], int(e.physDest), e.seq)
	}

	// Dispatch.
	switch {
	case e.reuseIW:
		e.state = stDone
		e.executed = true
		p.writeReg(int(e.physDest), e.value)
	case e.validated:
		e.state = stValidPend
		e.valSince = p.cycle
		p.validPend = append(p.validPend, waitRef{idx: idx, seq: e.seq})
	case in.Op == isa.OpNop || in.Op == isa.OpHalt || im.isJump():
		// Nothing to execute: jumps are resolved at fetch (direct
		// targets), nop and halt produce nothing.
		e.state = stDone
		e.executed = true
	default:
		if im.isMem() {
			p.lsq = append(p.lsq, idx)
			if im.isStore() {
				p.storeDispatch(e.seq)
			}
		}
		p.enqueueWaiting(idx, e)
	}
	return true
}

// iwRemapped returns the correct-path reincarnation recorded for a
// captured wrong-path producer seq, or 0 when there is none (dynamic
// seqs start at 1). The remap is small — one pair per reuse since the
// last capture — so a linear scan beats a map here.
func (p *Proc) iwRemapped(seq uint64) uint64 {
	for i, from := range p.iwRemapFrom {
		if from == seq {
			return p.iwRemapTo[i]
		}
	}
	return 0
}

// propagateStridedPCs fills nre's stridedPC list (§2.3.2): loads with a
// confident stride predictor entry start a list with their own PC;
// arithmetic instructions propagate the union of their sources' lists,
// capped at StridedPCsPerEntry. The union is built in-place and stored
// in a pooled stride-pool slot; nothing escapes to the heap.
func (p *Proc) propagateStridedPCs(nre *renEntry, pc int, in isa.Instr, snap []renEntry) {
	if p.metaAt(pc).isLoad() {
		if se := p.sp.Lookup(uint64(pc)); se != nil && se.Confident() && se.Stride != 0 {
			p.Stats.StridedPCsSum++
			p.Stats.StridedPCsCount++
			nre.strideRef = p.stridePC.alloc()
			p.stridePC.lists[nre.strideRef][0] = uint64(pc)
			nre.nStrided = 1
		}
		return
	}
	// Fast paths: no strided source, or a single strided source whose
	// list (already deduplicated and capped when it was built) is the
	// union. The branches stay separate so the source snapshots never
	// flow into a stored slice — that would make every rename's stack
	// snapshot escape to the heap.
	na, nb := 0, 0
	if len(snap) > 0 {
		na = int(snap[0].nStrided)
	}
	if len(snap) > 1 {
		nb = int(snap[1].nStrided)
	}
	switch {
	case na == 0 && nb == 0:
		return
	case nb == 0:
		p.finishStridedPCs(nre, p.strided(&snap[0]))
		return
	case na == 0:
		p.finishStridedPCs(nre, p.strided(&snap[1]))
		return
	}
	// The union counts every distinct PC for the Figure 4 average, even
	// beyond the propagation cap.
	u := append(p.pcScratch[:0], p.strided(&snap[0])...)
	for _, lpc := range p.strided(&snap[1]) {
		dup := false
		for _, have := range u {
			if have == lpc {
				dup = true
				break
			}
		}
		if !dup {
			u = append(u, lpc)
		}
	}
	p.pcScratch = u[:0]
	p.finishStridedPCs(nre, u)
}

// finishStridedPCs records the union statistics and stores the capped
// list in a fresh stride-pool slot owned by the rename entry.
func (p *Proc) finishStridedPCs(nre *renEntry, u []uint64) {
	p.Stats.StridedPCsSum += uint64(len(u))
	p.Stats.StridedPCsCount++
	if len(u) > p.cfg.StridedPCsPerEntry {
		u = u[:p.cfg.StridedPCsPerEntry]
	}
	nre.strideRef = p.stridePC.alloc()
	nre.nStrided = uint8(copy(p.stridePC.lists[nre.strideRef][:], u))
}
