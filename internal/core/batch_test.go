package core

import (
	"context"
	"errors"
	"os"
	"testing"

	"civect/internal/mem"
	"civect/internal/workload"
)

// The batched lockstep engine (batch.go) is required to be
// observation-equivalent to sequential per-configuration runs: every
// lane's statistics must be bit-identical to a single-configuration
// RunContext of the same config over the same workload, on every
// underlying engine. These differential tests are the
// batched-vs-sequential leg of the engine matrix.

// batchedLeg is the CIVECT_ENGINE_PAIR value of the CI matrix leg that
// runs this suite (and only this suite).
const batchedLeg = "batched,sequential"

// skipUnlessBatchedLeg skips the test on matrix legs covering a
// classic engine pair; a plain `go test` (no leg selected) runs it.
func skipUnlessBatchedLeg(t *testing.T) {
	if v := os.Getenv("CIVECT_ENGINE_PAIR"); v != "" && v != batchedLeg {
		t.Skipf("suite compares batched vs sequential; leg %s covers an engine pair", v)
	}
}

// batchLanes builds a BatchProc over b with one lane per config.
func batchLanes(t *testing.T, b *workload.Benchmark, cfgs []Config) *BatchProc {
	t.Helper()
	sp, err := ShareProgram(b.Program)
	if err != nil {
		t.Fatal(err)
	}
	mems := make([]*mem.Memory, len(cfgs))
	for i := range mems {
		mems[i] = b.NewMem()
	}
	bp, err := NewBatchProc(sp, cfgs, mems)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// runBatch runs bp to completion and returns per-lane stats, failing
// on any lane error.
func runBatch(t *testing.T, bp *BatchProc) []*Stats {
	t.Helper()
	stats := make([]*Stats, bp.Lanes())
	err := bp.RunContext(context.Background(), func(lane int, st *Stats, err error) {
		if err != nil {
			t.Errorf("lane %d: %v", lane, err)
		}
		stats[lane] = st
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// sweepConfigs is the cross-configuration lane set the differential
// suite batches: every machine mode at its Table 1 defaults plus the
// capacity and mechanism corners a real sweep hits (register sizes,
// replica batch, spec memory, disabled DAEC), with exact duplicates of
// the kind a sweep's zero-vs-default axes produce.
func sweepConfigs(maxInstr uint64) []Config {
	mk := func(mode Mode, mutate func(*Config)) Config {
		cfg := DefaultConfig(mode)
		cfg.MaxInstr = maxInstr
		if mutate != nil {
			mutate(&cfg)
		}
		return cfg
	}
	return []Config{
		mk(ModeScalar, nil),
		mk(ModeWideBus, nil),
		mk(ModeCI, nil),
		mk(ModeCIIW, nil),
		mk(ModeVect, nil),
		mk(ModeCI, func(c *Config) { c.PhysRegs = 512; c.WindowSize = WindowFor(512) }),
		mk(ModeCI, func(c *Config) { c.PhysRegs = 0; c.WindowSize = WindowFor(0) }),
		mk(ModeCI, func(c *Config) { c.Replicas = 8 }),
		mk(ModeCI, func(c *Config) { c.SpecMemSize = 768 }),
		mk(ModeCI, func(c *Config) { c.DisableDAEC = true }),
		mk(ModeCI, nil), // exact duplicate of lane 2
	}
}

// TestBatchedVsSequentialDifferential proves per-cell bit-identity of
// the batched lockstep engine against sequential runs: for every
// underlying engine and both workload tiers, a BatchProc over the
// sweep lane set must produce exactly the statistics each
// configuration produces alone.
func TestBatchedVsSequentialDifferential(t *testing.T) {
	skipUnlessBatchedLeg(t)
	benches := []struct {
		name     string
		maxInstr uint64
	}{
		{"gcc", 15_000},
		{"mcf", 15_000},
		{"vpr.big", 8_000},
	}
	for _, bench := range benches {
		wl, err := workload.Spec(bench.name)
		if err != nil {
			t.Fatal(err)
		}
		for engine, apply := range engineConfigs {
			t.Run(bench.name+"/"+engine, func(t *testing.T) {
				cfgs := sweepConfigs(bench.maxInstr)
				for i := range cfgs {
					apply(&cfgs[i])
				}
				batched := runBatch(t, batchLanes(t, wl, cfgs))
				for i, cfg := range cfgs {
					seq := runStats(t, wl, cfg)
					if batched[i] == nil {
						t.Fatalf("lane %d reported no stats", i)
					}
					if *batched[i] != *seq {
						t.Errorf("lane %d diverges from sequential:\nbatched:    %+v\nsequential: %+v",
							i, *batched[i], *seq)
					}
				}
			})
		}
	}
}

// TestBatchLanesRetireIndependently gives lanes wildly different
// budgets and requires each to match its sequential run and to be
// reported the moment it retires — short lanes must not wait for long
// ones.
func TestBatchLanesRetireIndependently(t *testing.T) {
	skipUnlessBatchedLeg(t)
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	budgets := []uint64{2_000, 40_000, 5_000}
	cfgs := make([]Config, len(budgets))
	for i, n := range budgets {
		cfgs[i] = DefaultConfig(ModeCI)
		cfgs[i].MaxInstr = n
	}
	bp := batchLanes(t, wl, cfgs)
	// Short rounds so the short lanes retire several frontiers before
	// the 40k lane; at the production chunk all three budgets fit in
	// round one and the order degenerates to lane order.
	bp.chunk = 1024
	var order []int
	stats := make([]*Stats, len(cfgs))
	err = bp.RunContext(context.Background(), func(lane int, st *Stats, err error) {
		if err != nil {
			t.Errorf("lane %d: %v", lane, err)
		}
		order = append(order, lane)
		stats[lane] = st
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[len(order)-1] != 1 {
		t.Errorf("completion order %v: the 40k-instruction lane must retire last", order)
	}
	for i, cfg := range cfgs {
		if seq := runStats(t, wl, cfg); *stats[i] != *seq {
			t.Errorf("lane %d diverges from sequential run", i)
		}
	}
}

// TestBatchSingleLane proves the K=1 fallback path equals a plain run.
func TestBatchSingleLane(t *testing.T) {
	skipUnlessBatchedLeg(t)
	wl, err := workload.Spec("twolf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 10_000
	batched := runBatch(t, batchLanes(t, wl, []Config{cfg}))
	if seq := runStats(t, wl, cfg); *batched[0] != *seq {
		t.Error("single-lane batch diverges from sequential run")
	}
}

// TestBatchCancellation cancels a batch mid-run: RunContext must
// return ctx.Err() and every unfinished lane must report partial but
// well-formed statistics together with the context error.
func TestBatchCancellation(t *testing.T) {
	skipUnlessBatchedLeg(t)
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]Config, 3)
	for i := range cfgs {
		cfgs[i] = DefaultConfig(ModeCI) // no budget: runs to the halt
	}
	bp := batchLanes(t, wl, cfgs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reported := 0
	err = bp.RunContext(ctx, func(lane int, st *Stats, err error) {
		reported++
		if !errors.Is(err, context.Canceled) {
			t.Errorf("lane %d: err = %v, want context.Canceled", lane, err)
		}
		if st == nil {
			t.Errorf("lane %d: canceled lane must report partial stats", lane)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if reported != len(cfgs) {
		t.Errorf("%d lanes reported, want %d", reported, len(cfgs))
	}
}

// TestBatchLaneHardError gives one lane an unreachable cycle bound so
// it fails while its sibling completes: the failed lane reports nil
// stats with its error, the sibling is unaffected, and RunContext
// surfaces the lane error.
func TestBatchLaneHardError(t *testing.T) {
	skipUnlessBatchedLeg(t)
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(ModeCI)
	bad.MaxCycles = 64 // trips long before any halt
	good := DefaultConfig(ModeCI)
	good.MaxInstr = 5_000
	bp := batchLanes(t, wl, []Config{bad, good})
	var goodStats *Stats
	err = bp.RunContext(context.Background(), func(lane int, st *Stats, err error) {
		switch lane {
		case 0:
			if st != nil || err == nil {
				t.Errorf("failed lane: stats=%v err=%v, want nil stats and an error", st, err)
			}
		case 1:
			if err != nil {
				t.Errorf("good lane: %v", err)
			}
			goodStats = st
		}
	})
	if err == nil {
		t.Fatal("RunContext must surface the lane error")
	}
	if seq := runStats(t, wl, good); goodStats == nil || *goodStats != *seq {
		t.Error("good lane diverges from its sequential run")
	}
}

// TestBatchValidation proves construction-time validation: an invalid
// lane config and mismatched image counts error eagerly, and a batch
// is single-use.
func TestBatchValidation(t *testing.T) {
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ShareProgram(wl.Program)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(ModeCI)
	bad.Replicas = -1
	if _, err := NewBatchProc(sp, []Config{bad}, []*mem.Memory{wl.NewMem()}); err == nil {
		t.Error("invalid lane config must fail NewBatchProc")
	}
	if _, err := NewBatchProc(sp, []Config{DefaultConfig(ModeCI)}, nil); err == nil {
		t.Error("mismatched config/image counts must fail")
	}
	if _, err := NewBatchProc(nil, []Config{DefaultConfig(ModeCI)}, []*mem.Memory{nil}); err == nil {
		t.Error("nil shared program must fail")
	}
	if _, err := NewBatchProc(sp, nil, nil); err == nil {
		t.Error("zero lanes must fail")
	}
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 1_000
	bp, err := NewBatchProc(sp, []Config{cfg}, []*mem.Memory{wl.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.RunContext(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := bp.RunContext(context.Background(), nil); err == nil {
		t.Error("a batch must be single-use")
	}
}
