package core

import (
	"testing"

	"civect/internal/asm"
	"civect/internal/emu"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/workload"
)

var allModes = []Mode{ModeScalar, ModeWideBus, ModeCI, ModeCIIW, ModeVect}

// runBoth runs a program to completion on both the functional emulator
// and the timing simulator and requires identical architectural state.
func runBoth(t *testing.T, cfg Config, prog *isa.Program, image *mem.Memory) *Stats {
	t.Helper()

	ref := emu.New(image.Clone())
	if err := ref.Run(prog, 50_000_000); err != nil {
		t.Fatalf("emulator: %v", err)
	}

	p, err := New(cfg, prog, image.Clone())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatalf("mode %v: %v", cfg.Mode, err)
	}

	arf := p.ARF()
	for r := 0; r < isa.NumLogical; r++ {
		if arf[r] != ref.Regs[r] {
			t.Fatalf("mode %v: R%d = %d, emulator has %d", cfg.Mode, r, arf[r], ref.Regs[r])
		}
	}
	if got, want := p.Mem().Checksum(), ref.Mem.Checksum(); got != want {
		t.Fatalf("mode %v: memory checksum %#x, emulator %#x", cfg.Mode, got, want)
	}
	return st
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig(ModeScalar)
	if c.FetchWidth != 8 || c.DecodeWidth != 8 || c.IssueWidth != 8 || c.CommitWidth != 8 {
		t.Error("pipeline widths must be 8 (Table 1)")
	}
	if c.WindowSize != 256 {
		t.Errorf("window = %d, want 256", c.WindowSize)
	}
	if c.LSQSize != 64 {
		t.Errorf("LSQ = %d, want 64", c.LSQSize)
	}
	if c.IntALUs != 6 || c.IntMulDivs != 3 {
		t.Error("FU counts must be 6 simple int + 3 mult/div (Table 1)")
	}
	if c.LatIntALU != 1 || c.LatIntMul != 2 || c.LatIntDiv != 12 {
		t.Error("FU latencies must be 1/2/12 (Table 1)")
	}
	if c.GshareEntries != 1<<16 {
		t.Errorf("gshare entries = %d, want 64K", c.GshareEntries)
	}
	if c.StrideSets != 256 || c.StrideAssoc != 4 {
		t.Error("stride predictor must be 256 sets 4-way (Table 1)")
	}
	if c.SRSMTSets != 64 || c.SRSMTAssoc != 4 {
		t.Error("SRSMT must be 64 sets 4-way (Table 1)")
	}
	if c.MBSSets != 64 || c.MBSAssoc != 4 {
		t.Error("MBS must be 64 sets 4-way (Table 1)")
	}
	if c.Hier.L1D.SizeBytes != 64<<10 || c.Hier.L1D.LineBytes != 32 {
		t.Error("L1D must be 64KB with 32B lines (Table 1)")
	}
	if c.Replicas != 4 {
		t.Errorf("default replicas = %d, want 4", c.Replicas)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestWindowFor(t *testing.T) {
	cases := map[int]int{0: 1024, 128: 256, 256: 256, 512: 512, 768: 768}
	for regs, want := range cases {
		if got := WindowFor(regs); got != want {
			t.Errorf("WindowFor(%d) = %d, want %d", regs, got, want)
		}
	}
}

func TestModeProperties(t *testing.T) {
	if ModeScalar.UsesWideBus() {
		t.Error("scal has no wide bus")
	}
	for _, m := range []Mode{ModeWideBus, ModeCI, ModeCIIW, ModeVect} {
		if !m.UsesWideBus() {
			t.Errorf("%v should use wide buses", m)
		}
	}
	if !ModeCI.Vectorizes() || !ModeVect.Vectorizes() {
		t.Error("ci and vect vectorize")
	}
	if ModeScalar.Vectorizes() || ModeWideBus.Vectorizes() || ModeCIIW.Vectorizes() {
		t.Error("scal/wb/ci-iw do not vectorize")
	}
	names := map[Mode]string{ModeScalar: "scal", ModeWideBus: "wb", ModeCI: "ci", ModeCIIW: "ci-iw", ModeVect: "vect"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(ModeCI)
	bad.PhysRegs = 64
	if bad.Validate() == nil {
		t.Error("64 regs cannot be valid")
	}
	bad = DefaultConfig(ModeCI)
	bad.Replicas = 0
	if bad.Validate() == nil {
		t.Error("0 replicas cannot be valid")
	}
}

func TestArchEquivalenceStraightLine(t *testing.T) {
	src := `
        movi r1, 7
        movi r2, 9
        add  r3, r1, r2
        mul  r4, r3, r3
        st   r4, 0x100(r0)
        ld   r5, 0x100(r0)
        sub  r6, r5, r1
        halt
`
	prog := asm.MustAssemble("straight", src)
	for _, m := range allModes {
		runBoth(t, DefaultConfig(m), prog, mem.New())
	}
}

func TestArchEquivalenceHammock(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "hamm", ArrayWords: 1 << 9, Iters: 600, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 2, Streams: 2, StoreEvery: 1, Seed: 42,
	})
	for _, m := range allModes {
		cfg := DefaultConfig(m)
		st := runBoth(t, cfg, b.Program, b.NewMem())
		if st.Committed == 0 || st.Cycles == 0 {
			t.Fatalf("mode %v: empty stats", m)
		}
	}
}

func TestArchEquivalenceSpecSubset(t *testing.T) {
	for _, name := range []string{"gcc", "mcf", "eon", "parser"} {
		b, err := workload.SpecWithIters(name, 150)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range allModes {
			runBoth(t, DefaultConfig(m), b.Program, b.NewMem())
		}
	}
}

func TestArchEquivalenceAllSpecCI(t *testing.T) {
	// Every benchmark through the full mechanism.
	for _, name := range workload.Names() {
		b, err := workload.SpecWithIters(name, 80)
		if err != nil {
			t.Fatal(err)
		}
		runBoth(t, DefaultConfig(ModeCI), b.Program, b.NewMem())
	}
}

// The central property test: random halting programs must commit
// exactly the emulator's architectural state in every machine mode.
func TestArchEquivalenceRandomPrograms(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		b := workload.Random(seed)
		for _, m := range allModes {
			cfg := DefaultConfig(m)
			runBoth(t, cfg, b.Program, b.NewMem())
		}
	}
}

func TestArchEquivalenceSmallRegisterFile(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "tiny", ArrayWords: 1 << 8, Iters: 300, TakenBias: 0.5,
		Hammocks: 1, CIOps: 4, FillerOps: 4, Streams: 2, StoreEvery: 1, Seed: 9,
	})
	for _, m := range allModes {
		cfg := DefaultConfig(m)
		cfg.PhysRegs = 128
		runBoth(t, cfg, b.Program, b.NewMem())
	}
}

func TestArchEquivalenceUnboundedRegisters(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "unb", ArrayWords: 1 << 8, Iters: 300, TakenBias: 0.55,
		Hammocks: 1, CIOps: 3, FillerOps: 2, Streams: 2, StoreEvery: 1, Seed: 10,
	})
	for _, m := range allModes {
		cfg := DefaultConfig(m)
		cfg.PhysRegs = 0
		cfg.WindowSize = WindowFor(0)
		runBoth(t, cfg, b.Program, b.NewMem())
	}
}

func TestArchEquivalenceSpecMem(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "sm", ArrayWords: 1 << 8, Iters: 400, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 2, Streams: 2, StoreEvery: 1, Seed: 11,
	})
	for _, size := range []int{128, 768} {
		cfg := DefaultConfig(ModeCI)
		cfg.SpecMemSize = size
		st := runBoth(t, cfg, b.Program, b.NewMem())
		if st.CommittedReuse > 0 && st.SpecMemCopies == 0 {
			t.Errorf("specmem %d: reuse without copies", size)
		}
	}
}

func TestReuseHappensOnHammock(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "reuse", ArrayWords: 1 << 10, Iters: 3000, TakenBias: 0.5,
		Hammocks: 1, CIOps: 3, FillerOps: 1, Streams: 2, StoreEvery: 0, Seed: 12,
	})
	cfg := DefaultConfig(ModeCI)
	cfg.MaxInstr = 60_000
	p, err := New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mispredicts == 0 {
		t.Fatal("a 0.5-bias hammock must mispredict")
	}
	if st.HardMispredicts == 0 {
		t.Error("the MBS must classify the hammock branch as hard")
	}
	if st.VectorizedEntries == 0 {
		t.Error("strided loads feeding CI work must be vectorized")
	}
	if st.ReplicasDispatched == 0 {
		t.Error("replicas must be dispatched")
	}
	if st.CommittedReuse == 0 {
		t.Error("control-independent instructions must reuse precomputed replicas")
	}
	if st.EpisodesSelected == 0 {
		t.Error("CI instructions must be selected after mispredictions")
	}
	if st.EpisodesReused == 0 {
		t.Error("some episodes must observe reuse")
	}
	if st.CISelected == 0 {
		t.Error("CI instructions must be detected")
	}
}

func TestCIIWReuses(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "iw", ArrayWords: 1 << 10, Iters: 3000, TakenBias: 0.5,
		Hammocks: 1, CIOps: 4, FillerOps: 2, Streams: 2, StoreEvery: 0, Seed: 13,
	})
	cfg := DefaultConfig(ModeCIIW)
	cfg.MaxInstr = 60_000
	p, err := New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CommittedReuse == 0 {
		t.Error("squash reuse must reuse wrong-path CI results")
	}
	if st.ReplicasDispatched != 0 {
		t.Error("ci-iw must not create replicas")
	}
}

func TestStoreConflictDetection(t *testing.T) {
	// A loop whose store writes into the region the strided load will
	// read a few iterations later: replicas run ahead and load stale
	// data, so the §2.4.3 range check must fire (and correctness hold).
	src := `
        movi r1, 0x1000   ; load pointer
        movi r2, 0x1040   ; store pointer, 8 words ahead of the loads
        movi r3, 400      ; iterations
        movi r5, 3
loop:   ld   r4, 0(r1)
        beqz r4, skip     ; hard-ish branch on loaded data
        addi r6, r6, 1
        jmp  join
skip:   addi r7, r7, 1
join:   add  r8, r8, r4   ; CI work dependent on the strided load
        st   r5, 0(r2)    ; clobber data the replicas may have read
        addi r1, r1, 8
        addi r2, r2, 8
        subi r3, r3, 1
        bnez r3, loop
        halt
`
	prog := asm.MustAssemble("conflict", src)
	image := mem.New()
	for i := 0; i < 1024; i++ {
		image.Write64(uint64(0x1000+i*8), uint64(i%2)) // alternating: hard branch
	}
	st := runBoth(t, DefaultConfig(ModeCI), prog, image)
	if st.Stores == 0 {
		t.Fatal("program stores")
	}
	// The range check may or may not fire depending on replica timing,
	// but correctness (checked by runBoth) must hold regardless; when
	// replicas exist, conflicts are likely.
	t.Logf("store conflicts: %d / %d stores, replays %d", st.StoreConflicts, st.Stores, st.Replays)
}

func TestMaxInstrBudget(t *testing.T) {
	b, err := workload.SpecWithIters("gzip", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(ModeScalar)
	cfg.MaxInstr = 5000
	p, err := New(cfg, b.Program, b.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed < 5000 || st.Committed > 5000+uint64(cfg.CommitWidth) {
		t.Errorf("committed %d, want ≈5000", st.Committed)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Cycles: 100, Committed: 250, CommittedReuse: 25,
		CondBranches: 50, Mispredicts: 5, Stores: 200, StoreConflicts: 4,
		StridedPCsSum: 17, StridedPCsCount: 10}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if s.MispredictRate() != 0.1 {
		t.Errorf("mispredict rate = %v", s.MispredictRate())
	}
	if s.ReuseFraction() != 0.1 {
		t.Errorf("reuse fraction = %v", s.ReuseFraction())
	}
	if s.StoreConflictRate() != 0.02 {
		t.Errorf("store conflict rate = %v", s.StoreConflictRate())
	}
	if s.AvgStridedPCs() != 1.7 {
		t.Errorf("avg strided PCs = %v", s.AvgStridedPCs())
	}
	var zero Stats
	if zero.IPC() != 0 || zero.MispredictRate() != 0 || zero.ReuseFraction() != 0 ||
		zero.StoreConflictRate() != 0 || zero.AvgStridedPCs() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestWideBusReducesL1DAccesses(t *testing.T) {
	b := workload.MustGenerate(workload.Params{
		Name: "wbgain", ArrayWords: 1 << 10, Iters: 2000, TakenBias: 0.9,
		Hammocks: 1, CIOps: 2, FillerOps: 0, Streams: 4, StoreEvery: 0, Seed: 14,
	})
	run := func(m Mode) *Stats {
		cfg := DefaultConfig(m)
		cfg.MaxInstr = 40_000
		p, err := New(cfg, b.Program, b.NewMem())
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	scal := run(ModeScalar)
	wb := run(ModeWideBus)
	if wb.L1D.Accesses >= scal.L1D.Accesses {
		t.Errorf("wide bus should reduce L1D accesses: wb=%d scal=%d",
			wb.L1D.Accesses, scal.L1D.Accesses)
	}
	if wb.IPC() < scal.IPC() {
		t.Errorf("wide bus should not hurt IPC: wb=%.3f scal=%.3f", wb.IPC(), scal.IPC())
	}
}
