// Package benchfmt defines the schema of the committed performance
// baseline (BENCH_core.json): per-mode/per-benchmark simulator
// throughput measurements, written by cmd/cibench and gated against by
// cmd/cigate in CI.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// SchemaVersion is the current version of the result schema. The
// committed baseline (BENCH_core.json) stays a bare array of Result
// rows for backward compatibility; richer envelopes (sim.Result)
// carry the version explicitly and bump it on breaking layout
// changes.
const SchemaVersion = 1

// Result is one measurement: simulator speed and allocation behaviour
// for a fresh simulation of Instr committed instructions, plus the
// simulated statistics that must be bit-reproducible.
type Result struct {
	Mode            string  `json:"mode"`
	Bench           string  `json:"bench"`
	Instr           uint64  `json:"sim_instrs_per_run"`
	NsPerOp         int64   `json:"ns_per_op"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	IPC             float64 `json:"ipc"`
	ReuseFraction   float64 `json:"reuse_fraction"`
}

// key identifies a measurement across files.
func (r Result) key() string { return r.Bench + "/" + r.Mode }

// Load reads a result file.
func Load(path string) ([]Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []Result
	if err := json.Unmarshal(blob, &rs); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return rs, nil
}

// Marshal renders results the way cibench writes them.
func Marshal(rs []Result) ([]byte, error) {
	blob, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// GateOptions tunes Compare.
type GateOptions struct {
	// ThroughputTolerance is the fractional slowdown in
	// sim_instrs_per_sec allowed before a row is a regression (0.15
	// allows a 15% slowdown). Speedups never fail.
	ThroughputTolerance float64
}

// Compare checks fresh measurements against the committed baseline and
// returns one human-readable problem per violated expectation (empty:
// gate passes). Throughput may regress by at most the tolerance; IPC
// and reuse fraction must match exactly (the simulator is
// deterministic, so any drift is a semantic change that belongs in a
// reviewed baseline update, not a perf run); both files must measure
// the same (bench, mode, budget) cells.
func Compare(baseline, fresh []Result, opt GateOptions) []string {
	var problems []string
	freshBy := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		if _, dup := freshBy[r.key()]; dup {
			problems = append(problems, fmt.Sprintf("%s: duplicated in fresh results", r.key()))
		}
		freshBy[r.key()] = r
	}
	seen := make(map[string]bool, len(baseline))
	for _, base := range baseline {
		if seen[base.key()] {
			problems = append(problems, fmt.Sprintf("%s: duplicated in baseline", base.key()))
		}
		seen[base.key()] = true
		f, ok := freshBy[base.key()]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from fresh results", base.key()))
			continue
		}
		if f.Instr != base.Instr {
			problems = append(problems, fmt.Sprintf("%s: budget %d differs from baseline %d (simulated stats not comparable)",
				base.key(), f.Instr, base.Instr))
			continue
		}
		if floor := base.SimInstrsPerSec * (1 - opt.ThroughputTolerance); f.SimInstrsPerSec < floor {
			problems = append(problems, fmt.Sprintf("%s: throughput %.0f sim-instrs/s below %.0f (baseline %.0f - %.0f%%)",
				base.key(), f.SimInstrsPerSec, floor, base.SimInstrsPerSec, 100*opt.ThroughputTolerance))
		}
		if !exact(f.IPC, base.IPC) {
			problems = append(problems, fmt.Sprintf("%s: IPC %v differs from baseline %v (semantic drift)",
				base.key(), f.IPC, base.IPC))
		}
		if !exact(f.ReuseFraction, base.ReuseFraction) {
			problems = append(problems, fmt.Sprintf("%s: reuse fraction %v differs from baseline %v (semantic drift)",
				base.key(), f.ReuseFraction, base.ReuseFraction))
		}
	}
	for _, r := range fresh {
		if !seen[r.key()] {
			problems = append(problems, fmt.Sprintf("%s: not in baseline (regenerate and commit BENCH_core.json)", r.key()))
		}
	}
	return problems
}

// exact compares the deterministic statistics: bit-equal up to JSON
// round-tripping (which Go's encoding preserves for float64).
func exact(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
