package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func row(mode, bench string, speed, ipc, reuse float64) Result {
	return Result{Mode: mode, Bench: bench, Instr: 30000,
		SimInstrsPerSec: speed, IPC: ipc, ReuseFraction: reuse}
}

func TestCompareClean(t *testing.T) {
	base := []Result{row("ci", "gcc", 1e6, 1.25, 0.29), row("scal", "gcc", 1.2e6, 1.28, 0)}
	fresh := []Result{row("scal", "gcc", 1.1e6, 1.28, 0), row("ci", "gcc", 0.9e6, 1.25, 0.29)}
	if p := Compare(base, fresh, GateOptions{ThroughputTolerance: 0.15}); len(p) != 0 {
		t.Errorf("clean comparison flagged problems: %v", p)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	base := []Result{row("ci", "gcc", 1e6, 1.25, 0.29)}
	fresh := []Result{row("ci", "gcc", 0.8e6, 1.25, 0.29)}
	p := Compare(base, fresh, GateOptions{ThroughputTolerance: 0.15})
	if len(p) != 1 || !strings.Contains(p[0], "throughput") {
		t.Errorf("15%% tolerance must flag a 20%% slowdown: %v", p)
	}
	// A generous tolerance passes the same slowdown.
	if p := Compare(base, fresh, GateOptions{ThroughputTolerance: 0.5}); len(p) != 0 {
		t.Errorf("50%% tolerance must pass a 20%% slowdown: %v", p)
	}
	// Speedups never fail.
	fast := []Result{row("ci", "gcc", 5e6, 1.25, 0.29)}
	if p := Compare(base, fast, GateOptions{ThroughputTolerance: 0.15}); len(p) != 0 {
		t.Errorf("speedup flagged: %v", p)
	}
}

func TestCompareExactStats(t *testing.T) {
	base := []Result{row("ci", "gcc", 1e6, 1.25, 0.29)}
	for _, fresh := range [][]Result{
		{row("ci", "gcc", 1e6, 1.2500001, 0.29)},
		{row("ci", "gcc", 1e6, 1.25, 0.291)},
	} {
		p := Compare(base, fresh, GateOptions{ThroughputTolerance: 0.15})
		if len(p) != 1 || !strings.Contains(p[0], "semantic drift") {
			t.Errorf("stat drift must be flagged exactly once: %v", p)
		}
	}
}

func TestCompareCoverage(t *testing.T) {
	base := []Result{row("ci", "gcc", 1e6, 1.25, 0.29), row("ci", "gcc.big", 1e6, 1.1, 0.01)}
	// Missing fresh row.
	p := Compare(base, []Result{row("ci", "gcc", 1e6, 1.25, 0.29)}, GateOptions{})
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Errorf("missing fresh row: %v", p)
	}
	// Extra fresh row.
	fresh := []Result{row("ci", "gcc", 1e6, 1.25, 0.29), row("ci", "gcc.big", 1e6, 1.1, 0.01),
		row("vect", "gcc", 1e6, 1.2, 0.3)}
	p = Compare(base, fresh, GateOptions{})
	if len(p) != 1 || !strings.Contains(p[0], "not in baseline") {
		t.Errorf("extra fresh row: %v", p)
	}
	// Budget mismatch invalidates the stat comparison.
	changed := []Result{row("ci", "gcc", 1e6, 1.25, 0.29), row("ci", "gcc.big", 1e6, 1.1, 0.01)}
	changed[0].Instr = 50000
	p = Compare(base, changed, GateOptions{})
	if len(p) != 1 || !strings.Contains(p[0], "budget") {
		t.Errorf("budget mismatch: %v", p)
	}
}

func TestLoadMarshalRoundTrip(t *testing.T) {
	rs := []Result{row("ci", "gcc", 1234567.89, 1.2804352464262854, 0.2944411117776445)}
	blob, err := Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != rs[0] {
		t.Errorf("round trip changed the result: %+v vs %+v", got, rs)
	}
	if p := Compare(rs, got, GateOptions{}); len(p) != 0 {
		t.Errorf("round-tripped results must gate clean: %v", p)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file must error")
	}
}
