// Package asm implements a small two-pass text assembler for the ISA.
// It exists so tests and examples can express kernels (like the paper's
// Figure 1 hammock) readably instead of as instruction literals.
//
// Syntax, one instruction per line:
//
//	; comment (also # and //)
//	loop:                 ; label definitions end with ':'
//	    movi r1, 0
//	    ld   r0, 0(r1)    ; loads/stores use disp(base)
//	    beqz r0, else     ; branch targets are labels or absolute indices
//	    addi r2, r2, 1
//	    jmp  join
//	else:
//	    addi r3, r3, 1
//	join:
//	    add  r4, r4, r0
//	    halt
//
// Register names are r0..r63 (case-insensitive). Immediates are decimal
// or 0x-prefixed hexadecimal, optionally negative.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"civect/internal/isa"
)

// Assemble translates source into a program. name becomes Program.Name.
func Assemble(name, source string) (*isa.Program, error) {
	a := &assembler{labels: make(map[string]int)}
	lines := strings.Split(source, "\n")

	// Pass 1: record label positions.
	pc := 0
	for ln, raw := range lines {
		text := stripComment(raw)
		for {
			text = strings.TrimSpace(text)
			if text == "" {
				break
			}
			if i := strings.Index(text, ":"); i >= 0 && isLabel(text[:i]) {
				label := text[:i]
				if _, dup := a.labels[label]; dup {
					return nil, fmt.Errorf("asm: line %d: duplicate label %q", ln+1, label)
				}
				a.labels[label] = pc
				text = text[i+1:]
				continue
			}
			pc++
			break
		}
	}

	// Pass 2: encode.
	code := make([]isa.Instr, 0, pc)
	for ln, raw := range lines {
		text := stripComment(raw)
		for {
			text = strings.TrimSpace(text)
			if text == "" {
				break
			}
			if i := strings.Index(text, ":"); i >= 0 && isLabel(text[:i]) {
				text = text[i+1:]
				continue
			}
			in, err := a.encode(text)
			if err != nil {
				return nil, fmt.Errorf("asm: line %d: %v", ln+1, err)
			}
			code = append(code, in)
			break
		}
	}

	p := &isa.Program{Name: name, Code: code}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for tests and examples
// with constant sources.
func MustAssemble(name, source string) *isa.Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	labels map[string]int
}

func stripComment(s string) string {
	for _, mark := range []string{";", "#", "//"} {
		if i := strings.Index(s, mark); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) encode(text string) (isa.Instr, error) {
	fields := strings.Fields(strings.ReplaceAll(text, ",", " "))
	if len(fields) == 0 {
		return isa.Instr{}, fmt.Errorf("empty instruction")
	}
	mn := strings.ToLower(fields[0])
	ops := fields[1:]

	switch mn {
	case "nop":
		return expectN(isa.Instr{Op: isa.OpNop}, ops, 0)
	case "halt":
		return expectN(isa.Instr{Op: isa.OpHalt}, ops, 0)
	case "movi":
		return a.rdImm(isa.OpMovI, ops)
	case "mov":
		return a.rdRa(isa.OpMov, ops)
	case "add", "sub", "mul", "div", "and", "or", "xor", "slt", "seq":
		return a.rdRaRb(threeRegOp(mn), ops)
	case "addi", "subi", "shli", "shri", "slti", "seqi":
		return a.rdRaImm(regImmOp(mn), ops)
	case "ld":
		return a.memOp(isa.OpLd, ops)
	case "st":
		return a.memOp(isa.OpSt, ops)
	case "beqz", "bnez":
		op := isa.OpBEQZ
		if mn == "bnez" {
			op = isa.OpBNEZ
		}
		if len(ops) != 2 {
			return isa.Instr{}, fmt.Errorf("%s wants 2 operands", mn)
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return isa.Instr{}, err
		}
		tgt, err := a.parseTarget(ops[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: op, Ra: ra, Target: tgt}, nil
	case "jmp":
		if len(ops) != 1 {
			return isa.Instr{}, fmt.Errorf("jmp wants 1 operand")
		}
		tgt, err := a.parseTarget(ops[0])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpJmp, Target: tgt}, nil
	}
	return isa.Instr{}, fmt.Errorf("unknown mnemonic %q", mn)
}

func threeRegOp(mn string) isa.Op {
	switch mn {
	case "add":
		return isa.OpAdd
	case "sub":
		return isa.OpSub
	case "mul":
		return isa.OpMul
	case "div":
		return isa.OpDiv
	case "and":
		return isa.OpAnd
	case "or":
		return isa.OpOr
	case "xor":
		return isa.OpXor
	case "slt":
		return isa.OpSLT
	case "seq":
		return isa.OpSEQ
	}
	return isa.OpNop
}

func regImmOp(mn string) isa.Op {
	switch mn {
	case "addi":
		return isa.OpAddI
	case "subi":
		return isa.OpSubI
	case "shli":
		return isa.OpShlI
	case "shri":
		return isa.OpShrI
	case "slti":
		return isa.OpSLTI
	case "seqi":
		return isa.OpSEQI
	}
	return isa.OpNop
}

func expectN(in isa.Instr, ops []string, n int) (isa.Instr, error) {
	if len(ops) != n {
		return isa.Instr{}, fmt.Errorf("%s wants %d operands, got %d", in.Op, n, len(ops))
	}
	return in, nil
}

func (a *assembler) rdImm(op isa.Op, ops []string) (isa.Instr, error) {
	if len(ops) != 2 {
		return isa.Instr{}, fmt.Errorf("%s wants 2 operands", op)
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return isa.Instr{}, err
	}
	imm, err := parseImm(ops[1])
	if err != nil {
		return isa.Instr{}, err
	}
	return isa.Instr{Op: op, Rd: rd, Imm: imm}, nil
}

func (a *assembler) rdRa(op isa.Op, ops []string) (isa.Instr, error) {
	if len(ops) != 2 {
		return isa.Instr{}, fmt.Errorf("%s wants 2 operands", op)
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return isa.Instr{}, err
	}
	ra, err := parseReg(ops[1])
	if err != nil {
		return isa.Instr{}, err
	}
	return isa.Instr{Op: op, Rd: rd, Ra: ra}, nil
}

func (a *assembler) rdRaRb(op isa.Op, ops []string) (isa.Instr, error) {
	if len(ops) != 3 {
		return isa.Instr{}, fmt.Errorf("%s wants 3 operands", op)
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return isa.Instr{}, err
	}
	ra, err := parseReg(ops[1])
	if err != nil {
		return isa.Instr{}, err
	}
	rb, err := parseReg(ops[2])
	if err != nil {
		return isa.Instr{}, err
	}
	return isa.Instr{Op: op, Rd: rd, Ra: ra, Rb: rb}, nil
}

func (a *assembler) rdRaImm(op isa.Op, ops []string) (isa.Instr, error) {
	if len(ops) != 3 {
		return isa.Instr{}, fmt.Errorf("%s wants 3 operands", op)
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return isa.Instr{}, err
	}
	ra, err := parseReg(ops[1])
	if err != nil {
		return isa.Instr{}, err
	}
	imm, err := parseImm(ops[2])
	if err != nil {
		return isa.Instr{}, err
	}
	return isa.Instr{Op: op, Rd: rd, Ra: ra, Imm: imm}, nil
}

// memOp parses "ld rD, disp(rBase)" and "st rSrc, disp(rBase)".
func (a *assembler) memOp(op isa.Op, ops []string) (isa.Instr, error) {
	if len(ops) != 2 {
		return isa.Instr{}, fmt.Errorf("%s wants 2 operands", op)
	}
	r, err := parseReg(ops[0])
	if err != nil {
		return isa.Instr{}, err
	}
	disp, base, err := parseMemRef(ops[1])
	if err != nil {
		return isa.Instr{}, err
	}
	if op == isa.OpLd {
		return isa.Instr{Op: op, Rd: r, Ra: base, Imm: disp}, nil
	}
	return isa.Instr{Op: op, Rb: r, Ra: base, Imm: disp}, nil
}

func parseMemRef(s string) (disp int64, base isa.Reg, err error) {
	open := strings.Index(s, "(")
	close := strings.Index(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q, want disp(reg)", s)
	}
	dispStr := s[:open]
	if dispStr == "" {
		dispStr = "0"
	}
	disp, err = parseImm(dispStr)
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(s[open+1 : close])
	return disp, base, err
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumLogical {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func (a *assembler) parseTarget(s string) (int, error) {
	s = strings.TrimSpace(s)
	if pc, ok := a.labels[s]; ok {
		return pc, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("unknown label or target %q", s)
	}
	return n, nil
}
