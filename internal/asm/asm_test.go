package asm

import (
	"strings"
	"testing"

	"civect/internal/isa"
)

func TestAssembleHammock(t *testing.T) {
	// The paper's Figure 1 kernel.
	src := `
        movi r1, 0
        movi r2, 0
        movi r3, 0
        movi r4, 0
loop:   ld   r0, 0(r1)
        bnez r0, else
        addi r2, r2, 1     ; then: count zeros... (inverted sense vs paper)
        jmp  join
else:   addi r3, r3, 1
join:   add  r4, r4, r0
        addi r1, r1, 8
        slti r5, r1, 400
        bnez r5, loop
        halt
`
	p, err := Assemble("hammock", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 14 {
		t.Fatalf("program length = %d, want 14", p.Len())
	}
	// "loop" label at index 4, "else" at 8, "join" at 9.
	if in := p.Code[5]; in.Op != isa.OpBNEZ || in.Target != 8 {
		t.Errorf("branch = %v, want bnez -> 8", in)
	}
	if in := p.Code[7]; in.Op != isa.OpJmp || in.Target != 9 {
		t.Errorf("jmp = %v, want jmp -> 9", in)
	}
	if in := p.Code[13]; in.Op != isa.OpHalt {
		t.Errorf("last = %v, want halt", in)
	}
	if in := p.Code[4]; in.Op != isa.OpLd || in.Rd != 0 || in.Ra != 1 || in.Imm != 0 {
		t.Errorf("load = %v", in)
	}
}

func TestAssembleAllForms(t *testing.T) {
	src := `
        nop
        movi r1, -5
        mov  r2, r1
        add  r3, r1, r2
        addi r3, r3, 0x10
        sub  r4, r3, r1
        subi r4, r4, 1
        mul  r5, r4, r4
        div  r6, r5, r4
        and  r7, r6, r5
        or   r8, r7, r6
        xor  r9, r8, r7
        shli r10, r9, 3
        shri r11, r10, 2
        slt  r12, r11, r10
        slti r13, r12, 100
        seq  r14, r13, r12
        seqi r15, r14, 1
        ld   r16, 8(r1)
        st   r16, -8(r2)
        beqz r16, 0
        bnez r16, end
        jmp  end
end:    halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{
		isa.OpNop, isa.OpMovI, isa.OpMov, isa.OpAdd, isa.OpAddI, isa.OpSub,
		isa.OpSubI, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShlI, isa.OpShrI, isa.OpSLT, isa.OpSLTI, isa.OpSEQ, isa.OpSEQI,
		isa.OpLd, isa.OpSt, isa.OpBEQZ, isa.OpBNEZ, isa.OpJmp, isa.OpHalt,
	}
	if p.Len() != len(wantOps) {
		t.Fatalf("len = %d, want %d", p.Len(), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
	if p.Code[1].Imm != -5 {
		t.Errorf("movi imm = %d, want -5", p.Code[1].Imm)
	}
	if p.Code[4].Imm != 16 {
		t.Errorf("hex imm = %d, want 16", p.Code[4].Imm)
	}
	if p.Code[19].Imm != -8 || p.Code[19].Rb != 16 || p.Code[19].Ra != 2 {
		t.Errorf("st = %+v", p.Code[19])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
; full-line comment
# another
// and another

        movi r1, 1    ; trailing
        halt          # trailing
`
	p, err := Assemble("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2", p.Len())
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	src := `
a: b:  movi r1, 1
       beqz r1, a
       bnez r1, b
       halt
`
	p, err := Assemble("m", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != 0 || p.Code[2].Target != 0 {
		t.Errorf("both labels should resolve to 0: %v %v", p.Code[1], p.Code[2])
	}
}

func TestNumericTargets(t *testing.T) {
	p, err := Assemble("n", "beqz r1, 1\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Target != 1 {
		t.Errorf("target = %d, want 1", p.Code[0].Target)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob r1, r2\nhalt", "unknown mnemonic"},
		{"bad register", "movi r99, 0\nhalt", "bad register"},
		{"bad register name", "movi x1, 0\nhalt", "bad register"},
		{"bad imm", "movi r1, zz\nhalt", "bad immediate"},
		{"unknown label", "jmp nowhere\nhalt", "unknown label"},
		{"duplicate label", "a: nop\na: nop\nhalt", "duplicate label"},
		{"operand count", "add r1, r2\nhalt", "wants 3 operands"},
		{"bad memref", "ld r1, r2\nhalt", "bad memory operand"},
		{"no halt", "nop", "no halt"},
		{"target out of range", "jmp 99\nhalt", "out of range"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.name, tc.src)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad input")
		}
	}()
	MustAssemble("bad", "frob\n")
}

// Round-trip: disassembled output of an assembled program re-assembles to
// the same instructions (labels become numeric targets, which the
// assembler accepts).
func TestRoundTrip(t *testing.T) {
	src := `
        movi r1, 0
loop:   ld   r0, 0(r1)
        beqz r0, done
        addi r1, r1, 8
        jmp  loop
done:   halt
`
	p1, err := Assemble("rt", src)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the "pc:" prefixes from the disassembly.
	var b strings.Builder
	for _, in := range p1.Code {
		b.WriteString(in.String())
		b.WriteString("\n")
	}
	p2, err := Assemble("rt2", b.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, b.String())
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("length mismatch %d vs %d", p1.Len(), p2.Len())
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Errorf("instr %d: %v vs %v", i, p1.Code[i], p2.Code[i])
		}
	}
}
