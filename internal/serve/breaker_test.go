package serve

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the breaker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	return newBreaker(cfg, clk.now), clk
}

func TestBreakerHeapWatermark(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{HeapLimitBytes: 1 << 20, Cooldown: time.Second})
	heap := uint64(512 << 10)
	b.heapInUse = func() uint64 { return heap }

	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("breaker should admit below the heap watermark")
	}

	heap = 2 << 20
	ok, reason, retryAfter := b.Allow()
	if ok {
		t.Fatal("breaker should trip above the heap watermark")
	}
	if !strings.Contains(reason, "heap in use") {
		t.Errorf("trip reason %q does not name the heap watermark", reason)
	}
	if retryAfter <= 0 || retryAfter > time.Second {
		t.Errorf("retryAfter = %v, want within the cooldown", retryAfter)
	}

	// Still open mid-cooldown even after the heap recovers: the breaker
	// holds its state, it does not flap.
	heap = 0
	clk.advance(500 * time.Millisecond)
	if ok, _, _ := b.Allow(); ok {
		t.Fatal("breaker reopened mid-cooldown")
	}

	// Cooldown over: one half-open probe is admitted, the next caller
	// is still shed until the probe reports.
	clk.advance(time.Second)
	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("breaker should admit the half-open probe after cooldown")
	}
	if ok, _, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a second caller while the probe is in flight")
	}

	// Probe succeeds: closed again, traffic flows.
	b.ObserveResult("")
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}
	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("breaker should admit freely once closed")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureLimit: 2, Cooldown: time.Second})
	b.heapInUse = func() uint64 { return 0 }

	b.ObserveResult(ClassTransient)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatalf("one failure below the limit tripped the breaker (state %s)", st)
	}
	b.ObserveResult(ClassFatal)
	st, reason := b.Snapshot()
	if st != BreakerOpen {
		t.Fatalf("state after %d consecutive failures = %s, want open", 2, st)
	}
	if !strings.Contains(reason, "consecutive job failures") {
		t.Errorf("trip reason %q does not name the failure watermark", reason)
	}

	clk.advance(2 * time.Second)
	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("breaker should admit a probe after cooldown")
	}
	// Probe fails: open again for a fresh cooldown.
	b.ObserveResult(ClassTransient)
	if st, _ := b.Snapshot(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", st)
	}
	if ok, _, _ := b.Allow(); ok {
		t.Fatal("breaker admitted traffic right after a failed probe")
	}
}

func TestBreakerQueueWaitAndNeutralCancel(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{QueueWaitLimit: 100 * time.Millisecond, FailureLimit: 1})
	b.heapInUse = func() uint64 { return 0 }

	b.ObserveQueueWait(50 * time.Millisecond)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatal("queue wait below the limit tripped the breaker")
	}

	// Cancellations are neutral: they neither trip nor reset.
	b.ObserveResult(ClassCanceled)
	if st, _ := b.Snapshot(); st != BreakerClosed {
		t.Fatal("a canceled job tripped the breaker")
	}

	b.ObserveQueueWait(250 * time.Millisecond)
	st, reason := b.Snapshot()
	if st != BreakerOpen {
		t.Fatalf("state after excessive queue wait = %s, want open", st)
	}
	if !strings.Contains(reason, "queue wait") {
		t.Errorf("trip reason %q does not name the queue-wait watermark", reason)
	}
}
