package serve_test

import (
	"context"
	"os"
	"testing"

	"civect/internal/serve"
)

func TestPreflightPasses(t *testing.T) {
	dir := t.TempDir()
	checks, err := serve.Preflight(context.Background(), serve.Config{TraceDir: dir})
	if err != nil {
		t.Fatalf("Preflight = %v\nchecks: %+v", err, checks)
	}
	want := map[string]bool{"workload-registry": false, "smoke-session": false, "trace-dir": false}
	for _, c := range checks {
		if _, known := want[c.Name]; !known {
			t.Errorf("unexpected check %q", c.Name)
			continue
		}
		want[c.Name] = true
		if !c.OK {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("check %s has no detail line", c.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("check %s never ran", name)
		}
	}
	// The trace-dir probe cleans up after itself.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("preflight left %d files in the trace dir", len(entries))
	}
}

func TestPreflightSkipsTraceDirWhenUnset(t *testing.T) {
	checks, err := serve.Preflight(context.Background(), serve.Config{})
	if err != nil {
		t.Fatalf("Preflight = %v", err)
	}
	for _, c := range checks {
		if c.Name == "trace-dir" {
			t.Error("trace-dir probe ran without a configured trace dir")
		}
	}
	if len(checks) != 2 {
		t.Errorf("ran %d checks, want 2", len(checks))
	}
}
