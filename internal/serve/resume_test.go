package serve_test

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"civect/internal/serve"
	"civect/internal/serve/servetest"
)

// TestDrainedJobResumesByteIdentical is the resumable-job contract end
// to end: a job with a checkpoint_key is cut at the drain deadline and
// persists its machine state; a fresh server over the same checkpoint
// dir accepts the same spec under the same key, resumes from the file,
// and finishes with statistics bit-identical to an uninterrupted run's.
// The checkpoint file is gone once the resumed job completes.
func TestDrainedJobResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := `{"workload":"gcc","max_instr":1500000,"checkpoint_key":"shard7"}`

	s, ts := servetest.Start(t, serve.Config{
		Workers: 1, DrainTimeout: 100 * time.Millisecond, CheckpointDir: dir,
	})
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", spec, nil)
	first := decodeView(t, b)
	waitState(t, ts.URL, first.ID, serve.StateRunning)
	if err := s.Drain(context.Background()); err == nil {
		t.Fatal("Drain = nil, want the deadline error (a 1.5M-instr job cannot finish in 100ms)")
	}
	v := waitTerminal(t, ts.URL, first.ID)
	if v.State != serve.StateCanceled || v.Result == nil || !v.Result.Partial {
		t.Fatalf("drained job = %s (result %+v), want canceled with a partial", v.State, v.Result)
	}
	cut := v.Result.Stats.Committed
	if cut == 0 || cut >= 1_500_000 {
		t.Fatalf("drained job committed %d instrs, want a strict mid-run cut", cut)
	}
	ckpt := filepath.Join(dir, "shard7.gcc.civk")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file after drain: %v", err)
	}

	// A fresh server over the same checkpoint dir: the daemon restarted.
	_, ts2 := servetest.Start(t, serve.Config{Workers: 1, CheckpointDir: dir})
	_, _, b = doJSON(t, "POST", ts2.URL+"/v1/jobs", spec, nil)
	resumed := decodeView(t, b)
	got := waitTerminal(t, ts2.URL, resumed.ID)
	if got.State != serve.StateDone || got.Result == nil || got.Result.Partial {
		t.Fatalf("resumed job = %s (error %q), want done", got.State, got.Error)
	}
	if !got.Resumed {
		t.Error("resumed job does not report resumed=true")
	}
	if got.Result.Stats.Committed <= cut {
		t.Errorf("resumed job committed %d, want more than the %d-instr cut", got.Result.Stats.Committed, cut)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint %s still exists after the resumed job completed (stat err %v)", ckpt, err)
	}

	// The reference: the same spec uninterrupted (its key has no file
	// left, so it starts fresh). Statistics must match bit for bit.
	_, _, b = doJSON(t, "POST", ts2.URL+"/v1/jobs", `{"workload":"gcc","max_instr":1500000}`, nil)
	ref := waitTerminal(t, ts2.URL, decodeView(t, b).ID)
	if ref.State != serve.StateDone || ref.Result == nil {
		t.Fatalf("reference job = %s, want done", ref.State)
	}
	if ref.Resumed {
		t.Error("reference job reports resumed=true but had no checkpoint")
	}
	if !reflect.DeepEqual(got.Result.Stats, ref.Result.Stats) {
		t.Errorf("resumed statistics differ from an uninterrupted run's:\nresumed:   %+v\nreference: %+v",
			got.Result.Stats, ref.Result.Stats)
	}
}

// TestCheckpointKeyValidation pins the admission rules: a key on a
// server without a checkpoint dir is a 400, as is a key that could
// escape the directory.
func TestCheckpointKeyValidation(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{Workers: 1})
	status, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs",
		`{"workload":"gcc","checkpoint_key":"k1"}`, nil)
	if status != http.StatusBadRequest {
		t.Errorf("checkpoint_key without -ckpt-dir: status = %d, want 400\n%s", status, b)
	}

	dir := t.TempDir()
	_, ts2 := servetest.Start(t, serve.Config{Workers: 1, CheckpointDir: dir})
	for _, key := range []string{"../escape", "a/b", ".hidden", "bad key", ""} {
		body := `{"workload":"gcc","checkpoint_key":"` + key + `"}`
		status, _, _ := doJSON(t, "POST", ts2.URL+"/v1/jobs", body, nil)
		// The empty key simply disables checkpointing: it must admit.
		want := http.StatusBadRequest
		if key == "" {
			want = http.StatusCreated
		}
		if status != want {
			t.Errorf("checkpoint_key %q: status = %d, want %d", key, status, want)
		}
	}
}

// TestResumeRejectsChangedSpec: reusing a checkpoint key with a
// different configuration must fail the job rather than silently run
// either configuration.
func TestResumeRejectsChangedSpec(t *testing.T) {
	dir := t.TempDir()
	s, ts := servetest.Start(t, serve.Config{
		Workers: 1, DrainTimeout: 100 * time.Millisecond, CheckpointDir: dir,
	})
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs",
		`{"workload":"gcc","max_instr":1500000,"checkpoint_key":"k2"}`, nil)
	first := decodeView(t, b)
	waitState(t, ts.URL, first.ID, serve.StateRunning)
	if err := s.Drain(context.Background()); err == nil {
		t.Fatal("Drain = nil, want the deadline error")
	}
	waitTerminal(t, ts.URL, first.ID)

	_, ts2 := servetest.Start(t, serve.Config{Workers: 1, CheckpointDir: dir})
	_, _, b = doJSON(t, "POST", ts2.URL+"/v1/jobs",
		`{"workload":"gcc","max_instr":1500000,"mode":"scal","checkpoint_key":"k2"}`, nil)
	v := waitTerminal(t, ts2.URL, decodeView(t, b).ID)
	if v.State != serve.StateFailed {
		t.Fatalf("changed-spec resume = %s, want failed", v.State)
	}
}
