package faultinject

import (
	"testing"
	"time"
)

// TestDecideDeterministic: the same (plan, key, attempt) triple always
// yields the same decision — the property every chaos assertion
// stands on.
func TestDecideDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, PanicRate: 0.3, SlowRate: 0.3, CancelRate: 0.3, TraceFailRate: 0.3}
	for _, key := range []string{"job-a", "job-b", "job-c"} {
		for attempt := 1; attempt <= 5; attempt++ {
			d1 := p.Decide(key, attempt)
			d2 := p.Decide(key, attempt)
			if d1 != d2 {
				t.Errorf("Decide(%q, %d) not deterministic: %+v vs %+v", key, attempt, d1, d2)
			}
		}
	}
}

// TestDecideVariesByAttempt: retries must be able to escape a fault —
// across many keys, an attempt-1 fault is not a life sentence.
func TestDecideVariesByAttempt(t *testing.T) {
	p := &Plan{Seed: 7, PanicRate: 0.5}
	escaped := 0
	for i := 0; i < 64; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if p.Decide(key, 1).Panic && !p.Decide(key, 2).Panic {
			escaped++
		}
	}
	if escaped == 0 {
		t.Error("no key ever escaped an attempt-1 panic on attempt 2; attempts are not independent")
	}
}

// TestDecideRates: a zero-rate plan injects nothing; a rate-1 plan
// faults every attempt; intermediate rates land in a wide plausible
// band.
func TestDecideRates(t *testing.T) {
	if d := (&Plan{Seed: 1}).Decide("k", 1); d.Faulted() {
		t.Errorf("zero plan injected %+v", d)
	}
	var nilPlan *Plan
	if d := nilPlan.Decide("k", 1); d.Faulted() {
		t.Errorf("nil plan injected %+v", d)
	}
	always := &Plan{Seed: 1, PanicRate: 1}
	hits, cancels := 0, 0
	half := &Plan{Seed: 99, CancelRate: 0.5}
	for i := 0; i < 200; i++ {
		key := "job-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		if always.Decide(key, 1).Panic {
			hits++
		}
		if half.Decide(key, 1).CancelAfter > 0 {
			cancels++
		}
	}
	if hits != 200 {
		t.Errorf("rate-1 panic hit %d/200 attempts", hits)
	}
	if cancels < 60 || cancels > 140 {
		t.Errorf("rate-0.5 cancel hit %d/200 attempts, far from half", cancels)
	}
}

// TestDecidePanicExcludesCancel: the two faults that would race each
// other are never injected together.
func TestDecidePanicExcludesCancel(t *testing.T) {
	p := &Plan{Seed: 3, PanicRate: 1, CancelRate: 1}
	for i := 0; i < 50; i++ {
		d := p.Decide("job-"+string(rune('a'+i)), 1)
		if d.Panic && d.CancelAfter > 0 {
			t.Fatalf("attempt got both a panic and a cancel: %+v", d)
		}
		if !d.Panic {
			t.Fatalf("rate-1 panic missing: %+v", d)
		}
	}
}

// TestParsePlan covers the flag syntax end to end.
func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,panic=0.05,slow=0.1:8ms,cancel=0.02,tracefail=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, PanicRate: 0.05, SlowRate: 0.1, SlowFor: 8 * time.Millisecond,
		CancelRate: 0.02, TraceFailRate: 0.5}
	if *p != want {
		t.Errorf("ParsePlan = %+v, want %+v", *p, want)
	}
	if p, err := ParsePlan(""); err != nil || p != nil {
		t.Errorf("empty plan = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []string{"panic", "panic=2", "panic=x", "warp=0.1", "slow=0.1:xs", "seed=-1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}
