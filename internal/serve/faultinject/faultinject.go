// Package faultinject supplies the deterministic fault hooks the serve
// daemon's chaos tests (and the ciserve -faults flag) drive. A Plan
// holds per-site fault rates and a seed; Decide maps a (job key,
// attempt) pair onto the concrete faults that attempt suffers. The
// mapping is a pure function of its inputs — no global randomness, no
// clock — so a chaos run injects exactly the same faults into exactly
// the same jobs regardless of goroutine interleaving, worker count or
// wall-clock speed, which is what lets the tests assert hard outcomes
// ("this job panics twice, then succeeds") instead of probabilistic
// ones.
//
// Fault sites, one rate knob each:
//
//   - worker panic: the attempt's observer panics mid-run, exercising
//     the sim.Batch panic recovery and the server's retry path
//   - slow job: the attempt sleeps before simulating, holding its
//     worker slot so queues back up (backpressure and queue-wait
//     watermarks become reachable in tests)
//   - mid-job cancel: the attempt's context is cancelled after a fixed
//     number of committed instructions, exactly like a client DELETE
//   - trace-write failure: the attempt's journal writer starts
//     erroring after a fixed byte count, exercising the transient
//     retry path and atomic-journal cleanup
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Plan configures the injector: a seed plus one rate in [0,1] per
// fault site. The zero value injects nothing.
type Plan struct {
	// Seed scrambles every decision; two plans with different seeds
	// fault different jobs at the same rates.
	Seed uint64
	// PanicRate is the per-attempt probability of a worker panic.
	PanicRate float64
	// SlowRate is the per-attempt probability of an artificial delay of
	// SlowFor.
	SlowRate float64
	// SlowFor is the injected delay (default 5ms when SlowRate > 0).
	SlowFor time.Duration
	// CancelRate is the per-attempt probability of a mid-job cancel.
	CancelRate float64
	// TraceFailRate is the per-attempt probability that the attempt's
	// trace journal writer fails partway through.
	TraceFailRate float64
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.PanicRate > 0 || p.SlowRate > 0 || p.CancelRate > 0 || p.TraceFailRate > 0)
}

// Decision is the set of faults one job attempt suffers. Zero-valued
// fields mean "no fault at this site".
type Decision struct {
	// Panic makes the attempt's observer panic once PanicAfter
	// instructions have committed.
	Panic bool
	// PanicAfter is the committed-instruction threshold for Panic.
	PanicAfter uint64
	// Sleep delays the attempt before it starts simulating.
	Sleep time.Duration
	// CancelAfter, when non-zero, cancels the attempt's context once
	// that many instructions have committed.
	CancelAfter uint64
	// TraceFailAfter, when non-zero, makes the attempt's journal writer
	// return errors after that many bytes.
	TraceFailAfter int
}

// Faulted reports whether the decision injects anything.
func (d Decision) Faulted() bool {
	return d.Panic || d.Sleep > 0 || d.CancelAfter > 0 || d.TraceFailAfter > 0
}

// Decide returns the faults for one attempt of the job identified by
// key. It is deterministic: the same (plan, key, attempt) triple
// always returns the same decision.
func (p *Plan) Decide(key string, attempt int) Decision {
	if !p.Enabled() {
		return Decision{}
	}
	base := mix(p.Seed ^ hashString(key) ^ uint64(attempt)*0x9e3779b97f4a7c15)
	var d Decision
	if roll(base, 1) < p.PanicRate {
		d.Panic = true
		d.PanicAfter = 500 + base%1500 // vary the blow-up point a little
	}
	if roll(base, 2) < p.SlowRate {
		d.Sleep = p.SlowFor
		if d.Sleep <= 0 {
			d.Sleep = 5 * time.Millisecond
		}
	}
	// A cancel and a panic on the same attempt would race each other;
	// the panic wins so each induced fault has one unambiguous outcome.
	if !d.Panic && roll(base, 3) < p.CancelRate {
		d.CancelAfter = 1000 + base%1000
	}
	if roll(base, 4) < p.TraceFailRate {
		d.TraceFailAfter = int(64 + base%4096)
	}
	return d
}

// roll derives an independent uniform [0,1) variate for fault site n.
func roll(base, n uint64) float64 {
	return float64(mix(base+n*0x2545f4914f6cdd1d)>>11) / (1 << 53)
}

// mix is splitmix64's finalizer: a cheap, well-distributed scrambler.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ParsePlan parses the ciserve -faults flag syntax: comma-separated
// key=value pairs, e.g.
//
//	seed=7,panic=0.05,slow=0.1:5ms,cancel=0.02,tracefail=0.05
//
// slow takes an optional :duration suffix. An empty string is the nil
// plan (no injection).
func ParsePlan(s string) (*Plan, error) {
	if s == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad pair %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "panic":
			p.PanicRate, err = parseRate(v)
		case "cancel":
			p.CancelRate, err = parseRate(v)
		case "tracefail":
			p.TraceFailRate, err = parseRate(v)
		case "slow":
			rate, dur, hasDur := strings.Cut(v, ":")
			p.SlowRate, err = parseRate(rate)
			if err == nil && hasDur {
				p.SlowFor, err = time.ParseDuration(dur)
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown fault site %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s: %v", k, err)
		}
	}
	return p, nil
}

func parseRate(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", f)
	}
	return f, nil
}
