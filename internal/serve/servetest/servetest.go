// Package servetest holds the shared harness for internal/serve's
// tests: a goroutine-leak check applied to every server test and a
// one-call Start helper that wires a serve.Server into httptest with
// teardown registered. It generalizes the leak-check idiom from
// sim/cancel_test.go so every test that starts a server — or a client
// that disconnects mid-SSE — proves it left no goroutines behind.
package servetest

import (
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"civect/internal/serve"
)

// leakTolerance absorbs runtime-owned goroutines (GC workers, netpoll)
// that come and go independently of the code under test.
const leakTolerance = 2

// leakSettle bounds how long the check waits for goroutines that are
// legitimately winding down (closed connections, worker exits) before
// declaring a leak.
const leakSettle = 5 * time.Second

// Goroutines samples the goroutine count with a little settling time.
func Goroutines() int {
	for i := 0; i < 10; i++ {
		runtime.Gosched()
	}
	return runtime.NumGoroutine()
}

// CheckLeaks records the current goroutine count and registers a
// cleanup that fails the test if, after everything else torn down, the
// count has not settled back. Call it first in a test so the cleanup
// runs last (cleanups are LIFO) — after the server and any clients
// have been shut down.
func CheckLeaks(t *testing.T) {
	t.Helper()
	before := Goroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettle)
		after := Goroutines()
		for after > before+leakTolerance && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			after = Goroutines()
		}
		if after > before+leakTolerance {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
	})
}

// Start builds a serve.Server from cfg, serves its handler over
// httptest, and registers teardown (HTTP server first, then a forced
// serve.Server close) plus the goroutine-leak check. Logf defaults to
// t.Logf so operational lines land in the test log.
func Start(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	CheckLeaks(t)
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}
