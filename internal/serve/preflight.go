package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"civect/internal/trace"
	"civect/sim"
)

// Check is one preflight probe's outcome.
type Check struct {
	// Name identifies the probe.
	Name string `json:"name"`
	// OK reports whether it passed.
	OK bool `json:"ok"`
	// Detail is a human line: what was verified, or what failed.
	Detail string `json:"detail"`
	// Elapsed is the probe's wall time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Preflight is the doctor-style startup check: it verifies the pieces
// the daemon depends on actually work in this process and environment
// before the listener opens — the workload registry resolves and
// generates, a real smoke session simulates end to end, and the trace
// directory (when configured) accepts an atomic journal. ciserve runs
// it at startup (refusing to serve on failure) and exposes it as
// `ciserve -doctor`.
func Preflight(ctx context.Context, cfg Config) ([]Check, error) {
	cfg = cfg.withDefaults()
	var checks []Check
	failed := false
	run := func(name string, probe func() (string, error)) {
		t0 := time.Now()
		detail, err := probe()
		c := Check{Name: name, OK: err == nil, Detail: detail, Elapsed: time.Since(t0)}
		if err != nil {
			c.Detail = err.Error()
			failed = true
		}
		checks = append(checks, c)
	}

	run("workload-registry", func() (string, error) {
		names := sim.Workloads()
		if len(names) == 0 {
			return "", fmt.Errorf("workload registry is empty")
		}
		// Resolving one workload per tier proves generation works
		// without paying for the whole registry's big tier up front.
		base, big := sim.BaseWorkloads(), sim.BigWorkloads()
		if len(base) == 0 || len(big) == 0 {
			return "", fmt.Errorf("registry missing a tier: %d base, %d big", len(base), len(big))
		}
		if _, err := sim.Load(base[0]); err != nil {
			return "", fmt.Errorf("loading %s: %w", base[0], err)
		}
		return fmt.Sprintf("%d workloads registered, %s loads", len(names), base[0]), nil
	})

	run("smoke-session", func() (string, error) {
		w, err := sim.Load("gcc")
		if err != nil {
			return "", err
		}
		s, err := sim.New(w, sim.WithMode(sim.CI), sim.WithInstrBudget(2_000))
		if err != nil {
			return "", err
		}
		res, err := s.Run(ctx)
		if err != nil {
			return "", err
		}
		if res.Stats.Committed < 2_000 || res.Stats.IPC() <= 0 {
			return "", fmt.Errorf("smoke session ill-formed: committed=%d ipc=%v",
				res.Stats.Committed, res.Stats.IPC())
		}
		return fmt.Sprintf("gcc/ci simulated %d instrs, IPC %.3f", res.Stats.Committed, res.Stats.IPC()), nil
	})

	if cfg.TraceDir != "" {
		run("trace-dir", func() (string, error) {
			if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
				return "", err
			}
			probe := filepath.Join(cfg.TraceDir, "preflight.civt")
			af, err := trace.NewAtomicFile(probe)
			if err != nil {
				return "", err
			}
			if _, err := af.Write([]byte("CIVT-preflight")); err != nil {
				af.Abort()
				return "", err
			}
			if err := af.Commit(); err != nil {
				return "", err
			}
			if err := os.Remove(probe); err != nil {
				return "", err
			}
			return fmt.Sprintf("%s accepts atomic journals", cfg.TraceDir), nil
		})
	}

	if cfg.CheckpointDir != "" {
		run("checkpoint-dir", func() (string, error) {
			if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
				return "", err
			}
			probe := filepath.Join(cfg.CheckpointDir, "preflight.civk")
			if err := os.WriteFile(probe, []byte("CIVK-preflight"), 0o644); err != nil {
				return "", err
			}
			if err := os.Remove(probe); err != nil {
				return "", err
			}
			return fmt.Sprintf("%s accepts checkpoint files", cfg.CheckpointDir), nil
		})
	}

	if failed {
		return checks, fmt.Errorf("serve: preflight failed")
	}
	return checks, nil
}
