package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"civect/sim"
)

// Class buckets every failure the daemon can see into the error
// taxonomy docs/SERVICE.md documents. The class decides both the HTTP
// status a failure surfaces as and whether the job is retried.
type Class string

const (
	// ClassBadRequest marks errors that are the client's fault — a
	// malformed spec, an unknown workload, an out-of-range parameter.
	// Never retried; surfaces as HTTP 400 at submission.
	ClassBadRequest Class = "bad_request"
	// ClassTransient marks errors that plausibly would not recur on a
	// retry: a recovered worker panic, a trace-journal write failure, an
	// injected fault. Retried per the server's RetryPolicy; a job whose
	// attempts are exhausted fails with this class.
	ClassTransient Class = "transient"
	// ClassCanceled marks runs cut short deliberately: a client DELETE,
	// an injected mid-job cancel, or a drain deadline. Never retried;
	// the job keeps its partial result.
	ClassCanceled Class = "canceled"
	// ClassFatal marks everything else: bugs and unrecoverable internal
	// failures. Never retried; surfaces as HTTP 500 on the job.
	ClassFatal Class = "fatal"
)

// transientError marks a wrapped error retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient implements the marker interface Classify recognizes.
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so Classify returns ClassTransient for it
// (nil stays nil).
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// badRequestError marks a wrapped error as the client's fault.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// BadRequest implements the marker interface Classify recognizes.
func (e *badRequestError) BadRequest() bool { return true }

// markBadRequest wraps err so Classify returns ClassBadRequest for it.
func markBadRequest(err error) error {
	if err == nil {
		return nil
	}
	return &badRequestError{err}
}

// badRequestf builds a fresh client-fault error.
func badRequestf(format string, args ...any) error {
	return markBadRequest(fmt.Errorf(format, args...))
}

// Classify maps an error onto its Class. Explicit markers win; then
// recovered panics and context cancellations are recognized by type;
// everything unidentified is fatal, the conservative default (an
// unknown failure must not be retried blindly, and must not be blamed
// on the client).
func Classify(err error) Class {
	if err == nil {
		return ""
	}
	var br interface{ BadRequest() bool }
	if errors.As(err, &br) && br.BadRequest() {
		return ClassBadRequest
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) && tr.Transient() {
		return ClassTransient
	}
	var pe *sim.PanicError
	if errors.As(err, &pe) {
		// A panic in one attempt is isolated to that attempt; the next
		// one starts from a fresh session, so retrying is sound.
		return ClassTransient
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	return ClassFatal
}

// RetryPolicy bounds the transient-error retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per job, first included
	// (minimum 1).
	MaxAttempts int
	// Backoff returns the delay before retry attempt n (n >= 2). Nil
	// uses DefaultBackoff.
	Backoff func(attempt int) time.Duration
}

// DefaultRetryPolicy tries three times with short exponential backoff —
// enough to ride out one-off faults without holding a worker slot
// hostage.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, Backoff: DefaultBackoff}
}

// DefaultBackoff is 10ms doubling per attempt: 10ms before attempt 2,
// 20ms before attempt 3, ...
func DefaultBackoff(attempt int) time.Duration {
	d := 10 * time.Millisecond
	for i := 2; i < attempt; i++ {
		d *= 2
	}
	return d
}

// shouldRetry reports whether a failed attempt is followed by another,
// and the delay before it.
func (p RetryPolicy) shouldRetry(class Class, attempt int) (time.Duration, bool) {
	if class != ClassTransient || attempt >= p.MaxAttempts {
		return 0, false
	}
	if p.Backoff == nil {
		return DefaultBackoff(attempt + 1), true
	}
	return p.Backoff(attempt + 1), true
}
