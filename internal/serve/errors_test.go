package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"civect/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ""},
		{"transient-marker", MarkTransient(errors.New("blip")), ClassTransient},
		{"transient-wrapped", fmt.Errorf("outer: %w", MarkTransient(errors.New("blip"))), ClassTransient},
		{"bad-request-marker", badRequestf("no such knob"), ClassBadRequest},
		{"panic", &sim.PanicError{Value: "boom"}, ClassTransient},
		{"panic-wrapped", fmt.Errorf("job: %w", &sim.PanicError{Value: "boom"}), ClassTransient},
		{"canceled", context.Canceled, ClassCanceled},
		{"deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), ClassCanceled},
		{"unknown", errors.New("mystery"), ClassFatal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestRetryPolicy(t *testing.T) {
	p := DefaultRetryPolicy()
	if d, retry := p.shouldRetry(ClassTransient, 1); !retry || d != 10*time.Millisecond {
		t.Errorf("attempt 1 transient: retry=%v backoff=%v, want retry after 10ms", retry, d)
	}
	if d, retry := p.shouldRetry(ClassTransient, 2); !retry || d != 20*time.Millisecond {
		t.Errorf("attempt 2 transient: retry=%v backoff=%v, want retry after 20ms", retry, d)
	}
	if _, retry := p.shouldRetry(ClassTransient, 3); retry {
		t.Error("attempt 3 of 3 retried past MaxAttempts")
	}
	for _, class := range []Class{ClassBadRequest, ClassCanceled, ClassFatal} {
		if _, retry := p.shouldRetry(class, 1); retry {
			t.Errorf("%s retried; only transients should retry", class)
		}
	}
}
