package serve

import (
	"testing"
)

func publishN(h *hub, n int) {
	for i := 0; i < n; i++ {
		h.publish(Event{Type: EventProgress, Data: i})
	}
}

func TestHubReplayAndLive(t *testing.T) {
	h := newHub()
	publishN(h, 5)

	replay, sub := h.subscribe(2)
	defer h.unsubscribe(sub)
	if len(replay) != 3 {
		t.Fatalf("replay after seq 2 returned %d events, want 3", len(replay))
	}
	for i, ev := range replay {
		if want := uint64(3 + i); ev.Seq != want {
			t.Errorf("replay[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}

	h.publish(Event{Type: EventState, Data: "running"})
	ev := <-sub.ch
	if ev.Seq != 6 || ev.Type != EventState {
		t.Fatalf("live event = %+v, want seq 6 state", ev)
	}
}

func TestHubHistoryRingBounded(t *testing.T) {
	h := newHub()
	publishN(h, historyCap+50)

	replay, sub := h.subscribe(0)
	h.unsubscribe(sub)
	if len(replay) != historyCap {
		t.Fatalf("history holds %d events, want capped at %d", len(replay), historyCap)
	}
	// The ring keeps the most recent events: first retained seq is 51.
	if first := replay[0].Seq; first != 51 {
		t.Errorf("oldest retained seq = %d, want 51", first)
	}
	if last := replay[len(replay)-1].Seq; last != uint64(historyCap+50) {
		t.Errorf("newest retained seq = %d, want %d", last, historyCap+50)
	}
}

func TestHubSlowSubscriberLags(t *testing.T) {
	h := newHub()
	_, sub := h.subscribe(0)
	defer h.unsubscribe(sub)

	// Overflow the subscriber queue without draining it.
	publishN(h, subBuffer+10)

	// Drain: the buffered events arrive intact...
	for i := 0; i < subBuffer; i++ {
		ev := <-sub.ch
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	// ...and the next publish first reports the gap.
	h.publish(Event{Type: EventProgress, Data: "after"})
	ev := <-sub.ch
	if ev.Type != EventLagged {
		t.Fatalf("post-overflow event type = %s, want %s", ev.Type, EventLagged)
	}
	if dropped := ev.Data.(uint64); dropped != 10 {
		t.Errorf("lagged event reports %d dropped, want 10", dropped)
	}
	ev = <-sub.ch
	if ev.Type != EventProgress || ev.Data != "after" {
		t.Fatalf("event after the gap = %+v, want the fresh publish", ev)
	}
}

func TestHubClose(t *testing.T) {
	h := newHub()
	_, sub := h.subscribe(0)
	publishN(h, 2)
	h.close()
	h.close() // idempotent

	// The buffered events drain, then the channel reports closed.
	for i := 0; i < 2; i++ {
		if _, open := <-sub.ch; !open {
			t.Fatal("channel closed before buffered events drained")
		}
	}
	if _, open := <-sub.ch; open {
		t.Fatal("channel still open after hub close")
	}

	// Post-close publishes are dropped, post-close subscriptions see a
	// closed channel after replay.
	h.publish(Event{Type: EventProgress})
	replay, late := h.subscribe(0)
	if len(replay) != 2 {
		t.Fatalf("post-close replay returned %d events, want 2", len(replay))
	}
	if _, open := <-late.ch; open {
		t.Fatal("post-close subscriber channel not closed")
	}
}
