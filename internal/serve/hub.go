package serve

import (
	"sync"
)

// Event types streamed over a job's SSE feed.
const (
	// EventState announces a state transition; data is the new state.
	EventState = "state"
	// EventProgress carries the aggregated observer taps: cycle,
	// committed instructions, reuse and commit-batch totals, jumps.
	EventProgress = "progress"
	// EventResult is the terminal event: the job's View, result
	// included, emitted exactly once before the stream ends.
	EventResult = "result"
	// EventLagged tells a slow subscriber that events were dropped
	// between what it saw and what follows; data is the dropped count.
	EventLagged = "lagged"
)

// Event is one SSE feed entry. Seq numbers are per-job, monotonically
// increasing from 1, and double as SSE event ids.
type Event struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	Data any    `json:"data"`
}

// Progress is the payload of EventProgress: the coalesced commit-batch
// and progress observer taps since the run began.
type Progress struct {
	// Cycle and Committed are the session's position.
	Cycle     uint64 `json:"cycle"`
	Committed uint64 `json:"committed"`
	// Reused counts committed instructions whose results were reused
	// (the mechanism's headline effect), summed over all commit batches.
	Reused uint64 `json:"reused"`
	// CommitBatches counts OnCommitBatch taps (one per committing
	// cycle).
	CommitBatches uint64 `json:"commit_batches"`
	// Jumps counts fast-forward cycle jumps the engine took.
	Jumps uint64 `json:"jumps"`
	// Attempt is the job attempt these figures belong to; retries reset
	// the counters with a fresh session.
	Attempt int `json:"attempt"`
}

// hub fans a job's events out to any number of subscribers, decoupling
// the worker (which must never block on a slow client) from SSE
// handlers. A bounded history ring lets late subscribers replay what
// they missed; a subscriber that falls further behind than its buffer
// is told so with EventLagged rather than silently losing events or
// stalling the publisher.
type hub struct {
	mu      sync.Mutex
	nextSeq uint64
	// history is a bounded ring of the most recent events (cap
	// historyCap); histStart is the Seq of its first entry.
	history []Event
	subs    map[*subscriber]struct{}
	closed  bool
}

// historyCap bounds per-job event retention. Progress events arrive at
// a controlled cadence, so this covers the whole feed of typical jobs
// while capping memory on pathological ones.
const historyCap = 256

// subscriber is one SSE connection's queue.
type subscriber struct {
	ch chan Event
	// dropped counts events lost to a full queue since the last
	// successful delivery; reported via EventLagged.
	dropped uint64
}

// subBuffer bounds each subscriber's in-flight queue.
const subBuffer = 64

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// publish appends an event to the history and offers it to every
// subscriber without ever blocking: a subscriber with a full queue
// accumulates a dropped count that is surfaced as EventLagged once its
// queue has room again.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.nextSeq++
	ev.Seq = h.nextSeq
	if len(h.history) == historyCap {
		copy(h.history, h.history[1:])
		h.history = h.history[:historyCap-1]
	}
	h.history = append(h.history, ev)
	for s := range h.subs {
		if s.dropped > 0 {
			// Try to tell the subscriber about the gap first; until that
			// fits, keep counting.
			select {
			case s.ch <- Event{Seq: ev.Seq, Type: EventLagged, Data: s.dropped}:
				s.dropped = 0
			default:
				s.dropped++
				continue
			}
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped++
		}
	}
}

// subscribe registers a new subscriber and returns the replay of
// history events with Seq > afterSeq, followed by the live queue. The
// caller must unsubscribe when done.
func (h *hub) subscribe(afterSeq uint64) (replay []Event, s *subscriber) {
	s = &subscriber{ch: make(chan Event, subBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ev := range h.history {
		if ev.Seq > afterSeq {
			replay = append(replay, ev)
		}
	}
	if !h.closed {
		h.subs[s] = struct{}{}
	} else {
		close(s.ch)
	}
	return replay, s
}

// unsubscribe removes s; its channel is not closed (the subscriber owns
// draining it).
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// close marks the feed complete and closes every subscriber channel:
// after the history replay, SSE handlers see end-of-stream.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}
