package serve_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"civect/internal/serve"
	"civect/internal/serve/servetest"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	ID   uint64
	Type string
	Data string
}

// readSSE parses frames off an event stream until the stream ends or
// max frames arrive.
func readSSE(t *testing.T, r *bufio.Reader, max int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for len(events) < max {
		line, err := r.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.Type != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.ID, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
		case strings.HasPrefix(line, "event: "):
			cur.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.Data = line[len("data: "):]
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		}
	}
	return events
}

func openStream(t *testing.T, url string, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	return resp
}

// TestSSEStream subscribes before the job finishes and checks the feed
// carries progress, the terminal state, and always ends with the
// result event.
func TestSSEStream(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{Workers: 1, ProgressEvery: 1000})

	// Park a long job on the single worker so the subscription below is
	// in place before the real job starts producing events.
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":50000000}`, nil)
	occupier := decodeView(t, b)
	_, _, b = doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":30000}`, nil)
	job := decodeView(t, b)

	resp := openStream(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "")
	defer resp.Body.Close()
	doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+occupier.ID, "", nil)

	events := readSSE(t, bufio.NewReader(resp.Body), 1000)
	if len(events) == 0 {
		t.Fatal("event stream delivered nothing")
	}
	last := events[len(events)-1]
	if last.Type != serve.EventResult {
		t.Fatalf("stream ended with %q, want the result event", last.Type)
	}
	var final serve.View
	if err := json.Unmarshal([]byte(last.Data), &final); err != nil {
		t.Fatalf("decoding result event: %v", err)
	}
	if final.State != serve.StateDone || final.Result == nil || final.Result.Stats.Committed < 30000 {
		t.Fatalf("result event view = state %s, want the finished job", final.State)
	}

	var progress, state int
	var lastSeq uint64
	for _, ev := range events[:len(events)-1] {
		if ev.ID <= lastSeq {
			t.Fatalf("event ids not increasing: %d after %d", ev.ID, lastSeq)
		}
		lastSeq = ev.ID
		switch ev.Type {
		case serve.EventProgress:
			progress++
		case serve.EventState:
			state++
			if ev.Data != `"done"` {
				t.Errorf("state event data = %s, want \"done\"", ev.Data)
			}
		}
	}
	if progress < 10 {
		t.Errorf("saw %d progress events, want >= 10 for a 30k-instr job at cadence 1000", progress)
	}
	if state != 1 {
		t.Errorf("saw %d state events, want exactly the terminal one", state)
	}
}

// TestSSEReplay connects after the job finished (full history replay)
// and again with Last-Event-ID, which must skip everything already
// seen.
func TestSSEReplay(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{ProgressEvery: 1000})
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":20000}`, nil)
	job := decodeView(t, b)
	waitTerminal(t, ts.URL, job.ID)

	resp := openStream(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "")
	full := readSSE(t, bufio.NewReader(resp.Body), 1000)
	resp.Body.Close()
	if len(full) < 3 {
		t.Fatalf("full replay returned %d events, want the whole history + result", len(full))
	}
	if full[len(full)-1].Type != serve.EventResult {
		t.Fatal("replayed stream does not end with the result event")
	}

	// Resume from the third-to-last seq: only the later events replay.
	resumeAt := full[len(full)-3].ID
	resp = openStream(t, ts.URL+"/v1/jobs/"+job.ID+"/events", strconv.FormatUint(resumeAt, 10))
	tail := readSSE(t, bufio.NewReader(resp.Body), 1000)
	resp.Body.Close()
	for _, ev := range tail {
		if ev.ID != 0 && ev.ID <= resumeAt {
			t.Errorf("resumed stream replayed seq %d, at or before Last-Event-ID %d", ev.ID, resumeAt)
		}
	}
	if got := len(tail); got != 2 {
		t.Errorf("resumed stream returned %d events, want exactly seq>%d plus the result", got, resumeAt)
	}
}

// TestSSEClientDisconnect hangs up mid-stream; the handler must tear
// its subscription down and leave no goroutine behind (asserted by the
// harness leak check), and the job must keep running to completion.
func TestSSEClientDisconnect(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{ProgressEvery: 500})
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":2000000}`, nil)
	job := decodeView(t, b)

	resp := openStream(t, ts.URL+"/v1/jobs/"+job.ID+"/events", "")
	rd := bufio.NewReader(resp.Body)
	// Prove the stream is live, then vanish without warning.
	if events := readSSE(t, rd, 2); len(events) < 1 {
		t.Fatal("no events before the disconnect")
	}
	resp.Body.Close()

	// The job keeps running to completion; the leak check registered by
	// servetest.Start fails the test if the handler goroutine survives.
	v := waitTerminal(t, ts.URL, job.ID)
	if v.State != serve.StateDone {
		t.Fatalf("job finished %s after subscriber disconnect, want done", v.State)
	}
}
