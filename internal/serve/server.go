// Package serve implements the civect simulation-as-a-service daemon
// behind cmd/ciserve: an HTTP API that accepts simulation jobs as
// JSON, runs them on a bounded worker pool over the public civect/sim
// façade, streams progress over SSE, and serves the results.
//
// Production hardening is the point of the package, and every
// mechanism is explicit:
//
//   - admission control: a bounded queue answers 429 + Retry-After
//     when full, and a circuit breaker sheds load with 503 when
//     memory, queue-wait or failure watermarks trip
//   - idempotency: a submission carrying an Idempotency-Key replays
//     the original job instead of re-simulating
//   - error taxonomy: every failure is classified bad_request /
//     transient / canceled / fatal; transients are retried with
//     backoff, and a recovered worker panic is a per-job error, never
//     a process crash
//   - graceful drain: Drain stops admissions (503), lets in-flight
//     jobs finish — or checkpoints their partial results at the drain
//     deadline — and only then shuts the listener down
//   - resumable jobs: with a checkpoint dir configured, a job carrying
//     a checkpoint_key saves its full machine state when cut short,
//     and resubmitting the same spec under the same key continues from
//     that state — the final statistics are bit-identical to an
//     uninterrupted run's
//   - auditability: a job may attach a cycle-trace journal, written
//     atomically so the artifact directory never holds a truncated
//     file
//
// Deterministic fault injection for all of the above lives in
// serve/faultinject; the chaos test in this package drives it.
//
// The package deliberately lives outside the simulator's deterministic
// core: it uses wall-clock time, timers and racing selects freely, and
// is therefore excluded from the civet nodeterm analyzer's default
// package set (see internal/lint/nodeterm). Determinism of simulation
// *results* is untouched — the daemon only orchestrates sessions, and
// the chaos test asserts byte-identical statistics under full
// concurrency and fault load.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"civect/internal/serve/faultinject"
	"civect/internal/trace"
	"civect/sim"
)

// Config tunes the daemon. The zero value is usable: every field
// defaults to the documented value.
type Config struct {
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// A full queue is backpressure: submissions get 429 + Retry-After.
	QueueDepth int
	// Workers bounds concurrently running simulations (default
	// GOMAXPROCS).
	Workers int
	// DefaultInstr is the committed-instruction budget for specs that
	// leave max_instr zero (default 200k, matching cisim).
	DefaultInstr uint64
	// MaxInstrPerJob rejects specs whose budget exceeds it (default
	// 50M): one client must not be able to park a worker for hours.
	MaxInstrPerJob uint64
	// Retry is the transient-failure retry policy (default 3 attempts,
	// exponential backoff).
	Retry RetryPolicy
	// Breaker configures the load-shedding circuit breaker.
	Breaker BreakerConfig
	// TraceDir, when set, enables per-job cycle-trace journals: a job
	// submitted with trace=true gets <TraceDir>/<jobID>.civt, written
	// atomically on success.
	TraceDir string
	// CheckpointDir, when set, enables resumable jobs: a job submitted
	// with a checkpoint_key saves its state to
	// <CheckpointDir>/<key>.<workload>.civk when cut short (drain
	// deadline, cancel), and a later job with the same key and spec
	// resumes from that state instead of starting over. The file is
	// removed when the job completes.
	CheckpointDir string
	// ProgressEvery is the committed-instruction cadence of progress
	// events (default 25000).
	ProgressEvery uint64
	// DrainTimeout bounds how long Drain waits for in-flight jobs
	// before cancelling them into partial results (default 30s).
	DrainTimeout time.Duration
	// Faults enables deterministic fault injection (tests and chaos
	// drills only; nil in production).
	Faults *faultinject.Plan
	// Logf receives operational log lines (default log.Printf; tests
	// inject t.Logf or a no-op).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultInstr == 0 {
		c.DefaultInstr = 200_000
	}
	if c.MaxInstrPerJob == 0 {
		c.MaxInstrPerJob = 50_000_000
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry = DefaultRetryPolicy()
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 25_000
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Metrics are the server's monotonic operational counters, rendered in
// /healthz. All fields are atomics; read them with Load.
type Metrics struct {
	Submitted       atomic.Uint64 // jobs admitted into the queue
	Replayed        atomic.Uint64 // idempotent replays served
	Done            atomic.Uint64 // jobs finished successfully
	Failed          atomic.Uint64 // jobs finished failed
	Canceled        atomic.Uint64 // jobs finished canceled
	Retries         atomic.Uint64 // attempts beyond each job's first
	PanicsRecovered atomic.Uint64 // worker panics turned into job errors
	ShedQueueFull   atomic.Uint64 // submissions answered 429
	ShedBreaker     atomic.Uint64 // submissions answered 503 (breaker)
	ShedDraining    atomic.Uint64 // submissions answered 503 (drain)
}

// Server is the daemon: a job registry, a bounded queue, a worker
// pool and the HTTP handler over them. Create with New, serve
// Handler(), stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	metrics Metrics

	// rootCtx cancels every running session on forced shutdown.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	// admitMu serializes admissions against the drain flip: Drain takes
	// the write lock to flip draining and close the queue, so no sender
	// can race the close.
	admitMu  sync.RWMutex
	draining bool
	queue    chan *Job

	jobsMu sync.Mutex
	jobs   map[string]*Job
	byKey  map[string]*Job
	nextID atomic.Uint64

	inflight atomic.Int64
	breaker  *breaker
	batch    *sim.Batch
	workerWG sync.WaitGroup
	started  time.Time
}

// New builds and starts a server: workers are running and the handler
// is ready. It does not listen on a socket — that is the caller's
// (cmd/ciserve's or httptest's) job.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		rootCtx:    ctx,
		rootCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		breaker:    newBreaker(cfg.Breaker, nil),
		batch:      sim.NewBatch(cfg.Workers),
		started:    time.Now(),
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Config returns the server's configuration with defaults applied.
func (s *Server) Config() Config { return s.cfg }

// Metrics exposes the server's counters (primarily for tests; HTTP
// clients read them via /healthz).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// submit runs the admission pipeline for one resolved job request:
// drain gate, idempotency replay, breaker, then the bounded queue.
// The returned replayed flag distinguishes a fresh admission (201)
// from an idempotent replay (200).
func (s *Server) submit(spec JobSpec, key string, w *sim.Workload, opts []sim.Option) (j *Job, replayed bool, err error) {
	// Idempotency first: replaying a known key must work even while
	// draining or shedding — the client is asking about work already
	// admitted, not for new work.
	if key != "" {
		s.jobsMu.Lock()
		j = s.byKey[key]
		s.jobsMu.Unlock()
		if j != nil {
			s.metrics.Replayed.Add(1)
			return j, true, nil
		}
	}

	if ok, reason, retryAfter := s.breaker.Allow(); !ok {
		s.metrics.ShedBreaker.Add(1)
		return nil, false, &overloadedError{reason: "circuit breaker open: " + reason, retryAfter: retryAfter}
	}

	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining {
		s.metrics.ShedDraining.Add(1)
		return nil, false, errDraining
	}

	id := fmt.Sprintf("j%d", s.nextID.Add(1))
	j = &Job{
		ID: id, Key: key, Spec: spec, w: w, opts: opts,
		state: StateQueued, submitted: time.Now(),
		hub: newHub(), done: make(chan struct{}),
	}

	s.jobsMu.Lock()
	if key != "" {
		// Two racing submissions with the same key: the one that
		// registered first wins, the loser replays it.
		if prior := s.byKey[key]; prior != nil {
			s.jobsMu.Unlock()
			s.metrics.Replayed.Add(1)
			return prior, true, nil
		}
		s.byKey[key] = j
	}
	s.jobs[id] = j
	s.jobsMu.Unlock()

	select {
	case s.queue <- j:
		s.metrics.Submitted.Add(1)
		return j, false, nil
	default:
		// Queue full: back out the registration entirely so the client
		// can retry the same idempotency key later.
		s.jobsMu.Lock()
		delete(s.jobs, id)
		if key != "" && s.byKey[key] == j {
			delete(s.byKey, key)
		}
		s.jobsMu.Unlock()
		s.metrics.ShedQueueFull.Add(1)
		return nil, false, errQueueFull
	}
}

// job looks up a job by ID.
func (s *Server) job(id string) *Job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

// jobViews snapshots every job, sorted by numeric ID ("j10" after
// "j9") so the listing is deterministic.
func (s *Server) jobViews() []View {
	s.jobsMu.Lock()
	views := make([]View, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.View())
	}
	s.jobsMu.Unlock()
	sort.Slice(views, func(a, b int) bool {
		na, _ := strconv.Atoi(views[a].ID[1:])
		nb, _ := strconv.Atoi(views[b].ID[1:])
		return na < nb
	})
	return views
}

// worker drains the queue until it closes (drain) or the root context
// dies (forced close).
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// errShutdown marks jobs cut short because the server is going away.
var errShutdown = errors.New("serve: shutting down")

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// runJob drives one job through the attempt/retry loop to a terminal
// state.
func (s *Server) runJob(j *Job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	s.breaker.ObserveQueueWait(time.Since(j.View().SubmittedAt))

	if s.rootCtx.Err() != nil {
		j.finish(StateCanceled, nil, errShutdown, ClassCanceled)
		s.metrics.Canceled.Add(1)
		s.breaker.ObserveResult(ClassCanceled)
		return
	}

	for attempt := 1; ; attempt++ {
		ctx, cancel := context.WithCancel(s.rootCtx)
		if !j.setRunning(attempt, cancel) {
			// Cancelled while queued (or between attempts).
			cancel()
			j.finish(StateCanceled, nil, context.Canceled, ClassCanceled)
			s.metrics.Canceled.Add(1)
			s.breaker.ObserveResult(ClassCanceled)
			return
		}
		if attempt > 1 {
			s.metrics.Retries.Add(1)
		}

		res, err := s.runAttempt(ctx, j, attempt)
		cancel()
		if err == nil {
			j.finish(StateDone, res, nil, "")
			s.metrics.Done.Add(1)
			s.breaker.ObserveResult("")
			return
		}

		class := Classify(err)
		var pe *sim.PanicError
		if errors.As(err, &pe) {
			s.metrics.PanicsRecovered.Add(1)
			s.cfg.Logf("serve: job %s attempt %d panicked (recovered): %v", j.ID, attempt, pe.Value)
		}
		if class == ClassCanceled {
			// Keep the partial result: it is a well-formed checkpoint of
			// everything simulated before the cut.
			j.finish(StateCanceled, res, err, ClassCanceled)
			s.metrics.Canceled.Add(1)
			s.breaker.ObserveResult(ClassCanceled)
			return
		}
		if backoff, retry := s.cfg.Retry.shouldRetry(class, attempt); retry {
			s.cfg.Logf("serve: job %s attempt %d failed (%s), retrying in %v: %v",
				j.ID, attempt, class, backoff, err)
			select {
			case <-time.After(backoff):
				continue
			case <-s.rootCtx.Done():
				j.finish(StateCanceled, nil, errShutdown, ClassCanceled)
				s.metrics.Canceled.Add(1)
				s.breaker.ObserveResult(ClassCanceled)
				return
			}
		}
		s.cfg.Logf("serve: job %s failed after %d attempt(s) (%s): %v", j.ID, attempt, class, err)
		j.finish(StateFailed, nil, err, class)
		s.metrics.Failed.Add(1)
		s.breaker.ObserveResult(class)
		return
	}
}

// runAttempt executes one session for the job, wiring in the progress
// observer, the optional trace journal and the fault injector. On
// cancellation it returns the partial result with the context error.
func (s *Server) runAttempt(ctx context.Context, j *Job, attempt int) (*sim.Result, error) {
	d := s.cfg.Faults.Decide(j.Key+"/"+j.ID, attempt)
	if d.Sleep > 0 {
		select {
		case <-time.After(d.Sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	ctx, cancelSelf := context.WithCancel(ctx)
	defer cancelSelf()
	obs := &jobObserver{job: j, attempt: attempt, panicAfter: d.PanicAfter,
		cancelAfter: d.CancelAfter, cancel: cancelSelf}

	opts := append(append([]sim.Option(nil), j.opts...),
		sim.WithObserver(obs, s.cfg.ProgressEvery))

	// A checkpoint_key makes the job resumable: the session saves its
	// state under the key when cut short, and an existing file under the
	// key means a prior job was cut there — continue it instead of
	// starting over. The file name embeds the workload so a key reused
	// across workloads can never resume the wrong program; the sim layer
	// rejects a resume whose options disagree with the checkpointed
	// configuration, covering every other spec axis.
	ckptPath := ""
	if j.Spec.CheckpointKey != "" {
		ckptPath = filepath.Join(s.cfg.CheckpointDir, j.Spec.CheckpointKey+"."+j.Spec.Workload+".civk")
		opts = append(opts, sim.WithCheckpoint(ckptPath, 0))
	}

	var af *trace.AtomicFile
	if j.Spec.Trace {
		path := filepath.Join(s.cfg.TraceDir, j.ID+".civt")
		var err error
		af, err = trace.NewAtomicFile(path)
		if err != nil {
			return nil, MarkTransient(err)
		}
		defer af.Abort() // no-op once committed
		var tw traceWriter = af
		if d.TraceFailAfter > 0 {
			tw = &failingWriter{w: af, failAfter: d.TraceFailAfter}
		}
		opts = append(opts, sim.WithTrace(tw))
		if j.Spec.TraceLevel != "" {
			lvl, err := sim.ParseTraceLevel(j.Spec.TraceLevel)
			if err != nil {
				return nil, markBadRequest(err) // unreachable: resolve validated it
			}
			opts = append(opts, sim.WithTraceLevel(lvl))
		}
		if j.Spec.TraceFirst != 0 || j.Spec.TraceLast != 0 {
			opts = append(opts, sim.WithTraceWindow(j.Spec.TraceFirst, j.Spec.TraceLast))
		}
	}

	var res *sim.Result
	var err error
	if ckptPath != "" && fileExists(ckptPath) {
		j.setResumed()
		res, err = s.batch.Resume(ctx, ckptPath, opts...)
	} else {
		res, err = s.batch.Run(ctx, j.w, opts...)
	}
	if err != nil {
		if res != nil && !res.Partial {
			// The simulation itself completed; only the journal's seal
			// failed (sim.Session.Run's one complete-result error path).
			// The artifact is gone but the work is repeatable: transient.
			return nil, MarkTransient(err)
		}
		return res, err
	}
	if af != nil {
		if cerr := af.Commit(); cerr != nil {
			return nil, MarkTransient(cerr)
		}
		j.setTracePath(filepath.Join(s.cfg.TraceDir, j.ID+".civt"))
	}
	return res, nil
}

// Drain gracefully shuts the job layer down: new submissions are
// refused with 503, queued and in-flight jobs get until the configured
// DrainTimeout (or ctx's deadline, whichever is sooner) to finish, and
// whatever is still running at the deadline is cancelled so each such
// job checkpoints a well-formed partial result. Drain returns nil if
// everything finished on its own, or ctx/deadline errors when jobs had
// to be cut; either way the workers have exited when it returns.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // safe: admissions hold admitMu.RLock
	}
	s.admitMu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(workersDone)
	}()

	timeout := time.NewTimer(s.cfg.DrainTimeout)
	defer timeout.Stop()
	var cutErr error
	select {
	case <-workersDone:
	case <-ctx.Done():
		cutErr = ctx.Err()
	case <-timeout.C:
		cutErr = fmt.Errorf("serve: drain timeout %v elapsed", s.cfg.DrainTimeout)
	}
	if cutErr != nil {
		// Deadline: cancel every in-flight session. They stop at the
		// next cycle boundary and finish as canceled with partial
		// results; the workers then exit on the closed queue.
		s.rootCancel()
		<-workersDone
	}
	return cutErr
}

// Close force-stops the server: running sessions are cancelled and the
// workers drained. For a graceful stop use Drain.
func (s *Server) Close() {
	s.admitMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.admitMu.Unlock()
	s.rootCancel()
	s.workerWG.Wait()
}

// jobObserver is the per-attempt sim.Observer: it coalesces the commit
// batch taps into counters and publishes a progress event at the
// registered cadence. The fault injector's panic and mid-run-cancel
// sites piggyback on it, so an injected worker panic originates
// exactly where a buggy user observer would.
type jobObserver struct {
	job     *Job
	attempt int

	committedBatches uint64
	reused           uint64
	jumps            uint64

	panicAfter  uint64
	cancelAfter uint64
	cancel      context.CancelFunc
}

// OnCommitBatch implements sim.Observer.
func (o *jobObserver) OnCommitBatch(cycle uint64, committed, reused int) {
	o.committedBatches++
	o.reused += uint64(reused)
}

// OnCycleJump implements sim.Observer.
func (o *jobObserver) OnCycleJump(from, to uint64) { o.jumps++ }

// OnProgress implements sim.Observer.
func (o *jobObserver) OnProgress(cycle, committed uint64) {
	if o.panicAfter > 0 && committed >= o.panicAfter {
		panic(fmt.Sprintf("faultinject: worker panic at %d committed", committed))
	}
	if o.cancelAfter > 0 && committed >= o.cancelAfter {
		o.cancelAfter = 0
		o.cancel()
	}
	o.job.hub.publish(Event{Type: EventProgress, Data: Progress{
		Cycle: cycle, Committed: committed, Reused: o.reused,
		CommitBatches: o.committedBatches, Jumps: o.jumps, Attempt: o.attempt,
	}})
}

// traceWriter is the io.Writer subset the trace sink needs; named so
// the failing wrapper reads clearly.
type traceWriter interface{ Write([]byte) (int, error) }

// failingWriter injects a trace-write failure after failAfter bytes.
type failingWriter struct {
	w         traceWriter
	written   int
	failAfter int
}

var errInjectedTraceWrite = MarkTransient(errors.New("faultinject: injected trace write failure"))

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written >= f.failAfter {
		return 0, errInjectedTraceWrite
	}
	f.written += len(p)
	return f.w.Write(p)
}
