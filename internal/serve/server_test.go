package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"civect/internal/serve"
	"civect/internal/serve/faultinject"
	"civect/internal/serve/servetest"
	"civect/sim"
)

// doJSON issues one request and returns the status, headers and body.
func doJSON(t *testing.T, method, url, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func decodeView(t *testing.T, b []byte) serve.View {
	t.Helper()
	var v serve.View
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decoding job view: %v\n%s", err, b)
	}
	return v
}

// errClass extracts the class field of an error envelope.
func errClass(t *testing.T, b []byte) serve.Class {
	t.Helper()
	var e struct {
		Error string      `json:"error"`
		Class serve.Class `json:"class"`
	}
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("decoding error envelope: %v\n%s", err, b)
	}
	return e.Class
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, baseURL, id string) serve.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status, _, b := doJSON(t, "GET", baseURL+"/v1/jobs/"+id, "", nil)
		if status != http.StatusOK {
			t.Fatalf("GET job %s: status %d\n%s", id, status, b)
		}
		v := decodeView(t, b)
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state in time", id)
	return serve.View{}
}

// waitState polls a job until it reaches the given state.
func waitState(t *testing.T, baseURL, id string, want serve.State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, _, b := doJSON(t, "GET", baseURL+"/v1/jobs/"+id, "", nil)
		v := decodeView(t, b)
		if v.State == want {
			return
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s while waiting for %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
}

// statsJSON renders a stats block for byte-identical comparison.
func statsJSON(t *testing.T, st sim.Stats) []byte {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// serialStats runs the same simulation the server would, serially in
// this goroutine, and returns its stats block.
func serialStats(t *testing.T, workload string, opts ...sim.Option) sim.Stats {
	t.Helper()
	w, err := sim.Load(workload)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{Workers: 2})

	status, hdr, b := doJSON(t, "POST", ts.URL+"/v1/jobs",
		`{"workload":"gcc","max_instr":5000}`, nil)
	if status != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201\n%s", status, b)
	}
	v := decodeView(t, b)
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, v.ID)
	}

	v = waitTerminal(t, ts.URL, v.ID)
	if v.State != serve.StateDone {
		t.Fatalf("job finished %s (error %q), want done", v.State, v.Error)
	}
	if v.Result == nil || v.Result.Partial {
		t.Fatalf("done job result = %+v, want a complete result", v.Result)
	}
	if v.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", v.Attempts)
	}

	// The daemon must not perturb the simulation: its stats are
	// byte-identical to a serial run of the same configuration.
	ref := serialStats(t, "gcc",
		sim.WithMode(sim.CI), sim.WithEngine(sim.EngineFastForward),
		sim.WithPorts(1), sim.WithRegs(256), sim.WithSpecMem(0),
		sim.WithInstrBudget(5000))
	if got, want := statsJSON(t, v.Result.Stats), statsJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("served stats differ from the serial run:\n got %s\nwant %s", got, want)
	}

	// The listing includes the job; /healthz counted it.
	status, _, b = doJSON(t, "GET", ts.URL+"/v1/jobs", "", nil)
	if status != http.StatusOK || !strings.Contains(string(b), `"`+v.ID+`"`) {
		t.Errorf("job listing (status %d) missing %s:\n%s", status, v.ID, b)
	}
	if done := s.Metrics().Done.Load(); done != 1 {
		t.Errorf("metrics done = %d, want 1", done)
	}
}

func TestSubmitBadRequests(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{MaxInstrPerJob: 10_000})

	cases := []struct {
		name, body string
	}{
		{"invalid-json", `{"workload":`},
		{"unknown-field", `{"workload":"gcc","warp_factor":9}`},
		{"missing-workload", `{}`},
		{"unknown-workload", `{"workload":"doom"}`},
		{"bad-mode", `{"workload":"gcc","mode":"warp"}`},
		{"bad-engine", `{"workload":"gcc","engine":"imaginary"}`},
		{"bad-regs", `{"workload":"gcc","regs":-7}`},
		{"budget-over-limit", `{"workload":"gcc","max_instr":100000}`},
		{"trace-without-dir", `{"workload":"gcc","trace":true}`},
		{"trace-level-without-trace", `{"workload":"gcc","trace_level":"full"}`},
		{"bad-trace-window", `{"workload":"gcc","trace":true,"trace_first":100,"trace_last":5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", tc.body, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400\n%s", status, b)
			}
			if class := errClass(t, b); class != serve.ClassBadRequest {
				t.Errorf("error class = %q, want %q", class, serve.ClassBadRequest)
			}
		})
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{})
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/jobs/j999"},
		{"DELETE", "/v1/jobs/j999"},
		{"GET", "/v1/jobs/j999/events"},
	} {
		status, _, b := doJSON(t, req.method, ts.URL+req.path, "", nil)
		if status != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404\n%s", req.method, req.path, status, b)
		}
	}
}

func TestIdempotencyReplay(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{})
	hdr := map[string]string{"Idempotency-Key": "pr-8-determinism-run"}

	status, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":3000}`, hdr)
	if status != http.StatusCreated {
		t.Fatalf("first submit status = %d, want 201\n%s", status, b)
	}
	first := decodeView(t, b)
	done := waitTerminal(t, ts.URL, first.ID)

	// The replay returns the original job — same ID, result included —
	// with 200 instead of 201, and does not run anything new.
	status, _, b = doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":3000}`, hdr)
	if status != http.StatusOK {
		t.Fatalf("replay status = %d, want 200\n%s", status, b)
	}
	replay := decodeView(t, b)
	if replay.ID != first.ID {
		t.Errorf("replay returned job %s, want original %s", replay.ID, first.ID)
	}
	if replay.State != serve.StateDone || replay.Result == nil {
		t.Errorf("replay state = %s (result %v), want the finished original", replay.State, replay.Result != nil)
	}
	if got, want := statsJSON(t, replay.Result.Stats), statsJSON(t, done.Result.Stats); !bytes.Equal(got, want) {
		t.Errorf("replayed result differs from the original")
	}
	if rep := s.Metrics().Replayed.Load(); rep != 1 {
		t.Errorf("metrics replayed = %d, want 1", rep)
	}
	if sub := s.Metrics().Submitted.Load(); sub != 1 {
		t.Errorf("metrics submitted = %d, want 1 (the replay must not admit a second job)", sub)
	}
}

func TestQueueFullBackpressureAndCancel(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{Workers: 1, QueueDepth: 1})

	// Occupy the single worker with a long job, then fill the
	// depth-1 queue.
	long := `{"workload":"gcc","max_instr":50000000}`
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", long, nil)
	occupier := decodeView(t, b)
	waitState(t, ts.URL, occupier.ID, serve.StateRunning)
	_, _, b = doJSON(t, "POST", ts.URL+"/v1/jobs", long, nil)
	queued := decodeView(t, b)

	// The next submission hits the full queue: 429 with Retry-After.
	status, hdr, b := doJSON(t, "POST", ts.URL+"/v1/jobs", long, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit status = %d, want 429\n%s", status, b)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive whole-second value", hdr.Get("Retry-After"))
	}
	if class := errClass(t, b); class != serve.ClassTransient {
		t.Errorf("429 error class = %q, want transient", class)
	}
	if shed := s.Metrics().ShedQueueFull.Load(); shed != 1 {
		t.Errorf("metrics shed_queue_full = %d, want 1", shed)
	}

	// Cancel the queued job first, while the worker is still occupied:
	// it must finish canceled without ever running.
	status, _, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+queued.ID, "", nil)
	if status != http.StatusAccepted {
		t.Fatalf("cancel queued job status = %d, want 202", status)
	}

	// Cancel the running job: 202, then terminal canceled with a
	// well-formed partial checkpoint.
	status, _, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+occupier.ID, "", nil)
	if status != http.StatusAccepted {
		t.Fatalf("cancel running job status = %d, want 202", status)
	}
	v := waitTerminal(t, ts.URL, occupier.ID)
	if v.State != serve.StateCanceled || v.ErrorClass != serve.ClassCanceled {
		t.Fatalf("cancelled job state = %s class %s, want canceled/canceled", v.State, v.ErrorClass)
	}
	if v.Result == nil || !v.Result.Partial || v.Result.Stats.Committed == 0 {
		t.Errorf("cancelled running job result = %+v, want a non-empty partial checkpoint", v.Result)
	}

	v = waitTerminal(t, ts.URL, queued.ID)
	if v.State != serve.StateCanceled {
		t.Fatalf("cancelled queued job state = %s, want canceled", v.State)
	}
	if v.Result != nil {
		t.Errorf("queued job never ran but has a result")
	}

	// Cancelling a terminal job is an idempotent 200.
	status, _, _ = doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+queued.ID, "", nil)
	if status != http.StatusOK {
		t.Errorf("cancel of terminal job status = %d, want 200", status)
	}
}

func TestPanicRecoveryRetriesAndBreaker(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{
		Workers: 1,
		// The injector's panic site is the progress observer, so the
		// cadence must land inside the 5k budget.
		ProgressEvery: 500,
		Retry:         serve.RetryPolicy{MaxAttempts: 3, Backoff: func(int) time.Duration { return time.Millisecond }},
		Breaker:       serve.BreakerConfig{FailureLimit: 1, Cooldown: time.Hour},
		Faults:        &faultinject.Plan{Seed: 7, PanicRate: 1},
	})

	// Every attempt's observer panics; the panic is recovered into a
	// per-job error, retried as transient, and the job fails after the
	// retry budget — the process survives.
	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":5000}`, nil)
	v := waitTerminal(t, ts.URL, decodeView(t, b).ID)
	if v.State != serve.StateFailed || v.ErrorClass != serve.ClassTransient {
		t.Fatalf("job state = %s class %s, want failed/transient", v.State, v.ErrorClass)
	}
	if !strings.Contains(v.Error, "panicked") {
		t.Errorf("job error %q does not mention the recovered panic", v.Error)
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want the full retry budget of 3", v.Attempts)
	}
	if got := s.Metrics().PanicsRecovered.Load(); got != 3 {
		t.Errorf("metrics panics_recovered = %d, want 3", got)
	}
	if got := s.Metrics().Retries.Load(); got != 2 {
		t.Errorf("metrics retries = %d, want 2", got)
	}

	// FailureLimit 1: that failure opened the breaker, so the next
	// submission is shed with 503 + Retry-After...
	status, hdr, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":5000}`, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit with open breaker status = %d, want 503\n%s", status, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("breaker 503 carries no Retry-After")
	}
	if shed := s.Metrics().ShedBreaker.Load(); shed != 1 {
		t.Errorf("metrics shed_breaker = %d, want 1", shed)
	}

	// ...and /healthz reports overloaded with the trip reason.
	status, _, b = doJSON(t, "GET", ts.URL+"/healthz", "", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with open breaker status = %d, want 503", status)
	}
	var h serve.Health
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "overloaded" || h.Breaker != serve.BreakerOpen || h.BreakerReason == "" {
		t.Errorf("health = %+v, want overloaded with an open breaker and a reason", h)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := servetest.Start(t, serve.Config{Workers: 3, QueueDepth: 17})
	status, _, b := doJSON(t, "GET", ts.URL+"/healthz", "", nil)
	if status != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200\n%s", status, b)
	}
	var h serve.Health
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Breaker != serve.BreakerClosed {
		t.Errorf("health = %+v, want ok with a closed breaker", h)
	}
	if h.Workers != 3 || h.QueueCap != 17 {
		t.Errorf("health reports %d workers, queue cap %d; want 3 and 17", h.Workers, h.QueueCap)
	}
}

func TestTraceArtifact(t *testing.T) {
	dir := t.TempDir()
	_, ts := servetest.Start(t, serve.Config{TraceDir: dir})

	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs",
		`{"workload":"gcc","max_instr":3000,"trace":true,"trace_level":"commits"}`, nil)
	v := waitTerminal(t, ts.URL, decodeView(t, b).ID)
	if v.State != serve.StateDone {
		t.Fatalf("trace job finished %s (error %q), want done", v.State, v.Error)
	}
	if v.TracePath == "" {
		t.Fatal("done trace job has no trace_path")
	}
	data, err := os.ReadFile(v.TracePath)
	if err != nil {
		t.Fatalf("reading journal artifact: %v", err)
	}
	if !bytes.HasPrefix(data, []byte("CIVT")) {
		t.Errorf("journal artifact does not start with the CIVT magic: %q", data[:8])
	}
}
