package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// errQueueFull is the backpressure signal: the bounded queue has no
// room, the client should retry after a short wait (HTTP 429).
var errQueueFull = errors.New("serve: job queue full")

// errDraining refuses submissions during graceful shutdown (HTTP 503).
var errDraining = errors.New("serve: draining, not accepting new jobs")

// overloadedError is the circuit breaker's shed signal (HTTP 503).
type overloadedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *overloadedError) Error() string { return "serve: overloaded: " + e.reason }

// maxBodyBytes bounds request bodies: a job spec is a few hundred
// bytes, so anything above a megabyte is hostile or broken.
const maxBodyBytes = 1 << 20

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	Class Class  `json:"class"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a job (JobSpec body, optional Idempotency-Key header)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status + result
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /healthz             liveness + operational counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, class Class, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Class: class})
}

// retryAfterHeader renders a Retry-After value in whole seconds,
// rounded up so "retry after 300ms" does not read as "now".
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, ClassBadRequest, "invalid job spec: "+err.Error())
		return
	}
	wl, opts, err := spec.resolve(&s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, ClassBadRequest, err.Error())
		return
	}

	j, replayed, err := s.submit(spec, r.Header.Get("Idempotency-Key"), wl, opts)
	switch {
	case err == nil:
		status := http.StatusCreated
		if replayed {
			status = http.StatusOK
		} else {
			w.Header().Set("Location", "/v1/jobs/"+j.ID)
		}
		writeJSON(w, status, j.View())
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", retryAfterHeader(time.Second))
		writeError(w, http.StatusTooManyRequests, ClassTransient, err.Error())
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, ClassTransient, err.Error())
	default:
		var oe *overloadedError
		if errors.As(err, &oe) {
			w.Header().Set("Retry-After", retryAfterHeader(oe.retryAfter))
			writeError(w, http.StatusServiceUnavailable, ClassTransient, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, ClassFatal, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []View `json:"jobs"`
	}{s.jobViews()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ClassBadRequest, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ClassBadRequest, "unknown job "+r.PathValue("id"))
		return
	}
	// Idempotent: cancelling a terminal job just reports its state.
	if j.requestCancel() {
		writeJSON(w, http.StatusAccepted, j.View())
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// Health is the /healthz payload.
type Health struct {
	// Status is ok, draining or overloaded.
	Status string `json:"status"`
	// Queue and workers occupancy.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	Inflight int `json:"inflight"`
	Workers  int `json:"workers"`
	// Breaker state and, when tripped, the watermark that did it.
	Breaker       BreakerState `json:"breaker"`
	BreakerReason string       `json:"breaker_reason,omitempty"`
	// Counters since start.
	Submitted       uint64 `json:"submitted"`
	Replayed        uint64 `json:"replayed"`
	Done            uint64 `json:"done"`
	Failed          uint64 `json:"failed"`
	Canceled        uint64 `json:"canceled"`
	Retries         uint64 `json:"retries"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	ShedQueueFull   uint64 `json:"shed_queue_full"`
	ShedBreaker     uint64 `json:"shed_breaker"`
	ShedDraining    uint64 `json:"shed_draining"`
	// UptimeSeconds since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// health snapshots the server for /healthz (and tests).
func (s *Server) health() (Health, int) {
	bstate, breason := s.breaker.Snapshot()
	h := Health{
		Status:   "ok",
		QueueLen: len(s.queue), QueueCap: s.cfg.QueueDepth,
		Inflight: int(s.inflight.Load()), Workers: s.cfg.Workers,
		Breaker: bstate, BreakerReason: breason,
		Submitted: s.metrics.Submitted.Load(), Replayed: s.metrics.Replayed.Load(),
		Done: s.metrics.Done.Load(), Failed: s.metrics.Failed.Load(),
		Canceled: s.metrics.Canceled.Load(), Retries: s.metrics.Retries.Load(),
		PanicsRecovered: s.metrics.PanicsRecovered.Load(),
		ShedQueueFull:   s.metrics.ShedQueueFull.Load(),
		ShedBreaker:     s.metrics.ShedBreaker.Load(),
		ShedDraining:    s.metrics.ShedDraining.Load(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
	}
	status := http.StatusOK
	switch {
	case s.Draining():
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case bstate == BreakerOpen:
		h.Status = "overloaded"
		status = http.StatusServiceUnavailable
	}
	return h, status
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h, status := s.health()
	writeJSON(w, status, h)
}
