package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// sseHeartbeat is the comment-ping cadence that keeps intermediaries
// from timing the stream out and lets the handler notice dead clients.
const sseHeartbeat = 15 * time.Second

// handleEvents streams a job's event feed as Server-Sent Events. The
// stream replays history (from the Last-Event-ID header's sequence
// number onward, when a reconnecting client sends one), follows with
// live events, and always ends with a `result` event carrying the
// terminal job view — a subscriber can never miss the outcome, even if
// it was too slow for intermediate events (those surface as a `lagged`
// event instead of blocking the simulation's worker). Client
// disconnects tear the subscription down promptly; the server holds no
// goroutines for gone clients.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ClassBadRequest, "unknown job "+r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, ClassFatal, "response writer cannot stream")
		return
	}

	var afterSeq uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			afterSeq = n
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	replay, sub := j.hub.subscribe(afterSeq)
	defer j.hub.unsubscribe(sub)

	for _, ev := range replay {
		if !writeSSE(w, ev) {
			return
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Feed complete: deliver the authoritative outcome and
				// end the stream.
				writeSSE(w, Event{Type: EventResult, Data: j.View()})
				fl.Flush()
				return
			}
			if !writeSSE(w, ev) {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in wire format; false means the client is
// gone.
func writeSSE(w http.ResponseWriter, ev Event) bool {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		data = []byte(strconv.Quote("marshal error: " + err.Error()))
	}
	if ev.Seq != 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
			return false
		}
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err == nil
}
