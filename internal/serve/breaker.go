package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState string

// The three classic breaker states.
const (
	// BreakerClosed: traffic flows normally.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the server sheds new submissions (503) until the
	// cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; one probe job is admitted
	// to test the water. Its success closes the breaker, its failure
	// reopens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig tunes the load-shedding circuit breaker. The breaker
// exists for failure modes backpressure alone cannot handle: memory
// pressure from in-flight jobs (a full queue bounds *count*, not
// *bytes* — big-tier workloads hold multi-MB working sets), sustained
// queue waits (jobs admitted only to sit past their usefulness), and
// failure storms (every worker slot burning retries on a sick
// dependency).
type BreakerConfig struct {
	// HeapLimitBytes trips the breaker when the live heap exceeds it
	// (0 disables the memory watermark).
	HeapLimitBytes uint64
	// QueueWaitLimit trips the breaker when a dequeued job waited
	// longer than this for a worker (0 disables).
	QueueWaitLimit time.Duration
	// FailureLimit trips the breaker after that many consecutive
	// exhausted-or-fatal job failures (0 disables).
	FailureLimit int
	// Cooldown is how long the breaker stays open before a half-open
	// probe (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// breaker implements the circuit breaker. The clock and the heap
// reader are injected so tests drive it deterministically.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time
	// heapInUse returns the live heap size; the default samples
	// runtime.ReadMemStats at most once per memSamplePeriod since it
	// briefly stops the world.
	heapInUse func() uint64

	mu         sync.Mutex
	state      BreakerState
	reason     string
	openedAt   time.Time
	failures   int // consecutive job failures
	probing    bool
	lastSample time.Time
	lastHeap   uint64
}

// memSamplePeriod bounds how often the default heap reader pays for a
// ReadMemStats.
const memSamplePeriod = 250 * time.Millisecond

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	b := &breaker{cfg: cfg.withDefaults(), now: now, state: BreakerClosed}
	if b.now == nil {
		b.now = time.Now
	}
	return b
}

// sampleHeap returns the live heap, memoized for memSamplePeriod.
// Callers hold b.mu.
func (b *breaker) sampleHeap() uint64 {
	if b.heapInUse != nil {
		return b.heapInUse()
	}
	if now := b.now(); now.Sub(b.lastSample) >= memSamplePeriod {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.lastHeap = ms.HeapAlloc
		b.lastSample = now
	}
	return b.lastHeap
}

// Allow decides whether one new submission may be admitted right now.
// When it returns false, reason names the watermark that tripped and
// retryAfter is the client's suggested wait.
func (b *breaker) Allow() (ok bool, reason string, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.HeapLimitBytes > 0 && b.state == BreakerClosed {
		if h := b.sampleHeap(); h > b.cfg.HeapLimitBytes {
			b.tripLocked(fmt.Sprintf("heap in use %d bytes exceeds limit %d", h, b.cfg.HeapLimitBytes))
		}
	}
	switch b.state {
	case BreakerClosed:
		return true, "", 0
	case BreakerOpen:
		since := b.now().Sub(b.openedAt)
		if since < b.cfg.Cooldown {
			return false, b.reason, b.cfg.Cooldown - since
		}
		// Cooldown over: move to half-open and admit one probe.
		b.state = BreakerHalfOpen
		b.probing = true
		return true, "", 0
	default: // BreakerHalfOpen
		if b.probing {
			// The probe is still in flight; keep shedding until it
			// reports.
			return false, b.reason, b.cfg.Cooldown
		}
		b.probing = true
		return true, "", 0
	}
}

// ObserveQueueWait feeds the breaker the queue wait of a job a worker
// just picked up.
func (b *breaker) ObserveQueueWait(wait time.Duration) {
	if b.cfg.QueueWaitLimit <= 0 || wait <= b.cfg.QueueWaitLimit {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed {
		b.tripLocked(fmt.Sprintf("queue wait %v exceeds limit %v", wait, b.cfg.QueueWaitLimit))
	}
}

// ObserveResult feeds the breaker a finished job's outcome. Canceled
// jobs are neutral: a client hanging up says nothing about server
// health.
func (b *breaker) ObserveResult(class Class) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch class {
	case "", ClassCanceled:
		if class == "" {
			b.failures = 0
			if b.state == BreakerHalfOpen {
				// The probe came back healthy.
				b.state = BreakerClosed
				b.reason = ""
				b.probing = false
			}
		}
	default:
		b.failures++
		if b.state == BreakerHalfOpen {
			// The probe failed: reopen for another cooldown.
			b.probing = false
			b.tripLocked("half-open probe failed: " + string(class))
			return
		}
		if b.cfg.FailureLimit > 0 && b.failures >= b.cfg.FailureLimit && b.state == BreakerClosed {
			b.tripLocked(fmt.Sprintf("%d consecutive job failures", b.failures))
		}
	}
}

// tripLocked opens the breaker. Callers hold b.mu.
func (b *breaker) tripLocked(reason string) {
	b.state = BreakerOpen
	b.reason = reason
	b.openedAt = b.now()
	b.failures = 0
}

// Snapshot returns the breaker's state and trip reason for /healthz.
func (b *breaker) Snapshot() (BreakerState, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.reason
}
