package serve

import (
	"context"
	"sync"
	"time"

	"civect/sim"
)

// JobSpec is the JSON body of POST /v1/jobs: one simulation request,
// mirroring the axes cisim exposes as flags. Zero values take the same
// defaults cisim uses (mode ci, engine fast-forward, 1 port, 256 regs,
// the server's default instruction budget).
type JobSpec struct {
	// Workload is the registry benchmark name (either tier). Required.
	Workload string `json:"workload"`
	// Mode is the machine mode: scal, wb, ci, ci-iw, vect.
	Mode string `json:"mode,omitempty"`
	// Engine is the simulation engine: fast-forward, event, naive.
	Engine string `json:"engine,omitempty"`
	// Ports is the L1D port count.
	Ports int `json:"ports,omitempty"`
	// Regs is the physical register file size (-1 requests the
	// unbounded file, since 0 means "default").
	Regs int `json:"regs,omitempty"`
	// Replicas per vectorized instruction.
	Replicas int `json:"replicas,omitempty"`
	// StridedPCs propagated per rename entry.
	StridedPCs int `json:"strided_pcs,omitempty"`
	// SpecMem positions (0 = none).
	SpecMem int `json:"spec_mem,omitempty"`
	// SpecMemLat is the speculative memory latency in cycles.
	SpecMemLat int `json:"spec_mem_lat,omitempty"`
	// NoDAEC disables the DAEC register reclamation.
	NoDAEC bool `json:"no_daec,omitempty"`
	// MaxInstr is the committed-instruction budget (0 = the server's
	// default; capped by the server's per-job limit).
	MaxInstr uint64 `json:"max_instr,omitempty"`
	// CheckpointKey makes the job resumable (requires the server to run
	// with a checkpoint dir): if the job is cut short — drain deadline,
	// cancel — its machine state is saved under this key, and a later
	// submission with the same key and spec continues from the saved
	// state instead of starting over. Keys are client-chosen file-safe
	// names (letters, digits, '.', '_', '-').
	CheckpointKey string `json:"checkpoint_key,omitempty"`
	// Trace attaches a cycle-trace journal to the job, retained as its
	// audit artifact (requires the server to run with a trace dir).
	Trace bool `json:"trace,omitempty"`
	// TraceLevel is the journal level: commits, pipeline, full
	// (default pipeline).
	TraceLevel string `json:"trace_level,omitempty"`
	// TraceWindow restricts the journal to cycles [First, Last]
	// (Last 0 = open-ended).
	TraceFirst uint64 `json:"trace_first,omitempty"`
	TraceLast  uint64 `json:"trace_last,omitempty"`
}

// resolve validates the spec against the server's limits and returns
// the workload plus the session options every attempt of the job will
// run under. All failures are ClassBadRequest: nothing here depends on
// server state.
func (sp *JobSpec) resolve(cfg *Config) (*sim.Workload, []sim.Option, error) {
	if sp.Workload == "" {
		return nil, nil, badRequestf("missing workload")
	}
	w, err := sim.Load(sp.Workload)
	if err != nil {
		return nil, nil, markBadRequest(err)
	}
	mode := sim.CI
	if sp.Mode != "" {
		if mode, err = sim.ParseMode(sp.Mode); err != nil {
			return nil, nil, markBadRequest(err)
		}
	}
	engine := sim.EngineFastForward
	if sp.Engine != "" {
		if engine, err = sim.ParseEngine(sp.Engine); err != nil {
			return nil, nil, markBadRequest(err)
		}
	}
	if sp.MaxInstr == 0 {
		sp.MaxInstr = cfg.DefaultInstr
	}
	if sp.MaxInstr > cfg.MaxInstrPerJob {
		return nil, nil, badRequestf("max_instr %d exceeds the server's per-job limit %d",
			sp.MaxInstr, cfg.MaxInstrPerJob)
	}
	ports := sp.Ports
	if ports == 0 {
		ports = 1
	}
	regs := sp.Regs
	switch {
	case regs == 0:
		regs = 256
	case regs == -1:
		regs = 0 // the unbounded file
	case regs < -1:
		return nil, nil, badRequestf("regs %d invalid (use -1 for the unbounded file)", sp.Regs)
	}
	opts := []sim.Option{
		sim.WithMode(mode),
		sim.WithEngine(engine),
		sim.WithPorts(ports),
		sim.WithRegs(regs),
		sim.WithSpecMem(sp.SpecMem),
		sim.WithInstrBudget(sp.MaxInstr),
	}
	if sp.Replicas > 0 {
		opts = append(opts, sim.WithReplicas(sp.Replicas))
	}
	if sp.StridedPCs > 0 {
		opts = append(opts, sim.WithStridedPCs(sp.StridedPCs))
	}
	if sp.SpecMemLat > 0 {
		opts = append(opts, sim.WithSpecMemLatency(sp.SpecMemLat))
	}
	if sp.NoDAEC {
		opts = append(opts, sim.WithDAEC(false))
	}
	if sp.CheckpointKey != "" {
		if cfg.CheckpointDir == "" {
			return nil, nil, badRequestf("checkpoint_key set but the server runs without a checkpoint dir")
		}
		if !safeCheckpointKey(sp.CheckpointKey) {
			return nil, nil, badRequestf("checkpoint_key %q invalid (want letters, digits, '.', '_', '-'; no leading '.')", sp.CheckpointKey)
		}
	}
	if sp.Trace {
		if cfg.TraceDir == "" {
			return nil, nil, badRequestf("trace requested but the server runs without a trace dir")
		}
		if sp.TraceLevel != "" {
			if _, err := sim.ParseTraceLevel(sp.TraceLevel); err != nil {
				return nil, nil, markBadRequest(err)
			}
		}
		if sp.TraceLast != 0 && sp.TraceLast < sp.TraceFirst {
			return nil, nil, badRequestf("invalid trace window [%d, %d]", sp.TraceFirst, sp.TraceLast)
		}
	} else if sp.TraceLevel != "" || sp.TraceFirst != 0 || sp.TraceLast != 0 {
		return nil, nil, badRequestf("trace_level/trace window require trace=true")
	}
	// Build a throwaway session now so configuration errors the option
	// mapping cannot catch (core.Config.Validate) surface at admission
	// as 400s, not at run time as job failures.
	if _, err := sim.New(w, opts...); err != nil {
		return nil, nil, markBadRequest(err)
	}
	return w, opts, nil
}

// safeCheckpointKey reports whether a client-chosen checkpoint key is
// safe to embed in a filename: no separators, no traversal, no hidden
// files.
func safeCheckpointKey(key string) bool {
	if key == "" || key[0] == '.' {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// State is a job's lifecycle phase.
type State string

// The job states, in lifecycle order. queued and running are the live
// states; done, failed and canceled are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one tracked simulation job. All mutable fields are guarded by
// mu; handlers read through View and the worker writes through the
// state-transition helpers.
type Job struct {
	// ID is the server-assigned job identifier ("j1", "j2", ...).
	ID string
	// Key is the client's idempotency key ("" when none was sent).
	Key string
	// Spec is the resolved request (defaults filled in).
	Spec JobSpec

	// w and opts are the resolved workload and base session options.
	w    *sim.Workload
	opts []sim.Option

	mu        sync.Mutex
	state     State
	attempts  int
	result    *sim.Result
	err       error
	errClass  Class
	tracePath string
	// resumed marks a job that continued from a checkpoint file rather
	// than starting fresh.
	resumed   bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	// cancel aborts the running attempt's context; cancelRequested
	// survives for jobs cancelled while still queued.
	cancel          context.CancelFunc
	cancelRequested bool

	// hub fans the job's progress events out to SSE subscribers.
	hub *hub
	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// View is the JSON rendering of a job, shared by every handler.
type View struct {
	ID       string  `json:"id"`
	Key      string  `json:"idempotency_key,omitempty"`
	Spec     JobSpec `json:"spec"`
	State    State   `json:"state"`
	Attempts int     `json:"attempts,omitempty"`
	// Result is present once the job finished; partial for canceled
	// jobs that got far enough to checkpoint statistics.
	Result *sim.Result `json:"result,omitempty"`
	// Error and ErrorClass describe a failed or canceled job.
	Error      string `json:"error,omitempty"`
	ErrorClass Class  `json:"error_class,omitempty"`
	// TracePath is the job's sealed journal artifact, if it recorded one.
	TracePath string `json:"trace_path,omitempty"`
	// Resumed marks a job that continued from a prior job's checkpoint
	// (checkpoint_key) instead of starting fresh.
	Resumed bool `json:"resumed,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// View snapshots the job for rendering.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID: j.ID, Key: j.Key, Spec: j.Spec, State: j.state,
		Attempts: j.attempts, Result: j.result, TracePath: j.tracePath,
		Resumed: j.resumed, SubmittedAt: j.submitted,
	}
	if j.err != nil {
		v.Error, v.ErrorClass = j.err.Error(), j.errClass
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns the channel closed when the job reaches a terminal
// state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setRunning transitions queued -> running for a new attempt and
// installs the attempt's cancel function. It reports false when the job
// was cancelled while queued (or between attempts), in which case the
// worker must finish it as canceled instead of running it.
func (j *Job) setRunning(attempt int, cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRequested {
		return false
	}
	j.state = StateRunning
	j.attempts = attempt
	j.cancel = cancel
	if j.started.IsZero() {
		j.started = time.Now()
	}
	return true
}

// finish moves the job to a terminal state exactly once and closes
// Done. A partial result may accompany a canceled job.
func (j *Job) finish(state State, res *sim.Result, err error, class Class) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.err = err
	j.errClass = class
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()

	// The terminal state event ends the feed; the SSE handler renders
	// the final `result` event from the job view itself, so a slow
	// subscriber can never miss the outcome to a full queue.
	j.hub.publish(Event{Type: EventState, Data: string(state)})
	j.hub.close()
	close(j.done)
}

// requestCancel asks the job to stop: a running attempt is cancelled
// through its context, a queued job is marked so the worker finishes it
// as canceled without running it. Reports whether the request did
// anything (false for already-terminal jobs).
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.cancelRequested = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// setTracePath records the sealed journal artifact's path.
func (j *Job) setTracePath(p string) {
	j.mu.Lock()
	j.tracePath = p
	j.mu.Unlock()
}

// setResumed marks the job as continued from a checkpoint.
func (j *Job) setResumed() {
	j.mu.Lock()
	j.resumed = true
	j.mu.Unlock()
}
