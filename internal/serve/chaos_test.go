package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"civect/internal/serve"
	"civect/internal/serve/faultinject"
	"civect/internal/serve/servetest"
	"civect/sim"
)

// chaosSpecs are the simulation shapes the chaos swarm cycles through:
// different workloads, machine modes and engines, all short enough to
// run hundreds of times under -race.
var chaosSpecs = []serve.JobSpec{
	{Workload: "gcc", MaxInstr: 4000},
	{Workload: "mcf", Mode: "ci", MaxInstr: 5000},
	{Workload: "gzip", Mode: "vect", MaxInstr: 4000},
	{Workload: "parser", Mode: "wb", MaxInstr: 4000},
	{Workload: "twolf", Mode: "ci", Engine: "event", MaxInstr: 4000},
}

// chaosReference runs one spec serially — no server, no concurrency,
// no faults — and returns its stats block as canonical JSON.
func chaosReference(t *testing.T, sp serve.JobSpec) []byte {
	t.Helper()
	mode := sim.CI
	if sp.Mode != "" {
		m, err := sim.ParseMode(sp.Mode)
		if err != nil {
			t.Fatal(err)
		}
		mode = m
	}
	engine := sim.EngineFastForward
	if sp.Engine != "" {
		e, err := sim.ParseEngine(sp.Engine)
		if err != nil {
			t.Fatal(err)
		}
		engine = e
	}
	st := serialStats(t, sp.Workload,
		sim.WithMode(mode), sim.WithEngine(engine),
		sim.WithPorts(1), sim.WithRegs(256), sim.WithSpecMem(0),
		sim.WithInstrBudget(sp.MaxInstr))
	return statsJSON(t, st)
}

// TestChaos floods the daemon with hundreds of concurrent short jobs
// while every fault injector fires — worker panics, artificial slow
// jobs, mid-job cancels, trace-write failures and queue-full bursts —
// and asserts the hardening contract:
//
//   - every job reaches a terminal state and every fault maps to its
//     classified outcome (done / canceled / failed-transient)
//   - results of successful jobs are byte-identical to serial,
//     fault-free runs of the same spec: concurrency and chaos never
//     perturb the simulation
//   - no panic escapes a worker (the process is alive and the panics
//     were counted as recovered)
//   - the trace dir holds only sealed artifacts of successful jobs —
//     no temp files, no truncated journals
//   - no goroutines leak (the servetest harness asserts it at teardown)
//
// Run under -race in the CI service job.
func TestChaos(t *testing.T) {
	const jobCount = 220

	// Serial references first: the truth the chaos results must match.
	refs := make([][]byte, len(chaosSpecs))
	for i, sp := range chaosSpecs {
		refs[i] = chaosReference(t, sp)
	}

	traceDir := t.TempDir()
	s, ts := servetest.Start(t, serve.Config{
		Workers:    8,
		QueueDepth: 24, // small on purpose: the submit burst must overflow it
		// Progress cadence inside every budget so the observer-site
		// injectors (panic, cancel) can fire.
		ProgressEvery: 500,
		TraceDir:      traceDir,
		Retry:         serve.RetryPolicy{MaxAttempts: 3, Backoff: func(int) time.Duration { return time.Millisecond }},
		Faults: &faultinject.Plan{
			Seed:          42,
			PanicRate:     0.15,
			SlowRate:      0.10,
			SlowFor:       2 * time.Millisecond,
			CancelRate:    0.12,
			TraceFailRate: 0.40,
		},
		Logf: func(string, ...any) {}, // hundreds of expected fault lines
	})

	type outcome struct {
		spec int
		view serve.View
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
		shed429  int
	)
	var wg sync.WaitGroup
	client := ts.Client()
	for i := 0; i < jobCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			specIdx := i % len(chaosSpecs)
			sp := chaosSpecs[specIdx]
			sp.Trace = i%4 == 0 // every 4th job records a journal
			body, err := json.Marshal(sp)
			if err != nil {
				t.Error(err)
				return
			}

			// Submit, riding out backpressure: 429 (queue full) and 503
			// (breaker) both mean "try again shortly" — exactly what a
			// well-behaved client does.
			var id string
			deadline := time.Now().Add(2 * time.Minute)
			for {
				req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
				req.Header.Set("Idempotency-Key", fmt.Sprintf("chaos-%d", i))
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("job %d: submit: %v", i, err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
					var v serve.View
					if err := json.Unmarshal(b, &v); err != nil {
						t.Errorf("job %d: decoding submit response: %v", i, err)
						return
					}
					id = v.ID
					break
				}
				if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("job %d: submit status %d\n%s", i, resp.StatusCode, b)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					mu.Lock()
					shed429++
					mu.Unlock()
				}
				if time.Now().After(deadline) {
					t.Errorf("job %d: still shed at deadline", i)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Poll to a terminal state.
			for {
				resp, err := client.Get(ts.URL + "/v1/jobs/" + id)
				if err != nil {
					t.Errorf("job %d: poll: %v", i, err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var v serve.View
				if err := json.Unmarshal(b, &v); err != nil {
					t.Errorf("job %d: decoding poll response: %v", i, err)
					return
				}
				if v.State.Terminal() {
					mu.Lock()
					outcomes = append(outcomes, outcome{spec: specIdx, view: v})
					mu.Unlock()
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("job %d (%s): not terminal at deadline (state %s)", i, id, v.State)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(outcomes) != jobCount {
		t.Fatalf("collected %d outcomes, want %d", len(outcomes), jobCount)
	}

	// Every fault maps to its classified outcome; successes are
	// byte-identical to the serial references.
	var done, canceled, failed int
	tracedDone := map[string]bool{} // trace filename -> seen
	for _, o := range outcomes {
		v := o.view
		switch v.State {
		case serve.StateDone:
			done++
			if v.Result == nil || v.Result.Partial {
				t.Fatalf("job %s done without a complete result", v.ID)
			}
			if got := statsJSON(t, v.Result.Stats); !bytes.Equal(got, refs[o.spec]) {
				t.Errorf("job %s (%s) stats diverge from the serial run:\n got %s\nwant %s",
					v.ID, chaosSpecs[o.spec].Workload, got, refs[o.spec])
			}
			if v.Spec.Trace {
				if v.TracePath == "" {
					t.Errorf("done trace job %s has no trace_path", v.ID)
				} else {
					tracedDone[filepath.Base(v.TracePath)] = true
				}
			}
		case serve.StateCanceled:
			canceled++
			if v.ErrorClass != serve.ClassCanceled {
				t.Errorf("canceled job %s classified %q, want canceled", v.ID, v.ErrorClass)
			}
			if v.Result != nil && !v.Result.Partial {
				t.Errorf("canceled job %s carries a non-partial result", v.ID)
			}
		case serve.StateFailed:
			failed++
			// Every injected fault is transient (recovered panic or
			// trace-write failure); a job only fails once retries are
			// exhausted.
			if v.ErrorClass != serve.ClassTransient {
				t.Errorf("failed job %s classified %q (%s), want transient", v.ID, v.ErrorClass, v.Error)
			}
			if !strings.Contains(v.Error, "panicked") && !strings.Contains(v.Error, "faultinject") {
				t.Errorf("failed job %s error %q does not trace back to an injected fault", v.ID, v.Error)
			}
			if v.Attempts != 3 {
				t.Errorf("failed job %s gave up after %d attempts, want the full retry budget of 3", v.ID, v.Attempts)
			}
		default:
			t.Errorf("job %s in impossible terminal state %s", v.ID, v.State)
		}
	}
	t.Logf("chaos outcomes: %d done, %d canceled, %d failed; %d submissions shed with 429",
		done, canceled, failed, shed429)

	// The injectors actually fired: with these rates over 220 jobs the
	// probability of any counter staying zero is negligible (< 1e-9).
	m := s.Metrics()
	if m.PanicsRecovered.Load() == 0 {
		t.Error("no panics recovered: the panic injector never fired")
	}
	if canceled == 0 {
		t.Error("no jobs canceled: the mid-job cancel injector never fired")
	}
	if m.Retries.Load() == 0 {
		t.Error("no retries: transient failures were never retried")
	}
	if done == 0 {
		t.Error("no jobs succeeded under chaos")
	}

	// The artifact dir holds exactly the sealed journals of successful
	// trace jobs: no temp files, no journals for failed or canceled jobs.
	entries, err := os.ReadDir(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("trace dir holds leftover temp file %s", e.Name())
			continue
		}
		if !tracedDone[e.Name()] {
			t.Errorf("trace dir holds %s, which no successful trace job claims", e.Name())
		}
	}
	if len(tracedDone) > 0 && len(entries) == 0 {
		t.Error("successful trace jobs claim journals but the trace dir is empty")
	}

	// Quiesce cleanly: nothing is in flight, so the drain is graceful.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("post-chaos Drain = %v, want nil", err)
	}
	if hstatus, _, b := doJSON(t, "GET", ts.URL+"/healthz", "", nil); hstatus != http.StatusServiceUnavailable {
		t.Errorf("post-drain /healthz status = %d, want 503\n%s", hstatus, b)
	}
}
