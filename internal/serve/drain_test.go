package serve_test

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"civect/internal/serve"
	"civect/internal/serve/servetest"
)

// TestGracefulDrain is the clean-shutdown contract: in-flight and
// queued jobs finish on their own, Drain returns nil, and new
// submissions are refused with 503 the moment draining starts.
func TestGracefulDrain(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{Workers: 2, DrainTimeout: 60 * time.Second})

	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":5000}`, nil)
		ids = append(ids, decodeView(t, b).ID)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain = %v, want nil (everything had time to finish)", err)
	}
	for _, id := range ids {
		v := waitTerminal(t, ts.URL, id)
		if v.State != serve.StateDone || v.Result == nil || v.Result.Partial {
			t.Errorf("job %s drained as %s (partial=%v), want done with a complete result",
				id, v.State, v.Result != nil && v.Result.Partial)
		}
	}

	// Draining refuses new work with 503/transient and counts the shed.
	status, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc"}`, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status = %d, want 503\n%s", status, b)
	}
	if class := errClass(t, b); class != serve.ClassTransient {
		t.Errorf("draining error class = %q, want transient", class)
	}
	if shed := s.Metrics().ShedDraining.Load(); shed != 1 {
		t.Errorf("metrics shed_draining = %d, want 1", shed)
	}

	// Existing jobs stay readable, and /healthz reports the drain.
	status, _, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/"+ids[0], "", nil)
	if status != http.StatusOK {
		t.Errorf("GET finished job while draining: status = %d, want 200", status)
	}
	status, _, b = doJSON(t, "GET", ts.URL+"/healthz", "", nil)
	if status != http.StatusServiceUnavailable || !contains(b, `"draining"`) {
		t.Errorf("/healthz while draining: status %d body %s, want 503 draining", status, b)
	}

	// Drain is idempotent once everything is down.
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second Drain = %v, want nil", err)
	}
}

// TestDrainDeadlineCheckpoints is the SIGTERM-with-work-in-flight
// contract: at the drain deadline, running jobs are cancelled and each
// checkpoints a well-formed partial result; Drain still returns with
// all workers stopped.
func TestDrainDeadlineCheckpoints(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{Workers: 1, DrainTimeout: 300 * time.Millisecond})

	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":50000000}`, nil)
	running := decodeView(t, b)
	waitState(t, ts.URL, running.ID, serve.StateRunning)
	_, _, b = doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":50000000}`, nil)
	queued := decodeView(t, b)

	start := time.Now()
	err := s.Drain(context.Background())
	if err == nil {
		t.Fatal("Drain = nil, want the deadline error (a 50M-instr job cannot finish in 300ms)")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("Drain took %v after a 300ms deadline; the cut must be prompt", elapsed)
	}

	// The running job checkpointed: canceled, with a non-empty partial.
	v := waitTerminal(t, ts.URL, running.ID)
	if v.State != serve.StateCanceled || v.ErrorClass != serve.ClassCanceled {
		t.Fatalf("in-flight job drained as %s/%s, want canceled/canceled", v.State, v.ErrorClass)
	}
	if v.Result == nil || !v.Result.Partial || v.Result.Stats.Committed == 0 {
		t.Errorf("in-flight job result = %+v, want a non-empty partial checkpoint", v.Result)
	}

	// The queued job never got a session; it is canceled without a result.
	v = waitTerminal(t, ts.URL, queued.ID)
	if v.State != serve.StateCanceled {
		t.Errorf("queued job drained as %s, want canceled", v.State)
	}
	if v.Result != nil {
		t.Errorf("queued job has a result but never ran")
	}
}

// TestDrainHonorsContext cuts the drain via the caller's context
// rather than the configured timeout.
func TestDrainHonorsContext(t *testing.T) {
	s, ts := servetest.Start(t, serve.Config{Workers: 1, DrainTimeout: 60 * time.Second})

	_, _, b := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"workload":"gcc","max_instr":50000000}`, nil)
	job := decodeView(t, b)
	waitState(t, ts.URL, job.ID, serve.StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain = nil, want the context deadline error")
	}
	v := waitTerminal(t, ts.URL, job.ID)
	if v.State != serve.StateCanceled || v.Result == nil || !v.Result.Partial {
		t.Errorf("job after context-cut drain = %s (result %v), want canceled with a partial", v.State, v.Result != nil)
	}
}

func contains(b []byte, sub string) bool { return strings.Contains(string(b), sub) }
