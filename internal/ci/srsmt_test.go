package ci

import (
	"testing"

	"civect/internal/isa"
)

func TestSRSMTBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewSRSMT(0, 4) },
		func() { NewSRSMT(63, 4) },
		func() { NewSRSMT(64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSRSMTAllocLookup(t *testing.T) {
	tab := NewSRSMT(64, 4)
	if tab.Lookup(100) != nil {
		t.Fatal("empty table lookup should be nil")
	}
	w := tab.AllocCandidate(100)
	if w == nil || w.Valid {
		t.Fatal("expected a free way")
	}
	e := tab.Init(w, 100, isa.Instr{Op: isa.OpLd})
	if !e.Valid || e.PC != 100 || e.Gen == 0 {
		t.Errorf("init wrong: %+v", e)
	}
	if tab.Lookup(100) != e {
		t.Error("lookup should find the entry")
	}
	if tab.Lookup(101) != nil {
		t.Error("different pc must not match")
	}
}

func TestSRSMTGenerationsAdvance(t *testing.T) {
	tab := NewSRSMT(64, 4)
	e1 := tab.Init(tab.AllocCandidate(1), 1, isa.Instr{})
	g1 := e1.Gen
	tab.Invalidate(e1)
	e2 := tab.Init(tab.AllocCandidate(1), 1, isa.Instr{})
	if e2.Gen <= g1 {
		t.Error("reallocation must get a fresh generation")
	}
}

func TestSRSMTSetConflictAndEviction(t *testing.T) {
	tab := NewSRSMT(64, 2) // pcs 0, 64, 128, ... collide in set 0
	e0 := tab.Init(tab.AllocCandidate(0), 0, isa.Instr{})
	e64 := tab.Init(tab.AllocCandidate(64), 64, isa.Instr{})
	_ = e64
	// Make e0 non-deallocatable: a replica in flight.
	e0.Issue = 1
	tab.Touch(e64) // e0 older but busy; e64 is LRU-newer
	w := tab.AllocCandidate(128)
	if w == nil {
		t.Fatal("should find a deallocatable way (e64)")
	}
	if w.PC != 64 {
		t.Errorf("victim pc = %d, want 64 (e0 is busy)", w.PC)
	}
	// Both busy -> no candidate.
	e64b := tab.Lookup(64)
	e64b.Decode = 1 // decode != commit -> not deallocatable
	if tab.AllocCandidate(128) != nil {
		t.Error("no candidate when all ways busy")
	}
}

func TestDeallocatable(t *testing.T) {
	e := &Entry{TurnHeader: &TurnHeader{Valid: true}}
	if !e.Deallocatable() {
		t.Error("fresh entry deallocatable")
	}
	e.Decode = 1
	if e.Deallocatable() {
		t.Error("decode ahead of commit -> busy")
	}
	e.Commit = 1
	if !e.Deallocatable() {
		t.Error("decode == commit -> deallocatable")
	}
	e.Issue = 1
	if e.Deallocatable() {
		t.Error("issued replicas -> busy")
	}
}

func TestSlot(t *testing.T) {
	e := &Entry{TurnHeader: &TurnHeader{}, Replicas: make([]Replica, 4)}
	for i := range e.Replicas {
		e.Replicas[i].Abs = i
	}
	if r := e.Slot(2); r == nil || r.Abs != 2 {
		t.Error("slot 2 should resolve")
	}
	if e.Slot(-1) != nil {
		t.Error("negative abs must be nil")
	}
	// Slot 1 now holds absolute index 5 (ring reuse).
	e.Replicas[1].Abs = 5
	if e.Slot(1) != nil {
		t.Error("reused slot must not resolve for the old index")
	}
	if r := e.Slot(5); r == nil || r.Abs != 5 {
		t.Error("reused slot should resolve for the new index")
	}
	empty := &Entry{TurnHeader: &TurnHeader{}}
	if empty.Slot(0) != nil {
		t.Error("entry with no replicas has no slots")
	}
}

func TestCoversAddr(t *testing.T) {
	e := &Entry{TurnHeader: &TurnHeader{Valid: true}, HasRange: true, RangeLo: 100, RangeHi: 200}
	if !e.CoversAddr(100) || !e.CoversAddr(150) || !e.CoversAddr(200) {
		t.Error("range endpoints and interior must be covered")
	}
	if e.CoversAddr(99) || e.CoversAddr(201) {
		t.Error("outside the range must not be covered")
	}
	e.HasRange = false
	if e.CoversAddr(150) {
		t.Error("no range -> nothing covered")
	}
}

func TestOnRecoveryDecodeCopy(t *testing.T) {
	tab := NewSRSMT(64, 4)
	e := tab.Init(tab.AllocCandidate(5), 5, isa.Instr{})
	e.NRegs = 4
	e.Decode = 3
	e.Commit = 1
	tab.OnRecovery(true, nil)
	if e.Decode != 1 {
		t.Errorf("decode = %d, want commit value 1 (§2.4.4)", e.Decode)
	}
	if e.DAEC != 0 {
		t.Errorf("DAEC = %d, want 0 (entry was in use)", e.DAEC)
	}
}

func TestOnRecoveryDAEC(t *testing.T) {
	tab := NewSRSMT(64, 4)
	e := tab.Init(tab.AllocCandidate(5), 5, isa.Instr{})
	e.NRegs = 4

	tab.OnRecovery(true, nil) // decode==commit -> DAEC=1
	if e.DAEC != 1 || !e.Valid {
		t.Fatalf("after 1st recovery DAEC=%d valid=%v", e.DAEC, e.Valid)
	}
	var dead []uint64
	tab.OnRecovery(true, func(d *Entry) { dead = append(dead, d.PC) })
	if e.Valid {
		t.Error("DAEC reaching 2 must invalidate the entry")
	}
	if len(dead) != 1 || dead[0] != 5 {
		t.Errorf("dead callback = %v, want [5]", dead)
	}
}

func TestOnRecoveryDAECResetWhenUsed(t *testing.T) {
	tab := NewSRSMT(64, 4)
	e := tab.Init(tab.AllocCandidate(5), 5, isa.Instr{})
	e.NRegs = 4
	tab.OnRecovery(true, nil) // DAEC=1
	e.Decode = 2              // entry got used again
	tab.OnRecovery(true, nil) // decode!=commit -> DAEC reset, decode:=commit
	if e.DAEC != 0 || e.Decode != 0 {
		t.Errorf("DAEC=%d decode=%d, want 0/0", e.DAEC, e.Decode)
	}
	if !e.Valid {
		t.Error("used entry must survive")
	}
}

func TestOnRecoverySkipsIssuing(t *testing.T) {
	tab := NewSRSMT(64, 4)
	e := tab.Init(tab.AllocCandidate(5), 5, isa.Instr{})
	e.Issue = 1 // a replica is executing; cannot free its register yet
	tab.OnRecovery(true, nil)
	tab.OnRecovery(true, nil)
	tab.OnRecovery(true, nil)
	if !e.Valid {
		t.Error("entries with in-flight replicas must not be reclaimed")
	}
}

func TestForEachValid(t *testing.T) {
	tab := NewSRSMT(64, 4)
	tab.Init(tab.AllocCandidate(1), 1, isa.Instr{})
	tab.Init(tab.AllocCandidate(2), 2, isa.Instr{})
	tab.Init(tab.AllocCandidate(3), 3, isa.Instr{})
	count := 0
	tab.ForEachValid(func(e *Entry) bool { count++; return true })
	if count != 3 {
		t.Errorf("visited %d entries, want 3", count)
	}
	count = 0
	tab.ForEachValid(func(e *Entry) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d, want 1", count)
	}
}

func TestSRSMTSizeBytes(t *testing.T) {
	// §3.1: "The SRSMT occupies 11520 bytes (4 ways * 64 elements per
	// way * 45 bytes per element)".
	if got := NewSRSMT(64, 4).SizeBytes(); got != 11520 {
		t.Errorf("SRSMT size = %d, want 11520", got)
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	c := HardwareCost(DefaultCostConfig())
	if c.SRSMT != 11520 {
		t.Errorf("SRSMT = %d, want 11520", c.SRSMT)
	}
	if c.Stride != 24576 {
		t.Errorf("stride = %d, want 24576", c.Stride)
	}
	if c.MBS != 2048 {
		t.Errorf("MBS = %d, want 2048", c.MBS)
	}
	if c.NRBQ != 128 {
		t.Errorf("NRBQ = %d, want 128", c.NRBQ)
	}
	if c.CRP != 16 {
		t.Errorf("CRP = %d, want 16", c.CRP)
	}
	if c.RenameExt != 1024 {
		t.Errorf("rename ext = %d, want 1024", c.RenameExt)
	}
	// "a total of 39 Kbytes of extra storage"
	if kb := float64(c.Total()) / 1024; kb < 38 || kb > 39.5 {
		t.Errorf("total = %.2f KB, want ≈39 KB", kb)
	}
}

func TestCostString(t *testing.T) {
	s := HardwareCost(DefaultCostConfig()).String()
	if len(s) == 0 {
		t.Error("cost string empty")
	}
}

func TestInitRingPoolsStorage(t *testing.T) {
	tab := NewSRSMT(4, 2)
	w := tab.AllocCandidate(3)
	e := tab.Init(w, 3, isa.Instr{})
	e.InitRing(8)
	if len(e.Replicas) != 8 {
		t.Fatalf("ring size %d, want 8", len(e.Replicas))
	}
	first := &e.Replicas[0]
	e.Replicas[0].Abs = 42

	tab.Invalidate(e)
	if e.Valid {
		t.Fatal("invalidated entry still valid")
	}
	e2 := tab.Init(w, 7, isa.Instr{})
	e2.InitRing(8)
	if &e2.Replicas[0] != first {
		t.Error("reinitialised way must reuse its replica ring storage")
	}
	if e2.Replicas[0].Abs != -1 || e2.Replicas[0].Dest != -1 {
		t.Error("reused ring slots must be reset")
	}
	// Rounding up to a power of two keeps Slot a mask operation.
	e2.InitRing(6)
	if len(e2.Replicas) != 8 {
		t.Errorf("ring size %d, want 8 (rounded up)", len(e2.Replicas))
	}
}

func TestPresenceFilter(t *testing.T) {
	tab := NewSRSMT(4, 2)
	if tab.Lookup(9) != nil {
		t.Fatal("empty table lookup must miss")
	}
	w := tab.AllocCandidate(9)
	tab.Init(w, 9, isa.Instr{})
	if tab.Lookup(9) == nil {
		t.Fatal("present entry must be found")
	}
	tab.Invalidate(w)
	if tab.Lookup(9) != nil {
		t.Fatal("invalidated entry must miss")
	}
	// OnRecovery's DAEC teardown path must clear presence too.
	w = tab.AllocCandidate(9)
	e := tab.Init(w, 9, isa.Instr{})
	e.DAEC = 1
	tab.OnRecovery(true, nil)
	if tab.Lookup(9) != nil {
		t.Fatal("DAEC-dead entry must miss")
	}
}
