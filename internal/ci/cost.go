package ci

import "fmt"

// CostConfig parameterises the §3.1 storage-cost accounting.
type CostConfig struct {
	SRSMTSets       int // 64
	SRSMTAssoc      int // 4
	StrideSets      int // 256
	StrideAssoc     int // 4
	MBSSets         int // 64
	MBSAssoc        int // 4
	NRBQEntries     int // 16
	RenameEntries   int // 64 logical registers
	RenameEntryCost int // 16 bytes (Figure 7: phys reg + V/S + Seq + stridedPC)
}

// DefaultCostConfig returns the paper's evaluated configuration.
func DefaultCostConfig() CostConfig {
	return CostConfig{
		SRSMTSets: 64, SRSMTAssoc: 4,
		StrideSets: 256, StrideAssoc: 4,
		MBSSets: 64, MBSAssoc: 4,
		NRBQEntries:   16,
		RenameEntries: 64, RenameEntryCost: 16,
	}
}

// Cost is the per-structure storage breakdown in bytes.
type Cost struct {
	SRSMT     int
	Stride    int
	MBS       int
	NRBQ      int
	CRP       int
	RenameExt int
}

// Total sums all structures.
func (c Cost) Total() int {
	return c.SRSMT + c.Stride + c.MBS + c.NRBQ + c.CRP + c.RenameExt
}

// String renders the breakdown as the paper's §3.1 bullet list.
func (c Cost) String() string {
	return fmt.Sprintf(
		"SRSMT            %6d bytes\n"+
			"stride predictor %6d bytes\n"+
			"MBS              %6d bytes\n"+
			"NRBQ             %6d bytes\n"+
			"CRP              %6d bytes\n"+
			"rename extension %6d bytes\n"+
			"total            %6d bytes (%.1f KB)",
		c.SRSMT, c.Stride, c.MBS, c.NRBQ, c.CRP, c.RenameExt,
		c.Total(), float64(c.Total())/1024)
}

// HardwareCost computes the §3.1 storage requirements:
//
//   - SRSMT: 4 ways × 64 sets × 45 bytes = 11520 bytes,
//   - stride predictor: 4 ways × 256 sets × 24 bytes = 24576 bytes,
//   - MBS: 4 ways × 64 sets × 8 bytes = 2048 bytes,
//   - NRBQ: 16 entries × 8 bytes = 128 bytes,
//   - CRP: 16 bytes,
//   - rename-map extension: 64 entries × 16 bytes = 1024 bytes,
//
// totalling 39312 bytes ≈ 39 KB of extra storage.
func HardwareCost(cfg CostConfig) Cost {
	return Cost{
		SRSMT:     cfg.SRSMTSets * cfg.SRSMTAssoc * 45,
		Stride:    cfg.StrideSets * cfg.StrideAssoc * 24,
		MBS:       cfg.MBSSets * cfg.MBSAssoc * 8,
		NRBQ:      cfg.NRBQEntries * 8,
		CRP:       16,
		RenameExt: cfg.RenameEntries * cfg.RenameEntryCost,
	}
}
