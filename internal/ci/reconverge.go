// Package ci implements the hardware structures the paper adds for
// control-flow independence: the re-convergence heuristics of §2.3.1
// (Figure 2), the NRBQ (Not Retired Branch Queue) and CRP (Current
// Re-convergent Point) with their logical-register write masks (§2.3.2),
// the SRSMT (Scalar Register Set Map Table, Figure 6) that manages
// replica sets (§2.3.3), and the §3.1 storage-cost accounting.
//
// The structures are purely architectural bookkeeping; the pipeline in
// internal/core drives them and owns the resources (physical registers,
// issue-queue slots) they reference.
package ci

import "civect/internal/isa"

// EstimateReconvergence returns the estimated re-convergent point for
// the branch at pc, following §2.3.1's heuristics:
//
//   - backward branch: the next instruction in program order (the
//     closing branch of a loop, Figure 2-a);
//   - forward branch whose predecessor-of-target is an unconditional
//     forward jump: that jump's destination (if-then-else, Figure 2-c);
//   - any other forward branch: the branch's target (if-then,
//     Figure 2-b).
//
// The estimate need not be correct: a wrong re-convergent point costs
// performance, never correctness. Non-branch PCs return pc+1.
func EstimateReconvergence(p *isa.Program, pc int) int {
	in := p.At(pc)
	if !in.IsCondBranch() {
		return pc + 1
	}
	if in.Target <= pc {
		// Backward branch: loop structure.
		return pc + 1
	}
	// Forward branch: analyze the instruction one location above the
	// target address. (The paper fetches it; we inspect the static
	// image, which carries the same information.)
	above := p.At(in.Target - 1)
	if above.IsJump() && above.Target > in.Target-1 {
		// if-then-else: the "then" arm ends with a forward jump over
		// the "else" arm; control re-converges at its destination.
		return above.Target
	}
	// if-then: control re-converges at the branch target itself.
	return in.Target
}
