package ci

import (
	"civect/internal/ckpt"
	"civect/internal/isa"
)

// Checkpoint serialization for the CI structures. The SRSMT is the one
// table in the machine whose state is pointer-shaped — operand
// references cache producer ways, consumer chains hold entry pointers —
// so everything pointer-valued is encoded as (way index, generation)
// and re-linked against the restored table's fixed way storage on load.
// Dead references (a consumer chained to a since-recycled way) are
// preserved verbatim: they influence chain-compaction thresholds and
// wake iteration, so dropping them would perturb a restored run.

// NumWays returns the table's way count (sets × associativity).
func (t *SRSMT) NumWays() int { return len(t.ways) }

// WayOf returns an entry's fixed index in the table's way storage.
func (t *SRSMT) WayOf(e *Entry) int { return int(e.way) }

// Way returns the entry occupying way i (valid or not; way storage is
// fixed for the table's lifetime).
func (t *SRSMT) Way(i int) *Entry { return &t.ways[i] }

func encodeInstr(e *ckpt.Encoder, in isa.Instr) {
	e.U8(uint8(in.Op))
	e.U8(uint8(in.Rd))
	e.U8(uint8(in.Ra))
	e.U8(uint8(in.Rb))
	e.I64(in.Imm)
	e.Int(in.Target)
}

func decodeInstr(d *ckpt.Decoder) isa.Instr {
	return isa.Instr{
		Op:     isa.Op(d.U8()),
		Rd:     isa.Reg(d.U8()),
		Ra:     isa.Reg(d.U8()),
		Rb:     isa.Reg(d.U8()),
		Imm:    d.I64(),
		Target: d.Int(),
	}
}

// encodeOperand writes one seq1/seq2 slot; the cached producer pointer
// becomes its way index (-1 for none).
func (t *SRSMT) encodeOperand(e *ckpt.Encoder, o *OperandRef) {
	e.U8(uint8(o.Kind))
	e.U64(o.Value)
	e.U64(o.PC)
	e.U64(o.Gen)
	if o.Prod != nil {
		e.Int(int(o.Prod.way))
	} else {
		e.Int(-1)
	}
	e.Int(o.Base)
}

func (t *SRSMT) decodeOperand(d *ckpt.Decoder, o *OperandRef) {
	o.Kind = OperandKind(d.U8())
	o.Value = d.U64()
	o.PC = d.U64()
	o.Gen = d.U64()
	w := d.Int()
	if w >= 0 {
		if w >= len(t.ways) {
			d.Fail("operand producer way %d out of range (%d ways)", w, len(t.ways))
			return
		}
		o.Prod = &t.ways[w]
	} else {
		o.Prod = nil
	}
	o.Base = d.Int()
}

// SaveState encodes the whole table.
func (t *SRSMT) SaveState(e *ckpt.Encoder) {
	e.Tag("srsmt")
	e.Int(t.sets)
	e.Int(t.assoc)
	e.U64(t.clock)
	e.U64(t.gen)
	e.Int(len(t.present))
	for _, w := range t.present {
		e.U64(w)
	}
	// The validity bitmap is rebuilt from the entries on load; only the
	// entries themselves are stored. Ways are emitted in index order.
	nvalid := 0
	for i := range t.ways {
		if t.headers[i].Valid {
			nvalid++
		}
	}
	e.Int(nvalid)
	for i := range t.ways {
		if !t.headers[i].Valid {
			continue
		}
		e.Int(i)
		t.saveEntry(e, &t.ways[i])
	}
}

func (t *SRSMT) saveEntry(e *ckpt.Encoder, ent *Entry) {
	h := ent.TurnHeader
	e.Bool(h.SeedCaptured)
	e.Bool(h.SeedBroken)
	e.Bool(h.Listed)
	e.U8(h.Idle)
	e.U8(h.NSrc)
	e.U64(h.Gen)
	e.U64(h.ActiveMask)
	e.U64(h.BlockedMask)
	e.U64(h.IssuedMask)
	e.U64(h.NextDone)
	e.Int(h.Issue)
	e.Int(h.Pending)
	e.Int(h.NRegs)
	e.Int(h.Decode)
	e.Int(h.Commit)
	e.Int(h.Alloc)
	e.Int(h.SeedPhys)
	e.U64(h.Stamp)

	e.Bool(ent.IsLoad)
	e.Int(len(ent.Replicas))
	for i := range ent.Replicas {
		r := &ent.Replicas[i]
		e.U8(uint8(r.State))
		e.Int(r.Abs)
		e.Int(r.Dest)
		e.U64(r.Value)
		e.U64(r.Addr)
		e.U64(r.DoneAt)
	}
	e.Int(len(ent.Consumers))
	for _, c := range ent.Consumers {
		e.Int(int(c.Ent.way))
		e.U64(c.Gen)
	}
	e.U64(ent.PC)
	encodeInstr(e, ent.Instr)
	e.I64(ent.Stride)
	e.U64(ent.BatchBase)
	t.encodeOperand(e, &ent.Src1)
	t.encodeOperand(e, &ent.Src2)
	e.U64(ent.CreatorSeq)
	e.Int(ent.DAEC)
	e.Bool(ent.HasRange)
	e.U64(ent.RangeLo)
	e.U64(ent.RangeHi)
	e.U64(ent.Episode)
	e.U64(ent.lru)
}

// LoadState restores state saved from a table with identical geometry.
// The receiver must be freshly constructed (all ways invalid).
func (t *SRSMT) LoadState(d *ckpt.Decoder) {
	d.Tag("srsmt")
	sets, assoc := d.Int(), d.Int()
	if d.Err() != nil {
		return
	}
	if sets != t.sets || assoc != t.assoc {
		d.Fail("SRSMT geometry mismatch: checkpoint %dx%d, table %dx%d", sets, assoc, t.sets, t.assoc)
		return
	}
	t.clock = d.U64()
	t.gen = d.U64()
	npresent := d.Count()
	t.present = make([]uint64, npresent)
	for i := range t.present {
		t.present[i] = d.U64()
	}
	nvalid := d.Count()
	for k := 0; k < nvalid; k++ {
		w := d.Int()
		if d.Err() != nil {
			return
		}
		if w < 0 || w >= len(t.ways) {
			d.Fail("SRSMT way %d out of range (%d ways)", w, len(t.ways))
			return
		}
		t.loadEntry(d, &t.ways[w])
		t.valid[w>>6] |= 1 << (uint(w) & 63)
	}
}

func (t *SRSMT) loadEntry(d *ckpt.Decoder, ent *Entry) {
	h := ent.TurnHeader
	h.Valid = true
	h.SeedCaptured = d.Bool()
	h.SeedBroken = d.Bool()
	h.Listed = d.Bool()
	h.Idle = d.U8()
	h.NSrc = d.U8()
	h.Gen = d.U64()
	h.ActiveMask = d.U64()
	h.BlockedMask = d.U64()
	h.IssuedMask = d.U64()
	h.NextDone = d.U64()
	h.Issue = d.Int()
	h.Pending = d.Int()
	h.NRegs = d.Int()
	h.Decode = d.Int()
	h.Commit = d.Int()
	h.Alloc = d.Int()
	h.SeedPhys = d.Int()
	h.Stamp = d.U64()

	ent.IsLoad = d.Bool()
	nrep := d.Count()
	ent.Replicas = make([]Replica, nrep)
	for i := range ent.Replicas {
		r := &ent.Replicas[i]
		r.State = ReplicaState(d.U8())
		r.Abs = d.Int()
		r.Dest = d.Int()
		r.Value = d.U64()
		r.Addr = d.U64()
		r.DoneAt = d.U64()
	}
	ncons := d.Count()
	ent.Consumers = make([]ConsumerRef, 0, ncons)
	for i := 0; i < ncons; i++ {
		w := d.Int()
		gen := d.U64()
		if d.Err() != nil {
			return
		}
		if w < 0 || w >= len(t.ways) {
			d.Fail("consumer way %d out of range (%d ways)", w, len(t.ways))
			return
		}
		ent.Consumers = append(ent.Consumers, ConsumerRef{Ent: &t.ways[w], Gen: gen})
	}
	ent.PC = d.U64()
	ent.Instr = decodeInstr(d)
	ent.Stride = d.I64()
	ent.BatchBase = d.U64()
	t.decodeOperand(d, &ent.Src1)
	t.decodeOperand(d, &ent.Src2)
	ent.CreatorSeq = d.U64()
	ent.DAEC = d.Int()
	ent.HasRange = d.Bool()
	ent.RangeLo = d.U64()
	ent.RangeHi = d.U64()
	ent.Episode = d.U64()
	ent.lru = d.U64()
}

// SaveState encodes the NRBQ.
func (q *NRBQ) SaveState(e *ckpt.Encoder) {
	e.Tag("nrbq")
	e.Int(len(q.entries))
	e.Int(q.n)
	for i := 0; i < q.n; i++ {
		en := &q.entries[i]
		e.U64(en.Seq)
		e.U64(en.BranchPC)
		e.Int(en.ReconvPC)
		e.U64(uint64(en.Mask))
		e.Bool(en.used)
	}
}

// LoadState restores state saved from a queue with the same capacity.
func (q *NRBQ) LoadState(d *ckpt.Decoder) {
	d.Tag("nrbq")
	capacity := d.Int()
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if capacity != len(q.entries) {
		d.Fail("NRBQ capacity mismatch: checkpoint %d, queue %d", capacity, len(q.entries))
		return
	}
	if n < 0 || n > capacity {
		d.Fail("NRBQ live count %d out of range (capacity %d)", n, capacity)
		return
	}
	q.n = n
	for i := 0; i < n; i++ {
		en := &q.entries[i]
		en.Seq = d.U64()
		en.BranchPC = d.U64()
		en.ReconvPC = d.Int()
		en.Mask = RegMask(d.U64())
		en.used = d.Bool()
	}
}
