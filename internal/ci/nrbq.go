package ci

import "civect/internal/isa"

// RegMask is a bit per logical register; bit r set means register r was
// written in the region the mask covers.
type RegMask uint64

// Set marks register r as written.
func (m *RegMask) Set(r isa.Reg) { *m |= 1 << r }

// Has reports whether register r is marked written.
func (m RegMask) Has(r isa.Reg) bool { return m&(1<<r) != 0 }

// NRBQEntry tracks one in-flight conditional branch: its estimated
// re-convergent point and the mask of logical registers written after
// this branch and before the next one (§2.3.2).
type NRBQEntry struct {
	Seq      uint64 // pipeline sequence number of the branch
	BranchPC uint64
	ReconvPC int
	Mask     RegMask
	used     bool
}

// NRBQ is the Not Retired Branch Queue: a FIFO of in-flight conditional
// branches (16 entries in the paper, §3.1). When the queue is full the
// oldest entry is dropped; losing mask information for very old branches
// only makes CI detection more conservative for them.
type NRBQ struct {
	entries []NRBQEntry
	n       int // live entries, stored at entries[0:n], oldest first
}

// NewNRBQ builds a queue with the given capacity.
func NewNRBQ(capacity int) *NRBQ {
	if capacity <= 0 {
		panic("ci: NRBQ capacity must be positive")
	}
	return &NRBQ{entries: make([]NRBQEntry, capacity)}
}

// Len returns the number of live entries.
func (q *NRBQ) Len() int { return q.n }

// Cap returns the capacity.
func (q *NRBQ) Cap() int { return len(q.entries) }

// PushBranch appends an entry for a newly decoded conditional branch
// with a cleared mask. If the queue is full, the oldest entry is
// dropped.
func (q *NRBQ) PushBranch(seq, branchPC uint64, reconvPC int) {
	if q.n == len(q.entries) {
		copy(q.entries, q.entries[1:])
		q.n--
	}
	q.entries[q.n] = NRBQEntry{Seq: seq, BranchPC: branchPC, ReconvPC: reconvPC, used: true}
	q.n++
}

// NoteDest records that the newest region wrote logical register r
// ("for each new instruction, the bit corresponding to the destination
// register is set to one for the entry at the tail"). With no in-flight
// branch there is nothing to track.
func (q *NRBQ) NoteDest(r isa.Reg) {
	if q.n == 0 {
		return
	}
	q.entries[q.n-1].Mask.Set(r)
}

// Find returns the entry for the branch with sequence number seq, or
// nil.
func (q *NRBQ) Find(seq uint64) *NRBQEntry {
	for i := 0; i < q.n; i++ {
		if q.entries[i].Seq == seq {
			return &q.entries[i]
		}
	}
	return nil
}

// MaskFrom ORs the masks of the branch with sequence seq and every
// younger entry — the CRP-mask initialisation on a misprediction
// ("ORing all the masks in NRBQ starting from the mispredicted branch to
// the branch at the tail"). ok is false when the branch has already left
// the queue.
func (q *NRBQ) MaskFrom(seq uint64) (RegMask, bool) {
	var m RegMask
	found := false
	for i := 0; i < q.n; i++ {
		if q.entries[i].Seq == seq {
			found = true
		}
		if found {
			m |= q.entries[i].Mask
		}
	}
	return m, found
}

// SquashYoungerThan removes entries with sequence numbers strictly
// greater than seq (misprediction recovery: the squashed wrong path's
// branches leave the queue).
func (q *NRBQ) SquashYoungerThan(seq uint64) {
	keep := 0
	for i := 0; i < q.n; i++ {
		if q.entries[i].Seq <= seq {
			q.entries[keep] = q.entries[i]
			keep++
		}
	}
	q.n = keep
}

// RetireUpTo removes entries with sequence numbers less than or equal
// to seq (the branch has committed and is no longer in flight).
func (q *NRBQ) RetireUpTo(seq uint64) {
	keep := 0
	for i := 0; i < q.n; i++ {
		if q.entries[i].Seq > seq {
			q.entries[keep] = q.entries[i]
			keep++
		}
	}
	q.n = keep
}

// SizeBytes returns the §3.1 accounting: 8 bytes per entry (16 entries
// -> 128 bytes in the paper's configuration).
func (q *NRBQ) SizeBytes() int { return len(q.entries) * 8 }

// CRP is the Current Re-convergent Point register (§2.3.1–2.3.2): the
// re-convergent PC of the most recent qualifying misprediction, the R
// (reached) flag, and the mask of logical registers written since the
// branch was fetched and before the re-convergent point was reached, on
// either path.
type CRP struct {
	Valid   bool
	PC      int
	Reached bool
	Mask    RegMask
	// Episode numbers CRP activations so reuse statistics can be
	// attributed to the misprediction that opened the episode.
	Episode uint64
}

// Activate loads the CRP for a new misprediction episode.
func (c *CRP) Activate(reconvPC int, mask RegMask) {
	c.Valid = true
	c.PC = reconvPC
	c.Reached = false
	c.Mask = mask
	c.Episode++
}

// Deactivate clears the CRP.
func (c *CRP) Deactivate() { c.Valid = false; c.Reached = false }

// NoteFetch updates the CRP for a newly decoded instruction at pc that
// writes dest (hasDest). Before the re-convergent point is reached,
// destination registers accumulate into the mask; reaching the
// re-convergent PC sets R. It returns true if this fetch reached the
// re-convergent point.
func (c *CRP) NoteFetch(pc int, dest isa.Reg, hasDest bool) (reachedNow bool) {
	if !c.Valid {
		return false
	}
	if !c.Reached {
		if pc == c.PC {
			c.Reached = true
			return true
		}
		if hasDest {
			c.Mask.Set(dest)
		}
	}
	return false
}

// Independent reports whether an instruction fetched after the
// re-convergent point, with the given source registers, is control
// independent: all its sources must be unwritten in the mask.
func (c *CRP) Independent(srcs []isa.Reg) bool {
	if !c.Valid || !c.Reached {
		return false
	}
	for _, r := range srcs {
		if c.Mask.Has(r) {
			return false
		}
	}
	return true
}

// SizeBytes returns the §3.1 accounting: 8 bytes of PC plus 8 bytes of
// mask.
func (c *CRP) SizeBytes() int { return 16 }
