package ci

import (
	"testing"
	"testing/quick"

	"civect/internal/isa"
)

func TestRegMask(t *testing.T) {
	var m RegMask
	if m.Has(0) || m.Has(63) {
		t.Error("empty mask must have no bits")
	}
	m.Set(0)
	m.Set(63)
	if !m.Has(0) || !m.Has(63) {
		t.Error("set bits must read back")
	}
	if m.Has(32) {
		t.Error("unset bit must not read back")
	}
}

func TestNRBQPushAndMask(t *testing.T) {
	q := NewNRBQ(16)
	q.PushBranch(1, 100, 110)
	q.NoteDest(5)
	q.NoteDest(6)
	q.PushBranch(2, 120, 130)
	q.NoteDest(7)

	e := q.Find(1)
	if e == nil || !e.Mask.Has(5) || !e.Mask.Has(6) || e.Mask.Has(7) {
		t.Errorf("branch 1 mask wrong: %+v", e)
	}
	e2 := q.Find(2)
	if e2 == nil || !e2.Mask.Has(7) || e2.Mask.Has(5) {
		t.Errorf("branch 2 mask wrong: %+v", e2)
	}

	// OR from branch 1 to tail covers both regions.
	m, ok := q.MaskFrom(1)
	if !ok || !m.Has(5) || !m.Has(6) || !m.Has(7) {
		t.Errorf("MaskFrom(1) = %b, ok=%v", m, ok)
	}
	// From branch 2 only its own region.
	m, ok = q.MaskFrom(2)
	if !ok || m.Has(5) || !m.Has(7) {
		t.Errorf("MaskFrom(2) = %b, ok=%v", m, ok)
	}
	if _, ok := q.MaskFrom(99); ok {
		t.Error("MaskFrom of unknown seq must report !ok")
	}
}

func TestNRBQNoteDestWithoutBranch(t *testing.T) {
	q := NewNRBQ(4)
	q.NoteDest(3) // must not panic
	if q.Len() != 0 {
		t.Error("NoteDest must not create entries")
	}
}

func TestNRBQOverflowDropsOldest(t *testing.T) {
	q := NewNRBQ(2)
	q.PushBranch(1, 10, 11)
	q.PushBranch(2, 20, 21)
	q.PushBranch(3, 30, 31)
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2", q.Len())
	}
	if q.Find(1) != nil {
		t.Error("oldest entry should have been dropped")
	}
	if q.Find(2) == nil || q.Find(3) == nil {
		t.Error("younger entries should remain")
	}
}

func TestNRBQSquashAndRetire(t *testing.T) {
	q := NewNRBQ(8)
	for s := uint64(1); s <= 5; s++ {
		q.PushBranch(s, s*10, int(s*10)+1)
	}
	q.SquashYoungerThan(3)
	if q.Len() != 3 || q.Find(4) != nil || q.Find(5) != nil {
		t.Errorf("after squash len=%d", q.Len())
	}
	q.RetireUpTo(2)
	if q.Len() != 1 || q.Find(3) == nil {
		t.Errorf("after retire len=%d", q.Len())
	}
}

func TestNRBQSizeBytes(t *testing.T) {
	// §3.1: "The NRBQ occupies 128 bytes (16 entries * 8 bytes)".
	if got := NewNRBQ(16).SizeBytes(); got != 128 {
		t.Errorf("NRBQ size = %d, want 128", got)
	}
}

func TestNRBQBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNRBQ(0)
}

func TestCRPActivation(t *testing.T) {
	var c CRP
	if c.Valid {
		t.Fatal("zero CRP must be invalid")
	}
	var m RegMask
	m.Set(3)
	c.Activate(50, m)
	if !c.Valid || c.Reached || c.PC != 50 || !c.Mask.Has(3) {
		t.Errorf("activation wrong: %+v", c)
	}
	ep := c.Episode
	c.Activate(60, 0)
	if c.Episode != ep+1 {
		t.Error("episode must advance on each activation")
	}
	c.Deactivate()
	if c.Valid {
		t.Error("deactivate must clear valid")
	}
}

func TestCRPMaskAccumulationAndReach(t *testing.T) {
	var c CRP
	c.Activate(10, 0)
	// Before the re-convergent point, destinations accumulate.
	if c.NoteFetch(5, 7, true) {
		t.Error("pc 5 is not the re-convergent point")
	}
	if !c.Mask.Has(7) {
		t.Error("destination must accumulate into the mask")
	}
	// A non-writing instruction accumulates nothing.
	c.NoteFetch(6, 0, false)
	if c.Mask.Has(0) {
		t.Error("non-writing instruction must not set mask bits")
	}
	// Reaching the point sets R and stops accumulation.
	if !c.NoteFetch(10, 9, true) {
		t.Error("reaching the re-convergent PC must report reachedNow")
	}
	if c.Mask.Has(9) {
		t.Error("the re-convergent instruction's dest must not accumulate")
	}
	c.NoteFetch(11, 8, true)
	if c.Mask.Has(8) {
		t.Error("accumulation must stop after the point is reached")
	}
}

func TestCRPIndependent(t *testing.T) {
	var c CRP
	c.Activate(10, 0)
	c.NoteFetch(5, 7, true)

	// Not reached yet: nothing is independent.
	if c.Independent([]isa.Reg{1}) {
		t.Error("independence requires the re-convergent point reached")
	}
	c.NoteFetch(10, 0, false)
	if !c.Independent([]isa.Reg{1, 2}) {
		t.Error("sources with clear mask bits are independent")
	}
	if c.Independent([]isa.Reg{7}) {
		t.Error("a source written in the region is dependent")
	}
	if c.Independent([]isa.Reg{1, 7}) {
		t.Error("any dependent source makes the instruction dependent")
	}
	if !c.Independent(nil) {
		t.Error("an instruction with no sources is independent")
	}
	c.Deactivate()
	if c.Independent(nil) {
		t.Error("inactive CRP reports nothing independent")
	}
}

func TestCRPSizeBytes(t *testing.T) {
	var c CRP
	if c.SizeBytes() != 16 {
		t.Errorf("CRP size = %d, want 16", c.SizeBytes())
	}
}

// Property: MaskFrom(seq) equals the union of individual masks from seq
// onward under arbitrary push/note sequences.
func TestNRBQMaskFromProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewNRBQ(8)
		model := []struct {
			seq  uint64
			mask RegMask
		}{}
		seq := uint64(0)
		for _, op := range ops {
			if op%3 == 0 {
				seq++
				q.PushBranch(seq, seq*4, int(seq*4)+1)
				model = append(model, struct {
					seq  uint64
					mask RegMask
				}{seq, 0})
				if len(model) > 8 {
					model = model[1:]
				}
			} else if len(model) > 0 {
				r := isa.Reg(op % 64)
				q.NoteDest(r)
				model[len(model)-1].mask.Set(r)
			}
		}
		for i, m := range model {
			var want RegMask
			for _, m2 := range model[i:] {
				want |= m2.mask
			}
			got, ok := q.MaskFrom(m.seq)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
