package ci

import (
	"math/bits"

	"civect/internal/isa"
)

// OperandKind classifies how a replicated instruction's source operand
// is identified in the SRSMT (the paper's seq1/seq2 fields: "identify
// the instructions that compute the source operands if they have been
// vectorized, or the value of the scalar operand otherwise").
type OperandKind uint8

const (
	// OperandNone marks an unused operand slot.
	OperandNone OperandKind = iota
	// OperandScalar is a scalar operand captured by value at
	// vectorization time; every replica uses the same value.
	OperandScalar
	// OperandVec is an operand produced by another vectorized
	// instruction; replica k reads the producer entry's replica k.
	OperandVec
	// OperandSelf is a recurrence: replica k reads this entry's own
	// replica k-1 (replica 0 uses the architectural value captured in
	// Value), e.g. the accumulator in Figure 1's I11.
	OperandSelf
)

// OperandRef is one seq1/seq2 slot.
type OperandRef struct {
	Kind OperandKind
	// Value is the captured scalar (OperandScalar) or the seed of a
	// recurrence (OperandSelf).
	Value uint64
	// PC and Gen identify the producer SRSMT entry for OperandVec; Gen
	// guards against the producer entry being reallocated.
	PC  uint64
	Gen uint64
	// Prod caches the producer's table way for OperandVec so the
	// per-cycle replica input resolution skips the set scan. Ways are
	// fixed storage, so the pointer stays valid; Valid+Gen detect
	// reallocation exactly as a Lookup would.
	Prod *Entry
	// Base is the producer's Decode cursor at the time this entry was
	// created: consumer replica k reads the producer's absolute replica
	// Base+k, which keeps the two instruction streams aligned.
	Base int
}

// ReplicaState tracks one speculative instance through the pipeline.
type ReplicaState uint8

const (
	// ReplicaWaiting sits in the issue queue waiting for operands,
	// a functional unit, or a cache port.
	ReplicaWaiting ReplicaState = iota
	// ReplicaIssued is executing.
	ReplicaIssued
	// ReplicaDone has produced its value.
	ReplicaDone
	// ReplicaFailed could not produce a value (producer entry died);
	// validating against it fails.
	ReplicaFailed
)

// Replica is one speculative instance of a vectorized instruction.
// Replica slots form a ring buffer indexed by absolute instance number;
// Abs identifies which absolute instance currently occupies the slot.
type Replica struct {
	State ReplicaState
	// Abs is the absolute replica index occupying this ring slot.
	Abs int
	// Dest is the physical register (monolithic mode) or speculative
	// data memory position holding the result; -1 when the storage has
	// been released.
	Dest int
	// Value is the computed result (also kept here so validation can
	// proceed when the storage is the slow speculative memory).
	Value uint64
	// Addr is the memory address a load replica reads.
	Addr uint64
	// DoneAt is the cycle the value becomes available.
	DoneAt uint64
}

// TurnHeader is the per-way arbitration fast-path block of an SRSMT
// entry: everything the worklist turn (replicaTickEvent) reads to
// decide whether a listed entry has actionable work, packed into a
// dense side-array parallel to the way array (SoA split). One header
// is ~3 cache lines smaller than the full Entry, and consecutive ways'
// headers are adjacent, so the per-cycle walk over the listed entries
// touches a fraction of the lines the AoS layout cost.
//
// Headers are owned by the table: NewSRSMT allocates one per way and
// each Entry embeds a pointer to its own, fixed for the way's lifetime
// (field access promotes through the embedding, so pipeline code reads
// e.ActiveMask exactly as before the split).
type TurnHeader struct {
	Valid bool
	// SeedCaptured marks an OperandSelf seed value stored (in
	// Src1/Src2 .Value), SeedBroken that the seed register was
	// squashed before capture; SeedPhys below is the register watched
	// while neither is set (-1 when there is no pending seed).
	SeedCaptured bool
	SeedBroken   bool
	// Listed reports whether this incarnation is currently enqueued on
	// the pipeline's active-entry worklist. Idle entries are parked off
	// the list and re-inserted in Stamp order when cursor movement or a
	// wakeup creates work, so arbitration order is identical to
	// scanning every entry every cycle.
	Listed bool
	// Idle counts consecutive arbitration turns with nothing
	// actionable; the event-driven scheduler parks an entry only after
	// a few of them, so entries that bounce between idle and woken
	// every cycle (the steady commit-refill rhythm) keep their listing
	// instead of paying a sorted re-insertion per wake. Purely a
	// scheduling-cost knob: an idle listed turn and a parked entry are
	// observationally identical.
	Idle uint8
	// NSrc is Instr's source-operand count, precomputed so replica
	// issue does not re-derive it every attempt.
	NSrc uint8
	// Gen distinguishes successive allocations of the same table way so
	// stale cross-entry references can be detected.
	Gen uint64
	// ActiveMask mirrors Pending per ring slot (bit i covers
	// Replicas[i]) so the scan visits only actionable slots. Valid for
	// rings of at most 64 slots; larger rings fall back to a full scan.
	ActiveMask uint64
	// BlockedMask holds Waiting slots parked on an operand event (their
	// producer replica, producer allocation, or recurrence seed is not
	// resolved yet). Blocked slots are skipped by the per-cycle scan and
	// re-armed into ActiveMask by Unblock when the event fires; a slot
	// is in at most one of the two masks, and Pending covers both. Only
	// the event-driven scheduler blocks slots; the naive reference
	// re-attempts them every cycle.
	BlockedMask uint64
	// IssuedMask mirrors the Issued slots within ActiveMask, and
	// NextDone lower-bounds the earliest cycle one of them can retire.
	// Together they let the event-driven scheduler skip the turns of an
	// entry that is only waiting out functional-unit or cache latency —
	// the remaining poll the wakeup chains cannot remove. Maintained by
	// the pipeline (issue, settle, overwrite); meaningless to the naive
	// reference.
	IssuedMask uint64
	NextDone   uint64
	// Issue counts replicas issued but not yet finished executing.
	Issue int
	// Pending counts allocated ring slots in the Waiting or Issued
	// states — the slots the per-cycle replica scan can still act on.
	// The pipeline maintains it at every state transition so an entry
	// whose replicas are all Done/Failed can be skipped in O(1).
	Pending int
	// NRegs is the batch size: how many replicas the entry keeps ahead
	// of the Decode cursor. The ring Replicas holds 2·NRegs slots so
	// that consumed-but-uncommitted replicas survive for recovery
	// replay ("in the case that not enough free registers are
	// available ... a lower number of replicas or none at all are
	// created").
	NRegs int
	// Cursors count dynamic instances of the instruction since the
	// entry was created, so replica abs k always lines up with the
	// k-th instance after the creator even when some instances find no
	// replica and execute normally.
	//
	// Decode advances on every decoded instance (validated or not);
	// Commit on every committed instance; Alloc is one past the newest
	// allocated replica (indices skipped by Decode are never
	// allocated — they stay holes).
	Decode   int
	Commit   int
	Alloc    int
	SeedPhys int
	// Stamp is the creation order of this incarnation — the worklist
	// arbitration order activateEntry re-inserts at.
	Stamp uint64
}

// Entry is one SRSMT entry (Figure 6): the replicated instruction, its
// replica set and consumption cursors, operand identities, the DAEC
// counter and the address range of load replicas (§2.4.3).
//
// The arbitration fast path (the worklist turn header and the wakeup
// bookkeeping) lives in the embedded *TurnHeader — a packed side-array
// owned by the table (SoA split); per-validation and per-creation
// fields stay in the entry body.
type Entry struct {
	*TurnHeader

	// IsLoad marks load entries (address-sequence replicas).
	IsLoad bool

	Replicas []Replica

	// Consumers chains the entries whose OperandVec inputs read this
	// entry's replicas: when a replica here settles (or the allocation
	// frontier advances, or the entry dies), the pipeline wakes them so
	// their blocked replicas re-attempt arbitration. Stale incarnations
	// are dropped lazily on wake and compacted by AddConsumer.
	Consumers []ConsumerRef

	PC    uint64
	Instr isa.Instr

	// Stride is the predicted stride a vectorized load was created
	// with; validation requires it to keep on being the same.
	Stride int64
	// BatchBase is the architectural address the current replica batch
	// extends from (replica k reads BatchBase + Stride·(k+1)).
	BatchBase uint64

	Src1, Src2 OperandRef

	// CreatorSeq is the dynamic sequence number of the instance that
	// created the entry; only younger instances move the cursors.
	CreatorSeq uint64
	// DAEC is the Dead Association Elimination Counter (§2.4.2).
	DAEC int

	// HasRange marks RangeLo/RangeHi as meaningful (load entries).
	HasRange         bool
	RangeLo, RangeHi uint64

	// Episode attributes the entry to the CRP episode that selected it
	// (reuse statistics, Figure 5).
	Episode uint64

	// way is this entry's fixed index in the table's way array, set at
	// construction and preserved across incarnations; it backs the
	// table's validity bitmap.
	way int32

	lru uint64
}

// Deallocatable reports whether the entry can be reclaimed: no
// validation in progress and no replica executing (§2.3.3).
func (e *Entry) Deallocatable() bool {
	h := e.TurnHeader
	return h.Decode == h.Commit && h.Issue == 0
}

// Slot returns the ring slot for absolute replica index abs, or nil
// when the slot has been reused for a different absolute index. The
// ring size is a power of two (InitRing), so the index is a mask, not
// a division.
func (e *Entry) Slot(abs int) *Replica {
	if abs < 0 || len(e.Replicas) == 0 {
		return nil
	}
	r := &e.Replicas[abs&(len(e.Replicas)-1)]
	if r.Abs != abs {
		return nil
	}
	return r
}

// slotBit returns slot's position in the ring masks. (The &63 keeps
// the shift in range for >64-slot rings, whose masks are unused.)
func (e *Entry) slotBit(slot *Replica) uint64 {
	return 1 << (uint(slot.Abs) & uint(len(e.Replicas)-1) & 63)
}

// Settle retires a pending (Waiting/Issued, possibly blocked) slot into
// a terminal state, keeping the Pending counter and both ring masks
// coherent. Every transition out of Waiting/Issued must go through
// here — hand-rolled bookkeeping at call sites is how they desync.
func (e *Entry) Settle(slot *Replica, st ReplicaState) {
	// The header pointer is hoisted into a local here (and in every
	// other multi-access hot path): a store through *TurnHeader could
	// alias the embedded pointer field for all the compiler knows, so
	// without the local every access would reload e.TurnHeader.
	h := e.TurnHeader
	slot.State = st
	h.Pending--
	b := e.slotBit(slot)
	h.ActiveMask &^= b
	h.BlockedMask &^= b
	h.IssuedMask &^= b
}

// Block parks a Waiting slot on an operand event: it leaves the
// scanned ActiveMask until Unblock re-arms it.
func (e *Entry) Block(slot *Replica) {
	h := e.TurnHeader
	b := e.slotBit(slot)
	h.ActiveMask &^= b
	h.BlockedMask |= b
}

// MarkIssued records a slot's transition to Issued in the issued mask.
func (e *Entry) MarkIssued(slot *Replica) { e.IssuedMask |= e.slotBit(slot) }

// Unblock re-arms every blocked slot for arbitration and returns the
// mask of slots it moved.
func (e *Entry) Unblock() uint64 {
	h := e.TurnHeader
	m := h.BlockedMask
	h.ActiveMask |= m
	h.BlockedMask = 0
	return m
}

// ConsumerRef pins one consumer-entry incarnation on a producer's
// wakeup chain; Gen detects the consumer way being recycled.
type ConsumerRef struct {
	Ent *Entry
	Gen uint64
}

// Live reports whether the chained incarnation still exists.
func (c ConsumerRef) Live() bool {
	h := c.Ent.TurnHeader
	return h.Valid && h.Gen == c.Gen
}

// AddConsumer chains consumer c to e's wakeup list. Dead incarnations
// are compacted once the list grows past the table's worst case, so a
// long-lived producer feeding a frequently recycled consumer way
// cannot grow the chain without bound.
func (e *Entry) AddConsumer(c *Entry) {
	if len(e.Consumers) >= 16 {
		live := e.Consumers[:0]
		for _, r := range e.Consumers {
			if r.Live() {
				live = append(live, r)
			}
		}
		e.Consumers = live
	}
	e.Consumers = append(e.Consumers, ConsumerRef{Ent: c, Gen: c.Gen})
}

// InitRing sizes the replica ring to at least n slots, rounded up to a
// power of two so Slot can mask instead of divide, reusing the backing
// array left behind by the way's previous incarnation when it is large
// enough.
func (e *Entry) InitRing(n int) {
	size := 1
	for size < n {
		size <<= 1
	}
	if cap(e.Replicas) >= size {
		e.Replicas = e.Replicas[:size]
	} else {
		e.Replicas = make([]Replica, size)
	}
	for i := range e.Replicas {
		e.Replicas[i] = Replica{Abs: -1, Dest: -1}
	}
	h := e.TurnHeader
	h.ActiveMask = 0
	h.BlockedMask = 0
	h.IssuedMask = 0
	h.NextDone = 0
}

// CoversAddr reports whether addr falls in the entry's replica address
// range (the §2.4.3 store coherence check).
func (e *Entry) CoversAddr(addr uint64) bool {
	return e.Valid && e.HasRange && addr >= e.RangeLo && addr <= e.RangeHi
}

// SRSMT is the Scalar Register Set Map Table: set-associative, indexed
// by the PC of the vectorized instruction (Table 1: 64 sets, 4-way).
type SRSMT struct {
	sets  int
	assoc int
	ways  []Entry
	// headers is the ways' packed TurnHeader side-array (SoA split):
	// headers[i] is ways[i].TurnHeader for the way's whole lifetime.
	headers []TurnHeader
	clock   uint64
	gen     uint64
	// present is a PC-indexed bitmap of valid entries (creation checks
	// Lookup first, so a PC maps to at most one way). Lookup consults it
	// before scanning the set: the pipeline probes the table for every
	// committed and renamed instruction, and almost all probes miss.
	present []uint64
	// valid is a way-indexed bitmap of valid entries, so the whole-table
	// walks the pipeline performs at every recovery (OnRecovery,
	// ForEachValid) skip straight to the handful of live ways — in the
	// exact way-index order a full scan would visit, which release-order
	// determinism depends on.
	valid []uint64
}

// NewSRSMT builds the table.
func NewSRSMT(sets, assoc int) *SRSMT {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("ci: SRSMT sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("ci: SRSMT associativity must be positive")
	}
	t := &SRSMT{
		sets: sets, assoc: assoc,
		ways:    make([]Entry, sets*assoc),
		headers: make([]TurnHeader, sets*assoc),
		valid:   make([]uint64, (sets*assoc+63)/64),
	}
	for i := range t.ways {
		t.ways[i].way = int32(i)
		t.ways[i].TurnHeader = &t.headers[i]
	}
	return t
}

func (t *SRSMT) set(pc uint64) []Entry {
	s := int(pc) & (t.sets - 1)
	return t.ways[s*t.assoc : (s+1)*t.assoc]
}

// Lookup returns the valid entry for pc, or nil.
func (t *SRSMT) Lookup(pc uint64) *Entry {
	w := pc >> 6
	if w >= uint64(len(t.present)) || t.present[w]&(1<<(pc&63)) == 0 {
		return nil
	}
	// The validity probe reads the packed header array directly: the
	// set's headers share a cache line, where the full Entry bodies
	// span several each.
	base := (int(pc) & (t.sets - 1)) * t.assoc
	for i := base; i < base+t.assoc; i++ {
		if t.headers[i].Valid && t.ways[i].PC == pc {
			return &t.ways[i]
		}
	}
	return nil
}

// markPresent sets or clears pc's presence bit.
func (t *SRSMT) markPresent(pc uint64, on bool) {
	w := pc >> 6
	if w >= uint64(len(t.present)) {
		if !on {
			return
		}
		grown := make([]uint64, max(2*len(t.present), int(w)+8))
		copy(grown, t.present)
		t.present = grown
	}
	if on {
		t.present[w] |= 1 << (pc & 63)
	} else {
		t.present[w] &^= 1 << (pc & 63)
	}
}

// Touch refreshes the entry's LRU stamp.
func (t *SRSMT) Touch(e *Entry) {
	t.clock++
	e.lru = t.clock
}

// AllocCandidate returns the way to use for a new entry at pc: an
// invalid way if one exists, else the LRU deallocatable way, else nil
// ("If no entry can be deallocated, the instruction is not vectorized").
// When the returned entry is Valid, the caller must release the
// resources it owns before reinitialising it via Init.
func (t *SRSMT) AllocCandidate(pc uint64) *Entry {
	ways := t.set(pc)
	var victim *Entry
	for i := range ways {
		if !ways[i].Valid {
			return &ways[i]
		}
	}
	for i := range ways {
		if ways[i].Deallocatable() {
			if victim == nil || ways[i].lru < victim.lru {
				victim = &ways[i]
			}
		}
	}
	return victim
}

// Init (re)initialises a way returned by AllocCandidate for pc with a
// fresh generation, returning the entry. The previous incarnation's
// replica ring storage is kept for InitRing to reuse.
func (t *SRSMT) Init(e *Entry, pc uint64, in isa.Instr) *Entry {
	t.clock++
	t.gen++
	ring := e.Replicas[:0]
	cons := e.Consumers[:0]
	way := e.way
	hdr := e.TurnHeader
	*e = Entry{TurnHeader: hdr, PC: pc, Instr: in, way: way, lru: t.clock}
	*hdr = TurnHeader{Valid: true, Gen: t.gen}
	e.Replicas = ring
	e.Consumers = cons
	t.valid[way>>6] |= 1 << (uint(way) & 63)
	t.markPresent(pc, true)
	return e
}

// Invalidate clears an entry, keeping its replica ring and consumer
// chain storage for the way's next incarnation (both are emptied, so
// no stale wakeup can leak into it). The caller releases owned
// resources and wakes the chained consumers first.
func (t *SRSMT) Invalidate(e *Entry) {
	if e.Valid {
		t.markPresent(e.PC, false)
	}
	ring := e.Replicas[:0]
	cons := e.Consumers[:0]
	way := e.way
	hdr := e.TurnHeader
	*e = Entry{TurnHeader: hdr, way: way}
	*hdr = TurnHeader{}
	e.Replicas = ring
	e.Consumers = cons
	t.valid[way>>6] &^= 1 << (uint(way) & 63)
}

// ForEachValid calls fn for every valid entry in way-index order; fn
// returning false stops the walk. The validity bitmap makes the walk
// proportional to the live entries, not the table size.
func (t *SRSMT) ForEachValid(fn func(*Entry) bool) {
	for w, word := range t.valid {
		for b := word; b != 0; b &= b - 1 {
			i := w<<6 + bits.TrailingZeros64(b)
			if t.headers[i].Valid && !fn(&t.ways[i]) {
				return
			}
		}
	}
}

// OnRecovery performs the §2.4.4 recovery action: for every valid entry
// the commit field is copied into the decode field, rewinding replica
// consumption to the committed point. When countDAEC is set (branch
// misprediction recoveries), the DAEC counter is incremented for
// entries whose decode and commit were already equal and reset
// otherwise (§2.4.2); entries whose DAEC reaches 2 are passed to dead,
// which must release their resources, and are then invalidated.
func (t *SRSMT) OnRecovery(countDAEC bool, dead func(*Entry)) {
	for w, word := range t.valid {
		for b := word; b != 0; b &= b - 1 {
			i := w<<6 + bits.TrailingZeros64(b)
			h := &t.headers[i]
			if !h.Valid {
				continue
			}
			e := &t.ways[i]
			if countDAEC {
				if h.Decode == h.Commit {
					e.DAEC++
				} else {
					e.DAEC = 0
				}
			}
			h.Decode = h.Commit
			if e.DAEC >= 2 && h.Issue == 0 {
				if dead != nil {
					dead(e)
				}
				t.Invalidate(e)
			}
		}
	}
}

// SizeBytes returns the §3.1 accounting: 45 bytes per element (Figure 6
// with 4 replicas and 256 registers), 4 ways × 64 sets × 45 = 11520
// bytes in the paper's configuration.
func (t *SRSMT) SizeBytes() int { return t.sets * t.assoc * 45 }
