package ci

import "civect/internal/isa"

// OperandKind classifies how a replicated instruction's source operand
// is identified in the SRSMT (the paper's seq1/seq2 fields: "identify
// the instructions that compute the source operands if they have been
// vectorized, or the value of the scalar operand otherwise").
type OperandKind uint8

const (
	// OperandNone marks an unused operand slot.
	OperandNone OperandKind = iota
	// OperandScalar is a scalar operand captured by value at
	// vectorization time; every replica uses the same value.
	OperandScalar
	// OperandVec is an operand produced by another vectorized
	// instruction; replica k reads the producer entry's replica k.
	OperandVec
	// OperandSelf is a recurrence: replica k reads this entry's own
	// replica k-1 (replica 0 uses the architectural value captured in
	// Value), e.g. the accumulator in Figure 1's I11.
	OperandSelf
)

// OperandRef is one seq1/seq2 slot.
type OperandRef struct {
	Kind OperandKind
	// Value is the captured scalar (OperandScalar) or the seed of a
	// recurrence (OperandSelf).
	Value uint64
	// PC and Gen identify the producer SRSMT entry for OperandVec; Gen
	// guards against the producer entry being reallocated.
	PC  uint64
	Gen uint64
	// Prod caches the producer's table way for OperandVec so the
	// per-cycle replica input resolution skips the set scan. Ways are
	// fixed storage, so the pointer stays valid; Valid+Gen detect
	// reallocation exactly as a Lookup would.
	Prod *Entry
	// Base is the producer's Decode cursor at the time this entry was
	// created: consumer replica k reads the producer's absolute replica
	// Base+k, which keeps the two instruction streams aligned.
	Base int
}

// ReplicaState tracks one speculative instance through the pipeline.
type ReplicaState uint8

const (
	// ReplicaWaiting sits in the issue queue waiting for operands,
	// a functional unit, or a cache port.
	ReplicaWaiting ReplicaState = iota
	// ReplicaIssued is executing.
	ReplicaIssued
	// ReplicaDone has produced its value.
	ReplicaDone
	// ReplicaFailed could not produce a value (producer entry died);
	// validating against it fails.
	ReplicaFailed
)

// Replica is one speculative instance of a vectorized instruction.
// Replica slots form a ring buffer indexed by absolute instance number;
// Abs identifies which absolute instance currently occupies the slot.
type Replica struct {
	State ReplicaState
	// Abs is the absolute replica index occupying this ring slot.
	Abs int
	// Dest is the physical register (monolithic mode) or speculative
	// data memory position holding the result; -1 when the storage has
	// been released.
	Dest int
	// Value is the computed result (also kept here so validation can
	// proceed when the storage is the slow speculative memory).
	Value uint64
	// Addr is the memory address a load replica reads.
	Addr uint64
	// DoneAt is the cycle the value becomes available.
	DoneAt uint64
}

// Entry is one SRSMT entry (Figure 6): the replicated instruction, its
// replica set and consumption cursors, operand identities, the DAEC
// counter and the address range of load replicas (§2.4.3).
type Entry struct {
	Valid bool
	PC    uint64
	// Gen distinguishes successive allocations of the same table way so
	// stale cross-entry references can be detected.
	Gen   uint64
	Instr isa.Instr

	IsLoad bool
	// NSrc is Instr's source-operand count, precomputed so replica
	// issue does not re-derive it every attempt.
	NSrc uint8
	// Stride is the predicted stride a vectorized load was created
	// with; validation requires it to keep on being the same.
	Stride int64
	// BatchBase is the architectural address the current replica batch
	// extends from (replica k reads BatchBase + Stride·(k+1)).
	BatchBase uint64

	Src1, Src2 OperandRef

	// NRegs is the batch size: how many replicas the entry keeps ahead
	// of the Decode cursor. The ring Replicas holds 2·NRegs slots so
	// that consumed-but-uncommitted replicas survive for recovery
	// replay ("in the case that not enough free registers are
	// available ... a lower number of replicas or none at all are
	// created").
	NRegs int
	// Cursors count dynamic instances of the instruction since the
	// entry was created, so replica abs k always lines up with the
	// k-th instance after the creator even when some instances find no
	// replica and execute normally.
	//
	// Decode advances on every decoded instance (validated or not);
	// Commit on every committed instance; Alloc is one past the newest
	// allocated replica (indices skipped by Decode are never
	// allocated — they stay holes).
	Decode int
	Commit int
	Alloc  int
	// CreatorSeq is the dynamic sequence number of the instance that
	// created the entry; only younger instances move the cursors.
	CreatorSeq uint64
	// Issue counts replicas issued but not yet finished executing.
	Issue int
	// Pending counts allocated ring slots in the Waiting or Issued
	// states — the slots the per-cycle replica scan can still act on.
	// The pipeline maintains it at every state transition so an entry
	// whose replicas are all Done/Failed can be skipped in O(1).
	Pending int
	// ActiveMask mirrors Pending per ring slot (bit i covers
	// Replicas[i]) so the scan visits only actionable slots. Valid for
	// rings of at most 64 slots; larger rings fall back to a full scan.
	ActiveMask uint64
	// DAEC is the Dead Association Elimination Counter (§2.4.2).
	DAEC int

	// SeedPhys is the physical register seeding an OperandSelf
	// recurrence when the seed value was not ready at creation;
	// SeedCaptured marks the seed value stored (in Src1/Src2 .Value),
	// SeedBroken that the seed register was squashed before capture.
	SeedPhys     int
	SeedCaptured bool
	SeedBroken   bool

	// HasRange marks RangeLo/RangeHi as meaningful (load entries).
	HasRange         bool
	RangeLo, RangeHi uint64

	Replicas []Replica

	// Episode attributes the entry to the CRP episode that selected it
	// (reuse statistics, Figure 5).
	Episode uint64

	// Stamp and Listed belong to the pipeline's active-entry worklist:
	// Stamp is the creation order of this incarnation (worklist
	// arbitration order), Listed whether the incarnation is currently
	// enqueued. Idle entries are parked off the list and re-inserted in
	// Stamp order when cursor movement creates work, so arbitration
	// order is identical to scanning every entry every cycle.
	Stamp  uint64
	Listed bool

	lru uint64
}

// Deallocatable reports whether the entry can be reclaimed: no
// validation in progress and no replica executing (§2.3.3).
func (e *Entry) Deallocatable() bool {
	return e.Decode == e.Commit && e.Issue == 0
}

// Slot returns the ring slot for absolute replica index abs, or nil
// when the slot has been reused for a different absolute index. The
// ring size is a power of two (InitRing), so the index is a mask, not
// a division.
func (e *Entry) Slot(abs int) *Replica {
	if abs < 0 || len(e.Replicas) == 0 {
		return nil
	}
	r := &e.Replicas[abs&(len(e.Replicas)-1)]
	if r.Abs != abs {
		return nil
	}
	return r
}

// Settle retires an actionable (Waiting/Issued) slot into a terminal
// state, keeping the Pending counter and ActiveMask coherent. Every
// transition out of Waiting/Issued must go through here — hand-rolled
// bookkeeping at call sites is how the two desync. (The &63 keeps the
// shift in range for >64-slot rings, whose mask is unused.)
func (e *Entry) Settle(slot *Replica, st ReplicaState) {
	slot.State = st
	e.Pending--
	e.ActiveMask &^= 1 << (uint(slot.Abs) & uint(len(e.Replicas)-1) & 63)
}

// InitRing sizes the replica ring to at least n slots, rounded up to a
// power of two so Slot can mask instead of divide, reusing the backing
// array left behind by the way's previous incarnation when it is large
// enough.
func (e *Entry) InitRing(n int) {
	size := 1
	for size < n {
		size <<= 1
	}
	if cap(e.Replicas) >= size {
		e.Replicas = e.Replicas[:size]
	} else {
		e.Replicas = make([]Replica, size)
	}
	for i := range e.Replicas {
		e.Replicas[i] = Replica{Abs: -1, Dest: -1}
	}
	e.ActiveMask = 0
}

// CoversAddr reports whether addr falls in the entry's replica address
// range (the §2.4.3 store coherence check).
func (e *Entry) CoversAddr(addr uint64) bool {
	return e.Valid && e.HasRange && addr >= e.RangeLo && addr <= e.RangeHi
}

// SRSMT is the Scalar Register Set Map Table: set-associative, indexed
// by the PC of the vectorized instruction (Table 1: 64 sets, 4-way).
type SRSMT struct {
	sets  int
	assoc int
	ways  []Entry
	clock uint64
	gen   uint64
	// present is a PC-indexed bitmap of valid entries (creation checks
	// Lookup first, so a PC maps to at most one way). Lookup consults it
	// before scanning the set: the pipeline probes the table for every
	// committed and renamed instruction, and almost all probes miss.
	present []uint64
}

// NewSRSMT builds the table.
func NewSRSMT(sets, assoc int) *SRSMT {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("ci: SRSMT sets must be a positive power of two")
	}
	if assoc <= 0 {
		panic("ci: SRSMT associativity must be positive")
	}
	return &SRSMT{sets: sets, assoc: assoc, ways: make([]Entry, sets*assoc)}
}

func (t *SRSMT) set(pc uint64) []Entry {
	s := int(pc) & (t.sets - 1)
	return t.ways[s*t.assoc : (s+1)*t.assoc]
}

// Lookup returns the valid entry for pc, or nil.
func (t *SRSMT) Lookup(pc uint64) *Entry {
	w := pc >> 6
	if w >= uint64(len(t.present)) || t.present[w]&(1<<(pc&63)) == 0 {
		return nil
	}
	ways := t.set(pc)
	for i := range ways {
		if ways[i].Valid && ways[i].PC == pc {
			return &ways[i]
		}
	}
	return nil
}

// markPresent sets or clears pc's presence bit.
func (t *SRSMT) markPresent(pc uint64, on bool) {
	w := pc >> 6
	if w >= uint64(len(t.present)) {
		if !on {
			return
		}
		grown := make([]uint64, max(2*len(t.present), int(w)+8))
		copy(grown, t.present)
		t.present = grown
	}
	if on {
		t.present[w] |= 1 << (pc & 63)
	} else {
		t.present[w] &^= 1 << (pc & 63)
	}
}

// Touch refreshes the entry's LRU stamp.
func (t *SRSMT) Touch(e *Entry) {
	t.clock++
	e.lru = t.clock
}

// AllocCandidate returns the way to use for a new entry at pc: an
// invalid way if one exists, else the LRU deallocatable way, else nil
// ("If no entry can be deallocated, the instruction is not vectorized").
// When the returned entry is Valid, the caller must release the
// resources it owns before reinitialising it via Init.
func (t *SRSMT) AllocCandidate(pc uint64) *Entry {
	ways := t.set(pc)
	var victim *Entry
	for i := range ways {
		if !ways[i].Valid {
			return &ways[i]
		}
	}
	for i := range ways {
		if ways[i].Deallocatable() {
			if victim == nil || ways[i].lru < victim.lru {
				victim = &ways[i]
			}
		}
	}
	return victim
}

// Init (re)initialises a way returned by AllocCandidate for pc with a
// fresh generation, returning the entry. The previous incarnation's
// replica ring storage is kept for InitRing to reuse.
func (t *SRSMT) Init(e *Entry, pc uint64, in isa.Instr) *Entry {
	t.clock++
	t.gen++
	ring := e.Replicas[:0]
	*e = Entry{Valid: true, PC: pc, Gen: t.gen, Instr: in, lru: t.clock}
	e.Replicas = ring
	t.markPresent(pc, true)
	return e
}

// Invalidate clears an entry, keeping its replica ring storage for the
// way's next incarnation. The caller releases owned resources first.
func (t *SRSMT) Invalidate(e *Entry) {
	if e.Valid {
		t.markPresent(e.PC, false)
	}
	ring := e.Replicas[:0]
	*e = Entry{}
	e.Replicas = ring
}

// ForEachValid calls fn for every valid entry; fn returning false stops
// the walk.
func (t *SRSMT) ForEachValid(fn func(*Entry) bool) {
	for i := range t.ways {
		if t.ways[i].Valid {
			if !fn(&t.ways[i]) {
				return
			}
		}
	}
}

// OnRecovery performs the §2.4.4 recovery action: for every valid entry
// the commit field is copied into the decode field, rewinding replica
// consumption to the committed point. When countDAEC is set (branch
// misprediction recoveries), the DAEC counter is incremented for
// entries whose decode and commit were already equal and reset
// otherwise (§2.4.2); entries whose DAEC reaches 2 are passed to dead,
// which must release their resources, and are then invalidated.
func (t *SRSMT) OnRecovery(countDAEC bool, dead func(*Entry)) {
	for i := range t.ways {
		e := &t.ways[i]
		if !e.Valid {
			continue
		}
		if countDAEC {
			if e.Decode == e.Commit {
				e.DAEC++
			} else {
				e.DAEC = 0
			}
		}
		e.Decode = e.Commit
		if e.DAEC >= 2 && e.Issue == 0 {
			if dead != nil {
				dead(e)
			}
			t.Invalidate(e)
		}
	}
}

// SizeBytes returns the §3.1 accounting: 45 bytes per element (Figure 6
// with 4 replicas and 256 registers), 4 ways × 64 sets × 45 = 11520
// bytes in the paper's configuration.
func (t *SRSMT) SizeBytes() int { return t.sets * t.assoc * 45 }
