package ci

import (
	"testing"

	"civect/internal/asm"
)

func TestReconvergenceLoop(t *testing.T) {
	// Figure 2-a: a backward branch closes a loop; the re-convergent
	// point is the next instruction in program order.
	p := asm.MustAssemble("loop", `
        movi r1, 10
loop:   subi r1, r1, 1
        bnez r1, loop
        movi r2, 1     ; re-convergent point of the backward branch
        halt
`)
	if got := EstimateReconvergence(p, 2); got != 3 {
		t.Errorf("backward branch reconv = %d, want 3", got)
	}
}

func TestReconvergenceIfThen(t *testing.T) {
	// Figure 2-b: forward branch skipping a "then" body; the
	// re-convergent point is the branch target.
	p := asm.MustAssemble("ifthen", `
        movi r1, 1
        beqz r1, skip    ; pc 1, target 4
        addi r2, r2, 1   ; then body
        addi r3, r3, 1
skip:   movi r4, 1       ; pc 4: re-convergent point
        halt
`)
	if got := EstimateReconvergence(p, 1); got != 4 {
		t.Errorf("if-then reconv = %d, want 4", got)
	}
}

func TestReconvergenceIfThenElse(t *testing.T) {
	// Figure 2-c / Figure 1: the instruction one above the branch
	// target is an unconditional forward jump; the re-convergent point
	// is that jump's destination.
	p := asm.MustAssemble("hammock", `
        movi r1, 0
        movi r2, 0
        movi r3, 0
        movi r4, 0
loop:   ld   r0, 0(r1)   ; pc 4 (the paper's I5)
        bnez r0, else    ; pc 5 (I7), target 8
        addi r2, r2, 1   ; pc 6 (I8)
        jmp  join        ; pc 7 (I9)
else:   addi r3, r3, 1   ; pc 8 (I10)
join:   add  r4, r4, r0  ; pc 9 (I11): re-convergent point
        addi r1, r1, 8
        slti r5, r1, 400
        bnez r5, loop
        halt
`)
	if got := EstimateReconvergence(p, 5); got != 9 {
		t.Errorf("if-then-else reconv = %d, want 9 (the paper's I11)", got)
	}
	// The loop-closing branch at pc 12 is backward.
	if got := EstimateReconvergence(p, 12); got != 13 {
		t.Errorf("loop branch reconv = %d, want 13", got)
	}
}

func TestReconvergenceNonBranch(t *testing.T) {
	p := asm.MustAssemble("nb", "movi r1, 1\nhalt\n")
	if got := EstimateReconvergence(p, 0); got != 1 {
		t.Errorf("non-branch reconv = %d, want pc+1", got)
	}
}

func TestReconvergenceBackwardJumpAboveTarget(t *testing.T) {
	// The instruction above the target is a *backward* jump, so the
	// if-then-else pattern does not apply: fall back to the branch
	// target (if-then shape).
	p := asm.MustAssemble("bj", `
        movi r1, 1
top:    addi r2, r2, 1
        jmp  top         ; pc 2: backward jump (one above target)
        beqz r1, tgt     ; pc 3 -> target 5... (built below)
        nop
tgt:    halt
`)
	// Branch at pc 3 targets pc 5; instruction at pc 4 is nop, so
	// reconv = target = 5.
	if got := EstimateReconvergence(p, 3); got != 5 {
		t.Errorf("reconv = %d, want 5", got)
	}
	// Construct a branch whose target-1 is the backward jmp at pc 2:
	// targeting pc 3 from pc 0 would need a forward branch at pc < 2.
	p2 := asm.MustAssemble("bj2", `
        beqz r1, 3       ; pc 0, target 3; pc 2 is a backward jmp
        addi r2, r2, 1
        jmp  0
        halt
`)
	if got := EstimateReconvergence(p2, 0); got != 3 {
		t.Errorf("reconv = %d, want 3 (backward jump above target ignored)", got)
	}
}
