// Package civect's root benchmark harness: one testing.B benchmark per
// table/figure of the paper's evaluation. Each benchmark runs a
// scaled-down version of the corresponding experiment (the cmd/ciexp
// tool regenerates the full tables) and reports simulator throughput
// plus the figure's headline metric via b.ReportMetric.
//
//	go test -bench=. -benchmem
package civect_test

import (
	"testing"

	"civect/internal/ci"
	"civect/internal/core"
	"civect/internal/harness"
	"civect/internal/workload"
)

// benchInstr is the per-simulation committed-instruction budget for
// benchmarks; a fraction of the harness default so `go test -bench=.`
// stays minutes-scale.
const benchInstr = 30_000

// benchSubset keeps multi-config sweeps to three representative
// benchmarks: branchy (gcc), balanced (gzip), memory-bound (mcf).
var benchSubset = []string{"gcc", "gzip", "mcf"}

func newHarness() *harness.Harness {
	return harness.New(harness.Options{MaxInstr: benchInstr, Benches: benchSubset})
}

func runSpec(b *testing.B, h *harness.Harness, spec harness.RunSpec) *core.Stats {
	b.Helper()
	st, err := h.Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// simulate runs one fresh (unmemoized) simulation per iteration and
// reports simulated instructions per second.
func simulate(b *testing.B, bench string, mode core.Mode, instr uint64) *core.Stats {
	b.Helper()
	wl, err := workload.Spec(bench)
	if err != nil {
		b.Fatal(err)
	}
	var st *core.Stats
	total := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(mode)
		cfg.MaxInstr = instr
		p, err := core.New(cfg, wl.Program, wl.NewMem())
		if err != nil {
			b.Fatal(err)
		}
		st, err = p.Run()
		if err != nil {
			b.Fatal(err)
		}
		total += st.Committed
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
	return st
}

// BenchmarkSimulatorScalar measures raw simulator speed (scal baseline).
func BenchmarkSimulatorScalar(b *testing.B) {
	st := simulate(b, "gcc", core.ModeScalar, benchInstr)
	b.ReportMetric(st.IPC(), "IPC")
}

// BenchmarkSimulatorCI measures simulator speed with the full mechanism.
func BenchmarkSimulatorCI(b *testing.B) {
	st := simulate(b, "gcc", core.ModeCI, benchInstr)
	b.ReportMetric(st.IPC(), "IPC")
	b.ReportMetric(st.ReuseFraction(), "reuse-frac")
}

// BenchmarkIssueStage micro-benchmarks the scheduler hot loop: the
// marginal cost of one steady-state ci-mode cycle (issue wakeup,
// replica arbitration, commit/refill rhythm), with setup and warmup
// excluded. This is the number the event-driven wakeup engine moves.
func BenchmarkIssueStage(b *testing.B) {
	wl, err := workload.SpecWithIters("gcc", 50_000_000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.ModeCI)
	p, err := core.New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		p.Step()
	}
	c0 := p.Stats.Committed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
	b.StopTimer()
	if p.Halted() {
		b.Fatal("workload ended inside the measured slice")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(p.Stats.Committed-c0)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkHardwareCost reproduces the §3.1 storage accounting.
func BenchmarkHardwareCost(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		total = ci.HardwareCost(ci.DefaultCostConfig()).Total()
	}
	b.ReportMetric(float64(total), "bytes")
}

// BenchmarkFig04 sweeps the propagated stridedPCs per rename entry.
func BenchmarkFig04(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		for _, pcs := range []int{1, 2, 4} {
			st := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 2, Regs: 256, StridedPCs: pcs})
			if pcs == 2 {
				b.ReportMetric(st.IPC(), "IPC-2pc")
				b.ReportMetric(st.AvgStridedPCs(), "avg-pcs")
			}
		}
	}
}

// BenchmarkFig05 classifies mispredicted branches (reuse/selected/none).
func BenchmarkFig05(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		st := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 256})
		if st.Mispredicts > 0 {
			b.ReportMetric(float64(st.EpisodesReused)/float64(st.Mispredicts), "reuse-episodes")
			b.ReportMetric(float64(st.EpisodesSelected)/float64(st.Mispredicts), "selected-episodes")
		}
	}
}

// BenchmarkFig08 counts L1D accesses across the six machine configs.
func BenchmarkFig08(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		scal := runSpec(b, h, harness.RunSpec{Bench: "gzip", Mode: core.ModeScalar, Ports: 1, Regs: 256})
		wb := runSpec(b, h, harness.RunSpec{Bench: "gzip", Mode: core.ModeWideBus, Ports: 1, Regs: 256})
		ciS := runSpec(b, h, harness.RunSpec{Bench: "gzip", Mode: core.ModeCI, Ports: 1, Regs: 256})
		b.ReportMetric(float64(scal.L1D.Accesses), "scal1p-accesses")
		b.ReportMetric(float64(wb.L1D.Accesses), "wb1p-accesses")
		b.ReportMetric(float64(ciS.L1D.Accesses), "ci1p-accesses")
	}
}

// BenchmarkFig09 is the headline IPC comparison at 512 registers.
func BenchmarkFig09(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		var hm [3]float64
		for j, mode := range []core.Mode{core.ModeScalar, core.ModeWideBus, core.ModeCI} {
			res, err := h.RunAll(harness.RunSpec{Mode: mode, Ports: 1, Regs: 512})
			if err != nil {
				b.Fatal(err)
			}
			hm[j] = harness.HarmonicMeanIPC(res)
		}
		b.ReportMetric(hm[0], "scal-hmIPC")
		b.ReportMetric(hm[1], "wb-hmIPC")
		b.ReportMetric(hm[2], "ci-hmIPC")
		b.ReportMetric(hm[2]/hm[1]-1, "ci-gain")
	}
}

// BenchmarkFig10 compares squash reuse with the full mechanism.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		wb := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeWideBus, Ports: 1, Regs: 512})
		iw := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCIIW, Ports: 1, Regs: 512})
		full := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 512})
		b.ReportMetric(wb.IPC(), "wb-IPC")
		b.ReportMetric(iw.IPC(), "ci-iw-IPC")
		b.ReportMetric(full.IPC(), "ci-IPC")
	}
}

// BenchmarkFig11 sweeps replicas per vectorized instruction.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		for _, rep := range []int{1, 2, 4, 8} {
			st := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 512, Replicas: rep})
			if rep == 2 || rep == 4 {
				b.ReportMetric(st.IPC(), map[int]string{2: "IPC-2rep", 4: "IPC-4rep"}[rep])
			}
		}
	}
}

// BenchmarkFig12 reports the instruction breakdown for 2 vs 4 replicas.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		two := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 512, Replicas: 2})
		four := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 512, Replicas: 4})
		b.ReportMetric(two.ReuseFraction(), "reuse-2rep")
		b.ReportMetric(four.ReuseFraction(), "reuse-4rep")
		b.ReportMetric(float64(four.ReplicasDispatched), "specCI-4rep")
	}
}

// BenchmarkFig13 exercises the speculative data memory.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		mono := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 256})
		spec := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 256, SpecMem: 768})
		b.ReportMetric(mono.IPC(), "mono-IPC")
		b.ReportMetric(spec.IPC(), "specmem-IPC")
		b.ReportMetric(float64(spec.SpecMemCopies), "copies")
	}
}

// BenchmarkFig14 compares the mechanism against full dynamic
// vectorization [12].
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		ciSt := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 2, Regs: 256})
		ve := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeVect, Ports: 2, Regs: 256})
		b.ReportMetric(ciSt.IPC(), "ci-IPC")
		b.ReportMetric(ve.IPC(), "vect-IPC")
		b.ReportMetric(float64(ve.ReplicasDispatched), "vect-replicas")
	}
}

// BenchmarkRegPressure reproduces the §2.4.2 DAEC ablation.
func BenchmarkRegPressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		noDaec := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 0, NoDAEC: true})
		daec := runSpec(b, h, harness.RunSpec{Bench: "gcc", Mode: core.ModeCI, Ports: 1, Regs: 0})
		b.ReportMetric(noDaec.RegAvgInUse, "regs-noDAEC")
		b.ReportMetric(daec.RegAvgInUse, "regs-DAEC")
	}
}

// BenchmarkStoreConflicts reproduces the §2.4.3 statistic.
func BenchmarkStoreConflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness()
		st := runSpec(b, h, harness.RunSpec{Bench: "gzip", Mode: core.ModeCI, Ports: 1, Regs: 256})
		b.ReportMetric(st.StoreConflictRate(), "conflict-rate")
	}
}
