package sim

import (
	"sync"

	"civect/internal/asm"
	"civect/internal/ci"
	"civect/internal/emu"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/workload"
)

// Workload is a program plus its initial data image, ready to be
// simulated by any number of sessions (each gets a fresh copy of the
// image). Obtain one from the registry (Load), the Figure 1 generator
// (Hammock), or your own assembly source (Custom).
type Workload struct {
	name string
	prog *isa.Program
	// base is the workload's private, mutable image (Custom workloads,
	// or registry loads after a SetWord copy-on-write).
	base *mem.Memory
	// bench backs registry workloads: the shared generated benchmark
	// whose pristine image every session clones.
	bench *workload.Benchmark
}

// Registry loads are memoized: generating a megabyte-tier benchmark is
// expensive and deterministic, so concurrent sweeps share one
// generated program + pristine image per name. The mutex guards only
// the map; generation runs under a per-name Once, so distinct
// workloads generate concurrently and cache hits never block behind an
// in-progress generation.
type loadEntry struct {
	once sync.Once
	b    *workload.Benchmark
	err  error
}

var (
	loadMu sync.Mutex
	loaded = map[string]*loadEntry{}
)

// Workloads returns every registry workload name: the twelve
// SpecInt2000 stand-ins followed by their megabyte-scale .big
// variants and their sampling-scale .ultra variants.
func Workloads() []string {
	names := append(BaseWorkloads(), BigWorkloads()...)
	return append(names, UltraWorkloads()...)
}

// BaseWorkloads returns the base-tier registry names (the twelve
// ~3k-static-instruction SpecInt2000 stand-ins).
func BaseWorkloads() []string { return workload.Names() }

// BigWorkloads returns the megabyte-scale tier's registry names
// ("gcc.big", ...): 100k+-static-instruction multi-phase variants with
// multi-MB working sets.
func BigWorkloads() []string { return workload.BigNames() }

// UltraWorkloads returns the sampling-scale tier's registry names
// ("gcc.ultra", ...): big-tier structure with the outer epoch loop
// sized past 10^7 dynamic instructions — workloads only the sampled
// path affords end-to-end in detail.
func UltraWorkloads() []string { return workload.UltraNames() }

// Load returns the named registry workload ("gcc", "mcf.big", ...).
// Loads are memoized — generation is deterministic — and the returned
// workload is safe to share across concurrent sessions.
func Load(name string) (*Workload, error) {
	loadMu.Lock()
	e, ok := loaded[name]
	if !ok {
		e = &loadEntry{}
		loaded[name] = e
	}
	loadMu.Unlock()
	e.once.Do(func() { e.b, e.err = workload.Spec(name) })
	if e.err != nil {
		return nil, e.err
	}
	return &Workload{name: name, prog: e.b.Program, bench: e.b}, nil
}

// LoadWithIters returns the named registry workload regenerated with
// the given loop trip count — steady-state slicing (warm up, then time
// a fixed window of cycles) needs a program that will not halt inside
// the measured slice. Not memoized.
func LoadWithIters(name string, iters int) (*Workload, error) {
	b, err := workload.SpecWithIters(name, iters)
	if err != nil {
		return nil, err
	}
	return &Workload{name: name, prog: b.Program, bench: b}, nil
}

// Hammock generates the paper's Figure 1 kernel over n elements with
// the given fraction of zero elements steering the hard branch —
// the minimal workload the mechanism targets, for examples and focused
// experiments.
func Hammock(n int, zeroFrac float64, seed int64) *Workload {
	b := workload.Hammock(n, zeroFrac, seed)
	return &Workload{name: "hammock", prog: b.Program, bench: b}
}

// Custom assembles source (the civect assembly dialect) into a
// workload with an empty data image; populate it with SetWord. The
// name labels assembler errors and results.
func Custom(name, source string) (*Workload, error) {
	prog, err := asm.Assemble(name, source)
	if err != nil {
		return nil, err
	}
	return &Workload{name: name, prog: prog, base: mem.New()}, nil
}

// Name returns the workload's name.
func (w *Workload) Name() string { return w.name }

// SetWord sets one 64-bit word of the workload's initial memory image,
// affecting every session built afterwards. Registry workloads
// copy-on-write their shared pristine image first, so mutating one
// never leaks into other Load calls.
func (w *Workload) SetWord(addr, value uint64) {
	if w.base == nil {
		if w.bench != nil {
			w.base = w.bench.NewMem()
		} else {
			w.base = mem.New()
		}
		w.bench = nil
	}
	w.base.Write64(addr, value)
}

// newMem returns a fresh copy of the initial data image for one
// session.
func (w *Workload) newMem() *mem.Memory {
	if w.base != nil {
		return w.base.Clone()
	}
	return w.bench.NewMem()
}

// Disassemble renders the workload's program as assembly text.
func (w *Workload) Disassemble() string { return w.prog.Disassemble() }

// Len returns the program's static instruction count.
func (w *Workload) Len() int { return w.prog.Len() }

// Reconvergence describes one conditional branch and its estimated
// re-convergent point per the §2.3.1 hardware heuristics.
type Reconvergence struct {
	// BranchPC is the conditional branch's static PC.
	BranchPC int
	// JoinPC is the estimated re-convergent PC.
	JoinPC int
	// Kind classifies the branch structure: "if-then",
	// "if-then-else", or "loop (backward)".
	Kind string
}

// Reconvergences estimates the re-convergent point of every
// conditional branch in the workload, as the mechanism's
// re-convergence detection hardware would (§2.3.1).
func (w *Workload) Reconvergences() []Reconvergence {
	var rcs []Reconvergence
	for pc, in := range w.prog.Code {
		if !in.IsCondBranch() {
			continue
		}
		kind := "if-then"
		if in.Target <= pc {
			kind = "loop (backward)"
		} else if above := w.prog.At(in.Target - 1); above.IsJump() && above.Target > in.Target-1 {
			kind = "if-then-else"
		}
		rcs = append(rcs, Reconvergence{
			BranchPC: pc,
			JoinPC:   ci.EstimateReconvergence(w.prog, pc),
			Kind:     kind,
		})
	}
	return rcs
}

// Arch is the architectural (functional) outcome of a workload: the
// golden reference every timing-simulated mode must commit exactly.
type Arch struct {
	// Regs is the final architectural register file.
	Regs [NumLogical]uint64
	// Executed counts architecturally executed instructions.
	Executed uint64
}

// Emulate runs the workload's program on the architectural emulator —
// no timing model, one instruction at a time — over a fresh copy of
// its data image. maxInstr bounds execution (0 = run to halt); an
// exhausted budget is an error.
func (w *Workload) Emulate(maxInstr uint64) (*Arch, error) {
	cpu := emu.New(w.newMem())
	if err := cpu.Run(w.prog, maxInstr); err != nil {
		return nil, err
	}
	return &Arch{Regs: cpu.Regs, Executed: cpu.Executed}, nil
}

// HardwareCost renders the §3.1 storage accounting of the mechanism's
// hardware structures at their Table 1 geometry.
func HardwareCost() string {
	return ci.HardwareCost(ci.DefaultCostConfig()).String()
}
