package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"civect/internal/ckpt"
	"civect/internal/core"
	"civect/internal/trace"
)

// Checkpointing: a session can persist its full machine state — the
// architectural state plus every warm microarchitectural structure — as
// a CIVK container (docs/SAMPLING.md describes the format) and be
// rebuilt from it later such that the resumed run's final statistics
// are bit-identical to an uninterrupted run's. Memory is stored as
// sparse deltas against the workload's pristine initial image, so
// checkpoints reference registry workloads by name and Resume
// regenerates the image; Custom workloads (and registry workloads whose
// image was modified with SetWord) are not resumable.

// ckptStride is the cycle granularity of cancellation and cadence
// checks in a checkpointed run.
const ckptStride = 1024

// WithCheckpoint makes Run persist the session's state to path: every
// everyInstr committed instructions (0 saves only on cancellation), and
// always when the run is cancelled — so a killed run can continue from
// where it stopped via Resume. When the run completes, the checkpoint
// file is removed: a leftover file always means "resumable work".
// Incompatible with WithSampling.
func WithCheckpoint(path string, everyInstr uint64) Option {
	return func(s *settings) {
		if path == "" {
			if s.err == nil {
				s.err = errors.New("sim: WithCheckpoint requires a path")
			}
			return
		}
		s.ckptPath = path
		s.ckptEvery = everyInstr
	}
}

// Checkpoint writes the session's current state to path (atomically),
// without sealing the session: a step-driven driver can persist
// progress at any point between Steps. Sampled sessions cannot be
// checkpointed.
func (s *Session) Checkpoint(path string) error {
	if s.sampling != nil {
		return errors.New("sim: sampled sessions cannot be checkpointed")
	}
	if s.ckptBase == nil {
		s.ckptBase = s.w.newMem()
	}
	return ckpt.WriteFile(path, s.proc.SaveCheckpoint(s.ckptBase))
}

// Resume rebuilds a session from a checkpoint file. The checkpoint
// names its registry workload and configuration, so Resume needs
// nothing else; running the resumed session to completion yields final
// statistics bit-identical to an uninterrupted run's. The resumed
// session keeps path as its checkpoint file: a cancelled Run saves
// there again, so a job can be drained and resumed any number of
// times.
//
// Options may attach an observer, a trace journal or a checkpoint
// cadence/path override — but not change the machine: the checkpoint
// fixes the configuration, and any option that would alter it (mode,
// ports, budget, ...) is an error. WithSampling cannot resume.
func Resume(path string, opts ...Option) (*Session, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	info, err := core.PeekCheckpoint(data)
	if err != nil {
		return nil, err
	}
	st := settings{cfg: info.Config}
	for _, o := range opts {
		o(&st)
	}
	if st.err != nil {
		return nil, st.err
	}
	if st.sampling != nil {
		return nil, errors.New("sim: WithSampling cannot resume a checkpoint")
	}
	if st.cfg != info.Config {
		return nil, errors.New("sim: resume options cannot change the configuration; the checkpoint fixes the machine")
	}
	if st.traceW == nil && (st.traceLevel != 0 || st.traceWindowed) {
		return nil, errors.New("sim: WithTraceLevel/WithTraceWindow require WithTrace")
	}
	w, err := Load(info.Program)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint program %q is not a registry workload: %w", info.Program, err)
	}
	sp, err := core.ShareProgram(w.prog)
	if err != nil {
		return nil, err
	}
	base := w.newMem()
	p, err := core.RestoreCheckpoint(data, sp, base)
	if err != nil {
		return nil, err
	}
	if st.ckptPath == "" {
		st.ckptPath = path
	}
	s := &Session{w: w, cfg: info.Config, proc: p,
		ckptPath: st.ckptPath, ckptEvery: st.ckptEvery, ckptBase: base}
	if st.obs != nil {
		p.SetObserver(st.obs, st.progressEvery)
	}
	if st.traceW != nil {
		lvl := trace.Level(st.traceLevel)
		if lvl == 0 {
			lvl = trace.LevelPipeline
		}
		s.rec = trace.NewRecorder(st.traceW, lvl, trace.Meta{Workload: w.name, Mode: st.cfg.Mode})
		if st.traceWindowed {
			s.rec.SetWindow(st.traceFirst, st.traceLast)
		}
		if err := s.rec.Err(); err != nil {
			return nil, err
		}
		p.SetTracer(s.rec)
	}
	return s, nil
}

// saveCheckpoint persists the running session's state to its configured
// path.
func (s *Session) saveCheckpoint() error {
	if s.ckptBase == nil {
		s.ckptBase = s.w.newMem()
	}
	return ckpt.WriteFile(s.ckptPath, s.proc.SaveCheckpoint(s.ckptBase))
}

// runCheckpointed is Run with checkpoint persistence: the same
// semantics (and bit-identical statistics — it steps the same engine),
// plus a state save on the configured cadence and on cancellation, and
// checkpoint removal on completion.
func (s *Session) runCheckpointed(ctx context.Context) (*Result, error) {
	budget := s.cfg.MaxInstr
	done := func() bool {
		return s.proc.Halted() || (budget > 0 && s.proc.Stats.Committed >= budget)
	}
	t0 := time.Now()
	lastSave := s.proc.Stats.Committed
	for !done() {
		if err := ctx.Err(); err != nil {
			s.wall += time.Since(t0)
			s.sealed = fmt.Errorf("%w: %v", ErrSessionEnded, err)
			s.closeTrace()
			serr := s.saveCheckpoint()
			stats := s.proc.Snapshot()
			res := s.makeResult(&stats, true)
			if serr != nil {
				return res, fmt.Errorf("%v; checkpoint: %w", err, serr)
			}
			return res, err
		}
		for i := 0; i < ckptStride && !done(); i++ {
			s.proc.Step()
		}
		if s.ckptEvery > 0 && s.proc.Stats.Committed-lastSave >= s.ckptEvery {
			if err := s.saveCheckpoint(); err != nil {
				s.wall += time.Since(t0)
				s.sealed = fmt.Errorf("%w: %v", ErrSessionEnded, err)
				s.closeTrace()
				return nil, err
			}
			lastSave = s.proc.Stats.Committed
		}
	}
	s.wall += time.Since(t0)
	s.finished = true
	s.sealed = fmt.Errorf("%w: run complete", ErrSessionEnded)
	stats := *s.proc.Finalize()
	res := s.makeResult(&stats, false)
	if err := os.Remove(s.ckptPath); err != nil && !os.IsNotExist(err) {
		return res, fmt.Errorf("sim: removing completed checkpoint: %w", err)
	}
	if terr := s.closeTrace(); terr != nil {
		return res, fmt.Errorf("sim: trace journal: %w", terr)
	}
	return res, nil
}
