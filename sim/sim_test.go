package sim_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"civect/internal/core"
	"civect/internal/workload"
	"civect/sim"
)

func mustLoad(t *testing.T, name string) *sim.Workload {
	t.Helper()
	w, err := sim.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidatesEagerly(t *testing.T) {
	w := mustLoad(t, "gcc")
	cases := []struct {
		name string
		w    *sim.Workload
		opts []sim.Option
	}{
		{"nil workload", nil, nil},
		{"zero ports", w, []sim.Option{sim.WithPorts(0)}},
		{"tiny register file", w, []sim.Option{sim.WithConfigPatch(func(c *sim.Config) { c.PhysRegs = 8 })}},
		{"invalid mode", w, []sim.Option{sim.WithMode(sim.Mode(99))}},
		{"invalid engine", w, []sim.Option{sim.WithEngine(sim.Engine(99))}},
		{"too many strided PCs", w, []sim.Option{sim.WithStridedPCs(64)}},
	}
	for _, tc := range cases {
		if _, err := sim.New(tc.w, tc.opts...); err == nil {
			t.Errorf("%s: New must fail", tc.name)
		}
	}
}

func TestLoadRegistry(t *testing.T) {
	names := sim.Workloads()
	if len(names) != 36 {
		t.Fatalf("Workloads() lists %d names, want 36 (12 per tier)", len(names))
	}
	if names[0] != "bzip2" || names[12] != "bzip2.big" || names[24] != "bzip2.ultra" {
		t.Errorf("unexpected registry order: %v", names)
	}
	if _, err := sim.Load("nosuch"); err == nil {
		t.Error("Load of an unknown workload must fail")
	}
	a := mustLoad(t, "gzip")
	b := mustLoad(t, "gzip")
	if a == b {
		t.Error("Load must hand out distinct wrappers (SetWord isolation)")
	}
}

// TestSetWordIsolation: mutating one loaded workload's image must not
// leak into other loads of the same (cached) benchmark.
func TestSetWordIsolation(t *testing.T) {
	a := mustLoad(t, "eon")
	b := mustLoad(t, "eon")
	runStats := func(w *sim.Workload) sim.Stats {
		s, err := sim.New(w, sim.WithMode(sim.CI), sim.WithInstrBudget(3_000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	ref := runStats(b)
	// Clobber a's branch-steering stream: eon's bias is 0.96 taken, so
	// forcing the first words to 0 changes its branch behaviour.
	for i := 0; i < 512; i++ {
		a.SetWord(0x0010_0000+uint64(i*8), 0)
	}
	mutated := runStats(a)
	if after := runStats(b); after != ref {
		t.Error("untouched workload drifted after sibling SetWord")
	}
	if mutated == ref {
		t.Error("SetWord on the mutated workload had no effect")
	}
}

// TestSessionMatchesCore proves the façade is pure re-routing: a
// session and a directly constructed core processor over the same
// configuration produce bit-identical statistics.
func TestSessionMatchesCore(t *testing.T) {
	w := mustLoad(t, "gcc")
	s, err := sim.New(w,
		sim.WithMode(sim.CI),
		sim.WithRegs(512),
		sim.WithPorts(2),
		sim.WithInstrBudget(15_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig(core.ModeCI)
	cfg.PhysRegs = 512
	cfg.WindowSize = core.WindowFor(512)
	cfg.DL1Ports = 2
	cfg.MaxInstr = 15_000
	wl, err := workload.Spec("gcc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(cfg, wl.Program, wl.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != *want {
		t.Errorf("session stats diverge from direct core run:\nsim:  %+v\ncore: %+v", res.Stats, *want)
	}
	if res.Partial {
		t.Error("completed run marked partial")
	}
	if res.Schema != sim.BenchSchemaVersion {
		t.Errorf("schema %d, want %d", res.Schema, sim.BenchSchemaVersion)
	}
	if res.IPC != want.IPC() || res.ReuseFraction != want.ReuseFraction() {
		t.Error("embedded bench row disagrees with stats block")
	}
}

// TestStepMatchesRun: driving a session cycle by cycle lands on the
// same statistics as Run, and seals the session at the budget.
func TestStepMatchesRun(t *testing.T) {
	w := mustLoad(t, "gzip")
	opts := []sim.Option{sim.WithMode(sim.CI), sim.WithInstrBudget(8_000)}

	ran, err := sim.New(w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ran.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	stepped, err := sim.New(w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		n, err := stepped.Step(64)
		total += n
		if err != nil {
			t.Fatal(err)
		}
		if n < 64 {
			break
		}
	}
	if total == 0 {
		t.Fatal("no cycles stepped")
	}
	got := stepped.Result()
	if got.Partial {
		t.Error("step-driven run that reached its budget is not partial")
	}
	if got.Stats != res.Stats {
		t.Errorf("step-driven stats diverge from Run:\nstep: %+v\nrun:  %+v", got.Stats, res.Stats)
	}
	// The sealed session refuses further driving.
	if _, err := stepped.Step(1); !errors.Is(err, sim.ErrSessionEnded) {
		t.Errorf("Step on a completed session: err = %v, want ErrSessionEnded", err)
	}
	if _, err := ran.Run(context.Background()); !errors.Is(err, sim.ErrSessionEnded) {
		t.Errorf("Run on a completed session: err = %v, want ErrSessionEnded", err)
	}
}

// TestWithRegsWindowRule pins the paper's reorder-buffer sizing rule in
// the option itself.
func TestWithRegsWindowRule(t *testing.T) {
	w := mustLoad(t, "gcc")
	for _, tc := range []struct{ regs, window int }{
		{128, 256}, {256, 256}, {512, 512}, {768, 768}, {0, 1024},
	} {
		s, err := sim.New(w, sim.WithRegs(tc.regs))
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Config().WindowSize; got != tc.window {
			t.Errorf("WithRegs(%d): window %d, want %d", tc.regs, got, tc.window)
		}
	}
}

// TestEngineRoundTrip mirrors the mode round-trip for the engine enum.
func TestEngineRoundTrip(t *testing.T) {
	for _, e := range sim.Engines() {
		got, err := sim.ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := sim.ParseEngine("warp"); err == nil {
		t.Error("unknown engine must not parse")
	}
}

// TestEnginesBitIdentical: the engine option only changes wall speed,
// never statistics.
func TestEnginesBitIdentical(t *testing.T) {
	w := mustLoad(t, "gcc")
	var ref *sim.Result
	for _, e := range sim.Engines() {
		s, err := sim.New(w, sim.WithMode(sim.CI), sim.WithEngine(e), sim.WithInstrBudget(6_000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Stats != ref.Stats {
			t.Errorf("engine %v stats diverge from %v", e, sim.Engines()[0])
		}
	}
}

func TestBatchStream(t *testing.T) {
	b := sim.NewBatch(2)
	var jobs []sim.Job
	for _, name := range []string{"gcc", "gzip", "eon", "vpr"} {
		jobs = append(jobs, sim.Job{
			Workload: name,
			Options:  []sim.Option{sim.WithMode(sim.CI), sim.WithInstrBudget(4_000)},
			Tag:      "t-" + name,
		})
	}
	jobs = append(jobs, sim.Job{Workload: "nosuch"})
	seen := map[string]bool{}
	for r := range b.Stream(context.Background(), jobs) {
		if r.Job.Workload == "nosuch" {
			if r.Err == nil {
				t.Error("unknown workload job must fail")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Job.Workload, r.Err)
			continue
		}
		if r.Result.Stats.Committed < 4_000 {
			t.Errorf("%s: committed %d below budget", r.Job.Workload, r.Result.Stats.Committed)
		}
		if !strings.HasPrefix(r.Job.Tag, "t-") {
			t.Errorf("tag lost: %q", r.Job.Tag)
		}
		seen[r.Job.Workload] = true
	}
	if len(seen) != 4 {
		t.Errorf("streamed %d distinct results, want 4", len(seen))
	}
	if got := b.MaxConcurrent(); got > 2 {
		t.Errorf("batch of 2 workers observed %d in flight", got)
	}
}

func TestBatchSerializes(t *testing.T) {
	b := sim.NewBatch(1)
	var jobs []sim.Job
	for _, name := range []string{"gcc", "gzip", "eon"} {
		jobs = append(jobs, sim.Job{Workload: name, Options: []sim.Option{sim.WithInstrBudget(3_000)}})
	}
	for r := range b.Stream(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if got := b.MaxConcurrent(); got != 1 {
		t.Errorf("one-worker batch observed %d in flight", got)
	}
}
