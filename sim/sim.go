// Package sim is the public, supported API for building and running
// civect simulations. Everything below the command-line layer — the
// cmd tools, the examples, the experiment harness — constructs and
// drives simulations through this façade; the internal packages stay
// free to change shape underneath it.
//
// A simulation is a Session over a Workload:
//
//	w, err := sim.Load("gcc")
//	if err != nil { ... }
//	s, err := sim.New(w, sim.WithMode(sim.CI), sim.WithRegs(512))
//	if err != nil { ... }
//	res, err := s.Run(context.Background())
//	fmt.Printf("IPC %.3f, reuse %.1f%%\n", res.Stats.IPC(), 100*res.Stats.ReuseFraction())
//
// Sessions validate their configuration eagerly (New returns errors,
// never panics or exits), honor context cancellation and deadlines at
// cycle boundaries (returning partial, well-defined statistics), and
// can be driven incrementally with Step for reinforcement-learning or
// analysis loops. Observers stream batched progress taps without
// perturbing results. Batch runs many sessions under one concurrency
// bound and streams their Results over a channel.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"civect/internal/core"
	"civect/internal/isa"
	"civect/internal/mem"
	"civect/internal/trace"
)

// Mode selects the machine organisation, mirroring the paper's five
// configurations.
type Mode int

// The five machine modes. The zero value is the scalar baseline; New
// defaults to CI, the paper's proposed mechanism.
const (
	// Scalar is the plain superscalar baseline (scalxp).
	Scalar Mode = Mode(core.ModeScalar)
	// WideBus adds wide L1D buses (wbxp, §2.4.5).
	WideBus Mode = Mode(core.ModeWideBus)
	// CI is the proposed control-independence mechanism on top of wide
	// buses (cixp).
	CI Mode = Mode(core.ModeCI)
	// CIIW restricts the mechanism to squash reuse inside the
	// instruction window (ci-iw, Figure 10).
	CIIW Mode = Mode(core.ModeCIIW)
	// Vect is the full speculative dynamic vectorization baseline of
	// reference [12] (Figure 14).
	Vect Mode = Mode(core.ModeVect)
)

// String names the mode as the paper's figures do (scal, wb, ci,
// ci-iw, vect).
func (m Mode) String() string { return core.Mode(m).String() }

// Modes lists every machine mode in the paper's presentation order.
func Modes() []Mode {
	cm := core.Modes()
	ms := make([]Mode, len(cm))
	for i, m := range cm {
		ms[i] = Mode(m)
	}
	return ms
}

// ParseMode inverts Mode.String; it accepts exactly the five names the
// paper's figures use.
func ParseMode(s string) (Mode, error) {
	m, err := core.ParseMode(s)
	return Mode(m), err
}

// Engine selects the simulation engine. All three are
// observation-equivalent — they produce bit-identical statistics — and
// differ only in wall-clock speed; the slower ones are retained as
// differential-test references.
type Engine int

// The three engines, fastest first.
const (
	// EngineFastForward is the default: the event-driven scheduler plus
	// the stall-cycle fast-forward engine that jumps provably inert
	// cycle ranges.
	EngineFastForward Engine = iota
	// EngineEvent is the event-driven scheduler stepping every cycle.
	EngineEvent
	// EngineNaive is the polled reference scheduler (full waiting-list
	// scans every cycle).
	EngineNaive
)

// String names the engine (fast-forward, event, naive).
func (e Engine) String() string {
	switch e {
	case EngineFastForward:
		return "fast-forward"
	case EngineEvent:
		return "event"
	case EngineNaive:
		return "naive"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Engines lists the three engines, fastest first.
func Engines() []Engine {
	return []Engine{EngineFastForward, EngineEvent, EngineNaive}
}

// ParseEngine inverts Engine.String.
func ParseEngine(s string) (Engine, error) {
	for _, e := range Engines() {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want fast-forward, event or naive)", s)
}

// Config is the full simulator configuration (the paper's Table 1 plus
// the mechanism's knobs). Most callers never touch it — the functional
// options cover the parameters the paper sweeps — but WithConfigPatch
// exposes it whole as an escape hatch.
type Config = core.Config

// DefaultConfig returns the paper's Table 1 configuration in the given
// mode: the baseline every Option mutates.
func DefaultConfig(m Mode) Config { return core.DefaultConfig(core.Mode(m)) }

// Stats is the full simulated-statistics block: everything the paper's
// figures report, plus derived accessors (IPC, ReuseFraction, ...).
type Stats = core.Stats

// Observer receives batched progress taps from a running session; see
// WithObserver. Hooks are read-only notifications — attaching an
// observer cannot change simulation results — and cost nothing when no
// observer is registered.
type Observer = core.Observer

// NumLogical is the architectural register count of the simulated ISA.
const NumLogical = isa.NumLogical

// ErrSessionEnded reports a Session whose simulation can no longer
// advance: it ran to completion, was cancelled, hit its deadline, or
// failed. Step and Run reject further driving with an error wrapping
// this sentinel.
var ErrSessionEnded = errors.New("sim: session has ended")

// Session is one configured simulation: a processor built over a
// workload, ready to run to completion (Run) or be driven
// incrementally (Step). Sessions are single-use — once the simulation
// ends, for any reason, the session is sealed and a fresh one must be
// built — and not safe for concurrent use.
type Session struct {
	w    *Workload
	cfg  Config
	proc *core.Proc
	// wall accumulates time spent simulating across Run and Step.
	wall time.Duration
	// sealed is non-nil once the session can no longer advance.
	sealed error
	// finished marks a run that ended at its budget or halt (as
	// opposed to cancellation), making the Result complete.
	finished bool
	// rec is the trace journal recorder (WithTrace); nil when the
	// session is not tracing or the journal is already sealed.
	rec *trace.Recorder
	// sampling switches Run to the sampled pipeline (WithSampling).
	sampling *SamplingConfig
	// ckptPath/ckptEvery configure checkpoint persistence
	// (WithCheckpoint); ckptBase is the pristine initial image
	// checkpoint memory deltas encode against.
	ckptPath  string
	ckptEvery uint64
	ckptBase  *mem.Memory
}

// New builds a session running workload w under the given options,
// validating everything eagerly: a nil or unknown workload, an invalid
// configuration or a malformed program all surface here as errors, so
// a session that constructs is guaranteed runnable.
//
// With no options the session simulates the paper's Table 1 machine in
// CI mode (the proposed mechanism) with no instruction budget.
func New(w *Workload, opts ...Option) (*Session, error) {
	if w == nil {
		return nil, errors.New("sim: nil workload")
	}
	st := settings{cfg: DefaultConfig(CI)}
	for _, o := range opts {
		o(&st)
	}
	if st.err != nil {
		return nil, st.err
	}
	if st.traceW == nil && (st.traceLevel != 0 || st.traceWindowed) {
		return nil, errors.New("sim: WithTraceLevel/WithTraceWindow require WithTrace")
	}
	if st.sampling != nil && (st.traceW != nil || st.obs != nil || st.ckptPath != "") {
		return nil, errors.New("sim: WithSampling is incompatible with WithTrace, WithObserver and WithCheckpoint")
	}
	p, err := core.New(st.cfg, w.prog, w.newMem())
	if err != nil {
		return nil, err
	}
	if st.obs != nil {
		p.SetObserver(st.obs, st.progressEvery)
	}
	s := &Session{w: w, cfg: st.cfg, proc: p, sampling: st.sampling, ckptPath: st.ckptPath, ckptEvery: st.ckptEvery}
	if st.ckptPath != "" {
		// Capture the pristine initial image now, while it still matches
		// the processor's: checkpoint memory deltas encode against it.
		s.ckptBase = w.newMem()
	}
	if st.traceW != nil {
		lvl := trace.Level(st.traceLevel)
		if lvl == 0 {
			lvl = trace.LevelPipeline
		}
		s.rec = trace.NewRecorder(st.traceW, lvl, trace.Meta{Workload: w.name, Mode: st.cfg.Mode})
		if st.traceWindowed {
			s.rec.SetWindow(st.traceFirst, st.traceLast)
		}
		if err := s.rec.Err(); err != nil {
			return nil, err
		}
		p.SetTracer(s.rec)
	}
	return s, nil
}

// closeTrace seals the trace journal (writing its trailer) when the
// session seals; it returns the journal's first error, if any.
func (s *Session) closeTrace() error {
	if s.rec == nil {
		return nil
	}
	rec := s.rec
	s.rec = nil
	return rec.Close()
}

// Run simulates until the program halts or the committed-instruction
// budget (WithInstrBudget) is exhausted, honoring ctx: cancellation or
// an expired deadline stops the run at the next cycle boundary (which
// is fast-forward-safe — never inside a jump). On cancellation Run
// returns the partial Result accumulated so far together with
// ctx.Err(); on success the Result is complete and the error nil. The
// session is sealed either way.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if s.sealed != nil {
		return nil, s.sealed
	}
	if s.sampling != nil {
		return s.runSampled(ctx)
	}
	if s.ckptPath != "" {
		return s.runCheckpointed(ctx)
	}
	t0 := time.Now()
	stats, err := s.proc.RunContext(ctx)
	s.wall += time.Since(t0)
	if err != nil {
		s.sealed = fmt.Errorf("%w: %v", ErrSessionEnded, err)
		s.closeTrace() // the run error outranks a journal write error
		if stats != nil {
			// Cancellation or deadline: partial but well-defined stats.
			return s.makeResult(stats, true), err
		}
		return nil, err
	}
	s.finished = true
	s.sealed = fmt.Errorf("%w: run complete", ErrSessionEnded)
	res := s.makeResult(stats, false)
	if terr := s.closeTrace(); terr != nil {
		return res, fmt.Errorf("sim: trace journal: %w", terr)
	}
	return res, nil
}

// Step advances the simulation by up to n cycles (the fast-forward
// engine may make an individual cycle land after a jump) and reports
// how many it simulated. It stops early — and seals the session — when
// the program halts or the committed-instruction budget is reached;
// driving a sealed session returns an error wrapping ErrSessionEnded,
// so a driver loop cannot silently resume a session a deadline already
// ended.
func (s *Session) Step(n int) (int, error) {
	if s.sealed != nil {
		return 0, s.sealed
	}
	if s.sampling != nil {
		return 0, errors.New("sim: sampled sessions cannot be stepped; use Run")
	}
	budget := s.cfg.MaxInstr
	t0 := time.Now()
	stepped := 0
	for ; stepped < n; stepped++ {
		if s.proc.Halted() || (budget > 0 && s.proc.Stats.Committed >= budget) {
			break
		}
		s.proc.Step()
	}
	s.wall += time.Since(t0)
	if s.proc.Halted() || (budget > 0 && s.proc.Stats.Committed >= budget) {
		s.finished = true
		s.sealed = fmt.Errorf("%w: run complete", ErrSessionEnded)
		// Match Run's terminal bookkeeping so a step-driven run's
		// statistics are bit-identical to Run's.
		s.proc.Finalize()
		if terr := s.closeTrace(); terr != nil {
			return stepped, fmt.Errorf("sim: trace journal: %w", terr)
		}
	}
	return stepped, nil
}

// Halted reports whether the simulated program has committed its halt
// instruction.
func (s *Session) Halted() bool { return s.proc.Halted() }

// Stats snapshots the session's statistics as of now, with derived
// end-of-run fields (cycle count, register occupancy, cache snapshots)
// filled in. Snapshotting never perturbs the simulation.
func (s *Session) Stats() Stats { return s.proc.Snapshot() }

// Result snapshots the session as a Result; Partial is set unless the
// session ran to its budget or halt. Step-driven loops use it to
// extract statistics without running to completion. (Mid-run results
// do not count a CI episode still in progress; the finished result
// does, exactly as Run's would.)
func (s *Session) Result() *Result {
	if s.finished {
		stats := *s.proc.Finalize()
		return s.makeResult(&stats, false)
	}
	stats := s.proc.Snapshot()
	return s.makeResult(&stats, true)
}

// ARF returns the committed architectural register values, for checking
// a session against the functional reference (Workload.Emulate).
func (s *Session) ARF() [NumLogical]uint64 { return s.proc.ARF() }

// Config returns the session's full resolved configuration (after all
// options were applied).
func (s *Session) Config() Config { return s.cfg }

// Workload returns the workload the session simulates.
func (s *Session) Workload() *Workload { return s.w }
