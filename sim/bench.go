package sim

import (
	"civect/internal/benchfmt"
)

// BenchResult is one row of the benchmark baseline schema: the
// per-mode/per-workload measurement cibench writes to BENCH_core.json
// and Result embeds. The schema is versioned (BenchSchemaVersion).
type BenchResult = benchfmt.Result

// BenchSchemaVersion is the current version of the benchmark result
// JSON schema.
const BenchSchemaVersion = benchfmt.SchemaVersion

// LoadBenchResults reads a benchmark result file (BENCH_core.json or a
// fresh cibench run).
func LoadBenchResults(path string) ([]BenchResult, error) {
	return benchfmt.Load(path)
}

// MarshalBenchResults renders results exactly the way cibench writes
// them, so regenerated baselines diff cleanly.
func MarshalBenchResults(rs []BenchResult) ([]byte, error) {
	return benchfmt.Marshal(rs)
}

// GateBench checks fresh measurements against a committed baseline:
// throughput may regress by at most throughputTol (a fraction; 0.10
// allows a 10% slowdown, speedups never fail), while IPC and reuse
// fraction must match exactly — the simulator is deterministic, so any
// drift there is a semantic change that belongs in a reviewed baseline
// update. It returns one human-readable problem per violated
// expectation (empty: the gate passes).
func GateBench(baseline, fresh []BenchResult, throughputTol float64) []string {
	return benchfmt.Compare(baseline, fresh, benchfmt.GateOptions{ThroughputTolerance: throughputTol})
}
