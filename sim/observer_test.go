package sim_test

import (
	"context"
	"testing"

	"civect/sim"
)

// countingObserver tallies everything it is told, for cross-checking
// the taps against the final statistics.
type countingObserver struct {
	batches       int
	committed     uint64
	reused        uint64
	jumps         int
	jumpedCycles  uint64
	progress      int
	lastCycle     uint64
	monotonic     bool
	lastProgressC uint64
}

func newCountingObserver() *countingObserver { return &countingObserver{monotonic: true} }

func (o *countingObserver) OnCommitBatch(cycle uint64, committed, reused int) {
	if cycle < o.lastCycle || committed < 1 || reused < 0 || reused > committed {
		o.monotonic = false
	}
	o.lastCycle = cycle
	o.batches++
	o.committed += uint64(committed)
	o.reused += uint64(reused)
}

func (o *countingObserver) OnCycleJump(from, to uint64) {
	if to <= from {
		o.monotonic = false
	}
	o.jumps++
	o.jumpedCycles += to - from
}

func (o *countingObserver) OnProgress(cycle, committed uint64) {
	if committed <= o.lastProgressC {
		o.monotonic = false
	}
	o.lastProgressC = committed
	o.progress++
}

// TestObserverDeterminism is the differential proof that observation
// cannot perturb results: IPC, reuse and every other statistic are
// bit-identical with a counting observer attached and detached, on
// both a branchy base-tier run and a stall-dense fast-forwarding one.
func TestObserverDeterminism(t *testing.T) {
	for _, bench := range []string{"gcc", "mcf.big"} {
		t.Run(bench, func(t *testing.T) {
			w := mustLoad(t, bench)
			base := []sim.Option{sim.WithMode(sim.CI), sim.WithInstrBudget(12_000)}

			plain, err := sim.New(w, base...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			obs := newCountingObserver()
			observed, err := sim.New(w, append(base, sim.WithObserver(obs, 1_000))...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := observed.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if got.Stats != want.Stats {
				t.Errorf("observer perturbed the simulation:\nwith:    %+v\nwithout: %+v", got.Stats, want.Stats)
			}
			if !obs.monotonic {
				t.Error("observer taps were not monotonic/consistent")
			}
			if obs.committed != got.Stats.Committed {
				t.Errorf("commit batches sum to %d, stats say %d", obs.committed, got.Stats.Committed)
			}
			if obs.reused != got.Stats.CommittedReuse {
				t.Errorf("reuse taps sum to %d, stats say %d", obs.reused, got.Stats.CommittedReuse)
			}
			if obs.batches == 0 || obs.progress == 0 {
				t.Errorf("taps missing: %d batches, %d progress reports", obs.batches, obs.progress)
			}
			// The stall-dense big-tier run fast-forwards; the observer
			// must see those jumps.
			if bench == "mcf.big" && obs.jumps == 0 {
				t.Error("no OnCycleJump taps on a stall-dense fast-forwarding run")
			}
			if obs.jumpedCycles >= got.Stats.Cycles {
				t.Errorf("jumped %d of %d cycles: impossible", obs.jumpedCycles, got.Stats.Cycles)
			}
		})
	}
}

// TestObserverJumpsDisabledOnSteppedEngines: the stepped engines never
// fast-forward, so OnCycleJump must stay silent there.
func TestObserverJumpsDisabledOnSteppedEngines(t *testing.T) {
	w := mustLoad(t, "mcf.big")
	for _, e := range []sim.Engine{sim.EngineEvent, sim.EngineNaive} {
		obs := newCountingObserver()
		s, err := sim.New(w,
			sim.WithMode(sim.CI),
			sim.WithEngine(e),
			sim.WithInstrBudget(4_000),
			sim.WithObserver(obs, 0),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if obs.jumps != 0 {
			t.Errorf("engine %v reported %d cycle jumps; stepped engines never jump", e, obs.jumps)
		}
		if obs.progress != 0 {
			t.Errorf("progressEvery=0 still produced %d progress reports", obs.progress)
		}
	}
}
