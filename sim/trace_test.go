package sim_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"civect/internal/trace"
	"civect/sim"
)

func traceRun(t *testing.T, opts ...sim.Option) ([]byte, *sim.Result) {
	t.Helper()
	w, err := sim.Load("gcc")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s, err := sim.New(w, append([]sim.Option{sim.WithInstrBudget(10_000), sim.WithTrace(&buf)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestTraceNonPerturbation checks that attaching a trace recorder
// cannot change simulation results: the traced run's statistics equal
// the untraced run's.
func TestTraceNonPerturbation(t *testing.T) {
	w, err := sim.Load("gcc")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(w, sim.WithInstrBudget(10_000))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, traced := traceRun(t)
	if plain.Stats != traced.Stats {
		t.Fatalf("tracing perturbed the run:\nplain:  %+v\ntraced: %+v", plain.Stats, traced.Stats)
	}
}

// TestTraceReplayReproducesStats is the façade-level acceptance check:
// record a 10k-instruction gcc run and replay the journal offline; the
// replayer must reproduce the committed-instruction statistics exactly.
func TestTraceReplayReproducesStats(t *testing.T) {
	journal, res := traceRun(t)
	r, err := trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if m := r.Meta(); m.Workload != "gcc" {
		t.Fatalf("journal names workload %q", m.Workload)
	}
	sum, err := trace.Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Machine.Committed != res.Stats.Committed {
		t.Fatalf("replay committed %d, run committed %d", sum.Machine.Committed, res.Stats.Committed)
	}
	if sum.Machine.Reused != res.Stats.CommittedReuse {
		t.Fatalf("replay reuse %d, run reuse %d", sum.Machine.Reused, res.Stats.CommittedReuse)
	}
}

// TestTraceWindow checks windowed recording: the journal is flagged,
// holds only events inside the window, and still replays (leniently).
func TestTraceWindow(t *testing.T) {
	const first, last = 500, 1500
	journal, _ := traceRun(t, sim.WithTraceWindow(first, last))
	r, err := trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Windowed() {
		t.Fatal("windowed journal not flagged")
	}
	n := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Cycle < first || e.Cycle > last {
			t.Fatalf("event outside window: %+v", e)
		}
		n++
	}
	if n == 0 {
		t.Fatal("window captured no events")
	}
	r2, err := trace.NewReader(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(r2); err != nil {
		t.Fatalf("windowed replay: %v", err)
	}
}

// TestTraceLevelOption checks WithTraceLevel reaches the journal
// header and changes what is recorded.
func TestTraceLevelOption(t *testing.T) {
	commits, _ := traceRun(t, sim.WithTraceLevel(sim.TraceCommits))
	pipeline, _ := traceRun(t)
	if len(commits) >= len(pipeline) {
		t.Fatalf("commits-level journal (%d bytes) not smaller than pipeline (%d bytes)",
			len(commits), len(pipeline))
	}
	r, err := trace.NewReader(bytes.NewReader(commits))
	if err != nil {
		t.Fatal(err)
	}
	if r.Level() != trace.LevelCommits {
		t.Fatalf("journal level %v, want commits", r.Level())
	}
}

// TestTraceStepDriven checks a Step-driven session seals its journal
// identically to Run's.
func TestTraceStepDriven(t *testing.T) {
	viaRun, _ := traceRun(t)
	w, err := sim.Load("gcc")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s, err := sim.New(w, sim.WithInstrBudget(10_000), sim.WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for {
		n, err := s.Step(1024)
		if errors.Is(err, sim.ErrSessionEnded) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if !bytes.Equal(buf.Bytes(), viaRun) {
		t.Fatalf("step-driven journal differs from Run's (%d vs %d bytes)", buf.Len(), len(viaRun))
	}
}

// TestTraceOptionValidation pins the façade's eager validation of the
// trace options.
func TestTraceOptionValidation(t *testing.T) {
	w, err := sim.Load("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []sim.Option
	}{
		{"nil writer", []sim.Option{sim.WithTrace(nil)}},
		{"level without trace", []sim.Option{sim.WithTraceLevel(sim.TraceFull)}},
		{"window without trace", []sim.Option{sim.WithTraceWindow(1, 2)}},
		{"invalid level", []sim.Option{sim.WithTrace(&bytes.Buffer{}), sim.WithTraceLevel(42)}},
		{"inverted window", []sim.Option{sim.WithTrace(&bytes.Buffer{}), sim.WithTraceWindow(9, 3)}},
	}
	for _, tc := range cases {
		if _, err := sim.New(w, tc.opts...); err == nil {
			t.Errorf("%s: New accepted it", tc.name)
		}
	}
}

// TestParseTraceLevel round-trips the level names.
func TestParseTraceLevel(t *testing.T) {
	for _, l := range []sim.TraceLevel{sim.TraceCommits, sim.TracePipeline, sim.TraceFull} {
		got, err := sim.ParseTraceLevel(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseTraceLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := sim.ParseTraceLevel("verbose"); err == nil {
		t.Fatal("ParseTraceLevel accepted junk")
	}
}
