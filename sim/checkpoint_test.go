package sim_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"civect/sim"
)

// TestCheckpointResumeBitIdentical drives a session partway, persists
// it with Checkpoint, resumes it from disk, and requires the resumed
// run's final statistics to be bit-identical to an uninterrupted run's.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	w := mustLoad(t, "gcc")
	path := filepath.Join(t.TempDir(), "gcc.ckpt")

	full, err := sim.New(w, sim.WithInstrBudget(30_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	half, err := sim.New(w, sim.WithInstrBudget(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := half.Step(4_000); err != nil {
		t.Fatal(err)
	}
	if half.Halted() {
		t.Fatal("session halted before the split point")
	}
	if err := half.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	resumed, err := sim.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Workload().Name() != "gcc" {
		t.Fatalf("resumed workload %q", resumed.Workload().Name())
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("resumed run stats differ from uninterrupted run\ngot  %+v\nwant %+v", got.Stats, want.Stats)
	}
	if resumed.ARF() != full.ARF() {
		t.Fatal("resumed run's architectural registers differ from uninterrupted run's")
	}
}

// TestWithCheckpointLifecycle checks the WithCheckpoint contract: a
// cancelled run leaves a resumable checkpoint; a completed run removes
// it.
func TestWithCheckpointLifecycle(t *testing.T) {
	w := mustLoad(t, "gzip")
	path := filepath.Join(t.TempDir(), "gzip.ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := sim.New(w, sim.WithInstrBudget(20_000), sim.WithCheckpoint(path, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if res == nil || !res.Partial {
		t.Fatal("cancelled run must return a partial result")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cancelled run left no checkpoint: %v", err)
	}

	resumed, err := sim.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatal("resumed run ended partial")
	}

	full, err := sim.New(w, sim.WithInstrBudget(20_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatal("drain-and-resume run stats differ from uninterrupted run")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("completed run left its checkpoint behind (stat err %v)", err)
	}
}

// TestResumeRejects checks Resume's failure modes: missing file,
// non-checkpoint bytes.
func TestResumeRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := sim.Resume(filepath.Join(dir, "nope.ckpt")); err == nil {
		t.Error("Resume of a missing file must fail")
	}
	junk := filepath.Join(dir, "junk.ckpt")
	if err := os.WriteFile(junk, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Resume(junk); err == nil {
		t.Error("Resume of junk bytes must fail")
	}
}
